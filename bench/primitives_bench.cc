// google-benchmark microbenchmarks of the substrate primitives' *real* wall-clock
// cost (the simulator's own overhead), complementing the virtual-time figure benches:
// sharing, Beaver multiplication, comparisons, oblivious shuffle/sort, the gate-level
// garbled-circuit builders, and the cleartext operator library.
#include <benchmark/benchmark.h>

#include "conclave/data/generators.h"
#include "conclave/mpc/garbled/circuit.h"
#include "conclave/mpc/oblivious.h"
#include "conclave/mpc/protocols.h"

namespace conclave {
namespace {

std::vector<int64_t> RandomValues(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> values(static_cast<size_t>(n));
  for (auto& v : values) {
    v = rng.NextInRange(-1000000, 1000000);
  }
  return values;
}

void BM_ShareColumn(benchmark::State& state) {
  const auto values = RandomValues(state.range(0), 1);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShareValues(values, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShareColumn)->Range(1 << 10, 1 << 18);

void BM_BeaverMul(benchmark::State& state) {
  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, 3);
  SharedColumn a = engine.Share(RandomValues(state.range(0), 4));
  SharedColumn b = engine.Share(RandomValues(state.range(0), 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Mul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BeaverMul)->Range(1 << 10, 1 << 18);

void BM_Compare(benchmark::State& state) {
  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, 6);
  SharedColumn a = engine.Share(RandomValues(state.range(0), 7));
  SharedColumn b = engine.Share(RandomValues(state.range(0), 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Compare(CompareOp::kLt, a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Compare)->Range(1 << 10, 1 << 16);

void BM_ObliviousShuffle(benchmark::State& state) {
  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, 9);
  Rng rng(10);
  SharedRelation rel =
      ShareRelation(data::UniformInts(state.range(0), {"a", "b"}, 1000, 11), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObliviousShuffle(engine, rel));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ObliviousShuffle)->Range(1 << 10, 1 << 17);

void BM_ObliviousSort(benchmark::State& state) {
  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, 12);
  Rng rng(13);
  SharedRelation rel =
      ShareRelation(data::UniformInts(state.range(0), {"k", "v"}, 1000, 14), rng);
  const int keys[] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObliviousSort(engine, rel, keys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ObliviousSort)->Range(1 << 8, 1 << 13);

void BM_GcComparatorCircuit(benchmark::State& state) {
  for (auto _ : state) {
    gc::Circuit circuit;
    auto a = circuit.AddInputWord();
    auto b = circuit.AddInputWord();
    circuit.MarkOutput(circuit.LessThanSigned(a, b));
    auto inputs = gc::Circuit::PackWord(123456);
    const auto more = gc::Circuit::PackWord(654321);
    inputs.insert(inputs.end(), more.begin(), more.end());
    benchmark::DoNotOptimize(circuit.Evaluate(inputs));
  }
}
BENCHMARK(BM_GcComparatorCircuit);

void BM_GcMultiplierCircuit(benchmark::State& state) {
  for (auto _ : state) {
    gc::Circuit circuit;
    auto a = circuit.AddInputWord();
    auto b = circuit.AddInputWord();
    circuit.MarkOutputWord(circuit.Mul(a, b));
    auto inputs = gc::Circuit::PackWord(123456);
    const auto more = gc::Circuit::PackWord(654321);
    inputs.insert(inputs.end(), more.begin(), more.end());
    benchmark::DoNotOptimize(circuit.Evaluate(inputs));
  }
}
BENCHMARK(BM_GcMultiplierCircuit);

void BM_CleartextJoin(benchmark::State& state) {
  Relation left = data::UniformInts(state.range(0), {"k", "x"}, state.range(0), 15);
  Relation right = data::UniformInts(state.range(0), {"k", "y"}, state.range(0), 16);
  const int keys[] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Join(left, right, keys, keys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CleartextJoin)->Range(1 << 10, 1 << 20);

void BM_CleartextAggregate(benchmark::State& state) {
  Relation rel = data::UniformInts(state.range(0), {"g", "v"}, 1000, 17);
  const int group[] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Aggregate(rel, group, AggKind::kSum, 1, "s"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CleartextAggregate)->Range(1 << 10, 1 << 20);

}  // namespace
}  // namespace conclave

BENCHMARK_MAIN();
