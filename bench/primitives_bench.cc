// google-benchmark microbenchmarks of the substrate primitives' *real* wall-clock
// cost (the simulator's own overhead), complementing the virtual-time figure benches:
// sharing, Beaver multiplication, comparisons, oblivious shuffle/sort, the gate-level
// garbled-circuit builders, and the cleartext operator library.
//
// A custom main runs the google-benchmark suite, then a fixed sweep of columnar-
// kernel microbenches (column scan, filter selectivity, zero-copy share ingest)
// whose measured seconds land in BENCH_primitives.json via bench_util.h — the
// kernel-level record of the columnar data plane's throughput per commit.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <limits>

#include "bench/bench_util.h"
#include "conclave/common/cpu.h"
#include "conclave/data/generators.h"
#include "conclave/mpc/garbled/circuit.h"
#include "conclave/mpc/oblivious.h"
#include "conclave/mpc/protocols.h"
#include "conclave/mpc/reveal_source.h"
#include "conclave/relational/expr.h"
#include "conclave/relational/pipeline.h"
#include "conclave/relational/spill.h"

namespace conclave {
namespace {

std::vector<int64_t> RandomValues(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> values(static_cast<size_t>(n));
  for (auto& v : values) {
    v = rng.NextInRange(-1000000, 1000000);
  }
  return values;
}

void BM_ShareColumn(benchmark::State& state) {
  const auto values = RandomValues(state.range(0), 1);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShareValues(values, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShareColumn)->Range(1 << 10, 1 << 18);

void BM_BeaverMul(benchmark::State& state) {
  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, 3);
  SharedColumn a = engine.Share(RandomValues(state.range(0), 4));
  SharedColumn b = engine.Share(RandomValues(state.range(0), 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Mul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BeaverMul)->Range(1 << 10, 1 << 18);

void BM_Compare(benchmark::State& state) {
  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, 6);
  SharedColumn a = engine.Share(RandomValues(state.range(0), 7));
  SharedColumn b = engine.Share(RandomValues(state.range(0), 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Compare(CompareOp::kLt, a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Compare)->Range(1 << 10, 1 << 16);

void BM_ObliviousShuffle(benchmark::State& state) {
  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, 9);
  Rng rng(10);
  SharedRelation rel =
      ShareRelation(data::UniformInts(state.range(0), {"a", "b"}, 1000, 11), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObliviousShuffle(engine, rel));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ObliviousShuffle)->Range(1 << 10, 1 << 17);

void BM_ObliviousSort(benchmark::State& state) {
  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, 12);
  Rng rng(13);
  SharedRelation rel =
      ShareRelation(data::UniformInts(state.range(0), {"k", "v"}, 1000, 14), rng);
  const int keys[] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ObliviousSort(engine, rel, keys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ObliviousSort)->Range(1 << 8, 1 << 13);

void BM_GcComparatorCircuit(benchmark::State& state) {
  for (auto _ : state) {
    gc::Circuit circuit;
    auto a = circuit.AddInputWord();
    auto b = circuit.AddInputWord();
    circuit.MarkOutput(circuit.LessThanSigned(a, b));
    auto inputs = gc::Circuit::PackWord(123456);
    const auto more = gc::Circuit::PackWord(654321);
    inputs.insert(inputs.end(), more.begin(), more.end());
    benchmark::DoNotOptimize(circuit.Evaluate(inputs));
  }
}
BENCHMARK(BM_GcComparatorCircuit);

void BM_GcMultiplierCircuit(benchmark::State& state) {
  for (auto _ : state) {
    gc::Circuit circuit;
    auto a = circuit.AddInputWord();
    auto b = circuit.AddInputWord();
    circuit.MarkOutputWord(circuit.Mul(a, b));
    auto inputs = gc::Circuit::PackWord(123456);
    const auto more = gc::Circuit::PackWord(654321);
    inputs.insert(inputs.end(), more.begin(), more.end());
    benchmark::DoNotOptimize(circuit.Evaluate(inputs));
  }
}
BENCHMARK(BM_GcMultiplierCircuit);

void BM_CleartextJoin(benchmark::State& state) {
  Relation left = data::UniformInts(state.range(0), {"k", "x"}, state.range(0), 15);
  Relation right = data::UniformInts(state.range(0), {"k", "y"}, state.range(0), 16);
  const int keys[] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Join(left, right, keys, keys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CleartextJoin)->Range(1 << 10, 1 << 20);

void BM_CleartextAggregate(benchmark::State& state) {
  Relation rel = data::UniformInts(state.range(0), {"g", "v"}, 1000, 17);
  const int group[] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Aggregate(rel, group, AggKind::kSum, 1, "s"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CleartextAggregate)->Range(1 << 10, 1 << 20);

void BM_ColumnScan(benchmark::State& state) {
  Relation rel = data::UniformInts(state.range(0), {"a", "b", "c", "d"}, 1000, 18);
  for (auto _ : state) {
    int64_t sum = 0;
    for (int64_t v : rel.ColumnSpan(2)) {
      sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnScan)->Range(1 << 12, 1 << 22);

// The pre-columnar access pattern, kept as the baseline for the scan numbers in
// the README: the same 4-column relation flattened row-major, one column read as
// a stride-4 walk (what every kernel and the share ingest used to do).
void BM_ColumnScanRowMajorLayout(benchmark::State& state) {
  Relation rel = data::UniformInts(state.range(0), {"a", "b", "c", "d"}, 1000, 18);
  const std::vector<int64_t> cells = rel.RowMajorCells();
  const int64_t rows = rel.NumRows();
  for (auto _ : state) {
    int64_t sum = 0;
    const int64_t* const base = cells.data() + 2;
    for (int64_t r = 0; r < rows; ++r) {
      sum += base[static_cast<size_t>(r) * 4];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColumnScanRowMajorLayout)->Range(1 << 12, 1 << 22);

// --- Columnar-kernel sweep with a JSON record ---------------------------------------
// Each cell is the best-of-N wall seconds for one kernel pass at the given row
// count over a 4-column relation: a contiguous column-scan reduction, ops::Filter
// at three literal selectivities, and the zero-copy counter-based share ingest of
// one column.

double BestOfRuns(int reps, const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    bench::WallTimer timer;
    body();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

void RunKernelSweep(const bench::BenchFilter& filter,
                    double wall_seconds_so_far) {
  const bool small = bench::SmallScale();
  const std::vector<int64_t> sizes =
      small ? std::vector<int64_t>{1 << 14, 1 << 16}
            : std::vector<int64_t>{1 << 18, 1 << 20, 1 << 22};
  const int reps = small ? 3 : 5;
  bench::Table table("primitives: columnar kernel sweep (wall seconds per pass; "
                     "*_peak_rows and spill_bytes are counts, not seconds)",
                     {"column_scan", "filter_sel10", "filter_sel50", "filter_sel90",
                      "filter_scalar", "arith_simd", "arith_scalar",
                      "share_ingest", "rng_aesni", "rng_splitmix",
                      "chain_materialized", "chain_pipelined", "chain_fused",
                      "chain_peak_rows", "reveal_materialized", "reveal_streamed",
                      "reveal_peak_rows", "sort_in_mem", "sort_external",
                      "groupby_in_mem", "groupby_spill", "spill_peak_rows",
                      "spill_bytes"});
  bench::WallTimer timer;
  // Timed cell, or a '-' skip when --filter excludes the column.
  const auto timed = [&](const char* name, const std::function<void()>& body) {
    return filter.Enabled(name)
               ? bench::Cell::Seconds(BestOfRuns(reps, body))
               : bench::Cell::Skip();
  };
  for (int64_t n : sizes) {
    // Uniform values in [0, 999]: literal thresholds 100/500/900 give ~10/50/90%
    // selectivity.
    Relation rel = data::UniformInts(n, {"a", "b", "c", "d"}, 1000, 21);
    std::vector<bench::Cell> cells;

    cells.push_back(timed("column_scan", [&] {
      int64_t sum = 0;
      for (int64_t v : rel.ColumnSpan(1)) {
        sum += v;
      }
      benchmark::DoNotOptimize(sum);
    }));

    const struct { const char* name; int64_t threshold; } selectivities[] = {
        {"filter_sel10", 100}, {"filter_sel50", 500}, {"filter_sel90", 900}};
    for (const auto& sel : selectivities) {
      cells.push_back(timed(sel.name, [&] {
        benchmark::DoNotOptimize(ops::Filter(
            rel,
            FilterPredicate::ColumnVsLiteral(0, CompareOp::kLt, sel.threshold)));
      }));
    }

    // A/B (DESIGN.md §13): the sel50 filter and a mul-by-literal arithmetic
    // pass with the SIMD dispatch knob forced off vs. on — the committed
    // record of what the AVX2 kernels buy over the scalar fallbacks (results
    // are bit-identical either way; the grid tests assert it).
    cells.push_back(timed("filter_scalar", [&] {
      const cpu::ScopedSimd scalar(false);
      benchmark::DoNotOptimize(ops::Filter(
          rel, FilterPredicate::ColumnVsLiteral(0, CompareOp::kLt, 500)));
    }));
    ArithSpec mul_arith;
    mul_arith.kind = ArithKind::kMul;
    mul_arith.lhs_column = 1;
    mul_arith.rhs_is_column = false;
    mul_arith.rhs_literal = 3;
    mul_arith.result_name = "b3";
    cells.push_back(timed("arith_simd", [&] {
      benchmark::DoNotOptimize(ops::Arithmetic(rel, mul_arith));
    }));
    cells.push_back(timed("arith_scalar", [&] {
      const cpu::ScopedSimd scalar(false);
      benchmark::DoNotOptimize(ops::Arithmetic(rel, mul_arith));
    }));

    const AesCounterRng rng(/*seed=*/7, /*stream=*/11);
    cells.push_back(timed("share_ingest", [&] {
      benchmark::DoNotOptimize(ShareValues(rel.ColumnSpan(0), rng));
    }));

    // A/B (DESIGN.md §13): n counter words drawn through the batched AES
    // generator vs. the SplitMix64-finalizer generator it replaced on the MPC
    // hot path — the words/s record behind the share-randomness switch.
    std::vector<uint64_t> words(static_cast<size_t>(n));
    cells.push_back(timed("rng_aesni", [&] {
      rng.FillWords(/*first_word=*/0, words.size(), words.data());
      benchmark::DoNotOptimize(words.data());
    }));
    const CounterRng splitmix(/*seed=*/7, /*stream=*/11);
    cells.push_back(timed("rng_splitmix", [&] {
      for (size_t i = 0; i < words.size(); ++i) {
        words[i] = splitmix.At(i);
      }
      benchmark::DoNotOptimize(words.data());
    }));

    // A/B: the same filter -> project -> arithmetic chain executed three ways —
    // materializing (one ops.h kernel per node, two full intermediates),
    // streamed through a BatchPipeline with one operator per node (fused
    // expressions off), and through the fused expression evaluator (the whole
    // chain compiled into one register-resident pass per batch, DESIGN.md §13).
    // chain_peak_rows records the fused pipeline's peak resident rows — the
    // bounded-memory (peak-RSS) proxy: materializing peaks at O(n) rows, the
    // pipeline at O(depth x batch), independent of n.
    const FilterPredicate chain_predicate =
        FilterPredicate::ColumnVsLiteral(0, CompareOp::kLt, 500);
    const std::vector<int> chain_columns = {0, 1};
    ArithSpec chain_arith;
    chain_arith.kind = ArithKind::kAdd;
    chain_arith.lhs_column = 1;
    chain_arith.rhs_is_column = false;
    chain_arith.rhs_literal = 7;
    chain_arith.result_name = "b7";
    cells.push_back(timed("chain_materialized", [&] {
      const Relation filtered = ops::Filter(rel, chain_predicate);
      const Relation projected = ops::Project(filtered, chain_columns);
      benchmark::DoNotOptimize(ops::Arithmetic(projected, chain_arith));
    }));
    PipelineSpec chain_spec;
    chain_spec.input_schema = rel.schema();
    chain_spec.ops.push_back(PipelineOp::Filter(chain_predicate));
    chain_spec.ops.push_back(PipelineOp::Project(chain_columns));
    chain_spec.ops.push_back(PipelineOp::Arithmetic(chain_arith));
    // The fused-expr knob is read once at BatchPipeline construction, so the
    // per-node and fused variants are two pipelines built under opposite knobs.
    const ScopedFusedExpr per_node_scope(false);
    BatchPipeline chain_pipeline(chain_spec);
    cells.push_back(timed("chain_pipelined", [&] {
      benchmark::DoNotOptimize(chain_pipeline.Run(rel, kDefaultBatchRows));
    }));
    const ScopedFusedExpr fused_scope(true);
    BatchPipeline fused_pipeline(chain_spec);
    const bool fused_ran = filter.Enabled("chain_fused");
    cells.push_back(timed("chain_fused", [&] {
      benchmark::DoNotOptimize(fused_pipeline.Run(rel, kDefaultBatchRows));
    }));
    cells.push_back(fused_ran
                        ? bench::Cell::Seconds(static_cast<double>(
                              fused_pipeline.stats().peak_rows_resident))
                        : bench::Cell::Skip());

    // A/B (DESIGN.md §14): the same chain consuming an MPC reveal two ways —
    // reveal the whole shared relation in one shot and push the materialized
    // rows through the pipeline, vs. stream the reconstruction batch-at-a-time
    // straight into the chain via RunFromReveal. Results are bit-identical
    // (the grid tests assert it); reveal_peak_rows records the streamed
    // path's peak reconstructed-row residency — O(batch), not O(n), so a
    // reveal-heavy chain's cleartext footprint stops growing with the data.
    // Two sources over the same shares so MaxMaterializedRows witnesses each
    // path separately (the one-shot open necessarily peaks at n).
    Rng share_rng(23);
    const SharedRelation shared_rel = ShareRelation(rel, share_rng);
    const mpc::RevealSource one_shot_source(shared_rel);
    const mpc::RevealSource streamed_source(shared_rel);
    const ScopedFusedExpr reveal_scope(true);
    BatchPipeline reveal_materialized_pipeline(chain_spec);
    cells.push_back(timed("reveal_materialized", [&] {
      const Relation opened = one_shot_source.RevealRows(0, n);
      benchmark::DoNotOptimize(
          reveal_materialized_pipeline.Run(opened, kDefaultBatchRows));
    }));
    BatchPipeline reveal_streamed_pipeline(chain_spec);
    const bool reveal_ran = filter.Enabled("reveal_streamed");
    cells.push_back(timed("reveal_streamed", [&] {
      benchmark::DoNotOptimize(reveal_streamed_pipeline.RunFromReveal(
          streamed_source, 0, n, kDefaultBatchRows));
    }));
    cells.push_back(reveal_ran
                        ? bench::Cell::Seconds(static_cast<double>(
                              streamed_source.MaxMaterializedRows()))
                        : bench::Cell::Skip());

    // A/B (DESIGN.md §12): the blocking kernels in-memory vs. through the spill
    // subsystem with the working set capped at n/8 rows — external merge sort
    // against ops::SortBy, run-merge group-by against ops::Aggregate.
    // spill_peak_rows records the larger of the two kernels' high-water
    // operator-owned resident rows (the ≤ 2x-budget guarantee the tests
    // assert); spill_bytes the total run/partition bytes written to disk.
    const int64_t spill_budget = n / 8;
    const int sort_keys[] = {2, 0};
    const int group_keys[] = {0};
    cells.push_back(timed("sort_in_mem", [&] {
      benchmark::DoNotOptimize(ops::SortBy(rel, sort_keys, /*ascending=*/true));
    }));
    spill::SpillStats sort_stats;
    cells.push_back(timed("sort_external", [&] {
      sort_stats = {};
      benchmark::DoNotOptimize(spill::SortBy(rel, sort_keys, /*ascending=*/true,
                                             spill_budget, &sort_stats));
    }));
    cells.push_back(timed("groupby_in_mem", [&] {
      benchmark::DoNotOptimize(ops::Aggregate(rel, group_keys, AggKind::kSum,
                                              /*agg_column=*/1, "s"));
    }));
    spill::SpillStats groupby_stats;
    cells.push_back(timed("groupby_spill", [&] {
      groupby_stats = {};
      benchmark::DoNotOptimize(spill::Aggregate(rel, group_keys, AggKind::kSum,
                                                /*agg_column=*/1, "s",
                                                spill_budget, &groupby_stats));
    }));
    // The spill stat columns only mean something when their producers ran.
    const bool spill_ran =
        filter.Enabled("sort_external") && filter.Enabled("groupby_spill");
    cells.push_back(spill_ran
                        ? bench::Cell::Seconds(static_cast<double>(std::max(
                              sort_stats.peak_resident_rows,
                              groupby_stats.peak_resident_rows)))
                        : bench::Cell::Skip());
    cells.push_back(spill_ran
                        ? bench::Cell::Seconds(static_cast<double>(
                              sort_stats.spilled_bytes +
                              groupby_stats.spilled_bytes))
                        : bench::Cell::Skip());

    table.AddRow(static_cast<uint64_t>(n), std::move(cells));
  }
  table.Print();
  if (filter.Empty()) {
    table.WriteJson("primitives", wall_seconds_so_far + timer.Seconds());
  } else {
    std::printf("--filter=%s set: JSON not written (partial sweep)\n",
                filter.pattern().c_str());
  }
}

}  // namespace
}  // namespace conclave

int main(int argc, char** argv) {
  conclave::bench::TuneAllocatorForBench();
  conclave::bench::WallTimer timer;
  // Must run before benchmark::Initialize: consumes --filter from argv.
  const conclave::bench::BenchFilter filter(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (filter.Empty()) {
    // A filtered invocation is an A/B loop over sweep columns; skip the
    // google-benchmark suite (it has its own --benchmark_filter).
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  conclave::RunKernelSweep(filter, timer.Seconds());
  return 0;
}
