// Figure 7: comparison with SMCQL (§7.4) on its two benchmark queries.
//
// Panel (a), aspirin count: SMCQL slices on public patient IDs and runs one small
// ObliVM MPC per shared-ID slice; Conclave combines the same slicing with its public
// join and runs only the shared rows through the secret-sharing backend, where sort
// elimination makes the distinct count a linear scan. 2% patient-ID overlap, as in
// the paper's HealthLNK-like setup.
//
// Panel (b), comorbidity: both systems split the grouped count into local
// pre-aggregations (distinct keys = 10% of rows); the difference is the MPC backend
// for the secondary aggregate + order-by + limit — ObliVM for SMCQL, the
// secret-sharing backend for Conclave.
//
// Panel (c), recurrent c.diff: the paper's §7.4 only *discusses* this query ("Conclave
// does not yet support window aggregates"); this repo's window operator makes it
// runnable. SMCQL slices on public patient IDs and runs window + self-join per slice
// under ObliVM; Conclave runs one secret-sharing MPC whose lag window subsumes the
// self-join.
#include "bench/bench_util.h"
#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"
#include "conclave/smcql/smcql.h"

namespace conclave {
namespace {

using bench::Cell;
using bench::kTimeBudgetSeconds;

const CostModel kModel;

// --- panel (a): aspirin count ---------------------------------------------------------

double EstimateSmcqlAspirin(uint64_t rows_per_party, double per_slice_seconds) {
  const double slices = 0.02 * static_cast<double>(rows_per_party);
  return slices * per_slice_seconds +
         kModel.PythonSeconds(4 * rows_per_party);
}

void RunAspirin(const std::vector<uint64_t>& per_party_sizes) {
  bench::WallTimer timer;
  bench::Table table(
      "Figure 7a: aspirin count runtime [s] (total diagnosis records)",
      {"smcql", "conclave"});
  smcql::RunConfig config;
  config.cost_model = kModel;
  config.per_slice_setup_seconds = 1.0;  // ObliVM circuit + OT bootstrap per slice.
  bool smcql_done = false;
  for (uint64_t rows : per_party_sizes) {
    data::HealthConfig health;
    health.rows_per_party = static_cast<int64_t>(rows);
    health.seed = rows + 1;
    Relation diag0 = data::AspirinDiagnoses(health, 0);
    Relation med0 = data::AspirinMedications(health, 0);
    Relation diag1 = data::AspirinDiagnoses(health, 1);
    Relation med1 = data::AspirinMedications(health, 1);

    Cell smcql_cell = Cell::Dnf();
    if (!smcql_done &&
        EstimateSmcqlAspirin(rows, config.per_slice_setup_seconds) <=
            kTimeBudgetSeconds) {
      const auto run =
          smcql::SmcqlAspirinCount(diag0, med0, diag1, med1,
                                   data::kHeartDiseaseCode, data::kAspirinCode,
                                   config);
      smcql_cell = run.ok() ? Cell::Seconds(run->virtual_seconds) : Cell::Oom();
    } else {
      smcql_done = true;
    }

    const auto conclave_run =
        smcql::ConclaveAspirinCount(diag0, med0, diag1, med1,
                                    data::kHeartDiseaseCode, data::kAspirinCode,
                                    config);
    Cell conclave_cell =
        conclave_run.ok() ? Cell::Seconds(conclave_run->virtual_seconds) : Cell::Oom();
    table.AddRow(rows * 2, {smcql_cell, conclave_cell});
  }
  table.Print();
  table.WriteJson("fig7_aspirin", timer.Seconds());
}

// --- panel (b): comorbidity -------------------------------------------------------------

double EstimateSmcqlComorbidity(uint64_t total_rows) {
  const uint64_t partials =
      std::max<uint64_t>(2, static_cast<uint64_t>(0.1 * total_rows));
  const gc::GcOpCost agg = gc::AggregateCost(kModel, partials, 2, 1, false);
  const gc::GcOpCost sort = gc::SortCost(kModel, partials / 2, 2, 1);
  return static_cast<double>(agg.and_gates + sort.and_gates) *
         kModel.gc_seconds_per_and_gate * kModel.oblivm_slowdown;
}

Cell RunConclaveComorbidity(uint64_t total_rows) {
  api::Query query;
  auto h0 = query.AddParty("hospital0");
  auto h1 = query.AddParty("hospital1");
  auto d0 = query.NewTable("diag0", {{"pid"}, {"diag"}}, h0);
  auto d1 = query.NewTable("diag1", {{"pid"}, {"diag"}}, h1);
  query.Concat({d0, d1})
      .Count("cnt", {"diag"})
      .SortBy({"cnt"}, /*ascending=*/false)
      .Limit(10)
      .WriteToCsv("top", {h0, h1});

  data::HealthConfig config;
  config.rows_per_party = static_cast<int64_t>(total_rows / 2);
  config.distinct_key_fraction = 0.1;
  config.seed = total_rows;
  std::map<std::string, Relation> inputs;
  inputs["diag0"] = data::ComorbidityDiagnoses(config, 0);
  inputs["diag1"] = data::ComorbidityDiagnoses(config, 1);
  const auto result =
      query.Run(inputs, compiler::CompilerOptions{}, kModel, total_rows + 9);
  if (!result.ok()) {
    return result.status().code() == StatusCode::kResourceExhausted ? Cell::Oom()
                                                                    : Cell::Dnf();
  }
  return Cell::RunSeconds(result->virtual_seconds,
                          result->spill_report.spill_seconds);
}

// Conclave's secondary aggregation sorts ~0.2*n partial rows obliviously.
double EstimateConclaveComorbidity(uint64_t total_rows) {
  const uint64_t partials =
      std::max<uint64_t>(2, static_cast<uint64_t>(0.2 * total_rows));
  return static_cast<double>(gc::BatcherCompareExchanges(partials)) *
         kModel.ss_compare_seconds * 2;  // Aggregation sort + order-by sort.
}

void RunComorbidity(const std::vector<uint64_t>& total_sizes) {
  bench::WallTimer timer;
  bench::Table table("Figure 7b: comorbidity runtime [s] (total input records)",
                     {"smcql", "conclave"});
  smcql::RunConfig config;
  config.cost_model = kModel;
  for (uint64_t total : total_sizes) {
    Cell smcql_cell = Cell::Dnf();
    if (EstimateSmcqlComorbidity(total) <= kTimeBudgetSeconds) {
      data::HealthConfig health;
      health.rows_per_party = static_cast<int64_t>(total / 2);
      health.distinct_key_fraction = 0.1;
      health.seed = total + 3;
      const auto run = smcql::SmcqlComorbidity(
          data::ComorbidityDiagnoses(health, 0), data::ComorbidityDiagnoses(health, 1),
          10, config);
      smcql_cell = run.ok() ? Cell::Seconds(run->virtual_seconds) : Cell::Oom();
    }
    Cell conclave_cell = EstimateConclaveComorbidity(total) <= kTimeBudgetSeconds
                             ? RunConclaveComorbidity(total)
                             : Cell::Dnf();
    table.AddRow(total, {smcql_cell, conclave_cell});
  }
  table.Print();
  table.WriteJson("fig7_comorbidity", timer.Seconds());
}

// --- panel (c): recurrent c.diff --------------------------------------------------------

// Each shared patient costs a slice setup plus a small windowed self-join; events per
// patient are constant, so the per-slice MPC is tiny and setup dominates.
double EstimateSmcqlCdiff(uint64_t rows_per_party, double per_slice_seconds) {
  const double patients = static_cast<double>(rows_per_party) / 2;
  const double slices = 0.1 * patients;  // 10% patient overlap in this panel.
  return slices * per_slice_seconds + kModel.PythonSeconds(2 * rows_per_party);
}

void RunRecurrentCdiff(const std::vector<uint64_t>& per_party_sizes) {
  bench::WallTimer timer;
  bench::Table table(
      "Figure 7c (extension): recurrent c.diff runtime [s] (total event records)",
      {"smcql", "conclave"});
  smcql::RunConfig config;
  config.cost_model = kModel;
  config.per_slice_setup_seconds = 1.0;
  bool smcql_done = false;
  for (uint64_t rows : per_party_sizes) {
    data::HealthConfig health;
    health.rows_per_party = static_cast<int64_t>(rows);
    health.overlap_fraction = 0.1;
    health.seed = rows + 17;
    Relation diag0 = data::CdiffDiagnoses(health, 0);
    Relation diag1 = data::CdiffDiagnoses(health, 1);

    Cell smcql_cell = Cell::Dnf();
    if (!smcql_done &&
        EstimateSmcqlCdiff(rows, config.per_slice_setup_seconds) <=
            kTimeBudgetSeconds) {
      const auto run = smcql::SmcqlRecurrentCdiff(diag0, diag1, config);
      smcql_cell = run.ok() ? Cell::Seconds(run->virtual_seconds) : Cell::Oom();
    } else {
      smcql_done = true;
    }

    const auto conclave_run = smcql::ConclaveRecurrentCdiff(diag0, diag1, config);
    Cell conclave_cell =
        conclave_run.ok() ? Cell::Seconds(conclave_run->virtual_seconds) : Cell::Oom();
    table.AddRow(rows * 2, {smcql_cell, conclave_cell});
  }
  table.Print();
  table.WriteJson("fig7_cdiff", timer.Seconds());
}

}  // namespace
}  // namespace conclave

int main() {
  using namespace conclave;
  bench::TuneAllocatorForBench();
  std::vector<uint64_t> aspirin_per_party{10,    100,   1000,   4000,
                                          20000, 40000, 200000, 2000000};
  std::vector<uint64_t> comorbidity_total{10,    100,   1000,   10000,
                                          20000, 40000, 100000, 200000};
  std::vector<uint64_t> cdiff_per_party{10, 100, 1000, 4000, 20000, 100000};
  if (bench::SmallScale()) {
    aspirin_per_party = {10, 1000, 20000};
    comorbidity_total = {10, 1000, 20000};
    cdiff_per_party = {10, 1000, 20000};
  }
  RunAspirin(aspirin_per_party);
  RunComorbidity(comorbidity_total);
  RunRecurrentCdiff(cdiff_per_party);
  std::printf(
      "\nRecurrent c.diff has no figure in the paper (its prototype lacked window "
      "aggregates, \xc2\xa7""7.4); panel (c) above reproduces the *expected* trend the "
      "paper states: Conclave's advantage matches or exceeds the aspirin-count gap.\n");
  return 0;
}
