// Ablation study: the contribution of each compiler pass (DESIGN.md's design-choice
// index). Runs the two end-to-end queries with passes toggled individually:
//
//  * market concentration — push-down is the decisive pass (aggregation split);
//  * credit regulation    — the hybrid transform is decisive (join-first query);
//  * comorbidity          — sort elimination matters when an order-by follows a sort.
//
// Rows report simulated seconds; "all-off" corresponds to running the whole query
// under MPC (the paper's "Sharemind only" baselines).
#include "bench/bench_util.h"
#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

namespace conclave {
namespace {

const CostModel kModel;

struct Config {
  const char* name;
  bool push_down;
  bool push_up;
  bool hybrid;
  bool sort_elim;
  bool malicious = false;
  bool pad = false;
};

constexpr Config kConfigs[] = {
    {"all-on", true, true, true, true},
    {"no-push-down", false, true, true, true},
    {"no-push-up", true, false, true, true},
    {"no-hybrid", true, true, false, true},
    {"no-sort-elim", true, true, true, false},
    {"all-off", false, false, false, false},
    // Appendix A.5: all passes on, plus active security (commitments + ZK input
    // checks + the >=7x active-adversary MPC factor, §2.2).
    {"malicious", true, true, true, true, true},
    // §9: all passes on, plus adaptive padding of MPC-boundary cardinalities.
    {"padded", true, true, true, true, false, true},
};

compiler::CompilerOptions ToOptions(const Config& config) {
  compiler::CompilerOptions options;
  options.push_down = config.push_down;
  options.push_up = config.push_up;
  options.use_hybrid = config.hybrid;
  options.sort_elimination = config.sort_elim;
  options.malicious_security = config.malicious;
  options.pad_mpc_inputs = config.pad;
  return options;
}

double RunMarket(const Config& config, uint64_t total) {
  api::Query query;
  auto pa = query.AddParty("a");
  auto pb = query.AddParty("b");
  auto pc = query.AddParty("c");
  std::vector<api::ColumnSpec> columns{{"companyID"}, {"price"}};
  auto ta = query.NewTable("inputA", columns, pa);
  auto tb = query.NewTable("inputB", columns, pb);
  auto tc = query.NewTable("inputC", columns, pc);
  query.Concat({ta, tb, tc})
      .Filter("price", CompareOp::kGt, 0)
      .Aggregate("local_rev", AggKind::kSum, {"companyID"}, "price")
      .WriteToCsv("rev", {pa});

  std::map<std::string, Relation> inputs;
  const char* names[] = {"inputA", "inputB", "inputC"};
  for (int party = 0; party < 3; ++party) {
    data::TaxiConfig taxi;
    taxi.rows = static_cast<int64_t>(total / 3);
    taxi.company_id = party;
    taxi.seed = static_cast<uint64_t>(party) + 5;
    inputs[names[party]] = data::TaxiTrips(taxi);
  }
  const auto result = query.Run(inputs, ToOptions(config), kModel);
  return result.ok() ? result->virtual_seconds : -1.0;
}

double RunCredit(const Config& config, uint64_t total) {
  api::Query query;
  auto regulator = query.AddParty("regulator");
  auto bank1 = query.AddParty("bank1");
  auto bank2 = query.AddParty("bank2");
  auto demo = query.NewTable("demographics", {{"ssn"}, {"zip"}}, regulator);
  std::vector<api::ColumnSpec> bank_cols{{"ssn", {regulator}}, {"score"}};
  auto s1 = query.NewTable("scores1", bank_cols, bank1);
  auto s2 = query.NewTable("scores2", bank_cols, bank2);
  demo.Join(query.Concat({s1, s2}), {"ssn"}, {"ssn"})
      .Aggregate("total", AggKind::kSum, {"zip"}, "score")
      .WriteToCsv("out", {regulator});

  std::map<std::string, Relation> inputs;
  const int64_t ssn_space = static_cast<int64_t>(total) * 2;
  inputs["demographics"] =
      data::Demographics(static_cast<int64_t>(total / 2), ssn_space, 100, 3);
  inputs["scores1"] =
      data::CreditScores(static_cast<int64_t>(total / 4), ssn_space, 4);
  inputs["scores2"] =
      data::CreditScores(static_cast<int64_t>(total / 4), ssn_space, 5);
  const auto result = query.Run(inputs, ToOptions(config), kModel);
  return result.ok() ? result->virtual_seconds : -1.0;
}

double RunComorbidity(const Config& config, uint64_t total) {
  api::Query query;
  auto h0 = query.AddParty("h0");
  auto h1 = query.AddParty("h1");
  auto d0 = query.NewTable("diag0", {{"pid"}, {"diag"}}, h0);
  auto d1 = query.NewTable("diag1", {{"pid"}, {"diag"}}, h1);
  // SortBy(diag) before the count gives sort elimination something to elide in the
  // MPC aggregation.
  query.Concat({d0, d1})
      .SortBy({"diag"})
      .Count("cnt", {"diag"})
      .SortBy({"cnt"}, /*ascending=*/false)
      .Limit(10)
      .WriteToCsv("top", {h0});

  data::HealthConfig health;
  health.rows_per_party = static_cast<int64_t>(total / 2);
  health.seed = 6;
  std::map<std::string, Relation> inputs;
  inputs["diag0"] = data::ComorbidityDiagnoses(health, 0);
  inputs["diag1"] = data::ComorbidityDiagnoses(health, 1);
  const auto result = query.Run(inputs, ToOptions(config), kModel);
  return result.ok() ? result->virtual_seconds : -1.0;
}

}  // namespace
}  // namespace conclave

int main() {
  using namespace conclave;
  bench::TuneAllocatorForBench();
  const uint64_t market_rows = bench::SmallScale() ? 30000 : 300000;
  const uint64_t credit_rows = bench::SmallScale() ? 3000 : 20000;
  const uint64_t comorbidity_rows = bench::SmallScale() ? 2000 : 10000;

  std::printf("=== Ablation: per-pass contribution, simulated seconds ===\n");
  std::printf("%-14s  %18s  %16s  %18s\n", "config",
              StrFormat("market(%s)", HumanCount(market_rows).c_str()).c_str(),
              StrFormat("credit(%s)", HumanCount(credit_rows).c_str()).c_str(),
              StrFormat("comorbidity(%s)", HumanCount(comorbidity_rows).c_str())
                  .c_str());
  for (const auto& config : kConfigs) {
    const double market = RunMarket(config, market_rows);
    const double credit = RunCredit(config, credit_rows);
    const double comorbidity = RunComorbidity(config, comorbidity_rows);
    std::printf("%-14s  %18.1f  %16.1f  %18.1f\n", config.name, market, credit,
                comorbidity);
  }
  std::printf("(-1 = failed; larger numbers = slower plans)\n");
  return 0;
}
