// Intra-op scaling of the MPC data plane: oblivious sort and Beaver-multiplication
// throughput as the pool grows, with the determinism contract asserted at every
// point.
//
// Unlike bench/parallel_speedup (which overlaps independent *jobs*), this bench
// drives the secret-sharing engine directly, the way the dispatcher's MPC lane does:
// one serialized operation stream whose kernels fan morsels out over the pool bound
// to the calling thread. Counter-based randomness (common/rng.h CounterRng) makes
// every sharing a pure function of its operation stream, so the bench asserts the
// strong form of DESIGN.md §5: not just equal reconstructed outputs but bit-identical
// *shares*, plus identical virtual seconds and cost counters, at every pool size.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "conclave/common/check.h"
#include "conclave/common/thread_pool.h"
#include "conclave/data/generators.h"
#include "conclave/mpc/oblivious.h"
#include "conclave/mpc/protocols.h"

namespace conclave {
namespace {

struct Measurement {
  double sort_ms = 0;
  double mul_ms = 0;
  double virtual_seconds = 0;
  uint64_t network_bytes = 0;
  // Fingerprint of every share produced, for bit-identity across pool sizes.
  uint64_t share_digest = 0;
};

uint64_t DigestColumn(const SharedColumn& column, uint64_t digest) {
  for (int p = 0; p < kNumShareParties; ++p) {
    for (Ring v : column.shares[p]) {
      digest = (digest ^ v) * 0x100000001b3ULL;
    }
  }
  return digest;
}

uint64_t DigestRelation(const SharedRelation& rel, uint64_t digest) {
  for (int c = 0; c < rel.NumColumns(); ++c) {
    digest = DigestColumn(rel.Column(c), digest);
  }
  return digest;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

Measurement RunOnce(int pool_parallelism, int64_t sort_rows, int64_t mul_rows) {
  ThreadPool pool(pool_parallelism);
  ThreadPool::Scope scope(&pool);

  SimNetwork net{CostModel{}};
  SecretShareEngine engine(&net, /*seed=*/2024);
  Measurement m;

  // Oblivious sort: the dominant MPC aggregation cost (§5.3-5.4).
  Relation rel = data::UniformInts(sort_rows, {"k", "v"}, 1 << 20, /*seed=*/7);
  const auto sorted_input = mpc::InputRelation(engine, rel);
  CONCLAVE_CHECK(sorted_input.ok());
  const int keys[] = {0};
  const auto sort_start = std::chrono::steady_clock::now();
  SharedRelation sorted = ObliviousSort(engine, *sorted_input, keys);
  m.sort_ms = MsSince(sort_start);
  m.share_digest = DigestRelation(sorted, 0xcbf29ce484222325ULL);

  // Beaver multiplication throughput on one big batch.
  Relation mul_rel = data::UniformInts(mul_rows, {"a", "b"}, 1 << 20, /*seed=*/8);
  SharedColumn a = engine.ShareColumn(mul_rel, 0);
  SharedColumn b = engine.ShareColumn(mul_rel, 1);
  const auto mul_start = std::chrono::steady_clock::now();
  SharedColumn product = engine.Mul(a, b);
  m.mul_ms = MsSince(mul_start);
  m.share_digest = DigestColumn(product, m.share_digest);

  m.virtual_seconds = net.ElapsedSeconds();
  m.network_bytes = net.counters().network_bytes;
  return m;
}

}  // namespace
}  // namespace conclave

int main() {
  using namespace conclave;
  bench::TuneAllocatorForBench();
  bench::WallTimer timer;

  const int64_t sort_rows = bench::SmallScale() ? 2000 : 20000;
  const int64_t mul_rows = bench::SmallScale() ? 1 << 18 : 1 << 22;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("MPC data-plane intra-op scaling (sort %lld rows, mul batch %lld, "
              "hardware threads: %d)\n",
              static_cast<long long>(sort_rows), static_cast<long long>(mul_rows),
              hw);
  std::printf("%-10s %12s %12s %12s %12s %16s\n", "pool", "sort [ms]", "speedup",
              "mul [ms]", "speedup", "virtual [s]");

  Measurement baseline;
  std::vector<std::pair<int, Measurement>> results;
  for (int pool : {1, 2, 4, 8}) {
    RunOnce(pool, sort_rows / 2, mul_rows / 4);  // Warm-up at reduced size.
    const Measurement m = RunOnce(pool, sort_rows, mul_rows);
    if (pool == 1) {
      baseline = m;
    }
    // The determinism contract, strong form: identical virtual clock, counters, and
    // share bits at every pool size.
    CONCLAVE_CHECK(m.virtual_seconds == baseline.virtual_seconds);
    CONCLAVE_CHECK_EQ(m.network_bytes, baseline.network_bytes);
    CONCLAVE_CHECK_EQ(m.share_digest, baseline.share_digest);
    std::printf("%-10d %12.1f %11.2fx %12.1f %11.2fx %16.6f\n", pool, m.sort_ms,
                baseline.sort_ms / m.sort_ms, m.mul_ms, baseline.mul_ms / m.mul_ms,
                m.virtual_seconds);
    results.emplace_back(pool, m);
  }
  std::printf("\nvirtual seconds, byte counters, and share bits identical across "
              "the sweep (asserted).\n");

  // Machine-readable dump alongside the figure benches' JSONs.
  {
    std::string dir = ".";
    if (const char* env = std::getenv("CONCLAVE_BENCH_JSON_DIR")) {
      dir = env;
    }
    const std::string path = dir + "/BENCH_mpc_speedup.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n  \"bench\": \"mpc_speedup\",\n  \"sort_rows\": %lld,\n"
                   "  \"mul_rows\": %lld,\n  \"wall_clock_seconds\": %.6f,\n"
                   "  \"virtual_seconds\": %.6f,\n  \"pools\": [\n",
                   static_cast<long long>(sort_rows),
                   static_cast<long long>(mul_rows), timer.Seconds(),
                   baseline.virtual_seconds);
      for (size_t i = 0; i < results.size(); ++i) {
        std::fprintf(f,
                     "    {\"pool\": %d, \"sort_ms\": %.3f, \"mul_ms\": %.3f}%s\n",
                     results[i].first, results[i].second.sort_ms,
                     results[i].second.mul_ms,
                     i + 1 == results.size() ? "" : ",");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return 0;
}
