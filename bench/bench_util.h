// Shared helpers for the figure-reproduction benches: aligned table printing with the
// paper's conventions (log-scale size sweeps; DNF rows for runs past the time budget;
// OOM rows for simulated memory exhaustion), machine-readable JSON result dumps, and
// bench-process allocator tuning.
#ifndef CONCLAVE_BENCH_BENCH_UTIL_H_
#define CONCLAVE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "conclave/common/strings.h"

namespace conclave {
namespace bench {

// Runs past this simulated budget print as DNF, mirroring the paper's "did not
// complete within two hours" cutoffs while keeping real CPU time bounded.
inline constexpr double kTimeBudgetSeconds = 7200.0;

// Figure benches churn through relation-sized buffers (hundreds of MB at the top of
// a sweep). glibc hands allocations above its mmap threshold straight to the kernel
// and unmaps them on free, so every large temporary costs a fresh round of page
// faults — the dominant wall-clock term at the 10M-row points, and a noisy one.
// Raising the thresholds keeps freed blocks on the heap for reuse. Benches opt in at
// the top of main(); the library never touches process-wide allocator policy.
inline void TuneAllocatorForBench() {
#if defined(__GLIBC__)
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
#endif
}

// One measured cell: seconds, or a marker (DNF / OOM / skipped).
struct Cell {
  enum class Kind { kSeconds, kDnf, kOom, kSkip } kind = Kind::kSkip;
  double seconds = 0;
  bool modeled = false;  // Analytic extrapolation, not an executed run.
  // Priced spill I/O charge (DESIGN.md §12), recorded separately from the
  // spill-free base clock in `seconds`: clock(budget) = clock(unbounded) +
  // spill charge, exactly, so a CONCLAVE_MEM_BUDGET re-run reproduces the
  // unbounded goldens' virtual_seconds bit for bit and diffs clean under
  // `diff_bench_json.py --ignore-key spill_seconds` (the key is omitted from
  // the JSON when zero, i.e. in every unbounded golden).
  double spill_seconds = 0;

  static Cell Seconds(double s, bool is_modeled = false) {
    Cell cell;
    cell.kind = Kind::kSeconds;
    cell.seconds = s;
    cell.modeled = is_modeled;
    return cell;
  }
  // For cells fed by a dispatcher ExecutionResult: pass the measured
  // virtual_seconds and the run's spill_report.spill_seconds; the cell stores
  // the spill-free base clock plus the charge.
  static Cell RunSeconds(double virtual_seconds, double spill_charge) {
    Cell cell = Seconds(virtual_seconds - spill_charge);
    cell.spill_seconds = spill_charge;
    return cell;
  }
  static Cell Dnf() {
    Cell cell;
    cell.kind = Kind::kDnf;
    return cell;
  }
  static Cell Oom() {
    Cell cell;
    cell.kind = Kind::kOom;
    return cell;
  }
  static Cell Skip() { return Cell{}; }

  std::string ToString() const {
    switch (kind) {
      case Kind::kSeconds:
        return StrFormat(modeled ? "%.1f*" : "%.1f", seconds);
      case Kind::kDnf:
        return "DNF";
      case Kind::kOom:
        return "OOM";
      case Kind::kSkip:
        return "-";
    }
    return "-";
  }

  const char* KindName() const {
    switch (kind) {
      case Kind::kSeconds:
        return "seconds";
      case Kind::kDnf:
        return "dnf";
      case Kind::kOom:
        return "oom";
      case Kind::kSkip:
        return "skip";
    }
    return "skip";
  }
};

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(uint64_t size, std::vector<Cell> cells) {
    rows_.push_back({size, std::move(cells)});
  }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%12s", "records");
    for (const auto& column : columns_) {
      std::printf("  %16s", column.c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%12s", HumanCount(row.size).c_str());
      for (const auto& cell : row.cells) {
        std::printf("  %16s", cell.ToString().c_str());
      }
      std::printf("\n");
    }
    std::printf("(seconds of simulated time; * = modeled point; DNF = exceeds %.0f s "
                "budget; OOM = simulated memory exhaustion)\n",
                kTimeBudgetSeconds);
  }

  // Machine-readable dump: BENCH_<name>.json in the working directory (override the
  // directory with CONCLAVE_BENCH_JSON_DIR). Cells carry the simulated (virtual)
  // seconds; wall_clock_seconds is the bench's real elapsed time, establishing the
  // perf trajectory across PRs.
  void WriteJson(const std::string& bench_name, double wall_clock_seconds) const {
    std::string dir = ".";
    if (const char* env = std::getenv("CONCLAVE_BENCH_JSON_DIR")) {
      dir = env;
    }
    const std::string path = dir + "/BENCH_" + bench_name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"title\": \"%s\",\n",
                 bench_name.c_str(), title_.c_str());
    std::fprintf(f, "  \"wall_clock_seconds\": %.6f,\n", wall_clock_seconds);
    std::fprintf(f, "  \"columns\": [");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", columns_[i].c_str());
    }
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      const Row& row = rows_[r];
      std::fprintf(f, "    {\"records\": %llu, \"cells\": [",
                   static_cast<unsigned long long>(row.size));
      for (size_t i = 0; i < row.cells.size(); ++i) {
        const Cell& cell = row.cells[i];
        std::fprintf(f, "%s{\"kind\": \"%s\"", i == 0 ? "" : ", ",
                     cell.KindName());
        if (cell.kind == Cell::Kind::kSeconds) {
          std::fprintf(f, ", \"virtual_seconds\": %.6f, \"modeled\": %s",
                       cell.seconds, cell.modeled ? "true" : "false");
          if (cell.spill_seconds != 0) {
            std::fprintf(f, ", \"spill_seconds\": %.6f", cell.spill_seconds);
          }
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "]}%s\n", r + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Row {
    uint64_t size;
    std::vector<Cell> cells;
  };
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

// Wall-clock timer for the JSON dumps: construct at the top of main().
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Bench scale knob: CONCLAVE_BENCH_SCALE=small caps sweeps for quick CI runs.
inline bool SmallScale() {
  const char* env = std::getenv("CONCLAVE_BENCH_SCALE");
  return env != nullptr && std::string(env) == "small";
}

// --filter=<substring> (or "--filter <substring>"): restricts a bench's custom
// sweep to the columns whose name contains the substring, so a single
// microbench row can be re-run in an A/B loop without paying for the whole
// suite. Construct at the top of main(), BEFORE benchmark::Initialize — the
// constructor consumes the flag from argv so google-benchmark's own parser
// (which rejects unknown flags) never sees it. Empty filter = run everything.
class BenchFilter {
 public:
  BenchFilter(int* argc, char** argv) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      const std::string arg = argv[i];
      const std::string prefix = "--filter=";
      if (arg.rfind(prefix, 0) == 0) {
        pattern_ = arg.substr(prefix.size());
      } else if (arg == "--filter" && i + 1 < *argc) {
        pattern_ = argv[++i];
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  bool Empty() const { return pattern_.empty(); }
  const std::string& pattern() const { return pattern_; }

  // True when the column named `name` should run this invocation.
  bool Enabled(const std::string& name) const {
    return pattern_.empty() || name.find(pattern_) != std::string::npos;
  }

 private:
  std::string pattern_;
};

}  // namespace bench
}  // namespace conclave

#endif  // CONCLAVE_BENCH_BENCH_UTIL_H_
