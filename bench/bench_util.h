// Shared helpers for the figure-reproduction benches: aligned table printing with the
// paper's conventions (log-scale size sweeps; DNF rows for runs past the time budget;
// OOM rows for simulated memory exhaustion).
#ifndef CONCLAVE_BENCH_BENCH_UTIL_H_
#define CONCLAVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "conclave/common/strings.h"

namespace conclave {
namespace bench {

// Runs past this simulated budget print as DNF, mirroring the paper's "did not
// complete within two hours" cutoffs while keeping real CPU time bounded.
inline constexpr double kTimeBudgetSeconds = 7200.0;

// One measured cell: seconds, or a marker (DNF / OOM / skipped).
struct Cell {
  enum class Kind { kSeconds, kDnf, kOom, kSkip } kind = Kind::kSkip;
  double seconds = 0;
  bool modeled = false;  // Analytic extrapolation, not an executed run.

  static Cell Seconds(double s, bool is_modeled = false) {
    Cell cell;
    cell.kind = Kind::kSeconds;
    cell.seconds = s;
    cell.modeled = is_modeled;
    return cell;
  }
  static Cell Dnf() {
    Cell cell;
    cell.kind = Kind::kDnf;
    return cell;
  }
  static Cell Oom() {
    Cell cell;
    cell.kind = Kind::kOom;
    return cell;
  }
  static Cell Skip() { return Cell{}; }

  std::string ToString() const {
    switch (kind) {
      case Kind::kSeconds:
        return StrFormat(modeled ? "%.1f*" : "%.1f", seconds);
      case Kind::kDnf:
        return "DNF";
      case Kind::kOom:
        return "OOM";
      case Kind::kSkip:
        return "-";
    }
    return "-";
  }
};

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(uint64_t size, std::vector<Cell> cells) {
    rows_.push_back({size, std::move(cells)});
  }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%12s", "records");
    for (const auto& column : columns_) {
      std::printf("  %16s", column.c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%12s", HumanCount(row.size).c_str());
      for (const auto& cell : row.cells) {
        std::printf("  %16s", cell.ToString().c_str());
      }
      std::printf("\n");
    }
    std::printf("(seconds of simulated time; * = modeled point; DNF = exceeds %.0f s "
                "budget; OOM = simulated memory exhaustion)\n",
                kTimeBudgetSeconds);
  }

 private:
  struct Row {
    uint64_t size;
    std::vector<Cell> cells;
  };
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

// Bench scale knob: CONCLAVE_BENCH_SCALE=small caps sweeps for quick CI runs.
inline bool SmallScale() {
  const char* env = std::getenv("CONCLAVE_BENCH_SCALE");
  return env != nullptr && std::string(env) == "small";
}

}  // namespace bench
}  // namespace conclave

#endif  // CONCLAVE_BENCH_BENCH_UTIL_H_
