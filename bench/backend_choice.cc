// Backend-choice study (§9 extension): for query shapes with opposite cost profiles,
// run the MPC part under forced Sharemind, forced Obliv-C, and the cost-based
// chooser, reporting simulated seconds. The chooser should track the per-shape winner
// without being told.
//
// Shapes:
//   * projection  — linear pass; garbled circuits evaluate it nearly for free while
//                   secret sharing pays its per-record storage layer (Fig. 1c).
//   * join+agg    — comparison-heavy; secret sharing's batched equality tests win
//                   (Fig. 1a/1b), and big sizes OOM the GC engine.
#include <cmath>

#include "bench/bench_util.h"
#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

namespace conclave {
namespace {

using bench::Cell;

const CostModel kModel;

struct RunOutcome {
  Cell cell = Cell::Dnf();
  compiler::MpcBackendKind backend = compiler::MpcBackendKind::kSharemind;
  double est_sharemind = 0;  // The chooser's explain totals (auto mode only).
  double est_oblivc = 0;
};

enum class Shape { kProjection, kJoinAgg };

RunOutcome RunShape(Shape shape, uint64_t rows_per_party, int mode /*0=SM,1=GC,2=auto*/) {
  api::Query query;
  api::Party alice = query.AddParty("alice");
  api::Party bob = query.AddParty("bob");
  const auto rows = static_cast<int64_t>(rows_per_party);
  api::Table a = query.NewTable("a", {{"k"}, {"v"}}, alice, rows);
  api::Table b = query.NewTable("b", {{"k"}, {"v"}}, bob, rows);
  if (shape == Shape::kProjection) {
    query.Concat({a, b}).Project({"v"}).WriteToCsv("out", {alice});
  } else {
    a.Join(b, {"k"}, {"k"})
        .Aggregate("total", AggKind::kSum, {"k"}, "v")
        .WriteToCsv("out", {alice});
  }

  std::map<std::string, Relation> inputs;
  inputs["a"] = data::UniformInts(rows, {"k", "v"}, 1000, rows_per_party + 1);
  inputs["b"] = data::UniformInts(rows, {"k", "v"}, 1000, rows_per_party + 2);

  compiler::CompilerOptions options;
  options.mpc_backend = mode == 1 ? compiler::MpcBackendKind::kOblivC
                                  : compiler::MpcBackendKind::kSharemind;
  options.auto_backend = mode == 2;
  options.planning_cost_model = kModel;

  auto compilation = query.Compile(options);
  if (!compilation.ok()) {
    return {};
  }
  RunOutcome outcome;
  outcome.backend = compilation->options.mpc_backend;
  if (compilation->has_cost_report) {
    outcome.est_sharemind = compilation->cost_report.sharemind_seconds;
    outcome.est_oblivc = compilation->cost_report.oblivc_seconds;
  }
  backends::Dispatcher dispatcher(kModel, rows_per_party + 7);
  const auto result = dispatcher.Run(query.dag(), *compilation, inputs);
  if (!result.ok()) {
    outcome.cell = result.status().code() == StatusCode::kResourceExhausted
                       ? Cell::Oom()
                       : Cell::Dnf();
    return outcome;
  }
  outcome.cell = Cell::Seconds(result->virtual_seconds);
  return outcome;
}

void RunTable(const char* title, const char* json_name, Shape shape,
              const std::vector<uint64_t>& sizes) {
  bench::WallTimer timer;
  bench::Table table(title, {"sharemind", "obliv-c", "auto (choice)"});
  for (uint64_t rows : sizes) {
    const RunOutcome sm = RunShape(shape, rows, 0);
    const RunOutcome gc = RunShape(shape, rows, 1);
    RunOutcome chosen = RunShape(shape, rows, 2);
    // Annotate the auto column with the chosen backend and the explain totals.
    Cell annotated = chosen.cell;
    table.AddRow(rows * 2, {sm.cell, gc.cell, annotated});
    std::printf("    -> auto picked %s at %s rows/party (est. sharemind %s, "
                "obliv-c %s)\n",
                compiler::MpcBackendName(chosen.backend), HumanCount(rows).c_str(),
                compiler::FormatPlanSeconds(chosen.est_sharemind, 1).c_str(),
                compiler::FormatPlanSeconds(chosen.est_oblivc, 1).c_str());
  }
  table.Print();
  table.WriteJson(json_name, timer.Seconds());
}

}  // namespace
}  // namespace conclave

int main() {
  using namespace conclave;
  bench::TuneAllocatorForBench();
  RunTable("Backend choice: PROJECT-only query [s]", "backend_choice_project",
           Shape::kProjection, {100, 1000, 10000, 50000});
  RunTable("Backend choice: JOIN+aggregate query [s]", "backend_choice_joinagg",
           Shape::kJoinAgg, {100, 300, 1000, 3000});
  return 0;
}
