// Figure 4: the market-concentration (HHI) query end to end (§7.1).
//
// Three series over total input records:
//  * "sharemind-only"  — the whole query under secret-sharing MPC (no rewrites);
//  * "insecure spark"  — a single nine-node Spark cluster over the combined cleartext
//                        data (includes consolidating the inputs over the network);
//  * "conclave"        — the full pipeline: push-down splits the aggregation, so all
//                        data-intensive work runs in per-party parallel Spark jobs and
//                        only a few revenue totals enter MPC.
//
// Expected shape: sharemind-only explodes past ~10k records; Conclave stays roughly
// linear (Spark-bound); insecure Spark is slightly slower than Conclave at small-to-
// medium sizes (one consolidated job vs. three parallel ones plus transfer) and edges
// ahead at the top end. The paper's 100M/1.3B points are model-extrapolated (marked *)
// to keep this bench laptop-sized; all smaller points execute for real.
#include "bench/bench_util.h"
#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

namespace conclave {
namespace {

using bench::Cell;
using bench::kTimeBudgetSeconds;

const CostModel kModel;

std::map<std::string, Relation> MakeInputs(uint64_t total) {
  std::map<std::string, Relation> inputs;
  const char* names[] = {"inputA", "inputB", "inputC"};
  for (int party = 0; party < 3; ++party) {
    data::TaxiConfig config;
    config.rows = static_cast<int64_t>(total / 3);
    config.company_id = party;
    config.seed = static_cast<uint64_t>(party) + 17;
    inputs[names[party]] = data::TaxiTrips(config);
  }
  return inputs;
}

// Builds the Listing 2 query; queries are single-use (compilation rewrites the DAG).
void BuildQuery(api::Query& query, uint64_t rows_hint) {
  auto pa = query.AddParty("a");
  auto pb = query.AddParty("b");
  auto pc = query.AddParty("c");
  std::vector<api::ColumnSpec> columns{{"companyID"}, {"price"}};
  auto ta = query.NewTable("inputA", columns, pa, static_cast<int64_t>(rows_hint / 3));
  auto tb = query.NewTable("inputB", columns, pb, static_cast<int64_t>(rows_hint / 3));
  auto tc = query.NewTable("inputC", columns, pc, static_cast<int64_t>(rows_hint / 3));
  auto rev = query.Concat({ta, tb, tc})
                 .Filter("price", CompareOp::kGt, 0)
                 .Aggregate("local_rev", AggKind::kSum, {"companyID"}, "price");
  auto keyed = rev.MultiplyConst("zero", "local_rev", 0).AddConst("one", "zero", 1);
  auto market_size = keyed.Aggregate("total_rev", AggKind::kSum, {"one"}, "local_rev");
  keyed.Join(market_size, {"one"}, {"one"})
      .Divide("m_share", "local_rev", "total_rev", 10000)
      .Multiply("ms_squared", "m_share", "m_share")
      .Aggregate("hhi", AggKind::kSum, {}, "ms_squared")
      .WriteToCsv("hhi", {pa});
}

Cell RunPipeline(uint64_t total, bool enable_passes,
                 const std::map<std::string, Relation>& inputs) {
  api::Query query;
  BuildQuery(query, total);
  compiler::CompilerOptions options;
  options.push_down = enable_passes;
  options.push_up = enable_passes;
  options.use_hybrid = enable_passes;
  options.sort_elimination = enable_passes;
  const auto result = query.Run(inputs, options, kModel);
  if (!result.ok()) {
    return result.status().code() == StatusCode::kResourceExhausted ? Cell::Oom()
                                                                    : Cell::Dnf();
  }
  return Cell::RunSeconds(result->virtual_seconds,
                          result->spill_report.spill_seconds);
}

// Whole-query-under-MPC estimate: ingest + oblivious filter + sorting-network
// aggregation dominate.
double EstimateSharemindOnly(uint64_t total) {
  return static_cast<double>(total) * kModel.ss_record_io_seconds +
         static_cast<double>(total) * kModel.ss_compare_seconds +  // Filter.
         static_cast<double>(gc::BatcherCompareExchanges(total)) *
             kModel.ss_compare_seconds;  // Aggregation sort.
}

Cell RunInsecureSpark(uint64_t total) {
  // Consolidate two parties' inputs onto the joint cluster, then one 9-worker job.
  const double transfer =
      kModel.SecondsForBytes(total * 2 / 3 * 16);  // 2 of 3 shares move.
  return Cell::Seconds(transfer + kModel.SparkSeconds(total, 9) +
                       kModel.PythonSeconds(16));  // Tiny HHI tail at the recipient.
}

double ModelConclave(uint64_t total) {
  return kModel.SparkSeconds(total / 3, kModel.spark_workers_per_party) + 1.0;
}

double ModelInsecure(uint64_t total) {
  return kModel.SecondsForBytes(total * 2 / 3 * 16) + kModel.SparkSeconds(total, 9);
}

}  // namespace
}  // namespace conclave

int main() {
  using namespace conclave;
  using bench::Cell;
  bench::TuneAllocatorForBench();
  bench::WallTimer timer;

  std::vector<uint64_t> executed_sizes{10,     100,     1000,    10000,
                                       100000, 1000000, 3000000, 10000000};
  if (bench::SmallScale()) {
    executed_sizes = {10, 1000, 100000};
  }

  bench::Table table("Figure 4: market concentration (HHI) query runtime [s]",
                     {"sharemind-only", "insecure spark", "conclave"});
  bool sharemind_done = false;
  for (uint64_t total : executed_sizes) {
    const auto inputs = MakeInputs(total);
    Cell sharemind = Cell::Dnf();
    if (!sharemind_done && EstimateSharemindOnly(total) <= bench::kTimeBudgetSeconds) {
      sharemind = RunPipeline(total, /*enable_passes=*/false, inputs);
    } else {
      sharemind_done = true;
    }
    table.AddRow(total, {sharemind, RunInsecureSpark(total),
                         RunPipeline(total, /*enable_passes=*/true, inputs)});
  }
  // Paper-scale extrapolations (the authors' 1.3B-row NYC taxi corpus).
  for (uint64_t total : {100000000ULL, 1300000000ULL}) {
    table.AddRow(total, {Cell::Dnf(), Cell::Seconds(ModelInsecure(total), true),
                         Cell::Seconds(ModelConclave(total), true)});
  }
  table.Print();
  table.WriteJson("fig4_market", timer.Seconds());
  return 0;
}
