// Figure 5: hybrid operator microbenchmarks (§7.2).
//
// Panel (a): join on trust-annotated keys — Sharemind's Cartesian MPC join vs.
// Conclave's hybrid join (STP learns keys) vs. Conclave's public join (keys public).
// Panel (b): grouped aggregation — Sharemind's sorting-network aggregation vs.
// Conclave's hybrid aggregation (STP sorts in the clear).
//
// Expected shape: the MPC join/aggregation blow up (O(n^2) equality tests /
// O(n log^2 n) oblivious comparisons); the hybrid operators scale near-linearly; the
// public join is cheapest (no MPC at all) and completes at 2M records, where the
// hybrid join's MPC step exhausts Sharemind's memory — all mirroring the paper.
#include <cmath>

#include "bench/bench_util.h"
#include "conclave/data/generators.h"
#include "conclave/hybrid/hybrid_agg.h"
#include "conclave/hybrid/hybrid_join.h"
#include "conclave/hybrid/public_join.h"
#include "conclave/mpc/garbled/gc_cost.h"

namespace conclave {
namespace {

using bench::Cell;
using bench::kTimeBudgetSeconds;

const CostModel kModel;
constexpr PartyId kStp = 2;
constexpr int kParties = 3;

double Log2(double x) { return std::log2(std::max(2.0, x)); }

// --- estimates matching the engines' charging formulas --------------------------------

double EstMpcJoin(uint64_t total) {
  const double half = static_cast<double>(total) / 2;
  return half * half * kModel.ss_equality_seconds +
         static_cast<double>(total) * kModel.ss_record_io_seconds;
}

double EstHybridJoin(uint64_t total) {
  const double n = static_cast<double>(total);
  return n * kModel.ss_record_io_seconds +
         2 * n * Log2(n) * kModel.ss_select_op_seconds;
}

double EstPublicJoin(uint64_t total) {
  return static_cast<double>(total) * kModel.ss_record_io_seconds +
         kModel.PythonSeconds(total);
}

double EstMpcAgg(uint64_t total) {
  return static_cast<double>(total) * kModel.ss_record_io_seconds +
         static_cast<double>(gc::BatcherCompareExchanges(total)) *
             kModel.ss_compare_seconds;
}

double EstHybridAgg(uint64_t total) {
  const double n = static_cast<double>(total);
  return n * kModel.ss_record_io_seconds + 3 * n * Log2(n) * kModel.ss_mult_seconds +
         kModel.PythonSeconds(total);
}

// --- executed runs --------------------------------------------------------------------

struct JoinData {
  SharedRelation left;
  SharedRelation right;
};

StatusOr<JoinData> ShareJoinInputs(SecretShareEngine& engine, uint64_t total) {
  Relation left = data::UniformInts(static_cast<int64_t>(total / 2), {"k", "x"},
                                    std::max<int64_t>(2, static_cast<int64_t>(total)),
                                    1);
  Relation right = data::UniformInts(static_cast<int64_t>(total / 2), {"k", "y"},
                                     std::max<int64_t>(2, static_cast<int64_t>(total)),
                                     2);
  JoinData data;
  CONCLAVE_ASSIGN_OR_RETURN(data.left, mpc::InputRelation(engine, left));
  CONCLAVE_ASSIGN_OR_RETURN(data.right, mpc::InputRelation(engine, right));
  return data;
}

Cell RunJoin(uint64_t total, int variant) {
  const double estimate = variant == 0   ? EstMpcJoin(total)
                          : variant == 1 ? EstHybridJoin(total)
                                         : EstPublicJoin(total);
  // Memory pre-flight for the hybrid join (6 live copies of 2-column inputs).
  if (variant == 1 &&
      !mpc::CheckWorkingSet(kModel, 6 * total * 2).ok()) {
    return Cell::Oom();
  }
  if (estimate > kTimeBudgetSeconds) {
    return Cell::Dnf();
  }
  SimNetwork net(kModel);
  SecretShareEngine engine(&net, total + 3);
  auto data = ShareJoinInputs(engine, total);
  if (!data.ok()) {
    return Cell::Oom();
  }
  const int keys[] = {0};
  StatusOr<SharedRelation> result = [&]() -> StatusOr<SharedRelation> {
    switch (variant) {
      case 0:
        return mpc::Join(engine, data->left, data->right, keys, keys);
      case 1:
        return hybrid::HybridJoin(engine, data->left, data->right, keys, keys, kStp,
                                  kParties);
      default:
        return hybrid::PublicJoinShared(engine, data->left, data->right, keys, keys,
                                        kStp, kParties);
    }
  }();
  if (!result.ok()) {
    return result.status().code() == StatusCode::kResourceExhausted ? Cell::Oom()
                                                                    : Cell::Dnf();
  }
  return Cell::Seconds(net.ElapsedSeconds());
}

Cell RunAgg(uint64_t total, int variant) {
  const double estimate = variant == 0 ? EstMpcAgg(total) : EstHybridAgg(total);
  if (estimate > kTimeBudgetSeconds) {
    return Cell::Dnf();
  }
  SimNetwork net(kModel);
  SecretShareEngine engine(&net, total + 4);
  Relation rel = data::UniformInts(
      static_cast<int64_t>(total), {"g", "v"},
      std::max<int64_t>(2, static_cast<int64_t>(total) / 10), 5);
  auto shared = mpc::InputRelation(engine, rel);
  if (!shared.ok()) {
    return Cell::Oom();
  }
  const int group[] = {0};
  StatusOr<SharedRelation> result =
      variant == 0
          ? mpc::Aggregate(engine, *shared, group, AggKind::kSum, 1, "s")
          : hybrid::HybridAggregate(engine, *shared, group, AggKind::kSum, 1, "s",
                                    kStp, kParties);
  if (!result.ok()) {
    return result.status().code() == StatusCode::kResourceExhausted ? Cell::Oom()
                                                                    : Cell::Dnf();
  }
  return Cell::Seconds(net.ElapsedSeconds());
}

}  // namespace
}  // namespace conclave

int main() {
  using namespace conclave;
  using bench::Cell;
  bench::TuneAllocatorForBench();

  std::vector<uint64_t> join_sizes{10,     100,    1000,    10000, 100000,
                                   200000, 1000000, 2000000};
  std::vector<uint64_t> agg_sizes{10, 100, 1000, 10000, 30000, 100000};
  if (bench::SmallScale()) {
    join_sizes = {10, 1000, 100000};
    agg_sizes = {10, 1000, 30000};
  }

  bench::WallTimer join_timer;
  bench::Table join_table("Figure 5a: hybrid join runtime [s]",
                          {"sharemind join", "hybrid join", "public join"});
  for (uint64_t n : join_sizes) {
    join_table.AddRow(n, {RunJoin(n, 0), RunJoin(n, 1), RunJoin(n, 2)});
  }
  join_table.Print();
  join_table.WriteJson("fig5_join", join_timer.Seconds());

  bench::WallTimer agg_timer;
  bench::Table agg_table("Figure 5b: hybrid aggregation runtime [s]",
                         {"sharemind agg", "hybrid agg"});
  for (uint64_t n : agg_sizes) {
    agg_table.AddRow(n, {RunAgg(n, 0), RunAgg(n, 1)});
  }
  agg_table.Print();
  agg_table.WriteJson("fig5_agg", agg_timer.Seconds());
  return 0;
}
