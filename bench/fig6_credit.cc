// Figure 6: the credit-card regulation query end to end (§7.3).
//
// Two series over total input records (half demographics at the regulator, half
// credit scores split across two banks):
//  * "sharemind-only" — no trust annotations, no rewrites: the join-first query runs
//    entirely under MPC (the push-down cannot help because the first operator is a
//    join), so the O(n^2) oblivious join dominates;
//  * "conclave" — ssn annotated trust={regulator}: the compiler inserts a hybrid join
//    and hybrid aggregations with the regulator as STP.
//
// Expected shape: sharemind-only explodes quadratically (the paper: unusable past 3k,
// DNF at 30k under a 2 h budget); Conclave scales to 300k in tens of minutes.
#include "bench/bench_util.h"
#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

namespace conclave {
namespace {

using bench::Cell;
using bench::kTimeBudgetSeconds;

const CostModel kModel;

void BuildQuery(api::Query& query, bool annotate, uint64_t rows_hint) {
  auto regulator = query.AddParty("regulator");
  auto bank1 = query.AddParty("bank1");
  auto bank2 = query.AddParty("bank2");
  std::vector<api::ColumnSpec> bank_cols =
      annotate ? std::vector<api::ColumnSpec>{{"ssn", {regulator}}, {"score"}}
               : std::vector<api::ColumnSpec>{{"ssn"}, {"score"}};
  auto demo = query.NewTable("demographics", {{"ssn"}, {"zip"}}, regulator,
                             static_cast<int64_t>(rows_hint / 2));
  auto s1 = query.NewTable("scores1", bank_cols, bank1,
                           static_cast<int64_t>(rows_hint / 4));
  auto s2 = query.NewTable("scores2", bank_cols, bank2,
                           static_cast<int64_t>(rows_hint / 4));
  auto joined = demo.Join(query.Concat({s1, s2}), {"ssn"}, {"ssn"});
  auto by_zip = joined.Count("count", {"zip"});
  auto total = joined.Aggregate("total", AggKind::kSum, {"zip"}, "score");
  total.Join(by_zip, {"zip"}, {"zip"})
      .Divide("avg_score", "total", "count")
      .WriteToCsv("avg_scores", {regulator});
}

std::map<std::string, Relation> MakeInputs(uint64_t total) {
  std::map<std::string, Relation> inputs;
  const int64_t demo_rows = static_cast<int64_t>(total / 2);
  const int64_t bank_rows = static_cast<int64_t>(total / 4);
  const int64_t ssn_space = std::max<int64_t>(4, static_cast<int64_t>(total) * 2);
  inputs["demographics"] = data::Demographics(demo_rows, ssn_space, 100, 31);
  inputs["scores1"] = data::CreditScores(bank_rows, ssn_space, 32);
  inputs["scores2"] = data::CreditScores(bank_rows, ssn_space, 33);
  return inputs;
}

// The oblivious join over n/2 x n/2 rows dominates the unannotated run.
double EstimateSharemindOnly(uint64_t total) {
  const double half = static_cast<double>(total) / 2;
  return half * half * kModel.ss_equality_seconds;
}

Cell Run(uint64_t total, bool annotate) {
  api::Query query;
  BuildQuery(query, annotate, total);
  const auto result = query.Run(MakeInputs(total), compiler::CompilerOptions{},
                                kModel, total + 7);
  if (!result.ok()) {
    return result.status().code() == StatusCode::kResourceExhausted ? Cell::Oom()
                                                                    : Cell::Dnf();
  }
  return Cell::RunSeconds(result->virtual_seconds,
                          result->spill_report.spill_seconds);
}

}  // namespace
}  // namespace conclave

int main() {
  using namespace conclave;
  using bench::Cell;

  bench::TuneAllocatorForBench();
  bench::WallTimer timer;
  std::vector<uint64_t> sizes{10, 100, 1000, 3000, 10000, 30000, 100000, 300000};
  if (bench::SmallScale()) {
    sizes = {10, 1000, 30000};
  }

  bench::Table table("Figure 6: credit card regulation query runtime [s]",
                     {"sharemind-only", "conclave"});
  bool sharemind_done = false;
  for (uint64_t total : sizes) {
    Cell sharemind = Cell::Dnf();
    if (!sharemind_done &&
        EstimateSharemindOnly(total) <= bench::kTimeBudgetSeconds) {
      sharemind = Run(total, /*annotate=*/false);
    } else {
      sharemind_done = true;
    }
    table.AddRow(total, {sharemind, Run(total, /*annotate=*/true)});
  }
  table.Print();
  table.WriteJson("fig6_credit", timer.Seconds());
  return 0;
}
