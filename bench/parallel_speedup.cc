// Real wall-clock scaling of the job-graph executor on a local-heavy multi-party
// workload (the Fig. 4 market-concentration query shape: per-party filter +
// aggregate chains feeding a small MPC core).
//
// The sweep varies the dispatcher pool size; morsel-level ParallelFor inside the
// operators rides the same pool (the run binds it to every participating thread),
// so each row measures the executor's full thread budget. Virtual seconds are
// asserted bit-identical across the sweep — the executor's determinism contract
// (DESIGN.md §5) — while wall-clock shrinks with the pool on multi-core hosts
// (per-party local jobs and morsels really overlap). On a single-core host, gains
// are limited to coordinator/worker interleaving.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "conclave/api/conclave.h"
#include "conclave/common/check.h"
#include "conclave/common/thread_pool.h"
#include "conclave/data/generators.h"

namespace conclave {
namespace {

std::map<std::string, Relation> MakeInputs(uint64_t total) {
  std::map<std::string, Relation> inputs;
  const char* names[] = {"inputA", "inputB", "inputC"};
  for (int party = 0; party < 3; ++party) {
    data::TaxiConfig config;
    config.rows = static_cast<int64_t>(total / 3);
    config.company_id = party;
    config.seed = static_cast<uint64_t>(party) + 17;
    inputs[names[party]] = data::TaxiTrips(config);
  }
  return inputs;
}

void BuildQuery(api::Query& query, uint64_t rows_hint) {
  auto pa = query.AddParty("a");
  auto pb = query.AddParty("b");
  auto pc = query.AddParty("c");
  std::vector<api::ColumnSpec> columns{{"companyID"}, {"price"}};
  auto ta = query.NewTable("inputA", columns, pa, static_cast<int64_t>(rows_hint / 3));
  auto tb = query.NewTable("inputB", columns, pb, static_cast<int64_t>(rows_hint / 3));
  auto tc = query.NewTable("inputC", columns, pc, static_cast<int64_t>(rows_hint / 3));
  query.Concat({ta, tb, tc})
      .Filter("price", CompareOp::kGt, 0)
      .Aggregate("local_rev", AggKind::kSum, {"companyID"}, "price")
      .WriteToCsv("rev", {pa});
}

struct Measurement {
  double wall_ms = 0;
  double virtual_seconds = 0;
};

Measurement RunOnce(uint64_t total, const std::map<std::string, Relation>& inputs,
                    int pool_parallelism) {
  api::Query query;
  BuildQuery(query, total);
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      query.Run(inputs, {}, CostModel{}, /*seed=*/42, pool_parallelism);
  const auto stop = std::chrono::steady_clock::now();
  CONCLAVE_CHECK(result.ok());
  Measurement m;
  m.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  m.virtual_seconds = result->virtual_seconds;
  return m;
}

}  // namespace
}  // namespace conclave

int main() {
  using namespace conclave;
  bench::TuneAllocatorForBench();

  const uint64_t total = bench::SmallScale() ? 300000 : 3000000;
  const auto inputs = MakeInputs(total);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("Parallel executor wall-clock sweep (%llu records, 3 parties, "
              "hardware threads: %d)\n",
              static_cast<unsigned long long>(total), hw);
  std::printf("%-10s %12s %12s %16s\n", "pool", "wall [ms]", "speedup",
              "virtual [s]");

  double baseline_ms = 0;
  double baseline_virtual = 0;
  for (int pool : {1, 2, 4, 8}) {
    // Warm-up run to take allocator noise out, then the measured run.
    RunOnce(total, inputs, pool);
    const Measurement m = RunOnce(total, inputs, pool);
    if (pool == 1) {
      baseline_ms = m.wall_ms;
      baseline_virtual = m.virtual_seconds;
    }
    // Determinism contract: virtual time never moves with the pool size.
    CONCLAVE_CHECK(m.virtual_seconds == baseline_virtual);
    std::printf("%-10d %12.1f %11.2fx %16.6f\n", pool, m.wall_ms,
                baseline_ms / m.wall_ms, m.virtual_seconds);
  }
  std::printf("\nvirtual seconds identical across the sweep (asserted), as per "
              "the determinism contract.\n");
  return 0;
}
