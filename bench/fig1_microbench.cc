// Figure 1: single-operator scaling of existing frameworks (§2.3).
//
// Three panels — aggregation (SUM), join, projection — each sweeping total input
// records on a log axis across three engines: insecure Spark, secret-sharing MPC
// (Sharemind stand-in, 3 parties), and garbled circuits (Obliv-C stand-in, 2 parties).
// Expected shape (the paper's motivation): Spark stays flat in seconds to tens of
// millions of rows; Sharemind's storage layer makes even projections minutes past a
// few million rows; Obliv-C joins OOM at ~30k records and projections at ~300k.
//
// Points whose *estimated* simulated time exceeds the budget are printed as DNF
// without executing (keeping real CPU bounded); memory exhaustion prints OOM.
#include "bench/bench_util.h"
#include "conclave/data/generators.h"
#include "conclave/mpc/garbled/gc_engine.h"
#include "conclave/mpc/protocols.h"

namespace conclave {
namespace {

using bench::Cell;
using bench::kTimeBudgetSeconds;

const CostModel kModel;

// --- quick analytic estimates (same formulas the engines charge) ---------------------

double EstimateSharemindAgg(uint64_t n) {
  const double sort = static_cast<double>(gc::BatcherCompareExchanges(n)) *
                      kModel.ss_compare_seconds;
  return static_cast<double>(n) * kModel.ss_record_io_seconds + sort;
}

double EstimateSharemindJoin(uint64_t n) {
  const uint64_t half = n / 2;
  return static_cast<double>(half) * static_cast<double>(half) *
             kModel.ss_equality_seconds +
         static_cast<double>(n) * kModel.ss_record_io_seconds;
}

double EstimateSharemindProject(uint64_t n) {
  return static_cast<double>(n) * kModel.ss_record_io_seconds;
}

double EstimateGc(uint64_t and_gates) {
  return static_cast<double>(and_gates) * kModel.gc_seconds_per_and_gate;
}

// --- executed runs --------------------------------------------------------------------

Cell RunSharemind(uint64_t n, int panel) {
  const double estimate = panel == 0   ? EstimateSharemindAgg(n)
                          : panel == 1 ? EstimateSharemindJoin(n)
                                       : EstimateSharemindProject(n);
  if (estimate > kTimeBudgetSeconds) {
    return Cell::Dnf();
  }
  SimNetwork net(kModel);
  SecretShareEngine engine(&net, n + 1);
  if (panel == 0) {  // Aggregation (SUM): sqrt(n) groups.
    Relation rel = data::UniformInts(static_cast<int64_t>(n), {"g", "v"},
                                     std::max<int64_t>(2, static_cast<int64_t>(n) / 10),
                                     7);
    auto shared = mpc::InputRelation(engine, rel);
    if (!shared.ok()) {
      return Cell::Oom();
    }
    const int group[] = {0};
    auto result = mpc::Aggregate(engine, *shared, group, AggKind::kSum, 1, "s");
    if (!result.ok()) {
      return Cell::Oom();
    }
  } else if (panel == 1) {  // Join: two tables of n/2 rows.
    Relation left = data::UniformInts(static_cast<int64_t>(n / 2), {"k", "x"},
                                      std::max<int64_t>(2, static_cast<int64_t>(n)),
                                      8);
    Relation right = data::UniformInts(static_cast<int64_t>(n / 2), {"k", "y"},
                                       std::max<int64_t>(2, static_cast<int64_t>(n)),
                                       9);
    auto ls = mpc::InputRelation(engine, left);
    auto rs = mpc::InputRelation(engine, right);
    if (!ls.ok() || !rs.ok()) {
      return Cell::Oom();
    }
    const int keys[] = {0};
    auto result = mpc::Join(engine, *ls, *rs, keys, keys);
    if (!result.ok()) {
      return Cell::Oom();
    }
  } else {  // Projection.
    Relation rel = data::UniformInts(static_cast<int64_t>(n), {"a", "b"}, 1000, 10);
    auto shared = mpc::InputRelation(engine, rel);
    if (!shared.ok()) {
      return Cell::Oom();
    }
    const int cols[] = {0};
    mpc::Project(*shared, cols);
  }
  return Cell::Seconds(net.ElapsedSeconds());
}

Cell RunGc(uint64_t n, int panel) {
  // Pre-flight memory + time estimates via the same formulas GcEngine charges.
  if (panel == 0) {
    const gc::GcOpCost cost = gc::AggregateCost(kModel, n, 2, 1, false);
    if (cost.live_state_bytes > kModel.gc_memory_limit_bytes) {
      return Cell::Oom();
    }
    if (EstimateGc(cost.and_gates) > kTimeBudgetSeconds) {
      return Cell::Dnf();
    }
  } else if (panel == 1) {
    const gc::GcOpCost cost = gc::JoinCost(kModel, n / 2, n / 2, 2, 2, 1);
    if (cost.live_state_bytes > kModel.gc_memory_limit_bytes) {
      return Cell::Oom();
    }
    if (EstimateGc(cost.and_gates) > kTimeBudgetSeconds) {
      return Cell::Dnf();
    }
  } else {
    if (gc::LiveBytesForCells(kModel, n, 1) * 2 > kModel.gc_memory_limit_bytes) {
      return Cell::Oom();
    }
  }

  SimNetwork net(kModel);
  gc::GcEngine engine(&net);
  if (panel == 0) {
    Relation rel = data::UniformInts(static_cast<int64_t>(n), {"g", "v"},
                                     std::max<int64_t>(2, static_cast<int64_t>(n) / 10),
                                     11);
    if (!engine.ChargeInput(rel).ok()) {
      return Cell::Oom();
    }
    const int group[] = {0};
    if (!engine.Aggregate(rel, group, AggKind::kSum, 1, "s").ok()) {
      return Cell::Oom();
    }
  } else if (panel == 1) {
    Relation left = data::UniformInts(static_cast<int64_t>(n / 2), {"k", "x"},
                                      std::max<int64_t>(2, static_cast<int64_t>(n)),
                                      12);
    Relation right = data::UniformInts(static_cast<int64_t>(n / 2), {"k", "y"},
                                       std::max<int64_t>(2, static_cast<int64_t>(n)),
                                       13);
    if (!engine.ChargeInput(left).ok() || !engine.ChargeInput(right).ok()) {
      return Cell::Oom();
    }
    const int keys[] = {0};
    if (!engine.Join(left, right, keys, keys).ok()) {
      return Cell::Oom();
    }
  } else {
    Relation rel = data::UniformInts(static_cast<int64_t>(n), {"a", "b"}, 1000, 14);
    if (!engine.ChargeInput(rel).ok()) {
      return Cell::Oom();
    }
    const int cols[] = {0};
    if (!engine.Project(rel, cols).ok()) {
      return Cell::Oom();
    }
  }
  return Cell::Seconds(net.ElapsedSeconds());
}

Cell RunSpark(uint64_t n) {
  // Insecure single Spark job over the combined data (9 workers = 3 parties' VMs).
  return Cell::Seconds(kModel.SparkSeconds(n, 9));
}

void RunPanel(const char* title, const char* json_name, int panel,
              const std::vector<uint64_t>& sizes) {
  bench::WallTimer timer;
  bench::Table table(title, {"spark(insec)", "sharemind", "obliv-c"});
  bool sm_done = false;
  bool gc_done = false;
  for (uint64_t n : sizes) {
    Cell sm = sm_done ? Cell::Dnf() : RunSharemind(n, panel);
    Cell gc_cell = gc_done ? Cell::Dnf() : RunGc(n, panel);
    if (sm.kind == Cell::Kind::kDnf) {
      sm_done = true;
    }
    if (gc_cell.kind == Cell::Kind::kDnf) {
      gc_done = true;
    }
    table.AddRow(n, {RunSpark(n), sm, gc_cell});
  }
  table.Print();
  table.WriteJson(json_name, timer.Seconds());
}

}  // namespace
}  // namespace conclave

int main() {
  using conclave::bench::SmallScale;
  conclave::bench::TuneAllocatorForBench();
  std::vector<uint64_t> sizes{10,      100,     1000,     3000,    10000,
                              30000,   100000,  300000,   1000000, 3000000,
                              10000000};
  if (SmallScale()) {
    sizes = {10, 1000, 30000, 300000};
  }
  conclave::RunPanel("Figure 1a: Aggregation (SUM) runtime [s]", "fig1_aggregate", 0,
                     sizes);
  conclave::RunPanel("Figure 1b: JOIN runtime [s]", "fig1_join", 1, sizes);
  conclave::RunPanel("Figure 1c: PROJECT runtime [s]", "fig1_project", 2, sizes);
  return 0;
}
