// Recurrent c.diff (SMCQL's third benchmark query, §7.4): two hospitals find the
// patients whose c.diff infection recurred — a second diagnosis 15 to 56 days after
// an earlier one — without revealing anyone's medical history.
//
//   $ ./examples/recurrent_cdiff [rows_per_party] [--annotate]
//
// The paper's prototype could not run this query ("Conclave does not yet support
// window aggregates"); this implementation adds the window operator, so the query
// runs end-to-end: filter to c.diff events, lag over each patient's timeline under
// MPC, qualify recurrence gaps, and reveal only the distinct recurrent patients.
// With --annotate, both hospitals designate hospital 0 as a selectively-trusted
// party for the event metadata, and the compiler swaps the oblivious window for the
// STP-assisted hybrid window (§5.3's technique applied to windows).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

using conclave::CompareOp;
using conclave::WindowFn;
namespace data = conclave::data;

int main(int argc, char** argv) {
  int64_t rows = 10000;
  bool annotate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--annotate") == 0) {
      annotate = true;
    } else {
      rows = std::atoll(argv[i]);
    }
  }

  conclave::api::Query query;
  auto hospital0 = query.AddParty("mpc.chi.org");
  auto hospital1 = query.AddParty("mpc.nwm.org");
  std::vector<conclave::api::ColumnSpec> columns;
  if (annotate) {
    columns = {{"pid", {hospital0}}, {"time", {hospital0}}, {"diag", {hospital0}}};
  } else {
    columns = {{"pid"}, {"time"}, {"diag"}};
  }
  auto d0 = query.NewTable("d0", columns, hospital0, 2 * rows);
  auto d1 = query.NewTable("d1", columns, hospital1, 2 * rows);

  query.Concat({d0, d1})
      .Filter("diag", CompareOp::kEq, data::kCdiffCode)
      .Window("prev_t", WindowFn::kLag, {"pid"}, "time", "time")
      .Subtract("gap", "time", "prev_t")
      .Filter("prev_t", CompareOp::kGt, 0)
      .Filter("gap", CompareOp::kGe, data::kRecurrenceGapMinDays)
      .Filter("gap", CompareOp::kLe, data::kRecurrenceGapMaxDays)
      .Distinct({"pid"})
      .WriteToCsv("recurrent_patients", {hospital0, hospital1});

  auto compilation = query.Compile({});
  if (!compilation.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compilation.status().ToString().c_str());
    return 1;
  }
  std::printf("=== transformations (%s) ===\n",
              annotate ? "hospital 0 as STP" : "no trust annotations");
  for (const auto& line : compilation->transformations) {
    std::printf("  %s\n", line.c_str());
  }

  data::HealthConfig config;
  config.rows_per_party = rows;
  config.overlap_fraction = 0.1;  // 10% of patients visit both hospitals.
  config.seed = 13;
  std::map<std::string, conclave::Relation> inputs;
  inputs["d0"] = data::CdiffDiagnoses(config, 0);
  inputs["d1"] = data::CdiffDiagnoses(config, 1);

  conclave::backends::Dispatcher dispatcher(conclave::CostModel{}, 42);
  auto result = dispatcher.Run(query.dag(), *compilation, inputs);
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const conclave::Relation& out = result->outputs.at("recurrent_patients");
  std::printf("\n%lld recurrent c.diff patients (first rows):\n%s\n",
              static_cast<long long>(out.NumRows()), out.ToString(10).c_str());
  std::printf("simulated runtime %.2f s  (local %.2f s | mpc %.2f s | hybrid %.2f s)\n",
              result->virtual_seconds, result->local_seconds, result->mpc_seconds,
              result->hybrid_seconds);
  return 0;
}
