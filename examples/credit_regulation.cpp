// Credit card regulation (§2.1, Listing 1): a regulator holding SSN->ZIP demographics
// and two credit agencies holding SSN->score portfolios jointly compute the average
// credit score per ZIP code.
//
//   $ ./examples/credit_regulation [rows]
//
// Demonstrates trust annotations (§4.3) and the hybrid protocols they unlock (§5.3):
// the banks annotate their ssn columns trust={regulator}, so Conclave turns the MPC
// join into a hybrid join and the aggregations into hybrid aggregations, all with the
// regulator as the selectively-trusted party.
#include <cstdio>
#include <cstdlib>

#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

using conclave::AggKind;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 20000;

  conclave::api::Query query;
  auto regulator = query.AddParty("mpc.ftc.gov");
  auto bank_a = query.AddParty("mpc.a.com");
  auto bank_b = query.AddParty("mpc.b.cash");

  // Listing 1, lines 4-11: banks trust the regulator with SSNs, nothing else.
  auto demographics = query.NewTable("demographics", {{"ssn"}, {"zip"}}, regulator);
  std::vector<conclave::api::ColumnSpec> bank_schema{{"ssn", {regulator}}, {"score"}};
  auto scores1 = query.NewTable("scores1", bank_schema, bank_a);
  auto scores2 = query.NewTable("scores2", bank_schema, bank_b);
  auto scores = query.Concat({scores1, scores2});

  // Listing 1, lines 13-24.
  auto joined = demographics.Join(scores, {"ssn"}, {"ssn"});
  auto by_zip = joined.Count("count", {"zip"});
  auto total_sc = joined.Aggregate("total", AggKind::kSum, {"zip"}, "score");
  total_sc.Join(by_zip, {"zip"}, {"zip"})
      .Divide("avg_score", "total", "count")
      .WriteToCsv("avg_scores", {regulator});

  auto compilation = query.Compile({});
  if (!compilation.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compilation.status().ToString().c_str());
    return 1;
  }
  std::printf("=== transformations ===\n");
  for (const auto& line : compilation->transformations) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\n=== generated code ===\n%s\n", compilation->generated_code.c_str());

  std::map<std::string, conclave::Relation> inputs;
  const int64_t ssn_space = rows * 4;
  inputs["demographics"] = conclave::data::Demographics(rows, ssn_space, 100, 1);
  inputs["scores1"] = conclave::data::CreditScores(rows / 2, ssn_space, 2);
  inputs["scores2"] = conclave::data::CreditScores(rows / 2, ssn_space, 3);

  conclave::backends::Dispatcher dispatcher(conclave::CostModel{}, 42);
  auto result = dispatcher.Run(query.dag(), *compilation, inputs);
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("average score by ZIP (first rows):\n%s\n",
              result->outputs.at("avg_scores").ToString(10).c_str());
  std::printf("simulated runtime %.2f s  (local %.2f s | mpc %.2f s | hybrid %.2f s)\n",
              result->virtual_seconds, result->local_seconds, result->mpc_seconds,
              result->hybrid_seconds);
  return 0;
}
