// The credit-card regulation query (§2.1, Listing 1) written as SQL text instead of
// LINQ calls (§4.1: "Conclave assumes that analysts write relational queries using
// SQL or LINQ").
//
//   $ ./examples/sql_frontend [rows]
//
// Input tables keep their `at=` owners and trust annotations from registration; the
// SQL layer is pure syntax, so the compiler still derives the hybrid join + hybrid
// aggregation from the ssn trust annotation exactly as in the LINQ version.
#include <cstdio>
#include <cstdlib>

#include "conclave/data/generators.h"
#include "conclave/sql/sql.h"

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 10000;
  using conclave::api::Table;

  conclave::api::Query query;
  auto regulator = query.AddParty("mpc.ftc.gov");
  auto bank1 = query.AddParty("mpc.a.com");
  auto bank2 = query.AddParty("mpc.b.cash");

  // Banks trust the regulator to compute on SSNs (Listing 1, line 8).
  std::vector<conclave::api::ColumnSpec> bank_cols{{"ssn", {regulator}}, {"score"}};
  std::map<std::string, Table> tables;
  tables.emplace("demographics",
                 query.NewTable("demographics", {{"ssn"}, {"zip"}}, regulator, rows));
  tables.emplace("scores1", query.NewTable("scores1", bank_cols, bank1, rows / 2));
  tables.emplace("scores2", query.NewTable("scores2", bank_cols, bank2, rows / 2));

  const char* statement =
      "SELECT ssn, score FROM scores1 UNION ALL scores2";
  auto scores = conclave::sql::ParseQuery(query, tables, statement);
  if (!scores.ok()) {
    std::fprintf(stderr, "sql error: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  tables.emplace("scores", *scores);

  const char* main_statement =
      "SELECT zip, SUM(score) AS total "
      "FROM demographics JOIN scores ON demographics.ssn = scores.ssn "
      "GROUP BY zip "
      "ORDER BY total DESC";
  auto result_table = conclave::sql::ParseQuery(query, tables, main_statement);
  if (!result_table.ok()) {
    std::fprintf(stderr, "sql error: %s\n",
                 result_table.status().ToString().c_str());
    return 1;
  }
  result_table->WriteToCsv("totals_by_zip", {regulator});

  auto compilation = query.Compile({});
  if (!compilation.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compilation.status().ToString().c_str());
    return 1;
  }
  std::printf("query:\n  %s\n  %s\n\n=== transformations ===\n", statement,
              main_statement);
  for (const auto& line : compilation->transformations) {
    std::printf("  %s\n", line.c_str());
  }

  std::map<std::string, conclave::Relation> inputs;
  inputs["demographics"] = conclave::data::Demographics(rows, rows * 4, 20, 1);
  inputs["scores1"] = conclave::data::CreditScores(rows / 2, rows * 4, 2);
  inputs["scores2"] = conclave::data::CreditScores(rows / 2, rows * 4, 3);

  conclave::backends::Dispatcher dispatcher(conclave::CostModel{}, 42);
  auto result = dispatcher.Run(query.dag(), *compilation, inputs);
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntotal scores by zip (top rows):\n%s\n",
              result->outputs.at("totals_by_zip").ToString(10).c_str());
  std::printf("simulated runtime %.2f s  (local %.2f | mpc %.2f | hybrid %.2f)\n",
              result->virtual_seconds, result->local_seconds, result->mpc_seconds,
              result->hybrid_seconds);
  return 0;
}
