// Aspirin count (SMCQL's benchmark query, §7.4): two hospitals count the distinct
// patients diagnosed with heart disease who were prescribed aspirin, where diagnoses
// and medications are horizontally partitioned across the hospitals.
//
//   $ ./examples/aspirin_count [rows_per_party]
//
// Runs both executions side by side on the same data: SMCQL-style sliced ObliVM MPC
// and Conclave's slicing + public join + sort-elimination pipeline, then checks that
// they agree with a cleartext reference.
#include <cstdio>
#include <cstdlib>
#include <set>

#include "conclave/data/generators.h"
#include "conclave/relational/ops.h"
#include "conclave/smcql/smcql.h"

namespace data = conclave::data;
namespace smcql = conclave::smcql;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 5000;

  data::HealthConfig config;
  config.rows_per_party = rows;
  config.overlap_fraction = 0.02;  // 2% shared patient IDs, as in the paper.
  config.seed = 7;
  conclave::Relation diag0 = data::AspirinDiagnoses(config, 0);
  conclave::Relation med0 = data::AspirinMedications(config, 0);
  conclave::Relation diag1 = data::AspirinDiagnoses(config, 1);
  conclave::Relation med1 = data::AspirinMedications(config, 1);

  smcql::RunConfig run_config;
  auto smcql_run = smcql::SmcqlAspirinCount(diag0, med0, diag1, med1,
                                            data::kHeartDiseaseCode,
                                            data::kAspirinCode, run_config);
  auto conclave_run = smcql::ConclaveAspirinCount(diag0, med0, diag1, med1,
                                                  data::kHeartDiseaseCode,
                                                  data::kAspirinCode, run_config);
  if (!smcql_run.ok() || !conclave_run.ok()) {
    std::fprintf(stderr, "run error: %s / %s\n",
                 smcql_run.status().ToString().c_str(),
                 conclave_run.status().ToString().c_str());
    return 1;
  }

  std::printf("rows per party:        %lld (+ medications)\n",
              static_cast<long long>(rows));
  std::printf("SMCQL     count=%lld   %8.1f s   (%lld sliced MPCs)\n",
              static_cast<long long>(smcql_run->output.At(0, 0)),
              smcql_run->virtual_seconds,
              static_cast<long long>(smcql_run->mpc_slices));
  std::printf("Conclave  count=%lld   %8.1f s   (%lld rows into MPC)\n",
              static_cast<long long>(conclave_run->output.At(0, 0)),
              conclave_run->virtual_seconds,
              static_cast<long long>(conclave_run->mpc_input_rows));

  if (smcql_run->output.At(0, 0) != conclave_run->output.At(0, 0)) {
    std::fprintf(stderr, "MISMATCH between SMCQL and Conclave results!\n");
    return 1;
  }
  std::printf("speedup: %.1fx\n",
              smcql_run->virtual_seconds / conclave_run->virtual_seconds);
  return 0;
}
