// Quickstart: two parties jointly compute the per-key sum of the intersection of
// their tables, without revealing their rows to each other.
//
//   $ ./examples/quickstart
//
// Walks through the whole Conclave lifecycle: declare parties and tables, write one
// relational query, compile (and inspect the rewrites + generated per-backend code),
// then execute and read the result.
#include <cstdio>

#include "conclave/api/conclave.h"

using conclave::AggKind;
using conclave::CompareOp;
using conclave::Relation;
using conclave::Schema;

int main() {
  conclave::api::Query query;

  // 1. Parties: each runs a Conclave agent + an MPC endpoint (§4.1).
  auto alice = query.AddParty("mpc.alice.example");
  auto bob = query.AddParty("mpc.bob.example");

  // 2. Input tables, each stored at its owner.
  auto purchases = query.NewTable("purchases", {{"item"}, {"amount"}}, alice);
  auto inventory = query.NewTable("inventory", {{"item"}, {"stock"}}, bob);

  // 3. The query, written as if both tables sat in one trusted database.
  purchases.Join(inventory, {"item"}, {"item"})
      .Filter("stock", CompareOp::kGt, 0)
      .Aggregate("total_amount", AggKind::kSum, {"item"}, "amount")
      .WriteToCsv("totals", {alice});

  // 4. Compile and show what Conclave decided to run where.
  auto compilation = query.Compile({});
  if (!compilation.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compilation.status().ToString().c_str());
    return 1;
  }
  std::printf("=== plan ===\n%s\n", compilation->plan.Summary().c_str());
  std::printf("=== generated code ===\n%s\n", compilation->generated_code.c_str());

  // 5. Provide each party's data and execute.
  Relation purchases_data{Schema::Of({"item", "amount"})};
  purchases_data.AppendRow({1, 30});
  purchases_data.AppendRow({1, 12});
  purchases_data.AppendRow({2, 5});
  purchases_data.AppendRow({3, 8});
  Relation inventory_data{Schema::Of({"item", "stock"})};
  inventory_data.AppendRow({1, 100});
  inventory_data.AppendRow({2, 0});  // Out of stock: filtered out.
  inventory_data.AppendRow({3, 7});

  conclave::backends::Dispatcher dispatcher(conclave::CostModel{}, /*seed=*/42);
  auto result = dispatcher.Run(query.dag(), *compilation,
                               {{"purchases", purchases_data},
                                {"inventory", inventory_data}});
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("=== result (revealed to alice only) ===\n%s\n",
              result->outputs.at("totals").ToString().c_str());
  std::printf("simulated runtime: %.3f s (mpc %.3f s)\n", result->virtual_seconds,
              result->mpc_seconds);
  return 0;
}
