// Comorbidity (SMCQL's benchmark query, §7.4): two hospitals compute the ten most
// common diagnoses across their combined patients without revealing per-patient data.
//
//   $ ./examples/comorbidity [rows_per_party]
//
// The full Conclave pipeline on a query with an order-by + limit tail: the grouped
// count splits into local pre-aggregations (push-down), and the secondary aggregation,
// descending sort, and limit run under MPC.
#include <cstdio>
#include <cstdlib>

#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

using conclave::AggKind;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 10000;

  conclave::api::Query query;
  auto hospital0 = query.AddParty("mpc.chi.org");
  auto hospital1 = query.AddParty("mpc.nwm.org");
  auto diag0 = query.NewTable("diag0", {{"pid"}, {"diag"}}, hospital0, rows);
  auto diag1 = query.NewTable("diag1", {{"pid"}, {"diag"}}, hospital1, rows);

  query.Concat({diag0, diag1})
      .Count("cnt", {"diag"})
      .SortBy({"cnt"}, /*ascending=*/false)
      .Limit(10)
      .WriteToCsv("comorbidity", {hospital0, hospital1});

  auto compilation = query.Compile({});
  if (!compilation.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compilation.status().ToString().c_str());
    return 1;
  }
  std::printf("=== transformations ===\n");
  for (const auto& line : compilation->transformations) {
    std::printf("  %s\n", line.c_str());
  }

  conclave::data::HealthConfig config;
  config.rows_per_party = rows;
  config.distinct_key_fraction = 0.1;  // 10% distinct diagnoses, as in §7.4.
  config.seed = 3;
  std::map<std::string, conclave::Relation> inputs;
  inputs["diag0"] = conclave::data::ComorbidityDiagnoses(config, 0);
  inputs["diag1"] = conclave::data::ComorbidityDiagnoses(config, 1);

  conclave::backends::Dispatcher dispatcher(conclave::CostModel{}, 42);
  auto result = dispatcher.Run(query.dag(), *compilation, inputs);
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop-10 diagnoses:\n%s\n",
              result->outputs.at("comorbidity").ToString(10).c_str());
  std::printf("simulated runtime %.2f s  (local %.2f s | mpc %.2f s)\n",
              result->virtual_seconds, result->local_seconds, result->mpc_seconds);
  return 0;
}
