// Market concentration (§2.1, Listing 2): three vehicle-for-hire companies let an
// antitrust regulator compute the Herfindahl-Hirschman Index over their private trip
// books. Nobody reveals per-trip data; only the final HHI is opened.
//
//   $ ./examples/market_concentration [rows_per_party]
//
// Demonstrates the MPC frontier push-down (§5.2): Conclave rewrites the query so each
// company pre-filters and pre-aggregates locally in Spark, and only a handful of
// per-company revenue totals ever enter MPC.
#include <cstdio>
#include <cstdlib>

#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

using conclave::AggKind;
using conclave::CompareOp;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 100000;

  conclave::api::Query query;
  auto pa = query.AddParty("mpc.a.com");
  auto pb = query.AddParty("mpc.b.com");
  auto pc = query.AddParty("mpc.c.org");

  std::vector<conclave::api::ColumnSpec> columns{{"companyID"}, {"price"}};
  auto input_a = query.NewTable("inputA", columns, pa, rows);
  auto input_b = query.NewTable("inputB", columns, pb, rows);
  auto input_c = query.NewTable("inputC", columns, pc, rows);

  // Listing 2, lines 12-25. The scalar market-size join becomes a join on a constant
  // key column; divide() uses a 10^4 fixed-point scale so integer shares retain four
  // digits (HHI therefore lands in [0, 10^8]).
  auto taxi_data = query.Concat({input_a, input_b, input_c});
  auto rev = taxi_data.Filter("price", CompareOp::kGt, 0)
                 .Aggregate("local_rev", AggKind::kSum, {"companyID"}, "price");
  auto keyed = rev.MultiplyConst("zero", "local_rev", 0).AddConst("one", "zero", 1);
  auto market_size = keyed.Aggregate("total_rev", AggKind::kSum, {"one"}, "local_rev");
  auto share = keyed.Join(market_size, {"one"}, {"one"})
                   .Divide("m_share", "local_rev", "total_rev", 10000);
  share.Multiply("ms_squared", "m_share", "m_share")
      .Aggregate("hhi", AggKind::kSum, {}, "ms_squared")
      .WriteToCsv("hhi", {pa});

  auto compilation = query.Compile({});
  if (!compilation.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compilation.status().ToString().c_str());
    return 1;
  }
  std::printf("=== transformations ===\n");
  for (const auto& line : compilation->transformations) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\n=== plan ===\n%s\n", compilation->plan.Summary().c_str());

  // Three imaginary VFH companies: trips randomly assigned, 5% zero-fare trips that
  // the query filters out (mirroring the paper's NYC-taxi setup, §7.1).
  std::map<std::string, conclave::Relation> inputs;
  const char* names[] = {"inputA", "inputB", "inputC"};
  for (int party = 0; party < 3; ++party) {
    conclave::data::TaxiConfig config;
    config.rows = rows;
    config.company_id = party;
    config.seed = static_cast<uint64_t>(party) + 1;
    inputs[names[party]] = conclave::data::TaxiTrips(config);
  }

  conclave::backends::Dispatcher dispatcher(conclave::CostModel{}, 42);
  auto result = dispatcher.Run(query.dag(), *compilation, inputs);
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const conclave::Relation& hhi = result->outputs.at("hhi");
  std::printf("HHI (x10^8): %lld\n",
              static_cast<long long>(hhi.At(0, hhi.NumColumns() - 1)));
  std::printf("simulated runtime %.2f s  (local %.2f s | mpc %.2f s)\n",
              result->virtual_seconds, result->local_seconds, result->mpc_seconds);
  return 0;
}
