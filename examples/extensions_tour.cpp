// Tour of the features this implementation adds beyond the paper's prototype —
// each of which the paper names as an extension direction:
//
//   1. Cost-based MPC backend choice       (§9: "choose the most performant protocol")
//   2. Adaptive padding on the MPC boundary (§9: "avoid leaking relation sizes")
//   3. Malicious security up to abort       (Appendix A.5)
//   4. Differentially private outputs       (§8: the DJoin direction)
//
//   $ ./examples/extensions_tour
//
// All four run the same two-party analytics query — a join + grouped sum over
// synthetic bank transfers — so their costs and outputs are directly comparable.
#include <cstdio>

#include "conclave/api/conclave.h"
#include "conclave/data/generators.h"

namespace {

struct QueryHandles {
  conclave::api::Query query;
};

// Build the shared query; a fresh Query per configuration (compilation mutates it).
void BuildQuery(conclave::api::Query& query, bool noisy_output) {
  auto alice = query.AddParty("mpc.a.bank");
  auto bob = query.AddParty("mpc.b.bank");
  auto a = query.NewTable("a", {{"account"}, {"amount"}}, alice, 2000);
  auto b = query.NewTable("b", {{"account"}, {"amount"}}, bob, 2000);
  auto per_account = query.Concat({a, b}).Aggregate(
      "total", conclave::AggKind::kSum, {"account"}, "amount");
  if (noisy_output) {
    // Totals are sums of bounded transfers: sensitivity = the per-transfer cap.
    per_account.WriteToCsvNoisy("totals", {alice}, /*epsilon=*/0.5,
                                {{"total", 100.0}});
  } else {
    per_account.WriteToCsv("totals", {alice});
  }
}

void Report(const char* label,
            const conclave::StatusOr<conclave::backends::ExecutionResult>& result,
            const conclave::compiler::Compilation& compilation) {
  if (!result.ok()) {
    std::printf("%-22s error: %s\n", label, result.status().ToString().c_str());
    return;
  }
  std::printf("%-22s %8.2f s   backend=%s   rows=%lld%s\n", label,
              result->virtual_seconds,
              conclave::compiler::MpcBackendName(compilation.options.mpc_backend),
              static_cast<long long>(result->outputs.at("totals").NumRows()),
              result->dp_epsilon_spent > 0 ? "   (noisy, eps=0.5)" : "");
}

}  // namespace

int main() {
  using namespace conclave;
  std::map<std::string, Relation> inputs;
  inputs["a"] = data::UniformInts(2000, {"account", "amount"}, 100, 31);
  inputs["b"] = data::UniformInts(2000, {"account", "amount"}, 100, 32);

  struct Variant {
    const char* label;
    bool auto_backend;
    bool padded;
    bool malicious;
    bool noisy;
  };
  const Variant variants[] = {
      {"baseline", false, false, false, false},
      {"auto-backend", true, false, false, false},
      {"padded boundary", false, true, false, false},
      {"malicious security", false, false, true, false},
      {"noisy output (DP)", false, false, false, true},
  };

  std::printf("two-party join+sum over 4000 transfer records:\n\n");
  for (const Variant& variant : variants) {
    api::Query query;
    BuildQuery(query, variant.noisy);
    compiler::CompilerOptions options;
    options.auto_backend = variant.auto_backend;
    options.pad_mpc_inputs = variant.padded;
    options.malicious_security = variant.malicious;
    auto compilation = query.Compile(options);
    if (!compilation.ok()) {
      std::printf("%-22s compile error: %s\n", variant.label,
                  compilation.status().ToString().c_str());
      continue;
    }
    backends::Dispatcher dispatcher(CostModel{}, 99);
    Report(variant.label, dispatcher.Run(query.dag(), *compilation, inputs),
           *compilation);
  }
  std::printf(
      "\npadding hides per-party cardinalities behind power-of-two buckets;\n"
      "malicious mode adds input commitments + ZK checks and the 7x active-\n"
      "adversary factor (A.5); DP outputs consume epsilon via discrete-Laplace\n"
      "noise on the aggregate column (#8).\n");
  return 0;
}
