#include "conclave/backends/local_backend.h"

#include <deque>

#include "conclave/common/strings.h"
#include "conclave/relational/ops.h"
#include "conclave/relational/shard_ops.h"

namespace conclave {
namespace backends {
namespace {

StatusOr<FilterPredicate> ResolveFilter(const Schema& schema,
                                        const ir::FilterParams& params) {
  FilterPredicate predicate;
  CONCLAVE_ASSIGN_OR_RETURN(predicate.column, schema.IndexOf(params.column));
  predicate.op = params.op;
  predicate.rhs_is_column = params.rhs_is_column;
  if (params.rhs_is_column) {
    CONCLAVE_ASSIGN_OR_RETURN(predicate.rhs_column, schema.IndexOf(params.rhs_column));
  } else {
    predicate.rhs_literal = params.literal;
  }
  return predicate;
}

StatusOr<ArithSpec> ResolveArith(const Schema& schema,
                                 const ir::ArithmeticParams& params) {
  ArithSpec spec;
  spec.kind = params.kind;
  CONCLAVE_ASSIGN_OR_RETURN(spec.lhs_column, schema.IndexOf(params.lhs_column));
  spec.rhs_is_column = params.rhs_is_column;
  if (params.rhs_is_column) {
    CONCLAVE_ASSIGN_OR_RETURN(spec.rhs_column, schema.IndexOf(params.rhs_column));
  } else {
    spec.rhs_literal = params.literal;
  }
  spec.result_name = params.output_name;
  spec.scale = params.scale;
  return spec;
}

}  // namespace

StatusOr<Relation> ExecuteLocal(const ir::OpNode& node,
                                const std::vector<const Relation*>& inputs,
                                const LocalExecOptions& options) {
  switch (node.kind) {
    case ir::OpKind::kCreate:
      return InternalError("create nodes materialize from provided inputs");
    case ir::OpKind::kConcat: {
      Relation merged = ops::Concat(inputs);
      const auto& params = node.Params<ir::ConcatParams>();
      if (!params.merge_columns.empty()) {
        CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> columns,
                                  merged.schema().IndicesOf(params.merge_columns));
        merged = ops::SortBy(merged, columns);
      }
      return merged;
    }
    case ir::OpKind::kProject: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          inputs[0]->schema().IndicesOf(node.Params<ir::ProjectParams>().columns));
      return ops::Project(*inputs[0], columns);
    }
    case ir::OpKind::kFilter: {
      CONCLAVE_ASSIGN_OR_RETURN(
          FilterPredicate predicate,
          ResolveFilter(inputs[0]->schema(), node.Params<ir::FilterParams>()));
      return ops::Filter(*inputs[0], predicate);
    }
    case ir::OpKind::kJoin: {
      const auto& params = node.Params<ir::JoinParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> lk,
                                inputs[0]->schema().IndicesOf(params.left_keys));
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> rk,
                                inputs[1]->schema().IndicesOf(params.right_keys));
      return spill::Join(*inputs[0], *inputs[1], lk, rk, options.mem_budget_rows,
                         options.spill_stats);
    }
    case ir::OpKind::kAggregate: {
      const auto& params = node.Params<ir::AggregateParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> group,
                                inputs[0]->schema().IndicesOf(params.group_columns));
      int agg_column = 0;
      if (params.kind != AggKind::kCount) {
        CONCLAVE_ASSIGN_OR_RETURN(agg_column,
                                  inputs[0]->schema().IndexOf(params.agg_column));
      }
      return spill::Aggregate(*inputs[0], group, params.kind, agg_column,
                              params.output_name, options.mem_budget_rows,
                              options.spill_stats);
    }
    case ir::OpKind::kArithmetic: {
      CONCLAVE_ASSIGN_OR_RETURN(
          ArithSpec spec,
          ResolveArith(inputs[0]->schema(), node.Params<ir::ArithmeticParams>()));
      return ops::Arithmetic(*inputs[0], spec);
    }
    case ir::OpKind::kWindow: {
      const auto& params = node.Params<ir::WindowParams>();
      WindowSpec spec;
      CONCLAVE_ASSIGN_OR_RETURN(spec.partition_columns,
                                inputs[0]->schema().IndicesOf(params.partition_columns));
      CONCLAVE_ASSIGN_OR_RETURN(spec.order_column,
                                inputs[0]->schema().IndexOf(params.order_column));
      spec.fn = params.fn;
      if (params.fn != WindowFn::kRowNumber) {
        CONCLAVE_ASSIGN_OR_RETURN(spec.value_column,
                                  inputs[0]->schema().IndexOf(params.value_column));
      }
      spec.output_name = params.output_name;
      return ops::Window(*inputs[0], spec);
    }
    case ir::OpKind::kSortBy: {
      const auto& params = node.Params<ir::SortByParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> columns,
                                inputs[0]->schema().IndicesOf(params.columns));
      return spill::SortBy(*inputs[0], columns, params.ascending,
                           options.mem_budget_rows, options.spill_stats);
    }
    case ir::OpKind::kDistinct: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          inputs[0]->schema().IndicesOf(node.Params<ir::DistinctParams>().columns));
      return spill::Distinct(*inputs[0], columns, options.mem_budget_rows,
                             options.spill_stats);
    }
    case ir::OpKind::kPad:
      return ops::PadToPowerOfTwo(*inputs[0],
                                  node.Params<ir::PadParams>().sentinel_stream);
    case ir::OpKind::kLimit:
      return ops::Limit(*inputs[0], node.Params<ir::LimitParams>().count);
    case ir::OpKind::kCollect:
      return *inputs[0];
  }
  return InternalError("unhandled op kind in local execution");
}

namespace {

// Borrows the coalesced view of a shard list without copying the single-shard
// case. Non-copyable/non-movable: `relation_` may point into this object's own
// storage, so a defaulted copy/move would dangle (callers hold views in a
// pre-reserved container).
class CoalescedView {
 public:
  explicit CoalescedView(std::span<const Relation* const> shards) {
    if (shards.size() == 1) {
      relation_ = shards[0];
    } else {
      storage_ = ops::Concat(shards);
      relation_ = &storage_;
    }
  }
  CoalescedView(const CoalescedView&) = delete;
  CoalescedView& operator=(const CoalescedView&) = delete;

  const Relation& get() const { return *relation_; }

 private:
  Relation storage_;
  const Relation* relation_ = nullptr;
};

}  // namespace

StatusOr<ShardedRelation> ExecuteLocalSharded(
    const ir::OpNode& node,
    const std::vector<std::vector<const Relation*>>& inputs, int shard_count,
    const LocalExecOptions& options) {
  switch (node.kind) {
    case ir::OpKind::kCreate:
      return InternalError("create nodes materialize from provided inputs");
    case ir::OpKind::kCollect:
      // Collects run on the coordinator (Dispatcher::RunCollect), never here.
      return InternalError("collect nodes run on the dispatcher coordinator");
    default:
      break;
  }
  CONCLAVE_CHECK(!inputs.empty());
  const Schema& schema = inputs[0][0]->schema();
  switch (node.kind) {
    case ir::OpKind::kConcat: {
      // The combined shard list, in input order, is already the canonical split of
      // the concatenated relation; sorting (merge_columns) runs shard-aware.
      std::vector<const Relation*> combined;
      for (const auto& input : inputs) {
        for (const Relation* shard : input) {
          CONCLAVE_CHECK(schema.NamesMatch(shard->schema()));
          combined.push_back(shard);
        }
      }
      const auto& params = node.Params<ir::ConcatParams>();
      if (!params.merge_columns.empty()) {
        CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> columns,
                                  schema.IndicesOf(params.merge_columns));
        return ops::ShardedSortBy(combined, columns, /*ascending=*/true,
                                  shard_count);
      }
      // Rebalance into shard_count contiguous shards (the shard list would
      // otherwise grow by a factor of the input count at every concat).
      return ops::ShardedRebalance(combined, shard_count);
    }
    case ir::OpKind::kProject: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          schema.IndicesOf(node.Params<ir::ProjectParams>().columns));
      return ops::ShardedProject(inputs[0], columns);
    }
    case ir::OpKind::kFilter: {
      CONCLAVE_ASSIGN_OR_RETURN(
          FilterPredicate predicate,
          ResolveFilter(schema, node.Params<ir::FilterParams>()));
      return ops::ShardedFilter(inputs[0], predicate);
    }
    case ir::OpKind::kJoin: {
      const auto& params = node.Params<ir::JoinParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> lk,
                                schema.IndicesOf(params.left_keys));
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> rk,
                                inputs[1][0]->schema().IndicesOf(params.right_keys));
      return ops::ShardedJoin(inputs[0], inputs[1], lk, rk, shard_count,
                              options.mem_budget_rows, options.spill_stats);
    }
    case ir::OpKind::kAggregate: {
      const auto& params = node.Params<ir::AggregateParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> group,
                                schema.IndicesOf(params.group_columns));
      int agg_column = 0;
      if (params.kind != AggKind::kCount) {
        CONCLAVE_ASSIGN_OR_RETURN(agg_column, schema.IndexOf(params.agg_column));
      }
      return ops::ShardedAggregate(inputs[0], group, params.kind, agg_column,
                                   params.output_name, shard_count,
                                   options.mem_budget_rows, options.spill_stats);
    }
    case ir::OpKind::kArithmetic: {
      CONCLAVE_ASSIGN_OR_RETURN(
          ArithSpec spec,
          ResolveArith(schema, node.Params<ir::ArithmeticParams>()));
      return ops::ShardedArithmetic(inputs[0], spec);
    }
    case ir::OpKind::kSortBy: {
      const auto& params = node.Params<ir::SortByParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> columns,
                                schema.IndicesOf(params.columns));
      return ops::ShardedSortBy(inputs[0], columns, params.ascending, shard_count,
                                options.mem_budget_rows, options.spill_stats);
    }
    case ir::OpKind::kDistinct: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          schema.IndicesOf(node.Params<ir::DistinctParams>().columns));
      return ops::ShardedDistinct(inputs[0], columns, shard_count,
                                  options.mem_budget_rows, options.spill_stats);
    }
    case ir::OpKind::kLimit:
      return ops::ShardedLimit(inputs[0], node.Params<ir::LimitParams>().count);
    case ir::OpKind::kWindow:
    case ir::OpKind::kPad: {
      // No sharded kernel (window's running-state scan is sequential; pad sits
      // on the MPC frontier): coalesce, run unsharded, re-split.
      // (deque: CoalescedView is intentionally non-movable.)
      std::vector<const Relation*> rels;
      std::deque<CoalescedView> views;
      for (const auto& input : inputs) {
        views.emplace_back(std::span<const Relation* const>(input));
      }
      for (const CoalescedView& view : views) {
        rels.push_back(&view.get());
      }
      CONCLAVE_ASSIGN_OR_RETURN(Relation out, ExecuteLocal(node, rels, options));
      return ShardedRelation::SplitEven(out, shard_count);
    }
    default:
      break;  // kCreate / kCollect: rejected above.
  }
  return InternalError("unhandled op kind in sharded local execution");
}

StatusOr<PipelineOp> ResolvePipelineOp(const Schema& input_schema,
                                       const ir::OpNode& node) {
  switch (node.kind) {
    case ir::OpKind::kFilter: {
      CONCLAVE_ASSIGN_OR_RETURN(
          FilterPredicate predicate,
          ResolveFilter(input_schema, node.Params<ir::FilterParams>()));
      return PipelineOp::Filter(predicate);
    }
    case ir::OpKind::kProject: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          input_schema.IndicesOf(node.Params<ir::ProjectParams>().columns));
      return PipelineOp::Project(std::move(columns));
    }
    case ir::OpKind::kArithmetic: {
      CONCLAVE_ASSIGN_OR_RETURN(
          ArithSpec spec,
          ResolveArith(input_schema, node.Params<ir::ArithmeticParams>()));
      return PipelineOp::Arithmetic(spec);
    }
    case ir::OpKind::kLimit:
      return PipelineOp::Limit(node.Params<ir::LimitParams>().count);
    case ir::OpKind::kDistinct: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          input_schema.IndicesOf(node.Params<ir::DistinctParams>().columns));
      return PipelineOp::DistinctOnSorted(std::move(columns));
    }
    default:
      return InternalError(
          StrFormat("op kind %s is not pipeline-fusible", ir::OpKindName(node.kind)));
  }
}

}  // namespace backends
}  // namespace conclave
