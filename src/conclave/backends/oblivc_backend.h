// Obliv-C-style garbled-circuit MPC backend (§6).
//
// Two-party: one garbler, one evaluator. Wraps the GcEngine (analytic circuit costing
// + ideal-model evaluation, see mpc/garbled/gc_engine.h) and dispatches DAG nodes.
// Hybrid operators are not supported here — the paper implements its hybrid protocols
// on the secret-sharing backend — so hybrid-marked nodes are rejected.
#ifndef CONCLAVE_BACKENDS_OBLIVC_BACKEND_H_
#define CONCLAVE_BACKENDS_OBLIVC_BACKEND_H_

#include <vector>

#include "conclave/common/status.h"
#include "conclave/ir/op.h"
#include "conclave/mpc/garbled/gc_engine.h"

namespace conclave {
namespace backends {

class OblivcBackend {
 public:
  // `oblivm_mode` selects the ObliVM (SMCQL backend) cost profile.
  OblivcBackend(SimNetwork* network, bool oblivm_mode = false)
      : engine_(network, oblivm_mode) {}

  Status Input(const Relation& relation) { return engine_.ChargeInput(relation); }

  StatusOr<Relation> Execute(const ir::OpNode& node,
                             const std::vector<const Relation*>& inputs);

  gc::GcEngine& engine() { return engine_; }

 private:
  gc::GcEngine engine_;
};

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_OBLIVC_BACKEND_H_
