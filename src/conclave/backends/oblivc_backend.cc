#include "conclave/backends/oblivc_backend.h"

namespace conclave {
namespace backends {

StatusOr<Relation> OblivcBackend::Execute(
    const ir::OpNode& node, const std::vector<const Relation*>& inputs) {
  if (node.hybrid != ir::HybridKind::kNone) {
    return UnimplementedError(
        "hybrid protocols run on the secret-sharing backend, not Obliv-C");
  }
  switch (node.kind) {
    case ir::OpKind::kConcat: {
      std::vector<Relation> rels;
      rels.reserve(inputs.size());
      for (const Relation* rel : inputs) {
        rels.push_back(*rel);
      }
      const auto& params = node.Params<ir::ConcatParams>();
      if (!params.merge_columns.empty()) {
        // Sorted-merge concat: costed as concat + sort (no merge network in the GC
        // engine's cost model; conservative).
        CONCLAVE_ASSIGN_OR_RETURN(Relation merged, engine_.Concat(rels));
        CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> columns,
                                  merged.schema().IndicesOf(params.merge_columns));
        return engine_.Sort(merged, columns);
      }
      return engine_.Concat(rels);
    }
    case ir::OpKind::kProject: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          inputs[0]->schema().IndicesOf(node.Params<ir::ProjectParams>().columns));
      return engine_.Project(*inputs[0], columns);
    }
    case ir::OpKind::kFilter: {
      const auto& params = node.Params<ir::FilterParams>();
      FilterPredicate predicate;
      CONCLAVE_ASSIGN_OR_RETURN(predicate.column,
                                inputs[0]->schema().IndexOf(params.column));
      predicate.op = params.op;
      predicate.rhs_is_column = params.rhs_is_column;
      if (params.rhs_is_column) {
        CONCLAVE_ASSIGN_OR_RETURN(predicate.rhs_column,
                                  inputs[0]->schema().IndexOf(params.rhs_column));
      } else {
        predicate.rhs_literal = params.literal;
      }
      return engine_.Filter(*inputs[0], predicate);
    }
    case ir::OpKind::kJoin: {
      const auto& params = node.Params<ir::JoinParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> lk,
                                inputs[0]->schema().IndicesOf(params.left_keys));
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> rk,
                                inputs[1]->schema().IndicesOf(params.right_keys));
      return engine_.Join(*inputs[0], *inputs[1], lk, rk);
    }
    case ir::OpKind::kAggregate: {
      const auto& params = node.Params<ir::AggregateParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> group,
                                inputs[0]->schema().IndicesOf(params.group_columns));
      int agg_column = 0;
      if (params.kind != AggKind::kCount) {
        CONCLAVE_ASSIGN_OR_RETURN(agg_column,
                                  inputs[0]->schema().IndexOf(params.agg_column));
      }
      return engine_.Aggregate(*inputs[0], group, params.kind, agg_column,
                               params.output_name, node.assume_sorted);
    }
    case ir::OpKind::kArithmetic: {
      const auto& params = node.Params<ir::ArithmeticParams>();
      ArithSpec spec;
      spec.kind = params.kind;
      CONCLAVE_ASSIGN_OR_RETURN(spec.lhs_column,
                                inputs[0]->schema().IndexOf(params.lhs_column));
      spec.rhs_is_column = params.rhs_is_column;
      if (params.rhs_is_column) {
        CONCLAVE_ASSIGN_OR_RETURN(spec.rhs_column,
                                  inputs[0]->schema().IndexOf(params.rhs_column));
      } else {
        spec.rhs_literal = params.literal;
      }
      spec.result_name = params.output_name;
      spec.scale = params.scale;
      return engine_.Arithmetic(*inputs[0], spec);
    }
    case ir::OpKind::kWindow: {
      const auto& params = node.Params<ir::WindowParams>();
      WindowSpec spec;
      CONCLAVE_ASSIGN_OR_RETURN(spec.partition_columns,
                                inputs[0]->schema().IndicesOf(params.partition_columns));
      CONCLAVE_ASSIGN_OR_RETURN(spec.order_column,
                                inputs[0]->schema().IndexOf(params.order_column));
      spec.fn = params.fn;
      if (params.fn != WindowFn::kRowNumber) {
        CONCLAVE_ASSIGN_OR_RETURN(spec.value_column,
                                  inputs[0]->schema().IndexOf(params.value_column));
      }
      spec.output_name = params.output_name;
      return engine_.Window(*inputs[0], spec, node.assume_sorted);
    }
    case ir::OpKind::kSortBy: {
      const auto& params = node.Params<ir::SortByParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> columns,
                                inputs[0]->schema().IndicesOf(params.columns));
      return engine_.Sort(*inputs[0], columns, params.ascending, node.assume_sorted);
    }
    case ir::OpKind::kDistinct: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          inputs[0]->schema().IndicesOf(node.Params<ir::DistinctParams>().columns));
      return engine_.Distinct(*inputs[0], columns, node.assume_sorted);
    }
    case ir::OpKind::kLimit:
      return engine_.Limit(*inputs[0], node.Params<ir::LimitParams>().count);
    case ir::OpKind::kPad:
      return InternalError("pad is a local pre-MPC step; it never runs under MPC");
    case ir::OpKind::kCreate:
    case ir::OpKind::kCollect:
      return InternalError("create/collect nodes are dispatcher boundaries");
  }
  return InternalError("unhandled op kind in Obliv-C backend");
}

}  // namespace backends
}  // namespace conclave
