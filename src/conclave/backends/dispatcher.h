// The dispatcher executes a compiled plan end-to-end (§4.1's per-party Conclave
// agents, collapsed into one in-process orchestrator).
//
// Execution is a parallel job-graph walk: every DAG node's in-degree is tracked and
// each node is dispatched the moment its inputs are materialized. Cleartext work
// (Create ingest and local operator chains) runs on a thread pool, so independent
// per-party preprocessing overlaps in *real* time the way the virtual-clock schedule
// always said it did; MPC and hybrid nodes stay serialized on a dedicated lane in a
// fixed topological order, because the secret-sharing and garbling engines consume a
// stateful RNG and charge a shared SimNetwork. Frontier crossings insert the data
// movement the paper's generated code performs: inputToMPC (secret-share / garble a
// cleartext relation, charging ingest) when a local value flows into an MPC node,
// and reveal when a shared value flows into a local node or a Collect.
//
// The MPC lane is serialized *across* nodes but parallel *within* them: the run's
// pool is bound to the coordinator thread (ThreadPool::Scope), so the secret-sharing
// engine's morsel kernels (mpc/secret_share_engine.cc, mpc/oblivious.cc) fan their
// row loops out over the same thread budget as the cleartext jobs. Counter-based
// randomness and fixed morsel summation order keep every sharing bit-identical at
// any pool size (DESIGN.md §5).
//
// Virtual time is job-scheduled and independent of the pool size: each job gets a
// duration (cost-model time for local jobs, engine-measured time for MPC/hybrid
// jobs) and the total is the critical path over the job dependency graph. The
// determinism contract (same results and virtual-clock totals for every pool size,
// bit for bit) is spelled out in DESIGN.md §5.
#ifndef CONCLAVE_BACKENDS_DISPATCHER_H_
#define CONCLAVE_BACKENDS_DISPATCHER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "conclave/backends/backend.h"
#include "conclave/backends/oblivc_backend.h"
#include "conclave/backends/sharemind_backend.h"
#include "conclave/common/thread_pool.h"
#include "conclave/compiler/compiler.h"
#include "conclave/net/fault.h"

namespace conclave {
namespace backends {

class Dispatcher {
 public:
  // `shard_count` = kAutoShardCount asks the planner for a cost-model-priced
  // shard-count decision (compiler::ChooseShardCount).
  static constexpr int kAutoShardCount = -1;

  // `pool_parallelism` sets the executor's thread budget: 0 shares the process-wide
  // pool (sized to the hardware), 1 runs fully serial, N > 1 creates a dedicated
  // pool with N lanes. `shard_count` sets the cleartext data plane's horizontal
  // shard count: 0 resolves the CONCLAVE_SHARDS env override (default 1, today's
  // single-relation execution), N > 1 runs per-shard operator instances that
  // coalesce at the MPC frontier, kAutoShardCount defers to the planner.
  // `batch_rows` sets the push-based pipeline executor's batch size: 0 resolves
  // the CONCLAVE_BATCH_ROWS env override (default kDefaultBatchRows), N > 0
  // streams fused local chains in batches of N rows, a negative value
  // (kMaterializeBatchRows) disables fusion and materializes every operator.
  // `fault_plan` schedules deterministic fault injection (net/fault.h,
  // DESIGN.md §11): nullopt resolves the CONCLAVE_FAULT_PLAN env override
  // (disabled when unset); a disabled plan forces injection off regardless of
  // the environment. `mem_budget_rows` caps each blocking cleartext operator
  // instance's resident working set (DESIGN.md §12): 0 resolves the
  // CONCLAVE_MEM_BUDGET env override (unbounded when unset), N > 0 makes
  // over-budget sorts/joins/group-bys/distincts run through the spill::
  // kernels, negative forces unbounded regardless of the environment. Results,
  // counters, and share bits are identical for every {pool, shard, batch,
  // budget} combination (DESIGN.md §5, §9, §10, §12), with or without a
  // recoverable fault plan; under injection the virtual clock additionally
  // carries exactly the priced recovery time, and under a budget exactly the
  // priced spill I/O time (compiler::NodeSpillSeconds). `stream_reveal`
  // controls streaming across the reveal boundary (DESIGN.md §14): 0 resolves
  // the CONCLAVE_STREAM_REVEAL env override (on when unset), > 0 forces it on,
  // < 0 forces the materializing reveal. With batching enabled, a shared value
  // whose sole consumer is a fused chain head reveals batch-at-a-time into the
  // chain instead of materializing; results, clocks, and counters are
  // bit-identical either way (the reveal is charged once for the whole
  // relation in both paths).
  Dispatcher(CostModel model, uint64_t seed, int pool_parallelism = 0,
             int shard_count = 0, int64_t batch_rows = 0,
             std::optional<FaultPlan> fault_plan = std::nullopt,
             int64_t mem_budget_rows = 0, int stream_reveal = 0)
      : model_(model),
        seed_(seed),
        shard_count_(shard_count),
        batch_rows_(batch_rows),
        fault_plan_(std::move(fault_plan)),
        mem_budget_rows_(mem_budget_rows),
        stream_reveal_(stream_reveal) {
    if (pool_parallelism > 0) {
      owned_pool_ = std::make_unique<ThreadPool>(pool_parallelism);
    }
  }

  // CONCLAVE_SHARDS env override ("auto" = kAutoShardCount), else 1. Fails
  // loud on a malformed value (common/env.h).
  static int DefaultShardCount();

  // CONCLAVE_STREAM_REVEAL env override, else true. Fails loud on a malformed
  // value (common/env.h).
  static bool DefaultStreamReveal();

  // Executes the compiled plan. `inputs` maps each Create node's name to the relation
  // its owning party contributes. The DAG must be the one `compilation` was built
  // from.
  StatusOr<ExecutionResult> Run(const ir::Dag& dag,
                                const compiler::Compilation& compilation,
                                const std::map<std::string, Relation>& inputs);

 private:
  ThreadPool& pool() {
    return owned_pool_ != nullptr ? *owned_pool_ : ThreadPool::Shared();
  }

  CostModel model_;
  uint64_t seed_;
  int shard_count_ = 0;
  int64_t batch_rows_ = 0;
  std::optional<FaultPlan> fault_plan_;
  int64_t mem_budget_rows_ = 0;
  int stream_reveal_ = 0;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_DISPATCHER_H_
