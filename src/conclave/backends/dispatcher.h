// The dispatcher executes a compiled plan end-to-end (§4.1's per-party Conclave
// agents, collapsed into one in-process orchestrator).
//
// It walks the rewritten DAG in topological order, materializing every node on the
// backend its placement demands, and inserts the data movement the paper's generated
// code performs at frontier crossings: inputToMPC (secret-share / garble a cleartext
// relation, charging ingest) when a local value flows into an MPC node, and reveal
// when a shared value flows into a local node or a Collect.
//
// Virtual time is job-scheduled: each job gets a duration (cost-model time for local
// jobs, engine-measured time for MPC/hybrid jobs) and the total is the critical path
// over the job dependency graph — so three parties' local preprocessing overlaps, as
// it does in the real deployment, while MPC steps serialize.
#ifndef CONCLAVE_BACKENDS_DISPATCHER_H_
#define CONCLAVE_BACKENDS_DISPATCHER_H_

#include <map>
#include <string>
#include <unordered_map>

#include "conclave/backends/backend.h"
#include "conclave/backends/oblivc_backend.h"
#include "conclave/backends/sharemind_backend.h"
#include "conclave/compiler/compiler.h"

namespace conclave {
namespace backends {

class Dispatcher {
 public:
  Dispatcher(CostModel model, uint64_t seed)
      : model_(model), seed_(seed) {}

  // Executes the compiled plan. `inputs` maps each Create node's name to the relation
  // its owning party contributes. The DAG must be the one `compilation` was built
  // from.
  StatusOr<ExecutionResult> Run(const ir::Dag& dag,
                                const compiler::Compilation& compilation,
                                const std::map<std::string, Relation>& inputs);

 private:
  CostModel model_;
  uint64_t seed_;
};

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_DISPATCHER_H_
