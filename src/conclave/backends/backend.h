// Shared execution-time types for the backends and the dispatcher.
//
// During plan execution every DAG node materializes to one of four value kinds,
// mirroring where the data lives in a real deployment:
//   * kCleartext — a relation held in the clear by one party (local jobs);
//   * kShardedClear — the same cleartext domain, horizontally sharded for the
//                  data-parallel executor (shard_count > 1 runs); coalesces back
//                  into one kCleartext relation at the MPC frontier and at
//                  Collects, so the engines always see the single-relation
//                  contract (see relational/sharded.h);
//   * kShared    — a secret-shared relation inside the Sharemind-style backend;
//   * kGarbled   — a relation inside the garbled-circuit backend (payload evaluated
//                  in the ideal model, costs and memory fully accounted; see
//                  mpc/garbled/gc_engine.h).
#ifndef CONCLAVE_BACKENDS_BACKEND_H_
#define CONCLAVE_BACKENDS_BACKEND_H_

#include <map>
#include <string>

#include "conclave/common/party.h"
#include "conclave/common/status.h"
#include "conclave/common/virtual_clock.h"
#include "conclave/mpc/share.h"
#include "conclave/net/fault.h"
#include "conclave/relational/relation.h"
#include "conclave/relational/sharded.h"

namespace conclave {
namespace backends {

struct MaterializedValue {
  enum class Kind { kCleartext, kShardedClear, kShared, kGarbled };

  Kind kind = Kind::kCleartext;
  Relation clear;          // kCleartext / kGarbled payload.
  PartyId location = kNoParty;  // kCleartext / kShardedClear: the holding party.
  SharedRelation shared;   // kShared.
  ShardedRelation sharded;  // kShardedClear.

  int64_t NumRows() const {
    switch (kind) {
      case Kind::kShared:
        return shared.NumRows();
      case Kind::kShardedClear:
        return sharded.NumRows();
      default:
        return clear.NumRows();
    }
  }
};

struct ExecutionResult {
  std::map<std::string, Relation> outputs;  // Keyed by Collect name.
  double virtual_seconds = 0;
  // Virtual-time breakdown by engine (local cleartext vs. MPC vs. hybrid protocols).
  double local_seconds = 0;
  double mpc_seconds = 0;
  double hybrid_seconds = 0;
  // Total differential-privacy budget consumed by noisy outputs (sequential
  // composition across Collects with a DpSpec; 0 for exact queries).
  double dp_epsilon_spent = 0;
  CostCounters counters;
  // Measured virtual seconds per DAG node id: the node's metered engine/boundary
  // charges (x the malicious-security scale) plus its cleartext compute time. The
  // runtime half of the plan-cost contract — tests compare these meters against
  // compiler::PlanCostReport estimates. Deterministic across pool sizes (folded in
  // topo order, like every other total).
  std::map<int, double> node_seconds;
  // Fault-injection outcome (net/fault.h; fault_mode is false for runs without an
  // active FaultPlan). Under injection, virtual_seconds equals the fault-free
  // run's total plus fault_report.recovery_seconds, exactly.
  FaultReport fault_report;
  // Graceful degradation: when the fault-recovery budget is exhausted, Run returns
  // ok() with aborted = true, abort_status carrying the canonical (earliest node
  // in topological order) failure provenance, and no outputs — a structured abort
  // with a populated FaultReport instead of a bare error. Non-fault failures keep
  // returning a plain error Status from Run, as always.
  bool aborted = false;
  Status abort_status;
};

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_BACKEND_H_
