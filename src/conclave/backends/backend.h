// Shared execution-time types for the backends and the dispatcher.
//
// During plan execution every DAG node materializes to one of four value kinds,
// mirroring where the data lives in a real deployment:
//   * kCleartext — a relation held in the clear by one party (local jobs);
//   * kShardedClear — the same cleartext domain, horizontally sharded for the
//                  data-parallel executor (shard_count > 1 runs); coalesces back
//                  into one kCleartext relation at the MPC frontier and at
//                  Collects, so the engines always see the single-relation
//                  contract (see relational/sharded.h);
//   * kShared    — a secret-shared relation inside the Sharemind-style backend;
//   * kGarbled   — a relation inside the garbled-circuit backend (payload evaluated
//                  in the ideal model, costs and memory fully accounted; see
//                  mpc/garbled/gc_engine.h).
#ifndef CONCLAVE_BACKENDS_BACKEND_H_
#define CONCLAVE_BACKENDS_BACKEND_H_

#include <map>
#include <memory>
#include <string>

#include "conclave/common/party.h"
#include "conclave/common/status.h"
#include "conclave/common/virtual_clock.h"
#include "conclave/mpc/reveal_source.h"
#include "conclave/mpc/share.h"
#include "conclave/net/fault.h"
#include "conclave/relational/csv.h"
#include "conclave/relational/relation.h"
#include "conclave/relational/sharded.h"
#include "conclave/relational/spill.h"

namespace conclave {
namespace backends {

struct MaterializedValue {
  // kCsvSource is the streaming-ingest form (DESIGN.md §12): a CSV-backed
  // Create whose sole consumer is a fused local chain materializes only the
  // indexed raw text; the chain's per-shard pipelines parse row ranges
  // batch-at-a-time and the source relation never exists in memory.
  // kRevealSource is its reveal-boundary twin (DESIGN.md §14): a shared value
  // whose sole consumer is a fused local chain keeps its shares; the chain's
  // per-shard pipelines reconstruct row ranges batch-at-a-time and the
  // revealed relation never exists in memory.
  enum class Kind {
    kCleartext,
    kShardedClear,
    kShared,
    kGarbled,
    kCsvSource,
    kRevealSource
  };

  Kind kind = Kind::kCleartext;
  Relation clear;          // kCleartext / kGarbled payload.
  PartyId location = kNoParty;  // kCleartext / kShardedClear / k*Source: holder.
  SharedRelation shared;   // kShared.
  ShardedRelation sharded;  // kShardedClear.
  std::shared_ptr<CsvSource> csv;  // kCsvSource (shared with in-flight tasks).
  // kRevealSource (shared with in-flight tasks).
  std::shared_ptr<mpc::RevealSource> reveal;

  // Retired-concat phantom ingest (DESIGN.md §14): the value was "shared" by a
  // pruned dead MPC node — every ingest/consistency meter was charged, but the
  // payload stays cleartext (kCleartext / kShardedClear). A later cleartext
  // consumer charges the reveal boundary exactly as if the shares existed; a
  // later real MPC consumer shares for real without re-charging.
  bool phantom_shared = false;

  // One lazily-built split per (value, shard_count): N sharded consumers of a
  // revealed value reuse this instead of each cutting a task-owned copy
  // (coordinator-built, then only read by tasks).
  std::shared_ptr<const ShardedRelation> cached_split;

  int64_t NumRows() const {
    switch (kind) {
      case Kind::kShared:
        return shared.NumRows();
      case Kind::kShardedClear:
        return sharded.NumRows();
      case Kind::kCsvSource:
        return csv->NumRows();
      case Kind::kRevealSource:
        return reveal->NumRows();
      default:
        return clear.NumRows();
    }
  }
};

// Beyond-RAM execution outcome (DESIGN.md §12). The priced fields are closed
// forms over node-total row counts (compiler::NodeSpillSeconds), identical at
// every {pool, shard, batch_rows} grid point; `stats` carries the physical
// spill counters, whose layout varies with shard/batch structure and which are
// therefore reported for observability only.
struct SpillReport {
  int64_t mem_budget_rows = 0;  // Resolved per-operator budget (0 = unbounded).
  int spilling_nodes = 0;       // Nodes whose priced charge was non-zero.
  int64_t spill_passes = 0;     // Total priced merge passes across those nodes.
  double spill_seconds = 0;     // Priced spill I/O, folded into virtual_seconds.
  spill::SpillStats stats;      // Physical counters (merged in topo order).
};

struct ExecutionResult {
  std::map<std::string, Relation> outputs;  // Keyed by Collect name.
  double virtual_seconds = 0;
  // Virtual-time breakdown by engine (local cleartext vs. MPC vs. hybrid protocols).
  double local_seconds = 0;
  double mpc_seconds = 0;
  double hybrid_seconds = 0;
  // Total differential-privacy budget consumed by noisy outputs (sequential
  // composition across Collects with a DpSpec; 0 for exact queries).
  double dp_epsilon_spent = 0;
  CostCounters counters;
  // Measured virtual seconds per DAG node id: the node's metered engine/boundary
  // charges (x the malicious-security scale) plus its cleartext compute time. The
  // runtime half of the plan-cost contract — tests compare these meters against
  // compiler::PlanCostReport estimates. Deterministic across pool sizes (folded in
  // topo order, like every other total).
  std::map<int, double> node_seconds;
  // Fault-injection outcome (net/fault.h; fault_mode is false for runs without an
  // active FaultPlan). Under injection, virtual_seconds equals the fault-free
  // run's total plus fault_report.recovery_seconds, exactly.
  FaultReport fault_report;
  // Beyond-RAM execution outcome (DESIGN.md §12). With a budget,
  // virtual_seconds equals the unbounded run's total plus
  // spill_report.spill_seconds, exactly; results stay bit-identical.
  SpillReport spill_report;
  // Streaming-ingest residency witness (DESIGN.md §12): the largest row range
  // any CSV source parsed at once. For a streamed source this is at most one
  // pipeline batch — the proof the source relation never materialized; 0 when
  // no Create streamed.
  int64_t csv_peak_parse_rows = 0;
  // Reveal-boundary residency witness (DESIGN.md §14): the largest row range
  // any streaming reveal reconstructed at once. At most one pipeline batch —
  // the proof the revealed relation never materialized; 0 when no reveal
  // streamed.
  int64_t reveal_peak_rows = 0;
  // Graceful degradation: when the fault-recovery budget is exhausted, Run returns
  // ok() with aborted = true, abort_status carrying the canonical (earliest node
  // in topological order) failure provenance, and no outputs — a structured abort
  // with a populated FaultReport instead of a bare error. Non-fault failures keep
  // returning a plain error Status from Run, as always.
  bool aborted = false;
  Status abort_status;
};

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_BACKEND_H_
