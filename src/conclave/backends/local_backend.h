// Cleartext execution of DAG nodes (the sequential-Python agent of §4.1).
//
// Pure operator semantics live in relational/ops.h; this backend resolves column
// names against runtime schemas and dispatches. Cost accounting (Python vs. Spark) is
// the dispatcher's job, advised by spark_backend.h.
#ifndef CONCLAVE_BACKENDS_LOCAL_BACKEND_H_
#define CONCLAVE_BACKENDS_LOCAL_BACKEND_H_

#include <vector>

#include "conclave/common/status.h"
#include "conclave/ir/op.h"
#include "conclave/relational/relation.h"

namespace conclave {
namespace backends {

// Executes one non-Create node on cleartext inputs (one Relation per DAG input).
StatusOr<Relation> ExecuteLocal(const ir::OpNode& node,
                                const std::vector<const Relation*>& inputs);

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_LOCAL_BACKEND_H_
