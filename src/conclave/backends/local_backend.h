// Cleartext execution of DAG nodes (the sequential-Python agent of §4.1).
//
// Pure operator semantics live in relational/ops.h; this backend resolves column
// names against runtime schemas and dispatches. Cost accounting (Python vs. Spark) is
// the dispatcher's job, advised by spark_backend.h.
#ifndef CONCLAVE_BACKENDS_LOCAL_BACKEND_H_
#define CONCLAVE_BACKENDS_LOCAL_BACKEND_H_

#include <vector>

#include "conclave/common/status.h"
#include "conclave/ir/op.h"
#include "conclave/relational/pipeline.h"
#include "conclave/relational/relation.h"
#include "conclave/relational/sharded.h"
#include "conclave/relational/spill.h"

namespace conclave {
namespace backends {

// Per-node execution knobs threaded from the dispatcher (DESIGN.md §12).
struct LocalExecOptions {
  // Memory budget per blocking-operator instance; 0 = unbounded (the in-memory
  // kernels). SortBy / Distinct / Aggregate / Join over budget run through the
  // spill:: kernels. Window, pad, and concat's merge step stay materializing.
  int64_t mem_budget_rows = 0;
  // Physical spill counters for this node, filled when non-null. Reported for
  // observability only — layout varies with shard/batch structure.
  spill::SpillStats* spill_stats = nullptr;
};

// Executes one non-Create node on cleartext inputs (one Relation per DAG input).
StatusOr<Relation> ExecuteLocal(const ir::OpNode& node,
                                const std::vector<const Relation*>& inputs,
                                const LocalExecOptions& options = {});

// Shard-aware variant: each DAG input arrives as a non-owning shard pointer list
// (a one-entry list for unsharded values) and the output is a sharded relation
// honoring the canonical-order invariant — coalescing it yields exactly what
// ExecuteLocal returns on the coalesced inputs. Operators without a sharded kernel
// (window, pad) coalesce, execute unsharded, and re-split into `shard_count`
// shards.
StatusOr<ShardedRelation> ExecuteLocalSharded(
    const ir::OpNode& node,
    const std::vector<std::vector<const Relation*>>& inputs, int shard_count,
    const LocalExecOptions& options = {});

// Resolves one pipeline-fusible node (compiler::PipelineFusibleOp) into a
// streaming operator against its runtime input schema. Name resolution mirrors
// ExecuteLocal's per-kind resolution exactly, so a failure carries the same
// status the unfused execution of the node would report. The stage's output
// schema is BatchPipeline::DeriveSchema(input_schema, op).
StatusOr<PipelineOp> ResolvePipelineOp(const Schema& input_schema,
                                       const ir::OpNode& node);

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_LOCAL_BACKEND_H_
