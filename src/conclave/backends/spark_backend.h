// Spark cost simulation (the data-parallel cleartext backend of §4.1/§6).
//
// The paper's setup gives each party a three-VM Spark cluster; the insecure baseline
// of Fig. 4 runs one nine-node cluster over all parties' combined data. This module
// models job cost — fixed startup plus scan throughput scaled by worker count, with a
// stage model so multi-operator jobs pay startup once — and is exercised by both the
// dispatcher (per-party jobs) and the fig4 bench (joint insecure cluster).
#ifndef CONCLAVE_BACKENDS_SPARK_BACKEND_H_
#define CONCLAVE_BACKENDS_SPARK_BACKEND_H_

#include <cstdint>

#include "conclave/net/cost_model.h"

namespace conclave {
namespace backends {

class SparkJobSim {
 public:
  SparkJobSim(const CostModel& model, int workers)
      : model_(model), workers_(workers) {}

  // One operator pass over `records` input rows.
  void AddStage(uint64_t records) { total_records_ += records; }

  // Startup + processing time for the whole job.
  double TotalSeconds() const {
    return model_.spark_job_startup_seconds +
           static_cast<double>(total_records_) /
               (model_.spark_records_per_second_per_worker * workers_);
  }

  uint64_t total_records() const { return total_records_; }

 private:
  CostModel model_;
  int workers_;
  uint64_t total_records_ = 0;
};

// Sequential-Python equivalent (no startup, interpreter-speed scan).
double PythonJobSeconds(const CostModel& model, uint64_t records);

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_SPARK_BACKEND_H_
