#include "conclave/backends/sharemind_backend.h"

#include "conclave/hybrid/hybrid_agg.h"
#include "conclave/hybrid/hybrid_join.h"
#include "conclave/hybrid/hybrid_window.h"
#include "conclave/hybrid/public_join.h"

namespace conclave {
namespace backends {
namespace {

StatusOr<ArithSpec> ResolveArith(const Schema& schema,
                                 const ir::ArithmeticParams& params) {
  ArithSpec spec;
  spec.kind = params.kind;
  CONCLAVE_ASSIGN_OR_RETURN(spec.lhs_column, schema.IndexOf(params.lhs_column));
  spec.rhs_is_column = params.rhs_is_column;
  if (params.rhs_is_column) {
    CONCLAVE_ASSIGN_OR_RETURN(spec.rhs_column, schema.IndexOf(params.rhs_column));
  } else {
    spec.rhs_literal = params.literal;
  }
  spec.result_name = params.output_name;
  spec.scale = params.scale;
  return spec;
}

}  // namespace

StatusOr<SharedRelation> SharemindBackend::Execute(
    const ir::OpNode& node, const std::vector<const SharedRelation*>& inputs) {
  switch (node.kind) {
    case ir::OpKind::kConcat: {
      const auto& params = node.Params<ir::ConcatParams>();
      if (!params.merge_columns.empty()) {
        // Sorted-merge concat (§5.4): fold the branches through oblivious merges.
        CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> columns,
                                  inputs[0]->schema().IndicesOf(params.merge_columns));
        SharedRelation merged = *inputs[0];
        for (size_t i = 1; i < inputs.size(); ++i) {
          merged = ObliviousMerge(engine_, merged, *inputs[i], columns);
        }
        return merged;
      }
      std::vector<SharedRelation> rels;
      rels.reserve(inputs.size());
      for (const SharedRelation* rel : inputs) {
        rels.push_back(*rel);
      }
      return mpc::Concat(rels);
    }
    case ir::OpKind::kProject: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          inputs[0]->schema().IndicesOf(node.Params<ir::ProjectParams>().columns));
      return mpc::Project(*inputs[0], columns);
    }
    case ir::OpKind::kFilter: {
      const auto& params = node.Params<ir::FilterParams>();
      FilterPredicate predicate;
      CONCLAVE_ASSIGN_OR_RETURN(predicate.column,
                                inputs[0]->schema().IndexOf(params.column));
      predicate.op = params.op;
      predicate.rhs_is_column = params.rhs_is_column;
      if (params.rhs_is_column) {
        CONCLAVE_ASSIGN_OR_RETURN(predicate.rhs_column,
                                  inputs[0]->schema().IndexOf(params.rhs_column));
      } else {
        predicate.rhs_literal = params.literal;
      }
      return mpc::Filter(engine_, *inputs[0], predicate);
    }
    case ir::OpKind::kJoin: {
      const auto& params = node.Params<ir::JoinParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> lk,
                                inputs[0]->schema().IndicesOf(params.left_keys));
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> rk,
                                inputs[1]->schema().IndicesOf(params.right_keys));
      switch (node.hybrid) {
        case ir::HybridKind::kHybridJoin:
          return hybrid::HybridJoin(engine_, *inputs[0], *inputs[1], lk, rk, node.stp,
                                    num_parties_);
        case ir::HybridKind::kPublicJoin:
          return hybrid::PublicJoinShared(engine_, *inputs[0], *inputs[1], lk, rk,
                                          node.stp, num_parties_);
        default:
          return mpc::Join(engine_, *inputs[0], *inputs[1], lk, rk);
      }
    }
    case ir::OpKind::kAggregate: {
      const auto& params = node.Params<ir::AggregateParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> group,
                                inputs[0]->schema().IndicesOf(params.group_columns));
      int agg_column = 0;
      if (params.kind != AggKind::kCount) {
        CONCLAVE_ASSIGN_OR_RETURN(agg_column,
                                  inputs[0]->schema().IndexOf(params.agg_column));
      }
      if (node.hybrid == ir::HybridKind::kHybridAggregate) {
        return hybrid::HybridAggregate(engine_, *inputs[0], group, params.kind,
                                       agg_column, params.output_name, node.stp,
                                       num_parties_);
      }
      return mpc::Aggregate(engine_, *inputs[0], group, params.kind, agg_column,
                            params.output_name, node.assume_sorted);
    }
    case ir::OpKind::kArithmetic: {
      CONCLAVE_ASSIGN_OR_RETURN(
          ArithSpec spec,
          ResolveArith(inputs[0]->schema(), node.Params<ir::ArithmeticParams>()));
      return mpc::Arithmetic(engine_, *inputs[0], spec);
    }
    case ir::OpKind::kWindow: {
      const auto& params = node.Params<ir::WindowParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> partition,
                                inputs[0]->schema().IndicesOf(params.partition_columns));
      CONCLAVE_ASSIGN_OR_RETURN(int order_column,
                                inputs[0]->schema().IndexOf(params.order_column));
      int value_column = 0;
      if (params.fn != WindowFn::kRowNumber) {
        CONCLAVE_ASSIGN_OR_RETURN(value_column,
                                  inputs[0]->schema().IndexOf(params.value_column));
      }
      if (node.hybrid == ir::HybridKind::kHybridWindow) {
        return hybrid::HybridWindow(engine_, *inputs[0], partition, order_column,
                                    params.fn, value_column, params.output_name,
                                    node.stp, num_parties_);
      }
      return mpc::Window(engine_, *inputs[0], partition, order_column, params.fn,
                         value_column, params.output_name, node.assume_sorted);
    }
    case ir::OpKind::kSortBy: {
      const auto& params = node.Params<ir::SortByParams>();
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> columns,
                                inputs[0]->schema().IndicesOf(params.columns));
      return mpc::Sort(engine_, *inputs[0], columns, params.ascending,
                       node.assume_sorted);
    }
    case ir::OpKind::kDistinct: {
      CONCLAVE_ASSIGN_OR_RETURN(
          std::vector<int> columns,
          inputs[0]->schema().IndicesOf(node.Params<ir::DistinctParams>().columns));
      return mpc::Distinct(engine_, *inputs[0], columns, node.assume_sorted);
    }
    case ir::OpKind::kLimit:
      return mpc::Limit(*inputs[0], node.Params<ir::LimitParams>().count);
    case ir::OpKind::kPad:
      return InternalError("pad is a local pre-MPC step; it never runs under MPC");
    case ir::OpKind::kCreate:
    case ir::OpKind::kCollect:
      return InternalError("create/collect nodes are dispatcher boundaries");
  }
  return InternalError("unhandled op kind in Sharemind backend");
}

}  // namespace backends
}  // namespace conclave
