#include "conclave/backends/spark_backend.h"

namespace conclave {
namespace backends {

double PythonJobSeconds(const CostModel& model, uint64_t records) {
  return model.PythonSeconds(records);
}

}  // namespace backends
}  // namespace conclave
