// Sharemind-style secret-sharing MPC backend (§6).
//
// Wraps the SecretShareEngine and dispatches DAG nodes to the MPC relational
// protocols (mpc/protocols.h) and the hybrid protocols (hybrid/*). One backend
// instance corresponds to one three-server Sharemind deployment; its costs accrue on
// the SimNetwork it was constructed with.
#ifndef CONCLAVE_BACKENDS_SHAREMIND_BACKEND_H_
#define CONCLAVE_BACKENDS_SHAREMIND_BACKEND_H_

#include <vector>

#include "conclave/common/status.h"
#include "conclave/ir/op.h"
#include "conclave/mpc/protocols.h"

namespace conclave {
namespace backends {

class SharemindBackend {
 public:
  SharemindBackend(SimNetwork* network, uint64_t seed, int num_parties)
      : engine_(network, seed), num_parties_(num_parties) {}

  // Secret-shares a party's cleartext relation into the MPC (charging ingest).
  StatusOr<SharedRelation> Input(const Relation& relation) {
    return mpc::InputRelation(engine_, relation);
  }

  // Opens a shared relation (end of the MPC frontier).
  Relation Reveal(const SharedRelation& relation) {
    return mpc::RevealRelation(engine_, relation);
  }

  // Executes one MPC or hybrid node on shared inputs.
  StatusOr<SharedRelation> Execute(const ir::OpNode& node,
                                   const std::vector<const SharedRelation*>& inputs);

  SecretShareEngine& engine() { return engine_; }
  int num_parties() const { return num_parties_; }

 private:
  SecretShareEngine engine_;
  int num_parties_;
};

}  // namespace backends
}  // namespace conclave

#endif  // CONCLAVE_BACKENDS_SHAREMIND_BACKEND_H_
