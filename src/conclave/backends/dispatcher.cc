#include "conclave/backends/dispatcher.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "conclave/backends/local_backend.h"
#include "conclave/backends/spark_backend.h"
#include "conclave/common/env.h"
#include "conclave/common/logging.h"
#include "conclave/common/strings.h"
#include "conclave/compiler/partition.h"
#include "conclave/compiler/plan_cost.h"
#include "conclave/mpc/malicious/commitment.h"
#include "conclave/relational/pipeline.h"

namespace conclave {
namespace backends {
namespace {

// Per-run execution state shared by the coordinator and (read-only) the pool tasks.
struct RunState {
  SimNetwork net;
  SharemindBackend sharemind;
  OblivcBackend oblivc;
  bool use_gc_backend;
  bool use_spark;
  bool malicious;
  int num_parties;
  uint64_t seed;
  uint64_t next_nonce = 0;
  // Horizontal shard count of the cleartext data plane (1 = unsharded, the
  // historical executor). Sharding changes wall clock only: every virtual-time
  // charge is computed from totals (row counts, byte sizes) that are identical at
  // any shard count, and shards coalesce before anything enters the MPC engines.
  int shard_count = 1;
  // Batch size of the push-based pipeline executor (<= 0 disables fusion; every
  // operator then materializes node-at-a-time). Batching, like sharding, changes
  // wall clock and memory only: fused chains are priced per node from row totals
  // that are identical at every batch size (DESIGN.md §10).
  int64_t batch_rows = kDefaultBatchRows;
  // Per-operator-instance memory budget of the blocking cleartext kernels
  // (DESIGN.md §12; 0 = unbounded). The physical spill work changes wall clock
  // and disk only; the virtual clock carries the priced closed form
  // (compiler::NodeSpillSeconds over node-total rows), identical at every
  // {pool, shard, batch} point and added once in the final accounting pass.
  int64_t mem_budget_rows = 0;
  // Streaming across the reveal boundary (DESIGN.md §14): a shared value whose
  // sole consumer is a fused chain head becomes a RevealSource and the chain's
  // per-shard pipelines reconstruct row ranges batch-at-a-time. Like sharding
  // and batching, this changes wall clock and memory only: the reveal is
  // charged once for the whole relation at conversion, exactly as the
  // materializing path charges it.
  bool stream_reveal = true;

  std::vector<MaterializedValue> values;  // Indexed by node id; slots never move.
  std::unordered_map<int, int> node_job;  // node id -> job id

  // Active fault injector (nullptr = injection off). Coordinator-owned, like the
  // network and engines it perturbs (net/fault.h, DESIGN.md §11); pool tasks
  // never consult it.
  FaultInjector* fault = nullptr;

  RunState(const CostModel& model, uint64_t run_seed, int parties, bool gc,
           bool spark, bool malicious_mode)
      : net(model),
        sharemind(&net, run_seed, parties),
        oblivc(&net, /*oblivm_mode=*/false),
        use_gc_backend(gc),
        use_spark(spark),
        malicious(malicious_mode),
        num_parties(parties),
        seed(run_seed) {}

  // Active-adversary protocols cost a constant factor more (§2.2); applied to the
  // MPC/hybrid portions of the virtual time.
  double MpcScale() const {
    return malicious ? net.model().malicious_overhead_factor : 1.0;
  }
};

// Moves a value into the secure domain (inputToMPC), charging ingest on the engine.
// Under malicious security, every cleartext relation entering the MPC first runs the
// Appendix-A.5 commit + ZK-consistency phase; a rejected proof aborts the query.
// Coalesces a sharded cleartext value back into the single-relation form (the MPC
// frontier and Collect contract). Callers must hold exclusive access to the value
// (no concurrent shard readers) — the executor guarantees this by treating lane
// and collect acquisitions as payload-overwriting.
void CoalesceShards(MaterializedValue& value) {
  if (value.kind != MaterializedValue::Kind::kShardedClear) {
    return;
  }
  value.clear = value.sharded.Coalesce();
  value.sharded = ShardedRelation{};
  value.kind = MaterializedValue::Kind::kCleartext;
}

Status EnsureSecure(RunState& state, MaterializedValue& value) {
  CoalesceShards(value);
  if (value.phantom_shared && !state.use_gc_backend &&
      value.kind == MaterializedValue::Kind::kCleartext) {
    // A retired node already charged this value's ingest and consistency phase
    // (the phantom path below); share the payload for real without re-charging,
    // exactly as if the shares had existed since then.
    std::vector<SharedColumn> columns;
    columns.reserve(static_cast<size_t>(value.clear.NumColumns()));
    for (int c = 0; c < value.clear.NumColumns(); ++c) {
      columns.push_back(state.sharemind.engine().ShareColumn(value.clear, c));
    }
    value.shared = SharedRelation(value.clear.schema(), std::move(columns));
    value.clear = Relation{};
    value.kind = MaterializedValue::Kind::kShared;
    value.phantom_shared = false;
    return Status::Ok();
  }
  if (state.malicious && value.kind == MaterializedValue::Kind::kCleartext) {
    const PartyId owner = value.location == kNoParty ? 0 : value.location;
    CONCLAVE_RETURN_IF_ERROR(malicious::InputConsistencyPhase(
        state.net, value.clear, owner, state.num_parties,
        state.seed ^ (0x9e3779b97f4a7c15ULL + state.next_nonce++)));
  }
  if (state.use_gc_backend) {
    if (value.kind == MaterializedValue::Kind::kGarbled) {
      return Status::Ok();
    }
    CONCLAVE_CHECK(value.kind == MaterializedValue::Kind::kCleartext);
    CONCLAVE_RETURN_IF_ERROR(state.oblivc.Input(value.clear));
    value.kind = MaterializedValue::Kind::kGarbled;
    return Status::Ok();
  }
  if (value.kind == MaterializedValue::Kind::kShared) {
    return Status::Ok();
  }
  CONCLAVE_CHECK(value.kind == MaterializedValue::Kind::kCleartext);
  CONCLAVE_ASSIGN_OR_RETURN(value.shared, state.sharemind.Input(value.clear));
  value.clear = Relation{};
  value.kind = MaterializedValue::Kind::kShared;
  return Status::Ok();
}

// Moves a value into the clear at `party` (reveal / party-to-party transfer),
// coalescing sharded values first. Local-compute input acquisition uses
// EnsureLocalInputAt instead, which keeps shards intact.
void EnsureCleartextAt(RunState& state, MaterializedValue& value, PartyId party) {
  CoalesceShards(value);
  if (value.phantom_shared &&
      value.kind == MaterializedValue::Kind::kCleartext) {
    // Phantom reveal (retired-node compatibility, DESIGN.md §14): the payload
    // never left the clear, but the retired consumer charged its ingest as if
    // it had — so this crossing charges the reveal exactly as the shared form
    // would, keeping the clock identical to the pre-prune execution.
    mpc::ChargeRevealMeters(state.net, static_cast<uint64_t>(
        value.clear.NumRows() * value.clear.NumColumns()));
    if (state.fault != nullptr) {
      state.fault->DeliverReveal(value.clear);
    }
    value.phantom_shared = false;
    value.location = party;
    return;
  }
  switch (value.kind) {
    case MaterializedValue::Kind::kShared:
      value.clear = state.sharemind.Reveal(value.shared);
      if (state.fault != nullptr) {
        // Reveal-path integrity under injection: corrupted deliveries are
        // detected by the commitment opening check and retransmitted.
        state.fault->DeliverReveal(value.clear);
      }
      value.shared = SharedRelation{};
      value.kind = MaterializedValue::Kind::kCleartext;
      value.location = party;
      break;
    case MaterializedValue::Kind::kGarbled:
      // Output labels decode at both parties; transfer of decoded rows is cheap.
      state.net.CountAggregateBytes(value.clear.ByteSize());
      state.net.Rounds(1);
      value.kind = MaterializedValue::Kind::kCleartext;
      value.location = party;
      break;
    case MaterializedValue::Kind::kCleartext:
      if (value.location != party && value.location != kNoParty) {
        state.net.Send(value.location, party, value.clear.ByteSize());
        state.net.Rounds(1);
        value.location = party;
      }
      break;
    case MaterializedValue::Kind::kShardedClear:
      break;  // Unreachable: coalesced above.
    case MaterializedValue::Kind::kCsvSource:
    case MaterializedValue::Kind::kRevealSource:
      // Unreachable: a streaming source is produced only when its sole consumer
      // is a fused chain head at the owning party, which acquires through
      // AcquireLocalInputs without any frontier transition.
      CONCLAVE_CHECK(false);
      break;
  }
}

// Local-compute input acquisition: like EnsureCleartextAt but keeps sharded values
// sharded (the per-party transfer charge uses the shard total, which equals the
// coalesced relation's byte size — virtual time is shard-count-invariant).
void EnsureLocalInputAt(RunState& state, MaterializedValue& value, PartyId party) {
  if (value.kind == MaterializedValue::Kind::kShardedClear) {
    if (value.location != party && value.location != kNoParty) {
      state.net.Send(value.location, party, value.sharded.ByteSize());
      state.net.Rounds(1);
      value.location = party;
    }
    return;
  }
  EnsureCleartextAt(state, value, party);
}

// Cost-model seconds a cleartext backend spends processing `records` input records
// (Spark stage throughput or sequential Python scan; the formula lives on CostModel,
// shared with the planner). The per-job Spark startup charge is added once per job
// in the final accounting pass.
double LocalComputeSeconds(const RunState& state, uint64_t records) {
  return state.net.model().CleartextScanSeconds(records, state.use_spark);
}

// How the executor treats a node: pool-executed cleartext work vs. coordinator-run
// steps (Collects mutate shared run state; MPC/hybrid nodes additionally serialize
// on the lane).
enum class NodeClass { kCreate, kLocalCompute, kCollect, kLane };

NodeClass ClassOf(const ir::OpNode& node) {
  if (node.kind == ir::OpKind::kCreate) {
    return NodeClass::kCreate;
  }
  if (node.kind == ir::OpKind::kCollect) {
    return NodeClass::kCollect;
  }
  return node.exec_mode == ir::ExecMode::kLocal ? NodeClass::kLocalCompute
                                                : NodeClass::kLane;
}

// Runs one compiled plan as a parallel job graph. The coordinator (the thread that
// calls Run) owns every piece of shared mutable simulation state — the SimNetwork,
// the MPC engines, and all value-form transitions — while pure cleartext compute
// (Create ingest, local operator chains) runs as pool tasks. See DESIGN.md §5 for
// the determinism contract this layout enforces.
class JobGraphExecutor {
 public:
  JobGraphExecutor(RunState& state, const compiler::Compilation& compilation,
                   const std::map<std::string, Relation>& inputs, ThreadPool& pool,
                   std::vector<const ir::OpNode*> topo)
      : state_(state),
        compilation_(compilation),
        inputs_(inputs),
        pool_(pool),
        topo_(std::move(topo)) {}

  StatusOr<ExecutionResult> Run();

 private:
  struct NodeExec {
    const ir::OpNode* node = nullptr;
    NodeClass klass = NodeClass::kLocalCompute;
    int remaining_inputs = 0;
    bool dispatched = false;
    bool materialized = false;
    // Pool tasks currently reading this node's materialized value. A transition
    // that overwrites the value's payload (inputToMPC moves the cleartext into the
    // engine) must wait until this drops to zero.
    int active_readers = 0;
    // Consumers (as topo indices, ascending, one entry per use) and how many of
    // those uses have performed their input acquisition. Acquisitions happen in
    // this fixed order so value-form transitions (reveal, transfer, inputToMPC)
    // replay identically regardless of pool size.
    std::vector<int> consumer_uses;
    int acquired_uses = 0;
    // Deterministic per-node virtual-time attribution, merged in topo order by the
    // final accounting pass.
    double boundary_scaled_seconds = 0;  // Reveal/transfer/ingest/MPC, x MpcScale.
    double local_compute_seconds = 0;    // Cost-model cleartext compute.
    double dp_epsilon = 0;
    bool charged_local = false;          // Participates in the Spark startup charge.
    // Injected crash count for this node's job (fault mode; decided once at
    // dispatch on the coordinator so the schedule is pool-size-independent).
    int fault_crashes = 0;
    // Priced beyond-RAM spill charge for this node (DESIGN.md §12): the
    // closed-form compiler::NodeSpillSeconds over the node's TOTAL input rows,
    // computed on the coordinator at acquisition (or, for fused interior
    // members, from the chain's summed per-op rows) — never from physical
    // shard/batch layout, so the charge is grid-invariant. Folded into
    // virtual_seconds once, in the final accounting pass; node_seconds stays
    // spill-free so the per-node estimate==meter identities are untouched.
    double spill_priced_seconds = 0;
    int64_t spill_passes = 0;
    // Physical spill counters this node's kernels reported (observability
    // only; layout-dependent).
    spill::SpillStats spill_stats;
    // Pipeline fusion (DESIGN.md §10): topo indices of this chain's members in
    // chain order (filled on the head only; length >= 2). Members execute as one
    // BatchPipeline per shard inside the head's dispatch; only the tail's output
    // materializes.
    std::vector<int> chain_members;
    // Topo index of the owning chain's head (-1 = not fused). The head points at
    // itself.
    int chain_head = -1;
  };

  struct Completion {
    int topo_index = 0;
    Status status;
    Relation output;
    ShardedRelation sharded_output;  // Valid when is_sharded.
    bool is_sharded = false;
    // Fused-chain completions: rows consumed by each chain member (summed over
    // shards). Equals the unfused execution's per-node input cardinalities at
    // every batch size; DrainCompletions prices interior members from these.
    std::vector<int64_t> chain_op_rows;
    // Physical spill counters from the task's kernels (zero when nothing
    // spilled).
    spill::SpillStats spill_stats;
    // Streaming CSV ingest (DESIGN.md §12): a Create completing as an indexed
    // source instead of a materialized relation.
    std::shared_ptr<CsvSource> csv_output;
  };

  int TopoIndexOf(int node_id) const { return topo_index_.at(node_id); }
  NodeExec& ExecOf(const ir::OpNode& node) { return execs_[TopoIndexOf(node.id)]; }

  // True when every input value may be acquired by `exec` right now: inputs are
  // materialized, this node is the next acquirer of each, and payload-overwriting
  // transitions have no concurrent readers.
  bool CanAcquireInputs(const NodeExec& exec) const;
  // Advances the per-value acquisition cursors for `exec`'s input edges. Called
  // alongside the frontier transitions (EnsureCleartextAt / EnsureSecure), which
  // stay at the call sites because the target form differs per node class.
  void AdvanceAcquisition(NodeExec& exec);

  // Cleartext input forms acquired for a local-compute dispatch (unsharded
  // pointer list, or per-input shard pointer lists plus the cached splits
  // keeping them alive).
  struct AcquiredInputs {
    std::vector<const Relation*> rels;
    std::vector<std::vector<const Relation*>> shard_rels;
    // Keeps the per-value cached splits alive for the task however often the
    // std::function wrapper is moved or copied (one split per value, built
    // lazily on the coordinator and shared by every sharded consumer).
    std::vector<std::shared_ptr<const ShardedRelation>> cached_splits;
    uint64_t records = 0;
    // Total rows per DAG input, in input order (shard- and batch-invariant);
    // the spill pricing's cardinality source.
    std::vector<int64_t> input_rows;
    // Non-null when the (sole) input is a streaming CSV source: the chain
    // head pulls parsed row-range batches instead of reading a relation.
    std::shared_ptr<CsvSource> csv;
    // Non-null when the (sole) input is a streaming reveal (DESIGN.md §14):
    // the chain head reconstructs revealed row-range batches instead of
    // reading a materialized relation.
    std::shared_ptr<mpc::RevealSource> reveal;
  };

  void DispatchCreate(NodeExec& exec);
  // Acquires `exec`'s inputs at its party (frontier transitions + shard splits),
  // advances the acquisition cursors, and charges the node's boundary and
  // cleartext-compute attributions — the shared front half of every
  // local-compute dispatch, fused or not.
  AcquiredInputs AcquireLocalInputs(NodeExec& exec);
  void DispatchLocalCompute(NodeExec& exec);
  // Dispatches a fused chain (exec is the head): resolves the streaming
  // operator specs against the runtime input schema, then submits one
  // BatchPipeline task per shard; the completion is posted once, under the
  // head's topo index, carrying the tail's output.
  void DispatchChain(NodeExec& exec);
  Status RunCollect(NodeExec& exec, ExecutionResult& result);
  Status RunLaneNode(NodeExec& exec);
  // One execution attempt of a lane node: secures inputs, runs the engine, and
  // stores the output value — everything RunLaneNode may have to replay after an
  // injected crash. Metering/materialization stay with the caller.
  Status ExecuteLaneOnce(NodeExec& exec);
  // Lane attempt of a retired node (ir::OpNode::retired): charges everything
  // the pre-prune execution charged but shares nothing and materializes an
  // empty value; the inputs stay cleartext, flagged phantom_shared.
  Status ExecutePhantomRetired(NodeExec& exec);

  // Frontier checkpoint for lane-node crash recovery (DESIGN.md §11): enough
  // coordinator state to re-execute the node bit-identically — the network
  // snapshot, the engine's randomness cursors, the malicious-input nonce, copies
  // of the node's input values (EnsureSecure consumes cleartext payloads), and
  // the producers' acquisition cursors.
  struct LaneCheckpoint {
    SimNetwork::Snapshot net;
    SecretShareEngine::ReplayCheckpoint engine;
    uint64_t next_nonce = 0;
    std::vector<std::pair<int, MaterializedValue>> inputs;  // node id -> copy
    std::vector<std::pair<int, int>> acquired;  // topo index -> acquired_uses
  };
  LaneCheckpoint TakeLaneCheckpoint(const NodeExec& exec);
  void RestoreLaneCheckpoint(const LaneCheckpoint& checkpoint);

  // Fault-mode job dispatch, front half: enters the node's injector scope and
  // takes the scheduled crash count. False = the crash budget is exhausted (the
  // fault failure is recorded and the caller abandons the dispatch, before any
  // input acquisition).
  bool PrepareJobFaults(NodeExec& exec);
  // Fault-mode job dispatch, back half (after acquisition): escalates
  // unrecoverable send faults raised during acquisition and prices the job's
  // modeled crash restarts. Pool tasks are pure functions of their inputs (the
  // determinism contract the chaos fuzzer enforces), so a crashed task re-runs
  // to the same bits — the restart is priced, not physically re-executed; lane
  // nodes, whose execution mutates engine state, ARE physically replayed
  // (RunLaneNode). False = fault failure recorded; the caller releases its
  // readers and abandons the dispatch.
  bool CommitJobFaults(NodeExec& exec);
  // Canonicalizes a pending injector failure to the earliest topo index, the
  // fault-path mirror of RecordFailure.
  void RecordFaultFailure(int topo_index);
  // Topo gate for dispatch: nothing at or past the earliest failure (regular or
  // fault) may start.
  int FailureGate() const;
  std::vector<int> TopoNodeIds() const;

  void MarkMaterialized(NodeExec& exec);
  void RecordFailure(int topo_index, Status status);
  void DrainCompletions(bool wait);

  StatusOr<ExecutionResult> FinalizeAccounting(ExecutionResult result);

  RunState& state_;
  const compiler::Compilation& compilation_;
  const std::map<std::string, Relation>& inputs_;
  ThreadPool& pool_;

  std::vector<const ir::OpNode*> topo_;
  std::unordered_map<int, int> topo_index_;  // node id -> topo position
  std::vector<NodeExec> execs_;
  std::vector<int> lane_;  // Topo indices of MPC/hybrid nodes, in topo order.
  size_t lane_next_ = 0;
  size_t materialized_count_ = 0;
  int in_flight_ = 0;

  int first_failed_topo_ = -1;
  Status failure_;

  // Fault-injection failures (exhausted recovery budgets) are tracked separately
  // from regular Status failures: they end in a structured abort, not an error.
  // Canonicalized to the earliest topo index, like failure_; at the same index
  // the fault abort wins (the fault caused the step to fail).
  int fault_failed_topo_ = -1;
  std::string fault_failure_text_;
  int fault_failure_node_ = -1;

  std::mutex completions_mu_;
  std::condition_variable completions_cv_;
  std::vector<Completion> completions_;
};

bool JobGraphExecutor::CanAcquireInputs(const NodeExec& exec) const {
  const int my_topo = TopoIndexOf(exec.node->id);
  // inputToMPC moves the cleartext payload, and Collects coalesce sharded values
  // in place; neither may overlap with pool tasks still reading the old payload.
  const bool overwrites_payload =
      exec.klass == NodeClass::kLane || exec.klass == NodeClass::kCollect;
  for (const ir::OpNode* in : exec.node->inputs) {
    const NodeExec& producer = execs_[TopoIndexOf(in->id)];
    if (!producer.materialized) {
      return false;
    }
    if (producer.consumer_uses[static_cast<size_t>(producer.acquired_uses)] !=
        my_topo) {
      return false;  // An earlier consumer has not taken its turn yet.
    }
    if (overwrites_payload && producer.active_readers > 0) {
      return false;
    }
  }
  return true;
}

void JobGraphExecutor::AdvanceAcquisition(NodeExec& exec) {
  const int my_topo = TopoIndexOf(exec.node->id);
  for (const ir::OpNode* in : exec.node->inputs) {
    NodeExec& producer = execs_[static_cast<size_t>(TopoIndexOf(in->id))];
    // A node consuming the same value through several edges holds adjacent entries
    // in the (sorted) use list; each edge advances the cursor once.
    CONCLAVE_CHECK_EQ(
        producer.consumer_uses[static_cast<size_t>(producer.acquired_uses)],
        my_topo);
    ++producer.acquired_uses;
  }
}

void JobGraphExecutor::MarkMaterialized(NodeExec& exec) {
  exec.materialized = true;
  ++materialized_count_;
  for (const ir::OpNode* out : exec.node->outputs) {
    // Detached nodes are unreachable and never in topo order.
    auto it = topo_index_.find(out->id);
    if (it != topo_index_.end()) {
      --execs_[static_cast<size_t>(it->second)].remaining_inputs;
    }
  }
}

void JobGraphExecutor::RecordFailure(int topo_index, Status status) {
  if (first_failed_topo_ < 0 || topo_index < first_failed_topo_) {
    first_failed_topo_ = topo_index;
    failure_ = std::move(status);
  }
}

void JobGraphExecutor::RecordFaultFailure(int topo_index) {
  int node_id = -1;
  std::string text = state_.fault->TakePendingFailure(&node_id);
  if (fault_failed_topo_ < 0 || topo_index < fault_failed_topo_) {
    fault_failed_topo_ = topo_index;
    fault_failure_text_ = std::move(text);
    fault_failure_node_ = node_id;
  }
}

int JobGraphExecutor::FailureGate() const {
  int gate = first_failed_topo_;
  if (fault_failed_topo_ >= 0 && (gate < 0 || fault_failed_topo_ < gate)) {
    gate = fault_failed_topo_;
  }
  return gate;
}

std::vector<int> JobGraphExecutor::TopoNodeIds() const {
  std::vector<int> ids;
  ids.reserve(topo_.size());
  for (const ir::OpNode* node : topo_) {
    ids.push_back(node->id);
  }
  return ids;
}

bool JobGraphExecutor::PrepareJobFaults(NodeExec& exec) {
  if (state_.fault == nullptr) {
    return true;
  }
  state_.fault->EnterScope(exec.node->id);
  exec.fault_crashes = state_.fault->JobCrashes(exec.node->id);
  if (state_.fault->has_pending_failure()) {
    exec.dispatched = true;
    RecordFaultFailure(TopoIndexOf(exec.node->id));
    return false;
  }
  return true;
}

bool JobGraphExecutor::CommitJobFaults(NodeExec& exec) {
  if (state_.fault == nullptr) {
    return true;
  }
  if (state_.fault->has_pending_failure()) {
    exec.dispatched = true;
    RecordFaultFailure(TopoIndexOf(exec.node->id));
    return false;
  }
  for (int k = 0; k < exec.fault_crashes; ++k) {
    state_.fault->ChargeJobRestart(exec.node->id, exec.local_compute_seconds);
  }
  return true;
}

JobGraphExecutor::LaneCheckpoint JobGraphExecutor::TakeLaneCheckpoint(
    const NodeExec& exec) {
  LaneCheckpoint checkpoint;
  checkpoint.net = state_.net.TakeSnapshot();
  checkpoint.engine = state_.sharemind.engine().TakeCheckpoint();
  checkpoint.next_nonce = state_.next_nonce;
  for (const ir::OpNode* in : exec.node->inputs) {
    checkpoint.inputs.emplace_back(in->id,
                                   state_.values[static_cast<size_t>(in->id)]);
    const int producer_topo = TopoIndexOf(in->id);
    checkpoint.acquired.emplace_back(
        producer_topo, execs_[static_cast<size_t>(producer_topo)].acquired_uses);
  }
  return checkpoint;
}

void JobGraphExecutor::RestoreLaneCheckpoint(const LaneCheckpoint& checkpoint) {
  state_.net.RestoreSnapshot(checkpoint.net);
  state_.sharemind.engine().Restore(checkpoint.engine);
  state_.next_nonce = checkpoint.next_nonce;
  for (const auto& [node_id, value] : checkpoint.inputs) {
    state_.values[static_cast<size_t>(node_id)] = value;
  }
  for (const auto& [producer_topo, acquired_uses] : checkpoint.acquired) {
    execs_[static_cast<size_t>(producer_topo)].acquired_uses = acquired_uses;
  }
}

void JobGraphExecutor::DispatchCreate(NodeExec& exec) {
  const ir::OpNode* node = exec.node;
  if (!PrepareJobFaults(exec)) {
    return;
  }
  if (state_.fault != nullptr) {
    // Create tasks charge no cost-model compute; a crashed ingest re-runs for
    // free and pays only the restart penalty.
    for (int k = 0; k < exec.fault_crashes; ++k) {
      state_.fault->ChargeJobRestart(node->id, /*wasted_seconds=*/0);
    }
  }
  exec.dispatched = true;
  ++in_flight_;
  const int my_topo = TopoIndexOf(node->id);
  const int shard_count = state_.shard_count;
  // Streaming-ingest eligibility (DESIGN.md §12), decided on the coordinator so
  // the choice is pool-size-independent: a CSV-backed Create whose sole
  // consumer is a fused chain head at the owning party materializes only the
  // indexed source text; the chain's pipelines parse row ranges themselves.
  // Every other CSV create parses eagerly into the usual relation forms.
  const auto& create_params = node->Params<ir::CreateParams>();
  bool stream_csv = false;
  if (!create_params.csv_path.empty() && state_.batch_rows > 0 &&
      exec.consumer_uses.size() == 1) {
    const NodeExec& consumer =
        execs_[static_cast<size_t>(exec.consumer_uses[0])];
    stream_csv = consumer.chain_members.size() >= 2 &&
                 consumer.node->exec_party == create_params.party;
  }
  pool_.Submit([this, node, my_topo, shard_count, stream_csv] {
    Completion completion;
    completion.topo_index = my_topo;
    try {
      const auto& params = node->Params<ir::CreateParams>();
      if (!params.csv_path.empty()) {
        StatusOr<CsvSource> source = CsvSource::FromFile(params.csv_path);
        if (!source.ok()) {
          completion.status = source.status();
        } else if (!source->schema().NamesMatch(node->schema)) {
          completion.status = InvalidArgumentError(StrFormat(
              "input '%s' schema %s does not match declared schema %s",
              params.name.c_str(), source->schema().ToString().c_str(),
              node->schema.ToString().c_str()));
        } else if (stream_csv) {
          completion.csv_output =
              std::make_shared<CsvSource>(std::move(*source));
        } else if (shard_count > 1) {
          // Sharded ingest: parse contiguous row ranges straight into shards
          // (same boundaries as SplitEven); the earliest shard's parse error
          // is the canonical one.
          const int64_t rows = source->NumRows();
          ShardedRelation out{source->schema()};
          Status status;
          for (int s = 0; s < shard_count && status.ok(); ++s) {
            StatusOr<Relation> shard = source->ParseRows(
                rows * s / shard_count, rows * (s + 1) / shard_count);
            if (shard.ok()) {
              out.AddShard(std::move(*shard));
            } else {
              status = shard.status();
            }
          }
          if (status.ok()) {
            completion.sharded_output = std::move(out);
            completion.is_sharded = true;
          } else {
            completion.status = std::move(status);
          }
        } else {
          StatusOr<Relation> all = source->ParseRows(0, source->NumRows());
          if (all.ok()) {
            completion.output = std::move(*all);
          } else {
            completion.status = all.status();
          }
        }
      } else if (const auto it = inputs_.find(params.name);
                 it == inputs_.end()) {
        completion.status = InvalidArgumentError(
            StrFormat("no input relation provided for '%s'", params.name.c_str()));
      } else if (!it->second.schema().NamesMatch(node->schema)) {
        completion.status = InvalidArgumentError(StrFormat(
            "input '%s' schema %s does not match declared schema %s",
            params.name.c_str(), it->second.schema().ToString().c_str(),
            node->schema.ToString().c_str()));
      } else if (shard_count > 1) {
        // Sharded ingest: partition the input into contiguous shards as it enters
        // the data plane (the per-shard range copies run in parallel).
        completion.sharded_output =
            ShardedRelation::SplitEven(it->second, shard_count);
        completion.is_sharded = true;
      } else {
        completion.output = it->second;
      }
    } catch (const std::exception& e) {
      // An escaping exception would terminate the process from a worker thread;
      // surface it as a Status like every other node failure.
      completion.status =
          InternalError(StrFormat("create task threw: %s", e.what()));
    }
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
    completions_cv_.notify_all();
  });
}

JobGraphExecutor::AcquiredInputs JobGraphExecutor::AcquireLocalInputs(
    NodeExec& exec) {
  const ir::OpNode* node = exec.node;
  const bool sharded = state_.shard_count > 1;
  AcquiredInputs acquired;
  acquired.rels.reserve(node->inputs.size());
  for (const ir::OpNode* in : node->inputs) {
    MaterializedValue& value = state_.values[static_cast<size_t>(in->id)];
    if (value.kind == MaterializedValue::Kind::kCsvSource) {
      // Streaming CSV head (DESIGN.md §12): produced only for a sole-consumer
      // fused chain at the owning party, so no transfer and no split — the
      // chain's per-shard pipelines parse their own row ranges.
      CONCLAVE_CHECK(value.location == node->exec_party ||
                     value.location == kNoParty);
      acquired.csv = value.csv;
      acquired.records += static_cast<uint64_t>(value.NumRows());
      acquired.input_rows.push_back(value.NumRows());
      ++ExecOf(*in).active_readers;
      continue;
    }
    if (value.kind == MaterializedValue::Kind::kShared &&
        state_.stream_reveal && state_.batch_rows > 0 &&
        exec.chain_members.size() >= 2 && node->inputs.size() == 1 &&
        ExecOf(*in).consumer_uses.size() == 1) {
      // Streaming reveal (DESIGN.md §14), decided on the coordinator at the
      // head's acquisition turn so the choice is pool-size-independent: the
      // shared value's sole consumer is this fused chain head, so the shares
      // stay put and the chain's per-shard pipelines reconstruct their own
      // row ranges. The reveal is charged once for the whole relation, right
      // here — exactly what the materializing path charges — so clocks and
      // counters cannot depend on the knob; only the revealed relation's
      // materialization disappears.
      const int64_t rows = value.shared.NumRows();
      const int cols = value.shared.NumColumns();
      mpc::ChargeRevealMeters(state_.net, value.shared.NumCells());
      auto source = std::make_shared<mpc::RevealSource>(std::move(value.shared));
      value.shared = SharedRelation{};
      if (state_.fault != nullptr) {
        // The injector makes the same decisions and charges as the inline
        // DeliverReveal; detection replays inside RevealSource on the batch
        // covering each corrupted row.
        uint64_t nonce = 0;
        std::vector<FaultInjector::RevealCorruption> schedule =
            state_.fault->DeliverRevealStreamed(rows, cols, &nonce);
        source->InstallFaultSchedule(nonce, std::move(schedule));
      }
      value.kind = MaterializedValue::Kind::kRevealSource;
      value.reveal = source;
      value.location = node->exec_party;
      acquired.reveal = std::move(source);
      acquired.records += static_cast<uint64_t>(rows);
      acquired.input_rows.push_back(rows);
      ++ExecOf(*in).active_readers;
      continue;
    }
    if (sharded) {
      // Shards flow straight into the shard-aware kernels. Values that arrive as
      // single relations — MPC reveals and party transfers — are re-split so the
      // local chain downstream of a frontier crossing still runs data-parallel.
      // The split is built once per value and cached on it (coordinator-built,
      // read-only afterwards); every sharded consumer shares the one copy.
      EnsureLocalInputAt(state_, value, node->exec_party);
      if (value.kind != MaterializedValue::Kind::kShardedClear &&
          value.clear.NumRows() > 0) {
        if (value.cached_split == nullptr) {
          value.cached_split = std::make_shared<const ShardedRelation>(
              ShardedRelation::SplitEven(value.clear, state_.shard_count));
        }
        acquired.cached_splits.push_back(value.cached_split);
      }
      if (value.kind == MaterializedValue::Kind::kShardedClear) {
        acquired.shard_rels.push_back(value.sharded.ShardPtrs());
      } else if (value.clear.NumRows() > 0) {
        acquired.shard_rels.push_back(acquired.cached_splits.back()->ShardPtrs());
      } else {
        acquired.shard_rels.push_back({&value.clear});
      }
    } else {
      EnsureCleartextAt(state_, value, node->exec_party);
      acquired.rels.push_back(&value.clear);
    }
    acquired.records += static_cast<uint64_t>(value.NumRows());
    acquired.input_rows.push_back(value.NumRows());
    ++ExecOf(*in).active_readers;
  }
  AdvanceAcquisition(exec);
  // Reveal/transfer time for this node's frontier inputs.
  exec.boundary_scaled_seconds = state_.net.TakeMeterSeconds() * state_.MpcScale();
  exec.local_compute_seconds = LocalComputeSeconds(state_, acquired.records);
  exec.charged_local = true;
  state_.net.mutable_counters().cleartext_records += acquired.records;
  // Priced spill charge from the node-total input cardinalities (0 when the
  // budget is unbounded or the inputs fit; fused chains price their interior
  // members in DrainCompletions from the summed per-op rows instead).
  if (state_.mem_budget_rows > 0) {
    const double in_rows =
        acquired.input_rows.empty() ? 0 : static_cast<double>(acquired.input_rows[0]);
    const double right_rows = acquired.input_rows.size() > 1
                                  ? static_cast<double>(acquired.input_rows[1])
                                  : 0;
    exec.spill_priced_seconds = compiler::NodeSpillSeconds(
        *node, in_rows, right_rows, state_.net.model(), state_.mem_budget_rows);
    if (exec.spill_priced_seconds > 0) {
      exec.spill_passes = spill::SpillMergePasses(
          node->kind == ir::OpKind::kJoin ? static_cast<int64_t>(right_rows)
                                          : static_cast<int64_t>(in_rows),
          state_.mem_budget_rows);
    }
  }
  return acquired;
}

void JobGraphExecutor::DispatchLocalCompute(NodeExec& exec) {
  const ir::OpNode* node = exec.node;
  if (!PrepareJobFaults(exec)) {
    return;
  }
  AcquiredInputs acquired = AcquireLocalInputs(exec);
  if (!CommitJobFaults(exec)) {
    // No task was submitted: release the readers acquisition registered.
    for (const ir::OpNode* in : node->inputs) {
      --ExecOf(*in).active_readers;
    }
    return;
  }

  exec.dispatched = true;
  ++in_flight_;
  const int my_topo = TopoIndexOf(node->id);
  const int shard_count = state_.shard_count;
  const int64_t mem_budget_rows = state_.mem_budget_rows;
  pool_.Submit([this, node, my_topo, shard_count, mem_budget_rows,
                rels = std::move(acquired.rels),
                shard_rels = std::move(acquired.shard_rels),
                cached_splits = std::move(acquired.cached_splits)] {
    Completion completion;
    completion.topo_index = my_topo;
    try {
      LocalExecOptions options;
      options.mem_budget_rows = mem_budget_rows;
      options.spill_stats = &completion.spill_stats;
      if (shard_count > 1) {
        StatusOr<ShardedRelation> out =
            ExecuteLocalSharded(*node, shard_rels, shard_count, options);
        if (out.ok()) {
          completion.sharded_output = std::move(*out);
          completion.is_sharded = true;
        } else {
          completion.status = out.status();
        }
      } else {
        StatusOr<Relation> out = ExecuteLocal(*node, rels, options);
        if (out.ok()) {
          completion.output = std::move(*out);
        } else {
          completion.status = out.status();
        }
      }
    } catch (const std::exception& e) {
      // See DispatchCreate: escaping exceptions must not reach WorkerLoop.
      completion.status = InternalError(
          StrFormat("local job for node #%d threw: %s", node->id, e.what()));
    }
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
    completions_cv_.notify_all();
  });
}

void JobGraphExecutor::DispatchChain(NodeExec& exec) {
  const bool sharded = state_.shard_count > 1;
  if (!PrepareJobFaults(exec)) {
    return;
  }
  AcquiredInputs acquired = AcquireLocalInputs(exec);
  if (!CommitJobFaults(exec)) {
    // Crash restarts priced so far cover the head's compute; the interior
    // members never price (the run aborts). Release the acquisition's readers.
    for (const ir::OpNode* in : exec.node->inputs) {
      --ExecOf(*in).active_readers;
    }
    return;
  }
  // All members are spoken for the moment the head dispatches: the acquisition
  // cursors have advanced, so nothing may re-dispatch any member — including on
  // the resolution-failure path below.
  exec.dispatched = true;
  for (int member_topo : exec.chain_members) {
    NodeExec& member = execs_[static_cast<size_t>(member_topo)];
    member.dispatched = true;
    // Interior members cross no frontier (boundary stays 0), but each fused
    // node still participates in its job's Spark startup charge, as unfused.
    member.charged_local = true;
  }

  // Resolve every member against the runtime schema flowing through the chain.
  // A resolution failure is attributed to the failing member's topo index —
  // the canonical error a sequential unfused walk would report.
  auto spec = std::make_shared<PipelineSpec>();
  spec->input_schema = acquired.csv != nullptr      ? acquired.csv->schema()
                       : acquired.reveal != nullptr ? acquired.reveal->schema()
                       : sharded ? acquired.shard_rels[0][0]->schema()
                                 : acquired.rels[0]->schema();
  Schema schema = spec->input_schema;
  for (int member_topo : exec.chain_members) {
    const ir::OpNode& member = *execs_[static_cast<size_t>(member_topo)].node;
    StatusOr<PipelineOp> op = ResolvePipelineOp(schema, member);
    if (!op.ok()) {
      // No task was submitted: release the head's input readers here.
      for (const ir::OpNode* in : exec.node->inputs) {
        --ExecOf(*in).active_readers;
      }
      RecordFailure(member_topo, op.status());
      return;
    }
    schema = BatchPipeline::DeriveSchema(schema, *op);
    spec->ops.push_back(std::move(*op));
  }

  ++in_flight_;
  const int my_topo = TopoIndexOf(exec.node->id);
  const int64_t batch_rows = state_.batch_rows;

  if (!sharded) {
    pool_.Submit([this, my_topo, batch_rows, spec, csv = acquired.csv,
                  reveal = acquired.reveal, rels = std::move(acquired.rels),
                  cached_splits = std::move(acquired.cached_splits)] {
      Completion completion;
      completion.topo_index = my_topo;
      try {
        BatchPipeline pipeline(*spec);
        if (csv != nullptr) {
          // Streaming source (DESIGN.md §12): parse-and-push batch-at-a-time;
          // the source relation never materializes.
          StatusOr<Relation> out =
              pipeline.RunFromCsv(*csv, 0, csv->NumRows(), batch_rows);
          if (out.ok()) {
            completion.output = std::move(*out);
            completion.chain_op_rows = pipeline.stats().op_input_rows;
          } else {
            completion.status = out.status();
          }
        } else if (reveal != nullptr) {
          // Streaming reveal (DESIGN.md §14): reconstruct-and-push
          // batch-at-a-time; the revealed relation never materializes.
          completion.output =
              pipeline.RunFromReveal(*reveal, 0, reveal->NumRows(), batch_rows);
          completion.chain_op_rows = pipeline.stats().op_input_rows;
        } else {
          completion.output = pipeline.Run(*rels[0], batch_rows);
          completion.chain_op_rows = pipeline.stats().op_input_rows;
        }
      } catch (const std::exception& e) {
        // See DispatchCreate: escaping exceptions must not reach WorkerLoop.
        completion.status =
            InternalError(StrFormat("fused chain task threw: %s", e.what()));
      }
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(completion));
      completions_cv_.notify_all();
    });
    return;
  }

  // Sharded: one pipeline task per shard (sharded chains hold only per-row ops,
  // which commute with sharding), all writing shard-indexed slots of a shared
  // state. Whichever task finishes last assembles the output, sums the per-op
  // row counts, and posts the single completion — everything folds in shard
  // order, so the result is independent of task finishing order.
  struct ChainShardState {
    Schema output_schema;
    std::vector<Relation> outputs;
    std::vector<std::vector<int64_t>> op_rows;
    std::vector<Status> statuses;
    std::atomic<int> remaining{0};
  };
  const bool streamed = acquired.csv != nullptr || acquired.reveal != nullptr;
  const std::vector<const Relation*> shards =
      streamed ? std::vector<const Relation*>{}
               : std::move(acquired.shard_rels[0]);
  // A 0-row streamed reveal mirrors the materializing path's single-shard
  // layout for empty revealed values ({&value.clear}); CSV sources always cut
  // shard_count ranges, like the sharded eager parse.
  const int num_shards =
      acquired.csv != nullptr ? state_.shard_count
      : acquired.reveal != nullptr
          ? (acquired.reveal->NumRows() == 0 ? 1 : state_.shard_count)
          : static_cast<int>(shards.size());
  // A fused tail limit keeps each shard's local `count`-prefix — a superset of
  // that shard's slice of the global prefix (shards concatenate in canonical
  // order). The last finisher trims the assembled shards to the global prefix,
  // reproducing ops::ShardedLimit's layout exactly.
  int64_t tail_limit = -1;
  {
    const ir::OpNode& tail =
        *execs_[static_cast<size_t>(exec.chain_members.back())].node;
    if (tail.kind == ir::OpKind::kLimit) {
      tail_limit = std::max<int64_t>(0, tail.Params<ir::LimitParams>().count);
    }
  }
  auto shared = std::make_shared<ChainShardState>();
  shared->output_schema = schema;
  shared->outputs.resize(static_cast<size_t>(num_shards));
  shared->op_rows.resize(static_cast<size_t>(num_shards));
  shared->statuses.assign(static_cast<size_t>(num_shards), Status::Ok());
  shared->remaining.store(num_shards, std::memory_order_relaxed);
  for (int s = 0; s < num_shards; ++s) {
    const Relation* shard = streamed ? nullptr : shards[static_cast<size_t>(s)];
    pool_.Submit([this, my_topo, batch_rows, spec, shared, shard, s, num_shards,
                  tail_limit, csv = acquired.csv, reveal = acquired.reveal,
                  cached_splits = acquired.cached_splits] {
      try {
        BatchPipeline pipeline(*spec);
        if (csv != nullptr) {
          // Streaming source, shard slice [rows*s/n, rows*(s+1)/n) — the same
          // contiguous boundaries SplitEven materializes.
          const int64_t rows = csv->NumRows();
          StatusOr<Relation> out = pipeline.RunFromCsv(
              *csv, rows * s / num_shards, rows * (s + 1) / num_shards,
              batch_rows);
          if (out.ok()) {
            shared->outputs[static_cast<size_t>(s)] = std::move(*out);
            shared->op_rows[static_cast<size_t>(s)] =
                pipeline.stats().op_input_rows;
          } else {
            shared->statuses[static_cast<size_t>(s)] = out.status();
          }
        } else if (reveal != nullptr) {
          // Streaming reveal, same contiguous shard boundaries; ranges are
          // independent share sums, so shard tasks reconstruct concurrently.
          const int64_t rows = reveal->NumRows();
          shared->outputs[static_cast<size_t>(s)] = pipeline.RunFromReveal(
              *reveal, rows * s / num_shards, rows * (s + 1) / num_shards,
              batch_rows);
          shared->op_rows[static_cast<size_t>(s)] =
              pipeline.stats().op_input_rows;
        } else {
          shared->outputs[static_cast<size_t>(s)] =
              pipeline.Run(*shard, batch_rows);
          shared->op_rows[static_cast<size_t>(s)] =
              pipeline.stats().op_input_rows;
        }
      } catch (const std::exception& e) {
        shared->statuses[static_cast<size_t>(s)] = InternalError(
            StrFormat("fused chain shard task threw: %s", e.what()));
      }
      if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
        return;  // Not the last shard; the last finisher posts the completion.
      }
      Completion completion;
      completion.topo_index = my_topo;
      for (Status& status : shared->statuses) {
        if (!status.ok()) {
          completion.status = std::move(status);
          break;
        }
      }
      if (completion.status.ok()) {
        if (tail_limit >= 0) {
          int64_t remaining_rows = tail_limit;
          for (Relation& relation : shared->outputs) {
            const int64_t take = std::min(remaining_rows, relation.NumRows());
            relation.Resize(take);
            remaining_rows -= take;
          }
        }
        ShardedRelation out{shared->output_schema};
        for (Relation& relation : shared->outputs) {
          out.AddShard(std::move(relation));
        }
        completion.sharded_output = std::move(out);
        completion.is_sharded = true;
        completion.chain_op_rows.assign(spec->ops.size(), 0);
        for (const std::vector<int64_t>& rows : shared->op_rows) {
          for (size_t k = 0; k < rows.size(); ++k) {
            completion.chain_op_rows[k] += rows[k];
          }
        }
      }
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(completion));
      completions_cv_.notify_all();
    });
  }
}

Status JobGraphExecutor::RunCollect(NodeExec& exec, ExecutionResult& result) {
  const ir::OpNode* node = exec.node;
  const auto& params = node->Params<ir::CollectParams>();
  exec.dispatched = true;
  if (state_.fault != nullptr) {
    // Collect runs on the coordinator with no compute to restart; its reveal and
    // fan-out sends are the faultable operations.
    state_.fault->EnterScope(node->id);
  }

  MaterializedValue& input = state_.values[static_cast<size_t>(node->inputs[0]->id)];
  EnsureCleartextAt(state_, input, params.recipients.First());
  AdvanceAcquisition(exec);
  // Fan out to the remaining recipients.
  for (PartyId p : params.recipients.ToVector()) {
    if (p != input.location) {
      state_.net.Send(input.location, p, input.clear.ByteSize());
    }
  }
  Relation output = input.clear;
  if (compilation_.options.pad_mpc_inputs) {
    // Recipients drop the sentinel rows that adaptive padding introduced.
    output = ops::StripSentinelRows(output);
  }
  if (params.dp.enabled) {
    // Recipients perturb locally; each noisy output consumes its epsilon
    // (sequential composition).
    Rng noise_rng(state_.seed ^
                  (0xd1b54a32d192ed03ULL + static_cast<uint64_t>(node->id)));
    CONCLAVE_RETURN_IF_ERROR(dp::PerturbRelation(output, params.dp, noise_rng));
    exec.dp_epsilon = params.dp.epsilon;
  }
  result.outputs[params.name] = std::move(output);
  exec.boundary_scaled_seconds = state_.net.TakeMeterSeconds() * state_.MpcScale();
  MarkMaterialized(exec);
  if (state_.fault != nullptr && state_.fault->has_pending_failure()) {
    // An unrecoverable drop/corruption during the reveal or fan-out; the abort
    // discards this Collect's (already stored) output.
    RecordFaultFailure(TopoIndexOf(node->id));
  }
  return Status::Ok();
}

Status JobGraphExecutor::RunLaneNode(NodeExec& exec) {
  const ir::OpNode* node = exec.node;
  exec.dispatched = true;
  ++lane_next_;

  FaultInjector* fault = state_.fault;
  int crashes = 0;
  if (fault != nullptr) {
    fault->EnterScope(node->id);
    crashes = fault->JobCrashes(node->id);
    if (fault->has_pending_failure()) {
      // Crash budget exhausted: structured abort, nothing materializes.
      RecordFaultFailure(TopoIndexOf(node->id));
      return Status::Ok();
    }
  }

  for (int attempt = 0;; ++attempt) {
    // Injected crashes are decided up front, so whether this attempt needs a
    // frontier checkpoint is known before it runs.
    const bool crash_after = attempt < crashes;
    LaneCheckpoint checkpoint;
    if (crash_after) {
      checkpoint = TakeLaneCheckpoint(exec);
    }
    if (fault != nullptr && attempt > 0) {
      fault->BeginAttempt(attempt);
    }
    CONCLAVE_RETURN_IF_ERROR(ExecuteLaneOnce(exec));
    if (fault != nullptr && fault->has_pending_failure()) {
      // Unrecoverable send loss inside this attempt: structured abort. Drain
      // the attempt's meter so no charge leaks into a later step.
      state_.net.TakeMeterSeconds();
      RecordFaultFailure(TopoIndexOf(node->id));
      return Status::Ok();
    }
    if (!crash_after) {
      break;
    }
    // Injected crash: divert the wasted attempt's metered work (x MpcScale,
    // like any lane charge) to the recovery accumulators, roll back to the
    // frontier checkpoint, and replay. The replayed attempt re-claims the same
    // randomness streams, so its bits are identical to the crashed one's.
    const double wasted =
        (state_.net.TakeMeterSeconds() - checkpoint.net.meter_seconds) *
        state_.MpcScale();
    fault->ChargeJobRestart(node->id, wasted);
    RestoreLaneCheckpoint(checkpoint);
  }
  exec.boundary_scaled_seconds = state_.net.TakeMeterSeconds() * state_.MpcScale();
  MarkMaterialized(exec);
  return Status::Ok();
}

Status JobGraphExecutor::ExecuteLaneOnce(NodeExec& exec) {
  const ir::OpNode* node = exec.node;
  if (node->retired && !state_.use_gc_backend &&
      !(node->kind == ir::OpKind::kConcat &&
        !node->Params<ir::ConcatParams>().merge_columns.empty())) {
    return ExecutePhantomRetired(exec);
  }
  if (state_.use_gc_backend) {
    std::vector<const Relation*> rels;
    rels.reserve(node->inputs.size());
    for (const ir::OpNode* in : node->inputs) {
      MaterializedValue& value = state_.values[static_cast<size_t>(in->id)];
      CONCLAVE_RETURN_IF_ERROR(EnsureSecure(state_, value));
      rels.push_back(&value.clear);
    }
    AdvanceAcquisition(exec);
    CONCLAVE_ASSIGN_OR_RETURN(Relation out, state_.oblivc.Execute(*node, rels));
    MaterializedValue value;
    value.kind = MaterializedValue::Kind::kGarbled;
    value.clear = std::move(out);
    state_.values[static_cast<size_t>(node->id)] = std::move(value);
  } else {
    std::vector<const SharedRelation*> rels;
    rels.reserve(node->inputs.size());
    for (const ir::OpNode* in : node->inputs) {
      MaterializedValue& value = state_.values[static_cast<size_t>(in->id)];
      CONCLAVE_RETURN_IF_ERROR(EnsureSecure(state_, value));
      rels.push_back(&value.shared);
    }
    AdvanceAcquisition(exec);
    CONCLAVE_ASSIGN_OR_RETURN(SharedRelation out,
                              state_.sharemind.Execute(*node, rels));
    MaterializedValue value;
    value.kind = MaterializedValue::Kind::kShared;
    value.shared = std::move(out);
    state_.values[static_cast<size_t>(node->id)] = std::move(value);
  }
  return Status::Ok();
}

// A retired node (no remaining consumers after a push-down rewrite) used to run
// for real: its cleartext inputs were shared into the MPC — consistency phase,
// ingest meters, AND the Sharemind working-set check, which could OOM a query
// on a node whose output nobody reads. The phantom keeps every virtual-clock
// charge and nonce consumption of that execution (the compatibility contract:
// goldens stay bit-identical) but moves no payload: inputs stay cleartext with
// phantom_shared set, so a later cleartext consumer charges the reveal boundary
// as if the shares existed and a later real MPC consumer shares without
// re-charging — and the working-set check that only guarded dead work is gone.
Status JobGraphExecutor::ExecutePhantomRetired(NodeExec& exec) {
  const ir::OpNode* node = exec.node;
  CONCLAVE_CHECK(node->outputs.empty());
  for (const ir::OpNode* in : node->inputs) {
    MaterializedValue& value = state_.values[static_cast<size_t>(in->id)];
    CoalesceShards(value);
    if (value.kind != MaterializedValue::Kind::kCleartext ||
        value.phantom_shared) {
      continue;  // Already shared (really or phantom): no charges, as before.
    }
    if (state_.malicious) {
      // The real consistency phase: identical charges by construction, and it
      // consumes the same nonce the pre-prune execution consumed.
      const PartyId owner = value.location == kNoParty ? 0 : value.location;
      CONCLAVE_RETURN_IF_ERROR(malicious::InputConsistencyPhase(
          state_.net, value.clear, owner, state_.num_parties,
          state_.seed ^ (0x9e3779b97f4a7c15ULL + state_.next_nonce++)));
    }
    // Ingest meters exactly as mpc::InputRelation charges them — minus the
    // sharing itself and the working-set check.
    const SsCharge charge =
        state_.net.model().SsChargeFor(SsPrimitive::kRecordIngest);
    const uint64_t rows = static_cast<uint64_t>(value.clear.NumRows());
    const uint64_t cells = rows * static_cast<uint64_t>(value.clear.NumColumns());
    state_.net.CpuSeconds(static_cast<double>(rows) * charge.seconds);
    state_.net.CountAggregateBytes(cells * charge.bytes);
    state_.net.Rounds(charge.rounds);
    value.phantom_shared = true;
  }
  AdvanceAcquisition(exec);
  // An empty value: the node has no consumers, nothing must materialize.
  state_.values[static_cast<size_t>(node->id)] = MaterializedValue{};
  return Status::Ok();
}

void JobGraphExecutor::DrainCompletions(bool wait) {
  std::vector<Completion> drained;
  {
    std::unique_lock<std::mutex> lock(completions_mu_);
    if (wait) {
      completions_cv_.wait(lock, [this] { return !completions_.empty(); });
    }
    drained.swap(completions_);
  }
  for (Completion& completion : drained) {
    --in_flight_;
    NodeExec& exec = execs_[static_cast<size_t>(completion.topo_index)];
    for (const ir::OpNode* in : exec.node->inputs) {
      --ExecOf(*in).active_readers;
    }
    if (!completion.status.ok()) {
      RecordFailure(completion.topo_index, std::move(completion.status));
      continue;
    }
    exec.spill_stats = completion.spill_stats;
    MaterializedValue value;
    if (completion.csv_output != nullptr) {
      value.kind = MaterializedValue::Kind::kCsvSource;
      value.csv = std::move(completion.csv_output);
    } else if (completion.is_sharded) {
      value.kind = MaterializedValue::Kind::kShardedClear;
      value.sharded = std::move(completion.sharded_output);
    } else {
      value.kind = MaterializedValue::Kind::kCleartext;
      value.clear = std::move(completion.output);
    }
    if (exec.chain_members.size() >= 2) {
      // Fused chain: price interior members from the per-op input rows the
      // pipeline metered (equal to the unfused intermediate cardinalities at
      // every batch size — streaming limits consume their whole input), store
      // the tail's output, and materialize every member in chain order.
      // chain_op_rows[0] is the head's input, already charged at acquisition.
      for (size_t k = 1; k < exec.chain_members.size(); ++k) {
        NodeExec& member = execs_[static_cast<size_t>(exec.chain_members[k])];
        const uint64_t records =
            static_cast<uint64_t>(completion.chain_op_rows[k]);
        member.local_compute_seconds = LocalComputeSeconds(state_, records);
        state_.net.mutable_counters().cleartext_records += records;
        // Fused blocking members (a distinct-on-sorted tail) carry the same
        // priced spill charge the unfused executor would: the charge is a
        // function of the member's total input rows, which the pipeline
        // metered batch-invariantly — the clock stays grid-invariant whether
        // the member fuses or materializes.
        if (state_.mem_budget_rows > 0) {
          member.spill_priced_seconds = compiler::NodeSpillSeconds(
              *member.node, static_cast<double>(completion.chain_op_rows[k]),
              /*right_rows=*/0, state_.net.model(), state_.mem_budget_rows);
          if (member.spill_priced_seconds > 0) {
            member.spill_passes = spill::SpillMergePasses(
                completion.chain_op_rows[k], state_.mem_budget_rows);
          }
        }
        if (state_.fault != nullptr && exec.fault_crashes > 0) {
          // Each restart of the head's job re-ran the whole fused chain; the
          // interior members' compute joins the head's (already counted)
          // restarts. The charge is a pure function of the chain's row totals,
          // so it is identical at every pool/shard/batch configuration.
          state_.fault->AddRecoverySeconds(
              exec.node->id, static_cast<double>(exec.fault_crashes) *
                                 member.local_compute_seconds);
        }
      }
      const NodeExec& tail =
          execs_[static_cast<size_t>(exec.chain_members.back())];
      value.location = tail.node->exec_party;
      state_.values[static_cast<size_t>(tail.node->id)] = std::move(value);
      MarkMaterialized(exec);
      for (size_t k = 1; k < exec.chain_members.size(); ++k) {
        NodeExec& member = execs_[static_cast<size_t>(exec.chain_members[k])];
        // Each member's sole use of its predecessor's (never-stored) value.
        AdvanceAcquisition(member);
        MarkMaterialized(member);
      }
      continue;
    }
    value.location = exec.klass == NodeClass::kCreate
                         ? exec.node->Params<ir::CreateParams>().party
                         : exec.node->exec_party;
    state_.values[static_cast<size_t>(exec.node->id)] = std::move(value);
    MarkMaterialized(exec);
  }
}

StatusOr<ExecutionResult> JobGraphExecutor::Run() {
  // --- Plan-time indexing: topo positions, in-degrees, consumer orders, lane. ------
  int max_id = -1;
  for (size_t i = 0; i < topo_.size(); ++i) {
    topo_index_[topo_[i]->id] = static_cast<int>(i);
    max_id = std::max(max_id, topo_[i]->id);
  }
  state_.values.resize(static_cast<size_t>(max_id) + 1);
  execs_.resize(topo_.size());
  for (size_t i = 0; i < topo_.size(); ++i) {
    NodeExec& exec = execs_[i];
    exec.node = topo_[i];
    exec.klass = ClassOf(*topo_[i]);
    exec.remaining_inputs = static_cast<int>(topo_[i]->inputs.size());
    if (exec.klass == NodeClass::kLane) {
      lane_.push_back(static_cast<int>(i));
    }
  }
  for (size_t i = 0; i < topo_.size(); ++i) {
    for (const ir::OpNode* in : topo_[i]->inputs) {
      execs_[static_cast<size_t>(TopoIndexOf(in->id))].consumer_uses.push_back(
          static_cast<int>(i));
    }
  }
  for (NodeExec& exec : execs_) {
    std::sort(exec.consumer_uses.begin(), exec.consumer_uses.end());
  }

  // Pipeline fusion (DESIGN.md §10): stamp each fusible local chain on its
  // head. The chain set comes from the same predicate the planner's explain
  // advice uses (compiler::PipelineChains), so listing and runtime agree.
  if (state_.batch_rows > 0) {
    for (const std::vector<const ir::OpNode*>& chain : compiler::PipelineChains(
             std::span<const ir::OpNode* const>(topo_.data(), topo_.size()),
             state_.shard_count)) {
      const int head_topo = TopoIndexOf(chain.front()->id);
      NodeExec& head = execs_[static_cast<size_t>(head_topo)];
      for (const ir::OpNode* member : chain) {
        const int member_topo = TopoIndexOf(member->id);
        head.chain_members.push_back(member_topo);
        execs_[static_cast<size_t>(member_topo)].chain_head = head_topo;
      }
    }
  }

  ExecutionResult result;

  // --- Event loop: dispatch everything ready, then wait for pool completions. ------
  //
  // On failure, dispatch continues — but only for nodes topo-earlier than the
  // earliest failure seen so far (their dependency chains lie entirely below it, so
  // they can always run to completion). A sequential walk would have executed
  // exactly those nodes before hitting the failure; finishing them lets any
  // earlier failure they hold surface, so the reported error is exactly the one
  // the sequential walk reports, at every pool size.
  for (;;) {
    bool dispatched_any = false;
    for (size_t i = 0; i < execs_.size(); ++i) {
      const int gate = FailureGate();
      if (gate >= 0 && static_cast<int>(i) >= gate) {
        break;  // execs_ is topo-ordered; nothing past the failure may dispatch.
      }
      NodeExec& exec = execs_[i];
      if (exec.dispatched || exec.remaining_inputs > 0) {
        continue;
      }
      switch (exec.klass) {
        case NodeClass::kCreate:
          DispatchCreate(exec);
          dispatched_any = true;
          break;
        case NodeClass::kLocalCompute:
          if (CanAcquireInputs(exec)) {
            if (exec.chain_members.size() >= 2) {
              DispatchChain(exec);
            } else {
              DispatchLocalCompute(exec);
            }
            dispatched_any = true;
          }
          break;
        case NodeClass::kCollect:
          if (CanAcquireInputs(exec)) {
            const Status status = RunCollect(exec, result);
            if (!status.ok()) {
              RecordFailure(static_cast<int>(i), status);
            }
            dispatched_any = true;
          }
          break;
        case NodeClass::kLane:
          if (lane_[lane_next_] == static_cast<int>(i) && CanAcquireInputs(exec)) {
            const Status status = RunLaneNode(exec);
            if (!status.ok()) {
              RecordFailure(static_cast<int>(i), status);
            }
            dispatched_any = true;
          }
          break;
      }
    }
    if (dispatched_any) {
      DrainCompletions(/*wait=*/false);
      continue;
    }
    if (in_flight_ > 0) {
      DrainCompletions(/*wait=*/true);
      continue;
    }
    break;  // Quiescent: everything runnable (below any failure) has finished.
  }

  // Graceful degradation: an exhausted fault-recovery budget ends in a
  // structured abort (ok() + aborted + FaultReport), not a bare error. At the
  // same topo index the fault abort wins — the injected fault is what made the
  // step fail; a regular failure at a strictly earlier index is the canonical
  // outcome a fault-free run reports, so it takes precedence.
  const bool fault_abort =
      fault_failed_topo_ >= 0 &&
      (first_failed_topo_ < 0 || fault_failed_topo_ <= first_failed_topo_);
  if (fault_abort) {
    state_.fault->RecordFirstFailure(fault_failure_node_, fault_failure_text_);
    ExecutionResult aborted;
    aborted.aborted = true;
    aborted.abort_status = ResourceExhaustedError(
        StrFormat("fault recovery budget exhausted at node #%d: %s",
                  fault_failure_node_, fault_failure_text_.c_str()));
    aborted.fault_report = state_.fault->Report(TopoNodeIds());
    return aborted;
  }
  if (first_failed_topo_ >= 0) {
    return failure_;
  }
  // No failure: quiescence with unmaterialized nodes would be a plan bug.
  CONCLAVE_CHECK_EQ(materialized_count_, topo_.size());
  return FinalizeAccounting(std::move(result));
}

StatusOr<ExecutionResult> JobGraphExecutor::FinalizeAccounting(
    ExecutionResult result) {
  // All floating-point totals are folded here, in topo/job order, from the per-node
  // attributions recorded during execution — never in completion order, which is
  // scheduling-dependent. This is what keeps every reported number bit-identical
  // across pool sizes.
  std::unordered_map<int, double> job_duration;
  std::unordered_set<int> jobs_started;  // Spark startup charged once per job.
  for (const NodeExec& exec : execs_) {
    const int job = state_.node_job.at(exec.node->id);
    result.node_seconds[exec.node->id] =
        exec.boundary_scaled_seconds + exec.local_compute_seconds;
    double seconds = exec.boundary_scaled_seconds + exec.local_compute_seconds;
    if (exec.charged_local && state_.use_spark &&
        jobs_started.insert(job).second) {
      seconds += state_.net.model().spark_job_startup_seconds;
    }
    job_duration[job] += seconds;
    switch (exec.klass) {
      case NodeClass::kLane:
        if (exec.node->exec_mode == ir::ExecMode::kHybrid) {
          result.hybrid_seconds += exec.boundary_scaled_seconds;
        } else {
          result.mpc_seconds += exec.boundary_scaled_seconds;
        }
        break;
      default:
        // Reveal/transfer time on the frontier accrues to mpc_seconds, as the
        // engines performed that work.
        result.mpc_seconds += exec.boundary_scaled_seconds;
        break;
    }
    result.dp_epsilon_spent += exec.dp_epsilon;
  }

  // Critical-path schedule over the job graph: a job starts when all jobs feeding it
  // finish; independent per-party local jobs overlap. Job ids are NOT guaranteed to
  // be a topological order of the job graph (a job keyed by an early node can
  // contain late nodes whose inputs come from jobs created in between — e.g. a join
  // against a table declared mid-chain), so the fold runs as a worklist over the
  // job dependency edges. The finish times are order-independent given their deps,
  // so this computes exactly what the id-order pass computed on plans where id
  // order happened to be topological.
  std::unordered_map<int, double> finish;
  std::unordered_map<int, std::vector<int>> job_dependents;
  std::unordered_map<int, int> unmet_deps;
  for (const compiler::Job& job : compilation_.plan.jobs) {
    std::unordered_set<int> deps;
    for (const ir::OpNode* node : job.nodes) {
      for (const ir::OpNode* in : node->inputs) {
        const int dep_job = state_.node_job.at(in->id);
        if (dep_job != job.id) {
          deps.insert(dep_job);
        }
      }
    }
    unmet_deps[job.id] = static_cast<int>(deps.size());
    for (int dep : deps) {
      job_dependents[dep].push_back(job.id);
    }
  }
  std::vector<int> ready;
  for (const compiler::Job& job : compilation_.plan.jobs) {
    if (unmet_deps[job.id] == 0) {
      ready.push_back(job.id);
    }
  }
  std::unordered_map<int, const compiler::Job*> job_by_id;
  for (const compiler::Job& job : compilation_.plan.jobs) {
    job_by_id[job.id] = &job;
  }
  while (!ready.empty()) {
    const int id = ready.back();
    ready.pop_back();
    const compiler::Job& job = *job_by_id.at(id);
    double start = 0;
    for (const ir::OpNode* node : job.nodes) {
      for (const ir::OpNode* in : node->inputs) {
        const int dep_job = state_.node_job.at(in->id);
        if (dep_job != id) {
          start = std::max(start, finish.at(dep_job));
        }
      }
    }
    finish[id] = start + job_duration[id];
    for (int dependent : job_dependents[id]) {
      if (--unmet_deps[dependent] == 0) {
        ready.push_back(dependent);
      }
    }
  }
  // A cyclic job graph would leave jobs unscheduled; the partitioner never builds
  // one for DAG-shaped queries.
  CONCLAVE_CHECK_EQ(finish.size(), compilation_.plan.jobs.size());
  for (const compiler::Job& job : compilation_.plan.jobs) {
    if (job.kind == compiler::JobKind::kLocal) {
      result.local_seconds += job_duration[job.id];
    }
  }
  for (const compiler::Job& job : compilation_.plan.jobs) {
    result.virtual_seconds = std::max(result.virtual_seconds, finish[job.id]);
  }
  result.counters = state_.net.counters();
  if (state_.fault != nullptr) {
    // Recovery rides the critical path: everything up to here is bit-identical
    // to the fault-free run (fault charges never touch the meter or counters),
    // so the faulted total is exactly the fault-free total plus the priced
    // recovery time — the chaos fuzzer's headline identity.
    result.fault_report = state_.fault->Report(TopoNodeIds());
    result.virtual_seconds += result.fault_report.recovery_seconds;
  }
  // Beyond-RAM accounting (DESIGN.md §12), folded in topo order like every
  // other total. The priced charge joins the clock once, here — never through
  // node_seconds or the meter — so with a budget the total is exactly the
  // unbounded run's clock plus spill_seconds; with none, the report stays zero
  // and the clock is untouched. Physical SpillStats merge alongside for
  // observability (their layout varies with shard/batch structure).
  result.spill_report.mem_budget_rows = state_.mem_budget_rows;
  for (const NodeExec& exec : execs_) {
    if (exec.spill_priced_seconds > 0) {
      ++result.spill_report.spilling_nodes;
      result.spill_report.spill_passes += exec.spill_passes;
      result.spill_report.spill_seconds += exec.spill_priced_seconds;
    }
    result.spill_report.stats.Merge(exec.spill_stats);
  }
  result.virtual_seconds += result.spill_report.spill_seconds;
  for (const MaterializedValue& value : state_.values) {
    if (value.kind == MaterializedValue::Kind::kCsvSource &&
        value.csv != nullptr) {
      result.csv_peak_parse_rows =
          std::max(result.csv_peak_parse_rows, value.csv->MaxMaterializedRows());
    }
    if (value.kind == MaterializedValue::Kind::kRevealSource &&
        value.reveal != nullptr) {
      result.reveal_peak_rows = std::max(result.reveal_peak_rows,
                                         value.reveal->MaxMaterializedRows());
    }
  }
  return result;
}

}  // namespace

int Dispatcher::DefaultShardCount() {
  return static_cast<int>(env::Int64Knob("CONCLAVE_SHARDS", 1, 1, 1 << 20,
                                         {{"auto", kAutoShardCount}}));
}

bool Dispatcher::DefaultStreamReveal() {
  return env::BoolKnob("CONCLAVE_STREAM_REVEAL", true);
}

StatusOr<ExecutionResult> Dispatcher::Run(
    const ir::Dag& dag, const compiler::Compilation& compilation,
    const std::map<std::string, Relation>& inputs) {
  const bool use_gc =
      compilation.options.mpc_backend == compiler::MpcBackendKind::kOblivC;
  RunState state(model_, seed_, compilation.num_parties, use_gc,
                 compilation.options.use_spark,
                 compilation.options.malicious_security);
  int shards = shard_count_ == 0 ? DefaultShardCount() : shard_count_;
  if (shards == kAutoShardCount) {
    int64_t total_rows = 0;
    for (const auto& [name, relation] : inputs) {
      total_rows += relation.NumRows();
    }
    shards = compiler::ChooseShardCount(compilation.plan, model_,
                                        pool().parallelism(), total_rows);
  }
  state.shard_count = std::max(1, shards);
  // Batch knob: 0 resolves the CONCLAVE_BATCH_ROWS env override; negative
  // (kMaterializeBatchRows) disables fusion entirely (chain stamping is gated
  // on batch_rows > 0).
  state.batch_rows = batch_rows_ == 0 ? DefaultBatchRows() : batch_rows_;
  // Memory-budget knob: 0 resolves the CONCLAVE_MEM_BUDGET env override;
  // negative forces unbounded regardless of the environment.
  state.mem_budget_rows = mem_budget_rows_ == 0
                              ? DefaultMemBudgetRows()
                              : std::max<int64_t>(0, mem_budget_rows_);
  // Stream-reveal knob: 0 resolves the CONCLAVE_STREAM_REVEAL env override
  // (on when unset), > 0 forces streaming, < 0 forces the materializing
  // reveal (the differential harness's baseline arm).
  state.stream_reveal =
      stream_reveal_ == 0 ? DefaultStreamReveal() : stream_reveal_ > 0;

  for (const compiler::Job& job : compilation.plan.jobs) {
    for (const ir::OpNode* node : job.nodes) {
      state.node_job[node->id] = job.id;
    }
  }

  // Fault-injection knob (DESIGN.md §11): an explicit plan wins (a disabled one
  // forces injection off); otherwise the CONCLAVE_FAULT_PLAN env override
  // resolves, failing loud on a malformed value.
  FaultPlan fault_plan;
  if (fault_plan_.has_value()) {
    fault_plan = *fault_plan_;
  } else {
    CONCLAVE_ASSIGN_OR_RETURN(fault_plan, FaultPlan::FromEnv());
  }
  std::optional<FaultInjector> injector;
  if (fault_plan.enabled) {
    injector.emplace(std::move(fault_plan), model_);
    state.fault = &*injector;
    state.net.set_fault_injector(&*injector);
  }

  std::vector<ir::OpNode*> order = dag.TopoOrder();
  // Bind the run's pool to this thread: this is what hands the dispatcher's pool to
  // the MPC lane. Lane nodes execute on the coordinator, and every engine kernel's
  // morsel-level ParallelFor routes through ThreadPool::Current(), so intra-op MPC
  // parallelism shares the same thread budget as the job tasks (workers bind
  // themselves in WorkerLoop) and pool_parallelism=1 stays serial all the way down.
  ThreadPool::Scope scope(&pool());
  JobGraphExecutor executor(
      state, compilation, inputs, pool(),
      std::vector<const ir::OpNode*>(order.begin(), order.end()));
  return executor.Run();
}

}  // namespace backends
}  // namespace conclave
