#include "conclave/backends/dispatcher.h"

#include <algorithm>
#include <unordered_set>

#include "conclave/backends/local_backend.h"
#include "conclave/backends/spark_backend.h"
#include "conclave/common/logging.h"
#include "conclave/common/strings.h"
#include "conclave/mpc/malicious/commitment.h"

namespace conclave {
namespace backends {
namespace {

// Per-run execution state, job-time bookkeeping included.
struct RunState {
  SimNetwork net;
  SharemindBackend sharemind;
  OblivcBackend oblivc;
  bool use_gc_backend;
  bool use_spark;
  bool malicious;
  int num_parties;
  uint64_t seed;
  uint64_t next_nonce = 0;

  std::unordered_map<int, MaterializedValue> values;     // node id -> value
  std::unordered_map<int, int> node_job;                 // node id -> job id
  std::unordered_map<int, double> job_duration;          // job id -> seconds
  std::unordered_set<int> jobs_started;                  // spark startup charged

  RunState(const CostModel& model, uint64_t run_seed, int parties, bool gc,
           bool spark, bool malicious_mode)
      : net(model),
        sharemind(&net, run_seed, parties),
        oblivc(&net, /*oblivm_mode=*/false),
        use_gc_backend(gc),
        use_spark(spark),
        malicious(malicious_mode),
        num_parties(parties),
        seed(run_seed) {}

  double ClockDelta(double before) const { return net.ElapsedSeconds() - before; }
  // Active-adversary protocols cost a constant factor more (§2.2); applied to the
  // MPC/hybrid portions of the virtual time.
  double MpcScale() const {
    return malicious ? net.model().malicious_overhead_factor : 1.0;
  }
};

// Moves a value into the secure domain (inputToMPC), charging ingest on the engine.
// Under malicious security, every cleartext relation entering the MPC first runs the
// Appendix-A.5 commit + ZK-consistency phase; a rejected proof aborts the query.
Status EnsureSecure(RunState& state, MaterializedValue& value) {
  if (state.malicious && value.kind == MaterializedValue::Kind::kCleartext) {
    const PartyId owner = value.location == kNoParty ? 0 : value.location;
    CONCLAVE_RETURN_IF_ERROR(malicious::InputConsistencyPhase(
        state.net, value.clear, owner, state.num_parties,
        state.seed ^ (0x9e3779b97f4a7c15ULL + state.next_nonce++)));
  }
  if (state.use_gc_backend) {
    if (value.kind == MaterializedValue::Kind::kGarbled) {
      return Status::Ok();
    }
    CONCLAVE_CHECK(value.kind == MaterializedValue::Kind::kCleartext);
    CONCLAVE_RETURN_IF_ERROR(state.oblivc.Input(value.clear));
    value.kind = MaterializedValue::Kind::kGarbled;
    return Status::Ok();
  }
  if (value.kind == MaterializedValue::Kind::kShared) {
    return Status::Ok();
  }
  CONCLAVE_CHECK(value.kind == MaterializedValue::Kind::kCleartext);
  CONCLAVE_ASSIGN_OR_RETURN(value.shared, state.sharemind.Input(value.clear));
  value.clear = Relation{};
  value.kind = MaterializedValue::Kind::kShared;
  return Status::Ok();
}

// Moves a value into the clear at `party` (reveal / party-to-party transfer).
void EnsureCleartextAt(RunState& state, MaterializedValue& value, PartyId party) {
  switch (value.kind) {
    case MaterializedValue::Kind::kShared:
      value.clear = state.sharemind.Reveal(value.shared);
      value.shared = SharedRelation{};
      value.kind = MaterializedValue::Kind::kCleartext;
      value.location = party;
      break;
    case MaterializedValue::Kind::kGarbled:
      // Output labels decode at both parties; transfer of decoded rows is cheap.
      state.net.CountAggregateBytes(value.clear.ByteSize());
      state.net.Rounds(1);
      value.kind = MaterializedValue::Kind::kCleartext;
      value.location = party;
      break;
    case MaterializedValue::Kind::kCleartext:
      if (value.location != party && value.location != kNoParty) {
        state.net.Send(value.location, party, value.clear.ByteSize());
        state.net.Rounds(1);
        value.location = party;
      }
      break;
  }
}

// Charges a local node's processing to its job (Spark stage or Python scan).
void ChargeLocalNode(RunState& state, const ir::OpNode& node, uint64_t records) {
  const int job = state.node_job.at(node.id);
  double seconds = 0;
  if (state.use_spark) {
    if (state.jobs_started.insert(job).second) {
      seconds += state.net.model().spark_job_startup_seconds;
    }
    seconds += static_cast<double>(records) /
               (state.net.model().spark_records_per_second_per_worker *
                state.net.model().spark_workers_per_party);
  } else {
    seconds += state.net.model().PythonSeconds(records);
  }
  state.job_duration[job] += seconds;
  state.net.mutable_counters().cleartext_records += records;
}

}  // namespace

StatusOr<ExecutionResult> Dispatcher::Run(
    const ir::Dag& dag, const compiler::Compilation& compilation,
    const std::map<std::string, Relation>& inputs) {
  const bool use_gc =
      compilation.options.mpc_backend == compiler::MpcBackendKind::kOblivC;
  RunState state(model_, seed_, compilation.num_parties, use_gc,
                 compilation.options.use_spark,
                 compilation.options.malicious_security);

  for (const compiler::Job& job : compilation.plan.jobs) {
    for (const ir::OpNode* node : job.nodes) {
      state.node_job[node->id] = job.id;
    }
  }

  ExecutionResult result;
  for (const ir::OpNode* node : dag.TopoOrder()) {
    const int job = state.node_job.at(node->id);
    const double clock_before = state.net.ElapsedSeconds();

    if (node->kind == ir::OpKind::kCreate) {
      const auto& params = node->Params<ir::CreateParams>();
      const auto it = inputs.find(params.name);
      if (it == inputs.end()) {
        return InvalidArgumentError(
            StrFormat("no input relation provided for '%s'", params.name.c_str()));
      }
      if (!it->second.schema().NamesMatch(node->schema)) {
        return InvalidArgumentError(StrFormat(
            "input '%s' schema %s does not match declared schema %s",
            params.name.c_str(), it->second.schema().ToString().c_str(),
            node->schema.ToString().c_str()));
      }
      MaterializedValue value;
      value.kind = MaterializedValue::Kind::kCleartext;
      value.clear = it->second;
      value.location = params.party;
      state.values[node->id] = std::move(value);
      continue;
    }

    if (node->kind == ir::OpKind::kCollect) {
      const auto& params = node->Params<ir::CollectParams>();
      MaterializedValue& input = state.values.at(node->inputs[0]->id);
      EnsureCleartextAt(state, input, params.recipients.First());
      // Fan out to the remaining recipients.
      for (PartyId p : params.recipients.ToVector()) {
        if (p != input.location) {
          state.net.Send(input.location, p, input.clear.ByteSize());
        }
      }
      Relation output = input.clear;
      if (compilation.options.pad_mpc_inputs) {
        // Recipients drop the sentinel rows that adaptive padding introduced.
        output = ops::StripSentinelRows(output);
      }
      if (params.dp.enabled) {
        // Recipients perturb locally; each noisy output consumes its epsilon
        // (sequential composition).
        Rng noise_rng(state.seed ^ (0xd1b54a32d192ed03ULL + static_cast<uint64_t>(
                                                                node->id)));
        CONCLAVE_RETURN_IF_ERROR(
            dp::PerturbRelation(output, params.dp, noise_rng));
        result.dp_epsilon_spent += params.dp.epsilon;
      }
      result.outputs[params.name] = std::move(output);
      state.job_duration[job] += state.ClockDelta(clock_before) * state.MpcScale();
      result.mpc_seconds += state.ClockDelta(clock_before) * state.MpcScale();
      continue;
    }

    switch (node->exec_mode) {
      case ir::ExecMode::kLocal: {
        std::vector<const Relation*> rels;
        uint64_t records = 0;
        for (const ir::OpNode* in : node->inputs) {
          MaterializedValue& value = state.values.at(in->id);
          EnsureCleartextAt(state, value, node->exec_party);
          rels.push_back(&value.clear);
          records += static_cast<uint64_t>(value.clear.NumRows());
        }
        // Reveal/transfer time accrued on the net clock belongs to this job too.
        state.job_duration[job] += state.ClockDelta(clock_before) * state.MpcScale();
        result.mpc_seconds += state.ClockDelta(clock_before) * state.MpcScale();
        CONCLAVE_ASSIGN_OR_RETURN(Relation out, ExecuteLocal(*node, rels));
        ChargeLocalNode(state, *node, records);
        MaterializedValue value;
        value.kind = MaterializedValue::Kind::kCleartext;
        value.clear = std::move(out);
        value.location = node->exec_party;
        state.values[node->id] = std::move(value);
        break;
      }
      case ir::ExecMode::kMpc:
      case ir::ExecMode::kHybrid: {
        if (use_gc) {
          std::vector<const Relation*> rels;
          for (const ir::OpNode* in : node->inputs) {
            MaterializedValue& value = state.values.at(in->id);
            CONCLAVE_RETURN_IF_ERROR(EnsureSecure(state, value));
            rels.push_back(&value.clear);
          }
          CONCLAVE_ASSIGN_OR_RETURN(Relation out, state.oblivc.Execute(*node, rels));
          MaterializedValue value;
          value.kind = MaterializedValue::Kind::kGarbled;
          value.clear = std::move(out);
          state.values[node->id] = std::move(value);
        } else {
          std::vector<const SharedRelation*> rels;
          for (const ir::OpNode* in : node->inputs) {
            MaterializedValue& value = state.values.at(in->id);
            CONCLAVE_RETURN_IF_ERROR(EnsureSecure(state, value));
            rels.push_back(&value.shared);
          }
          CONCLAVE_ASSIGN_OR_RETURN(SharedRelation out,
                                    state.sharemind.Execute(*node, rels));
          MaterializedValue value;
          value.kind = MaterializedValue::Kind::kShared;
          value.shared = std::move(out);
          state.values[node->id] = std::move(value);
        }
        const double delta = state.ClockDelta(clock_before) * state.MpcScale();
        state.job_duration[job] += delta;
        if (node->exec_mode == ir::ExecMode::kHybrid) {
          result.hybrid_seconds += delta;
        } else {
          result.mpc_seconds += delta;
        }
        break;
      }
    }
  }

  // Critical-path schedule over the job graph: a job starts when all jobs feeding it
  // finish; independent per-party local jobs overlap.
  std::unordered_map<int, double> finish;
  for (const compiler::Job& job : compilation.plan.jobs) {
    double start = 0;
    for (const ir::OpNode* node : job.nodes) {
      for (const ir::OpNode* in : node->inputs) {
        const int dep_job = state.node_job.at(in->id);
        if (dep_job != job.id) {
          const auto it = finish.find(dep_job);
          CONCLAVE_CHECK(it != finish.end());  // Jobs are topologically ordered.
          start = std::max(start, it->second);
        }
      }
    }
    finish[job.id] = start + state.job_duration[job.id];
    if (job.kind == compiler::JobKind::kLocal) {
      result.local_seconds += state.job_duration[job.id];
    }
  }
  for (const auto& [job_id, end] : finish) {
    result.virtual_seconds = std::max(result.virtual_seconds, end);
  }
  result.counters = state.net.counters();
  return result;
}

}  // namespace backends
}  // namespace conclave
