#include "conclave/compiler/compiler.h"

#include <utility>

#include "conclave/common/logging.h"
#include "conclave/common/thread_pool.h"
#include "conclave/compiler/backend_chooser.h"
#include "conclave/compiler/hybrid_transform.h"
#include "conclave/compiler/ownership.h"
#include "conclave/compiler/padding.h"
#include "conclave/compiler/pushdown.h"
#include "conclave/compiler/pushup.h"
#include "conclave/compiler/sort_elimination.h"
#include "conclave/compiler/sort_pushup.h"
#include "conclave/compiler/trust.h"
#include "conclave/relational/pipeline.h"
#include "conclave/relational/spill.h"

namespace conclave {
namespace compiler {

std::string Compilation::ExplainPlan() const {
  if (!has_cost_report) {
    return "plan-cost: not computed (set CompilerOptions::explain_plan or "
           "auto_backend)\n";
  }
  return cost_report.ToString();
}

StatusOr<Compilation> Compile(ir::Dag& dag, const CompilerOptions& options) {
  if (dag.Creates().empty()) {
    return InvalidArgumentError("query has no input relations");
  }
  if (dag.Collects().empty()) {
    return InvalidArgumentError("query has no output relations (writeToCsv missing)");
  }

  Compilation result;
  result.options = options;
  result.num_parties = dag.NumParties();

  // Stage 1: input locations and the initial MPC frontier.
  PropagateOwnership(dag);

  // Stage 2: frontier push-down rewrites (re-propagates ownership internally).
  if (options.push_down) {
    auto log = PushDown(dag, options.allow_cardinality_leak);
    result.transformations.insert(result.transformations.end(), log.begin(),
                                  log.end());
  }

  // Stage 3: trust annotation propagation.
  PropagateTrust(dag, result.num_parties);

  // Stage 3b: sort push-up below concats (re-propagates trust for new nodes).
  if (options.sort_push_up) {
    auto log = PushSortsUp(dag);
    if (!log.empty()) {
      PropagateTrust(dag, result.num_parties);
    }
    result.transformations.insert(result.transformations.end(), log.begin(),
                                  log.end());
  }

  // Stage 4: frontier push-up through reversible leaf operators.
  if (options.push_up) {
    auto log = PushUp(dag);
    result.transformations.insert(result.transformations.end(), log.begin(),
                                  log.end());
  }

  // Stage 5: hybrid protocol insertion.
  if (options.use_hybrid) {
    auto log = ApplyHybridTransforms(dag, result.num_parties);
    result.transformations.insert(result.transformations.end(), log.begin(),
                                  log.end());
  }

  // Stage 5b: adaptive padding on the MPC boundary (after placement, so the pass
  // sees the final frontier; before sort elimination, since pads break sortedness).
  if (options.pad_mpc_inputs) {
    auto log = ApplyPadding(dag);
    if (!log.empty()) {
      PropagateTrust(dag, result.num_parties);
    }
    result.transformations.insert(result.transformations.end(), log.begin(),
                                  log.end());
  }

  // Stage 6: oblivious-sort elimination (after placement, since sortedness depends
  // on which engine runs each operator).
  if (options.sort_elimination) {
    auto log = EliminateSorts(dag);
    result.transformations.insert(result.transformations.end(), log.begin(),
                                  log.end());
  }

  // Stage 6b: cost-based MPC backend choice (§9 extension) — after all placement
  // decisions, since the estimate prices exactly what stays under MPC. The same
  // plan-cost walk feeds the explain API.
  if (options.auto_backend || options.explain_plan) {
    BackendChoice choice =
        ChooseMpcBackend(dag, options.planning_cost_model, result.num_parties,
                         options.planning_cardinality);
    if (options.auto_backend) {
      result.options.mpc_backend = choice.chosen;
      result.transformations.push_back(choice.rationale);
    }
    result.cost_report = std::move(choice.report);
    result.has_cost_report = true;
  }

  // Stage 7: partition and generate code.
  result.plan = PartitionDag(dag);
  result.generated_code =
      GenerateCode(result.plan, result.options.mpc_backend, options.use_spark);
  if (result.has_cost_report) {
    // Sharding advice for the explain listing: priced from the Create nodes' row
    // hints (the planner's compile-time input knowledge) at the configured or
    // hardware-default pool.
    int64_t hinted_rows = 0;
    for (const ir::OpNode* create : dag.Creates()) {
      hinted_rows += create->Params<ir::CreateParams>().num_rows_hint;
    }
    const int pool = options.planning_pool_parallelism > 0
                         ? options.planning_pool_parallelism
                         : ThreadPool::DefaultParallelism();
    AnnotateShardAdvice(result.cost_report, result.plan,
                        options.planning_cost_model, pool, hinted_rows);
    // Pipeline-fusion advice at the advised shard count and the configured (or
    // env-default) batch size; the dispatcher fuses exactly these chains.
    AnnotatePipelineAdvice(result.cost_report, dag,
                           result.cost_report.recommended_shard_count,
                           DefaultBatchRows());
    // Fault-injection advice from the same CONCLAVE_FAULT_PLAN knob the
    // dispatcher resolves at run time; a malformed value fails loud there —
    // explain treats it as off.
    StatusOr<FaultPlan> fault_plan = FaultPlan::FromEnv();
    AnnotateFaultAdvice(result.cost_report,
                        fault_plan.ok() ? *fault_plan : FaultPlan{},
                        options.planning_cost_model);
    // Spill advice from the same CONCLAVE_MEM_BUDGET knob the dispatcher
    // resolves at run time (DESIGN.md §12); with exact cardinalities the
    // estimate equals the metered spill charge.
    AnnotateSpillAdvice(result.cost_report, dag, options.planning_cost_model,
                        DefaultMemBudgetRows(), options.planning_cardinality);
  }

  CONCLAVE_LOG(kInfo, "compiled query: %zu transformations, %zu jobs",
               result.transformations.size(), result.plan.jobs.size());
  return result;
}

}  // namespace compiler
}  // namespace conclave
