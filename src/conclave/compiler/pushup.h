// Pass 4 (§5.2): MPC frontier push-up from the output relations.
//
// A reversible leaf operator's output determines its input, so running it under MPC
// protects nothing: Conclave reveals the operator's input to the recipients and runs
// the operator in the clear at the receiving party. Reversible cases handled here:
//
//  * Arithmetic — the result relation retains its operand columns, so the input is a
//    sub-relation of the output (trivially reversible).
//  * Reordering projections — column permutations that drop nothing.
//  * Leaf COUNT aggregations — a count's output inherently reveals the group-key
//    frequencies, so it is rewritten into an MPC projection onto the group columns
//    (projections scale far better under MPC than aggregations, §2.3) plus a
//    cleartext count at the recipient.
//
// The pass walks up from each Collect through chains of such operators, marking them
// local at the receiving party.
#ifndef CONCLAVE_COMPILER_PUSHUP_H_
#define CONCLAVE_COMPILER_PUSHUP_H_

#include <string>
#include <vector>

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

std::vector<std::string> PushUp(ir::Dag& dag);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_PUSHUP_H_
