#include "conclave/compiler/sort_pushup.h"

#include "conclave/common/strings.h"
#include "conclave/compiler/ownership.h"

namespace conclave {
namespace compiler {
namespace {

bool SchemaKeeps(const Schema& schema, const std::vector<std::string>& columns) {
  for (const auto& name : columns) {
    if (!schema.HasColumn(name)) {
      return false;
    }
  }
  return true;
}

// True if swapping sort(op(X)) to op(sort(X)) preserves semantics: the operator must
// keep row order (stable) and keep the sort columns' values.
bool IsOrderPreserving(const ir::OpNode& node,
                       const std::vector<std::string>& sort_columns) {
  switch (node.kind) {
    case ir::OpKind::kFilter:
    case ir::OpKind::kArithmetic:
      return true;
    case ir::OpKind::kProject:
      // The projection must not drop the sort columns below it.
      return SchemaKeeps(node.inputs[0]->schema, sort_columns);
    default:
      return false;
  }
}

}  // namespace

std::vector<std::string> PushSortsUp(ir::Dag& dag) {
  std::vector<std::string> log;
  bool changed = true;
  while (changed) {
    changed = false;
    for (ir::OpNode* sort : dag.TopoOrder()) {
      if (sort->kind != ir::OpKind::kSortBy ||
          sort->exec_mode != ir::ExecMode::kMpc) {
        continue;
      }
      const auto& params = sort->Params<ir::SortByParams>();
      if (!params.ascending) {
        continue;  // Merge networks are ascending; descending sorts stay put.
      }

      // Walk up through an exclusively-consumed, order-preserving chain.
      ir::OpNode* cursor = sort->inputs[0];
      while (cursor->outputs.size() == 1 && IsOrderPreserving(*cursor, params.columns)) {
        cursor = cursor->inputs[0];
      }
      if (cursor->kind != ir::OpKind::kConcat || cursor->outputs.size() != 1 ||
          !cursor->Params<ir::ConcatParams>().merge_columns.empty() ||
          !SchemaKeeps(cursor->schema, params.columns)) {
        continue;
      }

      // 1. Per-branch sorts below the concat.
      ir::OpNode* concat = cursor;
      for (ir::OpNode* branch : std::vector<ir::OpNode*>(concat->inputs)) {
        const auto branch_sort = dag.AddSortBy(branch, params.columns, true);
        CONCLAVE_CHECK(branch_sort.ok());
        dag.ReplaceInput(concat, branch, *branch_sort);
      }
      // 2. The concat becomes a sorted merge.
      concat->MutableParams<ir::ConcatParams>().merge_columns = params.columns;
      // 3. Remove the original sort.
      ir::OpNode* sort_input = sort->inputs[0];
      for (ir::OpNode* consumer : std::vector<ir::OpNode*>(sort->outputs)) {
        dag.ReplaceInput(consumer, sort, sort_input);
      }
      dag.Detach(sort);

      log.push_back(StrFormat(
          "sort push-up: sort #%d by (%s) moved below concat #%d as %zu local "
          "per-party sorts + oblivious merge",
          sort->id, StrJoin(params.columns, ",").c_str(), concat->id,
          concat->inputs.size()));
      changed = true;
      break;  // Topo order is stale after a rewrite.
    }
    if (changed) {
      PropagateOwnership(dag);
    }
  }
  return log;
}

}  // namespace compiler
}  // namespace conclave
