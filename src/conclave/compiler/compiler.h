// The compilation pipeline driver (§5): runs the six stages over a query DAG and
// produces an execution plan plus diagnostics.
//
//   1. ownership propagation            (always)
//   2. MPC frontier push-down rewrites  (options.push_down)
//   3. trust propagation                (always)
//   4. sort push-up below concats       (options.sort_push_up)
//   5. MPC frontier push-up             (options.push_up)
//   6. hybrid operator transforms       (options.use_hybrid)
//   7. oblivious-sort elimination       (options.sort_elimination)
//   8. partitioning + code generation   (always)
//
// Every stage is individually switchable so benches can ablate the paper's design
// choices (bench/ablation_passes).
#ifndef CONCLAVE_COMPILER_COMPILER_H_
#define CONCLAVE_COMPILER_COMPILER_H_

#include <string>
#include <vector>

#include "conclave/common/status.h"
#include "conclave/compiler/codegen.h"
#include "conclave/compiler/partition.h"
#include "conclave/compiler/plan_cost.h"
#include "conclave/ir/dag.h"
#include "conclave/net/cost_model.h"

namespace conclave {
namespace compiler {

struct CompilerOptions {
  bool push_down = true;
  bool push_up = true;
  bool use_hybrid = true;
  bool sort_elimination = true;
  // §5.4's proposed extension (implemented): move sorts below concats as local
  // per-party sorts + an oblivious merge.
  bool sort_push_up = true;
  // Consent to push-down rewrites whose MPC input sizes are data-dependent (§5.2).
  bool allow_cardinality_leak = true;
  // Cleartext backend: data-parallel Spark or sequential Python (§4.1).
  bool use_spark = true;
  MpcBackendKind mpc_backend = MpcBackendKind::kSharemind;
  // Cost-based backend choice (§9 extension): ignore `mpc_backend` and pick the
  // cheaper of secret sharing and garbled circuits for this query's MPC clique,
  // using `planning_cost_model` estimates. The decision lands in the compiled
  // options and the rewrite log.
  bool auto_backend = false;
  CostModel planning_cost_model;
  // Fill Compilation::cost_report with the per-node plan-cost breakdown (the explain
  // API) even when auto_backend is off. Off by default: pricing a plan walks exact
  // Batcher network shapes, which is wasted work for fixed-backend production runs.
  bool explain_plan = false;
  // Cardinality knobs feeding the plan-cost estimate (selectivities, default rows).
  CardinalityOptions planning_cardinality;
  // Pool parallelism assumed by the explain report's shard-count advice
  // (PlanCostReport::recommended_shard_count). 0 = this machine's hardware
  // default; set explicitly to make explain output machine-independent (e.g. in
  // golden tests).
  int planning_pool_parallelism = 0;
  // Adaptive padding (§9 extension): pad every local relation entering an MPC join /
  // grouped aggregation / window to the next power of two, hiding data-dependent
  // cardinalities on the MPC boundary behind log2 buckets. Off by default — padding
  // buys leak resistance with real extra MPC work (see bench/ablation_passes).
  bool pad_mpc_inputs = false;
  // Malicious security up to abort (Appendix A.5): every MPC input runs the
  // commit + ZK-consistency phase, and MPC time is scaled by the active-adversary
  // overhead (CostModel::malicious_overhead_factor). Semi-honest by default, like
  // the paper's prototype.
  bool malicious_security = false;
};

struct Compilation {
  ExecutionPlan plan;
  std::vector<std::string> transformations;  // Human-readable rewrite log.
  std::string generated_code;                // Per-job program listings.
  int num_parties = 0;
  CompilerOptions options;
  // Per-node cost breakdown under both MPC backends (the explain API's payload).
  // Filled when options.auto_backend or options.explain_plan is set; tests and
  // benches assert chooser decisions against it. cost_report.cheapest is the
  // cost-based pick; options.mpc_backend is what will actually run.
  PlanCostReport cost_report;
  bool has_cost_report = false;

  // The explain listing: per-node estimated costs and the chosen backend.
  std::string ExplainPlan() const;
};

// Rewrites `dag` in place and returns the plan. The DAG must have at least one
// Create and one Collect node.
StatusOr<Compilation> Compile(ir::Dag& dag, const CompilerOptions& options);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_COMPILER_H_
