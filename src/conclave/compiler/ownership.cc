#include "conclave/compiler/ownership.h"

namespace conclave {
namespace compiler {

void PropagateOwnership(ir::Dag& dag) {
  for (ir::OpNode* node : dag.TopoOrder()) {
    switch (node->kind) {
      case ir::OpKind::kCreate: {
        const auto& params = node->Params<ir::CreateParams>();
        node->owner = params.party;
        node->stored_with = PartySet::Of({params.party});
        break;
      }
      case ir::OpKind::kCollect: {
        // Collect reveals its input to the recipients; placement-wise it runs at the
        // recipients (the reveal itself is a boundary the dispatcher handles).
        node->owner = node->inputs[0]->owner;
        node->stored_with = node->Params<ir::CollectParams>().recipients;
        break;
      }
      default: {
        PartySet stored;
        PartyId owner = node->inputs.empty() ? kNoParty : node->inputs[0]->owner;
        for (const ir::OpNode* input : node->inputs) {
          stored = stored.Union(input->stored_with);
          if (input->owner != owner) {
            owner = kNoParty;  // Inputs from different parties: no single owner.
          }
        }
        node->owner = owner;
        node->stored_with = stored;
        break;
      }
    }

    // Initial MPC frontier: owned relations compute locally at their owner;
    // ownerless relations combine multiple parties' data and need MPC.
    if (node->kind == ir::OpKind::kCollect) {
      node->exec_mode = ir::ExecMode::kLocal;
      node->exec_party = node->Params<ir::CollectParams>().recipients.First();
    } else if (node->owner != kNoParty) {
      node->exec_mode = ir::ExecMode::kLocal;
      node->exec_party = node->owner;
    } else {
      node->exec_mode = ir::ExecMode::kMpc;
      node->exec_party = kNoParty;
      node->hybrid = ir::HybridKind::kNone;
      node->stp = kNoParty;
    }
  }
}

}  // namespace compiler
}  // namespace conclave
