#include "conclave/compiler/trust.h"

#include <algorithm>

namespace conclave {
namespace compiler {
namespace {

// Intersection of the trust sets of the named columns in `schema`.
PartySet IntersectTrust(const Schema& schema, const std::vector<std::string>& names) {
  PartySet result = PartySet::All(kMaxParties);
  for (const auto& name : names) {
    const auto index = schema.IndexOf(name);
    CONCLAVE_CHECK(index.ok());  // Construction already validated column references.
    result = result.Intersect(schema.Column(*index).trust_set);
  }
  return result;
}

}  // namespace

void PropagateTrust(ir::Dag& dag, int num_parties) {
  (void)num_parties;
  for (ir::OpNode* node : dag.TopoOrder()) {
    Schema& schema = node->schema;
    switch (node->kind) {
      case ir::OpKind::kCreate: {
        // Annotation plus the implicit member: the storing party trusts itself with
        // every column it holds (§4.3).
        const auto& params = node->Params<ir::CreateParams>();
        for (int c = 0; c < schema.NumColumns(); ++c) {
          PartySet trust = params.schema.Column(c).trust_set;
          trust.Insert(params.party);
          schema.MutableColumn(c).trust_set = trust;
        }
        break;
      }
      case ir::OpKind::kConcat: {
        // Position-wise: a concatenated column's rows come from every branch, so its
        // trust set is the intersection across branches.
        for (int c = 0; c < schema.NumColumns(); ++c) {
          PartySet trust = node->inputs[0]->schema.Column(c).trust_set;
          for (size_t i = 1; i < node->inputs.size(); ++i) {
            trust = trust.Intersect(node->inputs[i]->schema.Column(c).trust_set);
          }
          schema.MutableColumn(c).trust_set = trust;
        }
        break;
      }
      case ir::OpKind::kProject: {
        const Schema& in = node->inputs[0]->schema;
        for (int c = 0; c < schema.NumColumns(); ++c) {
          schema.MutableColumn(c).trust_set =
              IntersectTrust(in, {schema.Column(c).name});
        }
        break;
      }
      case ir::OpKind::kFilter: {
        // The filter columns decide which rows survive, so they taint every output
        // column.
        const auto& params = node->Params<ir::FilterParams>();
        const Schema& in = node->inputs[0]->schema;
        std::vector<std::string> deciders{params.column};
        if (params.rhs_is_column) {
          deciders.push_back(params.rhs_column);
        }
        const PartySet decider_trust = IntersectTrust(in, deciders);
        for (int c = 0; c < schema.NumColumns(); ++c) {
          schema.MutableColumn(c).trust_set =
              IntersectTrust(in, {schema.Column(c).name}).Intersect(decider_trust);
        }
        break;
      }
      case ir::OpKind::kJoin: {
        // Join keys decide row membership: they taint every output column.
        const auto& params = node->Params<ir::JoinParams>();
        const Schema& left = node->inputs[0]->schema;
        const Schema& right = node->inputs[1]->schema;
        const PartySet key_trust = IntersectTrust(left, params.left_keys)
                                       .Intersect(IntersectTrust(right, params.right_keys));
        const size_t num_keys = params.left_keys.size();
        for (int c = 0; c < schema.NumColumns(); ++c) {
          PartySet own;
          if (c < static_cast<int>(num_keys)) {
            own = key_trust;  // Key output columns merge both sides' keys.
          } else if (left.HasColumn(schema.Column(c).name)) {
            own = IntersectTrust(left, {schema.Column(c).name});
          } else {
            own = IntersectTrust(right, {schema.Column(c).name});
          }
          schema.MutableColumn(c).trust_set = own.Intersect(key_trust);
        }
        break;
      }
      case ir::OpKind::kAggregate: {
        // Group-by columns decide how rows combine; they taint the aggregate output.
        const auto& params = node->Params<ir::AggregateParams>();
        const Schema& in = node->inputs[0]->schema;
        const PartySet group_trust = IntersectTrust(in, params.group_columns);
        for (size_t g = 0; g < params.group_columns.size(); ++g) {
          schema.MutableColumn(static_cast<int>(g)).trust_set =
              IntersectTrust(in, {params.group_columns[g]}).Intersect(group_trust);
        }
        PartySet agg_trust = group_trust;
        if (params.kind != AggKind::kCount) {
          agg_trust = agg_trust.Intersect(IntersectTrust(in, {params.agg_column}));
        }
        schema.MutableColumn(schema.NumColumns() - 1).trust_set = agg_trust;
        break;
      }
      case ir::OpKind::kArithmetic: {
        const auto& params = node->Params<ir::ArithmeticParams>();
        const Schema& in = node->inputs[0]->schema;
        for (int c = 0; c + 1 < schema.NumColumns(); ++c) {
          schema.MutableColumn(c).trust_set =
              IntersectTrust(in, {schema.Column(c).name});
        }
        std::vector<std::string> operands{params.lhs_column};
        if (params.rhs_is_column) {
          operands.push_back(params.rhs_column);
        }
        schema.MutableColumn(schema.NumColumns() - 1).trust_set =
            IntersectTrust(in, operands);
        break;
      }
      case ir::OpKind::kWindow: {
        // Partition and order columns decide row grouping and ordering, so (like sort
        // and group-by columns) they taint every output column; the computed column
        // additionally depends on the value column it aggregates.
        const auto& params = node->Params<ir::WindowParams>();
        const Schema& in = node->inputs[0]->schema;
        std::vector<std::string> deciders = params.partition_columns;
        deciders.push_back(params.order_column);
        const PartySet decider_trust = IntersectTrust(in, deciders);
        for (int c = 0; c + 1 < schema.NumColumns(); ++c) {
          schema.MutableColumn(c).trust_set =
              IntersectTrust(in, {schema.Column(c).name}).Intersect(decider_trust);
        }
        PartySet computed_trust = decider_trust;
        if (params.fn != WindowFn::kRowNumber) {
          computed_trust =
              computed_trust.Intersect(IntersectTrust(in, {params.value_column}));
        }
        schema.MutableColumn(schema.NumColumns() - 1).trust_set = computed_trust;
        break;
      }
      case ir::OpKind::kSortBy: {
        // Sort columns decide the output order of every column.
        const auto& params = node->Params<ir::SortByParams>();
        const Schema& in = node->inputs[0]->schema;
        const PartySet sort_trust = IntersectTrust(in, params.columns);
        for (int c = 0; c < schema.NumColumns(); ++c) {
          schema.MutableColumn(c).trust_set =
              IntersectTrust(in, {schema.Column(c).name}).Intersect(sort_trust);
        }
        break;
      }
      case ir::OpKind::kDistinct: {
        // All selected columns jointly decide which rows survive.
        const auto& params = node->Params<ir::DistinctParams>();
        const Schema& in = node->inputs[0]->schema;
        const PartySet joint = IntersectTrust(in, params.columns);
        for (int c = 0; c < schema.NumColumns(); ++c) {
          schema.MutableColumn(c).trust_set = joint;
        }
        break;
      }
      case ir::OpKind::kPad:  // Padding adds data-independent sentinel rows only.
      case ir::OpKind::kLimit: {
        const Schema& in = node->inputs[0]->schema;
        for (int c = 0; c < schema.NumColumns(); ++c) {
          schema.MutableColumn(c).trust_set =
              IntersectTrust(in, {schema.Column(c).name});
        }
        break;
      }
      case ir::OpKind::kCollect: {
        // Recipients learn the output in the clear: they join every trust set.
        const auto& params = node->Params<ir::CollectParams>();
        const Schema& in = node->inputs[0]->schema;
        for (int c = 0; c < schema.NumColumns(); ++c) {
          schema.MutableColumn(c).trust_set =
              IntersectTrust(in, {schema.Column(c).name}).Union(params.recipients);
        }
        break;
      }
    }
  }
}

}  // namespace compiler
}  // namespace conclave
