#include "conclave/compiler/cardinality.h"

#include <algorithm>
#include <cmath>

#include "conclave/relational/ops.h"

namespace conclave {
namespace compiler {

std::unordered_map<int, double> EstimateCardinalities(
    const ir::Dag& dag, const CardinalityOptions& options) {
  std::unordered_map<int, double> rows;
  for (const ir::OpNode* node : dag.TopoOrder()) {
    const double in0 =
        node->inputs.empty() ? 0.0 : rows.at(node->inputs[0]->id);
    double estimate = in0;
    switch (node->kind) {
      case ir::OpKind::kCreate: {
        const auto& params = node->Params<ir::CreateParams>();
        estimate = params.num_rows_hint > 0
                       ? static_cast<double>(params.num_rows_hint)
                       : options.default_rows;
        break;
      }
      case ir::OpKind::kConcat: {
        estimate = 0;
        for (const ir::OpNode* input : node->inputs) {
          estimate += rows.at(input->id);
        }
        break;
      }
      case ir::OpKind::kFilter:
        estimate = in0 * options.filter_selectivity;
        break;
      case ir::OpKind::kJoin: {
        const double right = rows.at(node->inputs[1]->id);
        estimate = std::max(in0, right) * options.join_fanout;
        break;
      }
      case ir::OpKind::kAggregate: {
        const auto& params = node->Params<ir::AggregateParams>();
        estimate = params.group_columns.empty()
                       ? 1.0
                       : std::max(1.0, in0 * options.distinct_fraction);
        break;
      }
      case ir::OpKind::kDistinct:
        estimate = std::max(1.0, in0 * options.distinct_fraction);
        break;
      case ir::OpKind::kLimit:
        estimate = std::min(
            in0, static_cast<double>(node->Params<ir::LimitParams>().count));
        break;
      case ir::OpKind::kPad:
        // The padding pass's actual policy (one source of truth with
        // ops::PadToPowerOfTwo), applied to the rounded estimate. Clamp before
        // llround: above 2^62 the conversion is UB and no padded size fits anyway.
        estimate = static_cast<double>(ops::PaddedRowCount(
            std::llround(std::clamp(in0, 0.0, 0x1p62))));
        break;
      case ir::OpKind::kProject:
      case ir::OpKind::kArithmetic:
      case ir::OpKind::kWindow:
      case ir::OpKind::kSortBy:
      case ir::OpKind::kCollect:
        break;  // Row-preserving.
    }
    rows[node->id] = estimate;
  }
  return rows;
}

}  // namespace compiler
}  // namespace conclave
