// Adaptive padding pass (§9's future-work direction, implemented).
//
// The sizes of relations entering the MPC are public (§3.2), and push-down rewrites
// can make those sizes data-dependent — e.g., splitting a grouped aggregation reveals
// each party's distinct-key count. The paper gates such rewrites on party consent and
// muses about "adaptive padding to avoid leaking relation sizes on the MPC boundary";
// this pass implements it: every locally-computed relation feeding an MPC join,
// grouped aggregation, or window (directly or through the combining concat) is padded
// to the next power of two with sentinel rows, so the boundary reveals only a log2
// bucket of the true cardinality.
//
// Sentinel rows are globally unique values above the data domain (ops::kSentinelBase):
// they match no join key and form singleton group-by/window partitions, so query
// semantics survive; the dispatcher strips sentinel rows from outputs at the Collect
// boundary. The cost is real extra MPC work on the pad rows — the classic
// padding-vs-leakage trade, measured in bench/ablation_passes.
//
// Stripping recognizes pad rows by any cell >= ops::kSentinelBase, so the pass only
// pads where that is provably sufficient: before inserting pads it walks the
// downstream region and verifies that along every path pad rows either die (a join
// against a pad-free side — sentinels match neither real keys nor another stream's
// sentinels) or keep a column holding raw sentinel values all the way to the output,
// and that no Limit can take a prefix containing pads. Consumers failing the check
// are skipped with a logged reason, never padded incorrectly.
#ifndef CONCLAVE_COMPILER_PADDING_H_
#define CONCLAVE_COMPILER_PADDING_H_

#include <string>
#include <vector>

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

// The pass's row-count policy is ops::PaddedRowCount (relational/ops.h): the runtime
// pad operator executes it and the cardinality/plan-cost estimates query it, so there
// is exactly one definition of "padded size" in the system.

// Inserts Pad nodes below the MPC frontier. Call after placement (hybrid transform)
// and before sort elimination. Returns a human-readable rewrite log.
std::vector<std::string> ApplyPadding(ir::Dag& dag);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_PADDING_H_
