// Stage 6 (§5): partition the rewritten DAG into jobs at every transition between
// local and MPC operators.
//
// A job is a maximal connected group of nodes with identical placement (local at one
// party, or one contiguous MPC region); hybrid operators form singleton jobs since
// they interleave MPC and STP-local steps internally. Jobs matter for cost fidelity —
// each local Spark job pays one fixed startup — and give codegen its unit of output
// (one generated script per job, like the paper's per-backend code generation).
#ifndef CONCLAVE_COMPILER_PARTITION_H_
#define CONCLAVE_COMPILER_PARTITION_H_

#include <string>
#include <vector>

#include "conclave/ir/dag.h"
#include "conclave/net/cost_model.h"

namespace conclave {
namespace compiler {

enum class JobKind { kLocal, kMpc, kHybrid };

const char* JobKindName(JobKind kind);

struct Job {
  int id = -1;
  JobKind kind = JobKind::kLocal;
  PartyId party = kNoParty;  // For kLocal: the executing party.
  std::vector<ir::OpNode*> nodes;  // In topological order.

  // For kHybrid singletons.
  ir::HybridKind hybrid = ir::HybridKind::kNone;
  PartyId stp = kNoParty;
};

struct ExecutionPlan {
  std::vector<Job> jobs;  // Topologically ordered.

  int CountJobs(JobKind kind) const;
  // "5 jobs: 3 local, 1 mpc, 1 hybrid" plus one line per job.
  std::string Summary() const;
};

ExecutionPlan PartitionDag(const ir::Dag& dag);

// Cleartext scan seconds below which sharding cannot pay for its exchange/merge
// copies (priced with CostModel::CleartextScanSeconds, the same formula the
// dispatcher charges local jobs).
inline constexpr double kMinShardedScanSeconds = 0.05;
// Upper bound on the automatic shard-count decision; explicit shard_count settings
// are not capped.
inline constexpr int kMaxAutoShards = 8;

// The shard-count decision for the cleartext data plane, priced with the shared
// cost model: 1 when the plan has no local jobs or the priced scan work over
// `total_input_rows` is too small to amortize the per-shard task and exchange
// overhead, else min(pool_parallelism, kMaxAutoShards, total_input_rows).
// Deterministic in its arguments; sharding never changes results or virtual time,
// so this is purely a wall-clock decision.
int ChooseShardCount(const ExecutionPlan& plan, const CostModel& model,
                     int pool_parallelism, int64_t total_input_rows);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_PARTITION_H_
