// Stage 6 (§5): partition the rewritten DAG into jobs at every transition between
// local and MPC operators.
//
// A job is a maximal connected group of nodes with identical placement (local at one
// party, or one contiguous MPC region); hybrid operators form singleton jobs since
// they interleave MPC and STP-local steps internally. Jobs matter for cost fidelity —
// each local Spark job pays one fixed startup — and give codegen its unit of output
// (one generated script per job, like the paper's per-backend code generation).
#ifndef CONCLAVE_COMPILER_PARTITION_H_
#define CONCLAVE_COMPILER_PARTITION_H_

#include <string>
#include <vector>

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

enum class JobKind { kLocal, kMpc, kHybrid };

const char* JobKindName(JobKind kind);

struct Job {
  int id = -1;
  JobKind kind = JobKind::kLocal;
  PartyId party = kNoParty;  // For kLocal: the executing party.
  std::vector<ir::OpNode*> nodes;  // In topological order.

  // For kHybrid singletons.
  ir::HybridKind hybrid = ir::HybridKind::kNone;
  PartyId stp = kNoParty;
};

struct ExecutionPlan {
  std::vector<Job> jobs;  // Topologically ordered.

  int CountJobs(JobKind kind) const;
  // "5 jobs: 3 local, 1 mpc, 1 hybrid" plus one line per job.
  std::string Summary() const;
};

ExecutionPlan PartitionDag(const ir::Dag& dag);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_PARTITION_H_
