// The shared plan-cost subsystem: one set of per-operator cost functions, keyed on
// ir::OpKind x backend x hybrid kind, that prices an MPC-resident operator with the
// SAME formulas the execution layer charges at run time — the calibration table
// (CostModel::SsChargeFor) for secret-sharing primitives, the exact analytic gate
// counts (mpc/garbled/gc_cost.h) for garbled circuits, the exact Batcher network
// shapes for oblivious sorts and merges, the engines' working-set memory checks for
// OOM cliffs, and the padding pass's real row policy (ops::PaddedRowCount) for padded
// cardinalities. The backend chooser, the explain API, and tests all derive from it;
// the only thing separating an estimate from a measurement is the cardinality
// estimate feeding it.
//
// Given exact cardinalities, a node's estimate equals the virtual seconds the
// dispatcher meters for it (tests assert this); given estimated cardinalities, the
// ranking of backends still tracks the measured ranking on the paper's query shapes.
#ifndef CONCLAVE_COMPILER_PLAN_COST_H_
#define CONCLAVE_COMPILER_PLAN_COST_H_

#include <span>
#include <string>
#include <vector>

#include "conclave/compiler/cardinality.h"
#include "conclave/compiler/codegen.h"
#include "conclave/compiler/partition.h"
#include "conclave/ir/dag.h"
#include "conclave/net/cost_model.h"
#include "conclave/net/fault.h"

namespace conclave {
namespace compiler {

// Cost of one operator under one backend. Infeasible = the engine would refuse to
// run it (simulated OOM, a hybrid protocol on the GC backend, or a >2-party query
// for Obliv-C); seconds is +infinity in that case.
struct BackendOpCost {
  double seconds = 0;
  bool feasible = true;
  std::string infeasible_reason;  // Empty when feasible.
};

// One explain line: an MPC/hybrid-resident operator with its estimated cardinalities
// and its price under each backend. Boundary ingest of cleartext inputs (inputToMPC)
// is folded into the first consuming node, exactly where the dispatcher meters it.
struct NodeCost {
  int node_id = -1;
  std::string label;       // e.g. "join[mpc]", "aggregate[hybrid-agg]".
  double in_rows = 0;      // Estimated left-input cardinality.
  double right_rows = 0;   // Estimated right-input cardinality (joins only).
  double out_rows = 0;     // Estimated output cardinality.
  double ingest_rows = 0;  // Cleartext rows first entering the MPC at this node.
  BackendOpCost sharemind;
  BackendOpCost oblivc;
};

struct PlanCostReport {
  std::vector<NodeCost> nodes;
  // Whole-clique totals; +infinity when any node is infeasible on that backend.
  double sharemind_seconds = 0;
  double oblivc_seconds = 0;
  // The backend with the minimal estimated total. Ties — including both-infeasible
  // plans, where secret sharing can also exceed its VM — resolve to secret sharing:
  // it is the only backend that can attempt every operator, and the runtime then
  // surfaces the predicted OOM as a typed status.
  MpcBackendKind cheapest = MpcBackendKind::kSharemind;

  // Sharding advice for the cleartext data plane (filled by AnnotateShardAdvice
  // after partitioning): the shard count compiler::ChooseShardCount picks for this
  // plan and the priced cleartext scan seconds that justified it. Advisory only —
  // sharding changes wall clock, never results or virtual time.
  int recommended_shard_count = 1;
  double cleartext_scan_seconds = 0;

  // Pipeline-fusion advice (filled by AnnotatePipelineAdvice): how many local
  // operator chains the executor fuses into push-based batch pipelines, and the
  // resident-row bound the streaming contract guarantees per chain. Advisory
  // only — fusion changes wall clock and memory, never results or virtual time
  // (fused nodes are priced per node with the same formulas the unfused
  // executor meters, so the estimate==meter identities hold at every batch
  // size).
  int fused_pipeline_chains = 0;
  int fused_pipeline_nodes = 0;
  int longest_pipeline_chain = 0;
  int64_t pipeline_batch_rows = 0;  // 0 = fusion disabled (materializing).

  // Streaming-reveal advice (DESIGN.md §14, filled alongside the chain
  // counts): whether the CONCLAVE_STREAM_REVEAL knob is on at explain time,
  // and how many of the fused chains are headed by the sole consumer of an
  // MPC/hybrid value — those reveals stream batch-at-a-time into the chain
  // instead of materializing. Advisory only: the reveal's boundary charge is
  // identical in both paths (one whole-relation reveal, charged at
  // conversion), so the estimate==meter identities are untouched.
  bool stream_reveal_enabled = false;
  int streamed_reveal_chains = 0;

  // Fused-expression advice (filled by AnnotatePipelineAdvice alongside the
  // chain counts): within the fused chains, how many maximal runs of >= 2
  // adjacent filter / project / arithmetic nodes the executor compiles into
  // single-pass FusedExprPrograms (relational/expr.h), and how many nodes
  // those runs cover. Advisory only — a fused run reports per-node input rows
  // identical to per-operator execution, so per-node pricing (and the
  // estimate==meter identities) are unchanged. Reflects the
  // CONCLAVE_FUSED_EXPR knob at explain time.
  bool fused_expr_enabled = false;
  int fused_expr_groups = 0;
  int fused_expr_nodes = 0;

  // Fault-injection advice (filled by AnnotateFaultAdvice from the resolved
  // FaultPlan): whether injection is armed, the plan's compact knob summary,
  // the recovery budgets, and the worst-case backoff envelope one send can
  // absorb before escalating (sum of the bounded retry timeouts). Advisory
  // only — a recoverable plan changes the virtual clock by exactly its priced
  // recovery time and nothing else (DESIGN.md §11).
  bool fault_mode = false;
  std::string fault_plan_summary;
  int fault_max_send_retries = 0;
  int fault_job_retries = 0;
  double fault_retry_envelope_seconds = 0;

  // Spill advice (filled by AnnotateSpillAdvice from the resolved memory
  // budget, DESIGN.md §12): how many cleartext-local blocking operators the
  // budget forces to spill at estimated cardinalities, their total priced merge
  // passes, and the priced spill I/O seconds. Unlike the advisory lines above,
  // spill_seconds IS a virtual-clock charge: the dispatcher adds exactly this
  // formula (NodeSpillSeconds over node-total input rows) to the clock, so with
  // exact cardinalities the estimate equals the meter.
  int64_t spill_mem_budget_rows = 0;  // 0 = unbounded (no spilling).
  int spilling_nodes = 0;
  int64_t spill_total_passes = 0;
  double spill_seconds = 0;

  // The explain listing: one header line ("plan-cost: ...") plus one line per node
  // with estimated rows and per-backend seconds, and trailing shard-advice and
  // pipeline-advice lines.
  std::string ToString() const;
};

// Renders an estimated total for logs and tables: "%.<decimals>fs", or
// "infeasible" for +infinity. Shared by the explain listing, the chooser's
// rationale line, and benches so the three render identically.
std::string FormatPlanSeconds(double seconds, int decimals = 3);

// Prices every MPC/hybrid-resident operator of the placed DAG (plus the boundary
// ingest of its cleartext inputs) under both MPC backends. Call after placement —
// the estimate covers exactly what stays under MPC.
PlanCostReport EstimatePlanCost(const ir::Dag& dag, const CostModel& model,
                                int num_parties,
                                const CardinalityOptions& cardinality = {});

// Fills the report's sharding advice from the partitioned plan: prices the
// cleartext portion with the shared cost model and records the shard count
// ChooseShardCount would pick at `pool_parallelism`. `total_input_rows` is the
// planner's input-size knowledge (the Create nodes' row hints at compile time, or
// the actual input sizes when the dispatcher decides at run time).
void AnnotateShardAdvice(PlanCostReport& report, const ExecutionPlan& plan,
                         const CostModel& model, int pool_parallelism,
                         int64_t total_input_rows);

// --- Pipeline fusion (push-based batch pipelines, DESIGN.md §10) --------------------

// True when `node` can be a member of a fused streaming chain: a single-input
// cleartext-local operator whose kernel consumes and emits batches without
// materializing. A sharded limit (shard_count > 1) fuses only as a chain's
// TAIL: each shard streams its local count-row prefix and the assembly trims
// the concatenation to the global prefix (PipelineChains enforces the
// tail-only rule). Sharded distinct (cross-shard dedup) keeps its
// exchange-based kernel and breaks chains; unsharded distinct fuses when an
// upstream walk through order-preserving ops (filter / limit / project /
// arithmetic that does not shadow a distinct column) reaches an ascending sort
// whose column list the distinct columns prefix — the sortedness proof for the
// streaming adjacent-run dedup.
bool PipelineFusibleOp(const ir::OpNode& node, int shard_count);

// Maximal chains (length >= 2) of fusible nodes within `topo`, where every
// interior link is the producer's only consuming edge inside `topo` and both
// ends run at the same party. The dispatcher executes exactly these chains as
// one BatchPipeline per shard; the explain annotation prices the same chains —
// one decision procedure, two callers, so the planner can never disagree with
// the runtime about what fuses.
std::vector<std::vector<const ir::OpNode*>> PipelineChains(
    std::span<const ir::OpNode* const> topo, int shard_count);

// Fills the report's pipeline-fusion advice from the placed DAG at the given
// shard count and batch size (batch_rows <= 0 = fusion disabled).
void AnnotatePipelineAdvice(PlanCostReport& report, const ir::Dag& dag,
                            int shard_count, int64_t batch_rows);

// Fills the report's fault-injection advice from the resolved FaultPlan (the
// dispatcher resolves the same CONCLAVE_FAULT_PLAN knob at run time) and the
// cost model's retry/backoff pricing.
void AnnotateFaultAdvice(PlanCostReport& report, const FaultPlan& plan,
                         const CostModel& model);

// --- Beyond-RAM spill pricing (DESIGN.md §12) ---------------------------------------

// Priced spill I/O seconds for one cleartext-local blocking operator at the given
// node-TOTAL input cardinalities and per-instance memory budget. Zero when the
// budget is unbounded (<= 0), the node is not a blocking local operator, or the
// inputs fit. The formula is closed over (rows, budget, schema widths) only —
// never physical shard or batch layout — so the charge is identical at every
// {pool, shard, batch_rows} grid point. The dispatcher meters this exact function;
// the planner estimates it; with exact cardinalities the two are equal.
double NodeSpillSeconds(const ir::OpNode& node, double in_rows, double right_rows,
                        const CostModel& model, int64_t mem_budget_rows);

// Fills the report's spill advice: prices NodeSpillSeconds over every
// cleartext-local node at estimated cardinalities and records how many nodes the
// budget forces to spill, their total merge passes, and the summed seconds.
void AnnotateSpillAdvice(PlanCostReport& report, const ir::Dag& dag,
                         const CostModel& model, int64_t mem_budget_rows,
                         const CardinalityOptions& cardinality = {});

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_PLAN_COST_H_
