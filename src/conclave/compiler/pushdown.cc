#include "conclave/compiler/pushdown.h"

#include <set>

#include "conclave/common/strings.h"
#include "conclave/compiler/ownership.h"

namespace conclave {
namespace compiler {
namespace {

bool IsDistributive(const ir::OpNode& node) {
  switch (node.kind) {
    case ir::OpKind::kProject:
    case ir::OpKind::kFilter:
    case ir::OpKind::kArithmetic:
      return true;
    default:
      return false;
  }
}

// op(concat(a, b, ...)) -> concat(op(a), op(b), ...). `node` must be unary,
// distributive, and the sole consumer of its concat input.
bool PushThroughConcat(ir::Dag& dag, ir::OpNode* node, std::vector<std::string>* log) {
  ir::OpNode* concat = node->inputs[0];
  std::vector<ir::OpNode*> branches = concat->inputs;

  std::vector<ir::OpNode*> per_branch;
  per_branch.reserve(branches.size());
  for (ir::OpNode* branch : branches) {
    StatusOr<ir::OpNode*> clone = [&]() -> StatusOr<ir::OpNode*> {
      switch (node->kind) {
        case ir::OpKind::kProject:
          return dag.AddProject(branch, node->Params<ir::ProjectParams>().columns);
        case ir::OpKind::kFilter:
          return dag.AddFilter(branch, node->Params<ir::FilterParams>());
        case ir::OpKind::kArithmetic:
          return dag.AddArithmetic(branch, node->Params<ir::ArithmeticParams>());
        default:
          return InternalError("non-distributive op in concat push-down");
      }
    }();
    if (!clone.ok()) {
      return false;  // Schema mismatch on some branch; leave the DAG untouched.
    }
    per_branch.push_back(*clone);
  }

  const auto new_concat = dag.AddConcat(per_branch);
  CONCLAVE_CHECK(new_concat.ok());
  // Rewire all consumers of `node` to the new concat, then retire node and the old
  // concat.
  for (ir::OpNode* consumer : std::vector<ir::OpNode*>(node->outputs)) {
    dag.ReplaceInput(consumer, node, *new_concat);
  }
  dag.Detach(node);
  // The old concat keeps its input edges but has no consumers left; mark it
  // retired so the executor charges it as a phantom instead of sharing its
  // (possibly huge) inputs into the MPC for nothing.
  concat->retired = true;
  log->push_back(StrFormat("push-down: moved %s #%d below concat #%d (%zu branches)",
                           ir::OpKindName(node->kind), node->id, concat->id,
                           per_branch.size()));
  return true;
}

// aggregate(concat(a, b, ...)) -> secondary_aggregate(concat(local_agg(a), ...)).
// `secondary_ids` records combine aggregations this pass already produced so the
// rewrite does not fire on its own output and loop forever.
bool SplitAggregate(ir::Dag& dag, ir::OpNode* node, bool allow_cardinality_leak,
                    std::set<int>* secondary_ids, std::vector<std::string>* log) {
  const auto params = node->Params<ir::AggregateParams>();
  // Mean does not decompose into a single-valued local partial; keep it under MPC.
  if (params.kind == AggKind::kMean) {
    return false;
  }
  // A grouped split reveals per-party distinct-key counts (data-dependent MPC input
  // sizes); the paper requires party consent for that (§5.2).
  if (!params.group_columns.empty() && !allow_cardinality_leak) {
    return false;
  }

  ir::OpNode* concat = node->inputs[0];
  std::vector<ir::OpNode*> partials;
  partials.reserve(concat->inputs.size());
  for (ir::OpNode* branch : concat->inputs) {
    auto local = dag.AddAggregate(branch, params);
    if (!local.ok()) {
      return false;
    }
    partials.push_back(*local);
  }
  const auto new_concat = dag.AddConcat(partials);
  CONCLAVE_CHECK(new_concat.ok());

  // Secondary aggregation combines the partials: counts are summed; sums, mins and
  // maxes combine with their own kind.
  ir::AggregateParams secondary;
  secondary.group_columns = params.group_columns;
  secondary.kind = params.kind == AggKind::kCount ? AggKind::kSum : params.kind;
  secondary.agg_column = params.output_name;
  secondary.output_name = params.output_name;
  const auto combine = dag.AddAggregate(*new_concat, secondary);
  CONCLAVE_CHECK(combine.ok());
  secondary_ids->insert((*combine)->id);

  for (ir::OpNode* consumer : std::vector<ir::OpNode*>(node->outputs)) {
    dag.ReplaceInput(consumer, node, *combine);
  }
  dag.Detach(node);
  // As in PushThroughConcat: the old concat is consumer-less from here on.
  concat->retired = true;
  log->push_back(StrFormat(
      "push-down: split %s aggregation #%d into %zu local pre-aggregations + MPC "
      "combine%s",
      AggKindName(params.kind), node->id, partials.size(),
      params.group_columns.empty() ? ""
                                   : " (reveals per-party group counts; authorized)"));
  return true;
}

}  // namespace

std::vector<std::string> PushDown(ir::Dag& dag, bool allow_cardinality_leak) {
  std::vector<std::string> log;
  std::set<int> secondary_ids;
  bool changed = true;
  while (changed) {
    changed = false;
    for (ir::OpNode* node : dag.TopoOrder()) {
      if (node->inputs.size() != 1) {
        continue;
      }
      ir::OpNode* input = node->inputs[0];
      if (input->kind != ir::OpKind::kConcat || input->outputs.size() != 1) {
        continue;
      }
      if (IsDistributive(*node)) {
        if (PushThroughConcat(dag, node, &log)) {
          changed = true;
          break;  // Topo order is stale after a rewrite; restart the sweep.
        }
      } else if (node->kind == ir::OpKind::kAggregate &&
                 secondary_ids.count(node->id) == 0) {
        if (SplitAggregate(dag, node, allow_cardinality_leak, &secondary_ids, &log)) {
          changed = true;
          break;
        }
      }
    }
  }
  PropagateOwnership(dag);
  return log;
}

}  // namespace compiler
}  // namespace conclave
