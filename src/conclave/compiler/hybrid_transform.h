// Pass 5 (§5.3): replace MPC joins/aggregations with hybrid operators when the
// propagated trust sets authorize it.
//
//  * Join with both key columns' trust sets containing *all* parties -> public join.
//  * Join with intersecting (non-universal) key trust sets -> hybrid join; the STP is
//    drawn from the intersection.
//  * Grouped aggregation whose group-by columns' trust set contains the STP -> hybrid
//    aggregation.
//
// Only a single STP may exist in a Conclave execution (§3.2): the pass picks the
// lowest-numbered party eligible for the first hybrid candidate and applies hybrid
// rewrites only to operators whose trust sets include that same party.
#ifndef CONCLAVE_COMPILER_HYBRID_TRANSFORM_H_
#define CONCLAVE_COMPILER_HYBRID_TRANSFORM_H_

#include <string>
#include <vector>

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

std::vector<std::string> ApplyHybridTransforms(ir::Dag& dag, int num_parties);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_HYBRID_TRANSFORM_H_
