// Pass 2 (§5.1): propagate column trust sets through the DAG.
//
// A party is "trusted" with an intermediate column if it is entrusted with enough
// input data to compute that column in the clear. For every operator output column,
// the trust set is the intersection of the trust sets of all operand columns that
// contribute to it — both columns that feed its values and columns that decide how
// rows are combined, filtered, or reordered (join keys, group-by keys, filter and
// sort columns). Input columns start from their annotations plus the implicit members
// (the storing party; all parties for public columns).
//
// The resulting sets drive the hybrid-protocol transform: Conclave only reveals a
// column to a party if the column derives from inputs that party is authorized to
// learn (the paper's security invariant, proven as Corollary A.5).
#ifndef CONCLAVE_COMPILER_TRUST_H_
#define CONCLAVE_COMPILER_TRUST_H_

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

void PropagateTrust(ir::Dag& dag, int num_parties);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_TRUST_H_
