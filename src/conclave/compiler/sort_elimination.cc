#include "conclave/compiler/sort_elimination.h"

#include <algorithm>

#include "conclave/common/strings.h"

namespace conclave {
namespace compiler {
namespace {

// `needed` is satisfied when the relation is sorted by a column list having `needed`
// as a prefix (lexicographic order by (a, b) implies grouped-by (a)). We additionally
// accept the exact-prefix-of-sorted case only; sorted-by-(a) does not satisfy (a, b).
bool OrderSatisfies(const std::vector<std::string>& sorted_by,
                    const std::vector<std::string>& needed) {
  if (needed.empty() || sorted_by.size() < needed.size()) {
    return false;
  }
  return std::equal(needed.begin(), needed.end(), sorted_by.begin());
}

bool KeepsColumns(const Schema& schema, const std::vector<std::string>& names) {
  for (const auto& name : names) {
    if (!schema.HasColumn(name)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<std::string> EliminateSorts(ir::Dag& dag) {
  std::vector<std::string> log;
  for (ir::OpNode* node : dag.TopoOrder()) {
    const std::vector<std::string> in_order =
        node->inputs.empty() ? std::vector<std::string>{} : node->inputs[0]->sorted_by;
    node->assume_sorted = false;
    switch (node->kind) {
      case ir::OpKind::kCreate:
      case ir::OpKind::kPad:   // Appended sentinel rows break any established order.
      case ir::OpKind::kJoin:  // Overridden below for public joins.
        node->sorted_by.clear();
        break;
      case ir::OpKind::kConcat:
        // Interleaving partitions destroys order — unless this is a sorted-merge
        // concat from the sort push-up pass (§5.4).
        node->sorted_by = node->Params<ir::ConcatParams>().merge_columns;
        break;
      case ir::OpKind::kFilter:
      case ir::OpKind::kLimit:
      case ir::OpKind::kArithmetic:
      case ir::OpKind::kCollect:
        node->sorted_by = in_order;  // Order-preserving.
        break;
      case ir::OpKind::kProject: {
        node->sorted_by =
            KeepsColumns(node->schema, in_order) ? in_order : std::vector<std::string>{};
        break;
      }
      case ir::OpKind::kSortBy: {
        const auto& sort_params = node->Params<ir::SortByParams>();
        const auto& columns = sort_params.columns;
        if (sort_params.ascending && OrderSatisfies(in_order, columns)) {
          node->assume_sorted = true;
          log.push_back(StrFormat("sort-elimination: sort #%d is redundant (input "
                                  "already sorted by (%s))",
                                  node->id, StrJoin(in_order, ",").c_str()));
        }
        // Only ascending order is tracked; descending output satisfies nothing
        // downstream under the ascending-order convention.
        node->sorted_by = sort_params.ascending ? columns : std::vector<std::string>{};
        break;
      }
      case ir::OpKind::kAggregate: {
        const auto& params = node->Params<ir::AggregateParams>();
        if (!params.group_columns.empty() &&
            OrderSatisfies(in_order, params.group_columns)) {
          node->assume_sorted = true;
          log.push_back(StrFormat(
              "sort-elimination: aggregation #%d skips its oblivious sort", node->id));
        }
        // Cleartext aggregation emits key-sorted output; MPC/hybrid variants shuffle.
        if (node->exec_mode == ir::ExecMode::kLocal) {
          node->sorted_by = params.group_columns;
        } else {
          node->sorted_by.clear();
        }
        break;
      }
      case ir::OpKind::kWindow: {
        // Windows evaluate over (partition, order); an input already in that order
        // lets the secure implementations skip their oblivious sort (§5.4).
        const auto& params = node->Params<ir::WindowParams>();
        std::vector<std::string> order = params.partition_columns;
        order.push_back(params.order_column);
        if (OrderSatisfies(in_order, order)) {
          node->assume_sorted = true;
          log.push_back(StrFormat(
              "sort-elimination: window #%d skips its oblivious sort", node->id));
        }
        // All window variants emit rows sorted by (partition, order): no compaction
        // or reveal happens, so no reshuffle is needed.
        node->sorted_by = order;
        break;
      }
      case ir::OpKind::kDistinct: {
        const auto& params = node->Params<ir::DistinctParams>();
        if (OrderSatisfies(in_order, params.columns)) {
          node->assume_sorted = true;
          log.push_back(StrFormat(
              "sort-elimination: distinct #%d skips its oblivious sort", node->id));
        }
        node->sorted_by = node->exec_mode == ir::ExecMode::kLocal
                              ? params.columns
                              : std::vector<std::string>{};
        break;
      }
    }
    // Public joins sort the index relation by key in the clear, so their output is
    // key-sorted; hybrid joins end in an oblivious reshuffle.
    if (node->kind == ir::OpKind::kJoin &&
        node->hybrid == ir::HybridKind::kPublicJoin) {
      node->sorted_by = node->Params<ir::JoinParams>().left_keys;
    }
  }
  return log;
}

}  // namespace compiler
}  // namespace conclave
