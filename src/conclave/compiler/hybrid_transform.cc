#include "conclave/compiler/hybrid_transform.h"

#include "conclave/common/strings.h"

namespace conclave {
namespace compiler {
namespace {

PartySet TrustOfColumns(const Schema& schema, const std::vector<std::string>& names) {
  PartySet trust = PartySet::All(kMaxParties);
  for (const auto& name : names) {
    const auto index = schema.IndexOf(name);
    CONCLAVE_CHECK(index.ok());
    trust = trust.Intersect(schema.Column(*index).trust_set);
  }
  return trust;
}

}  // namespace

std::vector<std::string> ApplyHybridTransforms(ir::Dag& dag, int num_parties) {
  std::vector<std::string> log;
  const PartySet everyone = PartySet::All(num_parties);
  PartyId global_stp = kNoParty;  // At most one STP per execution (§3.2).

  for (ir::OpNode* node : dag.TopoOrder()) {
    if (node->exec_mode != ir::ExecMode::kMpc) {
      continue;
    }
    if (node->kind == ir::OpKind::kJoin) {
      const auto& params = node->Params<ir::JoinParams>();
      const PartySet key_trust =
          TrustOfColumns(node->inputs[0]->schema, params.left_keys)
              .Intersect(TrustOfColumns(node->inputs[1]->schema, params.right_keys))
              .Intersect(everyone);
      if (key_trust.ContainsAll(everyone)) {
        node->exec_mode = ir::ExecMode::kHybrid;
        node->hybrid = ir::HybridKind::kPublicJoin;
        node->stp = key_trust.First();  // Designated joiner.
        log.push_back(StrFormat(
            "hybrid: join #%d has public keys; using public join (joiner party %d)",
            node->id, node->stp));
        continue;
      }
      if (!key_trust.Empty()) {
        const PartyId candidate =
            (global_stp != kNoParty && key_trust.Contains(global_stp))
                ? global_stp
                : key_trust.First();
        if (global_stp != kNoParty && candidate != global_stp) {
          log.push_back(StrFormat(
              "hybrid: join #%d eligible but its trust set %s excludes the chosen "
              "STP %d; keeping it under MPC",
              node->id, key_trust.ToString().c_str(), global_stp));
          continue;
        }
        global_stp = candidate;
        node->exec_mode = ir::ExecMode::kHybrid;
        node->hybrid = ir::HybridKind::kHybridJoin;
        node->stp = candidate;
        log.push_back(StrFormat("hybrid: join #%d uses hybrid join with STP %d",
                                 node->id, candidate));
      }
    } else if (node->kind == ir::OpKind::kWindow) {
      // Window functions sort by (partition, order); an STP trusted with those
      // columns can sort in the clear, exactly as in the hybrid aggregation.
      const auto& params = node->Params<ir::WindowParams>();
      std::vector<std::string> keys = params.partition_columns;
      keys.push_back(params.order_column);
      const PartySet key_trust =
          TrustOfColumns(node->inputs[0]->schema, keys).Intersect(everyone);
      if (key_trust.Empty()) {
        continue;
      }
      const PartyId candidate =
          (global_stp != kNoParty && key_trust.Contains(global_stp))
              ? global_stp
              : key_trust.First();
      if (global_stp != kNoParty && candidate != global_stp) {
        log.push_back(StrFormat(
            "hybrid: window #%d eligible but its trust set %s excludes the chosen "
            "STP %d; keeping it under MPC",
            node->id, key_trust.ToString().c_str(), global_stp));
        continue;
      }
      global_stp = candidate;
      node->exec_mode = ir::ExecMode::kHybrid;
      node->hybrid = ir::HybridKind::kHybridWindow;
      node->stp = candidate;
      log.push_back(StrFormat("hybrid: window #%d uses hybrid window with STP %d",
                              node->id, candidate));
    } else if (node->kind == ir::OpKind::kAggregate) {
      const auto& params = node->Params<ir::AggregateParams>();
      if (params.group_columns.empty()) {
        continue;  // Global aggregates are cheap under MPC already.
      }
      const PartySet group_trust =
          TrustOfColumns(node->inputs[0]->schema, params.group_columns)
              .Intersect(everyone);
      if (group_trust.Empty()) {
        continue;
      }
      const PartyId candidate =
          (global_stp != kNoParty && group_trust.Contains(global_stp))
              ? global_stp
              : group_trust.First();
      if (global_stp != kNoParty && candidate != global_stp) {
        log.push_back(StrFormat(
            "hybrid: aggregation #%d eligible but its trust set %s excludes the "
            "chosen STP %d; keeping it under MPC",
            node->id, group_trust.ToString().c_str(), global_stp));
        continue;
      }
      global_stp = candidate;
      node->exec_mode = ir::ExecMode::kHybrid;
      node->hybrid = ir::HybridKind::kHybridAggregate;
      node->stp = candidate;
      log.push_back(
          StrFormat("hybrid: aggregation #%d uses hybrid aggregation with STP %d",
                    node->id, candidate));
    }
  }
  return log;
}

}  // namespace compiler
}  // namespace conclave
