// Stage 6b (§6): code generation.
//
// The paper's prototype emits Python/Spark scripts for cleartext jobs and
// SecreC/Obliv-C programs for MPC jobs. This repo's backends execute in-process, so
// the generated artifacts are faithful, human-readable program listings — one per
// job — in the style of the corresponding backend language. They document exactly
// what each party runs and are asserted on by tests (e.g., that a pushed-down filter
// appears in a party-local script, not the MPC program).
#ifndef CONCLAVE_COMPILER_CODEGEN_H_
#define CONCLAVE_COMPILER_CODEGEN_H_

#include <string>

#include "conclave/compiler/partition.h"
#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

// Which MPC framework MPC jobs are generated for.
enum class MpcBackendKind { kSharemind, kOblivC };

const char* MpcBackendName(MpcBackendKind kind);

// One listing for the entire plan (all jobs, annotated).
std::string GenerateCode(const ExecutionPlan& plan, MpcBackendKind mpc_backend,
                         bool use_spark);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_CODEGEN_H_
