#include "conclave/compiler/codegen.h"

#include "conclave/common/strings.h"

namespace conclave {
namespace compiler {
namespace {

std::string Ref(const ir::OpNode* node) { return StrFormat("rel_%d", node->id); }

std::string FilterExpr(const ir::FilterParams& p) {
  if (p.rhs_is_column) {
    return StrFormat("%s %s %s", p.column.c_str(), CompareOpName(p.op),
                     p.rhs_column.c_str());
  }
  return StrFormat("%s %s %lld", p.column.c_str(), CompareOpName(p.op),
                   static_cast<long long>(p.literal));
}

std::string ArithExpr(const ir::ArithmeticParams& p) {
  const std::string rhs =
      p.rhs_is_column ? p.rhs_column : std::to_string(p.literal);
  if (p.kind == ArithKind::kDiv && p.scale != 1) {
    return StrFormat("(%s * %lld) / %s", p.lhs_column.c_str(),
                     static_cast<long long>(p.scale), rhs.c_str());
  }
  return StrFormat("%s %s %s", p.lhs_column.c_str(), ArithKindName(p.kind),
                   rhs.c_str());
}

// Python/Spark-style line for a cleartext node.
std::string LocalLine(const ir::OpNode* node, bool use_spark) {
  const char* frame = use_spark ? "spark" : "py";
  switch (node->kind) {
    case ir::OpKind::kCreate: {
      const auto& p = node->Params<ir::CreateParams>();
      return StrFormat("%s = %s.read_csv('%s.csv')", Ref(node).c_str(), frame,
                       p.name.c_str());
    }
    case ir::OpKind::kConcat: {
      std::vector<std::string> ins;
      for (const ir::OpNode* input : node->inputs) {
        ins.push_back(Ref(input));
      }
      return StrFormat("%s = %s.union([%s])", Ref(node).c_str(), frame,
                       StrJoin(ins, ", ").c_str());
    }
    case ir::OpKind::kProject: {
      const auto& p = node->Params<ir::ProjectParams>();
      return StrFormat("%s = %s.select(['%s'])", Ref(node).c_str(),
                       Ref(node->inputs[0]).c_str(),
                       StrJoin(p.columns, "', '").c_str());
    }
    case ir::OpKind::kFilter:
      return StrFormat("%s = %s.where(\"%s\")", Ref(node).c_str(),
                       Ref(node->inputs[0]).c_str(),
                       FilterExpr(node->Params<ir::FilterParams>()).c_str());
    case ir::OpKind::kJoin: {
      const auto& p = node->Params<ir::JoinParams>();
      return StrFormat("%s = %s.join(%s, left_on=['%s'], right_on=['%s'])",
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       Ref(node->inputs[1]).c_str(),
                       StrJoin(p.left_keys, "', '").c_str(),
                       StrJoin(p.right_keys, "', '").c_str());
    }
    case ir::OpKind::kAggregate: {
      const auto& p = node->Params<ir::AggregateParams>();
      return StrFormat("%s = %s.groupby(['%s']).%s('%s').alias('%s')",
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       StrJoin(p.group_columns, "', '").c_str(),
                       AggKindName(p.kind), p.agg_column.c_str(),
                       p.output_name.c_str());
    }
    case ir::OpKind::kArithmetic: {
      const auto& p = node->Params<ir::ArithmeticParams>();
      return StrFormat("%s = %s.with_column('%s', %s)", Ref(node).c_str(),
                       Ref(node->inputs[0]).c_str(), p.output_name.c_str(),
                       ArithExpr(p).c_str());
    }
    case ir::OpKind::kWindow: {
      const auto& p = node->Params<ir::WindowParams>();
      return StrFormat(
          "%s = %s.with_column('%s', %s('%s') over (partition ['%s'] order '%s'))",
          Ref(node).c_str(), Ref(node->inputs[0]).c_str(), p.output_name.c_str(),
          WindowFnName(p.fn), p.value_column.c_str(),
          StrJoin(p.partition_columns, "', '").c_str(), p.order_column.c_str());
    }
    case ir::OpKind::kSortBy: {
      const auto& p = node->Params<ir::SortByParams>();
      return StrFormat("%s = %s.sort_values(['%s'])", Ref(node).c_str(),
                       Ref(node->inputs[0]).c_str(), StrJoin(p.columns, "', '").c_str());
    }
    case ir::OpKind::kDistinct: {
      const auto& p = node->Params<ir::DistinctParams>();
      return StrFormat("%s = %s[['%s']].drop_duplicates()", Ref(node).c_str(),
                       Ref(node->inputs[0]).c_str(), StrJoin(p.columns, "', '").c_str());
    }
    case ir::OpKind::kPad:
      return StrFormat("%s = %s.pad_to_power_of_two(sentinels)", Ref(node).c_str(),
                       Ref(node->inputs[0]).c_str());
    case ir::OpKind::kLimit:
      return StrFormat("%s = %s.head(%lld)", Ref(node).c_str(),
                       Ref(node->inputs[0]).c_str(),
                       static_cast<long long>(node->Params<ir::LimitParams>().count));
    case ir::OpKind::kCollect: {
      const auto& p = node->Params<ir::CollectParams>();
      return StrFormat("%s.write_csv('%s.csv')  # recipients %s",
                       Ref(node->inputs[0]).c_str(), p.name.c_str(),
                       p.recipients.ToString().c_str());
    }
  }
  return "# ?";
}

// SecreC-style (Sharemind) or Obliv-C-style line for an MPC node.
std::string MpcLine(const ir::OpNode* node, MpcBackendKind backend) {
  const bool secrec = backend == MpcBackendKind::kSharemind;
  const char* domain = secrec ? "pd_shared3p" : "obliv";
  const char* sorted_note = node->assume_sorted ? "  // sort elided (§5.4)" : "";
  switch (node->kind) {
    case ir::OpKind::kConcat:
      return StrFormat("%s table %s = mpc_concat(...);", domain, Ref(node).c_str());
    case ir::OpKind::kProject:
      return StrFormat("%s table %s = mpc_project(%s, {'%s'});", domain,
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       StrJoin(node->Params<ir::ProjectParams>().columns, "', '")
                           .c_str());
    case ir::OpKind::kFilter:
      return StrFormat("%s table %s = oblivious_filter(%s, \"%s\");", domain,
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       FilterExpr(node->Params<ir::FilterParams>()).c_str());
    case ir::OpKind::kJoin: {
      const auto& p = node->Params<ir::JoinParams>();
      return StrFormat("%s table %s = oblivious_join(%s, %s, '%s', '%s');  // O(n*m)",
                       domain, Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       Ref(node->inputs[1]).c_str(),
                       StrJoin(p.left_keys, "','").c_str(),
                       StrJoin(p.right_keys, "','").c_str());
    }
    case ir::OpKind::kAggregate: {
      const auto& p = node->Params<ir::AggregateParams>();
      return StrFormat("%s table %s = oblivious_agg_%s(%s, keys={'%s'});%s", domain,
                       Ref(node).c_str(), AggKindName(p.kind),
                       Ref(node->inputs[0]).c_str(),
                       StrJoin(p.group_columns, "', '").c_str(), sorted_note);
    }
    case ir::OpKind::kArithmetic: {
      const auto& p = node->Params<ir::ArithmeticParams>();
      return StrFormat("%s table %s = mpc_map(%s, '%s' = %s);", domain,
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       p.output_name.c_str(), ArithExpr(p).c_str());
    }
    case ir::OpKind::kWindow: {
      const auto& p = node->Params<ir::WindowParams>();
      return StrFormat(
          "%s table %s = oblivious_window_%s(%s, partition={'%s'}, order='%s');%s",
          domain, Ref(node).c_str(), WindowFnName(p.fn),
          Ref(node->inputs[0]).c_str(),
          StrJoin(p.partition_columns, "', '").c_str(), p.order_column.c_str(),
          sorted_note);
    }
    case ir::OpKind::kSortBy:
      return StrFormat("%s table %s = oblivious_sort(%s, {'%s'});%s", domain,
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       StrJoin(node->Params<ir::SortByParams>().columns, "', '")
                           .c_str(),
                       sorted_note);
    case ir::OpKind::kDistinct:
      return StrFormat("%s table %s = oblivious_distinct(%s, {'%s'});%s", domain,
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       StrJoin(node->Params<ir::DistinctParams>().columns, "', '")
                           .c_str(),
                       sorted_note);
    case ir::OpKind::kLimit:
      return StrFormat("%s table %s = mpc_take(%s, %lld);", domain, Ref(node).c_str(),
                       Ref(node->inputs[0]).c_str(),
                       static_cast<long long>(node->Params<ir::LimitParams>().count));
    default:
      return StrFormat("%s table %s = /* %s */;", domain, Ref(node).c_str(),
                       ir::OpKindName(node->kind));
  }
}

std::string HybridListing(const ir::OpNode* node) {
  std::string out;
  switch (node->hybrid) {
    case ir::HybridKind::kHybridJoin:
      out += StrFormat("  %s = hybrid_join(%s, %s, stp=party_%d):\n",
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       Ref(node->inputs[1]).c_str(), node->stp);
      out += "    mpc:  shuffle(left); shuffle(right)\n";
      out += StrFormat("    mpc:  reveal key columns to party_%d\n", node->stp);
      out += "    stp:  enumerate; cleartext join; project row indexes\n";
      out += "    stp:  secret-share index relations back into MPC\n";
      out += "    mpc:  oblivious_select(left); oblivious_select(right); reshuffle\n";
      break;
    case ir::HybridKind::kPublicJoin:
      out += StrFormat("  %s = public_join(%s, %s, joiner=party_%d):\n",
                       Ref(node).c_str(), Ref(node->inputs[0]).c_str(),
                       Ref(node->inputs[1]).c_str(), node->stp);
      out += "    all:  send public key columns to the joiner\n";
      out += "    join: cleartext join, sorted by key; broadcast index relation\n";
      out += "    all:  assemble joined result locally\n";
      break;
    case ir::HybridKind::kHybridAggregate: {
      const auto& p = node->Params<ir::AggregateParams>();
      out += StrFormat("  %s = hybrid_agg_%s(%s, keys={'%s'}, stp=party_%d):\n",
                       Ref(node).c_str(), AggKindName(p.kind),
                       Ref(node->inputs[0]).c_str(),
                       StrJoin(p.group_columns, "', '").c_str(), node->stp);
      out += "    mpc:  shuffle; reveal group-by column to the STP\n";
      out += "    stp:  enumerate + cleartext sort; equality flags\n";
      out += "    stp:  send ordering in the clear; secret-share flags\n";
      out += "    mpc:  reorder; flag-driven oblivious accumulate; compact\n";
      break;
    }
    case ir::HybridKind::kHybridWindow: {
      const auto& p = node->Params<ir::WindowParams>();
      out += StrFormat(
          "  %s = hybrid_window_%s(%s, partition={'%s'}, order='%s', stp=party_%d):\n",
          Ref(node).c_str(), WindowFnName(p.fn), Ref(node->inputs[0]).c_str(),
          StrJoin(p.partition_columns, "', '").c_str(), p.order_column.c_str(),
          node->stp);
      out += "    mpc:  shuffle; reveal partition+order columns to the STP\n";
      out += "    stp:  enumerate + cleartext sort; same-partition flags\n";
      out += "    stp:  send ordering in the clear; secret-share flags\n";
      out += "    mpc:  reorder; flag-gated window scan (no compaction)\n";
      break;
    }
    case ir::HybridKind::kNone:
      break;
  }
  return out;
}

}  // namespace

const char* MpcBackendName(MpcBackendKind kind) {
  switch (kind) {
    case MpcBackendKind::kSharemind:
      return "sharemind";
    case MpcBackendKind::kOblivC:
      return "obliv-c";
  }
  return "?";
}

std::string GenerateCode(const ExecutionPlan& plan, MpcBackendKind mpc_backend,
                         bool use_spark) {
  std::string out;
  for (const Job& job : plan.jobs) {
    switch (job.kind) {
      case JobKind::kLocal:
        out += StrFormat("# --- job %d: local %s at party %d ---\n", job.id,
                         use_spark ? "spark" : "python", job.party);
        for (const ir::OpNode* node : job.nodes) {
          out += "  " + LocalLine(node, use_spark) + "\n";
        }
        break;
      case JobKind::kMpc:
        out += StrFormat("# --- job %d: %s MPC ---\n", job.id,
                         MpcBackendName(mpc_backend));
        for (const ir::OpNode* node : job.nodes) {
          out += "  " + MpcLine(node, mpc_backend) + "\n";
        }
        break;
      case JobKind::kHybrid:
        out += StrFormat("# --- job %d: hybrid protocol ---\n", job.id);
        for (const ir::OpNode* node : job.nodes) {
          out += HybridListing(node);
        }
        break;
    }
  }
  return out;
}

}  // namespace compiler
}  // namespace conclave
