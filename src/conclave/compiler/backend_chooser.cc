#include "conclave/compiler/backend_chooser.h"

#include <cmath>
#include <limits>

#include "conclave/common/strings.h"
#include "conclave/mpc/garbled/gc_cost.h"

namespace conclave {
namespace compiler {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

double Log2Rounds(double rows) {
  return rows <= 1 ? 0.0 : std::ceil(std::log2(rows));
}

// Batcher sorting-network compare-exchange count, continuous approximation
// (n/4 log^2 n) — the analytic gc_cost::BatcherCompareExchanges needs an integer n.
double BatcherExchanges(double rows) {
  if (rows <= 1) {
    return 0;
  }
  const double log_n = Log2Rounds(rows);
  return rows * log_n * (log_n + 1) / 4;
}

// Secret-sharing (Sharemind-like) virtual seconds for one MPC-resident operator.
double SharemindSeconds(const ir::OpNode& node, double rows, double input_rows,
                        double right_rows, const CostModel& m) {
  const double cols = node.schema.NumColumns();
  const double shuffle = input_rows * cols * m.ss_shuffle_op_seconds;
  switch (node.kind) {
    case ir::OpKind::kFilter:
      return input_rows * m.ss_equality_seconds + shuffle;
    case ir::OpKind::kJoin: {
      if (node.hybrid == ir::HybridKind::kHybridJoin ||
          node.hybrid == ir::HybridKind::kPublicJoin) {
        const double n = input_rows + right_rows + rows;
        return n * Log2Rounds(n) * m.ss_select_op_seconds + shuffle;
      }
      return input_rows * right_rows * m.ss_equality_seconds + shuffle;
    }
    case ir::OpKind::kAggregate: {
      const auto& params = node.Params<ir::AggregateParams>();
      if (params.group_columns.empty()) {
        return input_rows * m.ss_mult_seconds;
      }
      const double scan =
          input_rows * Log2Rounds(input_rows) * m.ss_mult_seconds;
      if (node.hybrid == ir::HybridKind::kHybridAggregate) {
        return shuffle * Log2Rounds(input_rows) + scan;
      }
      return BatcherExchanges(input_rows) * m.ss_compare_seconds + scan;
    }
    case ir::OpKind::kWindow: {
      const double scan =
          input_rows * Log2Rounds(input_rows) * m.ss_mult_seconds;
      if (node.hybrid == ir::HybridKind::kHybridWindow) {
        return shuffle * Log2Rounds(input_rows) + scan;
      }
      const double sort =
          node.assume_sorted ? 0 : BatcherExchanges(input_rows) * m.ss_compare_seconds;
      return sort + scan;
    }
    case ir::OpKind::kSortBy:
      return node.assume_sorted
                 ? 0
                 : BatcherExchanges(input_rows) * m.ss_compare_seconds;
    case ir::OpKind::kDistinct: {
      const double sort =
          node.assume_sorted ? 0 : BatcherExchanges(input_rows) * m.ss_compare_seconds;
      return sort + input_rows * m.ss_equality_seconds + shuffle;
    }
    case ir::OpKind::kArithmetic: {
      const auto& params = node.Params<ir::ArithmeticParams>();
      if (params.kind == ArithKind::kDiv) {
        return input_rows * m.ss_division_seconds;
      }
      if (params.kind == ArithKind::kMul && params.rhs_is_column) {
        return input_rows * m.ss_mult_seconds;
      }
      return 0;
    }
    default:
      return 0;  // Concat/project/limit are share-local.
  }
}

// Garbled-circuit (Obliv-C-like) virtual seconds; kInfeasible on simulated OOM or an
// operator the GC backend cannot run (hybrid protocols).
double OblivcSeconds(const ir::OpNode& node, double rows, double input_rows,
                     double right_rows, const CostModel& m) {
  if (node.hybrid != ir::HybridKind::kNone) {
    return kInfeasible;
  }
  const auto urows = static_cast<uint64_t>(input_rows);
  const auto ucols = static_cast<uint64_t>(node.schema.NumColumns());
  const auto in_cols = static_cast<uint64_t>(
      node.inputs.empty() ? 0 : node.inputs[0]->schema.NumColumns());
  gc::GcOpCost cost;
  switch (node.kind) {
    case ir::OpKind::kFilter:
      cost = gc::LinearPassCost(m, urows, in_cols, ucols, gc::kAndPerEqual);
      break;
    case ir::OpKind::kJoin: {
      const auto& params = node.Params<ir::JoinParams>();
      const ir::OpNode* left = node.inputs[0];
      const ir::OpNode* right = node.inputs[1];
      cost = gc::JoinCost(m, static_cast<uint64_t>(input_rows),
                          static_cast<uint64_t>(right_rows),
                          static_cast<uint64_t>(left->schema.NumColumns()),
                          static_cast<uint64_t>(right->schema.NumColumns()),
                          params.left_keys.size());
      break;
    }
    case ir::OpKind::kAggregate: {
      const auto& params = node.Params<ir::AggregateParams>();
      cost = gc::AggregateCost(m, urows, ucols,
                               std::max<uint64_t>(params.group_columns.size(), 1),
                               node.assume_sorted);
      break;
    }
    case ir::OpKind::kWindow: {
      const auto& params = node.Params<ir::WindowParams>();
      cost = gc::WindowCost(m, urows, ucols, params.partition_columns.size(),
                            node.assume_sorted);
      break;
    }
    case ir::OpKind::kSortBy:
      if (!node.assume_sorted) {
        cost = gc::SortCost(m, urows, ucols,
                            node.Params<ir::SortByParams>().columns.size());
      }
      break;
    case ir::OpKind::kDistinct:
      cost = gc::AggregateCost(m, urows, ucols,
                               node.Params<ir::DistinctParams>().columns.size(),
                               node.assume_sorted);
      break;
    case ir::OpKind::kArithmetic: {
      const auto& params = node.Params<ir::ArithmeticParams>();
      const uint64_t per_row = params.kind == ArithKind::kMul ||
                                       params.kind == ArithKind::kDiv
                                   ? gc::kAndPerMul
                                   : gc::kAndPerAdd;
      cost = gc::LinearPassCost(m, urows, in_cols, ucols, per_row);
      break;
    }
    case ir::OpKind::kConcat:
      // All branches contribute: cost the pass over the combined output rows.
      cost = gc::LinearPassCost(m, static_cast<uint64_t>(rows), ucols, ucols, 0);
      break;
    case ir::OpKind::kProject:
    case ir::OpKind::kLimit:
      cost = gc::LinearPassCost(m, urows, in_cols, ucols, 0);
      break;
    default:
      return 0;
  }
  // Plan conservatively: per-op estimates miss resident input labels and engine
  // bookkeeping, so leave 30% headroom before calling the GC engine feasible.
  if (cost.live_state_bytes > m.gc_memory_limit_bytes / 10 * 7) {
    return kInfeasible;
  }
  return static_cast<double>(cost.and_gates) * m.gc_seconds_per_and_gate;
}

}  // namespace

BackendChoice ChooseMpcBackend(const ir::Dag& dag, const CostModel& model,
                               int num_parties,
                               const CardinalityOptions& cardinality) {
  const auto rows = EstimateCardinalities(dag, cardinality);
  BackendChoice choice;
  // The Obliv-C backend is a two-party protocol; a third contributing party forces
  // secret sharing (the paper runs Sharemind with three parties, Obliv-C with two).
  const bool gc_feasible_parties = num_parties <= 2;

  for (const ir::OpNode* node : dag.TopoOrder()) {
    if (node->exec_mode == ir::ExecMode::kLocal ||
        node->kind == ir::OpKind::kCreate || node->kind == ir::OpKind::kCollect) {
      continue;
    }
    const double out_rows = rows.at(node->id);
    const double in_rows =
        node->inputs.empty() ? 0 : rows.at(node->inputs[0]->id);
    const double right_rows =
        node->inputs.size() > 1 ? rows.at(node->inputs[1]->id) : 0;
    // Boundary ingest: inputs crossing from local cleartext into the MPC.
    for (const ir::OpNode* input : node->inputs) {
      if (input->exec_mode == ir::ExecMode::kLocal) {
        const double ingest_rows = rows.at(input->id);
        choice.sharemind_seconds += ingest_rows * model.ss_record_io_seconds;
        // GC input transfer: wire labels per bit.
        choice.oblivc_seconds +=
            ingest_rows * static_cast<double>(input->schema.NumColumns()) * 64 *
            2 * static_cast<double>(model.gc_bytes_per_and_gate) /
            model.bandwidth_bytes_per_second;
      }
    }
    choice.sharemind_seconds +=
        SharemindSeconds(*node, out_rows, in_rows, right_rows, model);
    choice.oblivc_seconds +=
        OblivcSeconds(*node, out_rows, in_rows, right_rows, model);
  }

  if (!gc_feasible_parties) {
    choice.oblivc_seconds = kInfeasible;
  }
  choice.chosen = choice.oblivc_seconds < choice.sharemind_seconds
                      ? MpcBackendKind::kOblivC
                      : MpcBackendKind::kSharemind;
  choice.rationale = StrFormat(
      "backend-chooser: est. sharemind %.3fs vs obliv-c %s -> %s",
      choice.sharemind_seconds,
      std::isinf(choice.oblivc_seconds)
          ? "infeasible"
          : StrFormat("%.3fs", choice.oblivc_seconds).c_str(),
      MpcBackendName(choice.chosen));
  return choice;
}

}  // namespace compiler
}  // namespace conclave
