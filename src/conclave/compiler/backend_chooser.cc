#include "conclave/compiler/backend_chooser.h"

#include <cmath>
#include <utility>

#include "conclave/common/strings.h"

namespace conclave {
namespace compiler {

BackendChoice ChooseMpcBackend(const ir::Dag& dag, const CostModel& model,
                               int num_parties,
                               const CardinalityOptions& cardinality) {
  BackendChoice choice;
  choice.report = EstimatePlanCost(dag, model, num_parties, cardinality);
  choice.sharemind_seconds = choice.report.sharemind_seconds;
  choice.oblivc_seconds = choice.report.oblivc_seconds;
  choice.chosen = choice.report.cheapest;
  choice.rationale = StrFormat(
      "backend-chooser: est. sharemind %s vs obliv-c %s -> %s",
      FormatPlanSeconds(choice.sharemind_seconds).c_str(),
      FormatPlanSeconds(choice.oblivc_seconds).c_str(),
      MpcBackendName(choice.chosen));
  return choice;
}

}  // namespace compiler
}  // namespace conclave
