#include "conclave/compiler/partition.h"

#include <algorithm>
#include <unordered_map>

#include "conclave/common/strings.h"

namespace conclave {
namespace compiler {
namespace {

struct Placement {
  JobKind kind;
  PartyId party;  // Only for kLocal.

  bool operator==(const Placement& other) const {
    return kind == other.kind && (kind != JobKind::kLocal || party == other.party);
  }
};

Placement PlacementOf(const ir::OpNode& node) {
  switch (node.exec_mode) {
    case ir::ExecMode::kLocal:
      return {JobKind::kLocal, node.exec_party};
    case ir::ExecMode::kHybrid:
      return {JobKind::kHybrid, kNoParty};
    case ir::ExecMode::kMpc:
      return {JobKind::kMpc, kNoParty};
  }
  return {JobKind::kMpc, kNoParty};
}

// Minimal union-find over node ids.
class UnionFind {
 public:
  int Find(int x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    int root = x;
    while (parent_[root] != root) {
      root = parent_[root];
    }
    while (parent_[x] != root) {
      int next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }
  void Merge(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::unordered_map<int, int> parent_;
};

}  // namespace

const char* JobKindName(JobKind kind) {
  switch (kind) {
    case JobKind::kLocal:
      return "local";
    case JobKind::kMpc:
      return "mpc";
    case JobKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

int ExecutionPlan::CountJobs(JobKind kind) const {
  int count = 0;
  for (const Job& job : jobs) {
    if (job.kind == kind) {
      ++count;
    }
  }
  return count;
}

std::string ExecutionPlan::Summary() const {
  std::string out = StrFormat("%zu jobs: %d local, %d mpc, %d hybrid\n", jobs.size(),
                              CountJobs(JobKind::kLocal), CountJobs(JobKind::kMpc),
                              CountJobs(JobKind::kHybrid));
  for (const Job& job : jobs) {
    std::vector<std::string> ids;
    ids.reserve(job.nodes.size());
    for (const ir::OpNode* node : job.nodes) {
      ids.push_back(StrFormat("#%d:%s", node->id, ir::OpKindName(node->kind)));
    }
    out += StrFormat("  job %d [%s", job.id, JobKindName(job.kind));
    if (job.kind == JobKind::kLocal) {
      out += StrFormat("@%d", job.party);
    }
    if (job.kind == JobKind::kHybrid) {
      out += StrFormat(",%s,stp=%d", ir::HybridKindName(job.hybrid), job.stp);
    }
    out += "] " + StrJoin(ids, " ") + "\n";
  }
  return out;
}

ExecutionPlan PartitionDag(const ir::Dag& dag) {
  const std::vector<ir::OpNode*> order = dag.TopoOrder();
  UnionFind groups;
  for (ir::OpNode* node : order) {
    const Placement mine = PlacementOf(*node);
    if (mine.kind == JobKind::kHybrid) {
      continue;  // Hybrid nodes stay singletons.
    }
    for (ir::OpNode* input : node->inputs) {
      if (PlacementOf(*input) == mine &&
          PlacementOf(*input).kind != JobKind::kHybrid) {
        groups.Merge(node->id, input->id);
      }
    }
  }

  ExecutionPlan plan;
  std::unordered_map<int, int> root_to_job;
  for (ir::OpNode* node : order) {
    const Placement mine = PlacementOf(*node);
    const int root =
        mine.kind == JobKind::kHybrid ? -node->id - 1 : groups.Find(node->id);
    auto it = root_to_job.find(root);
    if (it == root_to_job.end()) {
      Job job;
      job.id = static_cast<int>(plan.jobs.size());
      job.kind = mine.kind;
      job.party = mine.party;
      if (mine.kind == JobKind::kHybrid) {
        job.hybrid = node->hybrid;
        job.stp = node->stp;
      }
      plan.jobs.push_back(std::move(job));
      it = root_to_job.emplace(root, plan.jobs.back().id).first;
    }
    plan.jobs[static_cast<size_t>(it->second)].nodes.push_back(node);
  }
  return plan;
}

int ChooseShardCount(const ExecutionPlan& plan, const CostModel& model,
                     int pool_parallelism, int64_t total_input_rows) {
  if (plan.CountJobs(JobKind::kLocal) == 0 || total_input_rows <= 1 ||
      pool_parallelism <= 1) {
    return 1;
  }
  // Price the cleartext portion the way the dispatcher will charge it (sequential
  // scan pricing: the conservative lower bound on per-record local work).
  const double scan_seconds = model.CleartextScanSeconds(
      static_cast<uint64_t>(total_input_rows), /*use_spark=*/false);
  if (scan_seconds < kMinShardedScanSeconds) {
    return 1;
  }
  const int64_t cap =
      std::min<int64_t>(std::min(pool_parallelism, kMaxAutoShards),
                        total_input_rows);
  return static_cast<int>(std::max<int64_t>(1, cap));
}

}  // namespace compiler
}  // namespace conclave
