#include "conclave/compiler/plan_cost.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "conclave/common/env.h"
#include "conclave/common/strings.h"
#include "conclave/mpc/garbled/gc_cost.h"
#include "conclave/mpc/oblivious.h"
#include "conclave/mpc/protocols.h"
#include "conclave/relational/expr.h"
#include "conclave/relational/ops.h"
#include "conclave/relational/spill.h"

namespace conclave {
namespace compiler {
namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

int64_t ToRows(double estimate) {
  // Clamp before llround: above 2^62 the conversion is UB, and the structural
  // loops (Batcher shapes, scans) only need "absurdly large", not exact.
  return estimate <= 0 ? 0 : std::llround(std::min(estimate, 0x1p62));
}

// Exact Batcher shapes are walked in O(n log n) plan time and counted in uint64.
// Above this cap (2M rows) fall back to the continuous n/4·ceil(log2 n)² form in
// doubles: the relative error is negligible there (exactness matters at small and
// non-power-of-two n), the walk stays bounded for absurd cardinality estimates,
// and nothing overflows.
constexpr int64_t kMaxExactShapeRows = int64_t{1} << 21;

// Double-valued network shape: huge estimated relations produce exchange counts
// beyond uint64, and cost math is double anyway.
struct NetworkShape {
  double exchanges = 0;
  double layers = 0;
};

uint64_t CeilLog2(int64_t n) {
  uint64_t log = 0;
  while ((int64_t{1} << log) < n) {
    ++log;
  }
  return log;
}

NetworkShape ApproxSortShape(int64_t n) {
  const double log = static_cast<double>(CeilLog2(n));
  NetworkShape shape;
  shape.exchanges = static_cast<double>(n) / 4 * log * (log + 1);
  shape.layers = log * (log + 1) / 2;
  return shape;
}

// Accumulates one backend's price for one operator; the first working-set violation
// turns the whole operator infeasible (mirroring the engines' StatusOr returns).
struct OpAccount {
  double seconds = 0;
  bool feasible = true;
  std::string reason;

  void Infeasible(std::string why) {
    if (feasible) {
      feasible = false;
      reason = std::move(why);
    }
  }
  BackendOpCost Finish() const {
    BackendOpCost cost;
    cost.feasible = feasible;
    cost.seconds = feasible ? seconds : kInfeasible;
    cost.infeasible_reason = reason;
    return cost;
  }
};

// Prices secret-sharing work with the engines' own calibration rows
// (CostModel::SsChargeFor) and protocol structure. Every method mirrors one charge
// site in mpc/secret_share_engine.cc, mpc/oblivious.cc, mpc/protocols.cc, or
// hybrid/*.cc — when one of those changes, change the mirror here (plan_cost tests
// compare estimates against metered runs and catch drift).
class SsCoster {
 public:
  SsCoster(const CostModel& model, int num_parties)
      : model_(model), num_parties_(num_parties) {}

  double Lat(uint64_t rounds) const {
    return model_.SecondsForRounds(rounds);
  }
  // One batched primitive invocation over `elements`.
  double Batch(SsPrimitive primitive, double elements) const {
    const SsCharge charge = model_.SsChargeFor(primitive);
    return elements * charge.seconds + Lat(charge.rounds);
  }
  double Mul(double n) const { return Batch(SsPrimitive::kMult, n); }
  double Compare(CompareOp op, double n) const {
    const bool eq = op == CompareOp::kEq || op == CompareOp::kNe;
    return Batch(eq ? SsPrimitive::kEquality : SsPrimitive::kCompare, n);
  }
  double Div(double n) const { return Batch(SsPrimitive::kDivision, n); }
  double Open(double) const { return Lat(1); }
  double Ingest(double rows) const {
    return Batch(SsPrimitive::kRecordIngest, rows);
  }
  double Shuffle(double rows, double cols) const {
    return Batch(SsPrimitive::kShuffleCell, rows * cols);
  }
  double ShuffleRevealCompact(double rows, double cols) const {
    return Shuffle(rows, cols) + Open(rows);
  }
  double Select(int64_t n, int64_t m) const {
    // Clamp before summing: two 2^62-clamped estimates would overflow int64 in
    // ObliviousSelectRounds. The log term saturates anyway.
    constexpr int64_t kMax = int64_t{1} << 60;
    const uint64_t log_term =
        ObliviousSelectRounds(std::min(n, kMax), std::min(m, kMax));
    const double ops = (static_cast<double>(n) + static_cast<double>(m)) *
                       static_cast<double>(log_term);
    return ops * model_.SsChargeFor(SsPrimitive::kSelectOp).seconds +
           Lat(log_term);
  }
  // Cleartext work at the STP / joiner, in doubles (estimated row counts can
  // exceed uint64 when summed).
  double Python(double records) const {
    return records / model_.python_records_per_second;
  }
  // One point-to-point transfer (SimNetwork::Send charges bandwidth time).
  // Takes doubles: estimated byte counts can exceed uint64.
  double SendBytes(double bytes) const {
    return bytes / model_.bandwidth_bytes_per_second;
  }

  // AdjacentEqualFlags: one equality batch per key column over n-1 adjacent pairs,
  // folded with k-1 multiplications.
  double AdjacentEqualFlags(int64_t n, size_t keys) const {
    if (n <= 0 || keys == 0) {
      return 0;
    }
    const double pairs = static_cast<double>(n - 1);
    double seconds = static_cast<double>(keys) * Compare(CompareOp::kEq, pairs);
    if (keys > 1) {
      seconds += static_cast<double>(keys - 1) * Mul(pairs);
    }
    return seconds;
  }

  // Hillis-Steele segmented scan over n rows: log-depth passes of muxes (sum/count)
  // plus an ordered comparison for min/max.
  double SegmentedScan(int64_t n, AggKind kind) const {
    double seconds = 0;
    for (int64_t d = 1; d < n; d *= 2) {
      const double len = static_cast<double>(n - d);
      if (kind == AggKind::kMin || kind == AggKind::kMax) {
        seconds += Compare(CompareOp::kLt, len) + 3 * Mul(len);
      } else {
        seconds += 2 * Mul(len);
      }
    }
    return seconds;
  }

  // One Batcher compare-exchange network (sort or merge pass) over a relation of
  // `cols` columns with `keys` sort keys: per exchange, the RowGreater comparison
  // ladder plus one mux multiplication per column; per layer, the corresponding
  // batched-invocation rounds.
  double BatcherNetwork(const NetworkShape& shape, size_t cols,
                        size_t keys) const {
    if (shape.exchanges == 0) {
      return 0;
    }
    const double k = static_cast<double>(keys);
    const double eq_batches = keys > 1 ? k - 1 : 0;
    const double ladder_muls =
        (keys > 1 ? k - 1 : 0) + (keys > 2 ? k - 2 : 0);
    const double muls = ladder_muls + static_cast<double>(cols);
    const SsCharge cmp = model_.SsChargeFor(SsPrimitive::kCompare);
    const SsCharge eq = model_.SsChargeFor(SsPrimitive::kEquality);
    const SsCharge mul = model_.SsChargeFor(SsPrimitive::kMult);
    double seconds = shape.exchanges * (k * cmp.seconds +
                                        eq_batches * eq.seconds +
                                        muls * mul.seconds);
    seconds += shape.layers *
               Lat(static_cast<uint64_t>(k) * cmp.rounds +
                   static_cast<uint64_t>(eq_batches) * eq.rounds +
                   static_cast<uint64_t>(muls) * mul.rounds);
    return seconds;
  }

  double ObliviousSort(int64_t n, size_t cols, size_t keys) const {
    return BatcherNetwork(SortShape(n), cols, keys);
  }

  const NetworkShape& SortShape(int64_t n) const {
    auto it = sort_shapes_.find(n);
    if (it == sort_shapes_.end()) {
      NetworkShape shape;
      if (n <= kMaxExactShapeRows) {
        const gc::BatcherNetworkShape exact =
            gc::BatcherSortShape(static_cast<uint64_t>(n));
        shape.exchanges = static_cast<double>(exact.exchanges);
        shape.layers = static_cast<double>(exact.layers);
      } else {
        shape = ApproxSortShape(n);
      }
      it = sort_shapes_.emplace(n, shape).first;
    }
    return it->second;
  }

  NetworkShape MergeShape(int64_t run, int64_t total) const {
    if (total <= kMaxExactShapeRows) {
      const gc::BatcherNetworkShape exact = gc::BatcherMergeShape(
          static_cast<uint64_t>(run), static_cast<uint64_t>(total));
      return {static_cast<double>(exact.exchanges),
              static_cast<double>(exact.layers)};
    }
    // One merge pass: ~log2(run)+1 layers of ~total/2 comparators each.
    const double layers = static_cast<double>(CeilLog2(run)) + 1;
    return {static_cast<double>(total) / 2 * layers, layers};
  }

  // mpc::CheckWorkingSet mirror; false = the Sharemind VM would OOM.
  bool FitsWorkingSet(double live_cells) const {
    return live_cells * static_cast<double>(model_.ss_bytes_per_resident_cell) <=
           static_cast<double>(model_.ss_memory_limit_bytes);
  }
  void CheckWorkingSet(OpAccount& account, double live_cells,
                       const char* what) const {
    if (!FitsWorkingSet(live_cells)) {
      account.Infeasible(StrFormat("sharemind VM OOM (%s)", what));
    }
  }

  int parties() const { return num_parties_; }
  const CostModel& model() const { return model_; }

 private:
  const CostModel& model_;
  int num_parties_;
  mutable std::unordered_map<int64_t, NetworkShape> sort_shapes_;
};

size_t JoinKeyCount(const ir::OpNode& node) {
  return node.Params<ir::JoinParams>().left_keys.size();
}

// --- Secret-sharing backend: per-operator estimates ----------------------------------

// Mirrors mpc::Filter: one comparison batch, then shuffle-reveal-compact over the
// flagged relation.
void SsFilter(const SsCoster& ss, const ir::OpNode& node, int64_t n, double cols,
              OpAccount& account) {
  ss.CheckWorkingSet(account, 3 * static_cast<double>(n) * cols, "filter");
  account.seconds += ss.Compare(node.Params<ir::FilterParams>().op,
                                static_cast<double>(n));
  account.seconds += ss.ShuffleRevealCompact(static_cast<double>(n), cols + 1);
}

// Mirrors mpc::Join: n*m*keys batched equality tests (one kSsJoinRounds-deep batch),
// free gather-rerandomize assembly, and a final shuffle of the output.
void SsJoin(const SsCoster& ss, const ir::OpNode& node, int64_t n, int64_t m,
            int64_t out, OpAccount& account) {
  const size_t keys = JoinKeyCount(node);
  const double lc = node.inputs[0]->schema.NumColumns();
  const double rc = node.inputs[1]->schema.NumColumns();
  const double out_cols = node.schema.NumColumns();
  const double pairs = static_cast<double>(n) * static_cast<double>(m) *
                       static_cast<double>(keys);
  account.seconds +=
      pairs * ss.model().SsChargeFor(SsPrimitive::kEquality).seconds +
      ss.Lat(mpc::kSsJoinRounds);
  ss.CheckWorkingSet(account,
                     static_cast<double>(n) * lc + static_cast<double>(m) * rc +
                         static_cast<double>(out) * out_cols,
                     "join");
  account.seconds += ss.Shuffle(static_cast<double>(out), out_cols);
}

// Mirrors hybrid::HybridJoin step for step: shuffles, key reveals to the STP, the
// STP's cleartext join, index re-sharing, two oblivious selects, a final shuffle.
void SsHybridJoin(const SsCoster& ss, const ir::OpNode& node, int64_t n, int64_t m,
                  int64_t out, OpAccount& account) {
  const size_t keys = JoinKeyCount(node);
  const double lc = node.inputs[0]->schema.NumColumns();
  const double rc = node.inputs[1]->schema.NumColumns();
  const double out_cols = node.schema.NumColumns();
  const double l_cells = static_cast<double>(n) * lc;
  const double r_cells = static_cast<double>(m) * rc;
  ss.CheckWorkingSet(account, 6 * (l_cells + r_cells), "hybrid join");
  ss.CheckWorkingSet(account,
                     3 * (l_cells + r_cells) +
                         static_cast<double>(out) * (lc + rc),
                     "hybrid join select");
  const int senders = ss.parties() - 1;
  account.seconds += ss.Shuffle(static_cast<double>(n), lc) +
                     ss.Shuffle(static_cast<double>(m), rc);
  // RevealToStp of each side's key columns.
  account.seconds +=
      senders * ss.SendBytes(static_cast<double>(n) * static_cast<double>(keys) * 8) + ss.Lat(1);
  account.seconds +=
      senders * ss.SendBytes(static_cast<double>(m) * static_cast<double>(keys) * 8) + ss.Lat(1);
  // STP joins in the clear.
  account.seconds +=
      ss.Python(static_cast<double>(n) + static_cast<double>(m) + static_cast<double>(out));
  // Two index columns shared back from the STP.
  account.seconds +=
      2 * (senders * ss.SendBytes(static_cast<double>(out) * 8) + ss.Lat(1));
  // Oblivious selects of the contributing rows.
  account.seconds += ss.Select(n, out) + ss.Select(m, out);
  account.seconds += ss.Shuffle(static_cast<double>(out), out_cols);
}

// Mirrors hybrid::PublicJoinShared: key reveal to the joiner, cleartext join, index
// broadcast; assembly is local share gathering.
void SsPublicJoin(const SsCoster& ss, const ir::OpNode& node, int64_t n, int64_t m,
                  int64_t out, OpAccount& account) {
  const size_t keys = JoinKeyCount(node);
  const double lc = node.inputs[0]->schema.NumColumns();
  const double rc = node.inputs[1]->schema.NumColumns();
  ss.CheckWorkingSet(
      account, static_cast<double>(n) * lc + static_cast<double>(m) * rc,
      "public join");
  const int senders = std::max(ss.parties() - 1, 1);
  const double key_bytes = (static_cast<double>(n) + static_cast<double>(m)) *
                           static_cast<double>(keys) * 8;
  account.seconds += senders * ss.SendBytes(key_bytes / senders) + ss.Lat(1);
  account.seconds +=
      ss.Python(static_cast<double>(n) + static_cast<double>(m) + static_cast<double>(out));
  account.seconds +=
      senders * ss.SendBytes(static_cast<double>(out) * 16) + ss.Lat(1);
}

// The STP phase shared by hybrid aggregation and hybrid window: shuffle, reveal
// `key_cols` columns to the STP, cleartext sort, order broadcast + flag sharing.
double SsStpOrderPhase(const SsCoster& ss, int64_t n, double cols,
                       size_t key_cols) {
  const int senders = ss.parties() - 1;
  double seconds = ss.Shuffle(static_cast<double>(n), cols);
  seconds +=
      senders * ss.SendBytes(static_cast<double>(n) * static_cast<double>(key_cols) * 8) + ss.Lat(1);
  seconds += ss.Python(static_cast<double>(n));
  // Order broadcast plus flag shares, then two round barriers.
  seconds += 2 * senders * ss.SendBytes(static_cast<double>(n) * 8) + ss.Lat(2);
  return seconds;
}

// Mirrors mpc::Aggregate / hybrid::HybridAggregate (flag-driven scan + compaction).
void SsAggregate(const SsCoster& ss, const ir::OpNode& node, int64_t n, double cols,
                 OpAccount& account) {
  const auto& params = node.Params<ir::AggregateParams>();
  if (n == 0) {
    return;  // Zero rows aggregate to zero groups before any charge.
  }
  const size_t keys = params.group_columns.size();
  if (keys == 0) {
    // Global aggregate: sums/counts are share-local; mean divides once; min/max run
    // a compare-exchange tree.
    if (params.kind == AggKind::kMean) {
      account.seconds += ss.Div(1);
    } else if (params.kind == AggKind::kMin || params.kind == AggKind::kMax) {
      for (int64_t size = n; size > 1;) {
        const int64_t half = size / 2;
        account.seconds += ss.Compare(CompareOp::kLt, static_cast<double>(half)) +
                           ss.Mul(static_cast<double>(half));
        size = half + (size % 2);
      }
    }
    return;
  }
  ss.CheckWorkingSet(account, 3 * static_cast<double>(n) * cols, "aggregate");
  if (node.hybrid == ir::HybridKind::kHybridAggregate) {
    account.seconds += SsStpOrderPhase(ss, n, cols, keys);
  } else {
    if (!node.assume_sorted) {
      account.seconds +=
          ss.ObliviousSort(n, static_cast<size_t>(cols), keys);
    }
    account.seconds += ss.AdjacentEqualFlags(n, keys);
  }
  account.seconds += ss.SegmentedScan(n, params.kind);
  if (params.kind == AggKind::kMean) {
    account.seconds += ss.SegmentedScan(n, AggKind::kCount) +
                       ss.Div(static_cast<double>(n));
  }
  account.seconds += ss.ShuffleRevealCompact(static_cast<double>(n),
                                             static_cast<double>(keys) + 2);
}

// Mirrors mpc::Window / hybrid::HybridWindow.
void SsWindow(const SsCoster& ss, const ir::OpNode& node, int64_t n, double cols,
              OpAccount& account) {
  const auto& params = node.Params<ir::WindowParams>();
  if (n == 0) {
    return;
  }
  const size_t partitions = params.partition_columns.size();
  ss.CheckWorkingSet(account, 3 * static_cast<double>(n) * cols, "window");
  if (node.hybrid == ir::HybridKind::kHybridWindow) {
    account.seconds += SsStpOrderPhase(ss, n, cols, partitions + 1);
  } else {
    if (!node.assume_sorted) {
      account.seconds +=
          ss.ObliviousSort(n, static_cast<size_t>(cols), partitions + 1);
    }
    account.seconds += ss.AdjacentEqualFlags(n, partitions);
  }
  switch (params.fn) {
    case WindowFn::kRowNumber:
      account.seconds += ss.SegmentedScan(n, AggKind::kCount);
      break;
    case WindowFn::kRunningSum:
      account.seconds += ss.SegmentedScan(n, AggKind::kSum);
      break;
    case WindowFn::kLag:
      account.seconds += ss.Mul(static_cast<double>(n));
      break;
  }
}

// Mirrors the Sharemind backend's sorted-merge concat: fold the branches through
// oblivious merges, falling back to a full sort exactly where ObliviousMerge does.
void SsMergeConcat(const SsCoster& ss, const ir::OpNode& node,
                   const std::unordered_map<int, double>& rows,
                   OpAccount& account) {
  const auto& params = node.Params<ir::ConcatParams>();
  const size_t keys = params.merge_columns.size();
  const size_t cols = static_cast<size_t>(node.schema.NumColumns());
  int64_t merged = ToRows(rows.at(node.inputs[0]->id));
  for (size_t i = 1; i < node.inputs.size(); ++i) {
    const int64_t branch = ToRows(rows.at(node.inputs[i]->id));
    const int64_t total = merged + branch;
    const bool merge_shape = merged > 0 && (merged & (merged - 1)) == 0 &&
                             branch <= merged && branch > 0;
    if (merge_shape) {
      account.seconds += ss.BatcherNetwork(ss.MergeShape(merged, total), cols, keys);
    } else {
      account.seconds += ss.ObliviousSort(total, cols, keys);
    }
    merged = total;
  }
}

// One (rows, cells) entry per cleartext input relation first entering the MPC at
// this node; each is secret-shared / garbled as its own batch, like EnsureSecure.
using IngestList = std::vector<std::pair<double, double>>;

BackendOpCost SsOpCost(const SsCoster& ss, const ir::OpNode& node,
                       const std::unordered_map<int, double>& rows,
                       const IngestList& ingests) {
  OpAccount account;
  for (const auto& [ingest_rows, ingest_cells] : ingests) {
    ss.CheckWorkingSet(account, 2 * ingest_cells, "ingest");
    account.seconds += ss.Ingest(ingest_rows);
  }
  const int64_t n =
      node.inputs.empty() ? 0 : ToRows(rows.at(node.inputs[0]->id));
  const int64_t m =
      node.inputs.size() > 1 ? ToRows(rows.at(node.inputs[1]->id)) : 0;
  const int64_t out = ToRows(rows.at(node.id));
  const double in_cols =
      node.inputs.empty() ? 0 : node.inputs[0]->schema.NumColumns();

  switch (node.kind) {
    case ir::OpKind::kFilter:
      SsFilter(ss, node, n, in_cols, account);
      break;
    case ir::OpKind::kJoin:
      switch (node.hybrid) {
        case ir::HybridKind::kHybridJoin:
          SsHybridJoin(ss, node, n, m, out, account);
          break;
        case ir::HybridKind::kPublicJoin:
          SsPublicJoin(ss, node, n, m, out, account);
          break;
        default:
          SsJoin(ss, node, n, m, out, account);
          break;
      }
      break;
    case ir::OpKind::kAggregate:
      SsAggregate(ss, node, n, in_cols, account);
      break;
    case ir::OpKind::kWindow:
      SsWindow(ss, node, n, in_cols, account);
      break;
    case ir::OpKind::kSortBy:
      // mpc::Sort checks the working set before the assume_sorted early-out.
      ss.CheckWorkingSet(account, 2 * static_cast<double>(n) * in_cols, "sort");
      if (!node.assume_sorted && n > 0) {
        account.seconds += ss.ObliviousSort(
            n, static_cast<size_t>(in_cols),
            node.Params<ir::SortByParams>().columns.size());
      }
      break;
    case ir::OpKind::kDistinct: {
      const size_t keys = node.Params<ir::DistinctParams>().columns.size();
      // mpc::Distinct checks the full input's working set before projecting.
      ss.CheckWorkingSet(account, 3 * static_cast<double>(n) * in_cols,
                         "distinct");
      if (n > 0) {
        if (!node.assume_sorted) {
          account.seconds += ss.ObliviousSort(n, keys, keys);
        }
        account.seconds += ss.AdjacentEqualFlags(n, keys);
        account.seconds += ss.ShuffleRevealCompact(
            static_cast<double>(n), static_cast<double>(keys) + 1);
      }
      break;
    }
    case ir::OpKind::kArithmetic: {
      const auto& params = node.Params<ir::ArithmeticParams>();
      if (params.kind == ArithKind::kDiv) {
        account.seconds += ss.Div(static_cast<double>(n));
      } else if (params.kind == ArithKind::kMul && params.rhs_is_column) {
        account.seconds += ss.Mul(static_cast<double>(n));
      }
      break;
    }
    case ir::OpKind::kConcat:
      if (!node.Params<ir::ConcatParams>().merge_columns.empty()) {
        SsMergeConcat(ss, node, rows, account);
      }
      break;
    default:
      break;  // Project/limit/pad are share-local.
  }
  return account.Finish();
}

// --- Garbled-circuit backend: per-operator estimates ---------------------------------

// Mirrors GcEngine::Charge: gate time plus the constant-round barrier, infeasible on
// a live-state overflow.
void GcCharge(const CostModel& model, const gc::GcOpCost& cost, const char* what,
              OpAccount& account) {
  if (cost.live_state_bytes > model.gc_memory_limit_bytes) {
    account.Infeasible(StrFormat("GC OOM (%s)", what));
    return;
  }
  account.seconds += static_cast<double>(cost.and_gates) *
                         model.gc_seconds_per_and_gate +
                     model.SecondsForRounds(2);
}

// True when a sort-bearing GC operator is already infeasible from the sort phase's
// live labels alone (2x the relation resident, the floor of every SortCost-derived
// total) — the verdict GcCharge would reach anyway, checked before the O(n log n)
// exchange walk so pricing a large plan never pays for doomed gate counts.
bool GcSortObviouslyOom(const CostModel& model, uint64_t rows, uint64_t cols,
                        const char* what, OpAccount& account) {
  if (2 * gc::LiveBytesForCells(model, rows, cols) > model.gc_memory_limit_bytes) {
    account.Infeasible(StrFormat("GC OOM (%s)", what));
    return true;
  }
  return false;
}

BackendOpCost GcOpCostOf(const CostModel& model, const ir::OpNode& node,
                         const std::unordered_map<int, double>& rows,
                         const IngestList& ingests, int num_parties) {
  OpAccount account;
  if (num_parties > 2) {
    // Obliv-C is a two-party protocol (the paper runs it with two parties only).
    account.Infeasible(StrFormat("%d parties (2-party protocol)", num_parties));
    return account.Finish();
  }
  if (node.hybrid != ir::HybridKind::kNone) {
    account.Infeasible("hybrid protocols run on the secret-sharing backend");
    return account.Finish();
  }
  for (const auto& [ingest_rows, ingest_cells] : ingests) {
    // Mirrors GcEngine::ChargeInput: evaluator labels travel via OT. Computed in
    // doubles — estimated cell counts can exceed uint64.
    const double bits = ingest_cells * 64;
    if (bits * static_cast<double>(model.gc_bytes_per_live_bit) >
        static_cast<double>(model.gc_memory_limit_bytes)) {
      account.Infeasible("GC OOM (input labels)");
      return account.Finish();
    }
    account.seconds += bits * 16 / model.bandwidth_bytes_per_second +
                       model.SecondsForRounds(2);
  }

  // Cap rows before the analytic gate formulas: every GC operator is memory-
  // infeasible far below this cap (live labels alone at 2M rows x 1 column are
  // ~25x the 4 GB VM), so capping cannot flip a feasibility verdict — while it
  // bounds the exact Batcher walks and keeps the uint64 pair/gate arithmetic
  // from overflowing on absurd cardinality estimates.
  const auto cap = [](int64_t value) {
    return static_cast<uint64_t>(std::min(value, kMaxExactShapeRows));
  };
  const uint64_t n =
      cap(node.inputs.empty() ? 0 : ToRows(rows.at(node.inputs[0]->id)));
  const uint64_t m =
      cap(node.inputs.size() > 1 ? ToRows(rows.at(node.inputs[1]->id)) : 0);
  const uint64_t out = cap(ToRows(rows.at(node.id)));
  const uint64_t in_cols = static_cast<uint64_t>(
      node.inputs.empty() ? 0 : node.inputs[0]->schema.NumColumns());
  const uint64_t out_cols = static_cast<uint64_t>(node.schema.NumColumns());

  switch (node.kind) {
    case ir::OpKind::kFilter: {
      const auto op = node.Params<ir::FilterParams>().op;
      const uint64_t per_row = (op == CompareOp::kEq || op == CompareOp::kNe)
                                   ? gc::kAndPerEqual
                                   : gc::kAndPerLess;
      GcCharge(model, gc::LinearPassCost(model, n, in_cols, in_cols, per_row),
               "filter", account);
      break;
    }
    case ir::OpKind::kJoin:
      GcCharge(model,
               gc::JoinCost(
                   model, n, m,
                   static_cast<uint64_t>(node.inputs[0]->schema.NumColumns()),
                   static_cast<uint64_t>(node.inputs[1]->schema.NumColumns()),
                   JoinKeyCount(node)),
               "join", account);
      break;
    case ir::OpKind::kAggregate: {
      const auto& params = node.Params<ir::AggregateParams>();
      if (!node.assume_sorted &&
          GcSortObviouslyOom(model, n, in_cols, "aggregate", account)) {
        break;
      }
      GcCharge(model,
               gc::AggregateCost(
                   model, n, in_cols,
                   std::max<uint64_t>(params.group_columns.size(), 1),
                   node.assume_sorted),
               "aggregate", account);
      break;
    }
    case ir::OpKind::kWindow:
      if (!node.assume_sorted &&
          GcSortObviouslyOom(model, n, in_cols, "window", account)) {
        break;
      }
      GcCharge(model,
               gc::WindowCost(model, n, in_cols,
                              node.Params<ir::WindowParams>()
                                  .partition_columns.size(),
                              node.assume_sorted),
               "window", account);
      break;
    case ir::OpKind::kSortBy:
      if (!node.assume_sorted) {
        if (GcSortObviouslyOom(model, n, in_cols, "sort", account)) {
          break;
        }
        GcCharge(model,
                 gc::SortCost(model, n, in_cols,
                              node.Params<ir::SortByParams>().columns.size()),
                 "sort", account);
      }
      break;
    case ir::OpKind::kDistinct: {
      const uint64_t keys = node.Params<ir::DistinctParams>().columns.size();
      if (!node.assume_sorted &&
          GcSortObviouslyOom(model, n, keys, "distinct", account)) {
        break;
      }
      gc::GcOpCost cost;
      if (!node.assume_sorted) {
        cost += gc::SortCost(model, n, keys, keys);
      }
      cost += gc::LinearPassCost(model, n, keys, keys, keys * gc::kAndPerEqual);
      GcCharge(model, cost, "distinct", account);
      break;
    }
    case ir::OpKind::kConcat: {
      GcCharge(model, gc::LinearPassCost(model, out, out_cols, out_cols, 0),
               "concat", account);
      const auto& params = node.Params<ir::ConcatParams>();
      if (!params.merge_columns.empty() &&
          !GcSortObviouslyOom(model, out, out_cols, "merge-concat sort",
                              account)) {
        // The GC backend sorts the concatenated relation (no merge network).
        GcCharge(model,
                 gc::SortCost(model, out, out_cols,
                              params.merge_columns.size()),
                 "merge-concat sort", account);
      }
      break;
    }
    case ir::OpKind::kArithmetic: {
      uint64_t per_row = 0;
      switch (node.Params<ir::ArithmeticParams>().kind) {
        case ArithKind::kAdd:
          per_row = gc::kAndPerAdd;
          break;
        case ArithKind::kSub:
          per_row = gc::kAndPerSub;
          break;
        case ArithKind::kMul:
          per_row = gc::kAndPerMul;
          break;
        case ArithKind::kDiv:
          per_row = 4 * gc::kAndPerMul;  // Restoring division.
          break;
      }
      GcCharge(model,
               gc::LinearPassCost(model, n, in_cols, in_cols + 1, per_row),
               "arithmetic", account);
      break;
    }
    case ir::OpKind::kProject:
      GcCharge(model, gc::LinearPassCost(model, n, in_cols, out_cols, 0),
               "project", account);
      break;
    case ir::OpKind::kLimit: {
      const uint64_t kept = std::min<uint64_t>(
          n, static_cast<uint64_t>(
                 std::max<int64_t>(node.Params<ir::LimitParams>().count, 0)));
      GcCharge(model, gc::LinearPassCost(model, kept, in_cols, in_cols, 0),
               "limit", account);
      break;
    }
    default:
      break;
  }
  return account.Finish();
}

std::string NodeLabel(const ir::OpNode& node) {
  if (node.hybrid != ir::HybridKind::kNone) {
    return StrFormat("%s[%s]", ir::OpKindName(node.kind),
                     ir::HybridKindName(node.hybrid));
  }
  return StrFormat("%s[%s]", ir::OpKindName(node.kind),
                   ir::ExecModeName(node.exec_mode));
}

std::string FormatSeconds(const BackendOpCost& cost) {
  if (!cost.feasible) {
    return StrFormat("infeasible: %s", cost.infeasible_reason.c_str());
  }
  return StrFormat("%.6fs", cost.seconds);
}

}  // namespace

std::string FormatPlanSeconds(double seconds, int decimals) {
  if (std::isinf(seconds)) {
    return "infeasible";
  }
  return StrFormat("%.*fs", decimals, seconds);
}

std::string PlanCostReport::ToString() const {
  std::string out = StrFormat("plan-cost: sharemind %s vs obliv-c %s -> %s\n",
                              FormatPlanSeconds(sharemind_seconds).c_str(),
                              FormatPlanSeconds(oblivc_seconds).c_str(),
                              MpcBackendName(cheapest));
  for (const NodeCost& node : nodes) {
    out += StrFormat("  #%d %s rows=%.0f", node.node_id, node.label.c_str(),
                     node.in_rows);
    if (node.right_rows > 0) {
      out += StrFormat("x%.0f", node.right_rows);
    }
    out += StrFormat(" out=%.0f", node.out_rows);
    if (node.ingest_rows > 0) {
      out += StrFormat(" ingest=%.0f", node.ingest_rows);
    }
    out += StrFormat(": sharemind %s, obliv-c %s\n",
                     FormatSeconds(node.sharemind).c_str(),
                     FormatSeconds(node.oblivc).c_str());
  }
  out += StrFormat("shard-advice: %d shard(s) (cleartext scan %s)\n",
                   recommended_shard_count,
                   FormatPlanSeconds(cleartext_scan_seconds).c_str());
  if (pipeline_batch_rows > 0) {
    out += StrFormat(
        "pipeline-advice: %d fused chain(s) over %d node(s), longest %d "
        "(batch %lld rows; resident rows per shard <= depth x batch)\n",
        fused_pipeline_chains, fused_pipeline_nodes, longest_pipeline_chain,
        static_cast<long long>(pipeline_batch_rows));
    if (fused_expr_enabled) {
      out += StrFormat(
          "expr-advice: %d fused expression group(s) over %d node(s) (one "
          "register-resident pass per batch; per-node pricing unchanged)\n",
          fused_expr_groups, fused_expr_nodes);
    } else {
      out +=
          "expr-advice: fused evaluator off (unset CONCLAVE_FUSED_EXPR=0 to "
          "re-enable)\n";
    }
    if (stream_reveal_enabled) {
      out += StrFormat(
          "reveal-advice: %d chain(s) stream their reveal boundary "
          "(batch-at-a-time reconstruction; boundary charge unchanged)\n",
          streamed_reveal_chains);
    } else {
      out +=
          "reveal-advice: streaming reveal off (unset CONCLAVE_STREAM_REVEAL=0 "
          "to re-enable)\n";
    }
  } else {
    out += "pipeline-advice: fusion disabled (materializing operators)\n";
  }
  if (fault_mode) {
    out += StrFormat(
        "fault-advice: injection armed (%s); <=%d retransmissions/send "
        "(backoff envelope %s), %d restart(s)/job; recoverable plans add "
        "exactly their priced recovery time\n",
        fault_plan_summary.c_str(), fault_max_send_retries,
        FormatPlanSeconds(fault_retry_envelope_seconds).c_str(),
        fault_job_retries);
  } else {
    out += "fault-advice: injection off (set CONCLAVE_FAULT_PLAN to arm)\n";
  }
  if (spill_mem_budget_rows > 0) {
    out += StrFormat(
        "spill-advice: budget %lld resident rows/operator; %d spilling "
        "node(s), %lld priced pass(es), spill I/O %s (the meter charges this "
        "exact formula)\n",
        static_cast<long long>(spill_mem_budget_rows), spilling_nodes,
        static_cast<long long>(spill_total_passes),
        FormatPlanSeconds(spill_seconds).c_str());
  } else {
    out +=
        "spill-advice: unbounded (set CONCLAVE_MEM_BUDGET to cap resident "
        "rows)\n";
  }
  return out;
}

void AnnotateShardAdvice(PlanCostReport& report, const ExecutionPlan& plan,
                         const CostModel& model, int pool_parallelism,
                         int64_t total_input_rows) {
  report.cleartext_scan_seconds = model.CleartextScanSeconds(
      total_input_rows < 0 ? 0 : static_cast<uint64_t>(total_input_rows),
      /*use_spark=*/false);
  report.recommended_shard_count =
      ChooseShardCount(plan, model, pool_parallelism, total_input_rows);
}

bool PipelineFusibleOp(const ir::OpNode& node, int shard_count) {
  if (node.exec_mode != ir::ExecMode::kLocal || node.inputs.size() != 1) {
    return false;
  }
  switch (node.kind) {
    case ir::OpKind::kFilter:
    case ir::OpKind::kProject:
    case ir::OpKind::kArithmetic:
      return true;
    case ir::OpKind::kLimit:
      // Unsharded, the streaming cursor is the whole-relation prefix. Sharded,
      // each shard's cursor keeps its local `count`-row prefix — a superset of
      // the global prefix, since shards concatenate in canonical order — and
      // the chain's assembly trims the concatenation to the global prefix. The
      // trim needs the materialized per-shard outputs, so a sharded limit can
      // only ever be the TAIL of a chain (PipelineChains enforces this).
      return true;
    case ir::OpKind::kDistinct: {
      if (shard_count > 1) {
        return false;  // Dedup is cross-shard; keep the exchange-based kernel.
      }
      // Streaming adjacent-run dedup needs the input sorted ascending by a
      // column list the distinct columns prefix. Walk upstream through the
      // order-preserving single-input ops — filter and limit drop rows but
      // never reorder, project and arithmetic never touch existing cells
      // (columns are referenced by name, so surviving names keep their values)
      // — to an ascending kSortBy whose column list the distinct columns
      // prefix. An arithmetic output_name shadowing a distinct column kills
      // the proof: that column's values postdate the sort.
      const auto& distinct = node.Params<ir::DistinctParams>();
      const ir::OpNode* in = node.inputs[0];
      for (;;) {
        switch (in->kind) {
          case ir::OpKind::kSortBy: {
            const auto& sort = in->Params<ir::SortByParams>();
            if (!sort.ascending ||
                distinct.columns.size() > sort.columns.size()) {
              return false;
            }
            return std::equal(distinct.columns.begin(), distinct.columns.end(),
                              sort.columns.begin());
          }
          case ir::OpKind::kFilter:
          case ir::OpKind::kLimit:
          case ir::OpKind::kProject:
            break;
          case ir::OpKind::kArithmetic: {
            const auto& arith = in->Params<ir::ArithmeticParams>();
            if (std::find(distinct.columns.begin(), distinct.columns.end(),
                          arith.output_name) != distinct.columns.end()) {
              return false;
            }
            break;
          }
          default:
            return false;
        }
        if (in->inputs.size() != 1) {
          return false;
        }
        in = in->inputs[0];
      }
    }
    default:
      return false;
  }
}

// True when `node` may join a fused chain only as its last member: the sharded
// limit's global-prefix trim runs at assembly, over the finished per-shard
// outputs, so nothing can stream past it.
static bool PipelineChainTerminator(const ir::OpNode& node, int shard_count) {
  return node.kind == ir::OpKind::kLimit && shard_count > 1;
}

std::vector<std::vector<const ir::OpNode*>> PipelineChains(
    std::span<const ir::OpNode* const> topo, int shard_count) {
  // Consuming-edge counts and the unique consumer, within `topo` only (detached
  // consumers never execute, so they do not pin a value as materialized).
  std::unordered_map<int, int> uses;
  std::unordered_map<int, const ir::OpNode*> sole_consumer;
  for (const ir::OpNode* node : topo) {
    for (const ir::OpNode* in : node->inputs) {
      if (++uses[in->id] == 1) {
        sole_consumer[in->id] = node;
      } else {
        sole_consumer.erase(in->id);
      }
    }
  }
  std::vector<std::vector<const ir::OpNode*>> chains;
  std::unordered_set<int> claimed;
  for (const ir::OpNode* node : topo) {
    if (claimed.count(node->id) != 0 || !PipelineFusibleOp(*node, shard_count)) {
      continue;
    }
    std::vector<const ir::OpNode*> chain{node};
    const ir::OpNode* tail = node;
    while (!PipelineChainTerminator(*tail, shard_count)) {
      const auto it = sole_consumer.find(tail->id);
      if (it == sole_consumer.end()) {
        break;  // Zero or several consuming edges: the value must materialize.
      }
      const ir::OpNode* next = it->second;
      if (!PipelineFusibleOp(*next, shard_count) ||
          next->exec_party != tail->exec_party) {
        break;
      }
      chain.push_back(next);
      tail = next;
    }
    if (chain.size() < 2) {
      continue;  // A lone streaming op materializes its output anyway.
    }
    for (const ir::OpNode* member : chain) {
      claimed.insert(member->id);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

void AnnotatePipelineAdvice(PlanCostReport& report, const ir::Dag& dag,
                            int shard_count, int64_t batch_rows) {
  report.pipeline_batch_rows = batch_rows > 0 ? batch_rows : 0;
  report.fused_pipeline_chains = 0;
  report.fused_pipeline_nodes = 0;
  report.longest_pipeline_chain = 0;
  report.fused_expr_enabled = FusedExprEnabled();
  report.fused_expr_groups = 0;
  report.fused_expr_nodes = 0;
  report.stream_reveal_enabled = env::BoolKnob("CONCLAVE_STREAM_REVEAL", true);
  report.streamed_reveal_chains = 0;
  if (batch_rows <= 0) {
    return;
  }
  // Mirrors relational/expr.h's FusibleExprOp at the plan level: the
  // dispatcher's PipelineOps map 1:1 to these node kinds, so counting runs
  // here predicts the executor's slots exactly.
  const auto expr_fusible = [](const ir::OpNode& node) {
    return node.kind == ir::OpKind::kFilter ||
           node.kind == ir::OpKind::kProject ||
           node.kind == ir::OpKind::kArithmetic;
  };
  const std::vector<ir::OpNode*> order = dag.TopoOrder();
  const std::vector<const ir::OpNode*> topo(order.begin(), order.end());
  // Consuming-edge counts, for the streamed-reveal mirror of the dispatcher's
  // sole-consumer eligibility.
  std::unordered_map<int, int> uses;
  for (const ir::OpNode* node : topo) {
    for (const ir::OpNode* in : node->inputs) {
      ++uses[in->id];
    }
  }
  for (const auto& chain : PipelineChains(topo, shard_count)) {
    ++report.fused_pipeline_chains;
    report.fused_pipeline_nodes += static_cast<int>(chain.size());
    report.longest_pipeline_chain =
        std::max(report.longest_pipeline_chain, static_cast<int>(chain.size()));
    if (report.stream_reveal_enabled && chain.front()->inputs.size() == 1) {
      // Mirrors the executor's eligibility: the head's sole input is an
      // MPC/hybrid value (a shared relation at run time) with no consumer
      // besides this chain — the reveal streams instead of materializing.
      const ir::OpNode* producer = chain.front()->inputs[0];
      if (producer->exec_mode != ir::ExecMode::kLocal &&
          producer->kind != ir::OpKind::kCreate && uses[producer->id] == 1) {
        ++report.streamed_reveal_chains;
      }
    }
    if (!report.fused_expr_enabled) {
      continue;
    }
    size_t i = 0;
    while (i < chain.size()) {
      size_t end = i + 1;
      if (expr_fusible(*chain[i])) {
        while (end < chain.size() && expr_fusible(*chain[end])) {
          ++end;
        }
      }
      if (end - i >= 2) {
        ++report.fused_expr_groups;
        report.fused_expr_nodes += static_cast<int>(end - i);
      }
      i = end;
    }
  }
}

double NodeSpillSeconds(const ir::OpNode& node, double in_rows, double right_rows,
                        const CostModel& model, int64_t mem_budget_rows) {
  if (mem_budget_rows <= 0 || node.exec_mode != ir::ExecMode::kLocal) {
    return 0;
  }
  const int64_t budget = mem_budget_rows;
  switch (node.kind) {
    // One priced pass = one generation of run files written then read back
    // (spill::SpillMergePasses counts exactly the generations the kernels
    // produce: run formation feeds the first merge level, each deeper level
    // rewrites every row once). Distinct and aggregate runs shrink as they
    // dedup/combine, but the price deliberately keeps the full input rows per
    // pass — the meter charges the same closed form, and only the
    // estimate==meter identity matters, not physical byte exactness.
    case ir::OpKind::kSortBy: {
      const int64_t rows = ToRows(in_rows);
      const int64_t passes = spill::SpillMergePasses(rows, budget);
      const double cells =
          static_cast<double>(rows) * node.schema.NumColumns();
      return model.SpillPassSeconds(static_cast<double>(passes) * cells * 8.0);
    }
    case ir::OpKind::kDistinct: {
      // Runs carry the distinct columns only (== the node's output schema).
      const int64_t rows = ToRows(in_rows);
      const int64_t passes = spill::SpillMergePasses(rows, budget);
      const double cells =
          static_cast<double>(rows) * node.schema.NumColumns();
      return model.SpillPassSeconds(static_cast<double>(passes) * cells * 8.0);
    }
    case ir::OpKind::kAggregate: {
      // Partial-aggregate runs: group keys plus one accumulator column (two
      // for mean: running sum and count, finalized only at the last level).
      const auto& params = node.Params<ir::AggregateParams>();
      const int64_t rows = ToRows(in_rows);
      const int64_t passes = spill::SpillMergePasses(rows, budget);
      const double cols = static_cast<double>(params.group_columns.size()) +
                          (params.kind == AggKind::kMean ? 2.0 : 1.0);
      return model.SpillPassSeconds(static_cast<double>(passes) *
                                    static_cast<double>(rows) * cols * 8.0);
    }
    case ir::OpKind::kJoin: {
      // Grace hash join spills when the build (right) side exceeds the budget:
      // both sides stream through (key, gid) partition files — K key columns
      // plus the provenance gid — once per recursion level.
      const int64_t build = ToRows(right_rows);
      const int64_t levels = spill::SpillMergePasses(build, budget);
      if (levels == 0) {
        return 0;
      }
      const double key_cols =
          static_cast<double>(node.Params<ir::JoinParams>().left_keys.size()) +
          1.0;
      const double cells = (ToRows(in_rows) + build) * key_cols;
      return model.SpillPassSeconds(static_cast<double>(levels) * cells * 8.0);
    }
    default:
      return 0;
  }
}

void AnnotateSpillAdvice(PlanCostReport& report, const ir::Dag& dag,
                         const CostModel& model, int64_t mem_budget_rows,
                         const CardinalityOptions& cardinality) {
  report.spill_mem_budget_rows = mem_budget_rows > 0 ? mem_budget_rows : 0;
  report.spilling_nodes = 0;
  report.spill_total_passes = 0;
  report.spill_seconds = 0;
  if (mem_budget_rows <= 0) {
    return;
  }
  const auto rows = EstimateCardinalities(dag, cardinality);
  for (const ir::OpNode* node : dag.TopoOrder()) {
    if (node->exec_mode != ir::ExecMode::kLocal || node->inputs.empty()) {
      continue;
    }
    const double in_rows = rows.at(node->inputs[0]->id);
    const double right_rows =
        node->inputs.size() > 1 ? rows.at(node->inputs[1]->id) : 0;
    const double seconds =
        NodeSpillSeconds(*node, in_rows, right_rows, model, mem_budget_rows);
    if (seconds <= 0) {
      continue;
    }
    ++report.spilling_nodes;
    const int64_t spilled_input = node->kind == ir::OpKind::kJoin
                                      ? ToRows(right_rows)
                                      : ToRows(in_rows);
    report.spill_total_passes +=
        spill::SpillMergePasses(spilled_input, mem_budget_rows);
    report.spill_seconds += seconds;
  }
}

void AnnotateFaultAdvice(PlanCostReport& report, const FaultPlan& plan,
                         const CostModel& model) {
  report.fault_mode = plan.enabled;
  report.fault_plan_summary = plan.ToString();
  report.fault_max_send_retries = model.max_send_retries;
  report.fault_job_retries = plan.job_retries;
  // Worst case one send can absorb before escalating: the full backed-off
  // timeout schedule (payload retransmission time is size-dependent and priced
  // at run time).
  report.fault_retry_envelope_seconds = 0;
  for (int k = 0; k < model.max_send_retries; ++k) {
    report.fault_retry_envelope_seconds += model.RetrySeconds(k, /*bytes=*/0);
  }
}

PlanCostReport EstimatePlanCost(const ir::Dag& dag, const CostModel& model,
                                int num_parties,
                                const CardinalityOptions& cardinality) {
  const auto rows = EstimateCardinalities(dag, cardinality);
  const SsCoster ss(model, num_parties);
  PlanCostReport report;
  // Ingest (inputToMPC) happens once per materialized value, when its first MPC
  // consumer acquires it — exactly how the dispatcher's EnsureSecure meters it.
  std::unordered_set<int> ingested;

  for (const ir::OpNode* node : dag.TopoOrder()) {
    if (node->exec_mode == ir::ExecMode::kLocal ||
        node->kind == ir::OpKind::kCreate || node->kind == ir::OpKind::kCollect) {
      continue;
    }
    NodeCost cost;
    cost.node_id = node->id;
    cost.label = NodeLabel(*node);
    cost.in_rows = node->inputs.empty() ? 0 : rows.at(node->inputs[0]->id);
    cost.right_rows =
        node->inputs.size() > 1 ? rows.at(node->inputs[1]->id) : 0;
    cost.out_rows = rows.at(node->id);
    IngestList ingests;
    for (const ir::OpNode* input : node->inputs) {
      if (input->exec_mode == ir::ExecMode::kLocal &&
          ingested.insert(input->id).second) {
        const double in_rows = rows.at(input->id);
        cost.ingest_rows += in_rows;
        ingests.emplace_back(
            in_rows, in_rows * static_cast<double>(input->schema.NumColumns()));
      }
    }
    cost.sharemind = SsOpCost(ss, *node, rows, ingests);
    cost.oblivc = GcOpCostOf(model, *node, rows, ingests, num_parties);
    report.sharemind_seconds += cost.sharemind.seconds;
    report.oblivc_seconds += cost.oblivc.seconds;
    report.nodes.push_back(std::move(cost));
  }

  report.cheapest = report.oblivc_seconds < report.sharemind_seconds
                        ? MpcBackendKind::kOblivC
                        : MpcBackendKind::kSharemind;
  return report;
}

}  // namespace compiler
}  // namespace conclave
