// Pass 1 (§5.1): propagate input relation locations through the DAG.
//
// A party "owns" a relation if it can derive it locally from its own data. Ownership
// propagates along edges: unary ops inherit their input's owner; multi-input ops keep
// a common owner or lose ownership when inputs belong to different parties. Operators
// whose output has no owner must run under MPC — this pass therefore also sets the
// initial placement (ExecMode) of every node, which is exactly the paper's "start with
// a single large MPC, pull owned operators out" frontier: subsequent passes (push-down
// rewrites, push-up, hybrid transforms) only shrink the MPC region further.
#ifndef CONCLAVE_COMPILER_OWNERSHIP_H_
#define CONCLAVE_COMPILER_OWNERSHIP_H_

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

void PropagateOwnership(ir::Dag& dag);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_OWNERSHIP_H_
