// Cardinality estimation over the query DAG, feeding the cost-based MPC backend
// chooser (§9's "choose the most performant MPC protocol for a query").
//
// Estimates start from the num_rows_hint on input relations (falling back to
// `default_rows` when absent) and flow through textbook selectivity rules. They only
// need to be good enough to rank backends — orders of magnitude, not row counts.
#ifndef CONCLAVE_COMPILER_CARDINALITY_H_
#define CONCLAVE_COMPILER_CARDINALITY_H_

#include <unordered_map>

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

struct CardinalityOptions {
  double default_rows = 1000;       // Inputs without a num_rows_hint.
  double filter_selectivity = 0.5;  // Fraction of rows surviving a filter.
  double join_fanout = 1.0;         // Join output vs. the larger input.
  double distinct_fraction = 0.1;   // Distinct keys vs. rows (matches §7.4's setup).
};

// Estimated output rows for every reachable node, keyed by node id.
std::unordered_map<int, double> EstimateCardinalities(
    const ir::Dag& dag, const CardinalityOptions& options = {});

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_CARDINALITY_H_
