// Pass 6 (§5.4): oblivious-sort elimination.
//
// Oblivious sorts dominate MPC aggregation/distinct/order-by cost. This pass tracks
// which columns each intermediate relation is known to be sorted by and marks
// downstream sort-consuming operators `assume_sorted` when the order they need is
// already established. Key facts the propagation encodes:
//
//  * local cleartext aggregation/distinct emit key-sorted output;
//  * public joins emit output sorted by the join key (the joiner sorts in the clear —
//    the optimization behind the aspirin-count result, §7.4);
//  * oblivious shuffles destroy order, so MPC join/aggregate/distinct outputs are
//    unsorted;
//  * projections/filters/arithmetic preserve order (all MPC ops Conclave generates
//    between a sort and its consumer are order-preserving).
#ifndef CONCLAVE_COMPILER_SORT_ELIMINATION_H_
#define CONCLAVE_COMPILER_SORT_ELIMINATION_H_

#include <string>
#include <vector>

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

std::vector<std::string> EliminateSorts(ir::Dag& dag);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_SORT_ELIMINATION_H_
