// Pass 3 (§5.2): MPC frontier push-down rewrites.
//
// Two graph rewrites shrink the MPC region from the inputs downward:
//
//  * Concat push-down — for operator `op` distributive over partitions
//    (project, filter, arithmetic):  op(concat(R_a, R_b, ...)) ==
//    concat(op(R_a), op(R_b), ...). The per-branch ops regain single-party ownership
//    and leave MPC.
//
//  * Aggregation split — a group-by aggregation over a concat becomes per-party local
//    pre-aggregations followed by a small MPC secondary aggregation over the partial
//    results (sum-of-sums, sum-of-counts, min-of-mins, max-of-maxes). This changes the
//    MPC input size from per-party row counts to per-party *distinct-key* counts —
//    data-dependent, so the paper requires the parties' consent; the
//    `allow_cardinality_leak` flag models that consent and the pass reports the
//    leakage in its diagnostics.
//
// Rewrites iterate to a fixpoint (a pushed concat may expose another distributive
// consumer), then ownership is re-propagated.
#ifndef CONCLAVE_COMPILER_PUSHDOWN_H_
#define CONCLAVE_COMPILER_PUSHDOWN_H_

#include <string>
#include <vector>

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

std::vector<std::string> PushDown(ir::Dag& dag, bool allow_cardinality_leak);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_PUSHDOWN_H_
