#include "conclave/compiler/padding.h"

#include <map>
#include <set>
#include <utility>

#include "conclave/common/strings.h"

namespace conclave {
namespace compiler {
namespace {

// Padding pays off exactly where cardinality is data-dependent and sensitive: the
// inputs to MPC joins, grouped aggregations, and windows.
bool WantsPaddedInputs(const ir::OpNode& node) {
  if (node.exec_mode == ir::ExecMode::kLocal) {
    return false;
  }
  switch (node.kind) {
    case ir::OpKind::kJoin:
      return true;
    case ir::OpKind::kAggregate:
      return !node.Params<ir::AggregateParams>().group_columns.empty();
    case ir::OpKind::kWindow:
      return true;
    default:
      return false;
  }
}

using Carriers = std::set<std::string>;

Carriers Intersect(const Carriers& carriers, const std::vector<std::string>& kept) {
  Carriers out;
  for (const auto& name : kept) {
    if (carriers.contains(name)) {
      out.insert(name);
    }
  }
  return out;
}

// Columns of `node`'s output in which pad rows (that survive `node` at all) are
// guaranteed to still hold raw sentinel values, given the carriers of its padded
// input. Empty = the contract is violated downstream of this node.
Carriers PropagateCarriers(const ir::OpNode& node, const Carriers& in) {
  switch (node.kind) {
    case ir::OpKind::kProject:
      return Intersect(in, node.Params<ir::ProjectParams>().columns);
    case ir::OpKind::kAggregate:
      return Intersect(in, node.Params<ir::AggregateParams>().group_columns);
    case ir::OpKind::kDistinct:
      return Intersect(in, node.Params<ir::DistinctParams>().columns);
    case ir::OpKind::kJoin: {
      // Non-key columns keep their names; right keys are renamed to the left's.
      const auto& params = node.Params<ir::JoinParams>();
      Carriers out;
      for (const auto& column : node.schema.columns()) {
        if (in.contains(column.name)) {
          out.insert(column.name);
        }
      }
      for (size_t k = 0; k < params.right_keys.size(); ++k) {
        if (in.contains(params.right_keys[k])) {
          out.insert(params.left_keys[k]);
        }
      }
      return out;
    }
    case ir::OpKind::kLimit:
      return {};  // A prefix can consist of pad rows; reject.
    case ir::OpKind::kFilter:
    case ir::OpKind::kSortBy:
    case ir::OpKind::kArithmetic:  // Appends a (possibly wrapped) column only.
    case ir::OpKind::kWindow:
    case ir::OpKind::kConcat:
    case ir::OpKind::kPad:
    case ir::OpKind::kCollect:
      return in;
    case ir::OpKind::kCreate:
      return in;
  }
  return {};
}

// True iff Collect-side stripping is guaranteed to remove every pad row introduced
// below `consumer`: along every downstream path, either the pad rows are eliminated
// (a join against a pad-free side — sentinels never match real keys or another
// stream's sentinels) or some column still holding raw sentinel values survives to
// the output, and no Limit can take a prefix containing pads. `initial` is the
// carrier set of `consumer`'s own output.
bool DownstreamKeepsCarriers(const ir::Dag& dag, const ir::OpNode* consumer,
                             Carriers initial, std::string* why) {
  // A node id present in `carriers` is "contaminated": pad rows can reach it; the
  // mapped set names columns guaranteed to still hold raw sentinels there. Absent =
  // pad-free.
  std::map<int, Carriers> carriers;
  if (initial.empty()) {
    *why = StrFormat("%s #%d keeps no key column", ir::OpKindName(consumer->kind),
                     consumer->id);
    return false;
  }
  carriers[consumer->id] = std::move(initial);

  for (const ir::OpNode* node : dag.TopoOrder()) {
    if (node->id == consumer->id || node->inputs.empty()) {
      continue;
    }
    bool any_contaminated = false;
    for (const ir::OpNode* input : node->inputs) {
      any_contaminated = any_contaminated || carriers.contains(input->id);
    }
    if (!any_contaminated) {
      continue;
    }
    // Compute this node's carriers from its contaminated inputs (topo order
    // guarantees they are final).
    Carriers merged;
    bool first = true;
    if (node->kind == ir::OpKind::kJoin) {
      const bool left_in = carriers.contains(node->inputs[0]->id);
      const bool right_in = carriers.contains(node->inputs[1]->id);
      if (left_in != right_in) {
        // Pads die: their sentinel keys match nothing on the pad-free side.
        carriers.erase(node->id);
        continue;
      }
      // Both sides contaminated (self-join shape): surviving pad rows are
      // pad-matched-pad; the key columns hold sentinels.
      const auto& params = node->Params<ir::JoinParams>();
      for (const auto& key : params.left_keys) {
        merged.insert(key);
      }
      first = false;
    } else {
      for (const ir::OpNode* input : node->inputs) {
        const auto it = carriers.find(input->id);
        if (it == carriers.end()) {
          continue;  // Pad-free branch contributes no pad rows.
        }
        Carriers next = PropagateCarriers(*node, it->second);
        if (first) {
          merged = std::move(next);
          first = false;
        } else {
          // Rows arrive from several contaminated branches: keep the columns
          // guaranteed on every branch.
          merged = Intersect(merged, {next.begin(), next.end()});
        }
      }
    }
    if (!first && merged.empty()) {
      *why = StrFormat("%s #%d drops every sentinel-carrying column",
                       ir::OpKindName(node->kind), node->id);
      return false;
    }
    carriers[node->id] = std::move(merged);
  }
  return true;
}

// The consumer's output columns that keep raw sentinels from its padded inputs.
Carriers InitialCarriers(const ir::OpNode& consumer) {
  Carriers carriers;
  switch (consumer.kind) {
    case ir::OpKind::kJoin:
      // Pad rows only survive a (self-)join inside the key columns.
      for (const auto& key : consumer.Params<ir::JoinParams>().left_keys) {
        carriers.insert(key);
      }
      break;
    case ir::OpKind::kAggregate:
      for (const auto& key : consumer.Params<ir::AggregateParams>().group_columns) {
        carriers.insert(key);
      }
      break;
    case ir::OpKind::kWindow:
    case ir::OpKind::kConcat:
      // Every original column of a pad row still holds its sentinel.
      for (const auto& column : consumer.schema.columns()) {
        carriers.insert(column.name);
      }
      break;
    default:
      break;
  }
  return carriers;
}

}  // namespace

std::vector<std::string> ApplyPadding(ir::Dag& dag) {
  std::vector<std::string> log;
  int64_t next_stream = 0;

  // Collect the edges first: inserting nodes invalidates the traversal.
  struct Edge {
    ir::OpNode* local;     // The locally-computed producer to pad.
    ir::OpNode* consumer;  // The concat or MPC node consuming it.
  };
  std::vector<Edge> edges;
  std::set<std::pair<int, int>> seen;  // (producer id, consumer id): a self-join's
                                       // two identical edges get one shared pad.
  auto add_edge = [&](ir::OpNode* local, ir::OpNode* consumer) {
    if (seen.emplace(local->id, consumer->id).second) {
      edges.push_back({local, consumer});
    }
  };
  for (ir::OpNode* node : dag.TopoOrder()) {
    if (!WantsPaddedInputs(*node)) {
      continue;
    }
    for (ir::OpNode* input : node->inputs) {
      if (input->exec_mode == ir::ExecMode::kLocal &&
          input->kind != ir::OpKind::kPad) {
        add_edge(input, node);
      } else if (input->kind == ir::OpKind::kConcat &&
                 input->exec_mode != ir::ExecMode::kLocal) {
        // The combining concat itself runs under MPC; pad its local branches.
        for (ir::OpNode* branch : input->inputs) {
          if (branch->exec_mode == ir::ExecMode::kLocal &&
              branch->kind != ir::OpKind::kPad) {
            add_edge(branch, input);
          }
        }
      }
    }
  }

  // Contract check per consumer (see the header): pad rows must stay strippable —
  // some sentinel-carrying column must reach every output, and no Limit may take a
  // prefix that could consist of pads. Skip (and log) consumers that fail.
  std::map<int, bool> consumer_ok;
  for (const Edge& edge : edges) {
    if (consumer_ok.contains(edge.consumer->id)) {
      continue;
    }
    std::string why;
    const bool ok = DownstreamKeepsCarriers(dag, edge.consumer,
                                            InitialCarriers(*edge.consumer), &why);
    consumer_ok[edge.consumer->id] = ok;
    if (!ok) {
      log.push_back(StrFormat(
          "padding: skipped inputs of %s #%d (downstream shape unsupported: %s)",
          ir::OpKindName(edge.consumer->kind), edge.consumer->id, why.c_str()));
    }
  }

  for (const Edge& edge : edges) {
    if (!consumer_ok.at(edge.consumer->id)) {
      continue;
    }
    ir::PadParams params;
    params.sentinel_stream = next_stream++;
    const auto pad = dag.AddPad(edge.local, params);
    CONCLAVE_CHECK(pad.ok());
    ir::OpNode* node = *pad;
    // Padding is a local step at the producing party; placement metadata mirrors the
    // padded input (PropagateOwnership cannot rerun here without clobbering the
    // hybrid transform's placements).
    node->owner = edge.local->owner;
    node->stored_with = edge.local->stored_with;
    node->exec_mode = ir::ExecMode::kLocal;
    node->exec_party = edge.local->exec_party;
    node->schema = edge.local->schema;  // Trust sets carry over column-for-column.
    dag.ReplaceInput(edge.consumer, edge.local, node);
    // AddPad wired pad->inputs[0] = local already; ReplaceInput added a second
    // consumer edge. Nothing else to fix: local keeps pad as consumer, consumer
    // points at pad.
    log.push_back(StrFormat(
        "padding: party %d's input #%d to %s #%d padded to a power of two",
        edge.local->exec_party, edge.local->id, ir::OpKindName(edge.consumer->kind),
        edge.consumer->id));
  }
  return log;
}

}  // namespace compiler
}  // namespace conclave
