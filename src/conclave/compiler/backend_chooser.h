// Cost-based MPC backend selection (§9: "we plan ... to make Conclave choose the most
// performant MPC protocol for a query").
//
// The two backend families have sharply different cost profiles (§2.3, Fig. 1):
// secret sharing pays per-record storage/ingest but its arithmetic and equality tests
// are cheap, while garbled circuits evaluate linear passes almost for free (free-XOR)
// yet pay heavily per comparison-rich gate and hold the whole relation's wire labels
// in memory. The chooser prices the MPC-resident part of the DAG under both backends
// through the shared plan-cost subsystem (compiler/plan_cost.h) — the same
// per-primitive charges, network shapes, and memory checks the engines apply at run
// time — treats a simulated OOM or a >2-party execution as infinite Obliv-C cost, and
// picks the cheaper backend.
#ifndef CONCLAVE_COMPILER_BACKEND_CHOOSER_H_
#define CONCLAVE_COMPILER_BACKEND_CHOOSER_H_

#include <string>

#include "conclave/compiler/cardinality.h"
#include "conclave/compiler/codegen.h"
#include "conclave/compiler/plan_cost.h"
#include "conclave/ir/dag.h"
#include "conclave/net/cost_model.h"

namespace conclave {
namespace compiler {

struct BackendChoice {
  MpcBackendKind chosen = MpcBackendKind::kSharemind;
  double sharemind_seconds = 0;  // Estimated MPC-clique time under secret sharing.
  double oblivc_seconds = 0;     // Under garbled circuits; +inf if infeasible.
  std::string rationale;         // One-line explanation for the rewrite log.
  PlanCostReport report;         // Per-node breakdown (the explain payload).
};

// Prices the DAG's MPC/hybrid-resident operators under both backends. Call after
// placement (the passes decide what stays under MPC).
BackendChoice ChooseMpcBackend(const ir::Dag& dag, const CostModel& model,
                               int num_parties,
                               const CardinalityOptions& cardinality = {});

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_BACKEND_CHOOSER_H_
