#include "conclave/compiler/pushup.h"

#include "conclave/common/strings.h"

namespace conclave {
namespace compiler {
namespace {

// A projection is reversible iff it keeps every input column (pure reordering).
bool IsReorderingProjection(const ir::OpNode& node) {
  if (node.kind != ir::OpKind::kProject) {
    return false;
  }
  const auto& params = node.Params<ir::ProjectParams>();
  const Schema& in = node.inputs[0]->schema;
  if (static_cast<int>(params.columns.size()) != in.NumColumns()) {
    return false;
  }
  for (const auto& name : params.columns) {
    if (!in.HasColumn(name)) {
      return false;
    }
  }
  return true;
}

bool IsReversible(const ir::OpNode& node) {
  return node.kind == ir::OpKind::kArithmetic || IsReorderingProjection(node);
}

// Rewrites a leaf COUNT aggregation into MPC-project(group columns) + local count.
bool RewriteLeafCount(ir::Dag& dag, ir::OpNode* node, PartyId recipient,
                      std::vector<std::string>* log) {
  const auto& params = node->Params<ir::AggregateParams>();
  if (params.kind != AggKind::kCount || params.group_columns.empty()) {
    return false;
  }
  const auto project = dag.AddProject(node->inputs[0], params.group_columns);
  if (!project.ok()) {
    return false;
  }
  (*project)->exec_mode = ir::ExecMode::kMpc;
  (*project)->owner = kNoParty;
  (*project)->stored_with = node->inputs[0]->stored_with;
  dag.ReplaceInput(node, node->inputs[0], *project);
  node->exec_mode = ir::ExecMode::kLocal;
  node->exec_party = recipient;
  log->push_back(StrFormat(
      "push-up: leaf count #%d becomes MPC projection #%d + cleartext count at "
      "party %d",
      node->id, (*project)->id, recipient));
  return true;
}

}  // namespace

std::vector<std::string> PushUp(ir::Dag& dag) {
  std::vector<std::string> log;
  for (ir::OpNode* collect : dag.Collects()) {
    const PartyId recipient =
        collect->Params<ir::CollectParams>().recipients.First();
    ir::OpNode* node = collect->inputs[0];
    // Walk up through exclusive (single-consumer) chains of MPC operators.
    while (node != nullptr && node->exec_mode == ir::ExecMode::kMpc &&
           node->outputs.size() == 1) {
      if (IsReversible(*node)) {
        node->exec_mode = ir::ExecMode::kLocal;
        node->exec_party = recipient;
        log.push_back(StrFormat(
            "push-up: reversible %s #%d runs in the clear at recipient party %d",
            ir::OpKindName(node->kind), node->id, recipient));
        node = node->inputs[0];
        continue;
      }
      if (node->kind == ir::OpKind::kAggregate) {
        RewriteLeafCount(dag, node, recipient, &log);
      }
      break;
    }
  }
  return log;
}

}  // namespace compiler
}  // namespace conclave
