// Sort push-up (§5.4, the paper's proposed extension — implemented here).
//
// "Sort operations can move across any order-preserving operator. ... While concat
// operations are not order-preserving, Conclave can still push the sort through the
// concat by inserting after it a merge operation. The merge takes several sorted
// relations and obliviously merges them, which is cheaper than obliviously sorting
// the entire data."
//
// The pass walks each ascending MPC sort up through exclusive chains of
// order-preserving operators (filter, arithmetic, projections that keep the sort
// columns). When it reaches a single-consumer concat, it:
//   1. inserts a per-branch sort below the concat — these regain single-party
//      ownership and run locally in the clear;
//   2. turns the concat into a sorted-merge concat (O(n log n) oblivious merge
//      instead of an O(n log^2 n) oblivious sort);
//   3. deletes the original sort node.
//
// Run after placement (ownership/hybrid), before sort elimination, so downstream
// consumers see the established order. Another instance of Conclave's guiding trade:
// more local work (per-party sorts) for less work under MPC.
#ifndef CONCLAVE_COMPILER_SORT_PUSHUP_H_
#define CONCLAVE_COMPILER_SORT_PUSHUP_H_

#include <string>
#include <vector>

#include "conclave/ir/dag.h"

namespace conclave {
namespace compiler {

std::vector<std::string> PushSortsUp(ir::Dag& dag);

}  // namespace compiler
}  // namespace conclave

#endif  // CONCLAVE_COMPILER_SORT_PUSHUP_H_
