#include "conclave/data/generators.h"

#include <algorithm>

#include "conclave/common/rng.h"

namespace conclave {
namespace data {
namespace {

// Disjoint patient-ID ranges so exclusivity/overlap is exact by construction.
constexpr int64_t kExclusiveBase0 = 1'000'000'000;
constexpr int64_t kExclusiveBase1 = 2'000'000'000;
constexpr int64_t kSharedBase = 3'000'000'000;

// Party `party`'s patient IDs: `overlap_fraction` of them come from the shared pool
// (also held by the other party), the rest from the party-exclusive pool.
std::vector<int64_t> PatientIds(const HealthConfig& config, int party) {
  const int64_t rows = config.rows_per_party;
  const int64_t shared =
      std::min<int64_t>(rows, static_cast<int64_t>(
                                  static_cast<double>(rows) * config.overlap_fraction));
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < shared; ++i) {
    ids.push_back(kSharedBase + i);
  }
  const int64_t base = party == 0 ? kExclusiveBase0 : kExclusiveBase1;
  for (int64_t i = shared; i < rows; ++i) {
    ids.push_back(base + i);
  }
  Rng rng(config.seed * 7919 + static_cast<uint64_t>(party));
  std::shuffle(ids.begin(), ids.end(), rng);
  return ids;
}

}  // namespace

Relation UniformInts(int64_t rows, const std::vector<std::string>& columns,
                     int64_t range, uint64_t seed) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const auto& name : columns) {
    defs.emplace_back(name);
  }
  Relation relation{Schema(std::move(defs))};
  relation.Reserve(rows);
  Rng rng(seed);
  auto& cells = relation.mutable_cells();
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      cells.push_back(rng.NextInRange(0, range - 1));
    }
  }
  return relation;
}

Relation TaxiTrips(const TaxiConfig& config) {
  Relation relation{Schema::Of({"companyID", "price"})};
  relation.Reserve(config.rows);
  Rng rng(config.seed);
  auto& cells = relation.mutable_cells();
  for (int64_t r = 0; r < config.rows; ++r) {
    cells.push_back(config.company_id);
    const bool zero_fare = rng.NextDouble() < config.zero_fare_fraction;
    cells.push_back(zero_fare ? 0 : rng.NextInRange(1, config.max_fare));
  }
  return relation;
}

Relation Demographics(int64_t rows, int64_t ssn_space, int64_t num_zips,
                      uint64_t seed) {
  CONCLAVE_CHECK_LE(rows, ssn_space);
  Relation relation{Schema::Of({"ssn", "zip"})};
  relation.Reserve(rows);
  Rng rng(seed);
  auto& cells = relation.mutable_cells();
  // Unique SSNs: a stride walk over the space (coprime step), zips uniform.
  const int64_t step = ssn_space % 2 == 0 ? ssn_space / 2 - 1 : 2;
  int64_t ssn = 0;
  for (int64_t r = 0; r < rows; ++r) {
    cells.push_back(ssn);
    cells.push_back(rng.NextInRange(0, num_zips - 1));
    ssn = (ssn + step) % ssn_space;
  }
  return relation;
}

Relation CreditScores(int64_t rows, int64_t ssn_space, uint64_t seed) {
  Relation relation{Schema::Of({"ssn", "score"})};
  relation.Reserve(rows);
  Rng rng(seed);
  auto& cells = relation.mutable_cells();
  for (int64_t r = 0; r < rows; ++r) {
    cells.push_back(rng.NextInRange(0, ssn_space - 1));
    cells.push_back(rng.NextInRange(300, 850));
  }
  return relation;
}

Relation Diagnoses(const HealthConfig& config, int party) {
  Relation relation{Schema::Of({"pid", "diag"})};
  relation.Reserve(config.rows_per_party);
  Rng rng(config.seed * 31 + static_cast<uint64_t>(party));
  auto& cells = relation.mutable_cells();
  for (int64_t pid : PatientIds(config, party)) {
    cells.push_back(pid);
    cells.push_back(rng.NextInRange(0, config.num_diagnosis_codes - 1));
  }
  return relation;
}

Relation Medications(const HealthConfig& config, int party) {
  Relation relation{Schema::Of({"pid", "med"})};
  relation.Reserve(config.rows_per_party);
  Rng rng(config.seed * 37 + static_cast<uint64_t>(party));
  auto& cells = relation.mutable_cells();
  for (int64_t pid : PatientIds(config, party)) {
    cells.push_back(pid);
    cells.push_back(rng.NextInRange(0, config.num_medication_codes - 1));
  }
  return relation;
}

Relation ComorbidityDiagnoses(const HealthConfig& config, int party) {
  const int64_t distinct = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(config.rows_per_party) *
                              config.distinct_key_fraction));
  Relation relation{Schema::Of({"pid", "diag"})};
  relation.Reserve(config.rows_per_party);
  Rng rng(config.seed * 41 + static_cast<uint64_t>(party));
  auto& cells = relation.mutable_cells();
  for (int64_t pid : PatientIds(config, party)) {
    cells.push_back(pid);
    cells.push_back(rng.NextInRange(0, distinct - 1));
  }
  return relation;
}

Relation AspirinDiagnoses(const HealthConfig& config, int party) {
  Relation relation = Diagnoses(config, party);
  // ~20% of patients carry the filtered diagnosis so the query output is non-trivial.
  Rng rng(config.seed * 43 + static_cast<uint64_t>(party));
  for (int64_t r = 0; r < relation.NumRows(); ++r) {
    if (rng.NextDouble() < 0.2) {
      relation.Set(r, 1, kHeartDiseaseCode);
    }
  }
  return relation;
}

Relation AspirinMedications(const HealthConfig& config, int party) {
  Relation relation = Medications(config, party);
  Rng rng(config.seed * 47 + static_cast<uint64_t>(party));
  for (int64_t r = 0; r < relation.NumRows(); ++r) {
    if (rng.NextDouble() < 0.3) {
      relation.Set(r, 1, kAspirinCode);
    }
  }
  return relation;
}

Relation CdiffDiagnoses(const HealthConfig& config, int party,
                        double recurrence_fraction) {
  Relation relation{Schema::Of({"pid", "time", "diag"})};
  relation.Reserve(2 * config.rows_per_party);
  Rng rng(config.seed * 53 + static_cast<uint64_t>(party));
  for (int64_t pid : PatientIds(config, party)) {
    // Two events per patient. Times use a party parity (even at hospital 0, odd at
    // hospital 1) so a shared patient's events never collide across parties, keeping
    // window-lag results tie-free; same-party gaps are even to preserve the parity.
    const int64_t base = rng.NextInRange(0, 1500) * 2 + party;
    const double roll = rng.NextDouble();
    if (roll < recurrence_fraction) {
      // Recurrent: second c.diff lands inside the [15, 56]-day window.
      const int64_t gap = 2 * rng.NextInRange(8, 28);
      relation.AppendRow({pid, base, kCdiffCode});
      relation.AppendRow({pid, base + gap, kCdiffCode});
    } else if (roll < 2 * recurrence_fraction) {
      // c.diff recurs, but too late to count.
      const int64_t gap = 2 * rng.NextInRange(40, 200);
      relation.AppendRow({pid, base, kCdiffCode});
      relation.AppendRow({pid, base + gap, kCdiffCode});
    } else {
      // Unrelated diagnoses (codes offset past kCdiffCode).
      relation.AppendRow(
          {pid, base, 100 + rng.NextInRange(0, config.num_diagnosis_codes - 1)});
      relation.AppendRow({pid, base + 2 * rng.NextInRange(1, 100),
                          100 + rng.NextInRange(0, config.num_diagnosis_codes - 1)});
    }
  }
  return relation;
}

}  // namespace data
}  // namespace conclave
