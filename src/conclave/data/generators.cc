#include "conclave/data/generators.h"

#include <algorithm>

#include "conclave/common/rng.h"

namespace conclave {
namespace data {
namespace {

// Disjoint patient-ID ranges so exclusivity/overlap is exact by construction.
constexpr int64_t kExclusiveBase0 = 1'000'000'000;
constexpr int64_t kExclusiveBase1 = 2'000'000'000;
constexpr int64_t kSharedBase = 3'000'000'000;

// Party `party`'s patient IDs: `overlap_fraction` of them come from the shared pool
// (also held by the other party), the rest from the party-exclusive pool.
std::vector<int64_t> PatientIds(const HealthConfig& config, int party) {
  const int64_t rows = config.rows_per_party;
  const int64_t shared =
      std::min<int64_t>(rows, static_cast<int64_t>(
                                  static_cast<double>(rows) * config.overlap_fraction));
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < shared; ++i) {
    ids.push_back(kSharedBase + i);
  }
  const int64_t base = party == 0 ? kExclusiveBase0 : kExclusiveBase1;
  for (int64_t i = shared; i < rows; ++i) {
    ids.push_back(base + i);
  }
  Rng rng(config.seed * 7919 + static_cast<uint64_t>(party));
  std::shuffle(ids.begin(), ids.end(), rng);
  return ids;
}

// The generators presize the column buffers and write through raw pointers (no
// per-row append). RNG draws stay in the historical row-major cell order, so every
// generated relation is bit-identical to the row-major-era output.

}  // namespace

Relation UniformInts(int64_t rows, const std::vector<std::string>& columns,
                     int64_t range, uint64_t seed) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const auto& name : columns) {
    defs.emplace_back(name);
  }
  Relation relation{Schema(std::move(defs))};
  relation.Resize(rows);
  std::vector<int64_t*> data;
  data.reserve(columns.size());
  for (int c = 0; c < relation.NumColumns(); ++c) {
    data.push_back(relation.ColumnData(c));
  }
  Rng rng(seed);
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      data[c][r] = rng.NextInRange(0, range - 1);
    }
  }
  return relation;
}

Relation TaxiTrips(const TaxiConfig& config) {
  Relation relation{Schema::Of({"companyID", "price"})};
  relation.Resize(config.rows);
  int64_t* const company = relation.ColumnData(0);
  int64_t* const price = relation.ColumnData(1);
  std::fill(company, company + config.rows, config.company_id);
  Rng rng(config.seed);
  for (int64_t r = 0; r < config.rows; ++r) {
    const bool zero_fare = rng.NextDouble() < config.zero_fare_fraction;
    price[r] = zero_fare ? 0 : rng.NextInRange(1, config.max_fare);
  }
  return relation;
}

Relation Demographics(int64_t rows, int64_t ssn_space, int64_t num_zips,
                      uint64_t seed) {
  CONCLAVE_CHECK_LE(rows, ssn_space);
  Relation relation{Schema::Of({"ssn", "zip"})};
  relation.Resize(rows);
  int64_t* const ssns = relation.ColumnData(0);
  int64_t* const zips = relation.ColumnData(1);
  // Unique SSNs: a stride walk over the space (coprime step), zips uniform.
  const int64_t step = ssn_space % 2 == 0 ? ssn_space / 2 - 1 : 2;
  int64_t ssn = 0;
  for (int64_t r = 0; r < rows; ++r) {
    ssns[r] = ssn;
    ssn = (ssn + step) % ssn_space;
  }
  Rng rng(seed);
  for (int64_t r = 0; r < rows; ++r) {
    zips[r] = rng.NextInRange(0, num_zips - 1);
  }
  return relation;
}

Relation CreditScores(int64_t rows, int64_t ssn_space, uint64_t seed) {
  Relation relation{Schema::Of({"ssn", "score"})};
  relation.Resize(rows);
  int64_t* const ssns = relation.ColumnData(0);
  int64_t* const scores = relation.ColumnData(1);
  Rng rng(seed);
  for (int64_t r = 0; r < rows; ++r) {
    ssns[r] = rng.NextInRange(0, ssn_space - 1);
    scores[r] = rng.NextInRange(300, 850);
  }
  return relation;
}

namespace {

// (pid, code) relation: pids copied wholesale, codes drawn per row — the shared
// shape of Diagnoses/Medications/ComorbidityDiagnoses.
Relation PidCodeRelation(const char* code_name, const std::vector<int64_t>& pids,
                         uint64_t seed, int64_t code_range) {
  Relation relation{Schema::Of({"pid", code_name})};
  relation.Resize(static_cast<int64_t>(pids.size()));
  std::copy(pids.begin(), pids.end(), relation.ColumnData(0));
  int64_t* const codes = relation.ColumnData(1);
  Rng rng(seed);
  for (size_t r = 0; r < pids.size(); ++r) {
    codes[r] = rng.NextInRange(0, code_range - 1);
  }
  return relation;
}

}  // namespace

Relation Diagnoses(const HealthConfig& config, int party) {
  return PidCodeRelation("diag", PatientIds(config, party),
                         config.seed * 31 + static_cast<uint64_t>(party),
                         config.num_diagnosis_codes);
}

Relation Medications(const HealthConfig& config, int party) {
  return PidCodeRelation("med", PatientIds(config, party),
                         config.seed * 37 + static_cast<uint64_t>(party),
                         config.num_medication_codes);
}

Relation ComorbidityDiagnoses(const HealthConfig& config, int party) {
  const int64_t distinct = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(config.rows_per_party) *
                              config.distinct_key_fraction));
  return PidCodeRelation("diag", PatientIds(config, party),
                         config.seed * 41 + static_cast<uint64_t>(party), distinct);
}

Relation AspirinDiagnoses(const HealthConfig& config, int party) {
  Relation relation = Diagnoses(config, party);
  // ~20% of patients carry the filtered diagnosis so the query output is non-trivial.
  Rng rng(config.seed * 43 + static_cast<uint64_t>(party));
  int64_t* const diags = relation.ColumnData(1);
  for (int64_t r = 0; r < relation.NumRows(); ++r) {
    if (rng.NextDouble() < 0.2) {
      diags[r] = kHeartDiseaseCode;
    }
  }
  return relation;
}

Relation AspirinMedications(const HealthConfig& config, int party) {
  Relation relation = Medications(config, party);
  Rng rng(config.seed * 47 + static_cast<uint64_t>(party));
  int64_t* const meds = relation.ColumnData(1);
  for (int64_t r = 0; r < relation.NumRows(); ++r) {
    if (rng.NextDouble() < 0.3) {
      meds[r] = kAspirinCode;
    }
  }
  return relation;
}

Relation CdiffDiagnoses(const HealthConfig& config, int party,
                        double recurrence_fraction) {
  const std::vector<int64_t> pids = PatientIds(config, party);
  Relation relation{Schema::Of({"pid", "time", "diag"})};
  relation.Resize(2 * static_cast<int64_t>(pids.size()));
  int64_t* const out_pid = relation.ColumnData(0);
  int64_t* const out_time = relation.ColumnData(1);
  int64_t* const out_diag = relation.ColumnData(2);
  Rng rng(config.seed * 53 + static_cast<uint64_t>(party));
  int64_t w = 0;
  for (int64_t pid : pids) {
    // Two events per patient. Times use a party parity (even at hospital 0, odd at
    // hospital 1) so a shared patient's events never collide across parties, keeping
    // window-lag results tie-free; same-party gaps are even to preserve the parity.
    const int64_t base = rng.NextInRange(0, 1500) * 2 + party;
    const double roll = rng.NextDouble();
    int64_t times[2];
    int64_t diags[2];
    if (roll < recurrence_fraction) {
      // Recurrent: second c.diff lands inside the [15, 56]-day window.
      const int64_t gap = 2 * rng.NextInRange(8, 28);
      times[0] = base;
      times[1] = base + gap;
      diags[0] = kCdiffCode;
      diags[1] = kCdiffCode;
    } else if (roll < 2 * recurrence_fraction) {
      // c.diff recurs, but too late to count.
      const int64_t gap = 2 * rng.NextInRange(40, 200);
      times[0] = base;
      times[1] = base + gap;
      diags[0] = kCdiffCode;
      diags[1] = kCdiffCode;
    } else {
      // Unrelated diagnoses (codes offset past kCdiffCode).
      times[0] = base;
      diags[0] = 100 + rng.NextInRange(0, config.num_diagnosis_codes - 1);
      times[1] = base + 2 * rng.NextInRange(1, 100);
      diags[1] = 100 + rng.NextInRange(0, config.num_diagnosis_codes - 1);
    }
    for (int i = 0; i < 2; ++i) {
      out_pid[w] = pid;
      out_time[w] = times[i];
      out_diag[w] = diags[i];
      ++w;
    }
  }
  return relation;
}

}  // namespace data
}  // namespace conclave
