// Synthetic workload generators standing in for the paper's data sets (§7):
// NYC taxi trip fares (market concentration), SSN/zip/score tables (credit card
// regulation), and HealthLNK-style diagnoses/medications (SMCQL comparison). All are
// deterministic in their seed; the distribution knobs the evaluation depends on —
// company count, zero-fare fraction, patient-ID overlap fraction, distinct-key
// fraction — are explicit parameters.
#ifndef CONCLAVE_DATA_GENERATORS_H_
#define CONCLAVE_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "conclave/relational/relation.h"

namespace conclave {
namespace data {

// Uniform random integers; `columns` names become the schema. Values in [0, range).
Relation UniformInts(int64_t rows, const std::vector<std::string>& columns,
                     int64_t range, uint64_t seed);

// --- Market concentration (Fig. 4) ---------------------------------------------------
// One VFH company's trip book: (companyID, price). A `zero_fare_fraction` of trips
// has price 0 (the query filters these); prices otherwise uniform in [1, max_fare].
struct TaxiConfig {
  int64_t rows = 0;
  int64_t company_id = 0;
  int64_t max_fare = 100;
  double zero_fare_fraction = 0.05;
  uint64_t seed = 1;
};
Relation TaxiTrips(const TaxiConfig& config);

// --- Credit card regulation (Fig. 6) --------------------------------------------------
// Regulator side: (ssn, zip) — one row per person, ssn unique in [0, ssn_space).
Relation Demographics(int64_t rows, int64_t ssn_space, int64_t num_zips,
                      uint64_t seed);
// Credit agency side: (ssn, score) — card holders drawn from the same ssn space.
Relation CreditScores(int64_t rows, int64_t ssn_space, uint64_t seed);

// --- HealthLNK-style medical data (Fig. 7) ---------------------------------------------
// Two-hospital setting with a controlled patient-ID overlap: IDs are drawn per party
// from a shared pool such that ~`overlap_fraction` of each party's IDs also occur at
// the other party (2% in the paper's aspirin-count setup).
struct HealthConfig {
  int64_t rows_per_party = 0;
  double overlap_fraction = 0.02;
  int64_t num_diagnosis_codes = 500;
  int64_t num_medication_codes = 200;
  // Comorbidity setup: distinct diagnosis keys as a fraction of rows (10% in §7.4).
  double distinct_key_fraction = 0.1;
  uint64_t seed = 1;
};

// (pid, diag) for one party. `party` in {0, 1} selects the ID sub-pool.
Relation Diagnoses(const HealthConfig& config, int party);
// (pid, med) for one party.
Relation Medications(const HealthConfig& config, int party);
// Diagnosis codes drawn from ceil(rows * distinct_key_fraction) distinct values
// (comorbidity's key-cardinality knob).
Relation ComorbidityDiagnoses(const HealthConfig& config, int party);

// The diagnosis / medication codes the aspirin-count query filters on.
inline constexpr int64_t kHeartDiseaseCode = 414;  // cf. SMCQL's c.diff cohort style.
inline constexpr int64_t kAspirinCode = 1191;

// Aspirin-count data guarantees some rows carry the filtered codes.
Relation AspirinDiagnoses(const HealthConfig& config, int party);
Relation AspirinMedications(const HealthConfig& config, int party);

// --- Recurrent c.diff (SMCQL's third query, §7.4) --------------------------------------
// The recurrence window the query checks: a second c.diff diagnosis between 15 and 56
// days after an earlier one (SMCQL §2.2.1).
inline constexpr int64_t kCdiffCode = 8;
inline constexpr int64_t kRecurrenceGapMinDays = 15;
inline constexpr int64_t kRecurrenceGapMaxDays = 56;

// Timestamped diagnosis events (pid, time, diag) for one party. Each patient's event
// times are unique within and across parties (per-patient strictly increasing with a
// party-dependent phase), so window-lag results are tie-free. ~`recurrence_fraction`
// of patients carry a c.diff pair that lands inside the [15, 56]-day window; other
// c.diff diagnoses recur outside it or not at all.
Relation CdiffDiagnoses(const HealthConfig& config, int party,
                        double recurrence_fraction = 0.1);

}  // namespace data
}  // namespace conclave

#endif  // CONCLAVE_DATA_GENERATORS_H_
