// Query IR: one node per relational operator in the query DAG (§4.2).
//
// A node carries (a) its operator kind and parameters (column references by name —
// resolution against inferred schemas happens at DAG construction), and (b) metadata
// the compiler passes compute: the output schema with *propagated trust sets* (§5.1),
// relation ownership and storage locations (§5.1), MPC placement (§5.2), hybrid
// protocol assignment (§5.3), and sortedness for oblivious-sort elimination (§5.4).
#ifndef CONCLAVE_IR_OP_H_
#define CONCLAVE_IR_OP_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "conclave/common/party.h"
#include "conclave/dp/mechanism.h"
#include "conclave/relational/ops.h"
#include "conclave/relational/schema.h"

namespace conclave {
namespace ir {

enum class OpKind {
  kCreate,      // Input relation stored at a party.
  kConcat,      // Duplicate-preserving union across parties.
  kProject,
  kFilter,
  kJoin,
  kAggregate,
  kArithmetic,  // multiply / divide / add / subtract, appending a result column.
  kWindow,      // Window function over (partition, order), appending a result column.
  kPad,         // Adaptive padding to a power-of-two row count (§9 extension).
  kSortBy,
  kDistinct,
  kLimit,
  kCollect,     // Output relation revealed to recipient parties.
};

const char* OpKindName(OpKind kind);

// Which engine executes a node (decided by the compiler).
enum class ExecMode {
  kLocal,   // Cleartext at exec_party (Python or Spark).
  kMpc,     // Under the MPC backend.
  kHybrid,  // Hybrid MPC-cleartext protocol with an STP (join/aggregate only).
};

const char* ExecModeName(ExecMode mode);

// Hybrid protocol selected for a node (§5.3).
enum class HybridKind {
  kNone,
  kHybridJoin,
  kPublicJoin,
  kHybridAggregate,
  kHybridWindow,
};

const char* HybridKindName(HybridKind kind);

// --- Per-kind parameters -------------------------------------------------------------

struct CreateParams {
  std::string name;        // Input relation name (CSV basename / registry key).
  Schema schema;           // Declared schema with trust annotations (§4.3).
  PartyId party = kNoParty;  // The `at=` owner annotation.
  int64_t num_rows_hint = 0; // Optional cardinality hint for planning diagnostics.
  // Non-empty = the input is a CSV file the owning party's agent reads itself
  // (api::Query::NewCsvTable) instead of a relation passed to Run. When the sole
  // consumer is a fused local chain, the dispatcher streams row ranges from the
  // file batch-at-a-time and the source relation never materializes (§12).
  std::string csv_path;
};

struct ConcatParams {
  // Non-empty = sorted-merge concat: every branch arrives sorted by these columns and
  // the concat merges obliviously instead of interleaving (§5.4's sort push-up).
  std::vector<std::string> merge_columns;
};

struct ProjectParams {
  std::vector<std::string> columns;
};

struct FilterParams {
  std::string column;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_column = false;
  std::string rhs_column;
  int64_t literal = 0;
};

struct JoinParams {
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
};

struct AggregateParams {
  std::vector<std::string> group_columns;  // Empty = global aggregate.
  AggKind kind = AggKind::kSum;
  std::string agg_column;                  // Ignored for kCount.
  std::string output_name;
};

struct ArithmeticParams {
  ArithKind kind = ArithKind::kMul;
  std::string lhs_column;
  bool rhs_is_column = false;
  std::string rhs_column;
  int64_t literal = 0;
  std::string output_name;
  int64_t scale = 1;  // Fixed-point numerator scale for kDiv.
};

struct WindowParams {
  std::vector<std::string> partition_columns;
  std::string order_column;
  WindowFn fn = WindowFn::kRowNumber;
  std::string value_column;  // Ignored for kRowNumber.
  std::string output_name;
};

// Adaptive padding (§9's future-work direction, implemented): a local step that pads
// a party's MPC contribution to the next power of two with sentinel rows, hiding the
// exact (data-dependent) cardinality behind a log2 bucket. Sentinel cells live in
// [ops::kSentinelBase, ...), far above the supported data domain; each pad row's
// cells are globally unique, so pads never join with anything and never collide in
// group-by keys. Recipients strip sentinel rows at the Collect boundary.
struct PadParams {
  // Disambiguates sentinels across pad sites (party/branch index).
  int64_t sentinel_stream = 0;
};

struct SortByParams {
  std::vector<std::string> columns;
  bool ascending = true;
};

struct DistinctParams {
  std::vector<std::string> columns;
};

struct LimitParams {
  int64_t count = 0;
};

struct CollectParams {
  std::string name;      // Output relation name.
  PartySet recipients;   // The `to=` annotation: who learns the cleartext result.
  // Optional differential-privacy request: the recipients receive the listed columns
  // with calibrated discrete-Laplace noise instead of exact values (§8 extension).
  dp::DpSpec dp;
};

using OpParams =
    std::variant<CreateParams, ConcatParams, ProjectParams, FilterParams, JoinParams,
                 AggregateParams, ArithmeticParams, WindowParams, PadParams,
                 SortByParams, DistinctParams, LimitParams, CollectParams>;

// --- The node -------------------------------------------------------------------------

struct OpNode {
  int id = -1;
  OpKind kind = OpKind::kCreate;
  OpParams params;
  std::vector<OpNode*> inputs;   // Upstream nodes (owned by the Dag).
  std::vector<OpNode*> outputs;  // Downstream consumers (maintained by the Dag).

  // Output schema, with column names inferred at construction and trust sets filled
  // by the trust-propagation pass.
  Schema schema;

  // --- Ownership metadata (§5.1) ---
  // Parties holding (partitions of) this relation's cleartext or shares.
  PartySet stored_with;
  // The party able to derive this relation locally, or kNoParty for combined data.
  PartyId owner = kNoParty;

  // --- Placement (§5.2–5.3) ---
  ExecMode exec_mode = ExecMode::kMpc;
  PartyId exec_party = kNoParty;  // For kLocal: where the op runs.
  HybridKind hybrid = HybridKind::kNone;
  PartyId stp = kNoParty;         // For hybrid ops: the selectively-trusted party.

  // --- Sortedness tracking (§5.4) ---
  std::vector<std::string> sorted_by;  // Columns the output is known sorted by.
  bool assume_sorted = false;          // Oblivious sort elided by sort-elimination.

  // Set by rewrites that strand this node with no remaining consumers (the
  // concat a push-down hollowed out). A retired node stays in the DAG — its
  // inputs' acquisition order and its virtual-clock charges are part of the
  // plan's contract — but the executor runs it as a phantom: every meter is
  // charged, no payload is shared or materialized.
  bool retired = false;

  template <typename T>
  const T& Params() const {
    return std::get<T>(params);
  }
  template <typename T>
  T& MutableParams() {
    return std::get<T>(params);
  }

  bool IsLeafOutput() const { return kind == OpKind::kCollect; }
  // One-line rendering: "#4 join[mpc,hybrid-join,stp=0] keys=(ssn|ssn)".
  std::string ToString() const;
};

}  // namespace ir
}  // namespace conclave

#endif  // CONCLAVE_IR_OP_H_
