// The query DAG: owns operator nodes, infers schemas at construction, and provides
// the traversal and rewrite primitives (topological order, node insertion/splicing)
// the compiler passes build on.
//
// Construction validates eagerly: every column reference is resolved against the
// inferred input schemas and errors carry the offending schema, so malformed queries
// fail at build time with actionable messages — matching Conclave's goal of freeing
// analysts from MPC-level debugging (§5).
#ifndef CONCLAVE_IR_DAG_H_
#define CONCLAVE_IR_DAG_H_

#include <memory>
#include <string>
#include <vector>

#include "conclave/common/status.h"
#include "conclave/ir/op.h"

namespace conclave {
namespace ir {

class Dag {
 public:
  Dag() = default;
  // Dags own their nodes and hand out stable pointers; no copies.
  Dag(const Dag&) = delete;
  Dag& operator=(const Dag&) = delete;
  Dag(Dag&&) = default;
  Dag& operator=(Dag&&) = default;

  // --- Construction (used by the api frontend and tests) ---------------------------
  StatusOr<OpNode*> AddCreate(const std::string& name, Schema schema, PartyId party,
                              int64_t num_rows_hint = 0,
                              std::string csv_path = {});
  StatusOr<OpNode*> AddConcat(std::vector<OpNode*> inputs);
  StatusOr<OpNode*> AddProject(OpNode* input, std::vector<std::string> columns);
  StatusOr<OpNode*> AddFilter(OpNode* input, FilterParams params);
  StatusOr<OpNode*> AddJoin(OpNode* left, OpNode* right,
                            std::vector<std::string> left_keys,
                            std::vector<std::string> right_keys);
  StatusOr<OpNode*> AddAggregate(OpNode* input, AggregateParams params);
  StatusOr<OpNode*> AddArithmetic(OpNode* input, ArithmeticParams params);
  StatusOr<OpNode*> AddWindow(OpNode* input, WindowParams params);
  StatusOr<OpNode*> AddPad(OpNode* input, PadParams params);
  StatusOr<OpNode*> AddSortBy(OpNode* input, std::vector<std::string> columns,
                              bool ascending = true);
  StatusOr<OpNode*> AddDistinct(OpNode* input, std::vector<std::string> columns);
  StatusOr<OpNode*> AddLimit(OpNode* input, int64_t count);
  StatusOr<OpNode*> AddCollect(OpNode* input, const std::string& name,
                               PartySet recipients, dp::DpSpec dp = {});

  // --- Rewrite support (used by compiler passes) -------------------------------------
  // Re-infers `node`'s schema *names* from its (possibly rewritten) inputs, keeping
  // trust sets empty for the trust pass to refill.
  Status ReinferSchema(OpNode* node);
  // Replaces every use of `old_input` in `node` with `new_input`, updating back-edges.
  void ReplaceInput(OpNode* node, OpNode* old_input, OpNode* new_input);
  // Detaches a node from its inputs (it must have no outputs); keeps ownership (the
  // node stays allocated but unreachable, and is excluded from traversals).
  void Detach(OpNode* node);

  // --- Traversal -----------------------------------------------------------------------
  // Nodes reachable from Create roots, in a topological order (inputs before users).
  std::vector<OpNode*> TopoOrder() const;
  std::vector<OpNode*> Creates() const;
  std::vector<OpNode*> Collects() const;
  int64_t NumReachableNodes() const {
    return static_cast<int64_t>(TopoOrder().size());
  }

  // Multi-line rendering of the (reachable) DAG in topological order.
  std::string ToString() const;
  // Graphviz dot output (used by examples to visualize rewrites).
  std::string ToDot() const;

  // The highest party id mentioned in Create/Collect annotations, plus one.
  int NumParties() const;

 private:
  OpNode* NewNode(OpKind kind, OpParams params, std::vector<OpNode*> inputs);

  std::vector<std::unique_ptr<OpNode>> nodes_;
  int next_id_ = 0;
};

// Infers output column names for a node from its inputs' schemas (trust sets are left
// empty; the trust pass computes them). Exposed for pass-internal rewrites.
StatusOr<Schema> InferSchemaNames(const OpNode& node);

}  // namespace ir
}  // namespace conclave

#endif  // CONCLAVE_IR_DAG_H_
