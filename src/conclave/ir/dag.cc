#include "conclave/ir/dag.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "conclave/common/strings.h"

namespace conclave {
namespace ir {
namespace {

Status CheckColumns(const Schema& schema, const std::vector<std::string>& columns) {
  for (const auto& name : columns) {
    if (!schema.HasColumn(name)) {
      return NotFoundError(StrFormat("no column '%s' in schema %s", name.c_str(),
                                     schema.ToString().c_str()));
    }
  }
  return Status::Ok();
}

// Strips trust annotations: schema names only (the trust pass refills trust sets).
Schema NamesOnly(const Schema& schema) {
  std::vector<ColumnDef> defs;
  defs.reserve(static_cast<size_t>(schema.NumColumns()));
  for (const auto& column : schema.columns()) {
    defs.emplace_back(column.name);
  }
  return Schema(std::move(defs));
}

}  // namespace

StatusOr<Schema> InferSchemaNames(const OpNode& node) {
  switch (node.kind) {
    case OpKind::kCreate:
      return NamesOnly(node.Params<CreateParams>().schema);
    case OpKind::kConcat: {
      if (node.inputs.empty()) {
        return InvalidArgumentError("concat requires at least one input");
      }
      const Schema& first = node.inputs[0]->schema;
      for (const OpNode* input : node.inputs) {
        if (!first.NamesMatch(input->schema)) {
          return InvalidArgumentError(StrFormat(
              "concat schema mismatch: %s vs %s", first.ToString().c_str(),
              input->schema.ToString().c_str()));
        }
      }
      return NamesOnly(first);
    }
    case OpKind::kProject: {
      const auto& p = node.Params<ProjectParams>();
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(node.inputs[0]->schema, p.columns));
      std::vector<ColumnDef> defs;
      for (const auto& name : p.columns) {
        defs.emplace_back(name);
      }
      return Schema(std::move(defs));
    }
    case OpKind::kFilter: {
      const auto& p = node.Params<FilterParams>();
      std::vector<std::string> used{p.column};
      if (p.rhs_is_column) {
        used.push_back(p.rhs_column);
      }
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(node.inputs[0]->schema, used));
      return NamesOnly(node.inputs[0]->schema);
    }
    case OpKind::kJoin: {
      const auto& p = node.Params<JoinParams>();
      if (p.left_keys.empty() || p.left_keys.size() != p.right_keys.size()) {
        return InvalidArgumentError("join requires equal-length, non-empty key lists");
      }
      const Schema& left = node.inputs[0]->schema;
      const Schema& right = node.inputs[1]->schema;
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(left, p.left_keys));
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(right, p.right_keys));
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> lk, left.IndicesOf(p.left_keys));
      CONCLAVE_ASSIGN_OR_RETURN(std::vector<int> rk, right.IndicesOf(p.right_keys));
      return NamesOnly(ops::JoinOutputSchema(left, right, lk, rk));
    }
    case OpKind::kAggregate: {
      const auto& p = node.Params<AggregateParams>();
      const Schema& input = node.inputs[0]->schema;
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(input, p.group_columns));
      if (p.kind != AggKind::kCount) {
        CONCLAVE_RETURN_IF_ERROR(CheckColumns(input, {p.agg_column}));
      }
      std::vector<ColumnDef> defs;
      for (const auto& name : p.group_columns) {
        defs.emplace_back(name);
      }
      defs.emplace_back(p.output_name);
      return Schema(std::move(defs));
    }
    case OpKind::kArithmetic: {
      const auto& p = node.Params<ArithmeticParams>();
      const Schema& input = node.inputs[0]->schema;
      std::vector<std::string> used{p.lhs_column};
      if (p.rhs_is_column) {
        used.push_back(p.rhs_column);
      }
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(input, used));
      if (input.HasColumn(p.output_name)) {
        return InvalidArgumentError(StrFormat("arithmetic output column '%s' already "
                                              "exists in %s",
                                              p.output_name.c_str(),
                                              input.ToString().c_str()));
      }
      Schema schema = NamesOnly(input);
      std::vector<ColumnDef> defs = schema.columns();
      defs.emplace_back(p.output_name);
      return Schema(std::move(defs));
    }
    case OpKind::kWindow: {
      const auto& p = node.Params<WindowParams>();
      const Schema& input = node.inputs[0]->schema;
      if (p.partition_columns.empty()) {
        return InvalidArgumentError("window requires at least one partition column");
      }
      std::vector<std::string> used = p.partition_columns;
      used.push_back(p.order_column);
      if (p.fn != WindowFn::kRowNumber) {
        used.push_back(p.value_column);
      }
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(input, used));
      if (input.HasColumn(p.output_name)) {
        return InvalidArgumentError(StrFormat(
            "window output column '%s' already exists in %s", p.output_name.c_str(),
            input.ToString().c_str()));
      }
      Schema schema = NamesOnly(input);
      std::vector<ColumnDef> defs = schema.columns();
      defs.emplace_back(p.output_name);
      return Schema(std::move(defs));
    }
    case OpKind::kPad:
      return NamesOnly(node.inputs[0]->schema);
    case OpKind::kSortBy: {
      const auto& p = node.Params<SortByParams>();
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(node.inputs[0]->schema, p.columns));
      return NamesOnly(node.inputs[0]->schema);
    }
    case OpKind::kDistinct: {
      const auto& p = node.Params<DistinctParams>();
      CONCLAVE_RETURN_IF_ERROR(CheckColumns(node.inputs[0]->schema, p.columns));
      std::vector<ColumnDef> defs;
      for (const auto& name : p.columns) {
        defs.emplace_back(name);
      }
      return Schema(std::move(defs));
    }
    case OpKind::kLimit:
      return NamesOnly(node.inputs[0]->schema);
    case OpKind::kCollect:
      return NamesOnly(node.inputs[0]->schema);
  }
  return InternalError("unhandled op kind in schema inference");
}

OpNode* Dag::NewNode(OpKind kind, OpParams params, std::vector<OpNode*> inputs) {
  auto node = std::make_unique<OpNode>();
  node->id = next_id_++;
  node->kind = kind;
  node->params = std::move(params);
  node->inputs = std::move(inputs);
  for (OpNode* input : node->inputs) {
    input->outputs.push_back(node.get());
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

StatusOr<OpNode*> Dag::AddCreate(const std::string& name, Schema schema, PartyId party,
                                 int64_t num_rows_hint, std::string csv_path) {
  if (party == kNoParty) {
    return InvalidArgumentError("create requires an owning party (at= annotation)");
  }
  CreateParams params;
  params.name = name;
  params.schema = std::move(schema);
  params.party = party;
  params.num_rows_hint = num_rows_hint;
  params.csv_path = std::move(csv_path);
  OpNode* node = NewNode(OpKind::kCreate, std::move(params), {});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddConcat(std::vector<OpNode*> inputs) {
  OpNode* node = NewNode(OpKind::kConcat, ConcatParams{}, std::move(inputs));
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddProject(OpNode* input, std::vector<std::string> columns) {
  OpNode* node =
      NewNode(OpKind::kProject, ProjectParams{std::move(columns)}, {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddFilter(OpNode* input, FilterParams params) {
  OpNode* node = NewNode(OpKind::kFilter, std::move(params), {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddJoin(OpNode* left, OpNode* right,
                               std::vector<std::string> left_keys,
                               std::vector<std::string> right_keys) {
  JoinParams params;
  params.left_keys = std::move(left_keys);
  params.right_keys = std::move(right_keys);
  OpNode* node = NewNode(OpKind::kJoin, std::move(params), {left, right});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddAggregate(OpNode* input, AggregateParams params) {
  OpNode* node = NewNode(OpKind::kAggregate, std::move(params), {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddArithmetic(OpNode* input, ArithmeticParams params) {
  OpNode* node = NewNode(OpKind::kArithmetic, std::move(params), {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddPad(OpNode* input, PadParams params) {
  OpNode* node = NewNode(OpKind::kPad, std::move(params), {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddWindow(OpNode* input, WindowParams params) {
  OpNode* node = NewNode(OpKind::kWindow, std::move(params), {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddSortBy(OpNode* input, std::vector<std::string> columns,
                                 bool ascending) {
  OpNode* node = NewNode(OpKind::kSortBy, SortByParams{std::move(columns), ascending},
                         {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddDistinct(OpNode* input, std::vector<std::string> columns) {
  OpNode* node =
      NewNode(OpKind::kDistinct, DistinctParams{std::move(columns)}, {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddLimit(OpNode* input, int64_t count) {
  if (count < 0) {
    return InvalidArgumentError("limit count must be non-negative");
  }
  OpNode* node = NewNode(OpKind::kLimit, LimitParams{count}, {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

StatusOr<OpNode*> Dag::AddCollect(OpNode* input, const std::string& name,
                                  PartySet recipients, dp::DpSpec dp) {
  if (recipients.Empty()) {
    return InvalidArgumentError("collect requires at least one recipient party");
  }
  if (dp.enabled) {
    if (dp.epsilon <= 0) {
      return InvalidArgumentError("dp epsilon must be positive");
    }
    for (const auto& [column, sensitivity] : dp.column_sensitivity) {
      if (!input->schema.HasColumn(column)) {
        return NotFoundError(StrFormat("dp column '%s' not in output schema %s",
                                       column.c_str(),
                                       input->schema.ToString().c_str()));
      }
      if (sensitivity <= 0) {
        return InvalidArgumentError(StrFormat(
            "dp sensitivity for '%s' must be positive", column.c_str()));
      }
    }
  }
  CollectParams params;
  params.name = name;
  params.recipients = recipients;
  params.dp = std::move(dp);
  OpNode* node = NewNode(OpKind::kCollect, std::move(params), {input});
  CONCLAVE_RETURN_IF_ERROR(ReinferSchema(node));
  return node;
}

Status Dag::ReinferSchema(OpNode* node) {
  CONCLAVE_ASSIGN_OR_RETURN(node->schema, InferSchemaNames(*node));
  return Status::Ok();
}

void Dag::ReplaceInput(OpNode* node, OpNode* old_input, OpNode* new_input) {
  bool replaced = false;
  for (auto& input : node->inputs) {
    if (input == old_input) {
      input = new_input;
      replaced = true;
    }
  }
  CONCLAVE_CHECK(replaced);
  auto& outs = old_input->outputs;
  outs.erase(std::remove(outs.begin(), outs.end(), node), outs.end());
  new_input->outputs.push_back(node);
}

void Dag::Detach(OpNode* node) {
  CONCLAVE_CHECK(node->outputs.empty());
  for (OpNode* input : node->inputs) {
    auto& outs = input->outputs;
    outs.erase(std::remove(outs.begin(), outs.end(), node), outs.end());
  }
  node->inputs.clear();
}

std::vector<OpNode*> Dag::TopoOrder() const {
  // Kahn's algorithm over nodes reachable from Create roots; detached rewrite
  // leftovers are skipped. Node ids break ties for deterministic ordering.
  std::vector<OpNode*> order;
  std::unordered_set<const OpNode*> reachable;
  // Roots are Create nodes with at least one consumer (consumer-less creates are
  // rewrite leftovers or degenerate queries and are excluded from plans).
  std::vector<OpNode*> stack;
  for (const auto& node : nodes_) {
    if (node->kind == OpKind::kCreate && !node->outputs.empty()) {
      stack.push_back(node.get());
    }
  }
  while (!stack.empty()) {
    OpNode* node = stack.back();
    stack.pop_back();
    if (!reachable.insert(node).second) {
      continue;
    }
    for (OpNode* out : node->outputs) {
      stack.push_back(out);
    }
  }
  // Kahn over the reachable subgraph.
  std::unordered_map<const OpNode*, int> pending;
  std::vector<OpNode*> ready;
  for (const auto& node : nodes_) {
    if (!reachable.contains(node.get())) {
      continue;
    }
    int count = 0;
    for (OpNode* input : node->inputs) {
      if (reachable.contains(input)) {
        ++count;
      }
    }
    pending[node.get()] = count;
    if (count == 0) {
      ready.push_back(node.get());
    }
  }
  std::sort(ready.begin(), ready.end(),
            [](const OpNode* a, const OpNode* b) { return a->id < b->id; });
  while (!ready.empty()) {
    // Pop the lowest id for determinism.
    auto it = std::min_element(
        ready.begin(), ready.end(),
        [](const OpNode* a, const OpNode* b) { return a->id < b->id; });
    OpNode* node = *it;
    ready.erase(it);
    order.push_back(node);
    for (OpNode* out : node->outputs) {
      if (!reachable.contains(out)) {
        continue;
      }
      if (--pending[out] == 0) {
        ready.push_back(out);
      }
    }
  }
  return order;
}

std::vector<OpNode*> Dag::Creates() const {
  std::vector<OpNode*> creates;
  for (OpNode* node : TopoOrder()) {
    if (node->kind == OpKind::kCreate) {
      creates.push_back(node);
    }
  }
  return creates;
}

std::vector<OpNode*> Dag::Collects() const {
  std::vector<OpNode*> collects;
  for (OpNode* node : TopoOrder()) {
    if (node->kind == OpKind::kCollect) {
      collects.push_back(node);
    }
  }
  return collects;
}

std::string Dag::ToString() const {
  std::string out;
  for (const OpNode* node : TopoOrder()) {
    out += node->ToString();
    if (!node->inputs.empty()) {
      std::vector<std::string> ids;
      for (const OpNode* input : node->inputs) {
        ids.push_back(StrFormat("#%d", input->id));
      }
      out += " <- " + StrJoin(ids, ", ");
    }
    out += "\n";
  }
  return out;
}

std::string Dag::ToDot() const {
  std::string out = "digraph conclave {\n  rankdir=BT;\n";
  for (const OpNode* node : TopoOrder()) {
    const char* color = node->exec_mode == ExecMode::kMpc     ? "lightcoral"
                        : node->exec_mode == ExecMode::kHybrid ? "gold"
                                                               : "lightblue";
    out += StrFormat("  n%d [label=\"%s\\n%s\", style=filled, fillcolor=%s];\n",
                     node->id, OpKindName(node->kind),
                     ExecModeName(node->exec_mode), color);
    for (const OpNode* input : node->inputs) {
      out += StrFormat("  n%d -> n%d;\n", input->id, node->id);
    }
  }
  out += "}\n";
  return out;
}

int Dag::NumParties() const {
  int max_party = -1;
  for (const auto& node : nodes_) {
    if (node->kind == OpKind::kCreate) {
      max_party = std::max(max_party, node->Params<CreateParams>().party);
    } else if (node->kind == OpKind::kCollect) {
      for (PartyId p : node->Params<CollectParams>().recipients.ToVector()) {
        max_party = std::max(max_party, p);
      }
    }
  }
  return max_party + 1;
}

}  // namespace ir
}  // namespace conclave
