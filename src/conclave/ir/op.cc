#include "conclave/ir/op.h"

#include "conclave/common/strings.h"

namespace conclave {
namespace ir {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCreate:
      return "create";
    case OpKind::kConcat:
      return "concat";
    case OpKind::kProject:
      return "project";
    case OpKind::kFilter:
      return "filter";
    case OpKind::kJoin:
      return "join";
    case OpKind::kAggregate:
      return "aggregate";
    case OpKind::kArithmetic:
      return "arithmetic";
    case OpKind::kWindow:
      return "window";
    case OpKind::kPad:
      return "pad";
    case OpKind::kSortBy:
      return "sort_by";
    case OpKind::kDistinct:
      return "distinct";
    case OpKind::kLimit:
      return "limit";
    case OpKind::kCollect:
      return "collect";
  }
  return "?";
}

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kLocal:
      return "local";
    case ExecMode::kMpc:
      return "mpc";
    case ExecMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

const char* HybridKindName(HybridKind kind) {
  switch (kind) {
    case HybridKind::kNone:
      return "none";
    case HybridKind::kHybridJoin:
      return "hybrid-join";
    case HybridKind::kPublicJoin:
      return "public-join";
    case HybridKind::kHybridAggregate:
      return "hybrid-agg";
    case HybridKind::kHybridWindow:
      return "hybrid-window";
  }
  return "?";
}

std::string OpNode::ToString() const {
  std::string out = StrFormat("#%d %s[%s", id, OpKindName(kind),
                              ExecModeName(exec_mode));
  if (exec_mode == ExecMode::kLocal && exec_party != kNoParty) {
    out += StrFormat("@%d", exec_party);
  }
  if (hybrid != HybridKind::kNone) {
    out += StrFormat(",%s,stp=%d", HybridKindName(hybrid), stp);
  }
  if (assume_sorted) {
    out += ",sorted";
  }
  out += "]";
  switch (kind) {
    case OpKind::kCreate: {
      const auto& p = Params<CreateParams>();
      out += StrFormat(" %s@%d", p.name.c_str(), p.party);
      break;
    }
    case OpKind::kJoin: {
      const auto& p = Params<JoinParams>();
      out += StrFormat(" keys=(%s|%s)", StrJoin(p.left_keys, ",").c_str(),
                       StrJoin(p.right_keys, ",").c_str());
      break;
    }
    case OpKind::kAggregate: {
      const auto& p = Params<AggregateParams>();
      out += StrFormat(" %s(%s) by (%s)", AggKindName(p.kind), p.agg_column.c_str(),
                       StrJoin(p.group_columns, ",").c_str());
      break;
    }
    case OpKind::kWindow: {
      const auto& p = Params<WindowParams>();
      out += StrFormat(" %s(%s) over (partition %s order %s)", WindowFnName(p.fn),
                       p.value_column.c_str(),
                       StrJoin(p.partition_columns, ",").c_str(),
                       p.order_column.c_str());
      break;
    }
    case OpKind::kCollect: {
      const auto& p = Params<CollectParams>();
      out += StrFormat(" %s -> %s", p.name.c_str(), p.recipients.ToString().c_str());
      break;
    }
    default:
      break;
  }
  out += " :: " + schema.ToString();
  if (owner != kNoParty) {
    out += StrFormat(" owner=%d", owner);
  }
  return out;
}

}  // namespace ir
}  // namespace conclave
