// Hybrid MPC–cleartext window function (an extension in the style of §5.3).
//
// Window functions sort by (partition, order) and scan — the same shape as the
// aggregation of Jónsson et al. [39] — so the hybrid aggregation's trick applies
// unchanged: outsource the sort to the STP.
//   1. Obliviously shuffle the input; reveal the shuffled (partition, order) columns
//      to the STP.
//   2. STP enumerates the revealed keys and sorts (keys, index) in the clear.
//   3. STP computes per-row same-partition flags.
//   4. STP sends the index ordering to the other parties in the clear.
//   5. STP secret-shares the same-partition flags.
//   6. Parties reorder the shuffled relation by the public ordering.
//   7. Under MPC, a flag-gated pass computes the window column (lag: one
//      multiplication per row; row_number / running_sum: log-depth segmented scan).
//
// Leakage: the STP learns the shuffled partition and order columns. Unlike the hybrid
// aggregation, nothing is compacted, so the other parties learn nothing at all —
// the output row count equals the (public) input row count.
// Asymptotics: O(n log n) shuffle instead of an O(n log^2 n)-comparison oblivious
// sort, and no oblivious comparisons (the slowest secret-sharing primitive).
#ifndef CONCLAVE_HYBRID_HYBRID_WINDOW_H_
#define CONCLAVE_HYBRID_HYBRID_WINDOW_H_

#include <span>
#include <string>

#include "conclave/common/status.h"
#include "conclave/mpc/protocols.h"

namespace conclave {
namespace hybrid {

StatusOr<SharedRelation> HybridWindow(SecretShareEngine& engine,
                                      const SharedRelation& input,
                                      std::span<const int> partition_columns,
                                      int order_column, WindowFn fn, int value_column,
                                      const std::string& output_name, PartyId stp,
                                      int num_parties);

}  // namespace hybrid
}  // namespace conclave

#endif  // CONCLAVE_HYBRID_HYBRID_WINDOW_H_
