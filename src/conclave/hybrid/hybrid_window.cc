#include "conclave/hybrid/hybrid_window.h"

#include <numeric>
#include <utility>
#include <vector>

namespace conclave {
namespace hybrid {

StatusOr<SharedRelation> HybridWindow(SecretShareEngine& engine,
                                      const SharedRelation& input,
                                      std::span<const int> partition_columns,
                                      int order_column, WindowFn fn, int value_column,
                                      const std::string& output_name, PartyId stp,
                                      int num_parties) {
  const CostModel& model = engine.network().model();
  CONCLAVE_CHECK_GT(partition_columns.size(), 0u);
  const int64_t n = input.NumRows();
  if (n == 0) {
    return mpc::Window(engine, input, partition_columns, order_column, fn,
                       value_column, output_name, /*assume_sorted=*/false);
  }
  CONCLAVE_RETURN_IF_ERROR(mpc::CheckWorkingSet(model, 3 * input.NumCells()));

  // Step 1: shuffle, then reveal only the (partition, order) columns to the STP.
  SharedRelation shuffled = ObliviousShuffle(engine, input);
  std::vector<int> key_columns(partition_columns.begin(), partition_columns.end());
  key_columns.push_back(order_column);
  Relation keys_clear = ReconstructRelation(mpc::Project(shuffled, key_columns));
  const uint64_t key_bytes =
      static_cast<uint64_t>(keys_clear.NumRows()) * key_columns.size() * 8;
  for (PartyId p = 0; p < num_parties; ++p) {
    if (p != stp) {
      engine.network().Send(p, stp, key_bytes);
    }
  }
  engine.network().Rounds(1);

  // Steps 2–3: STP enumerates, sorts by (partition, order), and computes
  // same-partition flags in the clear.
  Relation enumerated = ops::Enumerate(keys_clear, "__idx");
  std::vector<int> sort_positions(key_columns.size());
  std::iota(sort_positions.begin(), sort_positions.end(), 0);
  Relation sorted = ops::SortBy(enumerated, sort_positions);
  engine.network().CpuSeconds(model.PythonSeconds(static_cast<uint64_t>(n)));

  const int idx_col = static_cast<int>(key_columns.size());
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::vector<int64_t> flags(static_cast<size_t>(n), 0);
  for (int64_t r = 0; r < n; ++r) {
    order[static_cast<size_t>(r)] = sorted.At(r, idx_col);
    if (r > 0) {
      bool equal = true;
      for (size_t k = 0; k < partition_columns.size(); ++k) {
        equal = equal && sorted.At(r, static_cast<int>(k)) ==
                             sorted.At(r - 1, static_cast<int>(k));
      }
      flags[static_cast<size_t>(r)] = equal ? 1 : 0;
    }
  }

  // Step 4: the index ordering travels in the clear.
  engine.network().Broadcast(stp, num_parties, static_cast<uint64_t>(n) * 8);
  // Step 5: the same-partition flags are secret-shared by the STP.
  for (PartyId p = 0; p < num_parties; ++p) {
    if (p != stp) {
      engine.network().Send(stp, p, static_cast<uint64_t>(n) * 8);
    }
  }
  engine.network().Rounds(2);
  SharedColumn shared_flags = engine.Share(flags);

  // Step 6: reorder the shuffled relation by the public ordering.
  SharedRelation ordered = ApplyPublicOrder(shuffled, order);

  // Step 7: flag-gated window scan, shared with the pure-MPC window.
  return mpc::WindowWithFlags(engine, ordered, fn, value_column, output_name,
                              shared_flags);
}

}  // namespace hybrid
}  // namespace conclave
