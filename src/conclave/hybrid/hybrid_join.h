// Hybrid MPC–cleartext join (§5.3, Figure 3 of the paper).
//
// Preconditions (enforced by the compiler's trust propagation): the join-key columns
// of both sides share a selectively-trusted party (STP). Protocol:
//   1. Obliviously shuffle both input relations under MPC.
//   2. Project to the key columns and reveal those columns (only) to the STP.
//   3. STP enumerates rows of each side in the clear.
//   4. STP joins the enumerated key relations in the clear.
//   5. STP projects out the two row-index columns and secret-shares them back.
//   6. Under MPC, obliviously select the contributing rows from the shuffled inputs
//      (Laud-style indexing [45]).
//   7. Concatenate the selected rows column-wise and reshuffle.
//
// Leakage: the STP learns both key columns (in shuffled order); all parties learn the
// result row count. Asymptotics: O((n+m) log (n+m)) non-linear MPC operations versus
// O(n^2) for the Cartesian MPC join.
#ifndef CONCLAVE_HYBRID_HYBRID_JOIN_H_
#define CONCLAVE_HYBRID_HYBRID_JOIN_H_

#include <span>

#include "conclave/common/status.h"
#include "conclave/mpc/protocols.h"

namespace conclave {
namespace hybrid {

// `stp` identifies the selectively-trusted party (for network accounting: the key
// columns are revealed to it and index relations are shared back from it).
// `num_parties` is the number of computing parties in the deployment.
StatusOr<SharedRelation> HybridJoin(SecretShareEngine& engine,
                                    const SharedRelation& left,
                                    const SharedRelation& right,
                                    std::span<const int> left_keys,
                                    std::span<const int> right_keys, PartyId stp,
                                    int num_parties);

}  // namespace hybrid
}  // namespace conclave

#endif  // CONCLAVE_HYBRID_HYBRID_JOIN_H_
