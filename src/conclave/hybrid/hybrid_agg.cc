#include "conclave/hybrid/hybrid_agg.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

namespace conclave {
namespace hybrid {

StatusOr<SharedRelation> HybridAggregate(SecretShareEngine& engine,
                                         const SharedRelation& input,
                                         std::span<const int> group_columns,
                                         AggKind kind, int agg_column,
                                         const std::string& output_name, PartyId stp,
                                         int num_parties) {
  const CostModel& model = engine.network().model();
  CONCLAVE_CHECK_GT(group_columns.size(), 0u);
  const int64_t n = input.NumRows();
  if (n == 0) {
    // Zero rows aggregate to zero groups; fall through to the plain MPC protocol,
    // which constructs the empty result with the right schema.
    return mpc::Aggregate(engine, input, group_columns, kind, agg_column, output_name,
                          /*assume_sorted=*/false);
  }
  CONCLAVE_RETURN_IF_ERROR(mpc::CheckWorkingSet(model, 3 * input.NumCells()));

  // Step 1: shuffle, then reveal only the group-by column(s) to the STP.
  SharedRelation shuffled = ObliviousShuffle(engine, input);
  Relation keys_clear = ReconstructRelation(mpc::Project(shuffled, group_columns));
  const uint64_t key_bytes = static_cast<uint64_t>(keys_clear.NumRows()) *
                             group_columns.size() * 8;
  for (PartyId p = 0; p < num_parties; ++p) {
    if (p != stp) {
      engine.network().Send(p, stp, key_bytes);
    }
  }
  engine.network().Rounds(1);

  // Steps 2–3: STP enumerates, sorts by key, and computes equality flags in the clear.
  Relation enumerated = ops::Enumerate(keys_clear, "__idx");
  std::vector<int> key_positions(group_columns.size());
  std::iota(key_positions.begin(), key_positions.end(), 0);
  Relation sorted = ops::SortBy(enumerated, key_positions);
  engine.network().CpuSeconds(model.PythonSeconds(static_cast<uint64_t>(n)));

  // Columnar STP steps: the enumeration column lifts out wholesale, and the
  // adjacent-equality flags fold one contiguous key-column pass at a time.
  const int idx_col = static_cast<int>(group_columns.size());
  const auto idx = sorted.ColumnSpan(idx_col);
  std::vector<int64_t> order(idx.begin(), idx.end());
  std::vector<int64_t> flags(static_cast<size_t>(n), 0);
  if (n > 0) {
    std::fill(flags.begin() + 1, flags.end(), 1);
    for (int k : key_positions) {
      const auto column = sorted.ColumnSpan(k);
      for (int64_t r = 1; r < n; ++r) {
        flags[static_cast<size_t>(r)] &=
            column[static_cast<size_t>(r)] == column[static_cast<size_t>(r - 1)] ? 1
                                                                                 : 0;
      }
    }
  }

  // Step 4: the index ordering travels in the clear.
  engine.network().Broadcast(stp, num_parties, static_cast<uint64_t>(n) * 8);
  // Step 5: the equality flags are secret-shared by the STP.
  for (PartyId p = 0; p < num_parties; ++p) {
    if (p != stp) {
      engine.network().Send(stp, p, static_cast<uint64_t>(n) * 8);
    }
  }
  engine.network().Rounds(2);
  SharedColumn shared_flags = engine.Share(flags);

  // Step 6: reorder the shuffled relation by the public ordering.
  SharedRelation ordered = ApplyPublicOrder(shuffled, order);

  // Steps 7–8: flag-driven scan, shuffle, reveal keep-flags, compact — shared with
  // the pure-MPC aggregation.
  return mpc::AggregateWithFlags(engine, ordered, group_columns, kind, agg_column,
                                 output_name, shared_flags);
}

}  // namespace hybrid
}  // namespace conclave
