#include "conclave/hybrid/hybrid_join.h"

#include <utility>
#include <vector>

namespace conclave {
namespace hybrid {
namespace {

// Reveals `relation` (already safe to open, e.g. shuffled key columns) to the STP:
// the other parties send their shares of every cell.
Relation RevealToStp(SecretShareEngine& engine, const SharedRelation& relation,
                     PartyId stp, int num_parties) {
  const uint64_t bytes_per_sender = relation.NumCells() * 8;
  for (PartyId p = 0; p < num_parties; ++p) {
    if (p != stp) {
      engine.network().Send(p, stp, bytes_per_sender);
    }
  }
  engine.network().Rounds(1);
  return ReconstructRelation(relation);
}

// STP secret-shares a locally computed relation column back into the MPC, zero-copy
// from its contiguous column buffer.
SharedColumn ShareFromStp(SecretShareEngine& engine, const Relation& relation, int col,
                          PartyId stp, int num_parties) {
  const uint64_t bytes = static_cast<uint64_t>(relation.NumRows()) * 8;
  for (PartyId p = 0; p < num_parties; ++p) {
    if (p != stp) {
      engine.network().Send(stp, p, bytes);
    }
  }
  engine.network().Rounds(1);
  return engine.ShareColumn(relation, col);
}

}  // namespace

StatusOr<SharedRelation> HybridJoin(SecretShareEngine& engine,
                                    const SharedRelation& left,
                                    const SharedRelation& right,
                                    std::span<const int> left_keys,
                                    std::span<const int> right_keys, PartyId stp,
                                    int num_parties) {
  const CostModel& model = engine.network().model();
  // The protocol keeps ~6 live copies of the inputs at its peak (originals, shuffled
  // versions, selected rows, reshuffle buffers); this is what makes Sharemind exhaust
  // its memory in the MPC part of the hybrid join at ~2M input records (Fig. 5a).
  CONCLAVE_RETURN_IF_ERROR(
      mpc::CheckWorkingSet(model, 6 * (left.NumCells() + right.NumCells())));

  // Step 1: oblivious shuffles decorrelate revealed keys from input row order.
  SharedRelation left_shuffled = ObliviousShuffle(engine, left);
  SharedRelation right_shuffled = ObliviousShuffle(engine, right);

  // Step 2: reveal only the key columns to the STP.
  Relation left_keys_clear =
      RevealToStp(engine, mpc::Project(left_shuffled, left_keys), stp, num_parties);
  Relation right_keys_clear =
      RevealToStp(engine, mpc::Project(right_shuffled, right_keys), stp, num_parties);

  // Steps 3–4: STP enumerates and joins in the clear.
  Relation left_enum = ops::Enumerate(left_keys_clear, "__lidx");
  Relation right_enum = ops::Enumerate(right_keys_clear, "__ridx");
  std::vector<int> key_positions(left_keys.size());
  for (size_t i = 0; i < key_positions.size(); ++i) {
    key_positions[i] = static_cast<int>(i);
  }
  Relation joined_idx = ops::Join(left_enum, right_enum, key_positions, key_positions);
  engine.network().CpuSeconds(model.PythonSeconds(
      static_cast<uint64_t>(left_enum.NumRows() + right_enum.NumRows() +
                            joined_idx.NumRows())));

  // Step 5: STP shares the two index relations back into the MPC.
  const int lidx_col = static_cast<int>(left_keys.size());
  const int ridx_col = lidx_col + 1;
  SharedColumn left_indexes =
      ShareFromStp(engine, joined_idx, lidx_col, stp, num_parties);
  SharedColumn right_indexes =
      ShareFromStp(engine, joined_idx, ridx_col, stp, num_parties);

  CONCLAVE_RETURN_IF_ERROR(mpc::CheckWorkingSet(
      model, 3 * (left.NumCells() + right.NumCells()) +
                 static_cast<uint64_t>(joined_idx.NumRows()) *
                     (left.NumCells() / std::max<int64_t>(left.NumRows(), 1) +
                      right.NumCells() / std::max<int64_t>(right.NumRows(), 1))));

  // Step 6: oblivious indexing selects the contributing rows.
  SharedRelation left_rows = ObliviousSelect(engine, left_shuffled, left_indexes);
  SharedRelation right_rows = ObliviousSelect(engine, right_shuffled, right_indexes);

  // Step 7: assemble the join output (keys from the left, then non-key columns) and
  // reshuffle.
  std::vector<int> left_rest;
  std::vector<int> right_rest;
  Schema out_schema = ops::JoinOutputSchema(left.schema(), right.schema(), left_keys,
                                            right_keys, &left_rest, &right_rest);
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(out_schema.NumColumns()));
  for (int c : left_keys) {
    columns.push_back(left_rows.Column(c));
  }
  for (int c : left_rest) {
    columns.push_back(left_rows.Column(c));
  }
  for (int c : right_rest) {
    columns.push_back(right_rows.Column(c));
  }
  SharedRelation result(std::move(out_schema), std::move(columns));
  return ObliviousShuffle(engine, result);
}

}  // namespace hybrid
}  // namespace conclave
