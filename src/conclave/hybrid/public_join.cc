#include "conclave/hybrid/public_join.h"

#include <utility>
#include <vector>

namespace conclave {
namespace hybrid {
namespace {

// Builds the joined index pairs on the cleartext key relations: for every matching
// (left row, right row) pair, in left-then-right order.
void JoinIndexes(const Relation& left_keys, const Relation& right_keys,
                 std::vector<int64_t>* left_rows, std::vector<int64_t>* right_rows) {
  Relation left_enum = ops::Enumerate(left_keys, "__lidx");
  Relation right_enum = ops::Enumerate(right_keys, "__ridx");
  std::vector<int> key_positions(static_cast<size_t>(left_keys.NumColumns()));
  for (size_t i = 0; i < key_positions.size(); ++i) {
    key_positions[i] = static_cast<int>(i);
  }
  Relation joined = ops::Join(left_enum, right_enum, key_positions, key_positions);
  // The joiner sorts by key in the clear; downstream oblivious sorts become
  // redundant (the sort-elimination win of §5.4 / §7.4).
  joined = ops::SortBy(joined, key_positions);
  // The index columns come out of the join as contiguous buffers; lift them
  // wholesale.
  const int lidx_col = left_keys.NumColumns();
  const auto lidx = joined.ColumnSpan(lidx_col);
  const auto ridx = joined.ColumnSpan(lidx_col + 1);
  left_rows->assign(lidx.begin(), lidx.end());
  right_rows->assign(ridx.begin(), ridx.end());
}

}  // namespace

StatusOr<SharedRelation> PublicJoinShared(SecretShareEngine& engine,
                                          const SharedRelation& left,
                                          const SharedRelation& right,
                                          std::span<const int> left_keys,
                                          std::span<const int> right_keys,
                                          PartyId joiner, int num_parties) {
  const CostModel& model = engine.network().model();
  CONCLAVE_RETURN_IF_ERROR(
      mpc::CheckWorkingSet(model, left.NumCells() + right.NumCells()));

  // Open the public key columns (keys are public, so no shuffle is required).
  Relation left_keys_clear =
      ReconstructRelation(mpc::Project(left, left_keys));
  Relation right_keys_clear =
      ReconstructRelation(mpc::Project(right, right_keys));
  const uint64_t key_bytes =
      (static_cast<uint64_t>(left_keys_clear.NumRows()) +
       static_cast<uint64_t>(right_keys_clear.NumRows())) *
      left_keys.size() * 8;
  for (PartyId p = 0; p < num_parties; ++p) {
    if (p != joiner) {
      engine.network().Send(p, joiner, key_bytes / std::max(num_parties - 1, 1));
    }
  }
  engine.network().Rounds(1);

  // Joiner computes the index pairs in the clear and broadcasts them.
  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  JoinIndexes(left_keys_clear, right_keys_clear, &left_rows, &right_rows);
  engine.network().CpuSeconds(model.PythonSeconds(
      static_cast<uint64_t>(left_keys_clear.NumRows() + right_keys_clear.NumRows() +
                            static_cast<int64_t>(left_rows.size()))));
  engine.network().Broadcast(joiner, num_parties,
                             static_cast<uint64_t>(left_rows.size()) * 16);
  engine.network().Rounds(1);

  // Every party assembles the joined result by local share gathering — the public
  // indexes make this communication-free.
  std::vector<int> left_rest;
  std::vector<int> right_rest;
  Schema out_schema = ops::JoinOutputSchema(left.schema(), right.schema(), left_keys,
                                            right_keys, &left_rest, &right_rest);
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(out_schema.NumColumns()));
  for (int c : left_keys) {
    columns.push_back(GatherColumn(left.Column(c), left_rows));
  }
  for (int c : left_rest) {
    columns.push_back(GatherColumn(left.Column(c), left_rows));
  }
  for (int c : right_rest) {
    columns.push_back(GatherColumn(right.Column(c), right_rows));
  }
  return SharedRelation(std::move(out_schema), std::move(columns));
}

StatusOr<Relation> PublicJoinCleartext(SimNetwork& network, const Relation& left,
                                       const Relation& right,
                                       std::span<const int> left_keys,
                                       std::span<const int> right_keys, PartyId joiner,
                                       int num_parties, bool use_spark) {
  const CostModel& model = network.model();

  // Key columns travel to the joiner.
  std::vector<int> lk(left_keys.begin(), left_keys.end());
  std::vector<int> rk(right_keys.begin(), right_keys.end());
  Relation left_keys_clear = ops::Project(left, lk);
  Relation right_keys_clear = ops::Project(right, rk);
  const uint64_t key_bytes = (left_keys_clear.ByteSize() + right_keys_clear.ByteSize());
  network.Broadcast(joiner == 0 ? 1 : 0, num_parties, 0);  // No-op: keeps party ids in
                                                           // range for 2-party runs.
  network.Send(joiner == 0 ? 1 : 0, joiner, key_bytes);
  network.Rounds(1);

  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  JoinIndexes(left_keys_clear, right_keys_clear, &left_rows, &right_rows);
  const uint64_t work = static_cast<uint64_t>(left.NumRows() + right.NumRows()) +
                        static_cast<uint64_t>(left_rows.size());
  if (use_spark) {
    network.CpuSeconds(model.SparkSeconds(work, model.spark_workers_per_party));
  } else {
    network.CpuSeconds(model.PythonSeconds(work));
  }
  network.Broadcast(joiner, num_parties,
                    static_cast<uint64_t>(left_rows.size()) * 16);
  network.Rounds(1);

  // Assemble the joined relation in the clear.
  std::vector<int> left_rest;
  std::vector<int> right_rest;
  Schema out_schema = ops::JoinOutputSchema(left.schema(), right.schema(), left_keys,
                                            right_keys, &left_rest, &right_rest);
  // Per-column gathers against the public index lists (same assembly as the
  // share-space PublicJoinShared above, in the clear).
  Relation output{std::move(out_schema)};
  output.Resize(static_cast<int64_t>(left_rows.size()));
  int out_col = 0;
  for (int c : left_keys) {
    ops::GatherColumnInto(left, c, left_rows, output.ColumnData(out_col++));
  }
  for (int c : left_rest) {
    ops::GatherColumnInto(left, c, left_rows, output.ColumnData(out_col++));
  }
  for (int c : right_rest) {
    ops::GatherColumnInto(right, c, right_rows, output.ColumnData(out_col++));
  }
  return output;
}

}  // namespace hybrid
}  // namespace conclave
