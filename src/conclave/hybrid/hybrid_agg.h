// Hybrid MPC–cleartext aggregation (§5.3 of the paper).
//
// Adapts the sorting-based MPC aggregation of Jónsson et al. [39] by outsourcing the
// sort to the STP:
//   1. Obliviously shuffle the input; reveal the shuffled group-by column to the STP.
//   2. STP enumerates the revealed keys and sorts (key, index) by key in the clear.
//   3. STP computes per-row equality flags (key equal to previous row's key).
//   4. STP sends the index ordering to the other parties in the clear.
//   5. STP secret-shares the equality flags.
//   6. Parties reorder the shuffled relation by the public ordering.
//   7. Under MPC, a flag-driven (log-depth segmented) scan accumulates each group
//      into its last row; keep-flags mark group boundaries.
//   8. Shuffle the result, reveal keep-flags, discard non-final rows.
//
// Leakage: STP learns the shuffled group-by column; all parties learn the group count.
// Asymptotics: O(n log n) shuffle + scan multiplications instead of an
// O(n log^2 n)-comparison oblivious sort — and no oblivious comparisons at all, which
// are the slowest secret-sharing primitive (§5.3).
#ifndef CONCLAVE_HYBRID_HYBRID_AGG_H_
#define CONCLAVE_HYBRID_HYBRID_AGG_H_

#include <span>
#include <string>

#include "conclave/common/status.h"
#include "conclave/mpc/protocols.h"

namespace conclave {
namespace hybrid {

StatusOr<SharedRelation> HybridAggregate(SecretShareEngine& engine,
                                         const SharedRelation& input,
                                         std::span<const int> group_columns,
                                         AggKind kind, int agg_column,
                                         const std::string& output_name, PartyId stp,
                                         int num_parties);

}  // namespace hybrid
}  // namespace conclave

#endif  // CONCLAVE_HYBRID_HYBRID_AGG_H_
