// Public join (§5.3): when the join-key columns of both sides are public (every
// party is in their trust sets), the join structure can be computed entirely in the
// clear by one party — no oblivious shuffling or indexing is needed.
//
// Two variants:
//  * PublicJoinShared — inputs live under MPC; key columns are opened, a designated
//    party computes the (left-index, right-index) pairs, broadcasts them, and every
//    party assembles the joined result by local share gathering (free).
//  * PublicJoinCleartext — inputs are party-local cleartext relations (the SMCQL
//    slicing path, §7.4): key columns travel to the joiner, the index relation is
//    broadcast, and the result is assembled in the clear. The joiner's work can run on
//    a data-parallel backend, which is why Conclave prefers this over MPC frameworks'
//    built-in cleartext capabilities (§5.3).
#ifndef CONCLAVE_HYBRID_PUBLIC_JOIN_H_
#define CONCLAVE_HYBRID_PUBLIC_JOIN_H_

#include <span>

#include "conclave/common/status.h"
#include "conclave/mpc/protocols.h"

namespace conclave {
namespace hybrid {

StatusOr<SharedRelation> PublicJoinShared(SecretShareEngine& engine,
                                          const SharedRelation& left,
                                          const SharedRelation& right,
                                          std::span<const int> left_keys,
                                          std::span<const int> right_keys,
                                          PartyId joiner, int num_parties);

// `use_spark` selects the joiner's local backend (Spark vs sequential Python) for
// cost accounting.
StatusOr<Relation> PublicJoinCleartext(SimNetwork& network, const Relation& left,
                                       const Relation& right,
                                       std::span<const int> left_keys,
                                       std::span<const int> right_keys, PartyId joiner,
                                       int num_parties, bool use_spark);

}  // namespace hybrid
}  // namespace conclave

#endif  // CONCLAVE_HYBRID_PUBLIC_JOIN_H_
