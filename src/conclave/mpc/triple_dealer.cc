#include "conclave/mpc/triple_dealer.h"

#include "conclave/common/thread_pool.h"

namespace conclave {

void TripleDealer::Fill(TripleBatch& batch, size_t count) {
  batch.a.Resize(count);
  batch.b.Resize(count);
  batch.c.Resize(count);
  const AesCounterRng rng(seed_, next_stream_++);
  Ring* const a0 = batch.a.shares[0].data();
  Ring* const a1 = batch.a.shares[1].data();
  Ring* const a2 = batch.a.shares[2].data();
  Ring* const b0 = batch.b.shares[0].data();
  Ring* const b1 = batch.b.shares[1].data();
  Ring* const b2 = batch.b.shares[2].data();
  Ring* const c0 = batch.c.shares[0].data();
  Ring* const c1 = batch.c.shares[1].data();
  Ring* const c2 = batch.c.shares[2].data();
  ParallelFor(
      0, static_cast<int64_t>(count),
      [&](int64_t lo, int64_t hi) {
        // Each triple consumes 8 stream words; batched AES fills produce them
        // in fixed-size sub-chunks on the stack, then a scalar pass unpacks
        // and combines — the unpack is cheap next to the per-word finalizer
        // calls it replaces.
        constexpr int64_t kChunkTriples = 128;
        uint64_t words[8 * kChunkTriples];
        for (int64_t chunk = lo; chunk < hi; chunk += kChunkTriples) {
          const int64_t end = chunk + kChunkTriples < hi ? chunk + kChunkTriples : hi;
          rng.FillWords(8 * static_cast<uint64_t>(chunk),
                        static_cast<size_t>(8 * (end - chunk)), words);
          for (int64_t i = chunk; i < end; ++i) {
            const uint64_t* const w = words + 8 * (i - chunk);
            const Ring a = w[0];
            const Ring b = w[1];
            // Share each of a, b, c = a*b with fresh randomness.
            a0[i] = w[2];
            a1[i] = w[3];
            a2[i] = a - w[2] - w[3];
            b0[i] = w[4];
            b1[i] = w[5];
            b2[i] = b - w[4] - w[5];
            c0[i] = w[6];
            c1[i] = w[7];
            c2[i] = a * b - w[6] - w[7];
          }
        }
      },
      kMpcGrainRows);
  triples_dealt_ += count;
}

const TripleBatch& TripleDealer::DealBatch(size_t count) {
  Fill(scratch_, count);
  return scratch_;
}

TripleBatch TripleDealer::Deal(size_t count) {
  TripleBatch batch;
  Fill(batch, count);
  return batch;
}

}  // namespace conclave
