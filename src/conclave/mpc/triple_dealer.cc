#include "conclave/mpc/triple_dealer.h"

#include "conclave/common/thread_pool.h"

namespace conclave {

void TripleDealer::Fill(TripleBatch& batch, size_t count) {
  batch.a.Resize(count);
  batch.b.Resize(count);
  batch.c.Resize(count);
  const CounterRng rng(seed_, next_stream_++);
  Ring* const a0 = batch.a.shares[0].data();
  Ring* const a1 = batch.a.shares[1].data();
  Ring* const a2 = batch.a.shares[2].data();
  Ring* const b0 = batch.b.shares[0].data();
  Ring* const b1 = batch.b.shares[1].data();
  Ring* const b2 = batch.b.shares[2].data();
  Ring* const c0 = batch.c.shares[0].data();
  Ring* const c1 = batch.c.shares[1].data();
  Ring* const c2 = batch.c.shares[2].data();
  ParallelFor(
      0, static_cast<int64_t>(count),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const uint64_t base = 8 * static_cast<uint64_t>(i);
          const Ring a = rng.At(base);
          const Ring b = rng.At(base + 1);
          // Share each of a, b, c = a*b with fresh randomness.
          const Ring r0 = rng.At(base + 2);
          const Ring r1 = rng.At(base + 3);
          const Ring r2 = rng.At(base + 4);
          const Ring r3 = rng.At(base + 5);
          const Ring r4 = rng.At(base + 6);
          const Ring r5 = rng.At(base + 7);
          a0[i] = r0;
          a1[i] = r1;
          a2[i] = a - r0 - r1;
          b0[i] = r2;
          b1[i] = r3;
          b2[i] = b - r2 - r3;
          c0[i] = r4;
          c1[i] = r5;
          c2[i] = a * b - r4 - r5;
        }
      },
      kMpcGrainRows);
  triples_dealt_ += count;
}

const TripleBatch& TripleDealer::DealBatch(size_t count) {
  Fill(scratch_, count);
  return scratch_;
}

TripleBatch TripleDealer::Deal(size_t count) {
  TripleBatch batch;
  Fill(batch, count);
  return batch;
}

}  // namespace conclave
