#include "conclave/mpc/triple_dealer.h"

namespace conclave {

TripleBatch TripleDealer::Deal(size_t count) {
  TripleBatch batch;
  batch.a = SharedColumn(count);
  batch.b = SharedColumn(count);
  batch.c = SharedColumn(count);
  for (size_t i = 0; i < count; ++i) {
    const Ring a = rng_.Next();
    const Ring b = rng_.Next();
    const Ring c = a * b;
    // Share each of a, b, c with fresh randomness.
    Ring r0 = rng_.Next();
    Ring r1 = rng_.Next();
    batch.a.shares[0][i] = r0;
    batch.a.shares[1][i] = r1;
    batch.a.shares[2][i] = a - r0 - r1;
    r0 = rng_.Next();
    r1 = rng_.Next();
    batch.b.shares[0][i] = r0;
    batch.b.shares[1][i] = r1;
    batch.b.shares[2][i] = b - r0 - r1;
    r0 = rng_.Next();
    r1 = rng_.Next();
    batch.c.shares[0][i] = r0;
    batch.c.shares[1][i] = r1;
    batch.c.shares[2][i] = c - r0 - r1;
  }
  triples_dealt_ += count;
  return batch;
}

}  // namespace conclave
