// MPC relational operators over secret-shared relations (the Sharemind backend's
// operator library, §6 of the paper: "We implemented the same standard MPC algorithms
// for joins (a Cartesian product approach) and aggregations [39] in both Sharemind and
// Obliv-C").
//
// Leakage discipline: relation sizes under MPC are public (§3.2). The compaction-based
// operators (filter, join, aggregation, distinct) reveal their *output* sizes, matching
// the paper's Sharemind baseline ("a join implementation that leaks output size",
// §7.3); rows are obliviously shuffled before any flag is opened so nothing else leaks.
//
// Operators that can exceed the simulated Sharemind VM's memory return
// RESOURCE_EXHAUSTED via StatusOr (see CostModel::ss_memory_limit_bytes).
#ifndef CONCLAVE_MPC_PROTOCOLS_H_
#define CONCLAVE_MPC_PROTOCOLS_H_

#include <span>
#include <string>
#include <vector>

#include "conclave/common/status.h"
#include "conclave/mpc/oblivious.h"
#include "conclave/mpc/secret_share_engine.h"
#include "conclave/relational/ops.h"

namespace conclave {
namespace mpc {

// Round depth of the batched Cartesian-join equality phase (all n*m tests run as one
// deep batch rather than per-element fan-in trees). Shared with the planner.
inline constexpr uint64_t kSsJoinRounds = 8;

// Simulated-memory guard: `live_cells` shared cells must fit in the Sharemind VM.
Status CheckWorkingSet(const CostModel& model, uint64_t live_cells);

// Secret-shares a cleartext relation into the MPC, charging per-record ingest and
// storage-layer costs (the dominant cost of linear passes; Fig. 1c).
StatusOr<SharedRelation> InputRelation(SecretShareEngine& engine,
                                       const Relation& input);

// Opens a shared relation to the computing parties (end of an MPC step).
Relation RevealRelation(SecretShareEngine& engine, const SharedRelation& input);

// The meters one reveal of `cells` shared cells charges, shared by the
// materializing RevealRelation and the streaming RevealSource boundary so the
// two paths are bit-identical on the virtual clock and counters.
void ChargeRevealMeters(SimNetwork& network, uint64_t cells);

// Column selection/reordering: share-local, no protocol cost.
SharedRelation Project(const SharedRelation& input, std::span<const int> columns);

// Share-wise concatenation of same-schema relations.
SharedRelation Concat(std::span<const SharedRelation> inputs);

// Appends a computed column; add/sub/scalar-mul are local, column-mul costs one
// Beaver multiplication per row, div runs the division protocol.
SharedRelation Arithmetic(SecretShareEngine& engine, const SharedRelation& input,
                          const ArithSpec& spec);

// Appends a public 0..n-1 index column.
SharedRelation Enumerate(const SharedRelation& input, const std::string& index_name);

// Oblivious filter: comparison per row, shuffle, open flags, compact. Reveals the
// number of matching rows only.
StatusOr<SharedRelation> Filter(SecretShareEngine& engine, const SharedRelation& input,
                                const FilterPredicate& predicate);

// Cartesian-product oblivious join: n*m private equality tests, then compaction.
// Reveals the join's output size only.
StatusOr<SharedRelation> Join(SecretShareEngine& engine, const SharedRelation& left,
                              const SharedRelation& right,
                              std::span<const int> left_keys,
                              std::span<const int> right_keys);

// Sorting-network aggregation (Jónsson et al. [39]): oblivious sort by group key,
// adjacent-equality flags, log-depth segmented scan accumulating each group into its
// last row, shuffle, open keep-flags, compact. Reveals the number of groups only.
// If `assume_sorted` (sort-elimination, §5.4), the oblivious sort is skipped.
StatusOr<SharedRelation> Aggregate(SecretShareEngine& engine,
                                   const SharedRelation& input,
                                   std::span<const int> group_columns, AggKind kind,
                                   int agg_column, const std::string& output_name,
                                   bool assume_sorted = false);

// The scan-and-compact tail of the aggregation protocol, factored out so the hybrid
// aggregation (§5.3) can drive it with STP-computed equality flags instead of
// MPC-computed ones. `ordered` must be grouped by the group columns (sorted, or
// STP-ordered); `equal_prev_flags[i]` is a shared 0/1 marking row i as belonging to
// row i-1's group (flag 0 at row 0).
StatusOr<SharedRelation> AggregateWithFlags(SecretShareEngine& engine,
                                            const SharedRelation& ordered,
                                            std::span<const int> group_columns,
                                            AggKind kind, int agg_column,
                                            const std::string& output_name,
                                            const SharedColumn& equal_prev_flags);

// Oblivious window function (f(...) OVER (PARTITION BY p ORDER BY o)): oblivious sort
// by (partition, order) unless `assume_sorted`, adjacent-equality partition flags, and
// a flag-gated linear pass (kLag) or log-depth segmented scan (kRowNumber /
// kRunningSum). Output keeps every input row in sorted order with the computed column
// appended — nothing is compacted or revealed, so the operator leaks nothing.
StatusOr<SharedRelation> Window(SecretShareEngine& engine, const SharedRelation& input,
                                std::span<const int> partition_columns,
                                int order_column, WindowFn fn, int value_column,
                                const std::string& output_name,
                                bool assume_sorted = false);

// The scan tail of the window protocol, factored out so the hybrid window (an
// STP-assisted §5.3-style variant) can drive it with STP-computed partition flags.
// `ordered` must be arranged by (partition, order); `same_partition_flags[i]` is a
// shared 0/1 marking row i as belonging to row i-1's partition (flag 0 at row 0).
StatusOr<SharedRelation> WindowWithFlags(SecretShareEngine& engine,
                                         const SharedRelation& ordered, WindowFn fn,
                                         int value_column,
                                         const std::string& output_name,
                                         const SharedColumn& same_partition_flags);

// Oblivious sort by columns (Batcher network), as a standalone operator (order-by).
StatusOr<SharedRelation> Sort(SecretShareEngine& engine, const SharedRelation& input,
                              std::span<const int> columns, bool ascending = true,
                              bool assume_sorted = false);

// First `count` rows (public count; meaningful after Sort).
SharedRelation Limit(const SharedRelation& input, int64_t count);

// Distinct rows of the projected columns; reveals the distinct count only.
StatusOr<SharedRelation> Distinct(SecretShareEngine& engine,
                                  const SharedRelation& input,
                                  std::span<const int> columns,
                                  bool assume_sorted = false);

// Shuffles, opens the 0/1 column `flag_column`, keeps rows with flag == 1, and drops
// the flag column. The building block of all size-revealing compactions; exposed for
// the hybrid aggregation (§5.3, step 8).
SharedRelation ShuffleRevealCompact(SecretShareEngine& engine,
                                    const SharedRelation& input, int flag_column);

// Order-preserving filter: evaluates the predicate per row and returns the secret 0/1
// flag column without compacting, so relation size and row order are untouched. Used
// when downstream operators exploit an established sort order (§5.4): compaction would
// either reshuffle or leak per-row predicate outcomes.
SharedColumn FilterFlags(SecretShareEngine& engine, const SharedRelation& input,
                         const FilterPredicate& predicate);

// Counts distinct values of `key_column` among rows whose keep-flag is 1, assuming
// the relation is sorted by that key (e.g., by a public join). One linear pass:
// a segmented OR over keep-flags plus a boundary sum — the O(n) distinct-count the
// paper credits sort elimination for in aspirin count (§7.4). Returns a 1-row,
// 1-column relation.
StatusOr<SharedRelation> CountDistinctSorted(SecretShareEngine& engine,
                                             const SharedRelation& input,
                                             int key_column,
                                             const SharedColumn& keep_flags,
                                             const std::string& output_name);

}  // namespace mpc
}  // namespace conclave

#endif  // CONCLAVE_MPC_PROTOCOLS_H_
