// A streaming reveal: the MPC -> cleartext frontier as a batch-range source.
//
// The materializing path opens a shared relation in one shot (RevealRelation)
// and hands the whole cleartext relation to the consumer. A RevealSource
// instead holds the shares and reconstructs row ranges on demand, so a fused
// downstream chain (relational/pipeline.h BatchPipeline::RunFromReveal) pulls
// batch-at-a-time and the revealed relation never exists in memory — the
// reveal-boundary analog of CsvSource (DESIGN.md §12), closing the last
// materialization on the hot path (DESIGN.md §14).
//
// Reconstruction is a pure share sum per cell, so row ranges are independent:
// RevealRows is const and thread-safe, and sharded chains reveal disjoint
// ranges concurrently with results bit-identical to slicing the one-shot
// reveal. Boundary charges are NOT applied here — the dispatcher charges
// mpc::ChargeRevealMeters once for the whole reveal when it converts the value,
// exactly as the materializing path does, so clocks and counters cannot depend
// on the knob.
//
// Under fault injection the corruptions that DeliverReveal would inject inline
// arrive instead as a schedule (net/fault.h DeliverRevealStreamed); the
// detection moves to the batch that covers each corrupted row: the delivery
// copy is corrupted, its per-batch commitment (malicious::IncrementalCommitter,
// nonce tweaked by the batch's begin row) must mismatch, and the retransmitted
// batch must reconstruct bit-identically. Retry charges were already priced by
// the injector, so the virtual clock matches the materializing fault path.
#ifndef CONCLAVE_MPC_REVEAL_SOURCE_H_
#define CONCLAVE_MPC_REVEAL_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "conclave/mpc/share.h"
#include "conclave/net/fault.h"
#include "conclave/relational/relation.h"

namespace conclave {
namespace mpc {

class RevealSource {
 public:
  explicit RevealSource(SharedRelation shared);

  const Schema& schema() const { return shared_.schema(); }
  int64_t NumRows() const { return shared_.NumRows(); }

  // Reconstructs rows [begin, end) into a cleartext relation, bit-identical to
  // the same rows of ReconstructRelation(shared). Thread-safe; performs the
  // scheduled corruption detection for corruptions landing in the range.
  Relation RevealRows(int64_t begin, int64_t end) const;

  // Arms the fault path for this reveal: `schedule` is DeliverRevealStreamed's
  // corruption schedule and `nonce` its commitment nonce.
  void InstallFaultSchedule(uint64_t nonce,
                            std::vector<FaultInjector::RevealCorruption> schedule);

  // High-water mark of rows materialized by a single RevealRows call — the
  // residency witness (ExecutionResult::reveal_peak_rows) streaming tests
  // assert stays at the batch size, never anywhere near NumRows().
  int64_t MaxMaterializedRows() const {
    return max_materialized_rows_.load(std::memory_order_relaxed);
  }

  // Corruption detections performed so far (>= the schedule size once the
  // stream has covered every corrupted row; crash replays re-detect).
  int64_t VerifiedCorruptions() const {
    return verified_corruptions_.load(std::memory_order_relaxed);
  }

 private:
  Relation ReconstructRange(int64_t begin, int64_t end) const;

  SharedRelation shared_;
  uint64_t nonce_ = 0;
  std::vector<FaultInjector::RevealCorruption> schedule_;
  mutable std::atomic<int64_t> max_materialized_rows_{0};
  mutable std::atomic<int64_t> verified_corruptions_{0};
};

}  // namespace mpc
}  // namespace conclave

#endif  // CONCLAVE_MPC_REVEAL_SOURCE_H_
