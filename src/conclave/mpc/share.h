// Additive 3-party secret sharing over the ring Z_2^64.
//
// A value x is split as x = s0 + s1 + s2 (mod 2^64); party i holds s_i. Linear
// operations act share-wise without communication; multiplications use Beaver triples
// (triple_dealer.h). This mirrors Sharemind's additive scheme [12]: the paper's
// evaluation uses Sharemind as the secret-sharing backend, and all of Conclave's MPC
// relational protocols (join, aggregation, shuffle, sort) reduce to these primitives.
//
// Signed int64 relation cells map to ring elements by two's-complement bit pattern, so
// additions/subtractions/multiplications of shares agree with wrapping int64 semantics.
//
// The bulk helpers here are the data plane's innermost loops: they run structure-of-
// arrays passes over morsels of rows (common/thread_pool.h ParallelFor), writing
// disjoint elements, so they produce bit-identical shares at every pool size. Share
// generation uses counter-based randomness (AesCounterRng — batched fixed-key AES
// counter blocks, AES-NI when available): element i of a sharing draws words 2i and
// 2i+1 of the operation's stream (the two halves of block i), independent of
// evaluation order. The loops themselves dispatch through common/cpu.h, so they run
// AVX2 on hardware that has it and a bit-identical scalar path everywhere else.
#ifndef CONCLAVE_MPC_SHARE_H_
#define CONCLAVE_MPC_SHARE_H_

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "conclave/common/rng.h"
#include "conclave/relational/relation.h"

namespace conclave {

inline constexpr int kNumShareParties = 3;

using Ring = uint64_t;

inline Ring ToRing(int64_t value) { return std::bit_cast<Ring>(value); }
inline int64_t FromRing(Ring value) { return std::bit_cast<int64_t>(value); }

// Morsel size for the MPC data plane's row loops. Smaller than the cleartext
// operators' grain: each shared row touches three share streams (plus triples and
// masks on the heavier kernels), so this still amortizes chunk dispatch thousands
// of times over while letting mid-sized batches spread across a pool.
inline constexpr int64_t kMpcGrainRows = 8 * 1024;

// One secret-shared vector of ring elements (a relation column, or a batch of
// intermediate values). shares[p][i] is party p's share of element i.
struct SharedColumn {
  std::array<std::vector<Ring>, kNumShareParties> shares;

  SharedColumn() = default;
  explicit SharedColumn(size_t size) {
    for (auto& s : shares) {
      s.assign(size, 0);
    }
  }

  size_t size() const { return shares[0].size(); }
  bool empty() const { return shares[0].empty(); }

  // Resizes all three share vectors; grown elements are zero. Scratch owners
  // (e.g. the triple dealer's batch) resize instead of reconstructing so steady
  // state reuses capacity instead of reallocating.
  void Resize(size_t size) {
    for (auto& s : shares) {
      s.resize(size);
    }
  }

  Ring ReconstructAt(size_t i) const {
    return shares[0][i] + shares[1][i] + shares[2][i];
  }
};

// Splits cleartext values into fresh random additive shares (sequential generator;
// test/fixture convenience). The engine's data plane uses the AesCounterRng overload.
SharedColumn ShareValues(std::span<const int64_t> values, Rng& rng);

// Counter-based, morsel-parallel sharing: element i draws stream words 2i and 2i+1,
// so the result is a pure function of (values, rng) at every pool size. The mask
// words come out of batched AES counter fills straight into the share vectors.
SharedColumn ShareValues(std::span<const int64_t> values, const AesCounterRng& rng);

// Shares one relation column zero-copy: the columnar layout makes this exactly
// ShareValues over the column's contiguous cell span — no strided gather, no copy.
inline SharedColumn ShareColumn(const Relation& relation, int col,
                                const AesCounterRng& rng) {
  CONCLAVE_CHECK_GE(col, 0);
  CONCLAVE_CHECK_LT(col, relation.NumColumns());
  return ShareValues(relation.ColumnSpan(col), rng);
}

// Recombines shares into cleartext values.
std::vector<int64_t> ReconstructValues(const SharedColumn& column);

// Reconstructs into a caller-owned buffer of column.size() elements (no allocation;
// the engine points this at arena scratch).
void ReconstructInto(const SharedColumn& column, int64_t* out);

// Fixed-order chunked sum of one share vector: per-morsel partials folded in chunk
// order. Ring addition commutes mod 2^64, but the fixed fold order is the documented
// discipline for every morsel reduction in the MPC lane (DESIGN.md §5).
Ring RingSum(std::span<const Ring> values);

// A secret-shared relation: public schema and row count, secret cells, stored
// column-major for batched per-column protocols. Consistent with the paper's security
// model, sizes of relations under MPC are public; cell values are not.
class SharedRelation {
 public:
  SharedRelation() = default;
  explicit SharedRelation(Schema schema) : schema_(std::move(schema)) {}
  SharedRelation(Schema schema, std::vector<SharedColumn> columns);

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  int NumColumns() const { return schema_.NumColumns(); }
  int64_t NumRows() const {
    return columns_.empty() ? 0 : static_cast<int64_t>(columns_[0].size());
  }

  const SharedColumn& Column(int index) const;
  SharedColumn& MutableColumn(int index);

  // Appends a secret column; its length must match the relation's row count.
  void AppendColumn(ColumnDef def, SharedColumn column);
  // Appends a public column as the trivial sharing (v, 0, 0).
  void AppendPublicColumn(ColumnDef def, const std::vector<int64_t>& values);
  void DropColumn(int index);

  // Total shared cells (rows x columns); drives the simulated memory accounting.
  uint64_t NumCells() const {
    return static_cast<uint64_t>(NumRows()) * static_cast<uint64_t>(NumColumns());
  }

 private:
  Schema schema_;
  std::vector<SharedColumn> columns_;
};

// Shares every cell of a cleartext relation (no cost accounting — the engine-level
// InputRelation in protocols.h charges ingest costs).
SharedRelation ShareRelation(const Relation& relation, Rng& rng);

// Reconstructs a shared relation to cleartext.
Relation ReconstructRelation(const SharedRelation& shared);

// Share-local data movement (no communication, no re-randomization — callers that
// reveal gathered data must re-randomize first). Morsel-parallel; scatter rows must
// be distinct (compare-exchange layers are pair-disjoint by construction, a property
// the oblivious tests assert).
SharedColumn GatherColumn(const SharedColumn& column, std::span<const int64_t> rows);
void ScatterColumn(SharedColumn& column, std::span<const int64_t> rows,
                   const SharedColumn& values);
SharedColumn SliceColumn(const SharedColumn& column, size_t start, size_t length);

}  // namespace conclave

#endif  // CONCLAVE_MPC_SHARE_H_
