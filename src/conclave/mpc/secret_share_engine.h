// Batched secret-sharing MPC engine (the Sharemind stand-in).
//
// Executes vectorized protocols over SharedColumn operands and charges the simulated
// network (time, bytes, rounds, op counters). Two classes of operation:
//
//  * REAL protocols — additions/subtractions are share-local; multiplications run
//    Beaver's protocol for real (triple consumption, masked openings, cross terms), so
//    their correctness is enforced by the algebra, not by fiat.
//
//  * IDEAL-FUNCTIONALITY protocols — comparisons, equality, and division reconstruct
//    internally, compute the result, and return a fresh sharing, while charging the
//    full cost (time/bytes/rounds) of the corresponding real protocol. This repo
//    reproduces Conclave's *performance and planning* behaviour; bit-level
//    cryptographic sub-protocols for comparison are out of scope (DESIGN.md §2). All
//    outputs are fresh uniform sharings, so downstream protocol behaviour is
//    indistinguishable from the real thing.
//
// All batched calls cost one (or O(circuit-depth)) communication rounds regardless of
// batch size, mirroring how Sharemind amortizes round trips over vectorized ops.
//
// Data-plane layout (DESIGN.md §5, §13): every primitive is a structure-of-arrays
// morsel loop over rows (ParallelFor on the pool bound to the MPC lane), randomness
// is counter-based — each operation claims one AesCounterRng stream (batched
// fixed-key AES counter blocks, AES-NI dispatched via common/cpu.h) from a
// sequential counter, and element i derives its words from the (stream, i) pair —
// and per-call temporaries (masked openings, ideal-functionality reconstructions)
// live in a recycling scratch arena. The combine loops themselves run through the
// cpu:: ring kernels (AVX2 with a bit-identical scalar fallback). Together these
// make every kernel a pure function of its operands and stream, so shares are
// bit-identical at every pool size while the steady-state hot path performs no
// allocation.
#ifndef CONCLAVE_MPC_SECRET_SHARE_ENGINE_H_
#define CONCLAVE_MPC_SECRET_SHARE_ENGINE_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "conclave/common/arena.h"
#include "conclave/common/rng.h"
#include "conclave/mpc/share.h"
#include "conclave/mpc/triple_dealer.h"
#include "conclave/net/network.h"
#include "conclave/relational/ops.h"

namespace conclave {

class SecretShareEngine {
 public:
  SecretShareEngine(SimNetwork* network, uint64_t seed)
      : network_(network),
        dealer_(seed ^ 0xdeadbeefULL),
        seed_(seed),
        perm_rng_(seed) {
    CONCLAVE_CHECK(network != nullptr);
  }

  // --- Local linear algebra (no communication) --------------------------------------
  static SharedColumn Add(const SharedColumn& a, const SharedColumn& b);
  static SharedColumn Sub(const SharedColumn& a, const SharedColumn& b);
  // a + k: the constant folds into party 0's share.
  static SharedColumn AddConst(const SharedColumn& a, int64_t constant);
  static SharedColumn MulConst(const SharedColumn& a, int64_t constant);
  // Trivial sharing (v, 0, 0) of public values.
  static SharedColumn Public(std::span<const int64_t> values);
  static SharedColumn Public(std::initializer_list<int64_t> values) {
    return Public(std::span<const int64_t>(values.begin(), values.size()));
  }
  // Trivial sharing of n copies of one public value — the all-ones / all-k columns
  // the protocol layer leans on, without materializing a cleartext vector first.
  static SharedColumn PublicConst(size_t n, int64_t value);

  // --- Real interactive protocols -----------------------------------------------------
  // Beaver multiplication; one round, one triple per element.
  SharedColumn Mul(const SharedColumn& a, const SharedColumn& b);
  // Public opening: every party broadcasts its shares.
  std::vector<int64_t> Open(const SharedColumn& a);
  // Fresh re-randomized sharing of the same secret (adds a zero-sharing).
  SharedColumn Rerandomize(const SharedColumn& a);
  // Fused gather + re-randomize: out[i] = fresh sharing of column[rows[i]]. One pass,
  // no intermediate column; the workhorse of shuffle/select/join share movement.
  SharedColumn GatherRerandomize(const SharedColumn& column,
                                 std::span<const int64_t> rows) {
    return GatherRerandomizeWith(column, rows, NewStream());
  }
  // Stream-explicit variant: callers that move several columns in parallel claim one
  // stream per column up front (in column order, on the lane) and fan the moves out.
  static SharedColumn GatherRerandomizeWith(const SharedColumn& column,
                                            std::span<const int64_t> rows,
                                            const AesCounterRng& rng);

  // --- Ideal-functionality protocols (full cost charged) -----------------------------
  // Element-wise comparison; returns a shared 0/1 column. kEq/kNe use the cheap
  // equality protocol; ordered comparisons use the expensive bit-decomposition one.
  SharedColumn Compare(CompareOp op, const SharedColumn& a, const SharedColumn& b);
  SharedColumn CompareConst(CompareOp op, const SharedColumn& a, int64_t constant);
  // Element-wise (a * scale) / b with b==0 -> 0 (matching cleartext Arithmetic).
  SharedColumn Div(const SharedColumn& a, const SharedColumn& b, int64_t scale);

  // --- Composite helpers ---------------------------------------------------------------
  // condition ? a : b, element-wise; condition must be a shared 0/1 column.
  // Costs one multiplication per element.
  SharedColumn Mux(const SharedColumn& condition, const SharedColumn& a,
                   const SharedColumn& b);

  // Fresh sharing of cleartext values (no cost — callers charge context-appropriate
  // ingest costs; see protocols.h InputRelation).
  SharedColumn Share(std::span<const int64_t> values) {
    return ShareValues(values, NewStream());
  }
  SharedColumn Share(std::initializer_list<int64_t> values) {
    return Share(std::span<const int64_t>(values.begin(), values.size()));
  }
  // Shares one relation column zero-copy from its contiguous column buffer (the
  // MPC ingest path; no gather, no copy).
  SharedColumn ShareColumn(const Relation& relation, int col) {
    return conclave::ShareColumn(relation, col, NewStream());
  }

  // Internal reconstruction used by ideal-functionality steps. Deliberately public so
  // higher-level protocols (e.g., the Cartesian join's ideal match step) can use it;
  // the name flags every call site as a simulation shortcut.
  static std::vector<int64_t> IdealReconstruct(const SharedColumn& a) {
    return ReconstructValues(a);
  }

  // Claims the next randomness stream. Streams are claimed in a fixed sequence on
  // the serialized MPC lane, so stream assignment — and therefore every sharing —
  // is independent of the pool size.
  AesCounterRng NewStream() { return AesCounterRng(seed_, next_stream_++); }

  // Replay checkpoint for fault-injected frontier rollback (backends/dispatcher,
  // DESIGN.md §11): restoring rewinds the stream counter, the sequential
  // permutation generator, and the triple dealer, so a re-executed node claims
  // the same streams and reproduces the same share bits — the property that
  // makes crash recovery bit-identical.
  struct ReplayCheckpoint {
    uint64_t next_stream = 0;
    Rng perm_rng{0};
    TripleDealer::Checkpoint dealer;
  };
  ReplayCheckpoint TakeCheckpoint() const {
    ReplayCheckpoint checkpoint;
    checkpoint.next_stream = next_stream_;
    checkpoint.perm_rng = perm_rng_;
    checkpoint.dealer = dealer_.TakeCheckpoint();
    return checkpoint;
  }
  void Restore(const ReplayCheckpoint& checkpoint) {
    next_stream_ = checkpoint.next_stream;
    perm_rng_ = checkpoint.perm_rng;
    dealer_.Restore(checkpoint.dealer);
  }

  SimNetwork& network() { return *network_; }
  TripleDealer& dealer() { return dealer_; }
  // The sequential generator feeding shuffle permutations (Fisher-Yates is
  // inherently order-dependent; it runs only on the serialized lane).
  Rng& rng() { return perm_rng_; }

 private:
  SimNetwork* network_;
  TripleDealer dealer_;
  uint64_t seed_;
  uint64_t next_stream_ = 0;
  Rng perm_rng_;
  ScratchArena arena_;
};

}  // namespace conclave

#endif  // CONCLAVE_MPC_SECRET_SHARE_ENGINE_H_
