#include "conclave/mpc/malicious/commitment.h"

#include <cstring>

namespace conclave {
namespace malicious {
namespace {

void UpdateUint64(Sha256& hasher, uint64_t value) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(value >> (56 - 8 * i));
  }
  hasher.Update(bytes, sizeof(bytes));
}

}  // namespace

Commitment CommitRelation(const Relation& relation, uint64_t nonce) {
  Sha256 hasher;
  static constexpr char kDomainTag[] = "conclave-commitment-v1";
  hasher.Update(kDomainTag, sizeof(kDomainTag) - 1);
  UpdateUint64(hasher, nonce);
  UpdateUint64(hasher, static_cast<uint64_t>(relation.NumColumns()));
  for (const auto& column : relation.schema().columns()) {
    hasher.Update(column.name.data(), column.name.size());
    hasher.Update("|", 1);
  }
  // Cells are absorbed in row-major order — the commitment format predates the
  // columnar layout and must stay byte-stable across it.
  for (int64_t r = 0; r < relation.NumRows(); ++r) {
    for (int c = 0; c < relation.NumColumns(); ++c) {
      UpdateUint64(hasher, static_cast<uint64_t>(relation.At(r, c)));
    }
  }
  return Commitment{hasher.Finalize()};
}

bool VerifyOpening(const Relation& relation, uint64_t nonce,
                   const Commitment& commitment) {
  return CommitRelation(relation, nonce) == commitment;
}

RangeProof ProveConsistency(const Relation& relation, uint64_t nonce,
                            const Commitment& commitment) {
  // The honest prover's tag chains the (verified-locally) opening into the proof;
  // a prover whose input does not open the commitment cannot produce the tag.
  RangeProof proof;
  proof.num_rows = relation.NumRows();
  if (!VerifyOpening(relation, nonce, commitment)) {
    return proof;  // Zero tag: verification will fail.
  }
  Sha256 hasher;
  static constexpr char kProofTag[] = "conclave-range-proof-v1";
  hasher.Update(kProofTag, sizeof(kProofTag) - 1);
  hasher.Update(commitment.digest.data(), commitment.digest.size());
  UpdateUint64(hasher, static_cast<uint64_t>(proof.num_rows));
  proof.tag = hasher.Finalize();
  return proof;
}

bool VerifyRangeProof(const RangeProof& proof, const Commitment& commitment) {
  Sha256 hasher;
  static constexpr char kProofTag[] = "conclave-range-proof-v1";
  hasher.Update(kProofTag, sizeof(kProofTag) - 1);
  hasher.Update(commitment.digest.data(), commitment.digest.size());
  UpdateUint64(hasher, static_cast<uint64_t>(proof.num_rows));
  return hasher.Finalize() == proof.tag;
}

Status InputConsistencyPhase(SimNetwork& network, const Relation& input,
                             PartyId owner, int num_parties, uint64_t nonce) {
  const CostModel& model = network.model();
  const uint64_t rows = static_cast<uint64_t>(input.NumRows());

  // Round 1: commit and broadcast the digest.
  const Commitment commitment = CommitRelation(input, nonce);
  network.Broadcast(owner, num_parties, sizeof(commitment.digest));

  // Round 2: prove and broadcast; peers verify.
  const RangeProof proof = ProveConsistency(input, nonce, commitment);
  network.CpuSeconds(model.zk_prove_seconds_per_row * static_cast<double>(rows));
  network.Broadcast(owner, num_parties,
                    sizeof(proof.tag) + rows * model.zk_proof_bytes_per_row);
  network.Rounds(2);
  network.CpuSeconds(model.zk_verify_seconds_per_row * static_cast<double>(rows) *
                     (num_parties - 1));
  network.mutable_counters().zk_proofs += 1;

  if (!VerifyRangeProof(proof, commitment)) {
    return FailedPreconditionError(
        "malicious-security abort: input consistency proof rejected");
  }
  return Status::Ok();
}

}  // namespace malicious
}  // namespace conclave
