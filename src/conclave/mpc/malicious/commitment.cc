#include "conclave/mpc/malicious/commitment.h"

#include <cstring>

namespace conclave {
namespace malicious {
namespace {

void UpdateUint64(Sha256& hasher, uint64_t value) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(value >> (56 - 8 * i));
  }
  hasher.Update(bytes, sizeof(bytes));
}

}  // namespace

IncrementalCommitter::IncrementalCommitter(const Schema& schema, uint64_t nonce)
    : num_columns_(schema.NumColumns()) {
  static constexpr char kDomainTag[] = "conclave-commitment-v1";
  hasher_.Update(kDomainTag, sizeof(kDomainTag) - 1);
  UpdateUint64(hasher_, nonce);
  UpdateUint64(hasher_, static_cast<uint64_t>(num_columns_));
  for (const auto& column : schema.columns()) {
    hasher_.Update(column.name.data(), column.name.size());
    hasher_.Update("|", 1);
  }
}

void IncrementalCommitter::AbsorbRows(const Relation& batch) {
  CONCLAVE_CHECK_EQ(batch.NumColumns(), num_columns_);
  // Cells are absorbed in row-major order — the commitment format predates the
  // columnar layout and must stay byte-stable across it.
  for (int64_t r = 0; r < batch.NumRows(); ++r) {
    for (int c = 0; c < num_columns_; ++c) {
      UpdateUint64(hasher_, static_cast<uint64_t>(batch.At(r, c)));
    }
  }
}

Commitment IncrementalCommitter::Finalize() { return Commitment{hasher_.Finalize()}; }

Commitment CommitRelation(const Relation& relation, uint64_t nonce) {
  // One absorb of every row: the streaming committer's batch-partition
  // invariant makes this definitionally equal to the original one-shot hash.
  IncrementalCommitter committer(relation.schema(), nonce);
  committer.AbsorbRows(relation);
  return committer.Finalize();
}

bool VerifyOpening(const Relation& relation, uint64_t nonce,
                   const Commitment& commitment) {
  return CommitRelation(relation, nonce) == commitment;
}

RangeProof ProveConsistency(const Relation& relation, uint64_t nonce,
                            const Commitment& commitment) {
  // The honest prover's tag chains the (verified-locally) opening into the proof;
  // a prover whose input does not open the commitment cannot produce the tag.
  RangeProof proof;
  proof.num_rows = relation.NumRows();
  if (!VerifyOpening(relation, nonce, commitment)) {
    return proof;  // Zero tag: verification will fail.
  }
  Sha256 hasher;
  static constexpr char kProofTag[] = "conclave-range-proof-v1";
  hasher.Update(kProofTag, sizeof(kProofTag) - 1);
  hasher.Update(commitment.digest.data(), commitment.digest.size());
  UpdateUint64(hasher, static_cast<uint64_t>(proof.num_rows));
  proof.tag = hasher.Finalize();
  return proof;
}

bool VerifyRangeProof(const RangeProof& proof, const Commitment& commitment) {
  Sha256 hasher;
  static constexpr char kProofTag[] = "conclave-range-proof-v1";
  hasher.Update(kProofTag, sizeof(kProofTag) - 1);
  hasher.Update(commitment.digest.data(), commitment.digest.size());
  UpdateUint64(hasher, static_cast<uint64_t>(proof.num_rows));
  return hasher.Finalize() == proof.tag;
}

Status InputConsistencyPhase(SimNetwork& network, const Relation& input,
                             PartyId owner, int num_parties, uint64_t nonce) {
  const CostModel& model = network.model();
  const uint64_t rows = static_cast<uint64_t>(input.NumRows());

  // Round 1: commit and broadcast the digest.
  const Commitment commitment = CommitRelation(input, nonce);
  network.Broadcast(owner, num_parties, sizeof(commitment.digest));

  // Round 2: prove and broadcast; peers verify.
  const RangeProof proof = ProveConsistency(input, nonce, commitment);
  network.CpuSeconds(model.zk_prove_seconds_per_row * static_cast<double>(rows));
  network.Broadcast(owner, num_parties,
                    sizeof(proof.tag) + rows * model.zk_proof_bytes_per_row);
  network.Rounds(2);
  network.CpuSeconds(model.zk_verify_seconds_per_row * static_cast<double>(rows) *
                     (num_parties - 1));
  network.mutable_counters().zk_proofs += 1;

  if (!VerifyRangeProof(proof, commitment)) {
    return FailedPreconditionError(
        "malicious-security abort: input consistency proof rejected");
  }
  return Status::Ok();
}

}  // namespace malicious
}  // namespace conclave
