// Commitment scheme and simulated zero-knowledge range proofs for malicious security
// (Appendix A.5 of the paper).
//
// The paper sketches three additions that lift Conclave from semi-honest to malicious
// security (up to abort): (1) a malicious-secure MPC backend, (2) an initial round in
// which every party commits to its local pre-processing output, and (3) a zero-
// knowledge proof that the value fed into the MPC equals the committed one and lies in
// the support of the pre-processing function d_i.
//
// This module implements (2) for real — hash commitments with binding checked by
// tests — and simulates (3): proof objects are generated and verified structurally
// (tamper-evident via the commitment digest) while their *cost* (proving time,
// verification time, proof bytes) is charged to the simulated network from the
// CostModel. The cryptographic soundness of the ZK proof is out of scope for a
// performance reproduction (see DESIGN.md §2's simulation contract); the protocol
// flow, message sizes, and failure handling are in scope and real.
#ifndef CONCLAVE_MPC_MALICIOUS_COMMITMENT_H_
#define CONCLAVE_MPC_MALICIOUS_COMMITMENT_H_

#include <cstdint>

#include "conclave/common/status.h"
#include "conclave/mpc/malicious/sha256.h"
#include "conclave/net/network.h"
#include "conclave/relational/relation.h"

namespace conclave {
namespace malicious {

// Hash commitment to a relation: SHA-256 over a domain tag, the nonce (the committer's
// blinding randomness), the schema, and every cell in row-major order.
struct Commitment {
  Digest digest{};

  bool operator==(const Commitment& other) const { return digest == other.digest; }
};

Commitment CommitRelation(const Relation& relation, uint64_t nonce);

// True iff (relation, nonce) opens `commitment`.
bool VerifyOpening(const Relation& relation, uint64_t nonce,
                   const Commitment& commitment);

// Streaming form of CommitRelation: absorbs the domain tag, nonce, and schema
// at construction, then row batches in stream order. For any partition of a
// relation's rows into consecutive batches,
//   IncrementalCommitter(schema, nonce) + AbsorbRows(each batch) + Finalize()
// equals CommitRelation(relation, nonce) byte for byte — the invariant that
// lets a RevealSource verify commitments over batches it never holds together.
class IncrementalCommitter {
 public:
  IncrementalCommitter(const Schema& schema, uint64_t nonce);

  // Absorbs the batch's cells in row-major order. The batch's schema must match
  // the constructor's (same column count; the names were already absorbed).
  void AbsorbRows(const Relation& batch);

  Commitment Finalize();

 private:
  Sha256 hasher_;
  int num_columns_ = 0;
};

// Simulated ZK proof that the prover's MPC input matches `commitment` and lies in the
// support of its pre-processing function. `tag` binds the proof to the commitment;
// tampering with either is detected by VerifyRangeProof.
struct RangeProof {
  Digest tag{};
  int64_t num_rows = 0;
};

RangeProof ProveConsistency(const Relation& relation, uint64_t nonce,
                            const Commitment& commitment);
bool VerifyRangeProof(const RangeProof& proof, const Commitment& commitment);

// The Appendix-A.5 input phase for one input relation, executed before the relation
// enters the MPC:
//   1. The owner commits to its pre-processed input and broadcasts the commitment.
//   2. The owner generates the consistency proof and broadcasts it.
//   3. Every other party verifies the proof against the commitment.
// Charges commitment/proof bytes, two rounds, and prove/verify CPU time to `network`;
// returns FAILED_PRECONDITION if verification fails (abort, as the paper specifies —
// malicious security is "up to abort").
Status InputConsistencyPhase(SimNetwork& network, const Relation& input,
                             PartyId owner, int num_parties, uint64_t nonce);

}  // namespace malicious
}  // namespace conclave

#endif  // CONCLAVE_MPC_MALICIOUS_COMMITMENT_H_
