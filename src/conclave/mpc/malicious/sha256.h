// Minimal, dependency-free SHA-256 (FIPS 180-4) used by the malicious-security
// commitment scheme (Appendix A.5 of the paper). One-shot and incremental APIs;
// tested against the FIPS known-answer vectors.
#ifndef CONCLAVE_MPC_MALICIOUS_SHA256_H_
#define CONCLAVE_MPC_MALICIOUS_SHA256_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <string>

namespace conclave {
namespace malicious {

using Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(std::span<const uint8_t> data);
  void Update(const void* data, size_t size) {
    Update(std::span<const uint8_t>(static_cast<const uint8_t*>(data), size));
  }
  // Finalizes and returns the digest; the hasher must be Reset() before reuse.
  Digest Finalize();

  static Digest Hash(std::span<const uint8_t> data) {
    Sha256 hasher;
    hasher.Update(data);
    return hasher.Finalize();
  }
  static Digest Hash(const std::string& data) {
    return Hash(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(data.data()), data.size()));
  }

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

// Lowercase hex rendering, for diagnostics and test vectors.
std::string DigestToHex(const Digest& digest);

}  // namespace malicious
}  // namespace conclave

#endif  // CONCLAVE_MPC_MALICIOUS_SHA256_H_
