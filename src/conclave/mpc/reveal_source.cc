#include "conclave/mpc/reveal_source.h"

#include <utility>

#include "conclave/common/cpu.h"
#include "conclave/mpc/malicious/commitment.h"

namespace conclave {
namespace mpc {
namespace {

// Per-batch commitment nonce: the reveal's delivery nonce tweaked by the
// batch's begin row, so every batch of one streamed reveal commits under a
// distinct domain while staying a pure function of (plan seed, node, ordinal,
// begin) — deterministic across pools, shards, and replays.
uint64_t BatchNonce(uint64_t reveal_nonce, int64_t begin) {
  return reveal_nonce ^ (static_cast<uint64_t>(begin) * 0x9e3779b97f4a7c15ULL);
}

malicious::Commitment CommitBatch(const Schema& schema, const Relation& batch,
                                  uint64_t batch_nonce) {
  malicious::IncrementalCommitter committer(schema, batch_nonce);
  committer.AbsorbRows(batch);
  return committer.Finalize();
}

}  // namespace

RevealSource::RevealSource(SharedRelation shared) : shared_(std::move(shared)) {}

void RevealSource::InstallFaultSchedule(
    uint64_t nonce, std::vector<FaultInjector::RevealCorruption> schedule) {
  nonce_ = nonce;
  schedule_ = std::move(schedule);
}

Relation RevealSource::ReconstructRange(int64_t begin, int64_t end) const {
  Relation batch{shared_.schema()};
  batch.Resize(end - begin);
  // Shares and relation cells are both column-major: the ranged reconstruction
  // is one contiguous share-sum pass per column, straight into the column
  // buffer. No morsel parallelism — ranges are batch-sized and the surrounding
  // shard tasks already run concurrently.
  for (int c = 0; c < shared_.NumColumns(); ++c) {
    const SharedColumn& column = shared_.Column(c);
    cpu::Add3U64(column.shares[0].data() + begin,
                 column.shares[1].data() + begin,
                 column.shares[2].data() + begin,
                 static_cast<size_t>(end - begin),
                 reinterpret_cast<uint64_t*>(batch.ColumnData(c)));
  }
  return batch;
}

Relation RevealSource::RevealRows(int64_t begin, int64_t end) const {
  CONCLAVE_CHECK(begin >= 0 && begin <= end && end <= NumRows());
  Relation batch = ReconstructRange(begin, end);
  if (!schedule_.empty()) {
    // The detection DeliverReveal runs on the whole relation, replayed on the
    // batch covering each corrupted row. The injector already priced the
    // retries; here the structural guarantees are enforced: a flipped bit must
    // break the batch commitment, and the retransmitted batch must be
    // bit-identical to the first reconstruction.
    const uint64_t batch_nonce = BatchNonce(nonce_, begin);
    malicious::Commitment commitment;
    bool committed = false;
    for (const FaultInjector::RevealCorruption& corruption : schedule_) {
      if (corruption.row < begin || corruption.row >= end) {
        continue;
      }
      if (!committed) {
        commitment = CommitBatch(shared_.schema(), batch, batch_nonce);
        committed = true;
      }
      Relation corrupted = batch;  // The corrupted delivery copy.
      corrupted.ColumnData(corruption.col)[corruption.row - begin] ^=
          corruption.bit;
      CONCLAVE_CHECK(
          !(CommitBatch(shared_.schema(), corrupted, batch_nonce) == commitment));
      const Relation retry = ReconstructRange(begin, end);
      CONCLAVE_CHECK(CommitBatch(shared_.schema(), retry, batch_nonce) ==
                     commitment);
      verified_corruptions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Relaxed CAS-max: concurrent shard reveals race only on this witness value.
  int64_t seen = max_materialized_rows_.load(std::memory_order_relaxed);
  while (end - begin > seen &&
         !max_materialized_rows_.compare_exchange_weak(
             seen, end - begin, std::memory_order_relaxed)) {
  }
  return batch;
}

}  // namespace mpc
}  // namespace conclave
