// Oblivious MPC sub-protocols over shared relations (§5.3–5.4 of the paper).
//
//  * ObliviousShuffle — hides row order under a secret permutation; O(cells) resharing
//    work. Conclave uses it before revealing anything row-aligned to an STP.
//  * ObliviousSort — Batcher odd-even merge-sort network, O(n log^2 n) oblivious
//    compare-exchanges; the dominant cost in MPC aggregations [39].
//  * ObliviousMerge — merges two sorted relations; the cheaper network Conclave's
//    future-work sort push-up relies on (§5.4).
//  * ObliviousSelect — Laud-style oblivious indexing [45]: given secret indices,
//    gathers rows with O((n+m) log(n+m)) work; the hybrid join's MPC finale.
//
// Costs flow through the engine's SimNetwork; correctness is checked against the
// cleartext operator library in tests.
#ifndef CONCLAVE_MPC_OBLIVIOUS_H_
#define CONCLAVE_MPC_OBLIVIOUS_H_

#include <span>
#include <vector>

#include "conclave/mpc/secret_share_engine.h"

namespace conclave {

SharedRelation ObliviousShuffle(SecretShareEngine& engine, const SharedRelation& input);

SharedRelation ObliviousSort(SecretShareEngine& engine, const SharedRelation& input,
                             std::span<const int> key_columns, bool ascending = true);

// Requires a.NumRows() to be a power of two >= b.NumRows() for the O(n log n) merge
// network; other shapes fall back to a full oblivious sort (correct, costlier).
SharedRelation ObliviousMerge(SecretShareEngine& engine, const SharedRelation& a,
                              const SharedRelation& b, std::span<const int> key_columns);

// Secret indices must reconstruct to valid row numbers of `input`.
SharedRelation ObliviousSelect(SecretShareEngine& engine, const SharedRelation& input,
                               const SharedColumn& indices);

// Reorders rows by a *public* permutation (hybrid aggregation step 6: the STP reveals
// the ordering of the already-shuffled relation). order[i] = source row of output i.
// Local share movement; no protocol cost.
SharedRelation ApplyPublicOrder(const SharedRelation& input,
                                std::span<const int64_t> order);

// The compare-exchange layers of the generalized (arbitrary-n) Batcher network.
// Exposed for tests (network correctness on adversarial sizes) and cost analysis.
std::vector<std::vector<std::pair<int64_t, int64_t>>> BatcherSortLayers(int64_t n);
std::vector<std::vector<std::pair<int64_t, int64_t>>> BatcherMergeLayers(
    int64_t run_length, int64_t total);

// Communication rounds of one ObliviousSelect over n input rows and m indices —
// ceil(log2(n + m)), floored at 1. Shared with the planner's cost estimate.
inline uint64_t ObliviousSelectRounds(int64_t n, int64_t m) {
  uint64_t log_term = 1;
  while ((int64_t{1} << log_term) < n + m) {
    ++log_term;
  }
  return log_term;
}

}  // namespace conclave

#endif  // CONCLAVE_MPC_OBLIVIOUS_H_
