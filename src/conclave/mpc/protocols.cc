#include "conclave/mpc/protocols.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "conclave/common/strings.h"

namespace conclave {
namespace mpc {
namespace {

// Shared 0/1 column: row i equals row i-1 on `columns` (index 0 gets flag 0).
// Used by aggregation and distinct after sorting to delimit key groups.
SharedColumn AdjacentEqualFlags(SecretShareEngine& engine, const SharedRelation& input,
                                std::span<const int> columns) {
  const int64_t n = input.NumRows();
  CONCLAVE_CHECK_GT(n, 0);
  SharedColumn equal;
  for (size_t k = 0; k < columns.size(); ++k) {
    const SharedColumn& column = input.Column(columns[k]);
    SharedColumn current = SliceColumn(column, 1, static_cast<size_t>(n - 1));
    SharedColumn previous = SliceColumn(column, 0, static_cast<size_t>(n - 1));
    SharedColumn eq_k = engine.Compare(CompareOp::kEq, current, previous);
    equal = (k == 0) ? std::move(eq_k) : engine.Mul(equal, eq_k);
  }
  // Prepend flag 0 for the first row.
  SharedColumn flags(static_cast<size_t>(n));
  for (int p = 0; p < kNumShareParties; ++p) {
    std::copy(equal.shares[p].begin(), equal.shares[p].end(),
              flags.shares[p].begin() + 1);
  }
  return flags;
}

// In-place log-depth segmented scan (Hillis-Steele). `flags[i] == 1` means row i is in
// the same group as row i-1; after the scan, the last row of each group holds the
// group's combined value. kSum/kCount combine by addition; kMin/kMax by compare+mux.
void SegmentedScan(SecretShareEngine& engine, SharedColumn& values,
                   SharedColumn segment_flags, AggKind kind) {
  const int64_t n = static_cast<int64_t>(values.size());
  for (int64_t d = 1; d < n; d *= 2) {
    const size_t len = static_cast<size_t>(n - d);
    SharedColumn shifted_vals = SliceColumn(values, 0, len);
    SharedColumn shifted_flags = SliceColumn(segment_flags, 0, len);
    SharedColumn cur_vals = SliceColumn(values, static_cast<size_t>(d), len);
    SharedColumn cur_flags = SliceColumn(segment_flags, static_cast<size_t>(d), len);

    SharedColumn combined;
    switch (kind) {
      case AggKind::kSum:
      case AggKind::kCount:
      case AggKind::kMean:
        combined = SecretShareEngine::Add(cur_vals, shifted_vals);
        break;
      case AggKind::kMin: {
        SharedColumn less = engine.Compare(CompareOp::kLt, shifted_vals, cur_vals);
        combined = engine.Mux(less, shifted_vals, cur_vals);
        break;
      }
      case AggKind::kMax: {
        SharedColumn greater = engine.Compare(CompareOp::kGt, shifted_vals, cur_vals);
        combined = engine.Mux(greater, shifted_vals, cur_vals);
        break;
      }
    }
    // Only rows still inside their segment absorb the shifted contribution.
    SharedColumn new_vals = engine.Mux(cur_flags, combined, cur_vals);
    SharedColumn new_flags = engine.Mul(cur_flags, shifted_flags);
    for (int p = 0; p < kNumShareParties; ++p) {
      std::copy(new_vals.shares[p].begin(), new_vals.shares[p].end(),
                values.shares[p].begin() + d);
      std::copy(new_flags.shares[p].begin(), new_flags.shares[p].end(),
                segment_flags.shares[p].begin() + d);
    }
  }
}

SharedRelation GatherRows(const SharedRelation& input,
                          std::span<const int64_t> rows) {
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(input.NumColumns()));
  for (int c = 0; c < input.NumColumns(); ++c) {
    columns.push_back(GatherColumn(input.Column(c), rows));
  }
  return SharedRelation(input.schema(), std::move(columns));
}

}  // namespace

Status CheckWorkingSet(const CostModel& model, uint64_t live_cells) {
  const uint64_t bytes = live_cells * model.ss_bytes_per_resident_cell;
  if (bytes > model.ss_memory_limit_bytes) {
    return ResourceExhaustedError(StrFormat(
        "Sharemind VM out of memory: working set %s exceeds limit %s",
        HumanBytes(bytes).c_str(), HumanBytes(model.ss_memory_limit_bytes).c_str()));
  }
  return Status::Ok();
}

StatusOr<SharedRelation> InputRelation(SecretShareEngine& engine,
                                       const Relation& input) {
  const CostModel& model = engine.network().model();
  const uint64_t cells =
      static_cast<uint64_t>(input.NumRows()) * static_cast<uint64_t>(input.NumColumns());
  CONCLAVE_RETURN_IF_ERROR(CheckWorkingSet(model, 2 * cells));

  // Zero-copy ingest: each relation column is a contiguous buffer, and sharing is
  // one morsel-parallel pass straight over its span — no gathers, no copies.
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(input.NumColumns()));
  for (int c = 0; c < input.NumColumns(); ++c) {
    columns.push_back(engine.ShareColumn(input, c));
  }
  SharedRelation shared(input.schema(), std::move(columns));
  const SsCharge charge = model.SsChargeFor(SsPrimitive::kRecordIngest);
  engine.network().CpuSeconds(static_cast<double>(input.NumRows()) * charge.seconds);
  engine.network().CountAggregateBytes(cells * charge.bytes);
  engine.network().Rounds(charge.rounds);
  return shared;
}

Relation RevealRelation(SecretShareEngine& engine, const SharedRelation& input) {
  ChargeRevealMeters(engine.network(), input.NumCells());
  return ReconstructRelation(input);
}

void ChargeRevealMeters(SimNetwork& network, uint64_t cells) {
  const SsCharge charge = network.model().SsChargeFor(SsPrimitive::kReveal);
  network.CountAggregateBytes(cells * charge.bytes);
  network.Rounds(charge.rounds);
}

SharedRelation Project(const SharedRelation& input, std::span<const int> columns) {
  std::vector<ColumnDef> defs;
  std::vector<SharedColumn> data;
  defs.reserve(columns.size());
  data.reserve(columns.size());
  for (int c : columns) {
    defs.push_back(input.schema().Column(c));
    data.push_back(input.Column(c));
  }
  return SharedRelation(Schema(std::move(defs)), std::move(data));
}

SharedRelation Concat(std::span<const SharedRelation> inputs) {
  CONCLAVE_CHECK_GT(inputs.size(), 0u);
  for (const SharedRelation& rel : inputs.subspan(1)) {
    CONCLAVE_CHECK(inputs[0].schema().NamesMatch(rel.schema()));
  }
  int64_t total = 0;
  for (const SharedRelation& rel : inputs) {
    total += rel.NumRows();
  }
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(inputs[0].NumColumns()));
  for (int c = 0; c < inputs[0].NumColumns(); ++c) {
    SharedColumn merged(static_cast<size_t>(total));
    size_t offset = 0;
    for (const SharedRelation& rel : inputs) {
      for (int p = 0; p < kNumShareParties; ++p) {
        const auto& src = rel.Column(c).shares[p];
        std::copy(src.begin(), src.end(),
                  merged.shares[p].begin() + static_cast<int64_t>(offset));
      }
      offset += rel.Column(c).size();
    }
    columns.push_back(std::move(merged));
  }
  return SharedRelation(inputs[0].schema(), std::move(columns));
}

SharedRelation Arithmetic(SecretShareEngine& engine, const SharedRelation& input,
                          const ArithSpec& spec) {
  const SharedColumn& lhs = input.Column(spec.lhs_column);
  SharedColumn rhs;
  if (spec.rhs_is_column) {
    rhs = input.Column(spec.rhs_column);
  } else {
    rhs = SecretShareEngine::PublicConst(static_cast<size_t>(input.NumRows()),
                                         spec.rhs_literal);
  }

  SharedColumn result;
  switch (spec.kind) {
    case ArithKind::kAdd:
      result = SecretShareEngine::Add(lhs, rhs);
      break;
    case ArithKind::kSub:
      result = SecretShareEngine::Sub(lhs, rhs);
      break;
    case ArithKind::kMul:
      if (spec.rhs_is_column) {
        result = engine.Mul(lhs, rhs);
      } else {
        result = SecretShareEngine::MulConst(lhs, spec.rhs_literal);
      }
      break;
    case ArithKind::kDiv:
      result = engine.Div(lhs, rhs, spec.scale);
      break;
  }

  SharedRelation output = input;
  output.AppendColumn(ColumnDef(spec.result_name), std::move(result));
  return output;
}

SharedRelation Enumerate(const SharedRelation& input, const std::string& index_name) {
  std::vector<int64_t> indices(static_cast<size_t>(input.NumRows()));
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  SharedRelation output = input;
  output.AppendPublicColumn(ColumnDef(index_name), indices);
  return output;
}

SharedRelation ShuffleRevealCompact(SecretShareEngine& engine,
                                    const SharedRelation& input, int flag_column) {
  SharedRelation shuffled = ObliviousShuffle(engine, input);
  const std::vector<int64_t> flags = engine.Open(shuffled.Column(flag_column));
  std::vector<int64_t> kept;
  for (size_t i = 0; i < flags.size(); ++i) {
    CONCLAVE_CHECK(flags[i] == 0 || flags[i] == 1);
    if (flags[i] == 1) {
      kept.push_back(static_cast<int64_t>(i));
    }
  }
  SharedRelation compacted = GatherRows(shuffled, kept);
  compacted.DropColumn(flag_column);
  return compacted;
}

StatusOr<SharedRelation> Filter(SecretShareEngine& engine, const SharedRelation& input,
                                const FilterPredicate& predicate) {
  const CostModel& model = engine.network().model();
  CONCLAVE_RETURN_IF_ERROR(CheckWorkingSet(model, 3 * input.NumCells()));

  SharedColumn flags;
  if (predicate.rhs_is_column) {
    flags = engine.Compare(predicate.op, input.Column(predicate.column),
                           input.Column(predicate.rhs_column));
  } else {
    flags = engine.CompareConst(predicate.op, input.Column(predicate.column),
                                predicate.rhs_literal);
  }
  SharedRelation flagged = input;
  flagged.AppendColumn(ColumnDef("__flag"), std::move(flags));
  return ShuffleRevealCompact(engine, flagged, flagged.NumColumns() - 1);
}

StatusOr<SharedRelation> Join(SecretShareEngine& engine, const SharedRelation& left,
                              const SharedRelation& right,
                              std::span<const int> left_keys,
                              std::span<const int> right_keys) {
  const CostModel& model = engine.network().model();
  const uint64_t n = static_cast<uint64_t>(left.NumRows());
  const uint64_t m = static_cast<uint64_t>(right.NumRows());

  // Cartesian-product protocol cost: one private equality test per row pair (per key
  // column). Conclave's motivation in a nutshell: this is O(n*m) however small the
  // output.
  const uint64_t pairs = n * m * left_keys.size();
  const SsCharge eq_charge = model.SsChargeFor(SsPrimitive::kEquality);
  engine.network().CpuSeconds(static_cast<double>(pairs) * eq_charge.seconds);
  engine.network().CountAggregateBytes(pairs * eq_charge.bytes);
  engine.network().Rounds(kSsJoinRounds);
  engine.network().mutable_counters().mpc_comparisons += pairs;

  // Ideal match step: keys reconstructed internally, matches found in cleartext.
  std::vector<std::vector<int64_t>> left_key_vals;
  std::vector<std::vector<int64_t>> right_key_vals;
  for (int c : left_keys) {
    left_key_vals.push_back(SecretShareEngine::IdealReconstruct(left.Column(c)));
  }
  for (int c : right_keys) {
    right_key_vals.push_back(SecretShareEngine::IdealReconstruct(right.Column(c)));
  }

  struct VecHash {
    size_t operator()(const std::vector<int64_t>& key) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (int64_t v : key) {
        uint64_t z = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + h;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        h = z ^ (z >> 31);
      }
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::vector<int64_t>, std::vector<int64_t>, VecHash> index;
  index.reserve(m);
  std::vector<int64_t> key(right_keys.size());
  for (uint64_t r = 0; r < m; ++r) {
    for (size_t k = 0; k < right_keys.size(); ++k) {
      key[k] = right_key_vals[k][r];
    }
    index[key].push_back(static_cast<int64_t>(r));
  }

  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  key.resize(left_keys.size());
  for (uint64_t l = 0; l < n; ++l) {
    for (size_t k = 0; k < left_keys.size(); ++k) {
      key[k] = left_key_vals[k][l];
    }
    const auto it = index.find(key);
    if (it == index.end()) {
      continue;
    }
    for (int64_t r : it->second) {
      left_rows.push_back(static_cast<int64_t>(l));
      right_rows.push_back(r);
    }
  }

  std::vector<int> left_rest;
  std::vector<int> right_rest;
  Schema out_schema = ops::JoinOutputSchema(left.schema(), right.schema(), left_keys,
                                            right_keys, &left_rest, &right_rest);

  CONCLAVE_RETURN_IF_ERROR(CheckWorkingSet(
      model, left.NumCells() + right.NumCells() +
                 static_cast<uint64_t>(left_rows.size()) * out_schema.NumColumns()));

  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(out_schema.NumColumns()));
  for (int c : left_keys) {
    columns.push_back(engine.GatherRerandomize(left.Column(c), left_rows));
  }
  for (int c : left_rest) {
    columns.push_back(engine.GatherRerandomize(left.Column(c), left_rows));
  }
  for (int c : right_rest) {
    columns.push_back(engine.GatherRerandomize(right.Column(c), right_rows));
  }
  SharedRelation joined(std::move(out_schema), std::move(columns));
  // Shuffle so the revealed output carries no row-alignment information.
  return ObliviousShuffle(engine, joined);
}

StatusOr<SharedRelation> Aggregate(SecretShareEngine& engine,
                                   const SharedRelation& input,
                                   std::span<const int> group_columns, AggKind kind,
                                   int agg_column, const std::string& output_name,
                                   bool assume_sorted) {
  const CostModel& model = engine.network().model();
  const int64_t n = input.NumRows();

  // Zero rows aggregate to zero groups (matching the cleartext engine), for global
  // and grouped aggregations alike.
  if (n == 0) {
    std::vector<ColumnDef> defs;
    for (int c : group_columns) {
      defs.push_back(input.schema().Column(c));
    }
    defs.emplace_back(output_name);
    std::vector<SharedColumn> empty_columns(defs.size(), SharedColumn(0));
    return SharedRelation(Schema(std::move(defs)), std::move(empty_columns));
  }

  // Global aggregate (no group-by): sums/counts are share-local; min/max use a
  // batched compare-exchange tree.
  if (group_columns.empty()) {
    std::vector<ColumnDef> defs{ColumnDef(output_name)};
    SharedColumn result(1);
    if (kind == AggKind::kSum || kind == AggKind::kCount || kind == AggKind::kMean) {
      SharedColumn acc(1);
      SharedColumn count(1);
      for (int p = 0; p < kNumShareParties; ++p) {
        // Morsel-parallel partials, folded in fixed chunk order (DESIGN.md §5).
        acc.shares[p][0] =
            kind == AggKind::kCount ? 0 : RingSum(input.Column(agg_column).shares[p]);
      }
      if (kind == AggKind::kCount) {
        acc.shares[0][0] = static_cast<Ring>(n);
      }
      if (kind == AggKind::kMean) {
        count.shares[0][0] = static_cast<Ring>(n);
        acc = engine.Div(acc, count, 1);
      }
      result = std::move(acc);
    } else {
      CONCLAVE_CHECK_GT(n, 0);
      SharedColumn current = input.Column(agg_column);
      while (current.size() > 1) {
        const size_t half = current.size() / 2;
        SharedColumn a = SliceColumn(current, 0, half);
        SharedColumn b = SliceColumn(current, half, half);
        SharedColumn pick = engine.Compare(
            kind == AggKind::kMin ? CompareOp::kLt : CompareOp::kGt, a, b);
        SharedColumn winner = engine.Mux(pick, a, b);
        if (current.size() % 2 == 1) {
          // Odd element rides along to the next level.
          SharedColumn odd = SliceColumn(current, current.size() - 1, 1);
          SharedColumn next(half + 1);
          for (int p = 0; p < kNumShareParties; ++p) {
            std::copy(winner.shares[p].begin(), winner.shares[p].end(),
                      next.shares[p].begin());
            next.shares[p][half] = odd.shares[p][0];
          }
          current = std::move(next);
        } else {
          current = std::move(winner);
        }
      }
      result = std::move(current);
    }
    std::vector<SharedColumn> columns{std::move(result)};
    return SharedRelation(Schema(std::move(defs)), std::move(columns));
  }

  CONCLAVE_CHECK_GT(n, 0);
  CONCLAVE_RETURN_IF_ERROR(CheckWorkingSet(model, 3 * input.NumCells()));

  // Step 1: arrange rows into key groups (oblivious sort, unless already sorted).
  SharedRelation sorted =
      assume_sorted ? input : ObliviousSort(engine, input, group_columns);

  // Step 2: group-delimiting flags, computed under MPC.
  SharedColumn eq_flags = AdjacentEqualFlags(engine, sorted, group_columns);

  return AggregateWithFlags(engine, sorted, group_columns, kind, agg_column,
                            output_name, eq_flags);
}

StatusOr<SharedRelation> AggregateWithFlags(SecretShareEngine& engine,
                                            const SharedRelation& ordered,
                                            std::span<const int> group_columns,
                                            AggKind kind, int agg_column,
                                            const std::string& output_name,
                                            const SharedColumn& equal_prev_flags) {
  const int64_t n = ordered.NumRows();
  CONCLAVE_CHECK_EQ(equal_prev_flags.size(), static_cast<size_t>(n));
  if (n == 0) {
    std::vector<ColumnDef> defs;
    for (int c : group_columns) {
      defs.push_back(ordered.schema().Column(c));
    }
    defs.emplace_back(output_name);
    std::vector<SharedColumn> empty_columns(defs.size(), SharedColumn(0));
    return SharedRelation(Schema(std::move(defs)), std::move(empty_columns));
  }

  // Segmented scan accumulates each group into its last row. Mean runs two chained
  // scans (sum and count) and divides.
  SharedColumn values;
  if (kind == AggKind::kCount) {
    values = SecretShareEngine::PublicConst(static_cast<size_t>(n), 1);
  } else {
    values = ordered.Column(agg_column);
  }
  SharedColumn scan_flags = equal_prev_flags;
  SegmentedScan(engine, values, scan_flags, kind);
  if (kind == AggKind::kMean) {
    SharedColumn counts = SecretShareEngine::PublicConst(static_cast<size_t>(n), 1);
    SharedColumn count_flags = equal_prev_flags;
    SegmentedScan(engine, counts, count_flags, AggKind::kCount);
    values = engine.Div(values, counts, 1);
  }

  // Keep-flag = row is the last of its group = NOT next-row-equal.
  SharedColumn keep(static_cast<size_t>(n));
  {
    const SharedColumn ones =
        SecretShareEngine::PublicConst(static_cast<size_t>(n - 1), 1);
    SharedColumn next_eq =
        SliceColumn(equal_prev_flags, 1, static_cast<size_t>(n - 1));
    SharedColumn not_next = SecretShareEngine::Sub(ones, next_eq);
    for (int p = 0; p < kNumShareParties; ++p) {
      std::copy(not_next.shares[p].begin(), not_next.shares[p].end(),
                keep.shares[p].begin());
      keep.shares[p][static_cast<size_t>(n - 1)] = 0;
    }
    keep.shares[0][static_cast<size_t>(n - 1)] = 1;  // Last row always kept.
  }

  // Assemble group columns + aggregate + keep flag; shuffle/open/compact.
  std::vector<ColumnDef> defs;
  std::vector<SharedColumn> columns;
  for (int c : group_columns) {
    defs.push_back(ordered.schema().Column(c));
    columns.push_back(ordered.Column(c));
  }
  defs.emplace_back(output_name);
  columns.push_back(std::move(values));
  defs.emplace_back("__keep");
  columns.push_back(std::move(keep));
  SharedRelation flagged(Schema(std::move(defs)), std::move(columns));
  return ShuffleRevealCompact(engine, flagged, flagged.NumColumns() - 1);
}

StatusOr<SharedRelation> Window(SecretShareEngine& engine, const SharedRelation& input,
                                std::span<const int> partition_columns,
                                int order_column, WindowFn fn, int value_column,
                                const std::string& output_name, bool assume_sorted) {
  const CostModel& model = engine.network().model();
  const int64_t n = input.NumRows();

  std::vector<ColumnDef> defs = input.schema().columns();
  defs.emplace_back(output_name);
  if (n == 0) {
    std::vector<SharedColumn> empty_columns(defs.size(), SharedColumn(0));
    return SharedRelation(Schema(std::move(defs)), std::move(empty_columns));
  }
  CONCLAVE_RETURN_IF_ERROR(CheckWorkingSet(model, 3 * input.NumCells()));

  std::vector<int> sort_columns(partition_columns.begin(), partition_columns.end());
  sort_columns.push_back(order_column);
  SharedRelation sorted =
      assume_sorted ? input : ObliviousSort(engine, input, sort_columns);

  // 0/1 flags marking rows in the same partition as their predecessor.
  SharedColumn same_partition = AdjacentEqualFlags(engine, sorted, partition_columns);
  return WindowWithFlags(engine, sorted, fn, value_column, output_name,
                         same_partition);
}

StatusOr<SharedRelation> WindowWithFlags(SecretShareEngine& engine,
                                         const SharedRelation& ordered, WindowFn fn,
                                         int value_column,
                                         const std::string& output_name,
                                         const SharedColumn& same_partition_flags) {
  const int64_t n = ordered.NumRows();
  CONCLAVE_CHECK_EQ(same_partition_flags.size(), static_cast<size_t>(n));
  std::vector<ColumnDef> defs = ordered.schema().columns();
  defs.emplace_back(output_name);
  if (n == 0) {
    std::vector<SharedColumn> empty_columns(defs.size(), SharedColumn(0));
    return SharedRelation(Schema(std::move(defs)), std::move(empty_columns));
  }

  SharedColumn computed;
  switch (fn) {
    case WindowFn::kRowNumber: {
      SharedColumn ones = SecretShareEngine::PublicConst(static_cast<size_t>(n), 1);
      SegmentedScan(engine, ones, same_partition_flags, AggKind::kCount);
      computed = std::move(ones);
      break;
    }
    case WindowFn::kLag: {
      // lag[i] = same_partition[i] * value[i-1]; the flag is 0/1, so one Beaver
      // multiplication per row gates the shifted value to 0 at partition starts.
      const SharedColumn& values = ordered.Column(value_column);
      SharedColumn shifted(static_cast<size_t>(n));
      for (int p = 0; p < kNumShareParties; ++p) {
        std::copy(values.shares[p].begin(), values.shares[p].end() - 1,
                  shifted.shares[p].begin() + 1);
      }
      computed = engine.Mul(same_partition_flags, shifted);
      break;
    }
    case WindowFn::kRunningSum: {
      SharedColumn values = ordered.Column(value_column);
      SegmentedScan(engine, values, same_partition_flags, AggKind::kSum);
      computed = std::move(values);
      break;
    }
  }

  std::vector<SharedColumn> columns;
  columns.reserve(defs.size());
  for (int c = 0; c < ordered.NumColumns(); ++c) {
    columns.push_back(ordered.Column(c));
  }
  columns.push_back(std::move(computed));
  return SharedRelation(Schema(std::move(defs)), std::move(columns));
}

StatusOr<SharedRelation> Sort(SecretShareEngine& engine, const SharedRelation& input,
                              std::span<const int> columns, bool ascending,
                              bool assume_sorted) {
  const CostModel& model = engine.network().model();
  CONCLAVE_RETURN_IF_ERROR(CheckWorkingSet(model, 2 * input.NumCells()));
  if (assume_sorted || input.NumRows() == 0) {
    return input;
  }
  return ObliviousSort(engine, input, columns, ascending);
}

SharedRelation Limit(const SharedRelation& input, int64_t count) {
  CONCLAVE_CHECK_GE(count, 0);
  const size_t kept = static_cast<size_t>(std::min(count, input.NumRows()));
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(input.NumColumns()));
  for (int c = 0; c < input.NumColumns(); ++c) {
    columns.push_back(SliceColumn(input.Column(c), 0, kept));
  }
  return SharedRelation(input.schema(), std::move(columns));
}

StatusOr<SharedRelation> Distinct(SecretShareEngine& engine,
                                  const SharedRelation& input,
                                  std::span<const int> columns, bool assume_sorted) {
  const CostModel& model = engine.network().model();
  CONCLAVE_RETURN_IF_ERROR(CheckWorkingSet(model, 3 * input.NumCells()));
  SharedRelation projected = Project(input, columns);
  if (projected.NumRows() == 0) {
    return projected;
  }
  std::vector<int> all_columns(static_cast<size_t>(projected.NumColumns()));
  for (size_t i = 0; i < all_columns.size(); ++i) {
    all_columns[i] = static_cast<int>(i);
  }
  SharedRelation sorted =
      assume_sorted ? projected : ObliviousSort(engine, projected, all_columns);
  SharedColumn eq_flags = AdjacentEqualFlags(engine, sorted, all_columns);
  // Keep the first row of each run: keep = 1 - equal-to-previous.
  const int64_t n = sorted.NumRows();
  SharedColumn keep = SecretShareEngine::Sub(
      SecretShareEngine::PublicConst(static_cast<size_t>(n), 1), eq_flags);
  sorted.AppendColumn(ColumnDef("__keep"), std::move(keep));
  return ShuffleRevealCompact(engine, sorted, sorted.NumColumns() - 1);
}

SharedColumn FilterFlags(SecretShareEngine& engine, const SharedRelation& input,
                         const FilterPredicate& predicate) {
  if (predicate.rhs_is_column) {
    return engine.Compare(predicate.op, input.Column(predicate.column),
                          input.Column(predicate.rhs_column));
  }
  return engine.CompareConst(predicate.op, input.Column(predicate.column),
                             predicate.rhs_literal);
}

StatusOr<SharedRelation> CountDistinctSorted(SecretShareEngine& engine,
                                             const SharedRelation& input,
                                             int key_column,
                                             const SharedColumn& keep_flags,
                                             const std::string& output_name) {
  const int64_t n = input.NumRows();
  CONCLAVE_CHECK_EQ(keep_flags.size(), static_cast<size_t>(n));
  std::vector<ColumnDef> defs{ColumnDef(output_name)};
  if (n == 0) {
    SharedColumn zero(1);
    std::vector<SharedColumn> columns{std::move(zero)};
    return SharedRelation(Schema(std::move(defs)), std::move(columns));
  }
  CONCLAVE_RETURN_IF_ERROR(
      CheckWorkingSet(engine.network().model(), 3 * input.NumCells()));

  // Segmented OR-scan of the keep flags over key groups: after the scan, the last
  // row of each group holds "group has any kept row".
  const int key_columns[] = {key_column};
  SharedColumn segment = AdjacentEqualFlags(engine, input, key_columns);
  SharedColumn group_or = keep_flags;
  SharedColumn scan_flags = segment;
  for (int64_t d = 1; d < n; d *= 2) {
    const size_t len = static_cast<size_t>(n - d);
    SharedColumn shifted_vals = SliceColumn(group_or, 0, len);
    SharedColumn shifted_flags = SliceColumn(scan_flags, 0, len);
    SharedColumn cur_vals = SliceColumn(group_or, static_cast<size_t>(d), len);
    SharedColumn cur_flags = SliceColumn(scan_flags, static_cast<size_t>(d), len);
    // OR(a, b) = a + b - a*b over 0/1 shares.
    SharedColumn ored = SecretShareEngine::Sub(
        SecretShareEngine::Add(cur_vals, shifted_vals),
        engine.Mul(cur_vals, shifted_vals));
    SharedColumn new_vals = engine.Mux(cur_flags, ored, cur_vals);
    SharedColumn new_flags = engine.Mul(cur_flags, shifted_flags);
    for (int p = 0; p < kNumShareParties; ++p) {
      std::copy(new_vals.shares[p].begin(), new_vals.shares[p].end(),
                group_or.shares[p].begin() + d);
      std::copy(new_flags.shares[p].begin(), new_flags.shares[p].end(),
                scan_flags.shares[p].begin() + d);
    }
  }

  // is_last(i) = NOT segment(i+1); row n-1 is always last. Count = sum over groups of
  // the group-OR at the last row — a local share addition after one multiplication.
  SharedColumn is_last(static_cast<size_t>(n));
  {
    const SharedColumn ones =
        SecretShareEngine::PublicConst(static_cast<size_t>(n - 1), 1);
    SharedColumn next_eq = SliceColumn(segment, 1, static_cast<size_t>(n - 1));
    SharedColumn not_next = SecretShareEngine::Sub(ones, next_eq);
    for (int p = 0; p < kNumShareParties; ++p) {
      std::copy(not_next.shares[p].begin(), not_next.shares[p].end(),
                is_last.shares[p].begin());
      is_last.shares[p][static_cast<size_t>(n - 1)] = 0;
    }
    is_last.shares[0][static_cast<size_t>(n - 1)] = 1;
  }
  SharedColumn contributions = engine.Mul(is_last, group_or);
  SharedColumn total(1);
  for (int p = 0; p < kNumShareParties; ++p) {
    total.shares[p][0] = RingSum(contributions.shares[p]);
  }
  std::vector<SharedColumn> columns{std::move(total)};
  return SharedRelation(Schema(std::move(defs)), std::move(columns));
}

}  // namespace mpc
}  // namespace conclave
