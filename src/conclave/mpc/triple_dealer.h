// Beaver multiplication-triple dealer.
//
// Produces random shared triples (a, b, c) with c = a*b in Z_2^64. The engine consumes
// one triple per secret multiplication (Beaver's protocol [4]). A trusted dealer is the
// standard simulation stand-in for Sharemind's correlated-randomness preprocessing; the
// number of triples dealt is exposed so tests can assert multiplication counts.
//
// Randomness is counter-based (AesCounterRng — batched fixed-key AES counter
// blocks): triple i of a batch draws words [8i, 8i+8) of the batch's stream, so
// columns fill in one morsel-parallel pass with a pool-size-independent result. DealBatch writes into a dealer-owned scratch batch
// (borrowed until the next call), so steady-state multiplication consumes no
// allocations for triples at all.
#ifndef CONCLAVE_MPC_TRIPLE_DEALER_H_
#define CONCLAVE_MPC_TRIPLE_DEALER_H_

#include <cstdint>

#include "conclave/common/rng.h"
#include "conclave/mpc/share.h"

namespace conclave {

// A batch of shared triples, column-major like SharedColumn.
struct TripleBatch {
  SharedColumn a;
  SharedColumn b;
  SharedColumn c;
};

class TripleDealer {
 public:
  explicit TripleDealer(uint64_t seed) : seed_(seed) {}

  // Fills the dealer's scratch batch with `count` fresh triples in one pass and
  // returns it; the reference is valid until the next DealBatch/Deal call.
  const TripleBatch& DealBatch(size_t count);

  // Copying convenience for callers that keep the batch (tests).
  TripleBatch Deal(size_t count);

  uint64_t triples_dealt() const { return triples_dealt_; }

  // Replay checkpoint for fault-injected frontier rollback: restoring rewinds the
  // stream counter (and the dealt-triples meter), so a re-executed node consumes
  // the same triples and reproduces the same openings (DESIGN.md §11). The
  // scratch batch needs no snapshot — it is borrowed per call and refilled from
  // the (restored) stream counter.
  struct Checkpoint {
    uint64_t next_stream = 0;
    uint64_t triples_dealt = 0;
  };
  Checkpoint TakeCheckpoint() const { return {next_stream_, triples_dealt_}; }
  void Restore(const Checkpoint& checkpoint) {
    next_stream_ = checkpoint.next_stream;
    triples_dealt_ = checkpoint.triples_dealt;
  }

  // True when `column` is one of the dealer-owned scratch columns. The engine
  // rejects such operands: the next DealBatch would refill them mid-protocol.
  bool OwnsBatchColumn(const SharedColumn& column) const {
    return &column == &scratch_.a || &column == &scratch_.b ||
           &column == &scratch_.c;
  }

 private:
  void Fill(TripleBatch& batch, size_t count);

  uint64_t seed_;
  uint64_t next_stream_ = 0;
  uint64_t triples_dealt_ = 0;
  TripleBatch scratch_;
};

}  // namespace conclave

#endif  // CONCLAVE_MPC_TRIPLE_DEALER_H_
