// Beaver multiplication-triple dealer.
//
// Produces random shared triples (a, b, c) with c = a*b in Z_2^64. The engine consumes
// one triple per secret multiplication (Beaver's protocol [4]). A trusted dealer is the
// standard simulation stand-in for Sharemind's correlated-randomness preprocessing; the
// number of triples dealt is exposed so tests can assert multiplication counts.
#ifndef CONCLAVE_MPC_TRIPLE_DEALER_H_
#define CONCLAVE_MPC_TRIPLE_DEALER_H_

#include <cstdint>

#include "conclave/common/rng.h"
#include "conclave/mpc/share.h"

namespace conclave {

// A batch of shared triples, column-major like SharedColumn.
struct TripleBatch {
  SharedColumn a;
  SharedColumn b;
  SharedColumn c;
};

class TripleDealer {
 public:
  explicit TripleDealer(uint64_t seed) : rng_(seed) {}

  TripleBatch Deal(size_t count);

  uint64_t triples_dealt() const { return triples_dealt_; }

 private:
  Rng rng_;
  uint64_t triples_dealt_ = 0;
};

}  // namespace conclave

#endif  // CONCLAVE_MPC_TRIPLE_DEALER_H_
