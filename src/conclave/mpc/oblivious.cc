#include "conclave/mpc/oblivious.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "conclave/common/thread_pool.h"

namespace conclave {
namespace {

// Builds every output column as a fresh re-randomized gather of the corresponding
// input column at `rows`. Streams are claimed per column up front, in column order
// on the serialized lane, so the fan-out over columns (each column's kernel is
// itself morsel-parallel over rows) cannot perturb stream assignment — the result
// is bit-identical at every pool size.
std::vector<SharedColumn> GatherRerandomizeColumns(SecretShareEngine& engine,
                                                   const SharedRelation& input,
                                                   std::span<const int64_t> rows) {
  const int num_columns = input.NumColumns();
  std::vector<AesCounterRng> streams;
  streams.reserve(static_cast<size_t>(num_columns));
  for (int c = 0; c < num_columns; ++c) {
    streams.push_back(engine.NewStream());
  }
  std::vector<SharedColumn> columns(static_cast<size_t>(num_columns));
  ParallelFor(
      0, num_columns,
      [&](int64_t lo, int64_t hi) {
        for (int64_t c = lo; c < hi; ++c) {
          columns[static_cast<size_t>(c)] = SecretShareEngine::GatherRerandomizeWith(
              input.Column(static_cast<int>(c)), rows,
              streams[static_cast<size_t>(c)]);
        }
      },
      /*grain=*/1);
  return columns;
}

// Shared 0/1 column: 1 iff the row at `lo` is lexicographically greater than the row
// at `hi` on the key columns (i.e., the pair must swap for ascending order).
SharedColumn RowGreater(SecretShareEngine& engine, const SharedRelation& rel,
                        std::span<const int64_t> lo, std::span<const int64_t> hi,
                        std::span<const int> key_columns, bool ascending) {
  // For descending order, "must swap" means lo < hi: flip the comparison direction.
  const CompareOp cmp = ascending ? CompareOp::kGt : CompareOp::kLt;
  CONCLAVE_CHECK_GT(key_columns.size(), 0u);
  SharedColumn greater;
  SharedColumn all_equal;
  for (size_t k = 0; k < key_columns.size(); ++k) {
    const SharedColumn& column = rel.Column(key_columns[k]);
    SharedColumn lo_vals = GatherColumn(column, lo);
    SharedColumn hi_vals = GatherColumn(column, hi);
    SharedColumn gt_k = engine.Compare(cmp, lo_vals, hi_vals);
    if (k == 0) {
      greater = std::move(gt_k);
      if (key_columns.size() > 1) {
        all_equal = engine.Compare(CompareOp::kEq, lo_vals, hi_vals);
      }
    } else {
      // greater |= all_equal & gt_k — the events are disjoint, so addition suffices.
      greater = SecretShareEngine::Add(greater, engine.Mul(all_equal, gt_k));
      if (k + 1 < key_columns.size()) {
        all_equal =
            engine.Mul(all_equal, engine.Compare(CompareOp::kEq, lo_vals, hi_vals));
      }
    }
  }
  return greater;
}

// Applies one batched compare-exchange layer in place.
void CompareExchangeLayer(SecretShareEngine& engine, SharedRelation& rel,
                          const std::vector<std::pair<int64_t, int64_t>>& pairs,
                          std::span<const int> key_columns, bool ascending = true) {
  if (pairs.empty()) {
    return;
  }
  std::vector<int64_t> lo(pairs.size());
  std::vector<int64_t> hi(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    lo[i] = pairs[i].first;
    hi[i] = pairs[i].second;
  }
  const SharedColumn swap = RowGreater(engine, rel, lo, hi, key_columns, ascending);
  for (int c = 0; c < rel.NumColumns(); ++c) {
    SharedColumn& column = rel.MutableColumn(c);
    SharedColumn lo_vals = GatherColumn(column, lo);
    SharedColumn hi_vals = GatherColumn(column, hi);
    // new_lo = lo + swap * (hi - lo); new_hi = lo + hi - new_lo (only one Mul).
    SharedColumn new_lo = SecretShareEngine::Add(
        lo_vals, engine.Mul(swap, SecretShareEngine::Sub(hi_vals, lo_vals)));
    SharedColumn new_hi = SecretShareEngine::Sub(
        SecretShareEngine::Add(lo_vals, hi_vals), new_lo);
    ScatterColumn(column, lo, new_lo);
    ScatterColumn(column, hi, new_hi);
  }
}

bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

std::vector<std::vector<std::pair<int64_t, int64_t>>> BatcherSortLayers(int64_t n) {
  // Generalized (arbitrary-n) odd-even merge-sort network; within one (p, k) step all
  // comparators touch disjoint indices, so each step is one batchable layer.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> layers;
  for (int64_t p = 1; p < n; p <<= 1) {
    for (int64_t k = p; k >= 1; k >>= 1) {
      std::vector<std::pair<int64_t, int64_t>> layer;
      for (int64_t j = k % p; j + k < n; j += 2 * k) {
        for (int64_t i = 0; i < std::min(k, n - j - k); ++i) {
          if ((i + j) / (p * 2) == (i + j + k) / (p * 2)) {
            layer.emplace_back(i + j, i + j + k);
          }
        }
      }
      if (!layer.empty()) {
        layers.push_back(std::move(layer));
      }
    }
  }
  return layers;
}

std::vector<std::vector<std::pair<int64_t, int64_t>>> BatcherMergeLayers(
    int64_t run_length, int64_t total) {
  // The final p-pass of the generalized network merges two sorted runs [0, p) and
  // [p, total) when p is a power of two and total - p <= p.
  CONCLAVE_CHECK(IsPowerOfTwo(run_length));
  CONCLAVE_CHECK_LE(total - run_length, run_length);
  const int64_t n = total;
  const int64_t p = run_length;
  std::vector<std::vector<std::pair<int64_t, int64_t>>> layers;
  for (int64_t k = p; k >= 1; k >>= 1) {
    std::vector<std::pair<int64_t, int64_t>> layer;
    for (int64_t j = k % p; j + k < n; j += 2 * k) {
      for (int64_t i = 0; i < std::min(k, n - j - k); ++i) {
        if ((i + j) / (p * 2) == (i + j + k) / (p * 2)) {
          layer.emplace_back(i + j, i + j + k);
        }
      }
    }
    if (!layer.empty()) {
      layers.push_back(std::move(layer));
    }
  }
  return layers;
}

SharedRelation ObliviousShuffle(SecretShareEngine& engine,
                                const SharedRelation& input) {
  const int64_t rows = input.NumRows();
  std::vector<int64_t> perm(static_cast<size_t>(rows));
  std::iota(perm.begin(), perm.end(), 0);
  // Fisher-Yates is inherently sequential; it draws from the lane-owned generator.
  std::shuffle(perm.begin(), perm.end(), engine.rng());

  std::vector<SharedColumn> columns = GatherRerandomizeColumns(engine, input, perm);

  const CostModel& model = engine.network().model();
  const uint64_t cells = input.NumCells();
  const SsCharge charge = model.SsChargeFor(SsPrimitive::kShuffleCell);
  engine.network().CpuSeconds(static_cast<double>(cells) * charge.seconds);
  engine.network().CountAggregateBytes(cells * charge.bytes);
  engine.network().Rounds(charge.rounds);
  return SharedRelation(input.schema(), std::move(columns));
}

SharedRelation ObliviousSort(SecretShareEngine& engine, const SharedRelation& input,
                             std::span<const int> key_columns, bool ascending) {
  SharedRelation rel = input;
  for (const auto& layer : BatcherSortLayers(rel.NumRows())) {
    CompareExchangeLayer(engine, rel, layer, key_columns, ascending);
  }
  return rel;
}

SharedRelation ObliviousMerge(SecretShareEngine& engine, const SharedRelation& a,
                              const SharedRelation& b,
                              std::span<const int> key_columns) {
  CONCLAVE_CHECK(a.schema().NamesMatch(b.schema()));
  // Column-wise concatenation of shares.
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(a.NumColumns()));
  for (int c = 0; c < a.NumColumns(); ++c) {
    SharedColumn merged(a.Column(c).size() + b.Column(c).size());
    for (int p = 0; p < kNumShareParties; ++p) {
      auto& dest = merged.shares[p];
      const auto& first = a.Column(c).shares[p];
      const auto& second = b.Column(c).shares[p];
      std::copy(first.begin(), first.end(), dest.begin());
      std::copy(second.begin(), second.end(),
                dest.begin() + static_cast<int64_t>(first.size()));
    }
    columns.push_back(std::move(merged));
  }
  SharedRelation rel(a.schema(), std::move(columns));

  if (IsPowerOfTwo(a.NumRows()) && b.NumRows() <= a.NumRows() && b.NumRows() > 0) {
    for (const auto& layer : BatcherMergeLayers(a.NumRows(), rel.NumRows())) {
      CompareExchangeLayer(engine, rel, layer, key_columns);
    }
    return rel;
  }
  // Shapes the merge network cannot handle: fall back to a full sort.
  return ObliviousSort(engine, rel, key_columns);
}

SharedRelation ObliviousSelect(SecretShareEngine& engine, const SharedRelation& input,
                               const SharedColumn& indices) {
  const int64_t n = input.NumRows();
  const int64_t m = static_cast<int64_t>(indices.size());

  // Ideal-functionality gather: indices are reconstructed internally, rows gathered,
  // and outputs re-randomized; the real protocol's O((n+m) log(n+m)) cost is charged.
  const std::vector<int64_t> rows = SecretShareEngine::IdealReconstruct(indices);
  for (int64_t row : rows) {
    CONCLAVE_CHECK_GE(row, 0);
    CONCLAVE_CHECK_LT(row, n);
  }

  std::vector<SharedColumn> columns = GatherRerandomizeColumns(engine, input, rows);

  const CostModel& model = engine.network().model();
  const double total = static_cast<double>(n + m);
  const uint64_t log_term = ObliviousSelectRounds(n, m);
  const double select_ops = total * static_cast<double>(log_term);
  const SsCharge charge = model.SsChargeFor(SsPrimitive::kSelectOp);
  engine.network().CpuSeconds(select_ops * charge.seconds);
  engine.network().CountAggregateBytes(
      static_cast<uint64_t>(select_ops) * charge.bytes);
  engine.network().Rounds(log_term);
  return SharedRelation(input.schema(), std::move(columns));
}

SharedRelation ApplyPublicOrder(const SharedRelation& input,
                                std::span<const int64_t> order) {
  CONCLAVE_CHECK_EQ(static_cast<int64_t>(order.size()), input.NumRows());
  // RNG-free share movement: columns fan out with no stream claims to sequence.
  std::vector<SharedColumn> columns(static_cast<size_t>(input.NumColumns()));
  ParallelFor(
      0, input.NumColumns(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t c = lo; c < hi; ++c) {
          columns[static_cast<size_t>(c)] =
              GatherColumn(input.Column(static_cast<int>(c)), order);
        }
      },
      /*grain=*/1);
  return SharedRelation(input.schema(), std::move(columns));
}

}  // namespace conclave
