#include "conclave/mpc/garbled/circuit.h"

namespace conclave {
namespace gc {

Circuit::Circuit() {
  zero_ = Emit(GateKind::kConstZero, -1, -1);
  one_ = Emit(GateKind::kConstOne, -1, -1);
}

Circuit::Wire Circuit::Emit(GateKind kind, Wire a, Wire b) {
  gates_.push_back(Gate{kind, a, b});
  return static_cast<Wire>(gates_.size() - 1);
}

Circuit::Wire Circuit::AddInput() {
  ++num_inputs_;
  return Emit(GateKind::kInput, -1, -1);
}

Circuit::Word Circuit::AddInputWord() {
  Word word;
  for (int i = 0; i < kWordBits; ++i) {
    word.bits[static_cast<size_t>(i)] = AddInput();
  }
  return word;
}

Circuit::Word Circuit::ConstantWord(uint64_t value) {
  Word word;
  for (int i = 0; i < kWordBits; ++i) {
    word.bits[static_cast<size_t>(i)] = ConstantWire(((value >> i) & 1) != 0);
  }
  return word;
}

Circuit::Wire Circuit::Xor(Wire a, Wire b) {
  ++num_xor_gates_;  // Free under free-XOR; counted for completeness.
  return Emit(GateKind::kXor, a, b);
}

Circuit::Wire Circuit::And(Wire a, Wire b) {
  ++num_and_gates_;
  return Emit(GateKind::kAnd, a, b);
}

Circuit::Wire Circuit::Not(Wire a) { return Emit(GateKind::kNot, a, -1); }

Circuit::Wire Circuit::Or(Wire a, Wire b) { return Not(And(Not(a), Not(b))); }

Circuit::Word Circuit::Add(const Word& a, const Word& b) {
  // Ripple-carry: sum = a ^ b ^ carry; carry' = (a & b) | (carry & (a ^ b)), with the
  // OR replaced by XOR (the two terms are never both 1): 2 AND gates per bit.
  Word out;
  Wire carry = ConstantWire(false);
  for (int i = 0; i < kWordBits; ++i) {
    const size_t bit = static_cast<size_t>(i);
    const Wire axb = Xor(a.bits[bit], b.bits[bit]);
    out.bits[bit] = Xor(axb, carry);
    if (i + 1 < kWordBits) {
      carry = Xor(And(a.bits[bit], b.bits[bit]), And(carry, axb));
    }
  }
  return out;
}

Circuit::Word Circuit::Sub(const Word& a, const Word& b) {
  // a - b = a + ~b + 1 (two's complement).
  Word out;
  Wire carry = ConstantWire(true);
  for (int i = 0; i < kWordBits; ++i) {
    const size_t bit = static_cast<size_t>(i);
    const Wire nb = Not(b.bits[bit]);
    const Wire axb = Xor(a.bits[bit], nb);
    out.bits[bit] = Xor(axb, carry);
    if (i + 1 < kWordBits) {
      carry = Xor(And(a.bits[bit], nb), And(carry, axb));
    }
  }
  return out;
}

Circuit::Word Circuit::Mul(const Word& a, const Word& b) {
  // Shift-add schoolbook multiplier (mod 2^64): partial product i is (a << i) ANDed
  // with bit b_i, accumulated with ripple-carry adds.
  Word acc = ConstantWord(0);
  for (int i = 0; i < kWordBits; ++i) {
    Word partial = ConstantWord(0);
    for (int j = 0; i + j < kWordBits; ++j) {
      partial.bits[static_cast<size_t>(i + j)] =
          And(a.bits[static_cast<size_t>(j)], b.bits[static_cast<size_t>(i)]);
    }
    acc = Add(acc, partial);
  }
  return acc;
}

Circuit::Wire Circuit::Equal(const Word& a, const Word& b) {
  // AND-tree over bitwise XNOR: 63 AND gates.
  std::vector<Wire> layer;
  layer.reserve(kWordBits);
  for (int i = 0; i < kWordBits; ++i) {
    layer.push_back(Not(Xor(a.bits[static_cast<size_t>(i)],
                            b.bits[static_cast<size_t>(i)])));
  }
  while (layer.size() > 1) {
    std::vector<Wire> next;
    next.reserve((layer.size() + 1) / 2);
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(And(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2 == 1) {
      next.push_back(layer.back());
    }
    layer = std::move(next);
  }
  return layer[0];
}

Circuit::Wire Circuit::LessThanSigned(const Word& a, const Word& b) {
  // a < b  <=>  (sign(a) != sign(b)) ? sign(a) : sign(a - b).
  const Word diff = Sub(a, b);
  const Wire sign_a = a.bits[kWordBits - 1];
  const Wire sign_b = b.bits[kWordBits - 1];
  const Wire signs_differ = Xor(sign_a, sign_b);
  const Wire diff_sign = diff.bits[kWordBits - 1];
  // mux(signs_differ, sign_a, diff_sign): 1 AND gate.
  return Xor(diff_sign, And(signs_differ, Xor(sign_a, diff_sign)));
}

Circuit::Word Circuit::Mux(Wire selector, const Word& a, const Word& b) {
  // out = b ^ (sel & (a ^ b)): 1 AND per bit.
  Word out;
  for (int i = 0; i < kWordBits; ++i) {
    const size_t bit = static_cast<size_t>(i);
    out.bits[bit] = Xor(b.bits[bit], And(selector, Xor(a.bits[bit], b.bits[bit])));
  }
  return out;
}

void Circuit::MarkOutputWord(const Word& word) {
  for (Wire wire : word.bits) {
    MarkOutput(wire);
  }
}

std::vector<bool> Circuit::Evaluate(const std::vector<bool>& inputs) const {
  CONCLAVE_CHECK_EQ(static_cast<int64_t>(inputs.size()), num_inputs_);
  std::vector<bool> values(gates_.size());
  size_t next_input = 0;
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    switch (gate.kind) {
      case GateKind::kConstZero:
        values[i] = false;
        break;
      case GateKind::kConstOne:
        values[i] = true;
        break;
      case GateKind::kInput:
        values[i] = inputs[next_input++];
        break;
      case GateKind::kXor:
        values[i] = values[static_cast<size_t>(gate.a)] ^
                    values[static_cast<size_t>(gate.b)];
        break;
      case GateKind::kAnd:
        values[i] = values[static_cast<size_t>(gate.a)] &&
                    values[static_cast<size_t>(gate.b)];
        break;
      case GateKind::kNot:
        values[i] = !values[static_cast<size_t>(gate.a)];
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (Wire wire : outputs_) {
    out.push_back(values[static_cast<size_t>(wire)]);
  }
  return out;
}

std::vector<bool> Circuit::PackWord(uint64_t value) {
  std::vector<bool> bits(kWordBits);
  for (int i = 0; i < kWordBits; ++i) {
    bits[static_cast<size_t>(i)] = ((value >> i) & 1) != 0;
  }
  return bits;
}

uint64_t Circuit::UnpackWord(const std::vector<bool>& bits, size_t offset) {
  CONCLAVE_CHECK_LE(offset + kWordBits, bits.size());
  uint64_t value = 0;
  for (int i = 0; i < kWordBits; ++i) {
    if (bits[offset + static_cast<size_t>(i)]) {
      value |= (1ULL << i);
    }
  }
  return value;
}

}  // namespace gc
}  // namespace conclave
