// Garbled-circuit relational engine (the Obliv-C / ObliVM backend stand-in).
//
// Two-party MPC: one party garbles, the other evaluates. Each relational operator
// (1) computes its circuit size analytically from gc_cost.h (whose per-primitive
// constants are validated against the real circuits in circuit.h), (2) pre-flight
// checks the simulated memory limit — returning RESOURCE_EXHAUSTED exactly where the
// paper reports Obliv-C OOMs (Fig. 1), (3) charges gate/transfer costs to the
// simulated network, and (4) produces the ideal result via the cleartext operator
// library. See DESIGN.md §2 for the simulation contract.
//
// ObliVM mode applies CostModel::oblivm_slowdown, modelling SMCQL's slower backend
// (§7.4: "ObliVM ... is slower than Sharemind, particularly on large data").
#ifndef CONCLAVE_MPC_GARBLED_GC_ENGINE_H_
#define CONCLAVE_MPC_GARBLED_GC_ENGINE_H_

#include <span>
#include <string>

#include "conclave/common/status.h"
#include "conclave/mpc/garbled/gc_cost.h"
#include "conclave/net/network.h"
#include "conclave/relational/ops.h"

namespace conclave {
namespace gc {

class GcEngine {
 public:
  // `oblivm_mode` selects the slower ObliVM cost profile.
  GcEngine(SimNetwork* network, bool oblivm_mode = false)
      : network_(network), oblivm_mode_(oblivm_mode) {
    CONCLAVE_CHECK(network != nullptr);
  }

  // Transfers a party's input relation into the MPC (wire labels via OT).
  Status ChargeInput(const Relation& input);

  StatusOr<Relation> Project(const Relation& input, std::span<const int> columns);
  StatusOr<Relation> Filter(const Relation& input, const FilterPredicate& predicate);
  StatusOr<Relation> Join(const Relation& left, const Relation& right,
                          std::span<const int> left_keys,
                          std::span<const int> right_keys);
  StatusOr<Relation> Aggregate(const Relation& input,
                               std::span<const int> group_columns, AggKind kind,
                               int agg_column, const std::string& output_name,
                               bool assume_sorted = false);
  StatusOr<Relation> Window(const Relation& input, const WindowSpec& spec,
                            bool assume_sorted = false);
  StatusOr<Relation> Sort(const Relation& input, std::span<const int> columns,
                          bool ascending = true, bool assume_sorted = false);
  StatusOr<Relation> Distinct(const Relation& input, std::span<const int> columns,
                              bool assume_sorted = false);
  StatusOr<Relation> Concat(std::span<const Relation> inputs);
  StatusOr<Relation> Arithmetic(const Relation& input, const ArithSpec& spec);
  StatusOr<Relation> Limit(const Relation& input, int64_t count);

  bool oblivm_mode() const { return oblivm_mode_; }
  SimNetwork& network() { return *network_; }

 private:
  // Memory pre-flight + gate/transfer accounting; RESOURCE_EXHAUSTED simulates OOM.
  Status Charge(const GcOpCost& cost, const char* op_name);

  SimNetwork* network_;
  bool oblivm_mode_;
};

}  // namespace gc
}  // namespace conclave

#endif  // CONCLAVE_MPC_GARBLED_GC_ENGINE_H_
