// Analytic gate-count and memory formulas for garbled-circuit relational operators.
//
// Per-primitive AND-gate constants match the real builders in circuit.h (tests assert
// this), so costing a 10^10-gate join is exact without materializing it. Memory follows
// Obliv-C's observed behaviour (Fig. 1): the engine retains live wire labels for whole
// relations (~200 B per input bit once bookkeeping is included) and per-pair transient
// state in the Cartesian join; both are calibrated to reproduce the paper's OOM points
// (join ~30k total records, projection ~300k rows on a 4 GB VM).
#ifndef CONCLAVE_MPC_GARBLED_GC_COST_H_
#define CONCLAVE_MPC_GARBLED_GC_COST_H_

#include <cstdint>

#include "conclave/net/cost_model.h"

namespace conclave {
namespace gc {

// AND gates per 64-bit primitive, mirroring circuit.cc's builders.
inline constexpr uint64_t kAndPerAdd = 126;   // Ripple-carry, final carry elided.
inline constexpr uint64_t kAndPerSub = 126;
inline constexpr uint64_t kAndPerEqual = 63;  // XNOR + AND tree.
inline constexpr uint64_t kAndPerLess = 127;  // Sub + 1-bit sign mux.
inline constexpr uint64_t kAndPerMux = 64;    // 1 AND per bit.
inline constexpr uint64_t kAndPerMul =
    2080 + 64 * kAndPerAdd;  // 2080 partial-product ANDs + 64 accumulator adds.

struct GcOpCost {
  uint64_t and_gates = 0;        // Non-free gates to garble/transfer/evaluate.
  uint64_t live_state_bytes = 0; // Peak resident wire-label state.

  GcOpCost& operator+=(const GcOpCost& other) {
    and_gates += other.and_gates;
    live_state_bytes += other.live_state_bytes;
    return *this;
  }
};

// Live label state for a relation of rows x cols 64-bit cells.
uint64_t LiveBytesForCells(const CostModel& model, uint64_t rows, uint64_t cols);

// Single linear pass retaining input + output labels (project, filter, arithmetic,
// concat, limit, enumerate). `per_row_and_gates` varies by operator.
GcOpCost LinearPassCost(const CostModel& model, uint64_t rows, uint64_t in_cols,
                        uint64_t out_cols, uint64_t per_row_and_gates);

// Cartesian-product join: per pair, key equality + output muxing; per-pair transient
// bookkeeping dominates memory.
GcOpCost JoinCost(const CostModel& model, uint64_t left_rows, uint64_t right_rows,
                  uint64_t left_cols, uint64_t right_cols, uint64_t key_cols);

// Exact shape of a generalized Batcher network: total compare-exchanges (the gate
// and comparison count) and non-empty layers (the round count — one batched layer is
// one round group). Matches BatcherSortLayers / BatcherMergeLayers in mpc/oblivious.cc
// comparator for comparator (tests assert this), but computed in closed form per
// (p, k, j) block, so costing a million-row sort never materializes the network.
struct BatcherNetworkShape {
  uint64_t exchanges = 0;
  uint64_t layers = 0;
};

BatcherNetworkShape BatcherSortShape(uint64_t rows);
// The merge pass for sorted runs [0, run_length) and [run_length, total); requires
// run_length a power of two and total - run_length <= run_length (the same shapes
// ObliviousMerge accepts before falling back to a full sort).
BatcherNetworkShape BatcherMergeShape(uint64_t run_length, uint64_t total);

// Batcher-network compare-exchange count for n rows (n log^2 n / 4 shape).
uint64_t BatcherCompareExchanges(uint64_t rows);

// Sort-based operator (order-by, distinct, aggregation's sort phase + linear scan).
GcOpCost SortCost(const CostModel& model, uint64_t rows, uint64_t cols,
                  uint64_t key_cols);
GcOpCost AggregateCost(const CostModel& model, uint64_t rows, uint64_t cols,
                       uint64_t group_cols, bool assume_sorted);

// Window function: sort phase (unless pre-sorted) + per-row partition-equality tests
// and a log-depth segmented scan of adds/muxes.
GcOpCost WindowCost(const CostModel& model, uint64_t rows, uint64_t cols,
                    uint64_t partition_cols, bool assume_sorted);

}  // namespace gc
}  // namespace conclave

#endif  // CONCLAVE_MPC_GARBLED_GC_COST_H_
