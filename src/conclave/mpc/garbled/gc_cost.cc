#include "conclave/mpc/garbled/gc_cost.h"

#include <algorithm>

namespace conclave {
namespace gc {

uint64_t LiveBytesForCells(const CostModel& model, uint64_t rows, uint64_t cols) {
  return rows * cols * 64 * model.gc_bytes_per_live_bit;
}

GcOpCost LinearPassCost(const CostModel& model, uint64_t rows, uint64_t in_cols,
                        uint64_t out_cols, uint64_t per_row_and_gates) {
  GcOpCost cost;
  cost.and_gates = rows * per_row_and_gates;
  cost.live_state_bytes = LiveBytesForCells(model, rows, in_cols) +
                          LiveBytesForCells(model, rows, out_cols);
  return cost;
}

GcOpCost JoinCost(const CostModel& model, uint64_t left_rows, uint64_t right_rows,
                  uint64_t left_cols, uint64_t right_cols, uint64_t key_cols) {
  GcOpCost cost;
  const uint64_t pairs = left_rows * right_rows;
  const uint64_t out_cols = left_cols + right_cols - key_cols;
  // Per pair: key equality + conditional output assembly (mux every output column).
  cost.and_gates = pairs * (key_cols * kAndPerEqual + out_cols * kAndPerMux);
  cost.live_state_bytes = LiveBytesForCells(model, left_rows, left_cols) +
                          LiveBytesForCells(model, right_rows, right_cols) +
                          pairs * model.gc_bytes_per_join_pair;
  return cost;
}

uint64_t BatcherCompareExchanges(uint64_t rows) {
  uint64_t count = 0;
  const int64_t n = static_cast<int64_t>(rows);
  for (int64_t p = 1; p < n; p <<= 1) {
    for (int64_t k = p; k >= 1; k >>= 1) {
      for (int64_t j = k % p; j + k < n; j += 2 * k) {
        const int64_t limit = std::min(k, n - j - k);
        for (int64_t i = 0; i < limit; ++i) {
          if ((i + j) / (p * 2) == (i + j + k) / (p * 2)) {
            ++count;
          }
        }
      }
    }
  }
  return count;
}

GcOpCost SortCost(const CostModel& model, uint64_t rows, uint64_t cols,
                  uint64_t key_cols) {
  GcOpCost cost;
  const uint64_t exchanges = BatcherCompareExchanges(rows);
  // Per compare-exchange: lexicographic compare + 2-way mux of every column (one mux
  // computes new_lo, new_hi derives by XOR-algebra; count both conservatively).
  cost.and_gates =
      exchanges * (key_cols * kAndPerLess + (key_cols - 1) * kAndPerEqual +
                   2 * cols * kAndPerMux);
  cost.live_state_bytes = 2 * LiveBytesForCells(model, rows, cols);
  return cost;
}

GcOpCost AggregateCost(const CostModel& model, uint64_t rows, uint64_t cols,
                       uint64_t group_cols, bool assume_sorted) {
  GcOpCost cost;
  if (!assume_sorted) {
    cost += SortCost(model, rows, cols, group_cols);
  }
  // Linear accumulation scan: adjacent key equality + accumulate mux + add per row.
  cost.and_gates +=
      rows * (group_cols * kAndPerEqual + kAndPerMux + kAndPerAdd);
  cost.live_state_bytes += 2 * LiveBytesForCells(model, rows, cols);
  return cost;
}

GcOpCost WindowCost(const CostModel& model, uint64_t rows, uint64_t cols,
                    uint64_t partition_cols, bool assume_sorted) {
  GcOpCost cost;
  if (!assume_sorted) {
    cost += SortCost(model, rows, cols, partition_cols + 1);
  }
  // Adjacent partition-equality per row, then a log-depth Hillis-Steele segmented
  // scan: ~log2(rows) rounds of (add + value mux + flag AND) per row.
  uint64_t scan_rounds = 0;
  for (uint64_t d = 1; d < rows; d *= 2) {
    ++scan_rounds;
  }
  cost.and_gates += rows * partition_cols * kAndPerEqual;
  cost.and_gates += rows * scan_rounds * (kAndPerAdd + 2 * kAndPerMux);
  cost.live_state_bytes += 2 * LiveBytesForCells(model, rows, cols + 1);
  return cost;
}

}  // namespace gc
}  // namespace conclave
