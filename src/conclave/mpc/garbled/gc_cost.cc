#include "conclave/mpc/garbled/gc_cost.h"

#include <algorithm>

namespace conclave {
namespace gc {

uint64_t LiveBytesForCells(const CostModel& model, uint64_t rows, uint64_t cols) {
  return rows * cols * 64 * model.gc_bytes_per_live_bit;
}

GcOpCost LinearPassCost(const CostModel& model, uint64_t rows, uint64_t in_cols,
                        uint64_t out_cols, uint64_t per_row_and_gates) {
  GcOpCost cost;
  cost.and_gates = rows * per_row_and_gates;
  cost.live_state_bytes = LiveBytesForCells(model, rows, in_cols) +
                          LiveBytesForCells(model, rows, out_cols);
  return cost;
}

GcOpCost JoinCost(const CostModel& model, uint64_t left_rows, uint64_t right_rows,
                  uint64_t left_cols, uint64_t right_cols, uint64_t key_cols) {
  GcOpCost cost;
  const uint64_t pairs = left_rows * right_rows;
  const uint64_t out_cols = left_cols + right_cols - key_cols;
  // Per pair: key equality + conditional output assembly (mux every output column).
  cost.and_gates = pairs * (key_cols * kAndPerEqual + out_cols * kAndPerMux);
  cost.live_state_bytes = LiveBytesForCells(model, left_rows, left_cols) +
                          LiveBytesForCells(model, right_rows, right_cols) +
                          pairs * model.gc_bytes_per_join_pair;
  return cost;
}

namespace {

// Number of a in [0, x) with a mod m < t (0 <= t <= m).
uint64_t CountModLessPrefix(int64_t x, int64_t m, int64_t t) {
  return static_cast<uint64_t>(x / m) * static_cast<uint64_t>(t) +
         static_cast<uint64_t>(std::min(x % m, t));
}

// Comparators one (p, k, j) block of the generalized Batcher network emits: the i
// with (i + j) / 2p == (i + j + k) / 2p, i in [0, limit). Writing a = i + j, the
// divisions agree exactly when a mod 2p < 2p - k (k <= p keeps a and a + k within
// one period of each other), so the loop collapses to a range count.
uint64_t BlockExchanges(int64_t p, int64_t k, int64_t j, int64_t limit) {
  return CountModLessPrefix(j + limit, 2 * p, 2 * p - k) -
         CountModLessPrefix(j, 2 * p, 2 * p - k);
}

uint64_t MergePassShape(int64_t p, int64_t n, BatcherNetworkShape& shape) {
  uint64_t pass_exchanges = 0;
  for (int64_t k = p; k >= 1; k >>= 1) {
    uint64_t layer = 0;
    for (int64_t j = k % p; j + k < n; j += 2 * k) {
      layer += BlockExchanges(p, k, j, std::min(k, n - j - k));
    }
    if (layer > 0) {
      shape.exchanges += layer;
      ++shape.layers;
      pass_exchanges += layer;
    }
  }
  return pass_exchanges;
}

}  // namespace

BatcherNetworkShape BatcherSortShape(uint64_t rows) {
  BatcherNetworkShape shape;
  const int64_t n = static_cast<int64_t>(rows);
  for (int64_t p = 1; p < n; p <<= 1) {
    MergePassShape(p, n, shape);
  }
  return shape;
}

BatcherNetworkShape BatcherMergeShape(uint64_t run_length, uint64_t total) {
  BatcherNetworkShape shape;
  MergePassShape(static_cast<int64_t>(run_length), static_cast<int64_t>(total),
                 shape);
  return shape;
}

uint64_t BatcherCompareExchanges(uint64_t rows) {
  return BatcherSortShape(rows).exchanges;
}

GcOpCost SortCost(const CostModel& model, uint64_t rows, uint64_t cols,
                  uint64_t key_cols) {
  GcOpCost cost;
  const uint64_t exchanges = BatcherCompareExchanges(rows);
  // Per compare-exchange: lexicographic compare + 2-way mux of every column (one mux
  // computes new_lo, new_hi derives by XOR-algebra; count both conservatively).
  cost.and_gates =
      exchanges * (key_cols * kAndPerLess + (key_cols - 1) * kAndPerEqual +
                   2 * cols * kAndPerMux);
  cost.live_state_bytes = 2 * LiveBytesForCells(model, rows, cols);
  return cost;
}

GcOpCost AggregateCost(const CostModel& model, uint64_t rows, uint64_t cols,
                       uint64_t group_cols, bool assume_sorted) {
  GcOpCost cost;
  if (!assume_sorted) {
    cost += SortCost(model, rows, cols, group_cols);
  }
  // Linear accumulation scan: adjacent key equality + accumulate mux + add per row.
  cost.and_gates +=
      rows * (group_cols * kAndPerEqual + kAndPerMux + kAndPerAdd);
  cost.live_state_bytes += 2 * LiveBytesForCells(model, rows, cols);
  return cost;
}

GcOpCost WindowCost(const CostModel& model, uint64_t rows, uint64_t cols,
                    uint64_t partition_cols, bool assume_sorted) {
  GcOpCost cost;
  if (!assume_sorted) {
    cost += SortCost(model, rows, cols, partition_cols + 1);
  }
  // Adjacent partition-equality per row, then a log-depth Hillis-Steele segmented
  // scan: ~log2(rows) rounds of (add + value mux + flag AND) per row.
  uint64_t scan_rounds = 0;
  for (uint64_t d = 1; d < rows; d *= 2) {
    ++scan_rounds;
  }
  cost.and_gates += rows * partition_cols * kAndPerEqual;
  cost.and_gates += rows * scan_rounds * (kAndPerAdd + 2 * kAndPerMux);
  cost.live_state_bytes += 2 * LiveBytesForCells(model, rows, cols + 1);
  return cost;
}

}  // namespace gc
}  // namespace conclave
