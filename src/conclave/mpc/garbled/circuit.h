// Boolean circuit builder and evaluator (the gate-level core of the Obliv-C stand-in).
//
// Garbled-circuit MPC evaluates a boolean circuit gate by gate; with free-XOR and
// half-gates, only AND/OR gates cost ciphertexts (2 x 16 B each) and garbling work.
// This module builds *real* circuits for the 64-bit primitives relational operators
// need — adders, subtractors, comparators, equality, mux, shift-add multiplier — and
// evaluates them bit-by-bit. Tests validate every primitive against native arithmetic;
// the relational GC engine (gc_engine.h) then uses the per-primitive gate counts from
// these builders (via gc_cost.h) to cost full operators without materializing circuits
// with billions of gates.
#ifndef CONCLAVE_MPC_GARBLED_CIRCUIT_H_
#define CONCLAVE_MPC_GARBLED_CIRCUIT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "conclave/common/check.h"

namespace conclave {
namespace gc {

inline constexpr int kWordBits = 64;

class Circuit {
 public:
  using Wire = int32_t;

  // A 64-bit value as a little-endian bundle of wires.
  struct Word {
    std::array<Wire, kWordBits> bits;
  };

  Circuit();

  Wire ConstantWire(bool value) { return value ? one_ : zero_; }
  Wire AddInput();
  Word AddInputWord();
  Word ConstantWord(uint64_t value);

  Wire Xor(Wire a, Wire b);
  Wire And(Wire a, Wire b);
  Wire Not(Wire a);
  Wire Or(Wire a, Wire b);  // DeMorgan: one non-free gate.

  // Arithmetic on two's-complement words (wrapping).
  Word Add(const Word& a, const Word& b);
  Word Sub(const Word& a, const Word& b);
  Word Mul(const Word& a, const Word& b);

  Wire Equal(const Word& a, const Word& b);
  Wire LessThanSigned(const Word& a, const Word& b);

  // selector ? a : b.
  Word Mux(Wire selector, const Word& a, const Word& b);

  void MarkOutput(Wire wire) { outputs_.push_back(wire); }
  void MarkOutputWord(const Word& word);

  // Evaluates the circuit on cleartext inputs (one bool per AddInput, in order);
  // returns the marked output wires' values in order.
  std::vector<bool> Evaluate(const std::vector<bool>& inputs) const;

  // Convenience: pack a uint64 into input bits / unpack outputs.
  static std::vector<bool> PackWord(uint64_t value);
  static uint64_t UnpackWord(const std::vector<bool>& bits, size_t offset = 0);

  int64_t num_inputs() const { return num_inputs_; }
  int64_t num_and_gates() const { return num_and_gates_; }
  int64_t num_xor_gates() const { return num_xor_gates_; }
  int64_t num_wires() const { return static_cast<int64_t>(gates_.size()); }

 private:
  enum class GateKind : uint8_t { kConstZero, kConstOne, kInput, kXor, kAnd, kNot };
  struct Gate {
    GateKind kind;
    Wire a = -1;
    Wire b = -1;
  };

  Wire Emit(GateKind kind, Wire a, Wire b);

  std::vector<Gate> gates_;
  std::vector<Wire> outputs_;
  Wire zero_ = -1;
  Wire one_ = -1;
  int64_t num_inputs_ = 0;
  int64_t num_and_gates_ = 0;
  int64_t num_xor_gates_ = 0;
};

}  // namespace gc
}  // namespace conclave

#endif  // CONCLAVE_MPC_GARBLED_CIRCUIT_H_
