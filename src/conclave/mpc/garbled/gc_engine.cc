#include "conclave/mpc/garbled/gc_engine.h"

#include <algorithm>

#include "conclave/common/strings.h"

namespace conclave {
namespace gc {

Status GcEngine::Charge(const GcOpCost& cost, const char* op_name) {
  const CostModel& model = network_->model();
  if (cost.live_state_bytes > model.gc_memory_limit_bytes) {
    return ResourceExhaustedError(StrFormat(
        "garbled-circuit %s out of memory: %s live state exceeds limit %s", op_name,
        HumanBytes(cost.live_state_bytes).c_str(),
        HumanBytes(model.gc_memory_limit_bytes).c_str()));
  }
  const double slowdown = oblivm_mode_ ? model.oblivm_slowdown : 1.0;
  network_->CpuSeconds(static_cast<double>(cost.and_gates) *
                       model.gc_seconds_per_and_gate * slowdown);
  network_->CountAggregateBytes(cost.and_gates * model.gc_bytes_per_and_gate);
  network_->Rounds(2);  // Garbled circuits are constant-round.
  network_->mutable_counters().gc_and_gates += cost.and_gates;
  return Status::Ok();
}

Status GcEngine::ChargeInput(const Relation& input) {
  const CostModel& model = network_->model();
  const uint64_t bits = static_cast<uint64_t>(input.NumRows()) *
                        static_cast<uint64_t>(input.NumColumns()) * 64;
  // Wire labels for the evaluator's input bits travel via oblivious transfer:
  // one 16 B label per bit (plus OT overhead folded into the constant).
  network_->CountAggregateBytes(bits * 16);
  network_->CpuSeconds(model.SecondsForBytes(bits * 16));
  network_->Rounds(2);
  const uint64_t live = bits * model.gc_bytes_per_live_bit;
  if (live > model.gc_memory_limit_bytes) {
    return ResourceExhaustedError(
        StrFormat("garbled-circuit input out of memory: %s live state",
                  HumanBytes(live).c_str()));
  }
  return Status::Ok();
}

StatusOr<Relation> GcEngine::Project(const Relation& input,
                                     std::span<const int> columns) {
  // Wire re-bundling costs no gates, but input and output labels stay live.
  const GcOpCost cost = LinearPassCost(
      network_->model(), static_cast<uint64_t>(input.NumRows()),
      static_cast<uint64_t>(input.NumColumns()), columns.size(), /*per_row=*/0);
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "project"));
  return ops::Project(input, columns);
}

StatusOr<Relation> GcEngine::Filter(const Relation& input,
                                    const FilterPredicate& predicate) {
  const uint64_t per_row =
      (predicate.op == CompareOp::kEq || predicate.op == CompareOp::kNe)
          ? kAndPerEqual
          : kAndPerLess;
  const GcOpCost cost = LinearPassCost(
      network_->model(), static_cast<uint64_t>(input.NumRows()),
      static_cast<uint64_t>(input.NumColumns()),
      static_cast<uint64_t>(input.NumColumns()), per_row);
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "filter"));
  return ops::Filter(input, predicate);
}

StatusOr<Relation> GcEngine::Join(const Relation& left, const Relation& right,
                                  std::span<const int> left_keys,
                                  std::span<const int> right_keys) {
  const GcOpCost cost =
      JoinCost(network_->model(), static_cast<uint64_t>(left.NumRows()),
               static_cast<uint64_t>(right.NumRows()),
               static_cast<uint64_t>(left.NumColumns()),
               static_cast<uint64_t>(right.NumColumns()), left_keys.size());
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "join"));
  return ops::Join(left, right, left_keys, right_keys);
}

StatusOr<Relation> GcEngine::Aggregate(const Relation& input,
                                       std::span<const int> group_columns,
                                       AggKind kind, int agg_column,
                                       const std::string& output_name,
                                       bool assume_sorted) {
  const GcOpCost cost = AggregateCost(
      network_->model(), static_cast<uint64_t>(input.NumRows()),
      static_cast<uint64_t>(input.NumColumns()),
      std::max<uint64_t>(group_columns.size(), 1), assume_sorted);
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "aggregate"));
  return ops::Aggregate(input, group_columns, kind, agg_column, output_name);
}

StatusOr<Relation> GcEngine::Window(const Relation& input, const WindowSpec& spec,
                                    bool assume_sorted) {
  const GcOpCost cost = WindowCost(
      network_->model(), static_cast<uint64_t>(input.NumRows()),
      static_cast<uint64_t>(input.NumColumns()), spec.partition_columns.size(),
      assume_sorted);
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "window"));
  return ops::Window(input, spec);
}

StatusOr<Relation> GcEngine::Sort(const Relation& input, std::span<const int> columns,
                                  bool ascending, bool assume_sorted) {
  if (assume_sorted) {
    return input;
  }
  const GcOpCost cost =
      SortCost(network_->model(), static_cast<uint64_t>(input.NumRows()),
               static_cast<uint64_t>(input.NumColumns()), columns.size());
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "sort"));
  return ops::SortBy(input, columns, ascending);
}

StatusOr<Relation> GcEngine::Distinct(const Relation& input,
                                      std::span<const int> columns,
                                      bool assume_sorted) {
  GcOpCost cost;
  if (!assume_sorted) {
    cost += SortCost(network_->model(), static_cast<uint64_t>(input.NumRows()),
                     columns.size(), columns.size());
  }
  // Adjacent-equality pass.
  cost += LinearPassCost(network_->model(), static_cast<uint64_t>(input.NumRows()),
                         columns.size(), columns.size(),
                         columns.size() * kAndPerEqual);
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "distinct"));
  return ops::Distinct(input, columns);
}

StatusOr<Relation> GcEngine::Concat(std::span<const Relation> inputs) {
  uint64_t rows = 0;
  for (const Relation& rel : inputs) {
    rows += static_cast<uint64_t>(rel.NumRows());
  }
  const uint64_t cols =
      inputs.empty() ? 0 : static_cast<uint64_t>(inputs[0].NumColumns());
  const GcOpCost cost =
      LinearPassCost(network_->model(), rows, cols, cols, /*per_row=*/0);
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "concat"));
  return ops::Concat(inputs);
}

StatusOr<Relation> GcEngine::Arithmetic(const Relation& input, const ArithSpec& spec) {
  uint64_t per_row = 0;
  switch (spec.kind) {
    case ArithKind::kAdd:
      per_row = kAndPerAdd;
      break;
    case ArithKind::kSub:
      per_row = kAndPerSub;
      break;
    case ArithKind::kMul:
      per_row = kAndPerMul;
      break;
    case ArithKind::kDiv:
      per_row = 4 * kAndPerMul;  // Restoring division ~ 4x multiplier size.
      break;
  }
  const GcOpCost cost = LinearPassCost(
      network_->model(), static_cast<uint64_t>(input.NumRows()),
      static_cast<uint64_t>(input.NumColumns()),
      static_cast<uint64_t>(input.NumColumns()) + 1, per_row);
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "arithmetic"));
  return ops::Arithmetic(input, spec);
}

StatusOr<Relation> GcEngine::Limit(const Relation& input, int64_t count) {
  const GcOpCost cost = LinearPassCost(
      network_->model(), static_cast<uint64_t>(std::min(count, input.NumRows())),
      static_cast<uint64_t>(input.NumColumns()),
      static_cast<uint64_t>(input.NumColumns()), /*per_row=*/0);
  CONCLAVE_RETURN_IF_ERROR(Charge(cost, "limit"));
  return ops::Limit(input, count);
}

}  // namespace gc
}  // namespace conclave
