#include "conclave/mpc/secret_share_engine.h"

#include "conclave/common/thread_pool.h"

namespace conclave {
namespace {

// Both operands of a binary batched op must agree in size.
void CheckSameSize(const SharedColumn& a, const SharedColumn& b) {
  CONCLAVE_CHECK_EQ(a.size(), b.size());
}

// Morsel loop over [0, n) with the MPC grain.
template <typename Body>
void ForRows(size_t n, const Body& body) {
  ParallelFor(0, static_cast<int64_t>(n), body, kMpcGrainRows);
}

}  // namespace

SharedColumn SecretShareEngine::Add(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  SharedColumn out(a.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    const Ring* const ap = a.shares[p].data();
    const Ring* const bp = b.shares[p].data();
    Ring* const op = out.shares[p].data();
    ForRows(a.size(), [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        op[i] = ap[i] + bp[i];
      }
    });
  }
  return out;
}

SharedColumn SecretShareEngine::Sub(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  SharedColumn out(a.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    const Ring* const ap = a.shares[p].data();
    const Ring* const bp = b.shares[p].data();
    Ring* const op = out.shares[p].data();
    ForRows(a.size(), [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        op[i] = ap[i] - bp[i];
      }
    });
  }
  return out;
}

SharedColumn SecretShareEngine::AddConst(const SharedColumn& a, int64_t constant) {
  SharedColumn out = a;
  const Ring k = ToRing(constant);
  Ring* const o0 = out.shares[0].data();
  ForRows(out.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      o0[i] += k;
    }
  });
  return out;
}

SharedColumn SecretShareEngine::MulConst(const SharedColumn& a, int64_t constant) {
  SharedColumn out(a.size());
  const Ring k = ToRing(constant);
  for (int p = 0; p < kNumShareParties; ++p) {
    const Ring* const ap = a.shares[p].data();
    Ring* const op = out.shares[p].data();
    ForRows(a.size(), [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        op[i] = ap[i] * k;
      }
    });
  }
  return out;
}

SharedColumn SecretShareEngine::Public(std::span<const int64_t> values) {
  SharedColumn out(values.size());
  const int64_t* const v = values.data();
  Ring* const o0 = out.shares[0].data();
  ForRows(values.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      o0[i] = ToRing(v[i]);
    }
  });
  return out;
}

SharedColumn SecretShareEngine::PublicConst(size_t n, int64_t value) {
  SharedColumn out(n);
  out.shares[0].assign(n, ToRing(value));
  return out;
}

SharedColumn SecretShareEngine::Mul(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  if (n == 0) {
    return SharedColumn(0);
  }
  const CostModel& model = network_->model();

  // Operands must not alias the dealer's scratch batch: DealBatch below refills it.
  CONCLAVE_CHECK(!dealer_.OwnsBatchColumn(a) && !dealer_.OwnsBatchColumn(b));
  const TripleBatch& triples = dealer_.DealBatch(n);

  // Beaver: open d = a - ta and e = b - tb, then
  //   z = tc + d*tb + e*ta + d*e  (the d*e term folded into party 0's share).
  SharedColumn out(n);
  auto d_buf = arena_.Acquire(n);
  auto e_buf = arena_.Acquire(n);
  Ring* const d = d_buf.u64();
  Ring* const e = e_buf.u64();
  ForRows(n, [&](int64_t lo, int64_t hi) {
    // Party-major passes so every inner loop streams over dense arrays.
    for (int64_t i = lo; i < hi; ++i) {
      d[i] = 0;
      e[i] = 0;
    }
    for (int p = 0; p < kNumShareParties; ++p) {
      const Ring* const ap = a.shares[p].data();
      const Ring* const bp = b.shares[p].data();
      const Ring* const tap = triples.a.shares[p].data();
      const Ring* const tbp = triples.b.shares[p].data();
      for (int64_t i = lo; i < hi; ++i) {
        d[i] += ap[i] - tap[i];
        e[i] += bp[i] - tbp[i];
      }
    }
    for (int p = 0; p < kNumShareParties; ++p) {
      const Ring* const tap = triples.a.shares[p].data();
      const Ring* const tbp = triples.b.shares[p].data();
      const Ring* const tcp = triples.c.shares[p].data();
      Ring* const op = out.shares[p].data();
      for (int64_t i = lo; i < hi; ++i) {
        op[i] = tcp[i] + d[i] * tbp[i] + e[i] * tap[i];
      }
    }
    Ring* const o0 = out.shares[0].data();
    for (int64_t i = lo; i < hi; ++i) {
      o0[i] += d[i] * e[i];
    }
  });

  const SsCharge charge = model.SsChargeFor(SsPrimitive::kMult);
  network_->CpuSeconds(static_cast<double>(n) * charge.seconds);
  network_->CountAggregateBytes(n * charge.bytes);
  network_->Rounds(charge.rounds);
  network_->mutable_counters().mpc_multiplications += n;
  return out;
}

std::vector<int64_t> SecretShareEngine::Open(const SharedColumn& a) {
  const SsCharge charge = network_->model().SsChargeFor(SsPrimitive::kOpen);
  network_->CountAggregateBytes(a.size() * charge.bytes);
  network_->Rounds(charge.rounds);
  return ReconstructValues(a);
}

SharedColumn SecretShareEngine::Rerandomize(const SharedColumn& a) {
  const size_t n = a.size();
  SharedColumn out(n);
  const CounterRng rng = NewStream();
  const Ring* const a0 = a.shares[0].data();
  const Ring* const a1 = a.shares[1].data();
  const Ring* const a2 = a.shares[2].data();
  Ring* const o0 = out.shares[0].data();
  Ring* const o1 = out.shares[1].data();
  Ring* const o2 = out.shares[2].data();
  ForRows(n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const Ring r0 = rng.At(2 * static_cast<uint64_t>(i));
      const Ring r1 = rng.At(2 * static_cast<uint64_t>(i) + 1);
      o0[i] = a0[i] + r0;
      o1[i] = a1[i] + r1;
      o2[i] = a2[i] - r0 - r1;
    }
  });
  return out;
}

SharedColumn SecretShareEngine::GatherRerandomizeWith(const SharedColumn& column,
                                                      std::span<const int64_t> rows,
                                                      const CounterRng& rng) {
  const size_t n = rows.size();
  SharedColumn out(n);
  const Ring* const a0 = column.shares[0].data();
  const Ring* const a1 = column.shares[1].data();
  const Ring* const a2 = column.shares[2].data();
  Ring* const o0 = out.shares[0].data();
  Ring* const o1 = out.shares[1].data();
  Ring* const o2 = out.shares[2].data();
  ForRows(n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const size_t row = static_cast<size_t>(rows[static_cast<size_t>(i)]);
      CONCLAVE_DCHECK(row < column.size());
      const Ring r0 = rng.At(2 * static_cast<uint64_t>(i));
      const Ring r1 = rng.At(2 * static_cast<uint64_t>(i) + 1);
      o0[i] = a0[row] + r0;
      o1[i] = a1[row] + r1;
      o2[i] = a2[row] - r0 - r1;
    }
  });
  return out;
}

SharedColumn SecretShareEngine::Compare(CompareOp op, const SharedColumn& a,
                                        const SharedColumn& b) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  const CostModel& model = network_->model();
  const bool is_equality = (op == CompareOp::kEq || op == CompareOp::kNe);

  auto lhs_buf = arena_.Acquire(n);
  auto rhs_buf = arena_.Acquire(n);
  ReconstructInto(a, lhs_buf.i64());
  ReconstructInto(b, rhs_buf.i64());
  const int64_t* const lhs = lhs_buf.i64();
  const int64_t* const rhs = rhs_buf.i64();

  // Fresh sharing of the comparison bits, fused with their computation. The op
  // dispatch is hoisted so the per-element loop stays branch-free.
  SharedColumn out(n);
  const CounterRng rng = NewStream();
  Ring* const o0 = out.shares[0].data();
  Ring* const o1 = out.shares[1].data();
  Ring* const o2 = out.shares[2].data();
  const auto share_bits = [&](auto cmp) {
    ForRows(n, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        const Ring bit = cmp(lhs[i], rhs[i]) ? 1 : 0;
        const Ring r0 = rng.At(2 * static_cast<uint64_t>(i));
        const Ring r1 = rng.At(2 * static_cast<uint64_t>(i) + 1);
        o0[i] = r0;
        o1[i] = r1;
        o2[i] = bit - r0 - r1;
      }
    });
  };
  switch (op) {
    case CompareOp::kEq:
      share_bits([](int64_t x, int64_t y) { return x == y; });
      break;
    case CompareOp::kNe:
      share_bits([](int64_t x, int64_t y) { return x != y; });
      break;
    case CompareOp::kLt:
      share_bits([](int64_t x, int64_t y) { return x < y; });
      break;
    case CompareOp::kLe:
      share_bits([](int64_t x, int64_t y) { return x <= y; });
      break;
    case CompareOp::kGt:
      share_bits([](int64_t x, int64_t y) { return x > y; });
      break;
    case CompareOp::kGe:
      share_bits([](int64_t x, int64_t y) { return x >= y; });
      break;
  }

  const SsCharge charge = model.SsChargeFor(
      is_equality ? SsPrimitive::kEquality : SsPrimitive::kCompare);
  network_->CpuSeconds(static_cast<double>(n) * charge.seconds);
  network_->CountAggregateBytes(n * charge.bytes);
  network_->Rounds(charge.rounds);
  network_->mutable_counters().mpc_comparisons += n;
  return out;
}

SharedColumn SecretShareEngine::CompareConst(CompareOp op, const SharedColumn& a,
                                             int64_t constant) {
  return Compare(op, a, PublicConst(a.size(), constant));
}

SharedColumn SecretShareEngine::Div(const SharedColumn& a, const SharedColumn& b,
                                    int64_t scale) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  const CostModel& model = network_->model();

  auto num_buf = arena_.Acquire(n);
  auto den_buf = arena_.Acquire(n);
  ReconstructInto(a, num_buf.i64());
  ReconstructInto(b, den_buf.i64());
  const int64_t* const num = num_buf.i64();
  const int64_t* const den = den_buf.i64();

  SharedColumn out(n);
  const CounterRng rng = NewStream();
  Ring* const o0 = out.shares[0].data();
  Ring* const o1 = out.shares[1].data();
  Ring* const o2 = out.shares[2].data();
  ForRows(n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int64_t q = den[i] == 0 ? 0 : (num[i] * scale) / den[i];
      const Ring r0 = rng.At(2 * static_cast<uint64_t>(i));
      const Ring r1 = rng.At(2 * static_cast<uint64_t>(i) + 1);
      o0[i] = r0;
      o1[i] = r1;
      o2[i] = ToRing(q) - r0 - r1;
    }
  });

  const SsCharge charge = model.SsChargeFor(SsPrimitive::kDivision);
  network_->CpuSeconds(static_cast<double>(n) * charge.seconds);
  network_->CountAggregateBytes(n * charge.bytes);
  network_->Rounds(charge.rounds);
  return out;
}

SharedColumn SecretShareEngine::Mux(const SharedColumn& condition,
                                    const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(condition, a);
  CheckSameSize(a, b);
  // b + cond * (a - b): one Beaver multiplication per element.
  return Add(b, Mul(condition, Sub(a, b)));
}

}  // namespace conclave
