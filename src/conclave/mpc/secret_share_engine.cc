#include "conclave/mpc/secret_share_engine.h"

#include <cstring>

#include "conclave/common/cpu.h"
#include "conclave/common/thread_pool.h"

namespace conclave {
namespace {

// cpu::Cmp mirrors CompareOp enumerator-for-enumerator so the engine can cast.
static_assert(static_cast<int>(cpu::Cmp::kEq) == static_cast<int>(CompareOp::kEq) &&
              static_cast<int>(cpu::Cmp::kNe) == static_cast<int>(CompareOp::kNe) &&
              static_cast<int>(cpu::Cmp::kLt) == static_cast<int>(CompareOp::kLt) &&
              static_cast<int>(cpu::Cmp::kLe) == static_cast<int>(CompareOp::kLe) &&
              static_cast<int>(cpu::Cmp::kGt) == static_cast<int>(CompareOp::kGt) &&
              static_cast<int>(cpu::Cmp::kGe) == static_cast<int>(CompareOp::kGe));

// Both operands of a binary batched op must agree in size.
void CheckSameSize(const SharedColumn& a, const SharedColumn& b) {
  CONCLAVE_CHECK_EQ(a.size(), b.size());
}

// Morsel loop over [0, n) with the MPC grain.
template <typename Body>
void ForRows(size_t n, const Body& body) {
  ParallelFor(0, static_cast<int64_t>(n), body, kMpcGrainRows);
}

}  // namespace

SharedColumn SecretShareEngine::Add(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  SharedColumn out(a.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    const Ring* const ap = a.shares[p].data();
    const Ring* const bp = b.shares[p].data();
    Ring* const op = out.shares[p].data();
    ForRows(a.size(), [&](int64_t lo, int64_t hi) {
      cpu::AddU64(ap + lo, bp + lo, static_cast<size_t>(hi - lo), op + lo);
    });
  }
  return out;
}

SharedColumn SecretShareEngine::Sub(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  SharedColumn out(a.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    const Ring* const ap = a.shares[p].data();
    const Ring* const bp = b.shares[p].data();
    Ring* const op = out.shares[p].data();
    ForRows(a.size(), [&](int64_t lo, int64_t hi) {
      cpu::SubU64(ap + lo, bp + lo, static_cast<size_t>(hi - lo), op + lo);
    });
  }
  return out;
}

SharedColumn SecretShareEngine::AddConst(const SharedColumn& a, int64_t constant) {
  SharedColumn out = a;
  const Ring k = ToRing(constant);
  Ring* const o0 = out.shares[0].data();
  ForRows(out.size(), [&](int64_t lo, int64_t hi) {
    cpu::AddConstU64(o0 + lo, k, static_cast<size_t>(hi - lo), o0 + lo);
  });
  return out;
}

SharedColumn SecretShareEngine::MulConst(const SharedColumn& a, int64_t constant) {
  SharedColumn out(a.size());
  const Ring k = ToRing(constant);
  for (int p = 0; p < kNumShareParties; ++p) {
    const Ring* const ap = a.shares[p].data();
    Ring* const op = out.shares[p].data();
    ForRows(a.size(), [&](int64_t lo, int64_t hi) {
      cpu::MulConstU64(ap + lo, k, static_cast<size_t>(hi - lo), op + lo);
    });
  }
  return out;
}

SharedColumn SecretShareEngine::Public(std::span<const int64_t> values) {
  SharedColumn out(values.size());
  const int64_t* const v = values.data();
  Ring* const o0 = out.shares[0].data();
  ForRows(values.size(), [&](int64_t lo, int64_t hi) {
    std::memcpy(o0 + lo, v + lo, static_cast<size_t>(hi - lo) * sizeof(Ring));
  });
  return out;
}

SharedColumn SecretShareEngine::PublicConst(size_t n, int64_t value) {
  SharedColumn out(n);
  out.shares[0].assign(n, ToRing(value));
  return out;
}

SharedColumn SecretShareEngine::Mul(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  if (n == 0) {
    return SharedColumn(0);
  }
  const CostModel& model = network_->model();

  // Operands must not alias the dealer's scratch batch: DealBatch below refills it.
  CONCLAVE_CHECK(!dealer_.OwnsBatchColumn(a) && !dealer_.OwnsBatchColumn(b));
  const TripleBatch& triples = dealer_.DealBatch(n);

  // Beaver: open d = a - ta and e = b - tb, then
  //   z = tc + d*tb + e*ta + d*e  (the d*e term folded into party 0's share).
  SharedColumn out(n);
  auto d_buf = arena_.Acquire(n);
  auto e_buf = arena_.Acquire(n);
  Ring* const d = d_buf.u64();
  Ring* const e = e_buf.u64();
  ForRows(n, [&](int64_t lo, int64_t hi) {
    // Party-major passes so every inner loop streams over dense arrays.
    const size_t len = static_cast<size_t>(hi - lo);
    std::memset(d + lo, 0, len * sizeof(Ring));
    std::memset(e + lo, 0, len * sizeof(Ring));
    for (int p = 0; p < kNumShareParties; ++p) {
      cpu::AccumDiffU64(a.shares[p].data() + lo, triples.a.shares[p].data() + lo,
                        len, d + lo);
      cpu::AccumDiffU64(b.shares[p].data() + lo, triples.b.shares[p].data() + lo,
                        len, e + lo);
    }
    for (int p = 0; p < kNumShareParties; ++p) {
      cpu::BeaverCombineU64(triples.c.shares[p].data() + lo, d + lo,
                            triples.b.shares[p].data() + lo, e + lo,
                            triples.a.shares[p].data() + lo, len,
                            out.shares[p].data() + lo);
    }
    cpu::AccumMulU64(d + lo, e + lo, len, out.shares[0].data() + lo);
  });

  const SsCharge charge = model.SsChargeFor(SsPrimitive::kMult);
  network_->CpuSeconds(static_cast<double>(n) * charge.seconds);
  network_->CountAggregateBytes(n * charge.bytes);
  network_->Rounds(charge.rounds);
  network_->mutable_counters().mpc_multiplications += n;
  return out;
}

std::vector<int64_t> SecretShareEngine::Open(const SharedColumn& a) {
  const SsCharge charge = network_->model().SsChargeFor(SsPrimitive::kOpen);
  network_->CountAggregateBytes(a.size() * charge.bytes);
  network_->Rounds(charge.rounds);
  return ReconstructValues(a);
}

SharedColumn SecretShareEngine::Rerandomize(const SharedColumn& a) {
  const size_t n = a.size();
  SharedColumn out(n);
  const AesCounterRng rng = NewStream();
  const Ring* const a0 = a.shares[0].data();
  const Ring* const a1 = a.shares[1].data();
  const Ring* const a2 = a.shares[2].data();
  Ring* const o0 = out.shares[0].data();
  Ring* const o1 = out.shares[1].data();
  Ring* const o2 = out.shares[2].data();
  ForRows(n, [&](int64_t lo, int64_t hi) {
    // o0/o1 hold the fresh masks r0/r1 until the zero-sharing combine: o2 is
    // computed from them first, then they absorb the input shares.
    const size_t len = static_cast<size_t>(hi - lo);
    rng.FillBlocksSplit(static_cast<uint64_t>(lo), len, o0 + lo, o1 + lo);
    cpu::SubSubU64(a2 + lo, o0 + lo, o1 + lo, len, o2 + lo);
    cpu::AddU64(o0 + lo, a0 + lo, len, o0 + lo);
    cpu::AddU64(o1 + lo, a1 + lo, len, o1 + lo);
  });
  return out;
}

SharedColumn SecretShareEngine::GatherRerandomizeWith(const SharedColumn& column,
                                                      std::span<const int64_t> rows,
                                                      const AesCounterRng& rng) {
  const size_t n = rows.size();
  SharedColumn out(n);
  const Ring* const a0 = column.shares[0].data();
  const Ring* const a1 = column.shares[1].data();
  const Ring* const a2 = column.shares[2].data();
  Ring* const o0 = out.shares[0].data();
  Ring* const o1 = out.shares[1].data();
  Ring* const o2 = out.shares[2].data();
  ForRows(n, [&](int64_t lo, int64_t hi) {
#if !defined(NDEBUG)
    for (int64_t i = lo; i < hi; ++i) {
      CONCLAVE_DCHECK(rows[static_cast<size_t>(i)] >= 0 &&
                      rows[static_cast<size_t>(i)] <
                          static_cast<int64_t>(column.size()));
    }
#endif
    const size_t len = static_cast<size_t>(hi - lo);
    rng.FillBlocksSplit(static_cast<uint64_t>(lo), len, o0 + lo, o1 + lo);
    cpu::GatherRerandCombine(a0, a1, a2, rows.data() + lo, len, o0 + lo,
                             o1 + lo, o2 + lo);
  });
  return out;
}

SharedColumn SecretShareEngine::Compare(CompareOp op, const SharedColumn& a,
                                        const SharedColumn& b) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  const CostModel& model = network_->model();
  const bool is_equality = (op == CompareOp::kEq || op == CompareOp::kNe);

  auto lhs_buf = arena_.Acquire(n);
  auto rhs_buf = arena_.Acquire(n);
  ReconstructInto(a, lhs_buf.i64());
  ReconstructInto(b, rhs_buf.i64());
  const int64_t* const lhs = lhs_buf.i64();
  const int64_t* const rhs = rhs_buf.i64();

  // Fresh sharing of the comparison bits, fused with their computation: one
  // vector compare into 0/1 bytes, one batched mask fill, one combine.
  SharedColumn out(n);
  const AesCounterRng rng = NewStream();
  auto bits_buf = arena_.Acquire((n + 7) / 8);
  uint8_t* const bits = reinterpret_cast<uint8_t*>(bits_buf.u64());
  Ring* const o0 = out.shares[0].data();
  Ring* const o1 = out.shares[1].data();
  Ring* const o2 = out.shares[2].data();
  ForRows(n, [&](int64_t lo, int64_t hi) {
    const size_t len = static_cast<size_t>(hi - lo);
    cpu::CompareMask(static_cast<cpu::Cmp>(op), lhs + lo, rhs + lo, 0, len,
                     cpu::MaskMode::kSet, bits + lo);
    rng.FillBlocksSplit(static_cast<uint64_t>(lo), len, o0 + lo, o1 + lo);
    cpu::MaskSubSub(bits + lo, o0 + lo, o1 + lo, len, o2 + lo);
  });

  const SsCharge charge = model.SsChargeFor(
      is_equality ? SsPrimitive::kEquality : SsPrimitive::kCompare);
  network_->CpuSeconds(static_cast<double>(n) * charge.seconds);
  network_->CountAggregateBytes(n * charge.bytes);
  network_->Rounds(charge.rounds);
  network_->mutable_counters().mpc_comparisons += n;
  return out;
}

SharedColumn SecretShareEngine::CompareConst(CompareOp op, const SharedColumn& a,
                                             int64_t constant) {
  return Compare(op, a, PublicConst(a.size(), constant));
}

SharedColumn SecretShareEngine::Div(const SharedColumn& a, const SharedColumn& b,
                                    int64_t scale) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  const CostModel& model = network_->model();

  auto num_buf = arena_.Acquire(n);
  auto den_buf = arena_.Acquire(n);
  ReconstructInto(a, num_buf.i64());
  ReconstructInto(b, den_buf.i64());
  const int64_t* const num = num_buf.i64();
  const int64_t* const den = den_buf.i64();

  SharedColumn out(n);
  const AesCounterRng rng = NewStream();
  auto q_buf = arena_.Acquire(n);
  int64_t* const q = q_buf.i64();
  Ring* const o0 = out.shares[0].data();
  Ring* const o1 = out.shares[1].data();
  Ring* const o2 = out.shares[2].data();
  ForRows(n, [&](int64_t lo, int64_t hi) {
    const size_t len = static_cast<size_t>(hi - lo);
    // The engine's division rule lives in one place (cpu::ArithColumn kDiv) so
    // the MPC lane and the cleartext Arithmetic kernel can never drift.
    cpu::ArithColumn(cpu::Arith::kDiv, num + lo, den + lo, 0, scale, len,
                     q + lo);
    rng.FillBlocksSplit(static_cast<uint64_t>(lo), len, o0 + lo, o1 + lo);
    cpu::SubSubU64(reinterpret_cast<const uint64_t*>(q) + lo, o0 + lo, o1 + lo,
                   len, o2 + lo);
  });

  const SsCharge charge = model.SsChargeFor(SsPrimitive::kDivision);
  network_->CpuSeconds(static_cast<double>(n) * charge.seconds);
  network_->CountAggregateBytes(n * charge.bytes);
  network_->Rounds(charge.rounds);
  return out;
}

SharedColumn SecretShareEngine::Mux(const SharedColumn& condition,
                                    const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(condition, a);
  CheckSameSize(a, b);
  // b + cond * (a - b): one Beaver multiplication per element.
  return Add(b, Mul(condition, Sub(a, b)));
}

}  // namespace conclave
