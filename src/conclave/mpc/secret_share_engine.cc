#include "conclave/mpc/secret_share_engine.h"

namespace conclave {
namespace {

// Both operands of a binary batched op must agree in size.
void CheckSameSize(const SharedColumn& a, const SharedColumn& b) {
  CONCLAVE_CHECK_EQ(a.size(), b.size());
}

}  // namespace

SharedColumn SecretShareEngine::Add(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  SharedColumn out(a.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    for (size_t i = 0; i < a.size(); ++i) {
      out.shares[p][i] = a.shares[p][i] + b.shares[p][i];
    }
  }
  return out;
}

SharedColumn SecretShareEngine::Sub(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  SharedColumn out(a.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    for (size_t i = 0; i < a.size(); ++i) {
      out.shares[p][i] = a.shares[p][i] - b.shares[p][i];
    }
  }
  return out;
}

SharedColumn SecretShareEngine::AddConst(const SharedColumn& a, int64_t constant) {
  SharedColumn out = a;
  const Ring k = ToRing(constant);
  for (size_t i = 0; i < out.size(); ++i) {
    out.shares[0][i] += k;
  }
  return out;
}

SharedColumn SecretShareEngine::MulConst(const SharedColumn& a, int64_t constant) {
  SharedColumn out(a.size());
  const Ring k = ToRing(constant);
  for (int p = 0; p < kNumShareParties; ++p) {
    for (size_t i = 0; i < a.size(); ++i) {
      out.shares[p][i] = a.shares[p][i] * k;
    }
  }
  return out;
}

SharedColumn SecretShareEngine::Public(const std::vector<int64_t>& values) {
  SharedColumn out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.shares[0][i] = ToRing(values[i]);
  }
  return out;
}

SharedColumn SecretShareEngine::Mul(const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  if (n == 0) {
    return SharedColumn(0);
  }
  const CostModel& model = network_->model();

  TripleBatch triples = dealer_.Deal(n);

  // Beaver: open d = a - ta and e = b - tb, then
  //   z = tc + d*tb + e*ta + d*e  (the d*e term folded into party 0's share).
  SharedColumn out(n);
  for (size_t i = 0; i < n; ++i) {
    Ring d = 0;
    Ring e = 0;
    for (int p = 0; p < kNumShareParties; ++p) {
      d += a.shares[p][i] - triples.a.shares[p][i];
      e += b.shares[p][i] - triples.b.shares[p][i];
    }
    for (int p = 0; p < kNumShareParties; ++p) {
      out.shares[p][i] =
          triples.c.shares[p][i] + d * triples.b.shares[p][i] + e * triples.a.shares[p][i];
    }
    out.shares[0][i] += d * e;
  }

  network_->CpuSeconds(static_cast<double>(n) * model.ss_mult_seconds);
  network_->CountAggregateBytes(n * model.ss_bytes_per_mult);
  network_->Rounds(1);
  network_->mutable_counters().mpc_multiplications += n;
  return out;
}

std::vector<int64_t> SecretShareEngine::Open(const SharedColumn& a) {
  // Every party broadcasts its share to the two others: 6 directed messages of 8 B
  // per element.
  network_->CountAggregateBytes(a.size() * 8 * 6);
  network_->Rounds(1);
  return ReconstructValues(a);
}

SharedColumn SecretShareEngine::Rerandomize(const SharedColumn& a) {
  SharedColumn out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const Ring r0 = rng_.Next();
    const Ring r1 = rng_.Next();
    out.shares[0][i] = a.shares[0][i] + r0;
    out.shares[1][i] = a.shares[1][i] + r1;
    out.shares[2][i] = a.shares[2][i] - r0 - r1;
  }
  return out;
}

SharedColumn SecretShareEngine::Compare(CompareOp op, const SharedColumn& a,
                                        const SharedColumn& b) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  const CostModel& model = network_->model();
  const bool is_equality = (op == CompareOp::kEq || op == CompareOp::kNe);

  const std::vector<int64_t> lhs = IdealReconstruct(a);
  const std::vector<int64_t> rhs = IdealReconstruct(b);
  std::vector<int64_t> bits(n);
  for (size_t i = 0; i < n; ++i) {
    bits[i] = EvalCompare(op, lhs[i], rhs[i]) ? 1 : 0;
  }

  if (is_equality) {
    network_->CpuSeconds(static_cast<double>(n) * model.ss_equality_seconds);
    network_->CountAggregateBytes(n * model.ss_bytes_per_equality);
    network_->Rounds(4);  // Multiplicative fan-in tree depth over 64 bits.
  } else {
    network_->CpuSeconds(static_cast<double>(n) * model.ss_compare_seconds);
    network_->CountAggregateBytes(n * model.ss_bytes_per_compare);
    network_->Rounds(8);  // Bit-decomposition + prefix circuit depth.
  }
  network_->mutable_counters().mpc_comparisons += n;
  return Share(bits);
}

SharedColumn SecretShareEngine::CompareConst(CompareOp op, const SharedColumn& a,
                                             int64_t constant) {
  return Compare(op, a, Public(std::vector<int64_t>(a.size(), constant)));
}

SharedColumn SecretShareEngine::Div(const SharedColumn& a, const SharedColumn& b,
                                    int64_t scale) {
  CheckSameSize(a, b);
  const size_t n = a.size();
  const CostModel& model = network_->model();

  const std::vector<int64_t> num = IdealReconstruct(a);
  const std::vector<int64_t> den = IdealReconstruct(b);
  std::vector<int64_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = den[i] == 0 ? 0 : (num[i] * scale) / den[i];
  }

  network_->CpuSeconds(static_cast<double>(n) * model.ss_division_seconds);
  network_->CountAggregateBytes(n * model.ss_bytes_per_compare);
  network_->Rounds(10);
  return Share(out);
}

SharedColumn SecretShareEngine::Mux(const SharedColumn& condition,
                                    const SharedColumn& a, const SharedColumn& b) {
  CheckSameSize(condition, a);
  CheckSameSize(a, b);
  // b + cond * (a - b): one Beaver multiplication per element.
  return Add(b, Mul(condition, Sub(a, b)));
}

}  // namespace conclave
