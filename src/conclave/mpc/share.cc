#include "conclave/mpc/share.h"

#include <algorithm>

#include "conclave/common/cpu.h"
#include "conclave/common/thread_pool.h"

namespace conclave {

SharedColumn ShareValues(std::span<const int64_t> values, Rng& rng) {
  SharedColumn column(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const Ring r0 = rng.Next();
    const Ring r1 = rng.Next();
    column.shares[0][i] = r0;
    column.shares[1][i] = r1;
    column.shares[2][i] = ToRing(values[i]) - r0 - r1;
  }
  return column;
}

SharedColumn ShareValues(std::span<const int64_t> values, const AesCounterRng& rng) {
  SharedColumn column(values.size());
  Ring* const s0 = column.shares[0].data();
  Ring* const s1 = column.shares[1].data();
  Ring* const s2 = column.shares[2].data();
  const int64_t* const v = values.data();
  ParallelFor(
      0, static_cast<int64_t>(values.size()),
      [&](int64_t lo, int64_t hi) {
        // Element i's mask words are the two halves of AES counter block i, so
        // a morsel is one contiguous batched fill straight into s0/s1 followed
        // by one vector combine — no per-element finalizer calls.
        const size_t n = static_cast<size_t>(hi - lo);
        rng.FillBlocksSplit(static_cast<uint64_t>(lo), n, s0 + lo, s1 + lo);
        cpu::SubSubU64(reinterpret_cast<const uint64_t*>(v) + lo, s0 + lo,
                       s1 + lo, n, s2 + lo);
      },
      kMpcGrainRows);
  return column;
}

void ReconstructInto(const SharedColumn& column, int64_t* out) {
  const Ring* const s0 = column.shares[0].data();
  const Ring* const s1 = column.shares[1].data();
  const Ring* const s2 = column.shares[2].data();
  ParallelFor(
      0, static_cast<int64_t>(column.size()),
      [&](int64_t lo, int64_t hi) {
        cpu::Add3U64(s0 + lo, s1 + lo, s2 + lo, static_cast<size_t>(hi - lo),
                     reinterpret_cast<uint64_t*>(out) + lo);
      },
      kMpcGrainRows);
}

std::vector<int64_t> ReconstructValues(const SharedColumn& column) {
  std::vector<int64_t> values(column.size());
  ReconstructInto(column, values.data());
  return values;
}

Ring RingSum(std::span<const Ring> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  if (n == 0) {
    return 0;
  }
  const int64_t num_chunks = (n + kMpcGrainRows - 1) / kMpcGrainRows;
  std::vector<Ring> partials(static_cast<size_t>(num_chunks), 0);
  ParallelFor(
      0, n,
      [&](int64_t lo, int64_t hi) {
        partials[static_cast<size_t>(lo / kMpcGrainRows)] =
            cpu::SumU64(values.data() + lo, static_cast<size_t>(hi - lo));
      },
      kMpcGrainRows);
  Ring total = 0;
  for (Ring partial : partials) {
    total += partial;
  }
  return total;
}

SharedRelation::SharedRelation(Schema schema, std::vector<SharedColumn> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  CONCLAVE_CHECK_EQ(static_cast<size_t>(schema_.NumColumns()), columns_.size());
  for (const auto& column : columns_) {
    CONCLAVE_CHECK_EQ(column.size(), columns_[0].size());
  }
}

const SharedColumn& SharedRelation::Column(int index) const {
  CONCLAVE_CHECK_GE(index, 0);
  CONCLAVE_CHECK_LT(index, NumColumns());
  return columns_[static_cast<size_t>(index)];
}

SharedColumn& SharedRelation::MutableColumn(int index) {
  CONCLAVE_CHECK_GE(index, 0);
  CONCLAVE_CHECK_LT(index, NumColumns());
  return columns_[static_cast<size_t>(index)];
}

void SharedRelation::AppendColumn(ColumnDef def, SharedColumn column) {
  if (!columns_.empty()) {
    CONCLAVE_CHECK_EQ(column.size(), columns_[0].size());
  }
  std::vector<ColumnDef> defs = schema_.columns();
  defs.push_back(std::move(def));
  schema_ = Schema(std::move(defs));
  columns_.push_back(std::move(column));
}

void SharedRelation::AppendPublicColumn(ColumnDef def,
                                        const std::vector<int64_t>& values) {
  SharedColumn column(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    column.shares[0][i] = ToRing(values[i]);
  }
  AppendColumn(std::move(def), std::move(column));
}

void SharedRelation::DropColumn(int index) {
  CONCLAVE_CHECK_GE(index, 0);
  CONCLAVE_CHECK_LT(index, NumColumns());
  std::vector<ColumnDef> defs = schema_.columns();
  defs.erase(defs.begin() + index);
  schema_ = Schema(std::move(defs));
  columns_.erase(columns_.begin() + index);
}

SharedRelation ShareRelation(const Relation& relation, Rng& rng) {
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(relation.NumColumns()));
  for (int c = 0; c < relation.NumColumns(); ++c) {
    columns.push_back(ShareValues(relation.ColumnSpan(c), rng));
  }
  return SharedRelation(relation.schema(), std::move(columns));
}

SharedColumn GatherColumn(const SharedColumn& column, std::span<const int64_t> rows) {
  SharedColumn out(rows.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    const Ring* const src = column.shares[p].data();
    Ring* const dst = out.shares[p].data();
    ParallelFor(
        0, static_cast<int64_t>(rows.size()),
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            CONCLAVE_DCHECK(rows[static_cast<size_t>(i)] >= 0 &&
                            rows[static_cast<size_t>(i)] <
                                static_cast<int64_t>(column.size()));
            dst[i] = src[static_cast<size_t>(rows[static_cast<size_t>(i)])];
          }
        },
        kMpcGrainRows);
  }
  return out;
}

void ScatterColumn(SharedColumn& column, std::span<const int64_t> rows,
                   const SharedColumn& values) {
  CONCLAVE_CHECK_EQ(rows.size(), values.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    const Ring* const src = values.shares[p].data();
    Ring* const dst = column.shares[p].data();
    ParallelFor(
        0, static_cast<int64_t>(rows.size()),
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            CONCLAVE_DCHECK(rows[static_cast<size_t>(i)] >= 0 &&
                            rows[static_cast<size_t>(i)] <
                                static_cast<int64_t>(column.size()));
            dst[static_cast<size_t>(rows[static_cast<size_t>(i)])] = src[i];
          }
        },
        kMpcGrainRows);
  }
}

SharedColumn SliceColumn(const SharedColumn& column, size_t start, size_t length) {
  CONCLAVE_CHECK_LE(start + length, column.size());
  SharedColumn out(length);
  for (int p = 0; p < kNumShareParties; ++p) {
    std::copy(column.shares[p].begin() + static_cast<int64_t>(start),
              column.shares[p].begin() + static_cast<int64_t>(start + length),
              out.shares[p].begin());
  }
  return out;
}

Relation ReconstructRelation(const SharedRelation& shared) {
  Relation relation{shared.schema()};
  relation.Resize(shared.NumRows());
  // Shares and relation cells are both column-major now: reconstruction is one
  // contiguous morsel-parallel pass per column, straight into the column buffer.
  for (int c = 0; c < shared.NumColumns(); ++c) {
    ReconstructInto(shared.Column(c), relation.ColumnData(c));
  }
  return relation;
}

}  // namespace conclave
