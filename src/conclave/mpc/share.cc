#include "conclave/mpc/share.h"

#include <algorithm>

namespace conclave {

SharedColumn ShareValues(const std::vector<int64_t>& values, Rng& rng) {
  SharedColumn column(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const Ring r0 = rng.Next();
    const Ring r1 = rng.Next();
    column.shares[0][i] = r0;
    column.shares[1][i] = r1;
    column.shares[2][i] = ToRing(values[i]) - r0 - r1;
  }
  return column;
}

std::vector<int64_t> ReconstructValues(const SharedColumn& column) {
  std::vector<int64_t> values(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    values[i] = FromRing(column.ReconstructAt(i));
  }
  return values;
}

SharedRelation::SharedRelation(Schema schema, std::vector<SharedColumn> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  CONCLAVE_CHECK_EQ(static_cast<size_t>(schema_.NumColumns()), columns_.size());
  for (const auto& column : columns_) {
    CONCLAVE_CHECK_EQ(column.size(), columns_[0].size());
  }
}

const SharedColumn& SharedRelation::Column(int index) const {
  CONCLAVE_CHECK_GE(index, 0);
  CONCLAVE_CHECK_LT(index, NumColumns());
  return columns_[static_cast<size_t>(index)];
}

SharedColumn& SharedRelation::MutableColumn(int index) {
  CONCLAVE_CHECK_GE(index, 0);
  CONCLAVE_CHECK_LT(index, NumColumns());
  return columns_[static_cast<size_t>(index)];
}

void SharedRelation::AppendColumn(ColumnDef def, SharedColumn column) {
  if (!columns_.empty()) {
    CONCLAVE_CHECK_EQ(column.size(), columns_[0].size());
  }
  std::vector<ColumnDef> defs = schema_.columns();
  defs.push_back(std::move(def));
  schema_ = Schema(std::move(defs));
  columns_.push_back(std::move(column));
}

void SharedRelation::AppendPublicColumn(ColumnDef def,
                                        const std::vector<int64_t>& values) {
  SharedColumn column(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    column.shares[0][i] = ToRing(values[i]);
  }
  AppendColumn(std::move(def), std::move(column));
}

void SharedRelation::DropColumn(int index) {
  CONCLAVE_CHECK_GE(index, 0);
  CONCLAVE_CHECK_LT(index, NumColumns());
  std::vector<ColumnDef> defs = schema_.columns();
  defs.erase(defs.begin() + index);
  schema_ = Schema(std::move(defs));
  columns_.erase(columns_.begin() + index);
}

SharedRelation ShareRelation(const Relation& relation, Rng& rng) {
  std::vector<SharedColumn> columns;
  columns.reserve(static_cast<size_t>(relation.NumColumns()));
  for (int c = 0; c < relation.NumColumns(); ++c) {
    columns.push_back(ShareValues(relation.ColumnValues(c), rng));
  }
  return SharedRelation(relation.schema(), std::move(columns));
}

SharedColumn GatherColumn(const SharedColumn& column, std::span<const int64_t> rows) {
  SharedColumn out(rows.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    for (size_t i = 0; i < rows.size(); ++i) {
      CONCLAVE_DCHECK(rows[i] >= 0 && rows[i] < static_cast<int64_t>(column.size()));
      out.shares[p][i] = column.shares[p][static_cast<size_t>(rows[i])];
    }
  }
  return out;
}

void ScatterColumn(SharedColumn& column, std::span<const int64_t> rows,
                   const SharedColumn& values) {
  CONCLAVE_CHECK_EQ(rows.size(), values.size());
  for (int p = 0; p < kNumShareParties; ++p) {
    for (size_t i = 0; i < rows.size(); ++i) {
      CONCLAVE_DCHECK(rows[i] >= 0 && rows[i] < static_cast<int64_t>(column.size()));
      column.shares[p][static_cast<size_t>(rows[i])] = values.shares[p][i];
    }
  }
}

SharedColumn SliceColumn(const SharedColumn& column, size_t start, size_t length) {
  CONCLAVE_CHECK_LE(start + length, column.size());
  SharedColumn out(length);
  for (int p = 0; p < kNumShareParties; ++p) {
    std::copy(column.shares[p].begin() + static_cast<int64_t>(start),
              column.shares[p].begin() + static_cast<int64_t>(start + length),
              out.shares[p].begin());
  }
  return out;
}

Relation ReconstructRelation(const SharedRelation& shared) {
  Relation relation{shared.schema()};
  const int64_t rows = shared.NumRows();
  const int cols = shared.NumColumns();
  relation.Reserve(rows);
  std::vector<std::vector<int64_t>> column_values;
  column_values.reserve(static_cast<size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    column_values.push_back(ReconstructValues(shared.Column(c)));
  }
  auto& cells = relation.mutable_cells();
  for (int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      cells.push_back(column_values[static_cast<size_t>(c)][static_cast<size_t>(r)]);
    }
  }
  return relation;
}

}  // namespace conclave
