// Conclave's public, LINQ-style query frontend (§4.2, Listings 1–2).
//
// Analysts write one relational query as if all parties' data sat in a single trusted
// database; the only distribution-aware annotations are each input's owning party
// (`at`), optional per-column trust sets (§4.3), and each output's recipients (`to`).
//
//   conclave::api::Query query;
//   auto regulator = query.AddParty("mpc.ftc.gov");
//   auto bank = query.AddParty("mpc.a.com");
//   auto demo = query.NewTable("demographics",
//                              {{"ssn"}, {"zip"}}, regulator);
//   auto scores = query.NewTable("scores",
//                                {{"ssn", {regulator}}, {"score"}}, bank);
//   auto joined = demo.Join(scores, {"ssn"}, {"ssn"});
//   joined.Aggregate("total", AggKind::kSum, {"zip"}, "score")
//         .WriteToCsv("totals", {regulator});
//   auto result = query.Run(inputs);
//
// Table-builder methods CHECK-fail with an actionable message on malformed queries
// (unknown column, schema mismatch) — query construction bugs are developer errors.
// Compilation and execution return Status for runtime conditions (simulated OOM,
// missing inputs).
#ifndef CONCLAVE_API_CONCLAVE_H_
#define CONCLAVE_API_CONCLAVE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "conclave/backends/dispatcher.h"
#include "conclave/compiler/compiler.h"
#include "conclave/ir/dag.h"

namespace conclave {
namespace api {

struct Party {
  PartyId id = kNoParty;
  std::string host;
};

// Column declaration sugar: name plus the parties trusted to see it in the clear.
struct ColumnSpec {
  std::string name;
  std::vector<Party> trust;

  ColumnSpec(const char* column_name) : name(column_name) {}
  ColumnSpec(std::string column_name) : name(std::move(column_name)) {}
  ColumnSpec(std::string column_name, std::vector<Party> trusted)
      : name(std::move(column_name)), trust(std::move(trusted)) {}
};

class Query;

class Table {
 public:
  Table() = default;

  Table Project(std::vector<std::string> columns) const;
  Table Filter(const std::string& column, CompareOp op, int64_t literal) const;
  Table FilterByColumn(const std::string& column, CompareOp op,
                       const std::string& other_column) const;
  Table Join(const Table& right, std::vector<std::string> left_keys,
             std::vector<std::string> right_keys) const;
  // aggregate("total", kSum, group={"zip"}, over="score").
  Table Aggregate(const std::string& output_name, AggKind kind,
                  std::vector<std::string> group_columns,
                  const std::string& over_column = "") const;
  Table Count(const std::string& output_name,
              std::vector<std::string> group_columns) const;
  Table Multiply(const std::string& output_name, const std::string& lhs,
                 const std::string& rhs_column) const;
  Table Subtract(const std::string& output_name, const std::string& lhs,
                 const std::string& rhs_column) const;
  Table MultiplyConst(const std::string& output_name, const std::string& lhs,
                      int64_t literal) const;
  // divide("avg", "total", by="count"): fixed-point numerator scale optional.
  Table Divide(const std::string& output_name, const std::string& lhs,
               const std::string& by_column, int64_t scale = 1) const;
  Table AddConst(const std::string& output_name, const std::string& lhs,
                 int64_t literal) const;
  // Window function: output_name = fn(value) OVER (PARTITION BY partition ORDER BY
  // order). `value_column` is ignored for kRowNumber. Enables SQL-window queries like
  // SMCQL's recurrent c.diff (lag over diagnosis timestamps).
  Table Window(const std::string& output_name, WindowFn fn,
               std::vector<std::string> partition_columns,
               const std::string& order_column,
               const std::string& value_column = "") const;
  Table SortBy(std::vector<std::string> columns, bool ascending = true) const;
  Table Distinct(std::vector<std::string> columns) const;
  Table Limit(int64_t count) const;
  // Terminal: reveals the result to `recipients` under `name`.
  void WriteToCsv(const std::string& name, const std::vector<Party>& recipients) const;
  // Terminal with differential privacy: recipients receive the columns listed in
  // `column_sensitivity` perturbed by discrete-Laplace noise calibrated to
  // (epsilon, sensitivity); other columns stay exact. Use sensitivity 1 for counts
  // and a per-individual contribution bound for sums.
  void WriteToCsvNoisy(const std::string& name, const std::vector<Party>& recipients,
                       double epsilon,
                       std::map<std::string, double> column_sensitivity) const;

  ir::OpNode* node() const { return node_; }

 private:
  friend class Query;
  Table(Query* query, ir::OpNode* node) : query_(query), node_(node) {}

  Query* query_ = nullptr;
  ir::OpNode* node_ = nullptr;
};

class Query {
 public:
  Query() = default;

  Party AddParty(std::string host);

  // Declares an input relation stored at `owner` (Listing 1, lines 4–11).
  Table NewTable(const std::string& name, const std::vector<ColumnSpec>& columns,
                 const Party& owner, int64_t num_rows_hint = 0);
  // Declares an input relation backed by a CSV file at `owner` instead of an
  // entry in Run's `inputs` map. When the table's sole consumer is a fused
  // local chain, ingest streams: the executor indexes the file and the chain
  // parses row ranges batch-at-a-time, never materializing the source relation
  // (DESIGN.md §12). Otherwise the file parses eagerly at dispatch.
  Table NewCsvTable(const std::string& name,
                    const std::vector<ColumnSpec>& columns, const Party& owner,
                    const std::string& csv_path, int64_t num_rows_hint = 0);
  // Marks a column public (trust set = all parties) in a ColumnSpec list.
  ColumnSpec PublicColumn(const std::string& name) const;

  // Duplicate-preserving union (Listing 2, line 12).
  Table Concat(const std::vector<Table>& tables);

  // Compiles the query (rewrites the DAG in place). Callable once per Query.
  StatusOr<compiler::Compilation> Compile(const compiler::CompilerOptions& options);

  // Explain API: compiles the query (single-use, like Compile) and returns the
  // plan-cost report — per MPC-resident node, the estimated cardinalities and the
  // price under each MPC backend, computed with the same formulas the engines charge
  // at run time. `report.cheapest` is the backend the chooser would pick.
  StatusOr<compiler::PlanCostReport> ExplainPlan(
      compiler::CompilerOptions options = {});

  // Compile + dispatch in one step. `inputs` maps table names to relations.
  // `pool_parallelism` is the executor's thread budget (0 = hardware default,
  // 1 = serial). `shard_count` is the cleartext data plane's horizontal shard
  // count (0 = the CONCLAVE_SHARDS env override, else 1 — today's unsharded
  // execution; backends::Dispatcher::kAutoShardCount = planner-priced decision).
  // `batch_rows` is the push-based pipeline executor's batch size (0 = the
  // CONCLAVE_BATCH_ROWS env override, else kDefaultBatchRows; negative =
  // materialize every operator, disabling fusion). `fault_plan` schedules
  // deterministic fault injection (net/fault.h, DESIGN.md §11; nullopt = the
  // CONCLAVE_FAULT_PLAN env override, disabled when unset). `mem_budget_rows`
  // caps each blocking cleartext operator instance's resident working set
  // (0 = the CONCLAVE_MEM_BUDGET env override, unbounded when unset; negative
  // forces unbounded): over-budget sorts/joins/group-bys/distincts spill
  // through the external kernels in relational/spill.h. `stream_reveal`
  // controls streaming across the reveal boundary (DESIGN.md §14; 0 = the
  // CONCLAVE_STREAM_REVEAL env override, on when unset; > 0 forces streaming,
  // < 0 forces the materializing reveal). Results and virtual time are
  // identical for every {pool, shard, batch, budget, stream_reveal}
  // combination — see DESIGN.md §5, §9, §10, §12, and §14; a recoverable
  // fault plan preserves the results bit for bit and adds exactly its priced
  // recovery time to the clock, and a budget adds exactly its priced spill
  // I/O time.
  StatusOr<backends::ExecutionResult> Run(
      const std::map<std::string, Relation>& inputs,
      const compiler::CompilerOptions& options = {}, CostModel cost_model = {},
      uint64_t seed = 42, int pool_parallelism = 0, int shard_count = 0,
      int64_t batch_rows = 0,
      std::optional<FaultPlan> fault_plan = std::nullopt,
      int64_t mem_budget_rows = 0, int stream_reveal = 0);

  ir::Dag& dag() { return dag_; }
  int num_parties() const { return static_cast<int>(parties_.size()); }

 private:
  friend class Table;
  ir::Dag dag_;
  std::vector<Party> parties_;
};

}  // namespace api
}  // namespace conclave

#endif  // CONCLAVE_API_CONCLAVE_H_
