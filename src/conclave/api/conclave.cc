#include "conclave/api/conclave.h"

namespace conclave {
namespace api {
namespace {

// Table builders treat malformed queries as developer errors: fail fast and loud.
template <typename T>
T Unwrap(StatusOr<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "conclave query error in %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace

Party Query::AddParty(std::string host) {
  Party party;
  party.id = static_cast<PartyId>(parties_.size());
  party.host = std::move(host);
  parties_.push_back(party);
  return party;
}

Table Query::NewTable(const std::string& name, const std::vector<ColumnSpec>& columns,
                      const Party& owner, int64_t num_rows_hint) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const auto& spec : columns) {
    PartySet trust;
    for (const auto& party : spec.trust) {
      trust.Insert(party.id);
    }
    defs.emplace_back(spec.name, trust);
  }
  ir::OpNode* node = Unwrap(
      dag_.AddCreate(name, Schema(std::move(defs)), owner.id, num_rows_hint),
      "NewTable");
  return Table(this, node);
}

Table Query::NewCsvTable(const std::string& name,
                         const std::vector<ColumnSpec>& columns,
                         const Party& owner, const std::string& csv_path,
                         int64_t num_rows_hint) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const auto& spec : columns) {
    PartySet trust;
    for (const auto& party : spec.trust) {
      trust.Insert(party.id);
    }
    defs.emplace_back(spec.name, trust);
  }
  ir::OpNode* node =
      Unwrap(dag_.AddCreate(name, Schema(std::move(defs)), owner.id,
                            num_rows_hint, csv_path),
             "NewCsvTable");
  return Table(this, node);
}

ColumnSpec Query::PublicColumn(const std::string& name) const {
  ColumnSpec spec(name);
  spec.trust = parties_;
  return spec;
}

Table Query::Concat(const std::vector<Table>& tables) {
  CONCLAVE_CHECK(!tables.empty());
  std::vector<ir::OpNode*> nodes;
  nodes.reserve(tables.size());
  for (const Table& table : tables) {
    CONCLAVE_CHECK(table.query_ == this);
    nodes.push_back(table.node_);
  }
  return Table(this, Unwrap(dag_.AddConcat(std::move(nodes)), "Concat"));
}

Table Table::Project(std::vector<std::string> columns) const {
  return Table(query_,
               Unwrap(query_->dag_.AddProject(node_, std::move(columns)), "Project"));
}

Table Table::Filter(const std::string& column, CompareOp op, int64_t literal) const {
  ir::FilterParams params;
  params.column = column;
  params.op = op;
  params.rhs_is_column = false;
  params.literal = literal;
  return Table(query_, Unwrap(query_->dag_.AddFilter(node_, std::move(params)),
                              "Filter"));
}

Table Table::FilterByColumn(const std::string& column, CompareOp op,
                            const std::string& other_column) const {
  ir::FilterParams params;
  params.column = column;
  params.op = op;
  params.rhs_is_column = true;
  params.rhs_column = other_column;
  return Table(query_, Unwrap(query_->dag_.AddFilter(node_, std::move(params)),
                              "FilterByColumn"));
}

Table Table::Join(const Table& right, std::vector<std::string> left_keys,
                  std::vector<std::string> right_keys) const {
  CONCLAVE_CHECK(right.query_ == query_);
  return Table(query_,
               Unwrap(query_->dag_.AddJoin(node_, right.node_, std::move(left_keys),
                                           std::move(right_keys)),
                      "Join"));
}

Table Table::Aggregate(const std::string& output_name, AggKind kind,
                       std::vector<std::string> group_columns,
                       const std::string& over_column) const {
  ir::AggregateParams params;
  params.group_columns = std::move(group_columns);
  params.kind = kind;
  params.agg_column = over_column;
  params.output_name = output_name;
  return Table(query_, Unwrap(query_->dag_.AddAggregate(node_, std::move(params)),
                              "Aggregate"));
}

Table Table::Count(const std::string& output_name,
                   std::vector<std::string> group_columns) const {
  return Aggregate(output_name, AggKind::kCount, std::move(group_columns));
}

Table Table::Multiply(const std::string& output_name, const std::string& lhs,
                      const std::string& rhs_column) const {
  ir::ArithmeticParams params;
  params.kind = ArithKind::kMul;
  params.lhs_column = lhs;
  params.rhs_is_column = true;
  params.rhs_column = rhs_column;
  params.output_name = output_name;
  return Table(query_, Unwrap(query_->dag_.AddArithmetic(node_, std::move(params)),
                              "Multiply"));
}

Table Table::Subtract(const std::string& output_name, const std::string& lhs,
                      const std::string& rhs_column) const {
  ir::ArithmeticParams params;
  params.kind = ArithKind::kSub;
  params.lhs_column = lhs;
  params.rhs_is_column = true;
  params.rhs_column = rhs_column;
  params.output_name = output_name;
  return Table(query_, Unwrap(query_->dag_.AddArithmetic(node_, std::move(params)),
                              "Subtract"));
}

Table Table::MultiplyConst(const std::string& output_name, const std::string& lhs,
                           int64_t literal) const {
  ir::ArithmeticParams params;
  params.kind = ArithKind::kMul;
  params.lhs_column = lhs;
  params.rhs_is_column = false;
  params.literal = literal;
  params.output_name = output_name;
  return Table(query_, Unwrap(query_->dag_.AddArithmetic(node_, std::move(params)),
                              "MultiplyConst"));
}

Table Table::Divide(const std::string& output_name, const std::string& lhs,
                    const std::string& by_column, int64_t scale) const {
  ir::ArithmeticParams params;
  params.kind = ArithKind::kDiv;
  params.lhs_column = lhs;
  params.rhs_is_column = true;
  params.rhs_column = by_column;
  params.output_name = output_name;
  params.scale = scale;
  return Table(query_, Unwrap(query_->dag_.AddArithmetic(node_, std::move(params)),
                              "Divide"));
}

Table Table::AddConst(const std::string& output_name, const std::string& lhs,
                      int64_t literal) const {
  ir::ArithmeticParams params;
  params.kind = ArithKind::kAdd;
  params.lhs_column = lhs;
  params.rhs_is_column = false;
  params.literal = literal;
  params.output_name = output_name;
  return Table(query_, Unwrap(query_->dag_.AddArithmetic(node_, std::move(params)),
                              "AddConst"));
}

Table Table::Window(const std::string& output_name, WindowFn fn,
                    std::vector<std::string> partition_columns,
                    const std::string& order_column,
                    const std::string& value_column) const {
  ir::WindowParams params;
  params.partition_columns = std::move(partition_columns);
  params.order_column = order_column;
  params.fn = fn;
  params.value_column = value_column;
  params.output_name = output_name;
  return Table(query_, Unwrap(query_->dag_.AddWindow(node_, std::move(params)),
                              "Window"));
}

Table Table::SortBy(std::vector<std::string> columns, bool ascending) const {
  return Table(query_, Unwrap(query_->dag_.AddSortBy(node_, std::move(columns),
                                                     ascending),
                              "SortBy"));
}

Table Table::Distinct(std::vector<std::string> columns) const {
  return Table(query_, Unwrap(query_->dag_.AddDistinct(node_, std::move(columns)),
                              "Distinct"));
}

Table Table::Limit(int64_t count) const {
  return Table(query_, Unwrap(query_->dag_.AddLimit(node_, count), "Limit"));
}

void Table::WriteToCsv(const std::string& name,
                       const std::vector<Party>& recipients) const {
  PartySet parties;
  for (const auto& party : recipients) {
    parties.Insert(party.id);
  }
  Unwrap(query_->dag_.AddCollect(node_, name, parties), "WriteToCsv");
}

void Table::WriteToCsvNoisy(const std::string& name,
                            const std::vector<Party>& recipients, double epsilon,
                            std::map<std::string, double> column_sensitivity) const {
  PartySet parties;
  for (const auto& party : recipients) {
    parties.Insert(party.id);
  }
  dp::DpSpec spec;
  spec.enabled = true;
  spec.epsilon = epsilon;
  spec.column_sensitivity = std::move(column_sensitivity);
  Unwrap(query_->dag_.AddCollect(node_, name, parties, std::move(spec)),
         "WriteToCsvNoisy");
}

StatusOr<compiler::Compilation> Query::Compile(
    const compiler::CompilerOptions& options) {
  return compiler::Compile(dag_, options);
}

StatusOr<compiler::PlanCostReport> Query::ExplainPlan(
    compiler::CompilerOptions options) {
  options.explain_plan = true;
  CONCLAVE_ASSIGN_OR_RETURN(compiler::Compilation compilation, Compile(options));
  return std::move(compilation.cost_report);
}

StatusOr<backends::ExecutionResult> Query::Run(
    const std::map<std::string, Relation>& inputs,
    const compiler::CompilerOptions& options, CostModel cost_model, uint64_t seed,
    int pool_parallelism, int shard_count, int64_t batch_rows,
    std::optional<FaultPlan> fault_plan, int64_t mem_budget_rows,
    int stream_reveal) {
  CONCLAVE_ASSIGN_OR_RETURN(compiler::Compilation compilation, Compile(options));
  backends::Dispatcher dispatcher(cost_model, seed, pool_parallelism, shard_count,
                                  batch_rows, std::move(fault_plan),
                                  mem_budget_rows, stream_reveal);
  return dispatcher.Run(dag_, compilation, inputs);
}

}  // namespace api
}  // namespace conclave
