#include "conclave/smcql/smcql.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "conclave/data/generators.h"
#include "conclave/hybrid/public_join.h"
#include "conclave/mpc/garbled/gc_engine.h"
#include "conclave/mpc/protocols.h"
#include "conclave/net/network.h"

namespace conclave {
namespace smcql {
namespace {

std::unordered_set<int64_t> KeySet(const Relation& relation, int key_col) {
  std::unordered_set<int64_t> keys;
  keys.reserve(static_cast<size_t>(relation.NumRows()));
  for (int64_t key : relation.ColumnSpan(key_col)) {
    keys.insert(key);
  }
  return keys;
}

Relation FilterByKeyMembership(const Relation& relation, int key_col,
                               const std::unordered_set<int64_t>& keys,
                               bool keep_members) {
  const auto key_column = relation.ColumnSpan(key_col);
  std::vector<int64_t> selected;
  for (int64_t r = 0; r < relation.NumRows(); ++r) {
    if (keys.contains(key_column[static_cast<size_t>(r)]) == keep_members) {
      selected.push_back(r);
    }
  }
  return ops::GatherRows(relation, selected);
}

// Patients at party p qualifying locally: have both the diagnosis and the medication
// within that party's own data.
std::unordered_set<int64_t> LocalQualifiers(const Relation& diag, const Relation& med,
                                            int64_t diag_code, int64_t med_code) {
  std::unordered_set<int64_t> diagnosed;
  const auto diag_pids = diag.ColumnSpan(0);
  const auto diag_codes = diag.ColumnSpan(1);
  for (int64_t r = 0; r < diag.NumRows(); ++r) {
    if (diag_codes[static_cast<size_t>(r)] == diag_code) {
      diagnosed.insert(diag_pids[static_cast<size_t>(r)]);
    }
  }
  std::unordered_set<int64_t> qualifying;
  const auto med_pids = med.ColumnSpan(0);
  const auto med_codes = med.ColumnSpan(1);
  for (int64_t r = 0; r < med.NumRows(); ++r) {
    if (med_codes[static_cast<size_t>(r)] == med_code &&
        diagnosed.contains(med_pids[static_cast<size_t>(r)])) {
      qualifying.insert(med_pids[static_cast<size_t>(r)]);
    }
  }
  return qualifying;
}

Relation SingleCount(const std::string& column, int64_t value) {
  Relation out{Schema::Of({column})};
  out.AppendRow({value});
  return out;
}

// Index of row numbers by key value, so per-slice extraction is O(slice) not O(n).
std::unordered_map<int64_t, std::vector<int64_t>> RowsByKey(const Relation& relation,
                                                            int key_col) {
  std::unordered_map<int64_t, std::vector<int64_t>> index;
  index.reserve(static_cast<size_t>(relation.NumRows()));
  const auto keys = relation.ColumnSpan(key_col);
  for (int64_t r = 0; r < relation.NumRows(); ++r) {
    index[keys[static_cast<size_t>(r)]].push_back(r);
  }
  return index;
}

Relation GatherRows(const Relation& relation,
                    const std::unordered_map<int64_t, std::vector<int64_t>>& index,
                    int64_t key) {
  const auto it = index.find(key);
  if (it == index.end()) {
    return Relation{relation.schema()};
  }
  return ops::GatherRows(relation, it->second);
}

}  // namespace

SliceResult SliceByKey(const Relation& party0, const Relation& party1, int key_col) {
  const auto keys0 = KeySet(party0, key_col);
  const auto keys1 = KeySet(party1, key_col);
  std::unordered_set<int64_t> shared;
  for (int64_t key : keys0) {
    if (keys1.contains(key)) {
      shared.insert(key);
    }
  }
  SliceResult result;
  result.solo0 = FilterByKeyMembership(party0, key_col, shared, false);
  result.solo1 = FilterByKeyMembership(party1, key_col, shared, false);
  result.shared0 = FilterByKeyMembership(party0, key_col, shared, true);
  result.shared1 = FilterByKeyMembership(party1, key_col, shared, true);
  result.num_shared_keys = static_cast<int64_t>(shared.size());
  return result;
}

StatusOr<RunResult> SmcqlAspirinCount(const Relation& diag0, const Relation& med0,
                                      const Relation& diag1, const Relation& med1,
                                      int64_t diag_code, int64_t med_code,
                                      const RunConfig& config) {
  SimNetwork net(config.cost_model);
  gc::GcEngine engine(&net, /*oblivm_mode=*/true);

  // Patient presence per party spans both tables.
  auto pids0 = KeySet(diag0, 0);
  for (int64_t pid : KeySet(med0, 0)) {
    pids0.insert(pid);
  }
  auto pids1 = KeySet(diag1, 0);
  for (int64_t pid : KeySet(med1, 0)) {
    pids1.insert(pid);
  }
  std::unordered_set<int64_t> shared;
  for (int64_t pid : pids0) {
    if (pids1.contains(pid)) {
      shared.insert(pid);
    }
  }

  // Solo slices: each hospital evaluates its own patients in the clear.
  const auto solo0 = LocalQualifiers(diag0, med0, diag_code, med_code);
  const auto solo1 = LocalQualifiers(diag1, med1, diag_code, med_code);
  int64_t count = 0;
  for (int64_t pid : solo0) {
    if (!shared.contains(pid)) {
      ++count;
    }
  }
  for (int64_t pid : solo1) {
    if (!shared.contains(pid)) {
      ++count;
    }
  }
  net.CpuSeconds(config.cost_model.PythonSeconds(
      static_cast<uint64_t>(diag0.NumRows() + med0.NumRows() + diag1.NumRows() +
                            med1.NumRows())));

  // Shared slices: one small ObliVM MPC per shared patient ID.
  RunResult result;
  result.mpc_slices = static_cast<int64_t>(shared.size());
  const auto diag0_index = RowsByKey(diag0, 0);
  const auto diag1_index = RowsByKey(diag1, 0);
  const auto med0_index = RowsByKey(med0, 0);
  const auto med1_index = RowsByKey(med1, 0);
  for (int64_t pid : shared) {
    Relation d_slice =
        ops::Concat(std::vector<Relation>{GatherRows(diag0, diag0_index, pid),
                                          GatherRows(diag1, diag1_index, pid)});
    Relation m_slice =
        ops::Concat(std::vector<Relation>{GatherRows(med0, med0_index, pid),
                                          GatherRows(med1, med1_index, pid)});
    result.mpc_input_rows += d_slice.NumRows() + m_slice.NumRows();
    net.CpuSeconds(config.per_slice_setup_seconds);
    CONCLAVE_RETURN_IF_ERROR(engine.ChargeInput(d_slice));
    CONCLAVE_RETURN_IF_ERROR(engine.ChargeInput(m_slice));
    const int d_keys[] = {0};
    const int m_keys[] = {0};
    CONCLAVE_ASSIGN_OR_RETURN(Relation joined,
                              engine.Join(d_slice, m_slice, d_keys, m_keys));
    CONCLAVE_ASSIGN_OR_RETURN(
        Relation diag_match,
        engine.Filter(joined, FilterPredicate::ColumnVsLiteral(1, CompareOp::kEq,
                                                               diag_code)));
    CONCLAVE_ASSIGN_OR_RETURN(
        Relation both_match,
        engine.Filter(diag_match, FilterPredicate::ColumnVsLiteral(2, CompareOp::kEq,
                                                                   med_code)));
    if (both_match.NumRows() > 0) {
      ++count;
    }
  }

  result.output = SingleCount("aspirin_count", count);
  result.virtual_seconds = net.ElapsedSeconds();
  return result;
}

StatusOr<RunResult> ConclaveAspirinCount(const Relation& diag0, const Relation& med0,
                                         const Relation& diag1, const Relation& med1,
                                         int64_t diag_code, int64_t med_code,
                                         const RunConfig& config) {
  SimNetwork net(config.cost_model);
  SecretShareEngine engine(&net, config.seed);

  // Slice on the public patient IDs (presence across both tables).
  auto pids0 = KeySet(diag0, 0);
  for (int64_t pid : KeySet(med0, 0)) {
    pids0.insert(pid);
  }
  auto pids1 = KeySet(diag1, 0);
  for (int64_t pid : KeySet(med1, 0)) {
    pids1.insert(pid);
  }
  std::unordered_set<int64_t> shared;
  for (int64_t pid : pids0) {
    if (pids1.contains(pid)) {
      shared.insert(pid);
    }
  }

  // Solo slices run as parallel per-party Spark jobs; the simulated time is the
  // slower of the two parties, not their sum.
  const auto solo0 = LocalQualifiers(diag0, med0, diag_code, med_code);
  const auto solo1 = LocalQualifiers(diag1, med1, diag_code, med_code);
  int64_t count = 0;
  for (int64_t pid : solo0) {
    if (!shared.contains(pid)) {
      ++count;
    }
  }
  for (int64_t pid : solo1) {
    if (!shared.contains(pid)) {
      ++count;
    }
  }
  const double local0 = config.cost_model.SparkSeconds(
      static_cast<uint64_t>(diag0.NumRows() + med0.NumRows()),
      config.cost_model.spark_workers_per_party);
  const double local1 = config.cost_model.SparkSeconds(
      static_cast<uint64_t>(diag1.NumRows() + med1.NumRows()),
      config.cost_model.spark_workers_per_party);
  net.CpuSeconds(std::max(local0, local1));

  // Shared rows flow through Conclave's pipeline: public join (keys public, output
  // key-sorted), order-preserving MPC filters, and the sort-elimination-enabled
  // linear distinct count.
  RunResult result;
  Relation d_sh0 = FilterByKeyMembership(diag0, 0, shared, true);
  Relation d_sh1 = FilterByKeyMembership(diag1, 0, shared, true);
  Relation m_sh0 = FilterByKeyMembership(med0, 0, shared, true);
  Relation m_sh1 = FilterByKeyMembership(med1, 0, shared, true);
  result.mpc_input_rows =
      d_sh0.NumRows() + d_sh1.NumRows() + m_sh0.NumRows() + m_sh1.NumRows();

  int64_t shared_count = 0;
  if (result.mpc_input_rows > 0) {
    CONCLAVE_ASSIGN_OR_RETURN(SharedRelation d0s, mpc::InputRelation(engine, d_sh0));
    CONCLAVE_ASSIGN_OR_RETURN(SharedRelation d1s, mpc::InputRelation(engine, d_sh1));
    CONCLAVE_ASSIGN_OR_RETURN(SharedRelation m0s, mpc::InputRelation(engine, m_sh0));
    CONCLAVE_ASSIGN_OR_RETURN(SharedRelation m1s, mpc::InputRelation(engine, m_sh1));
    SharedRelation diag_all =
        mpc::Concat(std::vector<SharedRelation>{std::move(d0s), std::move(d1s)});
    SharedRelation med_all =
        mpc::Concat(std::vector<SharedRelation>{std::move(m0s), std::move(m1s)});
    const int keys[] = {0};
    CONCLAVE_ASSIGN_OR_RETURN(
        SharedRelation joined,
        hybrid::PublicJoinShared(engine, diag_all, med_all, keys, keys,
                                 /*joiner=*/0, /*num_parties=*/3));
    // joined: (pid, diag, med), sorted by pid.
    SharedColumn diag_flags = mpc::FilterFlags(
        engine, joined, FilterPredicate::ColumnVsLiteral(1, CompareOp::kEq, diag_code));
    SharedColumn med_flags = mpc::FilterFlags(
        engine, joined, FilterPredicate::ColumnVsLiteral(2, CompareOp::kEq, med_code));
    SharedColumn keep = engine.Mul(diag_flags, med_flags);
    CONCLAVE_ASSIGN_OR_RETURN(
        SharedRelation count_rel,
        mpc::CountDistinctSorted(engine, joined, /*key_column=*/0, keep,
                                 "aspirin_count"));
    Relation revealed = mpc::RevealRelation(engine, count_rel);
    shared_count = revealed.At(0, 0);
  }

  result.output = SingleCount("aspirin_count", count + shared_count);
  result.virtual_seconds = net.ElapsedSeconds();
  return result;
}

StatusOr<RunResult> SmcqlComorbidity(const Relation& diag0, const Relation& diag1,
                                     int64_t limit, const RunConfig& config) {
  SimNetwork net(config.cost_model);
  gc::GcEngine engine(&net, /*oblivm_mode=*/true);

  // Local pre-aggregation per party (both SMCQL and Conclave split this way, §7.4).
  const int group_cols[] = {1};  // diag
  Relation partial0 = ops::Aggregate(diag0, group_cols, AggKind::kCount, 0, "cnt");
  Relation partial1 = ops::Aggregate(diag1, group_cols, AggKind::kCount, 0, "cnt");
  net.CpuSeconds(config.cost_model.PythonSeconds(
      static_cast<uint64_t>(diag0.NumRows() + diag1.NumRows())));

  RunResult result;
  result.mpc_input_rows = partial0.NumRows() + partial1.NumRows();
  result.mpc_slices = 1;

  // ObliVM MPC: combine partials, re-aggregate, order by count desc, take the top k.
  CONCLAVE_RETURN_IF_ERROR(engine.ChargeInput(partial0));
  CONCLAVE_RETURN_IF_ERROR(engine.ChargeInput(partial1));
  CONCLAVE_ASSIGN_OR_RETURN(
      Relation combined,
      engine.Concat(std::vector<Relation>{std::move(partial0), std::move(partial1)}));
  const int diag_col[] = {0};
  CONCLAVE_ASSIGN_OR_RETURN(Relation totals,
                            engine.Aggregate(combined, diag_col, AggKind::kSum,
                                             /*agg_column=*/1, "cnt"));
  const int cnt_col[] = {1};
  CONCLAVE_ASSIGN_OR_RETURN(Relation sorted,
                            engine.Sort(totals, cnt_col, /*ascending=*/false));
  CONCLAVE_ASSIGN_OR_RETURN(result.output, engine.Limit(sorted, limit));
  result.virtual_seconds = net.ElapsedSeconds();
  return result;
}

namespace {

// Patients in `rel` (pid, time, diag) with a second c.diff diagnosis inside the
// recurrence window — the cleartext evaluation used for solo slices.
std::unordered_set<int64_t> LocalRecurrent(const Relation& rel) {
  Relation cdiff = ops::Filter(
      rel, FilterPredicate::ColumnVsLiteral(2, CompareOp::kEq, data::kCdiffCode));
  WindowSpec spec;
  spec.partition_columns = {0};
  spec.order_column = 1;
  spec.fn = WindowFn::kLag;
  spec.value_column = 1;
  spec.output_name = "prev_t";
  Relation lagged = ops::Window(cdiff, spec);
  std::unordered_set<int64_t> recurrent;
  for (int64_t r = 0; r < lagged.NumRows(); ++r) {
    const int64_t prev = lagged.At(r, 3);
    const int64_t gap = lagged.At(r, 1) - prev;
    if (prev > 0 && gap >= data::kRecurrenceGapMinDays &&
        gap <= data::kRecurrenceGapMaxDays) {
      recurrent.insert(lagged.At(r, 0));
    }
  }
  return recurrent;
}

}  // namespace

StatusOr<RunResult> SmcqlRecurrentCdiff(const Relation& diag0, const Relation& diag1,
                                        const RunConfig& config) {
  SimNetwork net(config.cost_model);
  gc::GcEngine engine(&net, /*oblivm_mode=*/true);

  const auto keys0 = KeySet(diag0, 0);
  const auto keys1 = KeySet(diag1, 0);
  std::unordered_set<int64_t> shared;
  for (int64_t pid : keys0) {
    if (keys1.contains(pid)) {
      shared.insert(pid);
    }
  }

  // Solo patients evaluate in the clear at their own hospital.
  int64_t count = 0;
  for (const Relation* rel : {&diag0, &diag1}) {
    for (int64_t pid : LocalRecurrent(*rel)) {
      if (!shared.contains(pid)) {
        ++count;
      }
    }
  }
  net.CpuSeconds(config.cost_model.PythonSeconds(
      static_cast<uint64_t>(diag0.NumRows() + diag1.NumRows())));

  // Shared patients: per-slice ObliVM MPC running SMCQL's plan — window row-number,
  // self-join on pid, adjacency + gap filters.
  RunResult result;
  result.mpc_slices = static_cast<int64_t>(shared.size());
  const auto index0 = RowsByKey(diag0, 0);
  const auto index1 = RowsByKey(diag1, 0);
  for (int64_t pid : shared) {
    Relation slice =
        ops::Concat(std::vector<Relation>{GatherRows(diag0, index0, pid),
                                          GatherRows(diag1, index1, pid)});
    result.mpc_input_rows += slice.NumRows();
    net.CpuSeconds(config.per_slice_setup_seconds);
    CONCLAVE_RETURN_IF_ERROR(engine.ChargeInput(slice));
    CONCLAVE_ASSIGN_OR_RETURN(
        Relation cdiff,
        engine.Filter(slice, FilterPredicate::ColumnVsLiteral(
                                 2, CompareOp::kEq, data::kCdiffCode)));
    WindowSpec spec;
    spec.partition_columns = {0};
    spec.order_column = 1;
    spec.fn = WindowFn::kRowNumber;
    spec.output_name = "rn";
    CONCLAVE_ASSIGN_OR_RETURN(Relation numbered, engine.Window(cdiff, spec));
    // Self-join on pid; rows pair every visit with every other visit.
    const int pid_key[] = {0};
    CONCLAVE_ASSIGN_OR_RETURN(Relation pairs,
                              engine.Join(numbered, numbered, pid_key, pid_key));
    // pairs: (pid, time, diag, rn, time', diag', rn'). Keep adjacent pairs with the
    // gap inside the window. Column arithmetic first: gap and adjacency.
    ArithSpec gap;
    gap.kind = ArithKind::kSub;
    gap.lhs_column = 4;  // time'
    gap.rhs_is_column = true;
    gap.rhs_column = 1;  // time
    gap.result_name = "gap";
    CONCLAVE_ASSIGN_OR_RETURN(Relation with_gap, engine.Arithmetic(pairs, gap));
    ArithSpec next_rn;
    next_rn.kind = ArithKind::kAdd;
    next_rn.lhs_column = 3;  // rn
    next_rn.rhs_is_column = false;
    next_rn.rhs_literal = 1;
    next_rn.result_name = "rn_next";
    CONCLAVE_ASSIGN_OR_RETURN(Relation with_next, engine.Arithmetic(with_gap, next_rn));
    CONCLAVE_ASSIGN_OR_RETURN(
        Relation adjacent,
        engine.Filter(with_next,
                      FilterPredicate::ColumnVsColumn(6, CompareOp::kEq, 8)));
    CONCLAVE_ASSIGN_OR_RETURN(
        Relation lower,
        engine.Filter(adjacent,
                      FilterPredicate::ColumnVsLiteral(
                          7, CompareOp::kGe, data::kRecurrenceGapMinDays)));
    CONCLAVE_ASSIGN_OR_RETURN(
        Relation qualified,
        engine.Filter(lower, FilterPredicate::ColumnVsLiteral(
                                 7, CompareOp::kLe, data::kRecurrenceGapMaxDays)));
    if (qualified.NumRows() > 0) {
      ++count;
    }
  }

  result.output = SingleCount("rcdiff_count", count);
  result.virtual_seconds = net.ElapsedSeconds();
  return result;
}

StatusOr<RunResult> ConclaveRecurrentCdiff(const Relation& diag0,
                                           const Relation& diag1,
                                           const RunConfig& config) {
  SimNetwork net(config.cost_model);
  SecretShareEngine engine(&net, config.seed);

  const auto keys0 = KeySet(diag0, 0);
  const auto keys1 = KeySet(diag1, 0);
  std::unordered_set<int64_t> shared;
  for (int64_t pid : keys0) {
    if (keys1.contains(pid)) {
      shared.insert(pid);
    }
  }

  // Solo patients run as parallel per-party Spark jobs.
  int64_t count = 0;
  for (const Relation* rel : {&diag0, &diag1}) {
    for (int64_t pid : LocalRecurrent(*rel)) {
      if (!shared.contains(pid)) {
        ++count;
      }
    }
  }
  const double local0 = config.cost_model.SparkSeconds(
      static_cast<uint64_t>(diag0.NumRows()),
      config.cost_model.spark_workers_per_party);
  const double local1 = config.cost_model.SparkSeconds(
      static_cast<uint64_t>(diag1.NumRows()),
      config.cost_model.spark_workers_per_party);
  net.CpuSeconds(std::max(local0, local1));

  // Shared rows flow through one MPC: size-revealing filter to the c.diff rows, the
  // oblivious lag window (subsuming SMCQL's self-join), flag-gated qualification, and
  // the linear distinct count over the already-sorted pid column.
  RunResult result;
  Relation sh0 = FilterByKeyMembership(diag0, 0, shared, true);
  Relation sh1 = FilterByKeyMembership(diag1, 0, shared, true);
  result.mpc_input_rows = sh0.NumRows() + sh1.NumRows();

  int64_t shared_count = 0;
  if (result.mpc_input_rows > 0) {
    CONCLAVE_ASSIGN_OR_RETURN(SharedRelation s0, mpc::InputRelation(engine, sh0));
    CONCLAVE_ASSIGN_OR_RETURN(SharedRelation s1, mpc::InputRelation(engine, sh1));
    SharedRelation all =
        mpc::Concat(std::vector<SharedRelation>{std::move(s0), std::move(s1)});
    CONCLAVE_ASSIGN_OR_RETURN(
        SharedRelation cdiff,
        mpc::Filter(engine, all,
                    FilterPredicate::ColumnVsLiteral(2, CompareOp::kEq,
                                                     data::kCdiffCode)));
    const int partition[] = {0};
    CONCLAVE_ASSIGN_OR_RETURN(
        SharedRelation lagged,
        mpc::Window(engine, cdiff, partition, /*order_column=*/1, WindowFn::kLag,
                    /*value_column=*/1, "prev_t"));
    ArithSpec gap;
    gap.kind = ArithKind::kSub;
    gap.lhs_column = 1;  // time
    gap.rhs_is_column = true;
    gap.rhs_column = 3;  // prev_t
    gap.result_name = "gap";
    SharedRelation with_gap = mpc::Arithmetic(engine, lagged, gap);
    // Qualify: prev_t > 0 and gap in the recurrence window. Order-preserving flags
    // keep the pid sort for the distinct count.
    SharedColumn has_prev = mpc::FilterFlags(
        engine, with_gap, FilterPredicate::ColumnVsLiteral(3, CompareOp::kGt, 0));
    SharedColumn lower = mpc::FilterFlags(
        engine, with_gap,
        FilterPredicate::ColumnVsLiteral(4, CompareOp::kGe,
                                         data::kRecurrenceGapMinDays));
    SharedColumn upper = mpc::FilterFlags(
        engine, with_gap,
        FilterPredicate::ColumnVsLiteral(4, CompareOp::kLe,
                                         data::kRecurrenceGapMaxDays));
    SharedColumn keep = engine.Mul(engine.Mul(has_prev, lower), upper);
    CONCLAVE_ASSIGN_OR_RETURN(
        SharedRelation count_rel,
        mpc::CountDistinctSorted(engine, with_gap, /*key_column=*/0, keep,
                                 "rcdiff_count"));
    Relation revealed = mpc::RevealRelation(engine, count_rel);
    shared_count = revealed.At(0, 0);
  }

  result.output = SingleCount("rcdiff_count", count + shared_count);
  result.virtual_seconds = net.ElapsedSeconds();
  return result;
}

}  // namespace smcql
}  // namespace conclave
