// SMCQL baseline and the Conclave slicing pipelines used for the §7.4 comparison.
//
// SMCQL [3] differentiates only public vs. private columns, runs MPC on the ObliVM
// garbled-circuit backend, and "slices" data on public key columns: a slice whose key
// occurs at only one party is processed locally there; slices with keys at both
// parties run as many small MPCs. This module implements:
//
//  * SliceByKey        — the slicing partition itself (shared for both systems, since
//                        the paper manually adds SMCQL-style slicing to Conclave).
//  * SmcqlAspirinCount — SMCQL's execution: per-shared-slice ObliVM join + filters,
//                        solo slices local.
//  * ConclaveAspirinCount — slicing + Conclave's public join, with order-preserving
//                        MPC filters and the O(n)-after-sort-elimination distinct
//                        count on the secret-sharing backend (§7.4's headline).
//  * SmcqlComorbidity  — local pre-aggregation per party + ObliVM secondary
//                        aggregation, descending sort, and limit.
//
// Both systems' runs report virtual seconds on their own simulated network/cluster.
#ifndef CONCLAVE_SMCQL_SMCQL_H_
#define CONCLAVE_SMCQL_SMCQL_H_

#include <cstdint>

#include "conclave/common/status.h"
#include "conclave/net/cost_model.h"
#include "conclave/relational/relation.h"

namespace conclave {
namespace smcql {

struct SliceResult {
  // Rows whose slice key occurs only at one party.
  Relation solo0;
  Relation solo1;
  // Rows whose slice key occurs at both parties.
  Relation shared0;
  Relation shared1;
  int64_t num_shared_keys = 0;
};

// Partitions two parties' horizontal shares of one relation by the public key column.
SliceResult SliceByKey(const Relation& party0, const Relation& party1, int key_col);

struct RunResult {
  Relation output;
  double virtual_seconds = 0;
  int64_t mpc_slices = 0;     // Shared-key slices executed under MPC (SMCQL).
  int64_t mpc_input_rows = 0; // Rows entering MPC.
};

struct RunConfig {
  CostModel cost_model;
  // ObliVM setup cost per sliced MPC (circuit generation + OT bootstrap).
  double per_slice_setup_seconds = 0.5;
  uint64_t seed = 42;
};

// Aspirin count (SMCQL §2.2.1): patients diagnosed with `diag_code` and prescribed
// `med_code`; diagnoses and medications horizontally partitioned across 2 hospitals.
// Output: one row, one column ("aspirin_count").
StatusOr<RunResult> SmcqlAspirinCount(const Relation& diag0, const Relation& med0,
                                      const Relation& diag1, const Relation& med1,
                                      int64_t diag_code, int64_t med_code,
                                      const RunConfig& config);

StatusOr<RunResult> ConclaveAspirinCount(const Relation& diag0, const Relation& med0,
                                         const Relation& diag1, const Relation& med1,
                                         int64_t diag_code, int64_t med_code,
                                         const RunConfig& config);

// Comorbidity (SMCQL §2.2.1): top-`limit` most common diagnoses across two parties.
// Output schema: (diag, cnt), `limit` rows, descending by count.
StatusOr<RunResult> SmcqlComorbidity(const Relation& diag0, const Relation& diag1,
                                     int64_t limit, const RunConfig& config);

// Recurrent c.diff (SMCQL §2.2.1): count patients with a second c.diff diagnosis 15–56
// days after an earlier one. Inputs are (pid, time, diag) event logs horizontally
// partitioned across two hospitals; patient IDs are public. The paper's §7.4 only
// *discusses* this query ("Conclave does not yet support window aggregates"); this
// repo's window operator makes it runnable. Output: one row ("rcdiff_count").
//
// SMCQL's plan follows its paper: per-shared-patient slices run a window row-number,
// a self-join on pid, and the gap filter under ObliVM; solo slices run locally.
StatusOr<RunResult> SmcqlRecurrentCdiff(const Relation& diag0, const Relation& diag1,
                                        const RunConfig& config);

// Conclave's plan: slicing + a size-revealing MPC filter to the c.diff rows, then the
// oblivious window (lag over time, partitioned by pid) — which subsumes SMCQL's
// self-join — and the sort-elimination-enabled linear distinct count (window output is
// already (pid, time)-sorted).
StatusOr<RunResult> ConclaveRecurrentCdiff(const Relation& diag0,
                                           const Relation& diag1,
                                           const RunConfig& config);

}  // namespace smcql
}  // namespace conclave

#endif  // CONCLAVE_SMCQL_SMCQL_H_
