// Noise samplers for the differential-privacy output layer (§8's DJoin-style
// direction: "Conclave does not currently leverage DP, but adding it would require no
// fundamental changes to the query compilation").
//
// Conclave relations hold integers, so the discrete (two-sided geometric) mechanism
// is the primary sampler: adding Geo(exp(-eps/sensitivity)) noise to an integer-valued
// query gives eps-differential privacy [Ghosh-Roughgarden-Sundararajan]. A continuous
// Laplace sampler is provided for calibration tests.
#ifndef CONCLAVE_DP_LAPLACE_H_
#define CONCLAVE_DP_LAPLACE_H_

#include <cstdint>

#include "conclave/common/rng.h"

namespace conclave {
namespace dp {

// Laplace(0, scale): inverse-CDF transform of a uniform draw.
double SampleLaplace(Rng& rng, double scale);

// Two-sided geometric ("discrete Laplace") with parameter alpha = exp(-1/scale):
// P[X = k] proportional to alpha^|k|. Matches Laplace(scale) in the large-scale limit
// and adds integer noise, keeping relations integer-typed.
int64_t SampleDiscreteLaplace(Rng& rng, double scale);

}  // namespace dp
}  // namespace conclave

#endif  // CONCLAVE_DP_LAPLACE_H_
