#include "conclave/dp/mechanism.h"

#include "conclave/common/strings.h"

namespace conclave {
namespace dp {

Status PerturbRelation(Relation& relation, const DpSpec& spec, Rng& rng) {
  if (!spec.enabled) {
    return Status::Ok();
  }
  if (spec.epsilon <= 0) {
    return InvalidArgumentError("dp epsilon must be positive");
  }
  if (spec.column_sensitivity.empty()) {
    return InvalidArgumentError("dp spec lists no columns to perturb");
  }
  for (const auto& [name, sensitivity] : spec.column_sensitivity) {
    if (sensitivity <= 0) {
      return InvalidArgumentError(
          StrFormat("dp sensitivity for '%s' must be positive", name.c_str()));
    }
    CONCLAVE_ASSIGN_OR_RETURN(const int column, relation.schema().IndexOf(name));
    const double scale = sensitivity / spec.epsilon;
    for (int64_t r = 0; r < relation.NumRows(); ++r) {
      relation.Set(r, column,
                   relation.At(r, column) + SampleDiscreteLaplace(rng, scale));
    }
  }
  return Status::Ok();
}

}  // namespace dp
}  // namespace conclave
