// Output perturbation and epsilon accounting for differentially private query
// results (§8: DJoin combines MPC with DP for SQL-style operations; Conclave's
// compilation needs no fundamental change to support it — this module is that
// extension).
//
// The mechanism is applied at the Collect boundary, after MPC: recipients of an
// output relation receive aggregate columns with discrete-Laplace noise calibrated to
// (epsilon, sensitivity). Group-by key columns stay exact — the protected quantities
// are the aggregates, as in DJoin's noisy counts. The per-output epsilons add up
// (sequential composition); the dispatcher reports the query's total spend.
#ifndef CONCLAVE_DP_MECHANISM_H_
#define CONCLAVE_DP_MECHANISM_H_

#include <map>
#include <string>

#include "conclave/common/status.h"
#include "conclave/dp/laplace.h"
#include "conclave/relational/relation.h"

namespace conclave {
namespace dp {

// Per-output DP request, attached to a Collect node.
struct DpSpec {
  bool enabled = false;
  double epsilon = 1.0;
  // Column name -> L1 sensitivity of that column (how much one individual's data can
  // change it). COUNT columns have sensitivity 1; SUM columns need a caller-supplied
  // per-individual contribution bound.
  std::map<std::string, double> column_sensitivity;
};

// Adds discrete-Laplace noise with scale sensitivity/epsilon to every listed column.
// Fails on unknown columns or non-positive epsilon/sensitivity; other columns pass
// through exact.
Status PerturbRelation(Relation& relation, const DpSpec& spec, Rng& rng);

// Sequential-composition accountant: epsilons of applied mechanisms add up.
class EpsilonAccountant {
 public:
  void Charge(double epsilon) { spent_ += epsilon; }
  double spent() const { return spent_; }

 private:
  double spent_ = 0;
};

}  // namespace dp
}  // namespace conclave

#endif  // CONCLAVE_DP_MECHANISM_H_
