#include "conclave/dp/laplace.h"

#include <cmath>

#include "conclave/common/check.h"

namespace conclave {
namespace dp {

double SampleLaplace(Rng& rng, double scale) {
  CONCLAVE_CHECK_GT(scale, 0.0);
  // u uniform in (-0.5, 0.5]; Laplace = -scale * sgn(u) * ln(1 - 2|u|).
  double u = rng.NextDouble() - 0.5;
  if (u == -0.5) {
    u = 0.0;  // Avoid ln(0) on the open end of the interval.
  }
  const double magnitude = std::log(1.0 - 2.0 * std::abs(u));
  return (u >= 0 ? -scale : scale) * magnitude;
}

int64_t SampleDiscreteLaplace(Rng& rng, double scale) {
  CONCLAVE_CHECK_GT(scale, 0.0);
  const double alpha = std::exp(-1.0 / scale);
  // P[X = 0] = (1-alpha)/(1+alpha); conditioned on X != 0, the sign is uniform and
  // the magnitude is geometric from 1: P[|X| = k | X != 0] = (1-alpha) alpha^(k-1).
  if (rng.NextDouble() < (1.0 - alpha) / (1.0 + alpha)) {
    return 0;
  }
  const bool negative = rng.NextBelow(2) == 1;
  double u = rng.NextDouble();
  if (u <= 0.0) {
    u = 1e-18;
  }
  const int64_t magnitude =
      1 + static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha)));
  return negative ? -magnitude : magnitude;
}

}  // namespace dp
}  // namespace conclave
