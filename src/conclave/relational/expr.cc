#include "conclave/relational/expr.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "conclave/common/check.h"
#include "conclave/common/env.h"

namespace conclave {

// --- Knob -------------------------------------------------------------------

namespace {

int InitFusedExprKnobFromEnv() {
  return env::BoolKnob("CONCLAVE_FUSED_EXPR", /*fallback=*/true) ? 1 : 0;
}

std::atomic<int>& FusedExprKnob() {
  static std::atomic<int> knob(InitFusedExprKnobFromEnv());
  return knob;
}

}  // namespace

bool FusedExprEnabled() {
  return FusedExprKnob().load(std::memory_order_relaxed) != 0;
}

void SetFusedExprEnabled(bool enabled) {
  FusedExprKnob().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// --- Slot partitioning ------------------------------------------------------

bool FusibleExprOp(const PipelineOp& op) {
  switch (op.kind) {
    case PipelineOp::Kind::kFilter:
    case PipelineOp::Kind::kProject:
    case PipelineOp::Kind::kArithmetic:
      return true;
    case PipelineOp::Kind::kLimit:
    case PipelineOp::Kind::kDistinctOnSorted:
      return false;
  }
  return false;
}

std::vector<ExprSlot> FuseExprSlots(std::span<const PipelineOp> ops, bool fuse) {
  std::vector<ExprSlot> slots;
  size_t i = 0;
  while (i < ops.size()) {
    size_t end = i + 1;
    if (fuse && FusibleExprOp(ops[i])) {
      while (end < ops.size() && FusibleExprOp(ops[end])) {
        ++end;
      }
    }
    if (end - i >= 2) {
      slots.push_back({i, end});
    } else {
      slots.push_back({i, i + 1});
    }
    i = end;
  }
  return slots;
}

// --- Program compilation ----------------------------------------------------

// ops.cc static_asserts that cpu::Cmp / cpu::Arith mirror CompareOp /
// ArithKind member for member; the casts below rely on the same orders.

FusedExprProgram::FusedExprProgram(const Schema& input,
                                   std::span<const PipelineOp> ops) {
  CONCLAVE_CHECK_GT(ops.size(), 0u);
  std::vector<ColRef> current(static_cast<size_t>(input.NumColumns()));
  for (int c = 0; c < input.NumColumns(); ++c) {
    current[static_cast<size_t>(c)].src = c;
  }
  Schema schema = input;
  instrs_.reserve(ops.size());
  for (const PipelineOp& op : ops) {
    CONCLAVE_CHECK(FusibleExprOp(op));
    Instr instr;
    instr.kind = op.kind;
    switch (op.kind) {
      case PipelineOp::Kind::kFilter:
        instr.cmp = static_cast<cpu::Cmp>(op.filter.op);
        instr.lhs = current[static_cast<size_t>(op.filter.column)];
        instr.rhs_is_column = op.filter.rhs_is_column;
        if (op.filter.rhs_is_column) {
          instr.rhs = current[static_cast<size_t>(op.filter.rhs_column)];
        }
        instr.literal = op.filter.rhs_literal;
        has_filter_ = true;
        break;
      case PipelineOp::Kind::kProject: {
        // Compiled away: the remap happens here, at compile time.
        std::vector<ColRef> next;
        next.reserve(op.columns.size());
        for (int c : op.columns) {
          next.push_back(current[static_cast<size_t>(c)]);
        }
        current = std::move(next);
        break;
      }
      case PipelineOp::Kind::kArithmetic:
        instr.arith = static_cast<cpu::Arith>(op.arith.kind);
        instr.lhs = current[static_cast<size_t>(op.arith.lhs_column)];
        instr.rhs_is_column = op.arith.rhs_is_column;
        if (op.arith.rhs_is_column) {
          instr.rhs = current[static_cast<size_t>(op.arith.rhs_column)];
        }
        instr.literal = op.arith.rhs_literal;
        instr.scale = op.arith.scale;
        instr.out_slot = num_slots_++;
        current.push_back(ColRef{/*src=*/-1, /*slot=*/instr.out_slot});
        break;
      default:
        break;
    }
    instrs_.push_back(instr);
    schema = BatchPipeline::DeriveSchema(schema, op);
  }
  output_cols_ = std::move(current);
  output_schema_ = std::move(schema);
  slots_.resize(static_cast<size_t>(num_slots_));
}

// --- Evaluation -------------------------------------------------------------

const int64_t* FusedExprProgram::Resolve(const Relation& src, int64_t lo,
                                         ColRef ref) const {
  if (ref.slot >= 0) {
    return slots_[static_cast<size_t>(ref.slot)].data();
  }
  return src.ColumnSpan(ref.src).data() + lo;
}

Relation FusedExprProgram::Eval(const Relation& src, int64_t lo, int64_t hi,
                                std::span<int64_t> op_rows) {
  const int64_t n = hi - lo;
  const size_t un = static_cast<size_t>(n);
  for (auto& slot : slots_) {
    slot.resize(un);
  }
  if (has_filter_) {
    mask_.resize(un);
  }

  bool masked = false;
  int64_t surviving = n;
  for (size_t j = 0; j < instrs_.size(); ++j) {
    op_rows[j] += surviving;
    const Instr& instr = instrs_[j];
    switch (instr.kind) {
      case PipelineOp::Kind::kFilter: {
        const int64_t* lhs = Resolve(src, lo, instr.lhs);
        const int64_t* rhs =
            instr.rhs_is_column ? Resolve(src, lo, instr.rhs) : nullptr;
        cpu::CompareMask(instr.cmp, lhs, rhs, instr.literal, un,
                         masked ? cpu::MaskMode::kAnd : cpu::MaskMode::kSet,
                         mask_.data());
        masked = true;
        surviving = static_cast<int64_t>(cpu::CountMask(mask_.data(), un));
        break;
      }
      case PipelineOp::Kind::kArithmetic: {
        // Computed over the full batch, filtered or not: the kernel is total
        // (wrap semantics, divisor 0 -> 0), and rows the final gather drops
        // never surface, so the result matches per-op execution bit for bit.
        const int64_t* lhs = Resolve(src, lo, instr.lhs);
        const int64_t* rhs =
            instr.rhs_is_column ? Resolve(src, lo, instr.rhs) : nullptr;
        cpu::ArithColumn(instr.arith, lhs, rhs, instr.literal, instr.scale, un,
                         slots_[static_cast<size_t>(instr.out_slot)].data());
        break;
      }
      default:
        break;  // kProject: compiled away.
    }
  }

  Relation out{output_schema_};
  if (surviving == 0) {
    return out;
  }
  out.Resize(surviving);
  if (masked && surviving < n) {
    indices_.resize(static_cast<size_t>(surviving));
    cpu::MaskToIndices(mask_.data(), un, /*base=*/0, indices_.data());
    for (size_t c = 0; c < output_cols_.size(); ++c) {
      cpu::GatherI64(Resolve(src, lo, output_cols_[c]), indices_.data(),
                     static_cast<size_t>(surviving),
                     out.ColumnData(static_cast<int>(c)));
    }
  } else {
    for (size_t c = 0; c < output_cols_.size(); ++c) {
      const int64_t* column = Resolve(src, lo, output_cols_[c]);
      std::copy(column, column + n, out.ColumnData(static_cast<int>(c)));
    }
  }
  return out;
}

}  // namespace conclave
