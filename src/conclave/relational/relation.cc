#include "conclave/relational/relation.h"

#include <algorithm>

#include "conclave/common/strings.h"

namespace conclave {

Relation::Relation(Schema schema, std::vector<int64_t> cells)
    : schema_(std::move(schema)), cells_(std::move(cells)) {
  const int cols = schema_.NumColumns();
  CONCLAVE_CHECK_GT(cols, 0);
  CONCLAVE_CHECK_EQ(cells_.size() % static_cast<size_t>(cols), 0u);
}

void Relation::AppendRow(std::span<const int64_t> values) {
  CONCLAVE_CHECK_EQ(static_cast<int>(values.size()), NumColumns());
  cells_.insert(cells_.end(), values.begin(), values.end());
}

std::vector<int64_t> Relation::ColumnValues(int col) const {
  CONCLAVE_CHECK_GE(col, 0);
  CONCLAVE_CHECK_LT(col, NumColumns());
  std::vector<int64_t> values;
  values.reserve(static_cast<size_t>(NumRows()));
  for (int64_t r = 0; r < NumRows(); ++r) {
    values.push_back(At(r, col));
  }
  return values;
}

bool Relation::RowsEqual(const Relation& other) const {
  return schema_.NamesMatch(other.schema_) && cells_ == other.cells_;
}

std::string Relation::ToString(int64_t max_rows) const {
  std::string out = schema_.ToString() + StrFormat(" [%lld rows]\n",
                                                   static_cast<long long>(NumRows()));
  const int64_t shown = std::min(NumRows(), max_rows);
  for (int64_t r = 0; r < shown; ++r) {
    std::vector<std::string> cells;
    cells.reserve(static_cast<size_t>(NumColumns()));
    for (int c = 0; c < NumColumns(); ++c) {
      cells.push_back(std::to_string(At(r, c)));
    }
    out += "  [" + StrJoin(cells, ", ") + "]\n";
  }
  if (shown < NumRows()) {
    out += StrFormat("  ... (%lld more rows)\n",
                     static_cast<long long>(NumRows() - shown));
  }
  return out;
}

bool UnorderedEqual(const Relation& a, const Relation& b) {
  if (!a.schema().NamesMatch(b.schema()) || a.NumRows() != b.NumRows()) {
    return false;
  }
  const int cols = a.NumColumns();
  auto sorted_rows = [cols](const Relation& rel) {
    std::vector<std::vector<int64_t>> rows;
    rows.reserve(static_cast<size_t>(rel.NumRows()));
    for (int64_t r = 0; r < rel.NumRows(); ++r) {
      auto row = rel.Row(r);
      rows.emplace_back(row.begin(), row.end());
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  (void)cols;
  return sorted_rows(a) == sorted_rows(b);
}

}  // namespace conclave
