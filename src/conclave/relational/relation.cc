#include "conclave/relational/relation.h"

#include <algorithm>

#include "conclave/common/strings.h"

namespace conclave {

Relation::Relation(Schema schema, std::vector<int64_t> row_major_cells)
    : schema_(std::move(schema)) {
  const int cols = schema_.NumColumns();
  CONCLAVE_CHECK_GT(cols, 0);
  CONCLAVE_CHECK_EQ(row_major_cells.size() % static_cast<size_t>(cols), 0u);
  const int64_t rows = static_cast<int64_t>(row_major_cells.size()) / cols;
  columns_.resize(static_cast<size_t>(cols));
  Resize(rows);
  for (int c = 0; c < cols; ++c) {
    int64_t* const out = columns_[static_cast<size_t>(c)].data();
    const int64_t* const base = row_major_cells.data() + c;
    for (int64_t r = 0; r < rows; ++r) {
      out[r] = base[static_cast<size_t>(r) * cols];
    }
  }
}

void Relation::AppendRow(std::span<const int64_t> values) {
  CONCLAVE_CHECK_EQ(static_cast<int>(values.size()), NumColumns());
  if (NumColumns() == 0) {
    return;  // A zero-column relation has no rows (matches NumRows() == 0).
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
  ++num_rows_;
}

void Relation::CopyRowInto(int64_t row, std::span<int64_t> out) const {
  CONCLAVE_DCHECK(row >= 0 && row < NumRows());
  CONCLAVE_CHECK_EQ(static_cast<int>(out.size()), NumColumns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    out[c] = columns_[c][static_cast<size_t>(row)];
  }
}

std::vector<int64_t> Relation::RowMajorCells() const {
  const int cols = NumColumns();
  std::vector<int64_t> cells(static_cast<size_t>(num_rows_) * cols);
  for (int c = 0; c < cols; ++c) {
    const int64_t* const src = columns_[static_cast<size_t>(c)].data();
    int64_t* const base = cells.data() + c;
    for (int64_t r = 0; r < num_rows_; ++r) {
      base[static_cast<size_t>(r) * cols] = src[r];
    }
  }
  return cells;
}

bool Relation::RowsEqual(const Relation& other) const {
  return schema_.NamesMatch(other.schema_) && num_rows_ == other.num_rows_ &&
         columns_ == other.columns_;
}

std::string Relation::ToString(int64_t max_rows) const {
  std::string out = schema_.ToString() + StrFormat(" [%lld rows]\n",
                                                   static_cast<long long>(NumRows()));
  const int64_t shown = std::min(NumRows(), max_rows);
  for (int64_t r = 0; r < shown; ++r) {
    std::vector<std::string> cells;
    cells.reserve(static_cast<size_t>(NumColumns()));
    for (int c = 0; c < NumColumns(); ++c) {
      cells.push_back(std::to_string(At(r, c)));
    }
    out += "  [" + StrJoin(cells, ", ") + "]\n";
  }
  if (shown < NumRows()) {
    out += StrFormat("  ... (%lld more rows)\n",
                     static_cast<long long>(NumRows() - shown));
  }
  return out;
}

bool UnorderedEqual(const Relation& a, const Relation& b) {
  if (!a.schema().NamesMatch(b.schema()) || a.NumRows() != b.NumRows()) {
    return false;
  }
  auto sorted_rows = [](const Relation& rel) {
    std::vector<std::vector<int64_t>> rows(static_cast<size_t>(rel.NumRows()));
    for (int64_t r = 0; r < rel.NumRows(); ++r) {
      auto& row = rows[static_cast<size_t>(r)];
      row.resize(static_cast<size_t>(rel.NumColumns()));
      rel.CopyRowInto(r, row);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  return sorted_rows(a) == sorted_rows(b);
}

}  // namespace conclave
