// Beyond-RAM execution for the blocking cleartext operators (DESIGN.md §12).
//
// A memory budget of `mem_budget_rows` bounds the rows any single blocking
// operator instance keeps resident at once. When an input exceeds the budget,
// the kernels here spill sorted runs / hash partitions to RAII-owned temp files
// (common/tempfile.h) and merge them back with exactly the PR 5 merge
// discipline (shard_ops.cc's KWayMerge: ties resolve to the lower stream), so
// every result is bit-identical to the in-memory ops:: kernel:
//
//  * SortBy    — external merge sort: contiguous <=budget-row chunks, each
//                stable-sorted by ops::SortBy, k-way merged with lower-run-index
//                tie-break == std::stable_sort of the whole input.
//  * Distinct  — per-chunk project+dedup runs, k-way merged with dedup.
//  * Aggregate — per-chunk partial aggregates (kMean splits into kSum + kCount
//                partials), runs merged by group key combining equal keys;
//                sum/count/min/max are associative, so chunking is invisible.
//  * Join      — Grace-style: both sides hash-partitioned on the key into
//                bucket files holding (key columns, global row id) only,
//                level-salted rehash recursion for skewed buckets, per-bucket
//                build+probe emitting (left gid, right gid) pairs, k-way merged
//                across buckets by (lgid, rgid) == ops::Join's pair order, then
//                gathered from the original in-memory inputs.
//
// Budget semantics: rows <= budget (or budget <= 0) short-circuits to the
// in-memory kernel — 0 is "unbounded", today's behavior. The budget bounds the
// operator's OWN working set (runs being formed, merge heads, partial maps);
// borrowed inputs and the final output are excluded, matching the PipelineStats
// residency convention. Peak resident rows stay <= ~2x budget.
//
// Merges use fan-in kSpillMergeFanIn; more runs than that forces multi-level
// merges. SpillMergePasses is the closed-form pass count the cost model prices
// (compiler/plan_cost) — it depends only on (total rows, budget), never on
// shard structure, so priced charges are invariant across the {pool, shard,
// batch_rows} grid even though the physical spill layout is not.
#ifndef CONCLAVE_RELATIONAL_SPILL_H_
#define CONCLAVE_RELATIONAL_SPILL_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "conclave/relational/ops.h"
#include "conclave/relational/relation.h"

namespace conclave {

// Resolves the process-default memory budget: CONCLAVE_MEM_BUDGET rows, else 0
// (unbounded). Mirrors DefaultBatchRows()'s CONCLAVE_BATCH_ROWS resolution.
int64_t DefaultMemBudgetRows();

namespace spill {

// Merge fan-in for external runs. Part of the pricing contract: changing it
// changes SpillMergePasses and therefore priced virtual time.
inline constexpr int64_t kSpillMergeFanIn = 8;

// Number of full read+write merge passes over the data an external sort (or
// run-merge aggregate/distinct) performs for `rows` input rows under `budget`:
// 0 when nothing spills, else ceil(log_fanin(ceil(rows/budget))) with a minimum
// of one pass. Pure closed-form math shared verbatim by the planner estimate
// and the dispatcher meter.
int64_t SpillMergePasses(int64_t rows, int64_t budget);

// Observability counters for one operator instance (or one shard's instance).
// Physical layout varies with shard/batch structure, so these are reported but
// deliberately excluded from the determinism contract.
struct SpillStats {
  int64_t spilled_rows = 0;       // Rows written to run/partition files.
  int64_t spilled_bytes = 0;      // Bytes written to run/partition files.
  int64_t runs_written = 0;       // Run or partition files created.
  int64_t merge_passes = 0;       // Multi-level merge passes performed.
  int64_t peak_resident_rows = 0; // High-water operator-owned resident rows.

  void Merge(const SpillStats& other) {
    spilled_rows += other.spilled_rows;
    spilled_bytes += other.spilled_bytes;
    runs_written += other.runs_written;
    merge_passes += other.merge_passes;
    peak_resident_rows = std::max(peak_resident_rows, other.peak_resident_rows);
  }
};

// Budget-aware wrappers. Each matches its ops:: counterpart bit for bit; with
// budget <= 0 or inputs within budget they forward to it directly. `stats` may
// be null.
Relation SortBy(const Relation& input, std::span<const int> columns, bool ascending,
                int64_t budget, SpillStats* stats);

Relation Distinct(const Relation& input, std::span<const int> columns,
                  int64_t budget, SpillStats* stats);

Relation Aggregate(const Relation& input, std::span<const int> group_columns,
                   AggKind kind, int agg_column, const std::string& output_name,
                   int64_t budget, SpillStats* stats);

Relation Join(const Relation& left, const Relation& right,
              std::span<const int> left_keys, std::span<const int> right_keys,
              int64_t budget, SpillStats* stats);

// The join's (left row, right row) pair stream in exactly ops::JoinRowPairs
// order, Grace-partitioned when the build (right) side exceeds the budget. The
// sharded partitioned join consumes this per bucket, exactly as it consumes
// ops::JoinRowPairs today.
void JoinRowPairs(const Relation& left, const Relation& right,
                  std::span<const int> left_keys, std::span<const int> right_keys,
                  int64_t budget, SpillStats* stats,
                  std::vector<int64_t>* left_rows, std::vector<int64_t>* right_rows);

}  // namespace spill
}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_SPILL_H_
