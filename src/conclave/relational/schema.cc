#include "conclave/relational/schema.h"

#include "conclave/common/strings.h"

namespace conclave {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

Schema Schema::Of(std::initializer_list<std::string> names) {
  std::vector<ColumnDef> columns;
  columns.reserve(names.size());
  for (const auto& name : names) {
    columns.emplace_back(name);
  }
  return Schema(std::move(columns));
}

const ColumnDef& Schema::Column(int index) const {
  CONCLAVE_CHECK_GE(index, 0);
  CONCLAVE_CHECK_LT(index, NumColumns());
  return columns_[static_cast<size_t>(index)];
}

ColumnDef& Schema::MutableColumn(int index) {
  CONCLAVE_CHECK_GE(index, 0);
  CONCLAVE_CHECK_LT(index, NumColumns());
  return columns_[static_cast<size_t>(index)];
}

StatusOr<int> Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < NumColumns(); ++i) {
    if (columns_[static_cast<size_t>(i)].name == name) {
      return i;
    }
  }
  return NotFoundError(
      StrFormat("no column '%s' in schema %s", name.c_str(), ToString().c_str()));
}

bool Schema::HasColumn(const std::string& name) const {
  for (const auto& column : columns_) {
    if (column.name == name) {
      return true;
    }
  }
  return false;
}

StatusOr<std::vector<int>> Schema::IndicesOf(
    const std::vector<std::string>& names) const {
  std::vector<int> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    CONCLAVE_ASSIGN_OR_RETURN(int index, IndexOf(name));
    indices.push_back(index);
  }
  return indices;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& column : columns_) {
    parts.push_back(column.name + column.trust_set.ToString());
  }
  return "(" + StrJoin(parts, ", ") + ")";
}

bool Schema::NamesMatch(const Schema& other) const {
  if (NumColumns() != other.NumColumns()) {
    return false;
  }
  for (int i = 0; i < NumColumns(); ++i) {
    if (Column(i).name != other.Column(i).name) {
      return false;
    }
  }
  return true;
}

}  // namespace conclave
