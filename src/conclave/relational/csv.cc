#include "conclave/relational/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "conclave/common/strings.h"
#include "conclave/common/thread_pool.h"

namespace conclave {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

StatusOr<int64_t> ParseInt(const std::string& text, size_t line_number) {
  if (text.empty()) {
    return InvalidArgumentError(StrFormat("empty cell on line %zu", line_number));
  }
  // strtoll silently skips leading whitespace and stops at a sign with no digits;
  // require the cell to be exactly [+-]?[0-9]+ so " 5", "+", and "-" fail loudly.
  const bool signed_cell = text[0] == '+' || text[0] == '-';
  const size_t first_digit = signed_cell ? 1 : 0;
  if (text.size() == first_digit || text[first_digit] < '0' ||
      text[first_digit] > '9') {
    return InvalidArgumentError(
        StrFormat("cell '%s' on line %zu is not an integer", text.c_str(),
                  line_number));
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE) {
    return InvalidArgumentError(
        StrFormat("cell '%s' on line %zu overflows int64", text.c_str(),
                  line_number));
  }
  // end must reach the string's full size: '*end == 0' alone would accept an
  // embedded NUL ("5\0junk") and silently drop the tail.
  if (errno != 0 || end != text.c_str() + text.size()) {
    return InvalidArgumentError(
        StrFormat("cell '%s' on line %zu is not an integer", text.c_str(),
                  line_number));
  }
  return static_cast<int64_t>(value);
}

}  // namespace

StatusOr<Relation> ParseCsv(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line)) {
    return InvalidArgumentError("CSV input is empty (missing header)");
  }
  std::vector<ColumnDef> defs;
  for (const auto& name : SplitLine(line)) {
    if (name.empty()) {
      return InvalidArgumentError("CSV header contains an empty column name");
    }
    defs.emplace_back(name);
  }
  Relation relation{Schema(std::move(defs))};
  const int cols = relation.NumColumns();

  // First pass: count data lines so the column buffers size once. getline strips
  // the '\n' but not '\r'; "\r" alone is a 1-field line (matching SplitLine), so
  // only truly empty lines are skipped — the same rule the parse loop applies.
  const size_t header_end = text.find('\n');
  int64_t data_rows = 0;
  if (header_end != std::string::npos) {
    bool line_empty = true;
    for (size_t i = header_end + 1; i < text.size(); ++i) {
      if (text[i] == '\n') {
        data_rows += line_empty ? 0 : 1;
        line_empty = true;
      } else {
        line_empty = false;
      }
    }
    data_rows += line_empty ? 0 : 1;  // Final line without a trailing newline.
  }
  relation.Resize(data_rows);
  std::vector<int64_t*> column_data(static_cast<size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    column_data[static_cast<size_t>(c)] = relation.ColumnData(c);
  }

  // Second pass: parse straight into the column buffers (no per-row AppendRow).
  size_t line_number = 1;
  int64_t row = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    const auto fields = SplitLine(line);
    if (static_cast<int>(fields.size()) != cols) {
      return InvalidArgumentError(
          StrFormat("line %zu has %zu fields, expected %d", line_number,
                    fields.size(), cols));
    }
    CONCLAVE_CHECK_LT(row, data_rows);
    for (int c = 0; c < cols; ++c) {
      CONCLAVE_ASSIGN_OR_RETURN(
          int64_t value, ParseInt(fields[static_cast<size_t>(c)], line_number));
      column_data[static_cast<size_t>(c)][row] = value;
    }
    ++row;
  }
  CONCLAVE_CHECK_EQ(row, data_rows);
  return relation;
}

std::string ToCsv(const Relation& relation) {
  std::string out;
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(relation.NumColumns()));
  for (const auto& column : relation.schema().columns()) {
    names.push_back(column.name);
  }
  out += StrJoin(names, ",") + "\n";
  for (int64_t r = 0; r < relation.NumRows(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(static_cast<size_t>(relation.NumColumns()));
    for (int c = 0; c < relation.NumColumns(); ++c) {
      cells.push_back(std::to_string(relation.At(r, c)));
    }
    out += StrJoin(cells, ",") + "\n";
  }
  return out;
}

StatusOr<CsvSource> CsvSource::FromText(std::string text) {
  if (text.empty()) {
    return InvalidArgumentError("CSV input is empty (missing header)");
  }
  const size_t header_end = text.find('\n');
  const std::string header =
      header_end == std::string::npos ? text : text.substr(0, header_end);
  std::vector<ColumnDef> defs;
  for (const auto& name : SplitLine(header)) {
    if (name.empty()) {
      return InvalidArgumentError("CSV header contains an empty column name");
    }
    defs.emplace_back(name);
  }
  CsvSource source;
  source.schema_ = Schema(std::move(defs));
  source.text_ = std::move(text);
  // Index the non-empty data lines (byte range + original line number, so error
  // messages match the eager parsers exactly).
  if (header_end != std::string::npos) {
    size_t line_start = header_end + 1;
    size_t line_number = 2;
    for (size_t i = line_start; i <= source.text_.size(); ++i) {
      if (i == source.text_.size() || source.text_[i] == '\n') {
        if (i > line_start) {
          source.lines_.push_back({line_start, i, line_number});
        }
        line_start = i + 1;
        ++line_number;
      }
    }
  }
  return source;
}

StatusOr<CsvSource> CsvSource::FromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError(StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return FromText(buffer.str());
}

CsvSource::CsvSource(CsvSource&& other) noexcept
    : text_(std::move(other.text_)),
      schema_(std::move(other.schema_)),
      lines_(std::move(other.lines_)),
      max_materialized_rows_(
          other.max_materialized_rows_.load(std::memory_order_relaxed)) {}

CsvSource& CsvSource::operator=(CsvSource&& other) noexcept {
  text_ = std::move(other.text_);
  schema_ = std::move(other.schema_);
  lines_ = std::move(other.lines_);
  max_materialized_rows_.store(
      other.max_materialized_rows_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

StatusOr<Relation> CsvSource::ParseRows(int64_t begin, int64_t end) const {
  CONCLAVE_CHECK(begin >= 0 && begin <= end && end <= NumRows());
  const int cols = schema_.NumColumns();
  Relation relation{schema_};
  relation.Resize(end - begin);
  for (int64_t r = begin; r < end; ++r) {
    const DataLine& line = lines_[static_cast<size_t>(r)];
    const auto fields =
        SplitLine(text_.substr(line.begin, line.end - line.begin));
    if (static_cast<int>(fields.size()) != cols) {
      return InvalidArgumentError(
          StrFormat("line %zu has %zu fields, expected %d", line.line_number,
                    fields.size(), cols));
    }
    for (int c = 0; c < cols; ++c) {
      CONCLAVE_ASSIGN_OR_RETURN(
          int64_t value, ParseInt(fields[static_cast<size_t>(c)], line.line_number));
      relation.ColumnData(c)[r - begin] = value;
    }
  }
  // Relaxed CAS-max: concurrent shard parses race only on this witness value.
  int64_t seen = max_materialized_rows_.load(std::memory_order_relaxed);
  while (end - begin > seen &&
         !max_materialized_rows_.compare_exchange_weak(
             seen, end - begin, std::memory_order_relaxed)) {
  }
  return relation;
}

StatusOr<ShardedRelation> ParseCsvSharded(const std::string& text,
                                          int shard_count) {
  if (shard_count <= 0) {
    return InvalidArgumentError("shard_count must be positive");
  }
  CONCLAVE_ASSIGN_OR_RETURN(CsvSource source, CsvSource::FromText(text));

  // Parse shard-parallel: shard boundaries are the SplitEven row ranges, so the
  // shard layout matches the canonical contiguous split.
  const int64_t rows = source.NumRows();
  ShardedRelation sharded{source.schema()};
  std::vector<Relation> shards(static_cast<size_t>(shard_count),
                               Relation{source.schema()});
  std::vector<Status> shard_status(static_cast<size_t>(shard_count), Status::Ok());
  ParallelFor(0, shard_count, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      StatusOr<Relation> shard = source.ParseRows(rows * s / shard_count,
                                                  rows * (s + 1) / shard_count);
      if (!shard.ok()) {
        shard_status[static_cast<size_t>(s)] = shard.status();
        return;
      }
      shards[static_cast<size_t>(s)] = std::move(*shard);
    }
  }, /*grain=*/1);
  // Earliest shard's error wins: shards cover ascending line ranges, so this is
  // the error the sequential parser reports.
  for (const Status& status : shard_status) {
    CONCLAVE_RETURN_IF_ERROR(status);
  }
  for (Relation& shard : shards) {
    sharded.AddShard(std::move(shard));
  }
  return sharded;
}

StatusOr<ShardedRelation> ReadCsvSharded(const std::string& path,
                                         int shard_count) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError(StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvSharded(buffer.str(), shard_count);
}

StatusOr<Relation> ReadCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError(StrFormat("cannot open '%s' for reading", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str());
}

Status WriteCsv(const Relation& relation, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return InvalidArgumentError(StrFormat("cannot open '%s' for writing",
                                          path.c_str()));
  }
  file << ToCsv(relation);
  if (!file) {
    return InternalError(StrFormat("failed writing '%s'", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace conclave
