// Relation schemas: ordered, named integer columns with optional trust annotations.
//
// All cells are 64-bit signed integers, matching the paper's prototype (cc.INT); the
// evaluation queries (credit scores, taxi fares, diagnoses) are integer-only, and both
// Sharemind and Obliv-C natively compute over integer rings.
#ifndef CONCLAVE_RELATIONAL_SCHEMA_H_
#define CONCLAVE_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "conclave/common/party.h"
#include "conclave/common/status.h"

namespace conclave {

// One column definition. `trust_set` is the *annotation* from the query author
// (Listing 1, line 8: Column("ssn", cc.INT, trust=[pA])); the compiler later derives
// propagated trust sets for intermediate relations from these.
struct ColumnDef {
  std::string name;
  PartySet trust_set;

  ColumnDef() = default;
  explicit ColumnDef(std::string column_name) : name(std::move(column_name)) {}
  ColumnDef(std::string column_name, PartySet trust)
      : name(std::move(column_name)), trust_set(trust) {}

  bool operator==(const ColumnDef& other) const {
    return name == other.name && trust_set == other.trust_set;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  // Convenience: columns with empty trust sets.
  static Schema Of(std::initializer_list<std::string> names);

  int NumColumns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& Column(int index) const;
  ColumnDef& MutableColumn(int index);
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Index of the column named `name`, or an error listing the schema.
  StatusOr<int> IndexOf(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  // Resolves a list of names to indices, failing on the first unknown name.
  StatusOr<std::vector<int>> IndicesOf(const std::vector<std::string>& names) const;

  // "(ssn{0}, zip{}, score{})" — names with trust annotations.
  std::string ToString() const;

  // True if names match position-wise (trust sets may differ). Concat requires this.
  bool NamesMatch(const Schema& other) const;

  bool operator==(const Schema& other) const { return columns_ == other.columns_; }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_SCHEMA_H_
