// Shard-aware cleartext kernels over shard pointer lists.
//
// Every kernel takes its input as a non-owning list of shard pointers (an unsharded
// relation participates as a one-entry list) and preserves the canonical-order
// invariant documented in sharded.h: the returned shards, concatenated in order, are
// bit-identical to the corresponding unsharded ops:: kernel applied to the
// coalesced input. Three kernel families:
//
//  * shard-local (Filter / Project / Arithmetic / Limit): each shard is processed
//    independently; the input's shard structure carries through.
//  * exchange-based (Join): both sides hash-repartition on the join key (the
//    exchange step), co-partitioned buckets join independently, and the bucket
//    outputs merge back into the unsharded order by row provenance (global left row
//    ids are disjoint across buckets).
//  * partial-then-merge (Aggregate / SortBy / Distinct): per-shard partials
//    (partial accumulators, sorted runs, deduped runs) merge into the unsharded
//    result, which re-splits into `out_shard_count` contiguous shards.
//
// All kernels fan out over the calling thread's pool (ParallelFor over shards, with
// the per-shard ops' own morsel loops nesting inside), and none of them touches the
// SimNetwork: sharding changes wall clock only, never virtual time.
#ifndef CONCLAVE_RELATIONAL_SHARD_OPS_H_
#define CONCLAVE_RELATIONAL_SHARD_OPS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "conclave/relational/ops.h"
#include "conclave/relational/sharded.h"
#include "conclave/relational/spill.h"

namespace conclave {
namespace ops {

// Bucket of a key tuple under the exchange hash: SplitMix64-mixed over the key
// cells, mod `bucket_count`. Deterministic; exposed for tests.
int ShardOfKey(std::span<const int64_t> key, int bucket_count);

// The exchange (repartition) step: scatters the rows of `shards` into
// `bucket_count` hash-partitioned buckets keyed on `key_columns`. Rows keep their
// canonical relative order inside each bucket (the scatter walks shards in shard
// order, rows in row order). When `bucket_gids` is non-null, bucket_gids[b][i] is
// the canonical global row index of bucket b's row i — the provenance the join's
// merge step uses to restore the unsharded output order.
std::vector<Relation> ExchangeByHash(std::span<const Relation* const> shards,
                                     std::span<const int> key_columns,
                                     int bucket_count,
                                     std::vector<std::vector<int64_t>>* bucket_gids);

// --- Shard-local kernels (output shard structure == input shard structure) --------
ShardedRelation ShardedFilter(std::span<const Relation* const> shards,
                              const FilterPredicate& predicate);
ShardedRelation ShardedProject(std::span<const Relation* const> shards,
                               std::span<const int> columns);
ShardedRelation ShardedArithmetic(std::span<const Relation* const> shards,
                                  const ArithSpec& spec);
// Keeps the first `count` rows of the canonical order (a prefix across shards).
ShardedRelation ShardedLimit(std::span<const Relation* const> shards, int64_t count);
// Copies the canonical order into `out_shard_count` contiguous shards (the
// sharded concat: feed it the inputs' combined shard list).
ShardedRelation ShardedRebalance(std::span<const Relation* const> shards,
                                 int out_shard_count);

// --- Exchange-based partitioned hash join -----------------------------------------
// Repartitions both sides into `shard_count` co-partitioned buckets, joins each
// bucket, and merges the bucket outputs back into ops::Join's row order. Output is
// re-split into `shard_count` contiguous shards.
//
// The blocking kernels below take an optional per-instance memory budget
// (DESIGN.md §12): with mem_budget_rows > 0 each shard's (or bucket's) blocking
// step runs through the spill:: kernels, which are bit-identical to the ops::
// kernels, so the sharded results stay bit-identical at every budget. Physical
// spill stats from the per-shard instances merge into `spill_stats` in shard
// order (sums, plus a max over peak residency).
ShardedRelation ShardedJoin(std::span<const Relation* const> left,
                            std::span<const Relation* const> right,
                            std::span<const int> left_keys,
                            std::span<const int> right_keys, int shard_count,
                            int64_t mem_budget_rows = 0,
                            spill::SpillStats* spill_stats = nullptr);

// --- Partial-then-merge kernels ---------------------------------------------------
// Partial-aggregate-then-merge group-by: per-shard partial aggregates combine into
// exactly ops::Aggregate's output (sum/count/min/max partials are associative and
// int64 addition is commutative mod 2^64, so the combine is shard-count-invariant;
// kMean finalizes sum/count after the merge with the same truncating division).
ShardedRelation ShardedAggregate(std::span<const Relation* const> shards,
                                 std::span<const int> group_columns, AggKind kind,
                                 int agg_column, const std::string& output_name,
                                 int out_shard_count, int64_t mem_budget_rows = 0,
                                 spill::SpillStats* spill_stats = nullptr);
// Per-shard stable sort + k-way stable merge (ties resolve to the lower shard, so
// the result is the global stable sort of the canonical order).
ShardedRelation ShardedSortBy(std::span<const Relation* const> shards,
                              std::span<const int> columns, bool ascending,
                              int out_shard_count, int64_t mem_budget_rows = 0,
                              spill::SpillStats* spill_stats = nullptr);
// Per-shard sorted dedup + k-way merge with cross-shard dedup.
ShardedRelation ShardedDistinct(std::span<const Relation* const> shards,
                                std::span<const int> columns, int out_shard_count,
                                int64_t mem_budget_rows = 0,
                                spill::SpillStats* spill_stats = nullptr);

}  // namespace ops
}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_SHARD_OPS_H_
