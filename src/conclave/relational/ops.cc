#include "conclave/relational/ops.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "conclave/common/strings.h"
#include "conclave/common/thread_pool.h"

namespace conclave {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, int64_t lhs, int64_t rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kCount:
      return "count";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kMean:
      return "mean";
  }
  return "?";
}

const char* WindowFnName(WindowFn fn) {
  switch (fn) {
    case WindowFn::kRowNumber:
      return "row_number";
    case WindowFn::kLag:
      return "lag";
    case WindowFn::kRunningSum:
      return "running_sum";
  }
  return "?";
}

const char* ArithKindName(ArithKind kind) {
  switch (kind) {
    case ArithKind::kAdd:
      return "+";
    case ArithKind::kSub:
      return "-";
    case ArithKind::kMul:
      return "*";
    case ArithKind::kDiv:
      return "/";
  }
  return "?";
}

namespace ops {
namespace {

// Mixes a multi-column key into one hash (SplitMix64 finalizer per word).
struct KeyHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int64_t v : key) {
      uint64_t z = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + h;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return static_cast<size_t>(h);
  }
};

std::vector<int64_t> ExtractKey(const Relation& rel, int64_t row,
                                std::span<const int> columns) {
  std::vector<int64_t> key;
  key.reserve(columns.size());
  for (int c : columns) {
    key.push_back(rel.At(row, c));
  }
  return key;
}

// Lexicographic three-way compare of two rows restricted to `columns`.
int CompareRows(const Relation& rel, int64_t row_a, int64_t row_b,
                std::span<const int> columns) {
  for (int c : columns) {
    const int64_t a = rel.At(row_a, c);
    const int64_t b = rel.At(row_b, c);
    if (a < b) {
      return -1;
    }
    if (a > b) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

Relation Project(const Relation& input, std::span<const int> columns) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (int c : columns) {
    defs.push_back(input.schema().Column(c));
  }
  Relation output{Schema(std::move(defs))};
  const int64_t rows = input.NumRows();
  auto& cells = output.mutable_cells();
  cells.resize(static_cast<size_t>(rows) * columns.size());
  // Output offsets are a pure function of the row index, so morsels write disjoint
  // pre-sized ranges and the result is byte-identical to the serial loop.
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    size_t w = static_cast<size_t>(lo) * columns.size();
    for (int64_t r = lo; r < hi; ++r) {
      for (int c : columns) {
        cells[w++] = input.At(r, c);
      }
    }
  });
  return output;
}

Relation Filter(const Relation& input, const FilterPredicate& predicate) {
  Relation output{input.schema()};
  auto& cells = output.mutable_cells();
  const int64_t rows = input.NumRows();
  // Morsel parallelism: each fixed row range filters into a private buffer; the
  // buffers are stitched back in range order, so the output row order matches the
  // serial scan exactly regardless of thread count.
  const int64_t grain = kDefaultGrainRows;
  const int64_t num_chunks = rows == 0 ? 0 : (rows + grain - 1) / grain;
  std::vector<std::vector<int64_t>> partials(static_cast<size_t>(num_chunks));
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    std::vector<int64_t>& local = partials[static_cast<size_t>(lo / grain)];
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t lhs = input.At(r, predicate.column);
      const int64_t rhs = predicate.rhs_is_column ? input.At(r, predicate.rhs_column)
                                                  : predicate.rhs_literal;
      if (EvalCompare(predicate.op, lhs, rhs)) {
        auto row = input.Row(r);
        local.insert(local.end(), row.begin(), row.end());
      }
    }
  }, grain);
  for (const std::vector<int64_t>& local : partials) {
    cells.insert(cells.end(), local.begin(), local.end());
  }
  return output;
}

Schema JoinOutputSchema(const Schema& left, const Schema& right,
                        std::span<const int> left_keys,
                        std::span<const int> right_keys,
                        std::vector<int>* left_rest, std::vector<int>* right_rest) {
  CONCLAVE_CHECK_EQ(left_keys.size(), right_keys.size());
  CONCLAVE_CHECK_GT(left_keys.size(), 0u);
  std::vector<ColumnDef> defs;
  for (int c : left_keys) {
    defs.push_back(left.Column(c));
  }
  for (int c = 0; c < left.NumColumns(); ++c) {
    if (std::find(left_keys.begin(), left_keys.end(), c) == left_keys.end()) {
      defs.push_back(left.Column(c));
      if (left_rest != nullptr) {
        left_rest->push_back(c);
      }
    }
  }
  for (int c = 0; c < right.NumColumns(); ++c) {
    if (std::find(right_keys.begin(), right_keys.end(), c) == right_keys.end()) {
      defs.push_back(right.Column(c));
      if (right_rest != nullptr) {
        right_rest->push_back(c);
      }
    }
  }
  return Schema(std::move(defs));
}

Relation Join(const Relation& left, const Relation& right,
              std::span<const int> left_keys, std::span<const int> right_keys) {
  std::vector<int> left_rest;
  std::vector<int> right_rest;
  Relation output{JoinOutputSchema(left.schema(), right.schema(), left_keys,
                                   right_keys, &left_rest, &right_rest)};

  // Build side: hash the right relation's keys to row indices.
  std::unordered_map<std::vector<int64_t>, std::vector<int64_t>, KeyHash> index;
  index.reserve(static_cast<size_t>(right.NumRows()));
  for (int64_t r = 0; r < right.NumRows(); ++r) {
    index[ExtractKey(right, r, right_keys)].push_back(r);
  }

  auto& cells = output.mutable_cells();
  for (int64_t lr = 0; lr < left.NumRows(); ++lr) {
    const auto it = index.find(ExtractKey(left, lr, left_keys));
    if (it == index.end()) {
      continue;
    }
    for (int64_t rr : it->second) {
      for (int c : left_keys) {
        cells.push_back(left.At(lr, c));
      }
      for (int c : left_rest) {
        cells.push_back(left.At(lr, c));
      }
      for (int c : right_rest) {
        cells.push_back(right.At(rr, c));
      }
    }
  }
  return output;
}

Relation Aggregate(const Relation& input, std::span<const int> group_columns,
                   AggKind kind, int agg_column, const std::string& output_name) {
  struct Accumulator {
    int64_t sum = 0;
    int64_t count = 0;
    int64_t min = std::numeric_limits<int64_t>::max();
    int64_t max = std::numeric_limits<int64_t>::min();
  };

  // Pre-combine morsels: each row range aggregates into a private hash map, and the
  // partial maps merge in range order. Accumulator merge is associative and the
  // output is sorted by group key below, so the result is identical to a serial
  // scan for any thread count.
  using GroupMap = std::unordered_map<std::vector<int64_t>, Accumulator, KeyHash>;
  const int64_t rows = input.NumRows();
  const int64_t grain = kDefaultGrainRows;
  const int64_t num_chunks = rows == 0 ? 0 : (rows + grain - 1) / grain;
  std::vector<GroupMap> partials(static_cast<size_t>(num_chunks));
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    GroupMap& local = partials[static_cast<size_t>(lo / grain)];
    for (int64_t r = lo; r < hi; ++r) {
      auto& acc = local[ExtractKey(input, r, group_columns)];
      acc.count += 1;
      if (kind != AggKind::kCount) {
        const int64_t v = input.At(r, agg_column);
        acc.sum += v;
        acc.min = std::min(acc.min, v);
        acc.max = std::max(acc.max, v);
      }
    }
  }, grain);
  GroupMap groups;
  if (!partials.empty()) {
    groups = std::move(partials.front());
    for (size_t i = 1; i < partials.size(); ++i) {
      for (auto& [key, partial] : partials[i]) {
        Accumulator& acc = groups[key];
        acc.sum += partial.sum;
        acc.count += partial.count;
        acc.min = std::min(acc.min, partial.min);
        acc.max = std::max(acc.max, partial.max);
      }
    }
  }

  std::vector<ColumnDef> defs;
  for (int c : group_columns) {
    defs.push_back(input.schema().Column(c));
  }
  defs.emplace_back(output_name);
  Relation output{Schema(std::move(defs))};

  // Sort group keys for a deterministic output order.
  std::vector<const std::pair<const std::vector<int64_t>, Accumulator>*> entries;
  entries.reserve(groups.size());
  for (const auto& entry : groups) {
    entries.push_back(&entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  auto& cells = output.mutable_cells();
  for (const auto* entry : entries) {
    cells.insert(cells.end(), entry->first.begin(), entry->first.end());
    const Accumulator& acc = entry->second;
    switch (kind) {
      case AggKind::kSum:
        cells.push_back(acc.sum);
        break;
      case AggKind::kCount:
        cells.push_back(acc.count);
        break;
      case AggKind::kMin:
        cells.push_back(acc.min);
        break;
      case AggKind::kMax:
        cells.push_back(acc.max);
        break;
      case AggKind::kMean:
        cells.push_back(acc.count == 0 ? 0 : acc.sum / acc.count);
        break;
    }
  }
  return output;
}

Relation Concat(std::span<const Relation> inputs) {
  std::vector<const Relation*> ptrs;
  ptrs.reserve(inputs.size());
  for (const Relation& rel : inputs) {
    ptrs.push_back(&rel);
  }
  return Concat(std::span<const Relation* const>(ptrs));
}

Relation Concat(std::span<const Relation* const> inputs) {
  CONCLAVE_CHECK_GT(inputs.size(), 0u);
  for (const Relation* rel : inputs.subspan(1)) {
    CONCLAVE_CHECK(inputs[0]->schema().NamesMatch(rel->schema()));
  }
  Relation output{inputs[0]->schema()};
  std::vector<size_t> offsets(inputs.size());
  size_t total_cells = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    offsets[i] = total_cells;
    total_cells += inputs[i]->cells().size();
  }
  auto& cells = output.mutable_cells();
  cells.resize(total_cells);
  // One copy per input, in parallel; each writes a disjoint pre-sized range.
  ParallelFor(0, static_cast<int64_t>(inputs.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const auto& src = inputs[static_cast<size_t>(i)]->cells();
      std::copy(src.begin(), src.end(),
                cells.begin() + static_cast<int64_t>(offsets[static_cast<size_t>(i)]));
    }
  }, /*grain=*/1);
  return output;
}

Relation SortBy(const Relation& input, std::span<const int> columns, bool ascending) {
  std::vector<int64_t> order(static_cast<size_t>(input.NumRows()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const int cmp = CompareRows(input, a, b, columns);
    return ascending ? cmp < 0 : cmp > 0;
  });

  Relation output{input.schema()};
  output.Reserve(input.NumRows());
  auto& cells = output.mutable_cells();
  for (int64_t r : order) {
    auto row = input.Row(r);
    cells.insert(cells.end(), row.begin(), row.end());
  }
  return output;
}

Relation Distinct(const Relation& input, std::span<const int> columns) {
  Relation projected = Project(input, columns);
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(static_cast<size_t>(projected.NumRows()));
  for (int64_t r = 0; r < projected.NumRows(); ++r) {
    auto row = projected.Row(r);
    rows.emplace_back(row.begin(), row.end());
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  Relation output{projected.schema()};
  output.Reserve(static_cast<int64_t>(rows.size()));
  for (const auto& row : rows) {
    output.AppendRow(row);
  }
  return output;
}

Relation Limit(const Relation& input, int64_t count) {
  CONCLAVE_CHECK_GE(count, 0);
  Relation output{input.schema()};
  const int64_t rows = std::min(count, input.NumRows());
  output.Reserve(rows);
  auto& cells = output.mutable_cells();
  cells.insert(cells.end(), input.cells().begin(),
               input.cells().begin() + rows * input.NumColumns());
  return output;
}

Relation Arithmetic(const Relation& input, const ArithSpec& spec) {
  std::vector<ColumnDef> defs = input.schema().columns();
  defs.emplace_back(spec.result_name);
  Relation output{Schema(std::move(defs))};
  const int64_t rows = input.NumRows();
  const int out_cols = input.NumColumns() + 1;
  auto& cells = output.mutable_cells();
  cells.resize(static_cast<size_t>(rows) * out_cols);
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    size_t w = static_cast<size_t>(lo) * out_cols;
    for (int64_t r = lo; r < hi; ++r) {
      auto row = input.Row(r);
      std::copy(row.begin(), row.end(), cells.begin() + static_cast<int64_t>(w));
      w += row.size();
      const int64_t lhs = input.At(r, spec.lhs_column);
      const int64_t rhs =
          spec.rhs_is_column ? input.At(r, spec.rhs_column) : spec.rhs_literal;
      int64_t result = 0;
      switch (spec.kind) {
        case ArithKind::kAdd:
          result = lhs + rhs;
          break;
        case ArithKind::kSub:
          result = lhs - rhs;
          break;
        case ArithKind::kMul:
          result = lhs * rhs;
          break;
        case ArithKind::kDiv:
          result = rhs == 0 ? 0 : (lhs * spec.scale) / rhs;
          break;
      }
      cells[w++] = result;
    }
  });
  return output;
}

Relation Enumerate(const Relation& input, const std::string& index_name) {
  std::vector<ColumnDef> defs = input.schema().columns();
  defs.emplace_back(index_name);
  Relation output{Schema(std::move(defs))};
  output.Reserve(input.NumRows());
  auto& cells = output.mutable_cells();
  for (int64_t r = 0; r < input.NumRows(); ++r) {
    auto row = input.Row(r);
    cells.insert(cells.end(), row.begin(), row.end());
    cells.push_back(r);
  }
  return output;
}

Relation Window(const Relation& input, const WindowSpec& spec) {
  // Evaluate in (partition, order) order; the sorted relation is also the output's
  // row order, so downstream sortedness tracking can rely on it.
  std::vector<int> sort_columns = spec.partition_columns;
  sort_columns.push_back(spec.order_column);
  Relation sorted = SortBy(input, sort_columns);

  std::vector<ColumnDef> defs = sorted.schema().columns();
  defs.emplace_back(spec.output_name);
  Relation output{Schema(std::move(defs))};
  output.Reserve(sorted.NumRows());
  auto& cells = output.mutable_cells();

  int64_t row_number = 0;
  int64_t running_sum = 0;
  int64_t prev_value = 0;
  for (int64_t r = 0; r < sorted.NumRows(); ++r) {
    const bool new_partition =
        r == 0 || CompareRows(sorted, r - 1, r, spec.partition_columns) != 0;
    if (new_partition) {
      row_number = 0;
      running_sum = 0;
      prev_value = 0;
    }
    row_number += 1;
    int64_t computed = 0;
    switch (spec.fn) {
      case WindowFn::kRowNumber:
        computed = row_number;
        break;
      case WindowFn::kLag:
        computed = prev_value;
        prev_value = sorted.At(r, spec.value_column);
        break;
      case WindowFn::kRunningSum:
        running_sum += sorted.At(r, spec.value_column);
        computed = running_sum;
        break;
    }
    auto row = sorted.Row(r);
    cells.insert(cells.end(), row.begin(), row.end());
    cells.push_back(computed);
  }
  return output;
}

bool IsSortedBy(const Relation& input, std::span<const int> columns) {
  for (int64_t r = 1; r < input.NumRows(); ++r) {
    if (CompareRows(input, r - 1, r, columns) > 0) {
      return false;
    }
  }
  return true;
}

Relation PadToPowerOfTwo(const Relation& input, int64_t sentinel_stream) {
  const int64_t target = PaddedRowCount(input.NumRows());
  Relation output = input;
  output.Reserve(target);
  // Unique sentinel per cell: base + stream * 2^32 + counter. Streams separate pad
  // sites (parties/branches); the counter separates cells within a site.
  int64_t counter = 0;
  for (int64_t r = input.NumRows(); r < target; ++r) {
    std::vector<int64_t> row(static_cast<size_t>(input.NumColumns()));
    for (auto& cell : row) {
      cell = kSentinelBase + sentinel_stream * (int64_t{1} << 32) + counter++;
    }
    output.AppendRow(row);
  }
  return output;
}

Relation StripSentinelRows(const Relation& input) {
  Relation output{input.schema()};
  auto& cells = output.mutable_cells();
  for (int64_t r = 0; r < input.NumRows(); ++r) {
    auto row = input.Row(r);
    const bool padded = std::any_of(row.begin(), row.end(),
                                    [](int64_t cell) { return cell >= kSentinelBase; });
    if (!padded) {
      cells.insert(cells.end(), row.begin(), row.end());
    }
  }
  return output;
}

}  // namespace ops
}  // namespace conclave
