#include "conclave/relational/ops.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "conclave/common/cpu.h"
#include "conclave/common/rng.h"
#include "conclave/common/strings.h"
#include "conclave/common/thread_pool.h"

namespace conclave {

// The cpu:: kernel enums mirror the relational enums member-for-member so the
// kernels can be dispatched with a cast (common/ cannot include relational/).
static_assert(static_cast<int>(cpu::Cmp::kEq) == static_cast<int>(CompareOp::kEq) &&
              static_cast<int>(cpu::Cmp::kNe) == static_cast<int>(CompareOp::kNe) &&
              static_cast<int>(cpu::Cmp::kLt) == static_cast<int>(CompareOp::kLt) &&
              static_cast<int>(cpu::Cmp::kLe) == static_cast<int>(CompareOp::kLe) &&
              static_cast<int>(cpu::Cmp::kGt) == static_cast<int>(CompareOp::kGt) &&
              static_cast<int>(cpu::Cmp::kGe) == static_cast<int>(CompareOp::kGe));
static_assert(
    static_cast<int>(cpu::Arith::kAdd) == static_cast<int>(ArithKind::kAdd) &&
    static_cast<int>(cpu::Arith::kSub) == static_cast<int>(ArithKind::kSub) &&
    static_cast<int>(cpu::Arith::kMul) == static_cast<int>(ArithKind::kMul) &&
    static_cast<int>(cpu::Arith::kDiv) == static_cast<int>(ArithKind::kDiv));

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, int64_t lhs, int64_t rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kCount:
      return "count";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kMean:
      return "mean";
  }
  return "?";
}

const char* WindowFnName(WindowFn fn) {
  switch (fn) {
    case WindowFn::kRowNumber:
      return "row_number";
    case WindowFn::kLag:
      return "lag";
    case WindowFn::kRunningSum:
      return "running_sum";
  }
  return "?";
}

const char* ArithKindName(ArithKind kind) {
  switch (kind) {
    case ArithKind::kAdd:
      return "+";
    case ArithKind::kSub:
      return "-";
    case ArithKind::kMul:
      return "*";
    case ArithKind::kDiv:
      return "/";
  }
  return "?";
}

namespace ops {
namespace {

// Mixes a multi-column key into one hash (SplitMix64 finalizer per word).
struct KeyHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    uint64_t h = kHashChainSeed;
    for (int64_t v : key) {
      h = HashChainStep(h, static_cast<uint64_t>(v));
    }
    return static_cast<size_t>(h);
  }
};

// Base pointers of the given columns; hoists the per-access column lookup out of
// row loops (comparators, key extraction).
std::vector<const int64_t*> ColumnPtrs(const Relation& rel,
                                       std::span<const int> columns) {
  std::vector<const int64_t*> ptrs;
  ptrs.reserve(columns.size());
  for (int c : columns) {
    ptrs.push_back(rel.ColumnSpan(c).data());
  }
  return ptrs;
}

std::vector<int64_t> ExtractKey(std::span<const int64_t* const> columns,
                                int64_t row) {
  std::vector<int64_t> key;
  key.reserve(columns.size());
  for (const int64_t* column : columns) {
    key.push_back(column[row]);
  }
  return key;
}

// Lexicographic three-way compare of two rows restricted to the given columns.
int CompareRowsAt(std::span<const int64_t* const> columns, int64_t row_a,
                  int64_t row_b) {
  for (const int64_t* column : columns) {
    const int64_t a = column[row_a];
    const int64_t b = column[row_b];
    if (a < b) {
      return -1;
    }
    if (a > b) {
      return 1;
    }
  }
  return 0;
}

// Stitches per-morsel index buffers (chunk order == row order) into one selection
// vector. Shared by every selection-producing kernel so the output row order is
// the serial scan order at any pool size.
std::vector<int64_t> ConcatPartials(std::vector<std::vector<int64_t>> partials) {
  size_t total = 0;
  for (const auto& partial : partials) {
    total += partial.size();
  }
  std::vector<int64_t> merged;
  merged.reserve(total);
  for (const auto& partial : partials) {
    merged.insert(merged.end(), partial.begin(), partial.end());
  }
  return merged;
}

}  // namespace

void GatherColumnInto(const Relation& src, int src_col,
                      std::span<const int64_t> rows, int64_t* dst) {
  // Contiguous-destination gather; morsels write disjoint ranges, so the result
  // is byte-identical to the serial loop.
  const int64_t* const column = rows.empty() ? nullptr : src.ColumnSpan(src_col).data();
  ParallelFor(0, static_cast<int64_t>(rows.size()), [&](int64_t lo, int64_t hi) {
    cpu::GatherI64(column, rows.data() + lo, static_cast<size_t>(hi - lo),
                   dst + lo);
  });
}

Relation GatherRows(const Relation& input, std::span<const int64_t> rows) {
  Relation output{input.schema()};
  output.Resize(static_cast<int64_t>(rows.size()));
  for (int c = 0; c < input.NumColumns(); ++c) {
    GatherColumnInto(input, c, rows, output.ColumnData(c));
  }
  return output;
}

Relation Project(const Relation& input, std::span<const int> columns) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (int c : columns) {
    defs.push_back(input.schema().Column(c));
  }
  Relation output{Schema(std::move(defs))};
  output.Resize(input.NumRows());
  // Column-major projection is K whole-column copies — no per-row work at all.
  for (size_t i = 0; i < columns.size(); ++i) {
    const auto src = input.ColumnSpan(columns[i]);
    std::copy(src.begin(), src.end(), output.ColumnData(static_cast<int>(i)));
  }
  return output;
}

namespace {

// Selection pass shared by Filter: emits the indices of passing rows in scan
// order via the dispatched cpu::SelectCompare kernel — each morsel writes into
// a full-width local buffer, then shrinks to the match count.
std::vector<int64_t> SelectRows(CompareOp op, const int64_t* lhs,
                                const int64_t* rhs, int64_t rhs_literal,
                                int64_t rows) {
  const int64_t grain = kDefaultGrainRows;
  const int64_t num_chunks = rows == 0 ? 0 : (rows + grain - 1) / grain;
  std::vector<std::vector<int64_t>> partials(static_cast<size_t>(num_chunks));
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    std::vector<int64_t>& local = partials[static_cast<size_t>(lo / grain)];
    local.resize(static_cast<size_t>(hi - lo));
    const size_t count = cpu::SelectCompare(
        static_cast<cpu::Cmp>(op), lhs + lo, rhs != nullptr ? rhs + lo : nullptr,
        rhs_literal, /*base=*/lo, static_cast<size_t>(hi - lo), local.data());
    local.resize(count);
  }, grain);
  return ConcatPartials(std::move(partials));
}

}  // namespace

Relation Filter(const Relation& input, const FilterPredicate& predicate) {
  const int64_t rows = input.NumRows();
  const int64_t* const lhs =
      rows == 0 ? nullptr : input.ColumnSpan(predicate.column).data();
  const int64_t* const rhs = (rows == 0 || !predicate.rhs_is_column)
                                 ? nullptr
                                 : input.ColumnSpan(predicate.rhs_column).data();
  return GatherRows(input,
                    SelectRows(predicate.op, lhs, rhs, predicate.rhs_literal, rows));
}

Schema JoinOutputSchema(const Schema& left, const Schema& right,
                        std::span<const int> left_keys,
                        std::span<const int> right_keys,
                        std::vector<int>* left_rest, std::vector<int>* right_rest) {
  CONCLAVE_CHECK_EQ(left_keys.size(), right_keys.size());
  CONCLAVE_CHECK_GT(left_keys.size(), 0u);
  std::vector<ColumnDef> defs;
  for (int c : left_keys) {
    defs.push_back(left.Column(c));
  }
  for (int c = 0; c < left.NumColumns(); ++c) {
    if (std::find(left_keys.begin(), left_keys.end(), c) == left_keys.end()) {
      defs.push_back(left.Column(c));
      if (left_rest != nullptr) {
        left_rest->push_back(c);
      }
    }
  }
  for (int c = 0; c < right.NumColumns(); ++c) {
    if (std::find(right_keys.begin(), right_keys.end(), c) == right_keys.end()) {
      defs.push_back(right.Column(c));
      if (right_rest != nullptr) {
        right_rest->push_back(c);
      }
    }
  }
  return Schema(std::move(defs));
}

namespace {

// Probe result: matching (left row, right row) pairs in left-scan order with the
// build side's insertion order (ascending right row) inside each match set — the
// same output order as the historical row-at-a-time join.
struct JoinPairs {
  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
};

// Single-column equi-key fast path: int64 keys hash directly, no per-row key
// vector allocations on either side.
JoinPairs JoinPairsSingleKey(const Relation& left, const Relation& right,
                             int left_key, int right_key) {
  JoinPairs pairs;
  std::unordered_map<int64_t, std::vector<int64_t>> index;
  index.reserve(static_cast<size_t>(right.NumRows()));
  const int64_t* const rk =
      right.NumRows() == 0 ? nullptr : right.ColumnSpan(right_key).data();
  for (int64_t r = 0; r < right.NumRows(); ++r) {
    index[rk[r]].push_back(r);
  }
  const int64_t* const lk =
      left.NumRows() == 0 ? nullptr : left.ColumnSpan(left_key).data();
  for (int64_t lr = 0; lr < left.NumRows(); ++lr) {
    const auto it = index.find(lk[lr]);
    if (it == index.end()) {
      continue;
    }
    for (int64_t rr : it->second) {
      pairs.left_rows.push_back(lr);
      pairs.right_rows.push_back(rr);
    }
  }
  return pairs;
}

JoinPairs JoinPairsMultiKey(const Relation& left, const Relation& right,
                            std::span<const int> left_keys,
                            std::span<const int> right_keys) {
  JoinPairs pairs;
  std::unordered_map<std::vector<int64_t>, std::vector<int64_t>, KeyHash> index;
  index.reserve(static_cast<size_t>(right.NumRows()));
  const auto right_cols = ColumnPtrs(right, right_keys);
  for (int64_t r = 0; r < right.NumRows(); ++r) {
    index[ExtractKey(right_cols, r)].push_back(r);
  }
  const auto left_cols = ColumnPtrs(left, left_keys);
  for (int64_t lr = 0; lr < left.NumRows(); ++lr) {
    const auto it = index.find(ExtractKey(left_cols, lr));
    if (it == index.end()) {
      continue;
    }
    for (int64_t rr : it->second) {
      pairs.left_rows.push_back(lr);
      pairs.right_rows.push_back(rr);
    }
  }
  return pairs;
}

}  // namespace

void JoinRowPairs(const Relation& left, const Relation& right,
                  std::span<const int> left_keys, std::span<const int> right_keys,
                  std::vector<int64_t>* left_rows, std::vector<int64_t>* right_rows) {
  JoinPairs pairs =
      left_keys.size() == 1
          ? JoinPairsSingleKey(left, right, left_keys[0], right_keys[0])
          : JoinPairsMultiKey(left, right, left_keys, right_keys);
  *left_rows = std::move(pairs.left_rows);
  *right_rows = std::move(pairs.right_rows);
}

Relation Join(const Relation& left, const Relation& right,
              std::span<const int> left_keys, std::span<const int> right_keys) {
  std::vector<int> left_rest;
  std::vector<int> right_rest;
  Relation output{JoinOutputSchema(left.schema(), right.schema(), left_keys,
                                   right_keys, &left_rest, &right_rest)};
  JoinPairs pairs;
  JoinRowPairs(left, right, left_keys, right_keys, &pairs.left_rows,
               &pairs.right_rows);

  // Assemble per output column: contiguous gathers from the owning side.
  output.Resize(static_cast<int64_t>(pairs.left_rows.size()));
  int out_col = 0;
  for (int c : left_keys) {
    GatherColumnInto(left, c, pairs.left_rows, output.ColumnData(out_col++));
  }
  for (int c : left_rest) {
    GatherColumnInto(left, c, pairs.left_rows, output.ColumnData(out_col++));
  }
  for (int c : right_rest) {
    GatherColumnInto(right, c, pairs.right_rows, output.ColumnData(out_col++));
  }
  return output;
}

namespace {

struct Accumulator {
  int64_t sum = 0;
  int64_t count = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  void Merge(const Accumulator& other) {
    sum += other.sum;
    count += other.count;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
};

int64_t Finalize(const Accumulator& acc, AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return acc.sum;
    case AggKind::kCount:
      return acc.count;
    case AggKind::kMin:
      return acc.min;
    case AggKind::kMax:
      return acc.max;
    case AggKind::kMean:
      return acc.count == 0 ? 0 : acc.sum / acc.count;
  }
  return 0;
}

Schema AggregateOutputSchema(const Relation& input,
                             std::span<const int> group_columns,
                             const std::string& output_name) {
  std::vector<ColumnDef> defs;
  for (int c : group_columns) {
    defs.push_back(input.schema().Column(c));
  }
  defs.emplace_back(output_name);
  return Schema(std::move(defs));
}

// Single group column fast path: int64-keyed maps, key columns scanned
// contiguously, output written per column.
Relation AggregateSingleKey(const Relation& input, int group_column, AggKind kind,
                            int agg_column, const std::string& output_name) {
  using GroupMap = std::unordered_map<int64_t, Accumulator>;
  const int64_t rows = input.NumRows();
  const int64_t grain = kDefaultGrainRows;
  const int64_t num_chunks = rows == 0 ? 0 : (rows + grain - 1) / grain;
  std::vector<GroupMap> partials(static_cast<size_t>(num_chunks));
  const int64_t* const keys = rows == 0 ? nullptr : input.ColumnSpan(group_column).data();
  const int64_t* const vals =
      (rows == 0 || kind == AggKind::kCount) ? nullptr
                                             : input.ColumnSpan(agg_column).data();
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    GroupMap& local = partials[static_cast<size_t>(lo / grain)];
    const size_t n = static_cast<size_t>(hi - lo);
    // Sorted or low-cardinality inputs often present whole morsels of one
    // group: collapse those to vector reductions (same wrap-sum and min/max
    // as the per-row updates, so the result bits cannot differ).
    if (cpu::AllEqual(keys + lo, n)) {
      auto& acc = local[keys[lo]];
      acc.count += hi - lo;
      if (vals != nullptr) {
        acc.sum += cpu::SumWrap(vals + lo, n);
        acc.min = std::min(acc.min, cpu::MinOf(vals + lo, n));
        acc.max = std::max(acc.max, cpu::MaxOf(vals + lo, n));
      }
      return;
    }
    for (int64_t r = lo; r < hi; ++r) {
      auto& acc = local[keys[r]];
      acc.count += 1;
      if (vals != nullptr) {
        const int64_t v = vals[r];
        acc.sum += v;
        acc.min = std::min(acc.min, v);
        acc.max = std::max(acc.max, v);
      }
    }
  }, grain);
  GroupMap groups;
  if (!partials.empty()) {
    groups = std::move(partials.front());
    for (size_t i = 1; i < partials.size(); ++i) {
      for (auto& [key, partial] : partials[i]) {
        groups[key].Merge(partial);
      }
    }
  }

  std::vector<std::pair<int64_t, Accumulator>> entries(groups.begin(), groups.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const int group_cols[] = {group_column};
  Relation output{AggregateOutputSchema(input, group_cols, output_name)};
  output.Resize(static_cast<int64_t>(entries.size()));
  int64_t* const out_keys = output.ColumnData(0);
  int64_t* const out_vals = output.ColumnData(1);
  for (size_t i = 0; i < entries.size(); ++i) {
    out_keys[i] = entries[i].first;
    out_vals[i] = Finalize(entries[i].second, kind);
  }
  return output;
}

}  // namespace

Relation Aggregate(const Relation& input, std::span<const int> group_columns,
                   AggKind kind, int agg_column, const std::string& output_name) {
  if (group_columns.size() == 1) {
    return AggregateSingleKey(input, group_columns[0], kind, agg_column,
                              output_name);
  }

  // Pre-combine morsels: each row range aggregates into a private hash map, and the
  // partial maps merge in range order. Accumulator merge is associative and the
  // output is sorted by group key below, so the result is identical to a serial
  // scan for any thread count.
  using GroupMap = std::unordered_map<std::vector<int64_t>, Accumulator, KeyHash>;
  const int64_t rows = input.NumRows();
  const int64_t grain = kDefaultGrainRows;
  const int64_t num_chunks = rows == 0 ? 0 : (rows + grain - 1) / grain;
  std::vector<GroupMap> partials(static_cast<size_t>(num_chunks));
  const auto group_cols = ColumnPtrs(input, group_columns);
  const int64_t* const vals =
      (rows == 0 || kind == AggKind::kCount) ? nullptr
                                             : input.ColumnSpan(agg_column).data();
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    GroupMap& local = partials[static_cast<size_t>(lo / grain)];
    for (int64_t r = lo; r < hi; ++r) {
      auto& acc = local[ExtractKey(group_cols, r)];
      acc.count += 1;
      if (vals != nullptr) {
        const int64_t v = vals[r];
        acc.sum += v;
        acc.min = std::min(acc.min, v);
        acc.max = std::max(acc.max, v);
      }
    }
  }, grain);
  GroupMap groups;
  if (!partials.empty()) {
    groups = std::move(partials.front());
    for (size_t i = 1; i < partials.size(); ++i) {
      for (auto& [key, partial] : partials[i]) {
        groups[key].Merge(partial);
      }
    }
  }

  Relation output{AggregateOutputSchema(input, group_columns, output_name)};

  // Sort group keys for a deterministic output order.
  std::vector<const std::pair<const std::vector<int64_t>, Accumulator>*> entries;
  entries.reserve(groups.size());
  for (const auto& entry : groups) {
    entries.push_back(&entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  output.Resize(static_cast<int64_t>(entries.size()));
  const int num_group_cols = static_cast<int>(group_columns.size());
  for (int c = 0; c < num_group_cols; ++c) {
    int64_t* const out = output.ColumnData(c);
    for (size_t i = 0; i < entries.size(); ++i) {
      out[i] = entries[i]->first[static_cast<size_t>(c)];
    }
  }
  int64_t* const out_vals = output.ColumnData(num_group_cols);
  for (size_t i = 0; i < entries.size(); ++i) {
    out_vals[i] = Finalize(entries[i]->second, kind);
  }
  return output;
}

Relation Concat(std::span<const Relation> inputs) {
  std::vector<const Relation*> ptrs;
  ptrs.reserve(inputs.size());
  for (const Relation& rel : inputs) {
    ptrs.push_back(&rel);
  }
  return Concat(std::span<const Relation* const>(ptrs));
}

Relation Concat(std::span<const Relation* const> inputs) {
  CONCLAVE_CHECK_GT(inputs.size(), 0u);
  for (const Relation* rel : inputs.subspan(1)) {
    CONCLAVE_CHECK(inputs[0]->schema().NamesMatch(rel->schema()));
  }
  Relation output{inputs[0]->schema()};
  std::vector<int64_t> offsets(inputs.size());
  int64_t total_rows = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    offsets[i] = total_rows;
    total_rows += inputs[i]->NumRows();
  }
  output.Resize(total_rows);
  // Column-major concat is inputs x columns contiguous range copies, in parallel;
  // each copy writes a disjoint pre-sized range.
  const int cols = output.NumColumns();
  ParallelFor(0, static_cast<int64_t>(inputs.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const Relation& src = *inputs[static_cast<size_t>(i)];
      for (int c = 0; c < cols; ++c) {
        const auto column = src.ColumnSpan(c);
        std::copy(column.begin(), column.end(),
                  output.ColumnData(c) + offsets[static_cast<size_t>(i)]);
      }
    }
  }, /*grain=*/1);
  return output;
}

Relation SortBy(const Relation& input, std::span<const int> columns, bool ascending) {
  std::vector<int64_t> order(static_cast<size_t>(input.NumRows()));
  std::iota(order.begin(), order.end(), 0);
  // Sorting is genuinely row-oriented: the comparator walks the sort columns via
  // hoisted base pointers, then the output materializes as per-column gathers.
  const auto sort_cols = ColumnPtrs(input, columns);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const int cmp = CompareRowsAt(sort_cols, a, b);
    return ascending ? cmp < 0 : cmp > 0;
  });
  return GatherRows(input, order);
}

Relation Distinct(const Relation& input, std::span<const int> columns) {
  Relation projected = Project(input, columns);
  // Order row indices lexicographically, then keep the first row of each run of
  // equal rows; matches the historical sort+unique over materialized row tuples.
  std::vector<int64_t> order(static_cast<size_t>(projected.NumRows()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> all_columns(static_cast<size_t>(projected.NumColumns()));
  std::iota(all_columns.begin(), all_columns.end(), 0);
  const auto cols = ColumnPtrs(projected, all_columns);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return CompareRowsAt(cols, a, b) < 0;
  });
  std::vector<int64_t> unique;
  unique.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    if (i == 0 || CompareRowsAt(cols, order[i - 1], order[i]) != 0) {
      unique.push_back(order[i]);
    }
  }
  return GatherRows(projected, unique);
}

Relation Limit(const Relation& input, int64_t count) {
  CONCLAVE_CHECK_GE(count, 0);
  Relation output{input.schema()};
  const int64_t rows = std::min(count, input.NumRows());
  output.Resize(rows);
  for (int c = 0; c < input.NumColumns(); ++c) {
    const auto src = input.ColumnSpan(c);
    std::copy(src.begin(), src.begin() + rows, output.ColumnData(c));
  }
  return output;
}

Relation Arithmetic(const Relation& input, const ArithSpec& spec) {
  std::vector<ColumnDef> defs = input.schema().columns();
  defs.emplace_back(spec.result_name);
  Relation output{Schema(std::move(defs))};
  const int64_t rows = input.NumRows();
  output.Resize(rows);
  // Pass-through columns copy wholesale; the computed column is one contiguous
  // loop over the operand columns (auto-vectorizes for every ArithKind).
  for (int c = 0; c < input.NumColumns(); ++c) {
    const auto src = input.ColumnSpan(c);
    std::copy(src.begin(), src.end(), output.ColumnData(c));
  }
  const int64_t* const lhs = rows == 0 ? nullptr : input.ColumnSpan(spec.lhs_column).data();
  const int64_t* const rhs = (rows == 0 || !spec.rhs_is_column)
                                 ? nullptr
                                 : input.ColumnSpan(spec.rhs_column).data();
  int64_t* const out = output.ColumnData(input.NumColumns());
  const int64_t literal = spec.rhs_literal;
  const int64_t scale = spec.scale;
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    cpu::ArithColumn(static_cast<cpu::Arith>(spec.kind), lhs + lo,
                     rhs != nullptr ? rhs + lo : nullptr, literal, scale,
                     static_cast<size_t>(hi - lo), out + lo);
  });
  return output;
}

Relation Enumerate(const Relation& input, const std::string& index_name) {
  std::vector<ColumnDef> defs = input.schema().columns();
  defs.emplace_back(index_name);
  Relation output{Schema(std::move(defs))};
  output.Resize(input.NumRows());
  for (int c = 0; c < input.NumColumns(); ++c) {
    const auto src = input.ColumnSpan(c);
    std::copy(src.begin(), src.end(), output.ColumnData(c));
  }
  int64_t* const idx = output.ColumnData(input.NumColumns());
  std::iota(idx, idx + input.NumRows(), int64_t{0});
  return output;
}

Relation Window(const Relation& input, const WindowSpec& spec) {
  // Evaluate in (partition, order) order; the sorted relation is also the output's
  // row order, so downstream sortedness tracking can rely on it.
  std::vector<int> sort_columns = spec.partition_columns;
  sort_columns.push_back(spec.order_column);
  Relation sorted = SortBy(input, sort_columns);

  std::vector<ColumnDef> defs = sorted.schema().columns();
  defs.emplace_back(spec.output_name);
  Relation output{Schema(std::move(defs))};
  const int64_t rows = sorted.NumRows();
  output.Resize(rows);
  for (int c = 0; c < sorted.NumColumns(); ++c) {
    const auto src = sorted.ColumnSpan(c);
    std::copy(src.begin(), src.end(), output.ColumnData(c));
  }

  // The running-state scan is inherently sequential over rows, but reads only the
  // partition/value columns — all contiguous.
  const auto partition_cols = ColumnPtrs(sorted, spec.partition_columns);
  const int64_t* const values =
      (rows == 0 || spec.fn == WindowFn::kRowNumber)
          ? nullptr
          : sorted.ColumnSpan(spec.value_column).data();
  int64_t* const computed = output.ColumnData(sorted.NumColumns());
  int64_t row_number = 0;
  int64_t running_sum = 0;
  int64_t prev_value = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const bool new_partition =
        r == 0 || CompareRowsAt(partition_cols, r - 1, r) != 0;
    if (new_partition) {
      row_number = 0;
      running_sum = 0;
      prev_value = 0;
    }
    row_number += 1;
    switch (spec.fn) {
      case WindowFn::kRowNumber:
        computed[r] = row_number;
        break;
      case WindowFn::kLag:
        computed[r] = prev_value;
        prev_value = values[r];
        break;
      case WindowFn::kRunningSum:
        running_sum += values[r];
        computed[r] = running_sum;
        break;
    }
  }
  return output;
}

bool IsSortedBy(const Relation& input, std::span<const int> columns) {
  const auto cols = ColumnPtrs(input, columns);
  for (int64_t r = 1; r < input.NumRows(); ++r) {
    if (CompareRowsAt(cols, r - 1, r) > 0) {
      return false;
    }
  }
  return true;
}

Relation PadToPowerOfTwo(const Relation& input, int64_t sentinel_stream) {
  const int64_t rows = input.NumRows();
  const int64_t target = PaddedRowCount(rows);
  Relation output = input;
  output.Resize(target);
  // Unique sentinel per cell: base + stream * 2^32 + counter. Streams separate pad
  // sites (parties/branches); the counter separates cells within a site. The
  // counter walks pad cells in row-major order (row by row, then column) so the
  // sentinel values are identical to the historical AppendRow loop.
  const int cols = input.NumColumns();
  const int64_t base = kSentinelBase + sentinel_stream * (int64_t{1} << 32);
  for (int c = 0; c < cols; ++c) {
    int64_t* const out = output.ColumnData(c);
    for (int64_t r = rows; r < target; ++r) {
      out[r] = base + (r - rows) * cols + c;
    }
  }
  return output;
}

Relation StripSentinelRows(const Relation& input) {
  const int64_t rows = input.NumRows();
  // Column-parallel sentinel detection: a row is padded iff any of its cells is in
  // the sentinel range.
  // With no columns there is nothing to test; every row stays (mask init 1).
  std::vector<uint8_t> keep(static_cast<size_t>(rows), 1);
  for (int c = 0; c < input.NumColumns(); ++c) {
    const int64_t* const column = rows == 0 ? nullptr : input.ColumnSpan(c).data();
    // First column sets the mask, later columns intersect: keep = all cells
    // below the sentinel range.
    const cpu::MaskMode mode = c == 0 ? cpu::MaskMode::kSet : cpu::MaskMode::kAnd;
    ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
      cpu::CompareMask(cpu::Cmp::kLt, column + lo, nullptr, kSentinelBase,
                       static_cast<size_t>(hi - lo), mode, keep.data() + lo);
    });
  }
  std::vector<int64_t> kept(static_cast<size_t>(rows));
  kept.resize(cpu::MaskToIndices(keep.data(), static_cast<size_t>(rows), 0,
                                 kept.data()));
  return GatherRows(input, kept);
}

}  // namespace ops
}  // namespace conclave
