// Fused expression evaluator for pipeline chains (DESIGN.md §13).
//
// A maximal run (>= 2 ops) of adjacent filter / project / arithmetic pipeline
// ops compiles into one FusedExprProgram: a short instruction list evaluated in
// a single pass per batch. Arithmetic results live in register-resident scratch
// columns, filters AND into one progressive byte mask (cpu::CompareMask), and
// the survivors are gathered exactly once at the end of the run — no
// per-operator batch materialization, no per-operator virtual dispatch.
// Projects cost nothing at runtime: they are compiled away into column
// remappings.
//
// Semantics contract: a fused run is bit-identical — values AND row order — to
// executing its ops one at a time, at every batch size. Two properties make
// this safe to fuse:
//   * Every kernel is a total function with the engine's wrap semantics
//     (cpu::ArithColumn: int64 wrap via uint64; kDiv: divisor 0 -> 0,
//     INT64_MIN / -1 wraps), so arithmetic may be computed on rows a later
//     gather discards.
//   * Filters only remove rows and never reorder them, so one deferred gather
//     of the intersected mask equals the composition of per-filter gathers.
//
// Accounting contract: the program reports, per original op, exactly the row
// count that op would have consumed in the unfused execution (the mask
// popcount after the preceding filters). BatchPipeline feeds these into
// PipelineStats::op_input_rows, so the dispatcher's estimate == meter identity
// holds whether or not fusion is enabled.
//
// The CONCLAVE_FUSED_EXPR knob (unset or any value other than "0"/"off"/
// "false" means enabled) mirrors CONCLAVE_SIMD: it never changes results, only
// whether chains execute fused or one operator at a time.
#ifndef CONCLAVE_RELATIONAL_EXPR_H_
#define CONCLAVE_RELATIONAL_EXPR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "conclave/common/cpu.h"
#include "conclave/relational/pipeline.h"
#include "conclave/relational/relation.h"

namespace conclave {

// The CONCLAVE_FUSED_EXPR knob. SetFusedExprEnabled overrides the environment
// for the process; BatchPipeline reads the knob once at construction.
bool FusedExprEnabled();
void SetFusedExprEnabled(bool enabled);

// RAII knob override for tests and A/B benches.
class ScopedFusedExpr {
 public:
  explicit ScopedFusedExpr(bool enabled) : saved_(FusedExprEnabled()) {
    SetFusedExprEnabled(enabled);
  }
  ~ScopedFusedExpr() { SetFusedExprEnabled(saved_); }
  ScopedFusedExpr(const ScopedFusedExpr&) = delete;
  ScopedFusedExpr& operator=(const ScopedFusedExpr&) = delete;

 private:
  bool saved_;
};

// True for the op kinds the fused evaluator can compile (filter / project /
// arithmetic). Limit and distinct-on-sorted carry cross-batch state and stay
// standalone operators.
bool FusibleExprOp(const PipelineOp& op);

// One executor slot of a pipeline: ops [begin, end) of the spec. end - begin
// >= 2 means the slot runs as one FusedExprProgram; a singleton slot runs as
// the op's standalone streaming operator.
struct ExprSlot {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool fused() const { return size() >= 2; }
};

// Partitions an op chain into slots. With `fuse` set, every maximal run of
// >= 2 adjacent fusible ops becomes one fused slot; everything else (and the
// whole chain when `fuse` is false) becomes singleton slots. Slots cover
// [0, ops.size()) exactly, in order.
std::vector<ExprSlot> FuseExprSlots(std::span<const PipelineOp> ops, bool fuse);

// A compiled fused run. Construction resolves every op's column references
// against the evolving intermediate schema, so evaluation touches only raw
// column pointers. The program owns reusable per-batch scratch (the arithmetic
// value columns, the filter mask, the survivor index list); Eval is therefore
// not const and a program must not be shared across threads — sharded
// execution builds one BatchPipeline (and thus one program) per shard.
class FusedExprProgram {
 public:
  // Compiles `ops` (all FusibleExprOp, size >= 1) against `input`.
  FusedExprProgram(const Schema& input, std::span<const PipelineOp> ops);

  // Schema of the run's output — identical to folding
  // BatchPipeline::DeriveSchema over the ops.
  const Schema& output_schema() const { return output_schema_; }

  // Number of compiled ops.
  size_t num_ops() const { return instrs_.size(); }

  // Evaluates rows [lo, hi) of `src` through the whole run and returns the
  // surviving rows as one owned batch (0 rows -> emit nothing upstream).
  // Adds to op_rows[j] (size num_ops()) the rows entering relative op j —
  // op_rows[0] grows by hi - lo, later ops by the survivor count of the
  // filters before them, matching the unfused execution's per-op input rows.
  Relation Eval(const Relation& src, int64_t lo, int64_t hi,
                std::span<int64_t> op_rows);

 private:
  // A column reference: a source-relation column (slot < 0) or a computed
  // arithmetic value column in scratch (slot >= 0).
  struct ColRef {
    int src = -1;
    int slot = -1;
  };

  struct Instr {
    PipelineOp::Kind kind = PipelineOp::Kind::kProject;
    cpu::Cmp cmp = cpu::Cmp::kEq;        // kFilter.
    cpu::Arith arith = cpu::Arith::kAdd;  // kArithmetic.
    ColRef lhs;                           // kFilter / kArithmetic.
    ColRef rhs;                           // Valid when rhs_is_column.
    bool rhs_is_column = false;
    int64_t literal = 0;
    int64_t scale = 1;                    // kArithmetic (read for kDiv).
    int out_slot = -1;                    // kArithmetic.
  };

  const int64_t* Resolve(const Relation& src, int64_t lo, ColRef ref) const;

  Schema output_schema_;
  std::vector<Instr> instrs_;
  std::vector<ColRef> output_cols_;  // The run's output columns, post-compile.
  int num_slots_ = 0;
  bool has_filter_ = false;

  // Reused per-batch scratch; O(batch) rows each.
  std::vector<std::vector<int64_t>> slots_;
  std::vector<uint8_t> mask_;
  std::vector<int64_t> indices_;
};

}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_EXPR_H_
