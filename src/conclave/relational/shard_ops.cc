#include "conclave/relational/shard_ops.h"

#include <algorithm>
#include <utility>

#include "conclave/common/rng.h"
#include "conclave/common/thread_pool.h"

namespace conclave {
namespace ops {
namespace {

// One row of one shard: the reference currency of every merge step.
struct ShardRowRef {
  int32_t shard = 0;
  int64_t row = 0;
};

// SplitMix64 chain over the key cells (the shared HashChainStep, same
// construction as the join hash in ops.cc and independent of std::hash, so
// bucket placement is deterministic across standard libraries).
uint64_t HashKeyCells(std::span<const int64_t* const> columns, int64_t row) {
  uint64_t h = kHashChainSeed;
  for (const int64_t* column : columns) {
    h = HashChainStep(h, static_cast<uint64_t>(column[row]));
  }
  return h;
}

std::vector<const int64_t*> ShardColumnPtrs(const Relation& rel,
                                            std::span<const int> columns) {
  std::vector<const int64_t*> ptrs;
  ptrs.reserve(columns.size());
  for (int c : columns) {
    ptrs.push_back(rel.ColumnSpan(c).data());
  }
  return ptrs;
}

// Lexicographic three-way compare between rows of (possibly different) shards,
// restricted to the hoisted column pointer sets.
int CompareAcross(std::span<const int64_t* const> a_cols, int64_t a_row,
                  std::span<const int64_t* const> b_cols, int64_t b_row) {
  for (size_t k = 0; k < a_cols.size(); ++k) {
    const int64_t a = a_cols[k][a_row];
    const int64_t b = b_cols[k][b_row];
    if (a < b) {
      return -1;
    }
    if (a > b) {
      return 1;
    }
  }
  return 0;
}

// Materializes rows referenced across `sources` into `out_shard_count` contiguous
// shards (shard boundaries depend only on the total row count). The output schema
// is `schema`; refs are gathered column by column, shards filled in parallel.
ShardedRelation MaterializeRefs(std::span<const Relation* const> sources,
                                const Schema& schema,
                                std::span<const ShardRowRef> order,
                                int out_shard_count) {
  const int64_t rows = static_cast<int64_t>(order.size());
  const int cols = schema.NumColumns();
  ShardedRelation out(schema);
  std::vector<Relation> shards(static_cast<size_t>(out_shard_count),
                               Relation{schema});
  // Hoist per-source column base pointers.
  std::vector<std::vector<const int64_t*>> src_cols(sources.size());
  for (size_t s = 0; s < sources.size(); ++s) {
    src_cols[s].reserve(static_cast<size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      src_cols[s].push_back(sources[s]->ColumnSpan(c).data());
    }
  }
  ParallelFor(0, out_shard_count, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t begin = rows * s / out_shard_count;
      const int64_t end = rows * (s + 1) / out_shard_count;
      Relation& shard = shards[static_cast<size_t>(s)];
      shard.Resize(end - begin);
      for (int c = 0; c < cols; ++c) {
        int64_t* const dst = shard.ColumnData(c);
        for (int64_t i = begin; i < end; ++i) {
          const ShardRowRef& ref = order[static_cast<size_t>(i)];
          dst[i - begin] = src_cols[static_cast<size_t>(ref.shard)]
                                   [static_cast<size_t>(c)][ref.row];
        }
      }
    }
  }, /*grain=*/1);
  for (Relation& shard : shards) {
    out.AddShard(std::move(shard));
  }
  return out;
}

// K-way merge driver: `sizes[s]` is stream s's length, `comes_before(a, b)` says
// whether stream a's *current* head precedes stream b's (and must break ties
// toward the lower stream index, which is what makes the merges stable), and
// `emit(s)` consumes stream s's head (the caller advances its own head cursor).
// Streams sit in a heap keyed by their current heads — valid because only the
// just-popped stream's head changes — so the merge is O(total log K) instead of
// the O(total x K) linear head scan.
template <typename ComesBefore, typename Emit>
void KWayMerge(std::span<const int64_t> sizes, ComesBefore comes_before,
               Emit emit) {
  // std::push_heap keeps the element that compares LARGEST at the front, so the
  // heap comparator inverts comes_before to pop the stream that comes first.
  const auto heap_after = [&](int a, int b) { return comes_before(b, a); };
  std::vector<int> heap;
  std::vector<int64_t> consumed(sizes.size(), 0);
  for (size_t s = 0; s < sizes.size(); ++s) {
    if (sizes[s] > 0) {
      heap.push_back(static_cast<int>(s));
    }
  }
  std::make_heap(heap.begin(), heap.end(), heap_after);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_after);
    const int s = heap.back();
    heap.pop_back();
    emit(s);
    if (++consumed[static_cast<size_t>(s)] < sizes[static_cast<size_t>(s)]) {
      heap.push_back(s);
      std::push_heap(heap.begin(), heap.end(), heap_after);
    }
  }
}

// Runs `body(shard_index)` over every shard on the pool and returns the per-shard
// relations as a ShardedRelation (shard order preserved).
template <typename Body>
ShardedRelation PerShard(std::span<const Relation* const> shards, Body body) {
  CONCLAVE_CHECK_GT(shards.size(), 0u);
  std::vector<Relation> results(shards.size());
  ParallelFor(0, static_cast<int64_t>(shards.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      results[static_cast<size_t>(s)] = body(static_cast<size_t>(s));
    }
  }, /*grain=*/1);
  ShardedRelation out(results.front().schema());
  for (Relation& shard : results) {
    out.AddShard(std::move(shard));
  }
  return out;
}

}  // namespace

int ShardOfKey(std::span<const int64_t> key, int bucket_count) {
  CONCLAVE_CHECK_GT(bucket_count, 0);
  uint64_t h = kHashChainSeed;
  for (int64_t v : key) {
    h = HashChainStep(h, static_cast<uint64_t>(v));
  }
  return static_cast<int>(h % static_cast<uint64_t>(bucket_count));
}

std::vector<Relation> ExchangeByHash(
    std::span<const Relation* const> shards, std::span<const int> key_columns,
    int bucket_count, std::vector<std::vector<int64_t>>* bucket_gids) {
  CONCLAVE_CHECK_GT(shards.size(), 0u);
  CONCLAVE_CHECK_GT(bucket_count, 0);
  const Schema& schema = shards[0]->schema();

  // Canonical global row id base of each shard.
  std::vector<int64_t> gid_base(shards.size());
  int64_t total = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    gid_base[s] = total;
    total += shards[s]->NumRows();
  }

  // Pass 1: per (source shard, bucket) row lists, built in one scan per shard
  // (shard-parallel). Row order within each list is the shard's row order.
  std::vector<std::vector<std::vector<int64_t>>> rows_for(shards.size());
  ParallelFor(0, static_cast<int64_t>(shards.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      const Relation& shard = *shards[static_cast<size_t>(s)];
      const int64_t rows = shard.NumRows();
      auto& my_buckets = rows_for[static_cast<size_t>(s)];
      my_buckets.resize(static_cast<size_t>(bucket_count));
      if (rows == 0) {
        continue;
      }
      const auto keys = ShardColumnPtrs(shard, key_columns);
      for (int64_t r = 0; r < rows; ++r) {
        my_buckets[static_cast<size_t>(
                       HashKeyCells(keys, r) % static_cast<uint64_t>(bucket_count))]
            .push_back(r);
      }
    }
  }, /*grain=*/1);

  // Pass 2: per-bucket gather, concatenating the per-shard lists in shard order so
  // every bucket preserves canonical relative order. O(rows) total, not
  // O(rows x buckets).
  std::vector<Relation> buckets(static_cast<size_t>(bucket_count),
                                Relation{schema});
  if (bucket_gids != nullptr) {
    bucket_gids->assign(static_cast<size_t>(bucket_count), {});
  }
  const int cols = schema.NumColumns();
  ParallelFor(0, bucket_count, [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      int64_t bucket_rows = 0;
      for (size_t s = 0; s < shards.size(); ++s) {
        bucket_rows += static_cast<int64_t>(rows_for[s][static_cast<size_t>(b)].size());
      }
      Relation& bucket = buckets[static_cast<size_t>(b)];
      bucket.Resize(bucket_rows);
      std::vector<int64_t> gids;
      if (bucket_gids != nullptr) {
        gids.reserve(static_cast<size_t>(bucket_rows));
      }
      int64_t offset = 0;
      for (size_t s = 0; s < shards.size(); ++s) {
        const auto& rows = rows_for[s][static_cast<size_t>(b)];
        for (int c = 0; c < cols; ++c) {
          const auto src = shards[s]->ColumnSpan(c);
          int64_t* const dst = bucket.ColumnData(c) + offset;
          for (size_t i = 0; i < rows.size(); ++i) {
            dst[i] = src[static_cast<size_t>(rows[i])];
          }
        }
        if (bucket_gids != nullptr) {
          for (int64_t r : rows) {
            gids.push_back(gid_base[s] + r);
          }
        }
        offset += static_cast<int64_t>(rows.size());
      }
      if (bucket_gids != nullptr) {
        (*bucket_gids)[static_cast<size_t>(b)] = std::move(gids);
      }
    }
  }, /*grain=*/1);
  return buckets;
}

ShardedRelation ShardedFilter(std::span<const Relation* const> shards,
                              const FilterPredicate& predicate) {
  return PerShard(shards, [&](size_t s) { return Filter(*shards[s], predicate); });
}

ShardedRelation ShardedProject(std::span<const Relation* const> shards,
                               std::span<const int> columns) {
  return PerShard(shards, [&](size_t s) { return Project(*shards[s], columns); });
}

ShardedRelation ShardedArithmetic(std::span<const Relation* const> shards,
                                  const ArithSpec& spec) {
  return PerShard(shards, [&](size_t s) { return Arithmetic(*shards[s], spec); });
}

ShardedRelation ShardedLimit(std::span<const Relation* const> shards,
                             int64_t count) {
  CONCLAVE_CHECK_GE(count, 0);
  // The prefix of the canonical order: per-shard take counts are fixed up front,
  // then the truncations run shard-parallel.
  std::vector<int64_t> takes(shards.size());
  int64_t remaining = count;
  for (size_t s = 0; s < shards.size(); ++s) {
    takes[s] = std::min(remaining, shards[s]->NumRows());
    remaining -= takes[s];
  }
  return PerShard(shards, [&](size_t s) { return Limit(*shards[s], takes[s]); });
}

ShardedRelation ShardedRebalance(std::span<const Relation* const> shards,
                                 int out_shard_count) {
  CONCLAVE_CHECK_GT(shards.size(), 0u);
  const Schema& schema = shards[0]->schema();
  // Canonical offsets of the source runs: output shard s covers canonical rows
  // [total*s/n, total*(s+1)/n), materialized as contiguous per-column range
  // copies from the overlapping sources (no per-row indirection).
  std::vector<int64_t> src_begin(shards.size() + 1, 0);
  for (size_t s = 0; s < shards.size(); ++s) {
    src_begin[s + 1] = src_begin[s] + shards[s]->NumRows();
  }
  const int64_t total = src_begin.back();
  const int cols = schema.NumColumns();
  ShardedRelation out(schema);
  std::vector<Relation> out_shards(static_cast<size_t>(out_shard_count),
                                   Relation{schema});
  ParallelFor(0, out_shard_count, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t begin = total * s / out_shard_count;
      const int64_t end = total * (s + 1) / out_shard_count;
      Relation& shard = out_shards[static_cast<size_t>(s)];
      shard.Resize(end - begin);
      // First source run overlapping `begin`.
      size_t src = static_cast<size_t>(
          std::upper_bound(src_begin.begin(), src_begin.end(), begin) -
          src_begin.begin() - 1);
      for (int64_t at = begin; at < end; ++src) {
        const int64_t run_lo = at - src_begin[src];
        const int64_t run_hi =
            std::min<int64_t>(shards[src]->NumRows(), end - src_begin[src]);
        if (run_hi <= run_lo) {
          continue;  // Empty source run.
        }
        for (int c = 0; c < cols; ++c) {
          const auto column = shards[src]->ColumnSpan(c);
          std::copy(column.begin() + run_lo, column.begin() + run_hi,
                    shard.ColumnData(c) + (at - begin));
        }
        at += run_hi - run_lo;
      }
    }
  }, /*grain=*/1);
  for (Relation& shard : out_shards) {
    out.AddShard(std::move(shard));
  }
  return out;
}

ShardedRelation ShardedJoin(std::span<const Relation* const> left,
                            std::span<const Relation* const> right,
                            std::span<const int> left_keys,
                            std::span<const int> right_keys, int shard_count,
                            int64_t mem_budget_rows,
                            spill::SpillStats* spill_stats) {
  CONCLAVE_CHECK_GT(shard_count, 0);
  // Exchange both sides on the join key: co-partitioned buckets carry their rows'
  // canonical gids so the merge can restore ops::Join's output order.
  std::vector<std::vector<int64_t>> left_gids;
  std::vector<std::vector<int64_t>> right_gids;
  const std::vector<Relation> left_buckets =
      ExchangeByHash(left, left_keys, shard_count, &left_gids);
  const std::vector<Relation> right_buckets =
      ExchangeByHash(right, right_keys, shard_count, &right_gids);

  // Per-bucket hash joins: the pair streams come out sorted by (left gid, right
  // gid) because exchange preserves canonical order on both sides.
  struct BucketPairs {
    std::vector<int64_t> left_rows;
    std::vector<int64_t> right_rows;
  };
  std::vector<BucketPairs> pairs(static_cast<size_t>(shard_count));
  std::vector<spill::SpillStats> bucket_stats(static_cast<size_t>(shard_count));
  ParallelFor(0, shard_count, [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      // Under a budget the bucket's build side Grace-partitions to disk; the
      // pair stream is identical either way (spill.h's contract).
      spill::JoinRowPairs(left_buckets[static_cast<size_t>(b)],
                          right_buckets[static_cast<size_t>(b)], left_keys,
                          right_keys, mem_budget_rows,
                          &bucket_stats[static_cast<size_t>(b)],
                          &pairs[static_cast<size_t>(b)].left_rows,
                          &pairs[static_cast<size_t>(b)].right_rows);
    }
  }, /*grain=*/1);
  if (spill_stats != nullptr) {
    for (const spill::SpillStats& stats : bucket_stats) {
      spill_stats->Merge(stats);
    }
  }

  // K-way merge of the bucket streams by (left gid, right gid). Left gids are
  // disjoint across buckets (each left row hashes to exactly one bucket), so the
  // merged order is exactly the unsharded left-scan order.
  int64_t total = 0;
  std::vector<int64_t> sizes(static_cast<size_t>(shard_count));
  for (int b = 0; b < shard_count; ++b) {
    sizes[static_cast<size_t>(b)] =
        static_cast<int64_t>(pairs[static_cast<size_t>(b)].left_rows.size());
    total += sizes[static_cast<size_t>(b)];
  }
  std::vector<std::pair<int32_t, int64_t>> order;  // (bucket, pair index)
  order.reserve(static_cast<size_t>(total));
  std::vector<size_t> heads(static_cast<size_t>(shard_count), 0);
  const auto head_gids = [&](int b) {
    const BucketPairs& bucket = pairs[static_cast<size_t>(b)];
    const size_t head = heads[static_cast<size_t>(b)];
    return std::pair<int64_t, int64_t>(
        left_gids[static_cast<size_t>(b)]
                 [static_cast<size_t>(bucket.left_rows[head])],
        right_gids[static_cast<size_t>(b)]
                  [static_cast<size_t>(bucket.right_rows[head])]);
  };
  KWayMerge(
      sizes,
      [&](int a, int b) {
        const auto ga = head_gids(a);
        const auto gb = head_gids(b);
        return ga != gb ? ga < gb : a < b;
      },
      [&](int b) {
        order.emplace_back(static_cast<int32_t>(b),
                           static_cast<int64_t>(heads[static_cast<size_t>(b)]));
        ++heads[static_cast<size_t>(b)];
      });

  // Materialize straight into contiguous output shards: keys and left rest gather
  // from the left bucket, right rest from the right bucket.
  std::vector<int> left_rest;
  std::vector<int> right_rest;
  const Schema out_schema =
      JoinOutputSchema(left[0]->schema(), right[0]->schema(), left_keys,
                       right_keys, &left_rest, &right_rest);
  std::vector<int> left_cols(left_keys.begin(), left_keys.end());
  left_cols.insert(left_cols.end(), left_rest.begin(), left_rest.end());

  ShardedRelation out(out_schema);
  std::vector<Relation> out_shards(static_cast<size_t>(shard_count),
                                   Relation{out_schema});
  ParallelFor(0, shard_count, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t begin = total * s / shard_count;
      const int64_t end = total * (s + 1) / shard_count;
      Relation& shard = out_shards[static_cast<size_t>(s)];
      shard.Resize(end - begin);
      int out_col = 0;
      for (int c : left_cols) {
        int64_t* const dst = shard.ColumnData(out_col++);
        for (int64_t i = begin; i < end; ++i) {
          const auto& [bucket, idx] = order[static_cast<size_t>(i)];
          const int64_t lr =
              pairs[static_cast<size_t>(bucket)].left_rows[static_cast<size_t>(idx)];
          dst[i - begin] =
              left_buckets[static_cast<size_t>(bucket)].ColumnSpan(c)
                          [static_cast<size_t>(lr)];
        }
      }
      for (int c : right_rest) {
        int64_t* const dst = shard.ColumnData(out_col++);
        for (int64_t i = begin; i < end; ++i) {
          const auto& [bucket, idx] = order[static_cast<size_t>(i)];
          const int64_t rr =
              pairs[static_cast<size_t>(bucket)].right_rows[static_cast<size_t>(idx)];
          dst[i - begin] =
              right_buckets[static_cast<size_t>(bucket)].ColumnSpan(c)
                           [static_cast<size_t>(rr)];
        }
      }
    }
  }, /*grain=*/1);
  for (Relation& shard : out_shards) {
    out.AddShard(std::move(shard));
  }
  return out;
}

ShardedRelation ShardedAggregate(std::span<const Relation* const> shards,
                                 std::span<const int> group_columns, AggKind kind,
                                 int agg_column, const std::string& output_name,
                                 int out_shard_count, int64_t mem_budget_rows,
                                 spill::SpillStats* spill_stats) {
  CONCLAVE_CHECK_GT(shards.size(), 0u);
  std::vector<spill::SpillStats> shard_stats(shards.size());
  const auto fold_stats = [&] {
    if (spill_stats != nullptr) {
      for (const spill::SpillStats& stats : shard_stats) {
        spill_stats->Merge(stats);
      }
    }
  };
  const int num_groups = static_cast<int>(group_columns.size());
  std::vector<int> partial_groups(static_cast<size_t>(num_groups));
  for (int i = 0; i < num_groups; ++i) {
    partial_groups[static_cast<size_t>(i)] = i;
  }
  const int partial_value = num_groups;  // Partial value column index.

  if (kind != AggKind::kMean) {
    // One partial per shard with the same kind, then one combining aggregate over
    // the concatenated partials (sum/min/max combine with themselves; counts
    // combine by summing the partial counts).
    const AggKind combine = kind == AggKind::kCount ? AggKind::kSum : kind;
    std::vector<Relation> partials(shards.size());
    ParallelFor(0, static_cast<int64_t>(shards.size()), [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        partials[static_cast<size_t>(s)] = spill::Aggregate(
            *shards[static_cast<size_t>(s)], group_columns, kind, agg_column,
            output_name, mem_budget_rows, &shard_stats[static_cast<size_t>(s)]);
      }
    }, /*grain=*/1);
    fold_stats();
    const Relation merged = Concat(partials);
    return ShardedRelation::SplitEven(
        spill::Aggregate(merged, partial_groups, combine, partial_value,
                         output_name, mem_budget_rows, spill_stats),
        out_shard_count);
  }

  // kMean: partial (sum, count) per shard, combined per group, finalized with the
  // same truncating division ops::Aggregate applies (count > 0 post-merge).
  std::vector<Relation> sums(shards.size());
  std::vector<Relation> counts(shards.size());
  ParallelFor(0, static_cast<int64_t>(shards.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      sums[static_cast<size_t>(s)] = spill::Aggregate(
          *shards[static_cast<size_t>(s)], group_columns, AggKind::kSum,
          agg_column, output_name, mem_budget_rows,
          &shard_stats[static_cast<size_t>(s)]);
      counts[static_cast<size_t>(s)] = spill::Aggregate(
          *shards[static_cast<size_t>(s)], group_columns, AggKind::kCount,
          agg_column, output_name, mem_budget_rows,
          &shard_stats[static_cast<size_t>(s)]);
    }
  }, /*grain=*/1);
  fold_stats();
  Relation total_sum =
      spill::Aggregate(Concat(sums), partial_groups, AggKind::kSum, partial_value,
                       output_name, mem_budget_rows, spill_stats);
  const Relation total_count =
      spill::Aggregate(Concat(counts), partial_groups, AggKind::kSum,
                       partial_value, output_name, mem_budget_rows, spill_stats);
  // Both totals are sorted by the identical group key set, so rows align 1:1.
  CONCLAVE_CHECK_EQ(total_sum.NumRows(), total_count.NumRows());
  Relation result = std::move(total_sum);
  const int64_t rows = result.NumRows();
  if (rows > 0) {
    int64_t* const means = result.ColumnData(partial_value);
    const int64_t* const cnts = total_count.ColumnSpan(partial_value).data();
    for (int64_t r = 0; r < rows; ++r) {
      means[r] = cnts[r] == 0 ? 0 : means[r] / cnts[r];
    }
  }
  return ShardedRelation::SplitEven(result, out_shard_count);
}

ShardedRelation ShardedSortBy(std::span<const Relation* const> shards,
                              std::span<const int> columns, bool ascending,
                              int out_shard_count, int64_t mem_budget_rows,
                              spill::SpillStats* spill_stats) {
  CONCLAVE_CHECK_GT(shards.size(), 0u);
  // Per-shard stable sorted runs (externally sorted when over budget).
  std::vector<Relation> runs(shards.size());
  std::vector<spill::SpillStats> shard_stats(shards.size());
  ParallelFor(0, static_cast<int64_t>(shards.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      runs[static_cast<size_t>(s)] =
          spill::SortBy(*shards[static_cast<size_t>(s)], columns, ascending,
                        mem_budget_rows, &shard_stats[static_cast<size_t>(s)]);
    }
  }, /*grain=*/1);
  if (spill_stats != nullptr) {
    for (const spill::SpillStats& stats : shard_stats) {
      spill_stats->Merge(stats);
    }
  }

  // K-way stable merge: on ties the lower shard wins, and shards are contiguous
  // canonical ranges, so the merged order equals the global stable sort.
  std::vector<std::vector<const int64_t*>> run_cols(runs.size());
  std::vector<const Relation*> run_ptrs(runs.size());
  std::vector<int64_t> sizes(runs.size());
  int64_t total = 0;
  for (size_t s = 0; s < runs.size(); ++s) {
    run_cols[s] = ShardColumnPtrs(runs[s], columns);
    run_ptrs[s] = &runs[s];
    sizes[s] = runs[s].NumRows();
    total += sizes[s];
  }
  std::vector<ShardRowRef> order;
  order.reserve(static_cast<size_t>(total));
  std::vector<int64_t> heads(runs.size(), 0);
  KWayMerge(
      sizes,
      [&](int a, int b) {
        const int cmp =
            CompareAcross(run_cols[static_cast<size_t>(a)],
                          heads[static_cast<size_t>(a)],
                          run_cols[static_cast<size_t>(b)],
                          heads[static_cast<size_t>(b)]);
        if (cmp != 0) {
          return ascending ? cmp < 0 : cmp > 0;
        }
        return a < b;
      },
      [&](int s) {
        order.push_back({static_cast<int32_t>(s), heads[static_cast<size_t>(s)]});
        ++heads[static_cast<size_t>(s)];
      });
  return MaterializeRefs(run_ptrs, runs.front().schema(), order, out_shard_count);
}

ShardedRelation ShardedDistinct(std::span<const Relation* const> shards,
                                std::span<const int> columns, int out_shard_count,
                                int64_t mem_budget_rows,
                                spill::SpillStats* spill_stats) {
  CONCLAVE_CHECK_GT(shards.size(), 0u);
  // Per-shard sorted dedup runs over the projected columns.
  std::vector<Relation> runs(shards.size());
  std::vector<spill::SpillStats> shard_stats(shards.size());
  ParallelFor(0, static_cast<int64_t>(shards.size()), [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      runs[static_cast<size_t>(s)] =
          spill::Distinct(*shards[static_cast<size_t>(s)], columns,
                          mem_budget_rows, &shard_stats[static_cast<size_t>(s)]);
    }
  }, /*grain=*/1);
  if (spill_stats != nullptr) {
    for (const spill::SpillStats& stats : shard_stats) {
      spill_stats->Merge(stats);
    }
  }

  // Ascending k-way merge with cross-shard dedup: emit each distinct row once, in
  // sorted order — exactly ops::Distinct's output on the coalesced input.
  std::vector<int> all_columns(static_cast<size_t>(runs.front().NumColumns()));
  for (size_t c = 0; c < all_columns.size(); ++c) {
    all_columns[c] = static_cast<int>(c);
  }
  std::vector<std::vector<const int64_t*>> run_cols(runs.size());
  std::vector<const Relation*> run_ptrs(runs.size());
  std::vector<int64_t> sizes(runs.size());
  for (size_t s = 0; s < runs.size(); ++s) {
    run_cols[s] = ShardColumnPtrs(runs[s], all_columns);
    run_ptrs[s] = &runs[s];
    sizes[s] = runs[s].NumRows();
  }
  std::vector<ShardRowRef> order;
  std::vector<int64_t> heads(runs.size(), 0);
  int last_shard = -1;
  int64_t last_row = 0;
  KWayMerge(
      sizes,
      [&](int a, int b) {
        const int cmp =
            CompareAcross(run_cols[static_cast<size_t>(a)],
                          heads[static_cast<size_t>(a)],
                          run_cols[static_cast<size_t>(b)],
                          heads[static_cast<size_t>(b)]);
        return cmp != 0 ? cmp < 0 : a < b;
      },
      [&](int s) {
        const int64_t row = heads[static_cast<size_t>(s)];
        ++heads[static_cast<size_t>(s)];
        if (last_shard >= 0 &&
            CompareAcross(run_cols[static_cast<size_t>(s)], row,
                          run_cols[static_cast<size_t>(last_shard)],
                          last_row) == 0) {
          return;  // Duplicate of the previously emitted row.
        }
        order.push_back({static_cast<int32_t>(s), row});
        last_shard = s;
        last_row = row;
      });
  return MaterializeRefs(run_ptrs, runs.front().schema(), order, out_shard_count);
}

}  // namespace ops
}  // namespace conclave
