// CSV import/export for relations.
//
// Format: first line is comma-separated column names, subsequent lines are int64
// values. This mirrors the paper's deployment model where each party's Conclave agent
// reads local input CSVs and writes output CSVs (§4.1).
#ifndef CONCLAVE_RELATIONAL_CSV_H_
#define CONCLAVE_RELATIONAL_CSV_H_

#include <string>

#include "conclave/common/status.h"
#include "conclave/relational/relation.h"
#include "conclave/relational/sharded.h"

namespace conclave {

StatusOr<Relation> ReadCsv(const std::string& path);
Status WriteCsv(const Relation& relation, const std::string& path);

// String-based variants (used by tests and in-memory pipelines).
StatusOr<Relation> ParseCsv(const std::string& text);
std::string ToCsv(const Relation& relation);

// Sharded ingest: parses the data lines into `shard_count` contiguous shards, one
// parallel parse task per shard. Bit-identical to
// ShardedRelation::SplitEven(ParseCsv(text), shard_count), including which error
// is reported on malformed input (the earliest line wins).
StatusOr<ShardedRelation> ParseCsvSharded(const std::string& text, int shard_count);
StatusOr<ShardedRelation> ReadCsvSharded(const std::string& path, int shard_count);

}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_CSV_H_
