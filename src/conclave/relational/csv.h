// CSV import/export for relations.
//
// Format: first line is comma-separated column names, subsequent lines are int64
// values. This mirrors the paper's deployment model where each party's Conclave agent
// reads local input CSVs and writes output CSVs (§4.1).
#ifndef CONCLAVE_RELATIONAL_CSV_H_
#define CONCLAVE_RELATIONAL_CSV_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "conclave/common/status.h"
#include "conclave/relational/relation.h"
#include "conclave/relational/schema.h"
#include "conclave/relational/sharded.h"

namespace conclave {

StatusOr<Relation> ReadCsv(const std::string& path);
Status WriteCsv(const Relation& relation, const std::string& path);

// String-based variants (used by tests and in-memory pipelines).
StatusOr<Relation> ParseCsv(const std::string& text);
std::string ToCsv(const Relation& relation);

// A lazily-parsed CSV source: the raw text plus a byte index of its data lines,
// with cells parsed on demand in row ranges. Construction parses the header and
// indexes line boundaries only — no cell materializes until ParseRows. This is
// the streaming pipeline head of DESIGN.md §12: a fused chain pulls
// batch-at-a-time row ranges and the source relation never exists in memory.
// ParseRows is const and thread-safe, so sharded chains parse disjoint ranges
// concurrently. Row-range parses are bit-identical to the same rows of
// ParseCsv(text), including which malformed-cell error is reported (errors carry
// the original 1-based line numbers).
class CsvSource {
 public:
  static StatusOr<CsvSource> FromText(std::string text);
  static StatusOr<CsvSource> FromFile(const std::string& path);

  CsvSource(CsvSource&& other) noexcept;
  CsvSource& operator=(CsvSource&& other) noexcept;

  const Schema& schema() const { return schema_; }
  int64_t NumRows() const { return static_cast<int64_t>(lines_.size()); }

  // Parses rows [begin, end) of the data section (0-based, clamped order
  // enforced by CHECK) into a relation with the header schema.
  StatusOr<Relation> ParseRows(int64_t begin, int64_t end) const;

  // High-water mark of rows materialized by a single ParseRows call — the
  // residency witness streaming tests assert stays at the batch size, never
  // anywhere near NumRows().
  int64_t MaxMaterializedRows() const {
    return max_materialized_rows_.load(std::memory_order_relaxed);
  }

 private:
  struct DataLine {
    size_t begin;
    size_t end;
    size_t line_number;
  };

  CsvSource() = default;

  std::string text_;
  Schema schema_;
  std::vector<DataLine> lines_;
  mutable std::atomic<int64_t> max_materialized_rows_{0};
};

// Sharded ingest: parses the data lines into `shard_count` contiguous shards, one
// parallel parse task per shard. Bit-identical to
// ShardedRelation::SplitEven(ParseCsv(text), shard_count), including which error
// is reported on malformed input (the earliest line wins).
StatusOr<ShardedRelation> ParseCsvSharded(const std::string& text, int shard_count);
StatusOr<ShardedRelation> ReadCsvSharded(const std::string& path, int shard_count);

}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_CSV_H_
