#include "conclave/relational/sharded.h"

#include <atomic>
#include <utility>

#include "conclave/common/thread_pool.h"
#include "conclave/relational/ops.h"

namespace conclave {
namespace {

std::atomic<int64_t> split_even_calls{0};

}  // namespace

ShardedRelation ShardedRelation::Single(Relation relation) {
  ShardedRelation sharded(relation.schema());
  sharded.shards_.push_back(std::move(relation));
  return sharded;
}

int64_t ShardedRelation::SplitEvenCalls() {
  return split_even_calls.load(std::memory_order_relaxed);
}

ShardedRelation ShardedRelation::SplitEven(const Relation& relation,
                                           int shard_count) {
  CONCLAVE_CHECK_GT(shard_count, 0);
  split_even_calls.fetch_add(1, std::memory_order_relaxed);
  ShardedRelation sharded(relation.schema());
  sharded.shards_.resize(static_cast<size_t>(shard_count),
                         Relation{relation.schema()});
  const int64_t rows = relation.NumRows();
  const int cols = relation.NumColumns();
  // Shard boundaries depend only on (rows, shard_count), never on thread count;
  // each shard's columns are contiguous range copies, filled in parallel.
  ParallelFor(0, shard_count, [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      const int64_t begin = rows * s / shard_count;
      const int64_t end = rows * (s + 1) / shard_count;
      Relation& shard = sharded.shards_[static_cast<size_t>(s)];
      shard.Resize(end - begin);
      for (int c = 0; c < cols; ++c) {
        const auto src = relation.ColumnSpan(c);
        std::copy(src.begin() + begin, src.begin() + end, shard.ColumnData(c));
      }
    }
  }, /*grain=*/1);
  return sharded;
}

Relation ShardedRelation::Coalesce() const {
  if (shards_.empty()) {
    return Relation{schema_};
  }
  if (shards_.size() == 1) {
    return shards_.front();
  }
  return ops::Concat(std::span<const Relation* const>(ShardPtrs()));
}

int64_t ShardedRelation::NumRows() const {
  int64_t rows = 0;
  for (const Relation& shard : shards_) {
    rows += shard.NumRows();
  }
  return rows;
}

uint64_t ShardedRelation::ByteSize() const {
  uint64_t bytes = 0;
  for (const Relation& shard : shards_) {
    bytes += shard.ByteSize();
  }
  return bytes;
}

std::vector<const Relation*> ShardedRelation::ShardPtrs() const {
  std::vector<const Relation*> ptrs;
  ptrs.reserve(shards_.size());
  for (const Relation& shard : shards_) {
    ptrs.push_back(&shard);
  }
  return ptrs;
}

}  // namespace conclave
