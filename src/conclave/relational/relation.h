// In-memory relation: a schema plus column-major int64 cells.
//
// Storage is one contiguous vector per column (cache-friendly; relations in benches
// reach 10^7+ rows). Column scans — the dominant access pattern of the operator
// kernels, the MPC share ingest, and reconstruction — are contiguous loops over
// ColumnSpan()/ColumnData(), which auto-vectorize and feed zero-copy into the
// secret-sharing layer. Row-oriented access (sort comparators, ToString, debug
// hashing) goes through the At()/CopyRowInto() compat shims.
//
// The columns are unchunked: one allocation per column. A fixed-morsel chunked
// layout was considered and rejected — the execution layer already morselizes every
// scan via ParallelFor, so chunked storage would only add per-chunk indirection to
// the inner loops (see DESIGN.md §7).
//
// Relations are value types; the operator library in ops.h produces new relations.
#ifndef CONCLAVE_RELATIONAL_RELATION_H_
#define CONCLAVE_RELATIONAL_RELATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "conclave/relational/schema.h"

namespace conclave {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema)
      : schema_(std::move(schema)),
        columns_(static_cast<size_t>(schema_.NumColumns())) {}
  // Builds from row-major cells (rows * columns values in row order). Compat
  // constructor for tests and the row-major reference implementation; the runtime
  // ingest paths (CSV, generators, MPC reconstruct) fill columns directly.
  Relation(Schema schema, std::vector<int64_t> row_major_cells);

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  int64_t NumRows() const { return num_rows_; }
  int NumColumns() const { return schema_.NumColumns(); }

  int64_t At(int64_t row, int col) const {
    CONCLAVE_DCHECK(row >= 0 && row < NumRows());
    CONCLAVE_DCHECK(col >= 0 && col < NumColumns());
    return columns_[static_cast<size_t>(col)][static_cast<size_t>(row)];
  }
  void Set(int64_t row, int col, int64_t value) {
    CONCLAVE_DCHECK(row >= 0 && row < NumRows());
    CONCLAVE_DCHECK(col >= 0 && col < NumColumns());
    columns_[static_cast<size_t>(col)][static_cast<size_t>(row)] = value;
  }

  // Zero-copy view of one column's cells. This is the hot accessor: operator
  // kernels scan it contiguously and the MPC ingest shares straight out of it.
  std::span<const int64_t> ColumnSpan(int col) const {
    CONCLAVE_DCHECK(col >= 0 && col < NumColumns());
    return columns_[static_cast<size_t>(col)];
  }

  // Mutable base pointer of one column (null when the relation is empty). Kernels
  // Resize() first, then write disjoint ranges through this pointer in parallel.
  int64_t* ColumnData(int col) {
    CONCLAVE_DCHECK(col >= 0 && col < NumColumns());
    return columns_[static_cast<size_t>(col)].data();
  }

  // Appends one row (slow path: touches every column; bulk producers Resize() and
  // write columns directly instead).
  void AppendRow(std::span<const int64_t> values);
  void AppendRow(std::initializer_list<int64_t> values) {
    AppendRow(std::span<const int64_t>(values.begin(), values.size()));
  }

  void Reserve(int64_t rows) {
    for (auto& column : columns_) {
      column.reserve(static_cast<size_t>(rows));
    }
  }

  // Presizes every column to `rows` (grown cells zero); the bulk-ingest entry
  // point, paired with ColumnData() writes.
  void Resize(int64_t rows) {
    CONCLAVE_CHECK_GE(rows, 0);
    for (auto& column : columns_) {
      column.resize(static_cast<size_t>(rows));
    }
    num_rows_ = NumColumns() == 0 ? 0 : rows;
  }

  // Copies row `row` into `out` (size NumColumns()): the row-oriented compat shim
  // for genuinely row-major consumers (debug rendering, row materialization).
  void CopyRowInto(int64_t row, std::span<int64_t> out) const;

  // Row-major rendering of all cells (rows * columns, row order). Compat accessor
  // for tests and the layout-equivalence reference; O(cells) copy.
  std::vector<int64_t> RowMajorCells() const;

  // Approximate in-memory footprint (cells only); drives the simulated-OOM checks.
  // Same value as the row-major layout: the swap moves bytes, it does not add any.
  uint64_t ByteSize() const {
    return static_cast<uint64_t>(num_rows_) * static_cast<uint64_t>(NumColumns()) *
           sizeof(int64_t);
  }

  // Exact equality: same schema names and identical cells in identical row order.
  bool RowsEqual(const Relation& other) const;

  // Multi-line debug rendering; caps at `max_rows` rows.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Schema schema_;
  int64_t num_rows_ = 0;
  std::vector<std::vector<int64_t>> columns_;
};

// Order-insensitive comparison used by tests: sorts both relations' rows
// lexicographically and compares. MPC operators are allowed to permute output rows
// (oblivious shuffles do exactly that), so most equivalence checks are unordered.
bool UnorderedEqual(const Relation& a, const Relation& b);

}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_RELATION_H_
