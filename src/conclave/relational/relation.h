// In-memory relation: a schema plus row-major int64 cells.
//
// Storage is one flat vector (cache-friendly; relations in benches reach 10^7+ rows).
// Relations are value types; the operator library in ops.h produces new relations.
#ifndef CONCLAVE_RELATIONAL_RELATION_H_
#define CONCLAVE_RELATIONAL_RELATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "conclave/relational/schema.h"

namespace conclave {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<int64_t> cells);

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  int64_t NumRows() const {
    const int cols = schema_.NumColumns();
    return cols == 0 ? 0 : static_cast<int64_t>(cells_.size()) / cols;
  }
  int NumColumns() const { return schema_.NumColumns(); }

  int64_t At(int64_t row, int col) const {
    CONCLAVE_DCHECK(row >= 0 && row < NumRows());
    CONCLAVE_DCHECK(col >= 0 && col < NumColumns());
    return cells_[static_cast<size_t>(row) * NumColumns() + col];
  }
  void Set(int64_t row, int col, int64_t value) {
    CONCLAVE_DCHECK(row >= 0 && row < NumRows());
    CONCLAVE_DCHECK(col >= 0 && col < NumColumns());
    cells_[static_cast<size_t>(row) * NumColumns() + col] = value;
  }

  std::span<const int64_t> Row(int64_t row) const {
    CONCLAVE_DCHECK(row >= 0 && row < NumRows());
    return {cells_.data() + static_cast<size_t>(row) * NumColumns(),
            static_cast<size_t>(NumColumns())};
  }

  void AppendRow(std::span<const int64_t> values);
  void AppendRow(std::initializer_list<int64_t> values) {
    AppendRow(std::span<const int64_t>(values.begin(), values.size()));
  }

  void Reserve(int64_t rows) {
    cells_.reserve(static_cast<size_t>(rows) * NumColumns());
  }

  // Extracts one column as a vector (used when moving columns in/out of MPC).
  std::vector<int64_t> ColumnValues(int col) const;

  const std::vector<int64_t>& cells() const { return cells_; }
  std::vector<int64_t>& mutable_cells() { return cells_; }

  // Approximate in-memory footprint (cells only); drives the simulated-OOM checks.
  uint64_t ByteSize() const { return cells_.size() * sizeof(int64_t); }

  // Exact equality: same schema names and identical cells in identical order.
  bool RowsEqual(const Relation& other) const;

  // Multi-line debug rendering; caps at `max_rows` rows.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<int64_t> cells_;
};

// Order-insensitive comparison used by tests: sorts both relations' rows
// lexicographically and compares. MPC operators are allowed to permute output rows
// (oblivious shuffles do exactly that), so most equivalence checks are unordered.
bool UnorderedEqual(const Relation& a, const Relation& b);

}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_RELATION_H_
