// Push-based batch pipeline for fused chains of non-blocking cleartext operators.
//
// A BatchPipeline streams fixed-size row batches from a materialized source
// relation through a chain of streaming operators (filter / project / arithmetic /
// limit / distinct-on-sorted), materializing only the chain's final output. Each
// operator implements a Carnot-style consume/flush contract: it receives one input
// batch at a time, emits zero or more output batches downstream, and may hold only
// O(1) rows of cross-batch state (the limit cursor, the last distinct row). The
// pipeline therefore holds O(pipeline depth x batch_rows) rows of intermediate
// state regardless of input size — the high-water marks in PipelineStats record
// exactly that, and tests assert it.
//
// Batch-invariance contract: for every operator and every batch size (including
// one row per batch and the whole relation in one batch), the concatenation of the
// emitted batches is bit-identical — values AND row order — to the corresponding
// materializing kernel in ops.h applied to the concatenated input. The dispatcher
// relies on this to extend the {pool, shard} determinism contract with a batch
// axis (DESIGN.md §10); blocking operators (sort, join, aggregate, window, pad)
// never enter a pipeline and keep materializing through ops.h.
//
// Streaming limit deliberately does NOT early-exit: upstream operators consume
// every batch even after the limit is satisfied, so per-operator row counts — and
// with them the dispatcher's cost-model charges and counters — are identical to
// the unfused execution at every batch size.
//
// Executor slots: the constructor partitions the op chain into slots (see
// relational/expr.h). A maximal run of >= 2 adjacent filter / project /
// arithmetic ops becomes ONE operator — a FusedExprProgram evaluated in a
// single register-resident pass per batch — when the CONCLAVE_FUSED_EXPR knob
// is on; every other op is its own slot. PipelineStats::op_input_rows stays
// indexed by ORIGINAL op position regardless: fused slots report their
// interior ops' per-op input rows through the program's accounting, so the
// dispatcher's per-node pricing is identical with fusion on or off.
#ifndef CONCLAVE_RELATIONAL_PIPELINE_H_
#define CONCLAVE_RELATIONAL_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "conclave/common/status.h"
#include "conclave/relational/ops.h"
#include "conclave/relational/relation.h"

namespace conclave {

class CsvSource;
namespace mpc {
class RevealSource;
}  // namespace mpc

// Default rows per batch of the push-based pipeline executor (~4k rows: large
// enough to amortize per-batch overhead, small enough that a fused chain's
// working set stays cache-resident).
inline constexpr int64_t kDefaultBatchRows = 4096;
// Disables pipeline fusion entirely: every operator materializes through ops.h
// (the pre-pipeline executor, and the differential harness's baseline).
inline constexpr int64_t kMaterializeBatchRows = -1;

// CONCLAVE_BATCH_ROWS env override: a positive integer sets the batch size,
// "materialize" (or any non-positive value) disables fusion; unset picks
// kDefaultBatchRows.
int64_t DefaultBatchRows();

// One resolved streaming operator of a pipeline (column references are
// pre-resolved indices against the stage's input schema, as in ops.h).
struct PipelineOp {
  enum class Kind { kFilter, kProject, kArithmetic, kLimit, kDistinctOnSorted };

  Kind kind = Kind::kFilter;
  FilterPredicate filter;         // kFilter.
  std::vector<int> columns;       // kProject / kDistinctOnSorted.
  ArithSpec arith;                // kArithmetic.
  int64_t limit_count = 0;        // kLimit.

  static PipelineOp Filter(const FilterPredicate& predicate);
  static PipelineOp Project(std::vector<int> columns);
  static PipelineOp Arithmetic(const ArithSpec& spec);
  static PipelineOp Limit(int64_t count);
  // Requires the pipeline's input at this stage to be sorted ascending
  // (lexicographically) by a column list of which `columns` is a prefix.
  static PipelineOp DistinctOnSorted(std::vector<int> columns);
};

// A fully resolved pipeline: the source schema plus the operator chain. Cheap to
// copy — sharded execution builds one BatchPipeline per shard from one spec.
struct PipelineSpec {
  Schema input_schema;
  std::vector<PipelineOp> ops;
};

// Instrumentation captured by one BatchPipeline::Run. The peaks are high-water
// marks over pipeline-owned batches only (the source and the materialized output
// exist regardless of batching); a non-blocking chain must keep them O(depth x
// batch_rows), never O(input rows).
struct PipelineStats {
  int64_t batches_pushed = 0;       // Source batches entering the pipeline.
  int64_t rows_pushed = 0;          // Source rows entering the pipeline.
  int64_t peak_batches_resident = 0;
  int64_t peak_rows_resident = 0;
  // Rows consumed by each operator (index-aligned with the spec's ops). Equals
  // the materialized intermediate cardinalities of the unfused execution, at
  // every batch size; the dispatcher prices fused interior nodes from these.
  std::vector<int64_t> op_input_rows;
};

namespace pipeline_internal {
class BatchOperator;
}  // namespace pipeline_internal

class BatchPipeline {
 public:
  explicit BatchPipeline(const PipelineSpec& spec);
  ~BatchPipeline();
  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  const Schema& output_schema() const { return output_schema_; }

  // Streams `input` through the chain in batches of at most `batch_rows` rows
  // (<= 0 streams the whole relation as one batch) and returns the materialized
  // result. Resets operator state and stats first, so a pipeline may run again.
  Relation Run(const Relation& input, int64_t batch_rows);

  // Source-driven variant (DESIGN.md §12): parses rows [begin, end) of `source`
  // batch-at-a-time and pushes each parsed batch through the chain, so the
  // source relation never materializes — at most one batch of parsed source
  // rows is live at a time (it enters the pipeline's residency accounting,
  // unlike Run's borrowed slices). Bit-identical to
  // Run(*source.ParseRows(begin, end), batch_rows) at every batch size.
  StatusOr<Relation> RunFromCsv(const CsvSource& source, int64_t begin,
                                int64_t end, int64_t batch_rows);

  // Reveal-boundary variant (DESIGN.md §14): reconstructs rows [begin, end) of
  // a streaming reveal batch-at-a-time and pushes each revealed batch through
  // the chain, so the revealed relation never materializes. Bit-identical to
  // Run(source.RevealRows(begin, end), batch_rows) at every batch size.
  Relation RunFromReveal(const mpc::RevealSource& source, int64_t begin,
                         int64_t end, int64_t batch_rows);

  // Stats of the most recent Run.
  const PipelineStats& stats() const { return stats_; }

  // The schema each streaming operator derives from `input`, mirroring the
  // corresponding ops.h kernel; `ops` prefixes of a chain compose left to right.
  static Schema DeriveSchema(const Schema& input, const PipelineOp& op);

 private:
  friend class pipeline_internal::BatchOperator;

  // Delivers one owned batch to the operator at `slot` (== operators_.size()
  // appends to the output), tracking batch residency around the consume call.
  // Input rows are attributed to the slot's FIRST original op; a fused slot
  // reports its interior ops' rows itself via AddOpInputRows.
  void Push(size_t slot, Relation&& batch);

  // Fused-slot hook: adds to stats_.op_input_rows[op_index] (an ORIGINAL op
  // index) the rows a fused run's interior op consumed this batch.
  void AddOpInputRows(size_t op_index, int64_t rows) {
    stats_.op_input_rows[op_index] += rows;
  }

  Schema output_schema_;
  std::vector<std::unique_ptr<pipeline_internal::BatchOperator>> operators_;
  // Original op index each executor slot starts at (operators_ may be shorter
  // than the spec's op list when runs are fused).
  std::vector<size_t> slot_first_op_;
  size_t num_ops_ = 0;  // spec.ops.size(); sizes stats_.op_input_rows.
  PipelineStats stats_;
  int64_t live_batches_ = 0;
  int64_t live_rows_ = 0;
  Relation output_;
};

}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_PIPELINE_H_
