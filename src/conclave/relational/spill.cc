#include "conclave/relational/spill.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <utility>

#include "conclave/common/check.h"
#include "conclave/common/env.h"
#include "conclave/common/strings.h"
#include "conclave/common/tempfile.h"

namespace conclave {

int64_t DefaultMemBudgetRows() {
  // 0 means unbounded (spilling off); negative budgets are rejected.
  return env::Int64Knob("CONCLAVE_MEM_BUDGET", /*fallback=*/0, /*min_value=*/0,
                        std::numeric_limits<int64_t>::max());
}

namespace spill {

int64_t SpillMergePasses(int64_t rows, int64_t budget) {
  if (budget <= 0 || rows <= budget) {
    return 0;
  }
  int64_t runs = (rows + budget - 1) / budget;
  int64_t passes = 0;
  while (runs > 1) {
    runs = (runs + kSpillMergeFanIn - 1) / kSpillMergeFanIn;
    ++passes;
  }
  return passes;
}

namespace {

// Depth cap for Grace-join recursion: a bucket that a level-salted rehash cannot
// shrink (one key carrying more than `budget` duplicates) builds in memory at the
// cap rather than recursing forever.
constexpr int kMaxGraceDepth = 6;

// SplitMix64 finalizer — same mixer family as ops.cc's KeyHash, salted per
// recursion level so a bucket re-partitions under an independent hash.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Tracks the operator's own resident rows (runs being formed, merge heads,
// probe batches) and records the high-water mark into SpillStats. Borrowed
// inputs and the final output are excluded, matching PipelineStats.
class ResidencyMeter {
 public:
  explicit ResidencyMeter(SpillStats* stats) : stats_(stats) {}

  void Add(int64_t rows) {
    current_ += rows;
    if (stats_ != nullptr) {
      stats_->peak_resident_rows = std::max(stats_->peak_resident_rows, current_);
    }
  }
  void Sub(int64_t rows) { current_ -= rows; }

 private:
  SpillStats* stats_;
  int64_t current_ = 0;
};

// One spilled run (or Grace partition) on disk: row-major int64 cells.
struct SpillRun {
  SpillFile file;
  int64_t rows = 0;
  int cols = 0;
};

class SpillRunWriter {
 public:
  SpillRunWriter(const TempDir& dir, int sequence, int cols, SpillStats* stats)
      : file_(StrFormat("%s/run-%d", dir.path().c_str(), sequence)),
        cols_(cols),
        stats_(stats) {
    f_ = std::fopen(file_.path().c_str(), "wb");
    CONCLAVE_CHECK(f_ != nullptr);
  }
  ~SpillRunWriter() {
    if (f_ != nullptr) {
      std::fclose(f_);
    }
  }
  SpillRunWriter(const SpillRunWriter&) = delete;
  SpillRunWriter& operator=(const SpillRunWriter&) = delete;

  void AppendRow(std::span<const int64_t> row) {
    CONCLAVE_DCHECK(static_cast<int>(row.size()) == cols_);
    const size_t written = std::fwrite(row.data(), sizeof(int64_t), row.size(), f_);
    CONCLAVE_CHECK_EQ(written, row.size());
    ++rows_;
  }

  // Interleaves a columnar batch into the row-major stream.
  void Append(const Relation& batch) {
    const int64_t n = batch.NumRows();
    scratch_.resize(static_cast<size_t>(n) * cols_);
    for (int c = 0; c < cols_; ++c) {
      const auto column = batch.ColumnSpan(c);
      for (int64_t r = 0; r < n; ++r) {
        scratch_[static_cast<size_t>(r) * cols_ + c] = column[r];
      }
    }
    const size_t written =
        std::fwrite(scratch_.data(), sizeof(int64_t), scratch_.size(), f_);
    CONCLAVE_CHECK_EQ(written, scratch_.size());
    rows_ += n;
  }

  int64_t rows() const { return rows_; }

  SpillRun Finish() {
    CONCLAVE_CHECK_EQ(std::fclose(f_), 0);
    f_ = nullptr;
    if (stats_ != nullptr) {
      stats_->spilled_rows += rows_;
      stats_->spilled_bytes += rows_ * cols_ * static_cast<int64_t>(sizeof(int64_t));
      ++stats_->runs_written;
    }
    SpillRun run;
    run.file = std::move(file_);
    run.rows = rows_;
    run.cols = cols_;
    return run;
  }

 private:
  SpillFile file_;
  std::FILE* f_ = nullptr;
  int cols_;
  int64_t rows_ = 0;
  SpillStats* stats_;
  std::vector<int64_t> scratch_;
};

class SpillRunReader {
 public:
  SpillRunReader(const SpillRun& run, Schema schema)
      : schema_(std::move(schema)), cols_(run.cols), remaining_(run.rows) {
    CONCLAVE_CHECK_EQ(schema_.NumColumns(), cols_);
    f_ = std::fopen(run.file.path().c_str(), "rb");
    CONCLAVE_CHECK(f_ != nullptr);
  }
  ~SpillRunReader() {
    if (f_ != nullptr) {
      std::fclose(f_);
    }
  }
  SpillRunReader(const SpillRunReader&) = delete;
  SpillRunReader& operator=(const SpillRunReader&) = delete;

  int64_t remaining() const { return remaining_; }

  // De-interleaves the next <= max_rows rows into a columnar batch; empty batch
  // at end of stream.
  Relation ReadBatch(int64_t max_rows) {
    const int64_t n = std::min(remaining_, max_rows);
    Relation batch{schema_};
    batch.Resize(n);
    if (n == 0) {
      return batch;
    }
    scratch_.resize(static_cast<size_t>(n) * cols_);
    const size_t read = std::fread(scratch_.data(), sizeof(int64_t), scratch_.size(), f_);
    CONCLAVE_CHECK_EQ(read, scratch_.size());
    for (int c = 0; c < cols_; ++c) {
      int64_t* const dst = batch.ColumnData(c);
      for (int64_t r = 0; r < n; ++r) {
        dst[r] = scratch_[static_cast<size_t>(r) * cols_ + c];
      }
    }
    remaining_ -= n;
    return batch;
  }

 private:
  Schema schema_;
  std::FILE* f_ = nullptr;
  int cols_;
  int64_t remaining_;
  std::vector<int64_t> scratch_;
};

// Copies rows [lo, hi) of `src` as an owned chunk (the run-formation slice).
Relation CopySlice(const Relation& src, int64_t lo, int64_t hi) {
  Relation chunk{src.schema()};
  chunk.Resize(hi - lo);
  for (int c = 0; c < src.NumColumns(); ++c) {
    const auto column = src.ColumnSpan(c);
    std::copy(column.begin() + lo, column.begin() + hi, chunk.ColumnData(c));
  }
  return chunk;
}

// --- K-way merge over spilled runs -------------------------------------------------
//
// Same discipline as shard_ops.cc's KWayMerge: a binary heap keyed on each
// stream's current head row, ties resolving to the lower stream index, so
// merging contiguous stable-sorted runs reproduces the global stable sort.

struct MergeSource {
  std::unique_ptr<SpillRunReader> reader;
  Relation batch;
  int64_t pos = 0;

  bool Refill(int64_t batch_rows, ResidencyMeter& meter) {
    if (pos < batch.NumRows()) {
      return true;
    }
    meter.Sub(batch.NumRows());
    batch = reader->ReadBatch(batch_rows);
    meter.Add(batch.NumRows());
    pos = 0;
    return batch.NumRows() > 0;
  }
  int64_t Cell(int col) const { return batch.ColumnSpan(col)[pos]; }
};

// Three-way comparison of the head rows of sources a and b over `key_columns`
// (ascending unless `ascending` is false). Zero means equal keys.
int CompareHeads(const MergeSource& a, const MergeSource& b,
                 std::span<const int> key_columns, bool ascending) {
  for (int col : key_columns) {
    const int64_t va = a.Cell(col);
    const int64_t vb = b.Cell(col);
    if (va != vb) {
      const int dir = va < vb ? -1 : 1;
      return ascending ? dir : -dir;
    }
  }
  return 0;
}

// Merges `runs` (each sorted by `key_columns`) into a single sorted row stream,
// invoking `emit(source)` once per row in merged order. `emit` must consume the
// source's current head before it advances.
template <typename Emit>
void MergeRunStream(std::vector<SpillRun>& runs, const Schema& schema,
                    std::span<const int> key_columns, bool ascending,
                    int64_t batch_rows, ResidencyMeter& meter, Emit&& emit) {
  const size_t k = runs.size();
  std::vector<MergeSource> sources(k);
  for (size_t i = 0; i < k; ++i) {
    sources[i].reader = std::make_unique<SpillRunReader>(runs[i], schema);
  }
  // comes_before(a, b): strict ordering with lower-index tie-break.
  auto comes_before = [&](size_t a, size_t b) {
    const int cmp = CompareHeads(sources[a], sources[b], key_columns, ascending);
    return cmp != 0 ? cmp < 0 : a < b;
  };
  // Binary min-heap of live source indices (std::priority_queue is a max-heap;
  // invert the comparator).
  std::vector<size_t> heap;
  heap.reserve(k);
  auto heap_cmp = [&](size_t a, size_t b) { return comes_before(b, a); };
  for (size_t i = 0; i < k; ++i) {
    if (sources[i].Refill(batch_rows, meter)) {
      heap.push_back(i);
    }
  }
  std::make_heap(heap.begin(), heap.end(), heap_cmp);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_cmp);
    const size_t i = heap.back();
    heap.pop_back();
    emit(sources[i]);
    ++sources[i].pos;
    if (sources[i].Refill(batch_rows, meter)) {
      heap.push_back(i);
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  }
  for (auto& source : sources) {
    meter.Sub(source.batch.NumRows());
  }
}

// Row destinations for merge output: an intermediate run file or the final
// relation. The final relation is the operator's output and therefore outside
// the residency meter; the `buffered` row buffer inside sinks is O(1) rows.
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual void Append(std::span<const int64_t> row) = 0;
};

class FileSink : public RowSink {
 public:
  explicit FileSink(SpillRunWriter* writer) : writer_(writer) {}
  void Append(std::span<const int64_t> row) override { writer_->AppendRow(row); }

 private:
  SpillRunWriter* writer_;
};

class RelationSink : public RowSink {
 public:
  explicit RelationSink(Relation* out) : out_(out) {}
  void Append(std::span<const int64_t> row) override { out_->AppendRow(row); }

 private:
  Relation* out_;
};

// Reduces `runs` level by level until at most kSpillMergeFanIn remain, merging
// adjacent groups (preserving run order, hence stability), then merges the
// final group into `final_emit`. `per_row` post-processes the merged stream
// (identity for sort, dedup for distinct, combine for aggregate); it receives
// the sink to write surviving rows to and must flush its own O(1) tail state
// when the sink changes — we re-create the processor per merge for that.
template <typename MakeProcessor>
void MultiLevelMerge(std::vector<SpillRun> runs, const TempDir& dir,
                     const Schema& schema, std::span<const int> key_columns,
                     bool ascending, int64_t budget, SpillStats* stats,
                     ResidencyMeter& meter, Relation* out,
                     MakeProcessor&& make_processor) {
  const int64_t batch_rows = std::max<int64_t>(1, budget / (kSpillMergeFanIn + 1));
  int sequence = 1 << 20;  // Distinct from run-formation sequence numbers.
  while (static_cast<int64_t>(runs.size()) > kSpillMergeFanIn) {
    if (stats != nullptr) {
      ++stats->merge_passes;
    }
    std::vector<SpillRun> next;
    for (size_t lo = 0; lo < runs.size(); lo += kSpillMergeFanIn) {
      const size_t hi = std::min(runs.size(), lo + kSpillMergeFanIn);
      std::vector<SpillRun> group(std::make_move_iterator(runs.begin() + lo),
                                  std::make_move_iterator(runs.begin() + hi));
      SpillRunWriter writer(dir, sequence++, schema.NumColumns(), stats);
      FileSink sink(&writer);
      auto processor = make_processor(&sink);
      MergeRunStream(group, schema, key_columns, ascending, batch_rows, meter,
                     [&](const MergeSource& s) { processor->Row(s); });
      processor->Finish();
      next.push_back(writer.Finish());
    }
    runs = std::move(next);
  }
  if (stats != nullptr) {
    ++stats->merge_passes;
  }
  RelationSink sink(out);
  auto processor = make_processor(&sink);
  MergeRunStream(runs, schema, key_columns, ascending, batch_rows, meter,
                 [&](const MergeSource& s) { processor->Row(s); });
  processor->Finish();
}

// --- Per-row merge processors ------------------------------------------------------

// Passes every merged row through (external sort).
class PassThroughProcessor {
 public:
  PassThroughProcessor(RowSink* sink, int cols) : sink_(sink), row_(cols) {}
  void Row(const MergeSource& s) {
    for (size_t c = 0; c < row_.size(); ++c) {
      row_[c] = s.Cell(static_cast<int>(c));
    }
    sink_->Append(row_);
  }
  void Finish() {}

 private:
  RowSink* sink_;
  std::vector<int64_t> row_;
};

// Drops rows equal to the previously emitted row (external distinct; runs are
// already internally deduped, so cross-run duplicates are adjacent after merge).
class DedupProcessor {
 public:
  DedupProcessor(RowSink* sink, int cols) : sink_(sink), row_(cols) {}
  void Row(const MergeSource& s) {
    bool is_new = !has_last_;
    for (size_t c = 0; c < row_.size(); ++c) {
      row_[c] = s.Cell(static_cast<int>(c));
      if (!is_new && row_[c] != last_[c]) {
        is_new = true;
      }
    }
    if (is_new) {
      sink_->Append(row_);
      last_ = row_;
      has_last_ = true;
    }
  }
  void Finish() {}

 private:
  RowSink* sink_;
  std::vector<int64_t> row_;
  std::vector<int64_t> last_;
  bool has_last_ = false;
};

// Combines adjacent equal-key rows (external aggregate). Rows carry the group
// key in columns [0, group_cols) and one or two accumulator columns after it:
// (sum, count) for kMean runs, a single partial otherwise. `finalize_mean`
// turns the (sum, count) pair into the quotient on the FINAL level only.
class CombineProcessor {
 public:
  CombineProcessor(RowSink* sink, int group_cols, int agg_cols, AggKind kind,
                   bool finalize_mean)
      : sink_(sink),
        group_cols_(group_cols),
        agg_cols_(agg_cols),
        kind_(kind),
        finalize_mean_(finalize_mean),
        current_(group_cols + agg_cols),
        row_(group_cols + agg_cols) {}

  void Row(const MergeSource& s) {
    for (size_t c = 0; c < row_.size(); ++c) {
      row_[c] = s.Cell(static_cast<int>(c));
    }
    if (has_current_) {
      bool same = true;
      for (int c = 0; c < group_cols_; ++c) {
        if (row_[c] != current_[c]) {
          same = false;
          break;
        }
      }
      if (same) {
        Combine(row_);
        return;
      }
      Emit();
    }
    current_ = row_;
    has_current_ = true;
  }

  void Finish() {
    if (has_current_) {
      Emit();
      has_current_ = false;
    }
  }

 private:
  void Combine(const std::vector<int64_t>& row) {
    for (int a = 0; a < agg_cols_; ++a) {
      int64_t& acc = current_[group_cols_ + a];
      const int64_t v = row[group_cols_ + a];
      switch (kind_) {
        case AggKind::kSum:
        case AggKind::kCount:
        case AggKind::kMean:  // Both the sum and the count column add.
          acc += v;
          break;
        case AggKind::kMin:
          acc = std::min(acc, v);
          break;
        case AggKind::kMax:
          acc = std::max(acc, v);
          break;
      }
    }
  }

  void Emit() {
    if (finalize_mean_) {
      // Same truncating division as ops.cc's Accumulator::Finalize; the exact
      // (sum, count) totals make the quotient chunking-invariant.
      const int64_t sum = current_[group_cols_];
      const int64_t count = current_[group_cols_ + 1];
      current_[group_cols_] = count == 0 ? 0 : sum / count;
      sink_->Append(std::span<const int64_t>(current_.data(),
                                             static_cast<size_t>(group_cols_) + 1));
    } else {
      sink_->Append(current_);
    }
  }

  RowSink* sink_;
  int group_cols_;
  int agg_cols_;
  AggKind kind_;
  bool finalize_mean_;
  std::vector<int64_t> current_;
  std::vector<int64_t> row_;
  bool has_current_ = false;
};

}  // namespace

// --- External sort -----------------------------------------------------------------

Relation SortBy(const Relation& input, std::span<const int> columns, bool ascending,
                int64_t budget, SpillStats* stats) {
  const int64_t rows = input.NumRows();
  if (budget <= 0 || rows <= budget) {
    return ops::SortBy(input, columns, ascending);
  }
  ResidencyMeter meter(stats);
  TempDir dir;
  std::vector<SpillRun> runs;
  for (int64_t lo = 0; lo < rows; lo += budget) {
    const int64_t hi = std::min(rows, lo + budget);
    meter.Add(hi - lo);
    Relation chunk = CopySlice(input, lo, hi);
    meter.Add(hi - lo);  // Sorted copy coexists with the slice: 2x chunk peak.
    Relation sorted = ops::SortBy(chunk, columns, ascending);
    SpillRunWriter writer(dir, static_cast<int>(runs.size()), input.NumColumns(),
                          stats);
    writer.Append(sorted);
    runs.push_back(writer.Finish());
    meter.Sub(2 * (hi - lo));
  }
  Relation out{input.schema()};
  out.Reserve(rows);
  MultiLevelMerge(std::move(runs), dir, input.schema(), columns, ascending, budget,
                  stats, meter, &out, [&](RowSink* sink) {
                    return std::make_unique<PassThroughProcessor>(
                        sink, input.NumColumns());
                  });
  return out;
}

// --- External distinct -------------------------------------------------------------

Relation Distinct(const Relation& input, std::span<const int> columns,
                  int64_t budget, SpillStats* stats) {
  const int64_t rows = input.NumRows();
  if (budget <= 0 || rows <= budget) {
    return ops::Distinct(input, columns);
  }
  ResidencyMeter meter(stats);
  TempDir dir;
  std::vector<SpillRun> runs;
  Schema run_schema;
  std::vector<int> merge_columns;
  for (int64_t lo = 0; lo < rows; lo += budget) {
    const int64_t hi = std::min(rows, lo + budget);
    meter.Add(hi - lo);
    Relation chunk = CopySlice(input, lo, hi);
    meter.Add(hi - lo);
    // Each run is ops::Distinct of its chunk: projected, sorted, deduped.
    Relation run = ops::Distinct(chunk, columns);
    if (runs.empty()) {
      run_schema = run.schema();
      merge_columns.resize(static_cast<size_t>(run.NumColumns()));
      for (size_t c = 0; c < merge_columns.size(); ++c) {
        merge_columns[c] = static_cast<int>(c);
      }
    }
    SpillRunWriter writer(dir, static_cast<int>(runs.size()), run.NumColumns(),
                          stats);
    writer.Append(run);
    runs.push_back(writer.Finish());
    meter.Sub(2 * (hi - lo));
  }
  Relation out{run_schema};
  const int cols = run_schema.NumColumns();
  MultiLevelMerge(std::move(runs), dir, run_schema, merge_columns,
                  /*ascending=*/true, budget, stats, meter, &out,
                  [&](RowSink* sink) {
                    return std::make_unique<DedupProcessor>(sink, cols);
                  });
  return out;
}

// --- External (partial-spill) aggregate --------------------------------------------

Relation Aggregate(const Relation& input, std::span<const int> group_columns,
                   AggKind kind, int agg_column, const std::string& output_name,
                   int64_t budget, SpillStats* stats) {
  const int64_t rows = input.NumRows();
  if (budget <= 0 || rows <= budget) {
    return ops::Aggregate(input, group_columns, kind, agg_column, output_name);
  }
  ResidencyMeter meter(stats);
  TempDir dir;
  const int group_cols = static_cast<int>(group_columns.size());
  const bool is_mean = kind == AggKind::kMean;
  const int agg_cols = is_mean ? 2 : 1;
  std::vector<SpillRun> runs;
  Schema run_schema;
  Schema out_schema;
  for (int64_t lo = 0; lo < rows; lo += budget) {
    const int64_t hi = std::min(rows, lo + budget);
    meter.Add(hi - lo);
    Relation chunk = CopySlice(input, lo, hi);
    meter.Add(hi - lo);  // Partial map output coexists with the chunk.
    Relation partial;
    if (is_mean) {
      // kMean spills exact (sum, count) partials — the quotient is taken once,
      // after the merge, exactly as the in-memory accumulator finalizes.
      Relation sums =
          ops::Aggregate(chunk, group_columns, AggKind::kSum, agg_column, output_name);
      Relation counts = ops::Aggregate(chunk, group_columns, AggKind::kCount,
                                       agg_column, output_name);
      // Both partials enumerate the same groups sorted the same way; zip them.
      CONCLAVE_CHECK_EQ(sums.NumRows(), counts.NumRows());
      std::vector<ColumnDef> defs = sums.schema().columns();
      defs.emplace_back("__spill_count");
      partial = Relation{Schema(std::move(defs))};
      partial.Resize(sums.NumRows());
      for (int c = 0; c <= group_cols; ++c) {
        const auto column = sums.ColumnSpan(c);
        std::copy(column.begin(), column.end(), partial.ColumnData(c));
      }
      const auto count_col = counts.ColumnSpan(group_cols);
      std::copy(count_col.begin(), count_col.end(),
                partial.ColumnData(group_cols + 1));
      if (runs.empty()) {
        out_schema = sums.schema();
      }
    } else {
      // Per-chunk partials under the partial kind; kCount partials combine by
      // addition, everything else under its own kind (all associative).
      partial = ops::Aggregate(chunk, group_columns, kind, agg_column, output_name);
      if (runs.empty()) {
        out_schema = partial.schema();
      }
    }
    if (runs.empty()) {
      run_schema = partial.schema();
    }
    SpillRunWriter writer(dir, static_cast<int>(runs.size()), partial.NumColumns(),
                          stats);
    writer.Append(partial);
    runs.push_back(writer.Finish());
    meter.Sub(2 * (hi - lo));
  }
  std::vector<int> key_columns(static_cast<size_t>(group_cols));
  for (int c = 0; c < group_cols; ++c) {
    key_columns[static_cast<size_t>(c)] = c;
  }
  // Intermediate merge levels combine partials but keep the run layout; only
  // the final level (into `out`) finalizes kMean's quotient. MultiLevelMerge
  // hands FileSinks to intermediate levels and the RelationSink last, so the
  // processor distinguishes them by sink identity.
  Relation out{out_schema};
  const AggKind combine_kind = kind == AggKind::kCount ? AggKind::kSum : kind;
  MultiLevelMerge(std::move(runs), dir, run_schema, key_columns,
                  /*ascending=*/true, budget, stats, meter, &out,
                  [&](RowSink* sink) {
                    const bool is_final = dynamic_cast<RelationSink*>(sink) != nullptr;
                    return std::make_unique<CombineProcessor>(
                        sink, group_cols, agg_cols, combine_kind,
                        /*finalize_mean=*/is_mean && is_final);
                  });
  return out;
}

// --- Grace hash join ---------------------------------------------------------------

namespace {

// Number of hash partitions per Grace level; matches the merge fan-in so the
// priced SpillMergePasses(right_rows, budget) equals the recursion depth for
// uniformly distributed keys.
constexpr int kGraceFanOut = static_cast<int>(kSpillMergeFanIn);

uint64_t GraceHashRow(const std::vector<std::span<const int64_t>>& key_cols,
                      int64_t row, int level) {
  uint64_t h = 0x436f6e636c617665ULL ^ (0x9e3779b97f4a7c15ULL * (level + 1));
  for (const auto& col : key_cols) {
    h = SplitMix64(h ^ static_cast<uint64_t>(col[row]));
  }
  return h;
}

// A Grace partition file holds (key columns..., global row id) rows. The scatter
// walks rows in order, so ids ascend within every partition at every level.
Schema GracePartitionSchema(int key_cols) {
  std::vector<ColumnDef> defs;
  defs.reserve(static_cast<size_t>(key_cols) + 1);
  for (int c = 0; c < key_cols; ++c) {
    defs.emplace_back(StrFormat("__spill_key%d", c));
  }
  defs.emplace_back("__spill_gid");
  return Schema(std::move(defs));
}

struct GraceBuckets {
  std::vector<SpillRun> runs;  // kGraceFanOut partitions.
};

// Scatters (key, id) rows from `reader` (a parent partition file) into
// kGraceFanOut child partition files under the level-salted hash.
GraceBuckets PartitionFromRun(const SpillRun& parent, const Schema& schema,
                              const TempDir& dir, int* sequence, int level,
                              int64_t budget, SpillStats* stats,
                              ResidencyMeter& meter) {
  const int key_cols = schema.NumColumns() - 1;
  std::vector<std::unique_ptr<SpillRunWriter>> writers;
  writers.reserve(kGraceFanOut);
  for (int b = 0; b < kGraceFanOut; ++b) {
    writers.push_back(
        std::make_unique<SpillRunWriter>(dir, (*sequence)++, key_cols + 1, stats));
  }
  SpillRunReader reader(parent, schema);
  const int64_t batch_rows = std::max<int64_t>(1, budget);
  std::vector<int64_t> row(static_cast<size_t>(key_cols) + 1);
  while (reader.remaining() > 0) {
    Relation batch = reader.ReadBatch(batch_rows);
    meter.Add(batch.NumRows());
    std::vector<std::span<const int64_t>> key_spans;
    key_spans.reserve(static_cast<size_t>(key_cols));
    for (int c = 0; c < key_cols; ++c) {
      key_spans.push_back(batch.ColumnSpan(c));
    }
    const auto ids = batch.ColumnSpan(key_cols);
    for (int64_t r = 0; r < batch.NumRows(); ++r) {
      const int bucket =
          static_cast<int>(GraceHashRow(key_spans, r, level) % kGraceFanOut);
      for (int c = 0; c < key_cols; ++c) {
        row[static_cast<size_t>(c)] = key_spans[static_cast<size_t>(c)][r];
      }
      row[static_cast<size_t>(key_cols)] = ids[r];
      writers[static_cast<size_t>(bucket)]->AppendRow(row);
    }
    meter.Sub(batch.NumRows());
  }
  GraceBuckets buckets;
  buckets.runs.reserve(kGraceFanOut);
  for (auto& writer : writers) {
    buckets.runs.push_back(writer->Finish());
  }
  return buckets;
}

// Scatters (key, id) rows straight from a borrowed input relation (level 0).
GraceBuckets PartitionFromRelation(const Relation& input,
                                   std::span<const int> key_columns,
                                   const TempDir& dir, int* sequence,
                                   int64_t /*budget*/, SpillStats* stats) {
  const int key_cols = static_cast<int>(key_columns.size());
  std::vector<std::unique_ptr<SpillRunWriter>> writers;
  writers.reserve(kGraceFanOut);
  for (int b = 0; b < kGraceFanOut; ++b) {
    writers.push_back(
        std::make_unique<SpillRunWriter>(dir, (*sequence)++, key_cols + 1, stats));
  }
  std::vector<std::span<const int64_t>> key_spans;
  key_spans.reserve(static_cast<size_t>(key_cols));
  for (int c : key_columns) {
    key_spans.push_back(input.ColumnSpan(c));
  }
  std::vector<int64_t> row(static_cast<size_t>(key_cols) + 1);
  for (int64_t r = 0; r < input.NumRows(); ++r) {
    const int bucket = static_cast<int>(GraceHashRow(key_spans, r, 0) % kGraceFanOut);
    for (int c = 0; c < key_cols; ++c) {
      row[static_cast<size_t>(c)] = key_spans[static_cast<size_t>(c)][r];
    }
    row[static_cast<size_t>(key_cols)] = r;
    writers[static_cast<size_t>(bucket)]->AppendRow(row);
  }
  GraceBuckets buckets;
  buckets.runs.reserve(kGraceFanOut);
  for (auto& writer : writers) {
    buckets.runs.push_back(writer->Finish());
  }
  return buckets;
}

// Joins one (left partition, right partition) pair. Appends a pair vector
// (sorted by left gid, right gid ascending within) per solved leaf into `leaf_pairs`.
void SolveGraceBucket(SpillRun left, SpillRun right, const Schema& schema,
                      const TempDir& dir, int* sequence, int level, int64_t budget,
                      SpillStats* stats, ResidencyMeter& meter,
                      std::vector<std::vector<std::pair<int64_t, int64_t>>>* leaf_pairs) {
  if (left.rows == 0 || right.rows == 0) {
    return;
  }
  const int key_cols = schema.NumColumns() - 1;
  if (right.rows > budget && level < kMaxGraceDepth) {
    GraceBuckets lb =
        PartitionFromRun(left, schema, dir, sequence, level + 1, budget, stats, meter);
    GraceBuckets rb =
        PartitionFromRun(right, schema, dir, sequence, level + 1, budget, stats, meter);
    // Parent files are no longer needed; let them unlink before recursing so
    // disk usage stays bounded by two live levels.
    left = SpillRun{};
    right = SpillRun{};
    for (int b = 0; b < kGraceFanOut; ++b) {
      SolveGraceBucket(std::move(lb.runs[static_cast<size_t>(b)]),
                       std::move(rb.runs[static_cast<size_t>(b)]), schema, dir,
                       sequence, level + 1, budget, stats, meter, leaf_pairs);
    }
    return;
  }
  // Build on the right partition (<= budget rows, or a duplicate-heavy key at
  // the depth cap), probe the left partition streamed in budget-sized batches.
  SpillRunReader right_reader(right, schema);
  meter.Add(right.rows);
  Relation build = right_reader.ReadBatch(right.rows);
  std::vector<int> bucket_keys(static_cast<size_t>(key_cols));
  for (int c = 0; c < key_cols; ++c) {
    bucket_keys[static_cast<size_t>(c)] = c;
  }
  const auto right_gids = build.ColumnSpan(key_cols);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  SpillRunReader left_reader(left, schema);
  const int64_t batch_rows = std::max<int64_t>(1, budget);
  std::vector<int64_t> lrows;
  std::vector<int64_t> rrows;
  while (left_reader.remaining() > 0) {
    Relation probe = left_reader.ReadBatch(batch_rows);
    meter.Add(probe.NumRows());
    const auto left_gids = probe.ColumnSpan(key_cols);
    lrows.clear();
    rrows.clear();
    // ops::JoinRowPairs probes left rows in order and lists right matches
    // ascending by build position; positions map to ascending gids because the
    // scatter preserved row order at every level.
    ops::JoinRowPairs(probe, build, bucket_keys, bucket_keys, &lrows, &rrows);
    pairs.reserve(pairs.size() + lrows.size());
    for (size_t i = 0; i < lrows.size(); ++i) {
      pairs.emplace_back(left_gids[lrows[i]], right_gids[rrows[i]]);
    }
    meter.Sub(probe.NumRows());
  }
  meter.Sub(right.rows);
  if (!pairs.empty()) {
    leaf_pairs->push_back(std::move(pairs));
  }
}

}  // namespace

void JoinRowPairs(const Relation& left, const Relation& right,
                  std::span<const int> left_keys, std::span<const int> right_keys,
                  int64_t budget, SpillStats* stats,
                  std::vector<int64_t>* left_rows, std::vector<int64_t>* right_rows) {
  if (budget <= 0 || right.NumRows() <= budget) {
    ops::JoinRowPairs(left, right, left_keys, right_keys, left_rows, right_rows);
    return;
  }
  ResidencyMeter meter(stats);
  TempDir dir;
  int sequence = 0;
  const Schema schema = GracePartitionSchema(static_cast<int>(left_keys.size()));
  GraceBuckets lb = PartitionFromRelation(left, left_keys, dir, &sequence, budget, stats);
  GraceBuckets rb =
      PartitionFromRelation(right, right_keys, dir, &sequence, budget, stats);
  if (stats != nullptr) {
    ++stats->merge_passes;
  }
  std::vector<std::vector<std::pair<int64_t, int64_t>>> leaf_pairs;
  for (int b = 0; b < kGraceFanOut; ++b) {
    SolveGraceBucket(std::move(lb.runs[static_cast<size_t>(b)]),
                     std::move(rb.runs[static_cast<size_t>(b)]), schema, dir,
                     &sequence, 1, budget, stats, meter, &leaf_pairs);
  }
  // Every left gid lives in exactly one leaf, so a k-way merge by (left gid,
  // right gid) across the leaf pair vectors reproduces ops::JoinRowPairs'
  // order — the same provenance merge ShardedJoin applies to its buckets. The
  // pair vectors are output-sized and, like the output, sit outside the
  // residency meter.
  size_t total = 0;
  for (const auto& pairs : leaf_pairs) {
    total += pairs.size();
  }
  left_rows->clear();
  right_rows->clear();
  left_rows->reserve(total);
  right_rows->reserve(total);
  std::vector<size_t> pos(leaf_pairs.size(), 0);
  auto comes_before = [&](size_t a, size_t b) {
    const auto& pa = leaf_pairs[a][pos[a]];
    const auto& pb = leaf_pairs[b][pos[b]];
    return pa != pb ? pa < pb : a < b;
  };
  std::vector<size_t> heap;
  auto heap_cmp = [&](size_t a, size_t b) { return comes_before(b, a); };
  for (size_t i = 0; i < leaf_pairs.size(); ++i) {
    if (!leaf_pairs[i].empty()) {
      heap.push_back(i);
    }
  }
  std::make_heap(heap.begin(), heap.end(), heap_cmp);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_cmp);
    const size_t i = heap.back();
    heap.pop_back();
    const auto& pair = leaf_pairs[i][pos[i]];
    left_rows->push_back(pair.first);
    right_rows->push_back(pair.second);
    if (++pos[i] < leaf_pairs[i].size()) {
      heap.push_back(i);
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  }
}

Relation Join(const Relation& left, const Relation& right,
              std::span<const int> left_keys, std::span<const int> right_keys,
              int64_t budget, SpillStats* stats) {
  if (budget <= 0 || right.NumRows() <= budget) {
    return ops::Join(left, right, left_keys, right_keys);
  }
  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  JoinRowPairs(left, right, left_keys, right_keys, budget, stats, &left_rows,
               &right_rows);
  // Assemble exactly as ops::Join does: keys and left non-keys gathered from the
  // left, right non-keys from the right, in JoinOutputSchema order.
  std::vector<int> left_rest;
  std::vector<int> right_rest;
  Schema out_schema = ops::JoinOutputSchema(left.schema(), right.schema(), left_keys,
                                            right_keys, &left_rest, &right_rest);
  Relation out{out_schema};
  out.Resize(static_cast<int64_t>(left_rows.size()));
  int dst = 0;
  for (int key : left_keys) {
    ops::GatherColumnInto(left, key, left_rows, out.ColumnData(dst++));
  }
  for (int col : left_rest) {
    ops::GatherColumnInto(left, col, left_rows, out.ColumnData(dst++));
  }
  for (int col : right_rest) {
    ops::GatherColumnInto(right, col, right_rows, out.ColumnData(dst++));
  }
  return out;
}

}  // namespace spill
}  // namespace conclave
