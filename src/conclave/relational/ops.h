// Cleartext relational operator library.
//
// These functions define the *semantics* of every Conclave operator. They serve three
// roles: (1) the execution engine behind the Local/Spark cleartext backends, (2) the
// cleartext steps inside hybrid protocols (the STP's enumerate/join/sort work), and
// (3) the single-trusted-party reference that every secure execution is tested against.
//
// Column references are pre-resolved indices; the IR layer validates names against
// schemas and reports errors before execution reaches this layer, so out-of-range
// indices here are programmer errors (CHECKed).
#ifndef CONCLAVE_RELATIONAL_OPS_H_
#define CONCLAVE_RELATIONAL_OPS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "conclave/relational/relation.h"

namespace conclave {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);
bool EvalCompare(CompareOp op, int64_t lhs, int64_t rhs);

// Row predicate: column <op> (column | literal).
struct FilterPredicate {
  int column = 0;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_column = false;
  int rhs_column = 0;
  int64_t rhs_literal = 0;

  static FilterPredicate ColumnVsLiteral(int column, CompareOp op, int64_t literal) {
    FilterPredicate p;
    p.column = column;
    p.op = op;
    p.rhs_is_column = false;
    p.rhs_literal = literal;
    return p;
  }
  static FilterPredicate ColumnVsColumn(int column, CompareOp op, int rhs_column) {
    FilterPredicate p;
    p.column = column;
    p.op = op;
    p.rhs_is_column = true;
    p.rhs_column = rhs_column;
    return p;
  }
};

enum class AggKind { kSum, kCount, kMin, kMax, kMean };

const char* AggKindName(AggKind kind);

enum class ArithKind { kAdd, kSub, kMul, kDiv };

const char* ArithKindName(ArithKind kind);

// Window functions computed per partition, in `order_column` order (SQL's
// f(...) OVER (PARTITION BY p ORDER BY o)). These cover the SMCQL workload the paper
// could not run ("Conclave does not yet support window aggregates", §7.4): recurrent
// c.diff needs kLag on the diagnosis timestamp.
enum class WindowFn {
  kRowNumber,   // 1-based rank of the row within its partition.
  kLag,         // Previous row's `value_column` within the partition; 0 for the first.
  kRunningSum,  // Inclusive prefix sum of `value_column` within the partition.
};

const char* WindowFnName(WindowFn fn);

// Window specification. Ties in (partition, order) make kLag/kRunningSum ambiguous
// (as in SQL); results are deterministic only up to tie order, and the secure
// implementations may break ties differently than the stable cleartext sort.
struct WindowSpec {
  std::vector<int> partition_columns;
  int order_column = 0;
  WindowFn fn = WindowFn::kRowNumber;
  int value_column = 0;  // Ignored for kRowNumber.
  std::string output_name;
};

// Appends a new column `result_name` = lhs <kind> rhs, where rhs is a column or a
// literal. For kDiv, the numerator is first multiplied by `scale` (fixed-point style;
// scale=1 gives plain integer division; HHI-style share-of-total queries pass 10^4).
// Division by zero yields 0 (the paper's queries pre-filter zero denominators; we keep
// execution total rather than fault).
struct ArithSpec {
  ArithKind kind = ArithKind::kMul;
  int lhs_column = 0;
  bool rhs_is_column = false;
  int rhs_column = 0;
  int64_t rhs_literal = 0;
  std::string result_name;
  int64_t scale = 1;
};

namespace ops {

// Materializes the listed rows (in the given order, duplicates allowed) as a new
// relation: one contiguous-destination gather per column. The backbone of every
// selection-shaped kernel (filter, sort, distinct, sentinel strip) and of the
// cleartext sides of the hybrid protocols.
Relation GatherRows(const Relation& input, std::span<const int64_t> rows);

// Gathers one source column at the listed rows into a caller-owned destination
// buffer of rows.size() cells (morsel-parallel, disjoint writes). The per-column
// primitive behind GatherRows and the join-output assembly.
void GatherColumnInto(const Relation& src, int src_col,
                      std::span<const int64_t> rows, int64_t* dst);

// Keeps columns listed in `columns`, in that order (reordering projections allowed).
Relation Project(const Relation& input, std::span<const int> columns);

Relation Filter(const Relation& input, const FilterPredicate& predicate);

// Inner equi-join. Output schema: join keys (left names), then left non-key columns,
// then right non-key columns. Output rows are ordered by left row, then right row
// (stable); secure join implementations may permute rows and are compared unordered.
Relation Join(const Relation& left, const Relation& right,
              std::span<const int> left_keys, std::span<const int> right_keys);

// The matching (left row, right row) pairs of the inner equi-join, in exactly the
// order Join materializes rows: left-scan order, ascending right row within each
// match set. Join is a gather over this pair stream; the sharded partitioned join
// (shard_ops.h) consumes it per bucket so it can merge bucket outputs back into the
// unsharded order by row provenance.
void JoinRowPairs(const Relation& left, const Relation& right,
                  std::span<const int> left_keys, std::span<const int> right_keys,
                  std::vector<int64_t>* left_rows, std::vector<int64_t>* right_rows);

// Group-by aggregate. Output schema: group columns, then one aggregate column named
// `output_name`. For kCount, `agg_column` is ignored. Output rows are sorted by group
// key, making cleartext evaluation deterministic. An empty `group_columns` computes a
// single global aggregate row.
Relation Aggregate(const Relation& input, std::span<const int> group_columns,
                   AggKind kind, int agg_column, const std::string& output_name);

// Duplicate-preserving set union; all inputs must have matching column names.
Relation Concat(std::span<const Relation> inputs);
// Copy-free variant for the execution backends: concatenates the relations behind
// the pointers directly, instead of forcing callers to materialize a contiguous
// vector of relation copies first.
Relation Concat(std::span<const Relation* const> inputs);

// Stable sort by the given columns (lexicographic), ascending or descending.
Relation SortBy(const Relation& input, std::span<const int> columns,
                bool ascending = true);

// Projects to `columns` and removes duplicate rows; output sorted for determinism.
Relation Distinct(const Relation& input, std::span<const int> columns);

Relation Limit(const Relation& input, int64_t count);

Relation Arithmetic(const Relation& input, const ArithSpec& spec);

// Appends a 0-based row-index column named `index_name`. The hybrid protocols use the
// enumeration to link STP-side cleartext results back to MPC-resident rows (§5.3).
Relation Enumerate(const Relation& input, const std::string& index_name);

// Appends the window function column `spec.output_name`. The output is sorted by
// (partition columns, order column) — the order in which the window is evaluated —
// keeping all input columns.
Relation Window(const Relation& input, const WindowSpec& spec);

// True if rows are sorted (non-decreasing) lexicographically by `columns`.
bool IsSortedBy(const Relation& input, std::span<const int> columns);

// --- Adaptive padding (§9 extension) ----------------------------------------------------
// Sentinel cells occupy [kSentinelBase, ...), above the supported data domain; each
// pad row's cells are globally unique (keyed by `sentinel_stream` and a row counter),
// so pad rows never match a join key and never collide in a group-by.
inline constexpr int64_t kSentinelBase = int64_t{1} << 62;

// The padding pass's row-count policy: the next power of two >= rows (zero rows pad
// to one). This is THE definition — PadToPowerOfTwo executes it and the compiler's
// cardinality pass (compiler/cardinality.cc) and plan-cost estimates query it, so the
// planner can never disagree with the runtime about padded sizes.
inline int64_t PaddedRowCount(int64_t rows) {
  int64_t target = 1;
  while (target < rows) {
    if (target > (int64_t{1} << 61)) {
      return rows;  // No power of two fits in int64; never overflow-wrap.
    }
    target *= 2;
  }
  return target;
}

// Appends sentinel rows until the row count reaches PaddedRowCount(rows). Hides the
// exact cardinality behind its log2 bucket.
Relation PadToPowerOfTwo(const Relation& input, int64_t sentinel_stream);

// Drops every row containing a sentinel cell (the recipient-side inverse of padding).
Relation StripSentinelRows(const Relation& input);

// The output schema of Join (keys with left names, left non-keys, right non-keys).
// Optionally reports the non-key column indices of each side; secure join
// implementations share this logic so all backends agree on output layout.
Schema JoinOutputSchema(const Schema& left, const Schema& right,
                        std::span<const int> left_keys,
                        std::span<const int> right_keys,
                        std::vector<int>* left_rest = nullptr,
                        std::vector<int>* right_rest = nullptr);

}  // namespace ops
}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_OPS_H_
