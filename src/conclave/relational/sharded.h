// Horizontally sharded relation: N columnar shards with one shared schema.
//
// This is the data-parallel unit of the cleartext data plane (the role Spark
// partitions play in the paper's deployment): shard-local operator instances run
// concurrently on the thread pool and only coalesce back into one Relation at the
// MPC frontier, where the secret-sharing / garbling engines and the cost model keep
// seeing the single-relation contract.
//
// Canonical-order invariant: at every node boundary the shards are a *contiguous
// split* of the relation the unsharded executor would have produced — concatenating
// the shards in shard order yields that relation bit for bit. Every kernel in
// shard_ops.h preserves this (order-preserving ops work shard-locally; reordering
// ops merge their per-shard results back into the unsharded order by row
// provenance before re-splitting), which is what extends the PR 1 determinism
// contract to every {pool, shard} combination: results, virtual-clock totals, and
// counters are bit-identical at any shard count. Hash-partitioned layouts appear
// only *inside* kernels (the join's exchange step), never at node boundaries.
#ifndef CONCLAVE_RELATIONAL_SHARDED_H_
#define CONCLAVE_RELATIONAL_SHARDED_H_

#include <vector>

#include "conclave/relational/relation.h"

namespace conclave {

class ShardedRelation {
 public:
  ShardedRelation() = default;
  // An empty sharded relation over `schema` with no shards yet (AddShard to fill).
  explicit ShardedRelation(Schema schema) : schema_(std::move(schema)) {}

  // Wraps one relation as a single shard (no copy).
  static ShardedRelation Single(Relation relation);

  // Contiguous range split into `shard_count` near-equal shards (shard i holds rows
  // [i*rows/n, (i+1)*rows/n) of the canonical order; later shards may be empty when
  // shard_count > rows). The canonical ingest-side partitioner.
  static ShardedRelation SplitEven(const Relation& relation, int shard_count);

  // Process-wide count of SplitEven calls (test observability: the dispatcher
  // caches one split per value, so N sharded consumers of one revealed value
  // must not cost N splits).
  static int64_t SplitEvenCalls();

  // Concatenates the shards in shard order. Under the canonical-order invariant
  // this is exactly the relation the unsharded executor would hold.
  Relation Coalesce() const;

  const Schema& schema() const { return schema_; }
  int NumShards() const { return static_cast<int>(shards_.size()); }
  const Relation& Shard(int i) const { return shards_[static_cast<size_t>(i)]; }
  Relation& MutableShard(int i) { return shards_[static_cast<size_t>(i)]; }
  void AddShard(Relation shard) { shards_.push_back(std::move(shard)); }

  // Total rows across shards.
  int64_t NumRows() const;
  // Total cell footprint across shards; equals the coalesced relation's ByteSize.
  uint64_t ByteSize() const;

  // Non-owning shard pointer list, the argument form the shard_ops kernels take
  // (so an unsharded Relation can join the same code path as a one-entry list).
  std::vector<const Relation*> ShardPtrs() const;

 private:
  Schema schema_;
  std::vector<Relation> shards_;
};

}  // namespace conclave

#endif  // CONCLAVE_RELATIONAL_SHARDED_H_
