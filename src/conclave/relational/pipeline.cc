#include "conclave/relational/pipeline.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "conclave/common/cpu.h"
#include "conclave/common/env.h"
#include "conclave/mpc/reveal_source.h"
#include "conclave/relational/csv.h"
#include "conclave/relational/expr.h"

namespace conclave {

int64_t DefaultBatchRows() {
  // "materialize" (and its numeric spelling "0") turns fusion off; anything
  // else must be a positive batch size.
  return env::Int64Knob("CONCLAVE_BATCH_ROWS", kDefaultBatchRows, /*min_value=*/1,
                        std::numeric_limits<int64_t>::max(),
                        {{"materialize", kMaterializeBatchRows},
                         {"0", kMaterializeBatchRows}});
}

PipelineOp PipelineOp::Filter(const FilterPredicate& predicate) {
  PipelineOp op;
  op.kind = Kind::kFilter;
  op.filter = predicate;
  return op;
}

PipelineOp PipelineOp::Project(std::vector<int> columns) {
  PipelineOp op;
  op.kind = Kind::kProject;
  op.columns = std::move(columns);
  return op;
}

PipelineOp PipelineOp::Arithmetic(const ArithSpec& spec) {
  PipelineOp op;
  op.kind = Kind::kArithmetic;
  op.arith = spec;
  return op;
}

PipelineOp PipelineOp::Limit(int64_t count) {
  PipelineOp op;
  op.kind = Kind::kLimit;
  op.limit_count = count;
  return op;
}

PipelineOp PipelineOp::DistinctOnSorted(std::vector<int> columns) {
  PipelineOp op;
  op.kind = Kind::kDistinctOnSorted;
  op.columns = std::move(columns);
  return op;
}

namespace {

// Materializes rows [lo, hi) of `src` as an owned batch.
Relation CopySlice(const Relation& src, int64_t lo, int64_t hi) {
  Relation batch{src.schema()};
  batch.Resize(hi - lo);
  for (int c = 0; c < src.NumColumns(); ++c) {
    const auto column = src.ColumnSpan(c);
    std::copy(column.begin() + lo, column.begin() + hi, batch.ColumnData(c));
  }
  return batch;
}

}  // namespace

namespace pipeline_internal {

// The consume/flush operator contract. An operator receives owned batches (or,
// for the pipeline head, borrowed slices of the source), emits output batches
// downstream, and may keep only O(1) rows of cross-batch state. Subclasses must
// be batch-invariant: concatenating the emitted batches reproduces the matching
// ops.h kernel bit for bit at every batch size.
class BatchOperator {
 public:
  // `index` is the operator's executor SLOT (a fused run is one slot), not an
  // original op position; Push maps slots back to op indices for stats.
  BatchOperator(BatchPipeline* pipeline, size_t index, Schema output_schema)
      : pipeline_(pipeline), index_(index), output_schema_(std::move(output_schema)) {}
  virtual ~BatchOperator() = default;

  const Schema& output_schema() const { return output_schema_; }

  virtual void Reset() {}
  // Consumes one owned batch, emitting zero or more output batches.
  virtual void Consume(Relation&& batch) = 0;
  // Consumes rows [lo, hi) of a borrowed source relation. The default
  // materializes the slice; operators whose kernel can read the source directly
  // (filter's selection scan, project's column copies) override it to skip the
  // head-of-pipeline copy.
  virtual void ConsumeSlice(const Relation& src, int64_t lo, int64_t hi) {
    SelfDeliver(CopySlice(src, lo, hi));
  }
  // End of stream. None of the streaming operators buffer whole batches, so the
  // default emits nothing; the hook is the contract's drain point.
  virtual void Flush() {}

 protected:
  void Emit(Relation&& batch) { pipeline_->Push(index_ + 1, std::move(batch)); }
  // Routes a head-of-pipeline slice copy through the pipeline's residency
  // accounting and back into this operator's Consume.
  void SelfDeliver(Relation&& batch) { pipeline_->Push(index_, std::move(batch)); }
  // Fused-slot accounting hook (see BatchPipeline::AddOpInputRows).
  void AddOpInputRows(size_t op_index, int64_t rows) {
    pipeline_->AddOpInputRows(op_index, rows);
  }

 private:
  BatchPipeline* pipeline_;
  size_t index_;
  Schema output_schema_;
};

namespace {

class FilterOperator : public BatchOperator {
 public:
  FilterOperator(BatchPipeline* pipeline, size_t index, Schema output_schema,
                 const FilterPredicate& predicate)
      : BatchOperator(pipeline, index, std::move(output_schema)),
        predicate_(predicate) {}

  void Consume(Relation&& batch) override { ConsumeSlice(batch, 0, batch.NumRows()); }

  void ConsumeSlice(const Relation& src, int64_t lo, int64_t hi) override {
    if (hi == lo) {
      return;
    }
    const int64_t* const lhs = src.ColumnSpan(predicate_.column).data();
    const int64_t* const rhs = predicate_.rhs_is_column
                                   ? src.ColumnSpan(predicate_.rhs_column).data()
                                   : nullptr;
    selected_.resize(static_cast<size_t>(hi - lo));
    const size_t count = cpu::SelectCompare(
        static_cast<cpu::Cmp>(predicate_.op), lhs + lo,
        rhs != nullptr ? rhs + lo : nullptr, predicate_.rhs_literal,
        /*base=*/lo, static_cast<size_t>(hi - lo), selected_.data());
    selected_.resize(count);
    if (!selected_.empty()) {
      Emit(ops::GatherRows(src, selected_));
    }
  }

 private:
  FilterPredicate predicate_;
  std::vector<int64_t> selected_;  // Reused scratch; O(batch) rows.
};

class ProjectOperator : public BatchOperator {
 public:
  ProjectOperator(BatchPipeline* pipeline, size_t index, Schema output_schema,
                  std::vector<int> columns)
      : BatchOperator(pipeline, index, std::move(output_schema)),
        columns_(std::move(columns)) {}

  void Consume(Relation&& batch) override { ConsumeSlice(batch, 0, batch.NumRows()); }

  void ConsumeSlice(const Relation& src, int64_t lo, int64_t hi) override {
    if (hi == lo) {
      return;
    }
    Relation out{output_schema()};
    out.Resize(hi - lo);
    for (size_t i = 0; i < columns_.size(); ++i) {
      const auto column = src.ColumnSpan(columns_[i]);
      std::copy(column.begin() + lo, column.begin() + hi,
                out.ColumnData(static_cast<int>(i)));
    }
    Emit(std::move(out));
  }

 private:
  std::vector<int> columns_;
};

class ArithmeticOperator : public BatchOperator {
 public:
  ArithmeticOperator(BatchPipeline* pipeline, size_t index, Schema output_schema,
                     const ArithSpec& spec)
      : BatchOperator(pipeline, index, std::move(output_schema)), spec_(spec) {}

  void Consume(Relation&& batch) override { ConsumeSlice(batch, 0, batch.NumRows()); }

  void ConsumeSlice(const Relation& src, int64_t lo, int64_t hi) override {
    const int64_t rows = hi - lo;
    if (rows == 0) {
      return;
    }
    Relation out{output_schema()};
    out.Resize(rows);
    for (int c = 0; c < src.NumColumns(); ++c) {
      const auto column = src.ColumnSpan(c);
      std::copy(column.begin() + lo, column.begin() + hi, out.ColumnData(c));
    }
    // Same kernel as ops::Arithmetic (incl. kDiv's fixed-point scale and
    // divide-by-zero -> 0), so batch concatenation is bit-identical.
    const int64_t* const lhs = src.ColumnSpan(spec_.lhs_column).data() + lo;
    const int64_t* const rhs = spec_.rhs_is_column
                                   ? src.ColumnSpan(spec_.rhs_column).data() + lo
                                   : nullptr;
    cpu::ArithColumn(static_cast<cpu::Arith>(spec_.kind), lhs, rhs,
                     spec_.rhs_literal, spec_.scale, static_cast<size_t>(rows),
                     out.ColumnData(src.NumColumns()));
    Emit(std::move(out));
  }

 private:
  ArithSpec spec_;
};

class LimitOperator : public BatchOperator {
 public:
  LimitOperator(BatchPipeline* pipeline, size_t index, Schema output_schema,
                int64_t count)
      : BatchOperator(pipeline, index, std::move(output_schema)), count_(count) {}

  void Reset() override { remaining_ = count_; }

  void Consume(Relation&& batch) override {
    const int64_t take = std::min(remaining_, batch.NumRows());
    remaining_ -= take;
    if (take == 0) {
      // Deliberately no early exit: the whole stream is still consumed so
      // per-operator row counts match the unfused execution.
      return;
    }
    if (take == batch.NumRows()) {
      Emit(std::move(batch));
    } else {
      Emit(CopySlice(batch, 0, take));
    }
  }

  void ConsumeSlice(const Relation& src, int64_t lo, int64_t hi) override {
    const int64_t take = std::min(remaining_, hi - lo);
    remaining_ -= take;
    if (take > 0) {
      Emit(CopySlice(src, lo, lo + take));
    }
  }

 private:
  int64_t count_;
  int64_t remaining_ = 0;
};

// Distinct over an input sorted ascending (lexicographically) by a column list
// of which `columns` is a prefix: the projection onto `columns` is then
// non-decreasing, so keeping the first row of every equal run emits exactly
// ops::Distinct's sorted unique rows. Cross-batch state is one row.
class DistinctOnSortedOperator : public BatchOperator {
 public:
  DistinctOnSortedOperator(BatchPipeline* pipeline, size_t index,
                           Schema output_schema, std::vector<int> columns)
      : BatchOperator(pipeline, index, std::move(output_schema)),
        columns_(std::move(columns)) {}

  void Reset() override {
    last_row_.clear();
    has_last_ = false;
  }

  void Consume(Relation&& batch) override { ConsumeSlice(batch, 0, batch.NumRows()); }

  void ConsumeSlice(const Relation& src, int64_t lo, int64_t hi) override {
    selected_.clear();
    std::vector<const int64_t*> cols(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      cols[i] = hi == lo ? nullptr : src.ColumnSpan(columns_[i]).data();
    }
    for (int64_t r = lo; r < hi; ++r) {
      bool is_new = !has_last_;
      if (!is_new) {
        for (size_t i = 0; i < cols.size(); ++i) {
          if (cols[i][r] != last_row_[i]) {
            is_new = true;
            break;
          }
        }
      }
      if (is_new) {
        selected_.push_back(r);
        has_last_ = true;
        last_row_.resize(cols.size());
        for (size_t i = 0; i < cols.size(); ++i) {
          last_row_[i] = cols[i][r];
        }
      }
    }
    if (selected_.empty()) {
      return;
    }
    Relation out{output_schema()};
    out.Resize(static_cast<int64_t>(selected_.size()));
    for (size_t i = 0; i < columns_.size(); ++i) {
      ops::GatherColumnInto(src, columns_[i], selected_,
                            out.ColumnData(static_cast<int>(i)));
    }
    Emit(std::move(out));
  }

 private:
  std::vector<int> columns_;
  bool has_last_ = false;
  std::vector<int64_t> last_row_;      // The last emitted distinct row; O(1) rows.
  std::vector<int64_t> selected_;      // Reused scratch; O(batch) rows.
};

// One executor slot covering a fused run of >= 2 adjacent filter / project /
// arithmetic ops (relational/expr.h): the whole run evaluates in one
// register-resident pass per batch. Push attributes the batch's rows to the
// run's FIRST original op; the interior ops' per-op input rows come from the
// program's accounting and flow through AddOpInputRows, so op_input_rows is
// identical to the unfused execution at every batch size.
class FusedExprOperator : public BatchOperator {
 public:
  FusedExprOperator(BatchPipeline* pipeline, size_t slot, Schema output_schema,
                    FusedExprProgram program, size_t first_op)
      : BatchOperator(pipeline, slot, std::move(output_schema)),
        program_(std::move(program)),
        first_op_(first_op),
        op_rows_(program_.num_ops()) {}

  void Consume(Relation&& batch) override { ConsumeSlice(batch, 0, batch.NumRows()); }

  void ConsumeSlice(const Relation& src, int64_t lo, int64_t hi) override {
    if (hi == lo) {
      return;
    }
    std::fill(op_rows_.begin(), op_rows_.end(), 0);
    Relation out = program_.Eval(src, lo, hi, op_rows_);
    for (size_t j = 1; j < op_rows_.size(); ++j) {
      AddOpInputRows(first_op_ + j, op_rows_[j]);
    }
    if (out.NumRows() > 0) {
      Emit(std::move(out));
    }
  }

 private:
  FusedExprProgram program_;
  size_t first_op_;
  std::vector<int64_t> op_rows_;  // Per-batch relative-op row counts; reused.
};

}  // namespace
}  // namespace pipeline_internal

Schema BatchPipeline::DeriveSchema(const Schema& input, const PipelineOp& op) {
  switch (op.kind) {
    case PipelineOp::Kind::kFilter:
    case PipelineOp::Kind::kLimit:
      return input;
    case PipelineOp::Kind::kProject:
    case PipelineOp::Kind::kDistinctOnSorted: {
      std::vector<ColumnDef> defs;
      defs.reserve(op.columns.size());
      for (int c : op.columns) {
        defs.push_back(input.Column(c));
      }
      return Schema(std::move(defs));
    }
    case PipelineOp::Kind::kArithmetic: {
      std::vector<ColumnDef> defs = input.columns();
      defs.emplace_back(op.arith.result_name);
      return Schema(std::move(defs));
    }
  }
  return input;
}

BatchPipeline::BatchPipeline(const PipelineSpec& spec) {
  using pipeline_internal::BatchOperator;
  num_ops_ = spec.ops.size();
  Schema schema = spec.input_schema;
  // Knob read once here: a pipeline's slot structure is fixed for its lifetime,
  // so mid-run knob flips cannot desynchronize slots from operators.
  const std::vector<ExprSlot> slots = FuseExprSlots(spec.ops, FusedExprEnabled());
  for (const ExprSlot& slot : slots) {
    const size_t i = operators_.size();  // This slot's executor index.
    std::unique_ptr<BatchOperator> built;
    Schema out;
    if (slot.fused()) {
      FusedExprProgram program(
          schema, std::span<const PipelineOp>(spec.ops).subspan(
                      slot.begin, slot.size()));
      out = program.output_schema();
      built = std::make_unique<pipeline_internal::FusedExprOperator>(
          this, i, out, std::move(program), slot.begin);
    } else {
      const PipelineOp& op = spec.ops[slot.begin];
      out = DeriveSchema(schema, op);
      switch (op.kind) {
        case PipelineOp::Kind::kFilter:
          built = std::make_unique<pipeline_internal::FilterOperator>(this, i, out,
                                                                      op.filter);
          break;
        case PipelineOp::Kind::kProject:
          built = std::make_unique<pipeline_internal::ProjectOperator>(this, i, out,
                                                                       op.columns);
          break;
        case PipelineOp::Kind::kArithmetic:
          built = std::make_unique<pipeline_internal::ArithmeticOperator>(this, i, out,
                                                                          op.arith);
          break;
        case PipelineOp::Kind::kLimit:
          built = std::make_unique<pipeline_internal::LimitOperator>(this, i, out,
                                                                     op.limit_count);
          break;
        case PipelineOp::Kind::kDistinctOnSorted:
          built = std::make_unique<pipeline_internal::DistinctOnSortedOperator>(
              this, i, out, op.columns);
          break;
      }
    }
    operators_.push_back(std::move(built));
    slot_first_op_.push_back(slot.begin);
    schema = std::move(out);
  }
  output_schema_ = std::move(schema);
}

BatchPipeline::~BatchPipeline() = default;

void BatchPipeline::Push(size_t slot, Relation&& batch) {
  if (slot == operators_.size()) {
    const int64_t start = output_.NumRows();
    const int64_t rows = batch.NumRows();
    output_.Resize(start + rows);
    for (int c = 0; c < batch.NumColumns(); ++c) {
      const auto column = batch.ColumnSpan(c);
      std::copy(column.begin(), column.end(), output_.ColumnData(c) + start);
    }
    return;
  }
  const int64_t rows = batch.NumRows();
  if (slot > 0) {
    stats_.op_input_rows[slot_first_op_[slot]] += rows;
  }
  ++live_batches_;
  live_rows_ += rows;
  stats_.peak_batches_resident = std::max(stats_.peak_batches_resident, live_batches_);
  stats_.peak_rows_resident = std::max(stats_.peak_rows_resident, live_rows_);
  operators_[slot]->Consume(std::move(batch));
  --live_batches_;
  live_rows_ -= rows;
}

Relation BatchPipeline::Run(const Relation& input, int64_t batch_rows) {
  stats_ = PipelineStats{};
  stats_.op_input_rows.assign(num_ops_, 0);
  live_batches_ = 0;
  live_rows_ = 0;
  for (auto& op : operators_) {
    op->Reset();
  }
  output_ = Relation{output_schema_};
  // Every streaming operator's output is at most its input, so the source row
  // count bounds the output: one reservation, no quadratic regrowth on append.
  output_.Reserve(input.NumRows());

  const int64_t rows = input.NumRows();
  const int64_t step = batch_rows <= 0 ? std::max<int64_t>(rows, 1) : batch_rows;
  if (!operators_.empty()) {
    for (int64_t lo = 0; lo < rows; lo += step) {
      const int64_t hi = std::min(rows, lo + step);
      ++stats_.batches_pushed;
      stats_.rows_pushed += hi - lo;
      stats_.op_input_rows[0] += hi - lo;
      operators_[0]->ConsumeSlice(input, lo, hi);
    }
    for (auto& op : operators_) {
      op->Flush();
    }
  } else {
    output_ = input;
  }
  return std::move(output_);
}

StatusOr<Relation> BatchPipeline::RunFromCsv(const CsvSource& source,
                                             int64_t begin, int64_t end,
                                             int64_t batch_rows) {
  stats_ = PipelineStats{};
  stats_.op_input_rows.assign(num_ops_, 0);
  live_batches_ = 0;
  live_rows_ = 0;
  for (auto& op : operators_) {
    op->Reset();
  }
  output_ = Relation{output_schema_};
  const int64_t rows = end - begin;
  output_.Reserve(rows);

  const int64_t step = batch_rows <= 0 ? std::max<int64_t>(rows, 1) : batch_rows;
  if (!operators_.empty()) {
    for (int64_t lo = begin; lo < end; lo += step) {
      const int64_t hi = std::min(end, lo + step);
      CONCLAVE_ASSIGN_OR_RETURN(Relation batch, source.ParseRows(lo, hi));
      ++stats_.batches_pushed;
      stats_.rows_pushed += hi - lo;
      stats_.op_input_rows[0] += hi - lo;
      // Unlike Run's borrowed source slices, the parsed batch is
      // pipeline-owned memory: route it through Push so the residency
      // high-water counts it.
      Push(0, std::move(batch));
    }
    for (auto& op : operators_) {
      op->Flush();
    }
  } else {
    CONCLAVE_ASSIGN_OR_RETURN(output_, source.ParseRows(begin, end));
  }
  return std::move(output_);
}

Relation BatchPipeline::RunFromReveal(const mpc::RevealSource& source,
                                      int64_t begin, int64_t end,
                                      int64_t batch_rows) {
  stats_ = PipelineStats{};
  stats_.op_input_rows.assign(num_ops_, 0);
  live_batches_ = 0;
  live_rows_ = 0;
  for (auto& op : operators_) {
    op->Reset();
  }
  output_ = Relation{output_schema_};
  const int64_t rows = end - begin;
  output_.Reserve(rows);

  const int64_t step = batch_rows <= 0 ? std::max<int64_t>(rows, 1) : batch_rows;
  if (!operators_.empty()) {
    for (int64_t lo = begin; lo < end; lo += step) {
      const int64_t hi = std::min(end, lo + step);
      Relation batch = source.RevealRows(lo, hi);
      ++stats_.batches_pushed;
      stats_.rows_pushed += hi - lo;
      stats_.op_input_rows[0] += hi - lo;
      // Like RunFromCsv's parsed batches, the revealed batch is pipeline-owned
      // memory: route it through Push so the residency high-water counts it.
      Push(0, std::move(batch));
    }
    for (auto& op : operators_) {
      op->Flush();
    }
  } else {
    output_ = source.RevealRows(begin, end);
  }
  return std::move(output_);
}

}  // namespace conclave
