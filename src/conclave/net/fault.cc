#include "conclave/net/fault.h"

#include <algorithm>
#include <cstdlib>

#include "conclave/common/rng.h"
#include "conclave/common/strings.h"
#include "conclave/mpc/malicious/commitment.h"
#include "conclave/relational/relation.h"

namespace conclave {
namespace {

// Domain tags separating the per-kind random-mode decision streams.
uint64_t KindTag(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kDropSend:
      return 0x64726f70ULL;  // "drop"
    case FaultEvent::Kind::kAddLatency:
      return 0x6c617465ULL;  // "late"
    case FaultEvent::Kind::kCrashJob:
      return 0x63726173ULL;  // "cras"
    case FaultEvent::Kind::kCorruptReveal:
      return 0x636f7272ULL;  // "corr"
  }
  return 0;
}

const char* KindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kDropSend:
      return "drop";
    case FaultEvent::Kind::kAddLatency:
      return "lat";
    case FaultEvent::Kind::kCrashJob:
      return "crash";
    case FaultEvent::Kind::kCorruptReveal:
      return "corrupt";
  }
  return "?";
}

double UnitDouble(uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

}  // namespace

std::string FormatFaultEvents(const std::vector<FaultEvent>& events) {
  if (events.empty()) {
    return "(none)";
  }
  std::string out;
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    out += StrFormat("%s%s@n%d", i == 0 ? "" : ", ", KindName(event.kind),
                     event.node_id);
    if (event.kind != FaultEvent::Kind::kCrashJob && event.ordinal >= 0) {
      out += StrFormat("#%d", event.ordinal);
    }
    if (event.kind == FaultEvent::Kind::kAddLatency) {
      out += StrFormat("+%gs", event.extra_seconds);
    } else if (event.times != 1) {
      out += StrFormat("x%d", event.times);
    }
  }
  return out;
}

StatusOr<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "off") {
    return plan;
  }
  plan.enabled = true;
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t end = spec.find_first_of(", ", pos);
    const std::string token =
        spec.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
    pos = end == std::string::npos ? spec.size() : end + 1;
    if (token.empty()) {
      continue;
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError(
          StrFormat("fault plan token '%s' is not key=value", token.c_str()));
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    char* parse_end = nullptr;
    const double number = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0') {
      return InvalidArgumentError(StrFormat("fault plan value '%s' for key '%s'",
                                            value.c_str(), key.c_str()));
    }
    if (key == "seed") {
      plan.seed = static_cast<uint64_t>(number);
    } else if (key == "drop") {
      plan.drop_rate = number;
    } else if (key == "corrupt") {
      plan.corrupt_rate = number;
    } else if (key == "crash") {
      plan.crash_rate = number;
    } else if (key == "latency") {
      plan.latency_rate = number;
    } else if (key == "latency_s") {
      plan.latency_seconds = number;
    } else if (key == "drops") {
      plan.max_consecutive_drops = static_cast<int>(number);
    } else if (key == "crash_times") {
      plan.crash_times = static_cast<int>(number);
    } else if (key == "corrupt_times") {
      plan.corrupt_times = static_cast<int>(number);
    } else if (key == "retries") {
      plan.job_retries = static_cast<int>(number);
    } else {
      return InvalidArgumentError(
          StrFormat("unknown fault plan key '%s'", key.c_str()));
    }
  }
  const bool rate_ok = [&] {
    for (double rate : {plan.drop_rate, plan.corrupt_rate, plan.crash_rate,
                        plan.latency_rate}) {
      if (rate < 0 || rate > 1) {
        return false;
      }
    }
    return plan.max_consecutive_drops >= 1 && plan.crash_times >= 1 &&
           plan.corrupt_times >= 1 && plan.job_retries >= 0 &&
           plan.latency_seconds >= 0;
  }();
  if (!rate_ok) {
    return InvalidArgumentError(
        StrFormat("fault plan out of range: %s", plan.ToString().c_str()));
  }
  return plan;
}

StatusOr<FaultPlan> FaultPlan::FromEnv() {
  const char* env = std::getenv("CONCLAVE_FAULT_PLAN");
  if (env == nullptr) {
    return FaultPlan{};
  }
  return Parse(env);
}

std::string FaultPlan::ToString() const {
  if (!enabled) {
    return "off";
  }
  std::string out = StrFormat(
      "seed=%llu,drop=%g,corrupt=%g,crash=%g,latency=%g,latency_s=%g,drops=%d,"
      "crash_times=%d,corrupt_times=%d,retries=%d",
      static_cast<unsigned long long>(seed), drop_rate, corrupt_rate, crash_rate,
      latency_rate, latency_seconds, max_consecutive_drops, crash_times,
      corrupt_times, job_retries);
  if (!events.empty()) {
    out += StrFormat(" events=[%s]", FormatFaultEvents(events).c_str());
  }
  return out;
}

std::string FaultReport::ToString() const {
  if (!fault_mode) {
    return "fault-report: off";
  }
  std::string out = StrFormat(
      "fault-report: injected drops=%llu corruptions=%llu crashes=%llu "
      "latencies=%llu; retried sends=%llu, job restarts=%llu, recovered=%llu; "
      "recovery %.9fs, %llu B",
      static_cast<unsigned long long>(injected_drops),
      static_cast<unsigned long long>(injected_corruptions),
      static_cast<unsigned long long>(injected_crashes),
      static_cast<unsigned long long>(injected_latencies),
      static_cast<unsigned long long>(retried_sends),
      static_cast<unsigned long long>(job_restarts),
      static_cast<unsigned long long>(recovered_faults), recovery_seconds,
      static_cast<unsigned long long>(recovery_bytes));
  if (!first_failure.empty()) {
    out += StrFormat("\nfirst failure (node #%d): %s", first_failure_node,
                     first_failure.c_str());
  }
  out += StrFormat("\ninjected events: %s",
                   FormatFaultEvents(injected_events).c_str());
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, CostModel model)
    : plan_(std::move(plan)), model_(model) {
  report_.fault_mode = plan_.enabled;
}

void FaultInjector::EnterScope(int node_id) {
  scope_ = node_id;
  attempt_ = 0;
  send_ordinal_ = 0;
  reveal_ordinal_ = 0;
}

void FaultInjector::BeginAttempt(int attempt) {
  attempt_ = attempt;
  send_ordinal_ = 0;
  reveal_ordinal_ = 0;
}

const FaultEvent* FaultInjector::MatchEvent(FaultEvent::Kind kind,
                                            int ordinal) const {
  for (const FaultEvent& event : plan_.events) {
    if (event.kind != kind) {
      continue;
    }
    if (event.node_id != -1 && event.node_id != scope_) {
      continue;
    }
    if (event.kind != FaultEvent::Kind::kCrashJob && event.ordinal != -1 &&
        event.ordinal != ordinal) {
      continue;
    }
    return &event;
  }
  return nullptr;
}

uint64_t FaultInjector::DecisionWord(FaultEvent::Kind kind,
                                     uint64_t index) const {
  // Stream = (scope, attempt); index addresses the decision within the attempt.
  // Pure in (plan seed, kind, scope, attempt, index): the schedule replays
  // identically at every configuration and on every frontier-rollback replay.
  const uint64_t stream =
      (static_cast<uint64_t>(scope_ + 1) << 20) ^ static_cast<uint64_t>(attempt_);
  return CounterRng(plan_.seed ^ KindTag(kind), stream).At(index);
}

void FaultInjector::Trace(FaultEvent::Kind kind, int ordinal, int times,
                          double extra_seconds) {
  FaultEvent event;
  event.kind = kind;
  event.node_id = scope_;
  event.ordinal = ordinal;
  event.times = times;
  event.extra_seconds = extra_seconds;
  report_.injected_events.push_back(event);
}

void FaultInjector::RaisePendingFailure(std::string provenance) {
  if (pending_failure_) {
    return;  // One escalation per coordinator step is enough; first wins.
  }
  pending_failure_ = true;
  pending_failure_text_ = std::move(provenance);
  pending_failure_node_ = scope_;
}

std::string FaultInjector::TakePendingFailure(int* node_id) {
  pending_failure_ = false;
  if (node_id != nullptr) {
    *node_id = pending_failure_node_;
  }
  return std::move(pending_failure_text_);
}

void FaultInjector::RecordFirstFailure(int node_id, std::string provenance) {
  report_.first_failure = std::move(provenance);
  report_.first_failure_node = node_id;
}

void FaultInjector::OnSend(PartyId from, PartyId to, uint64_t bytes) {
  const int ordinal = send_ordinal_++;
  NodeRecovery& recovery = Recovery();

  // Added latency: recovered immediately, priced once.
  double extra = 0;
  if (const FaultEvent* event = MatchEvent(FaultEvent::Kind::kAddLatency, ordinal)) {
    extra = event->extra_seconds;
  } else if (plan_.latency_rate > 0 &&
             UnitDouble(DecisionWord(FaultEvent::Kind::kAddLatency,
                                     static_cast<uint64_t>(ordinal))) <
                 plan_.latency_rate) {
    extra = plan_.latency_seconds;
  }
  if (extra > 0) {
    ++report_.injected_latencies;
    ++report_.recovered_faults;
    ++recovery.counts.injected;
    ++recovery.counts.recovered;
    recovery.seconds += extra;
    Trace(FaultEvent::Kind::kAddLatency, ordinal, 1, extra);
  }

  // Transient drops: each lost copy is detected after the backoff timeout and
  // retransmitted; drops beyond the bounded retry budget escalate.
  int drops = 0;
  if (const FaultEvent* event = MatchEvent(FaultEvent::Kind::kDropSend, ordinal)) {
    drops = event->times;
  } else if (plan_.drop_rate > 0) {
    const uint64_t fire =
        DecisionWord(FaultEvent::Kind::kDropSend, 2 * static_cast<uint64_t>(ordinal));
    if (UnitDouble(fire) < plan_.drop_rate) {
      const uint64_t count = DecisionWord(FaultEvent::Kind::kDropSend,
                                          2 * static_cast<uint64_t>(ordinal) + 1);
      drops = 1 + static_cast<int>(
                      count % static_cast<uint64_t>(plan_.max_consecutive_drops));
    }
  }
  if (drops == 0) {
    return;
  }
  Trace(FaultEvent::Kind::kDropSend, ordinal, drops, 0);
  report_.injected_drops += static_cast<uint64_t>(drops);
  recovery.counts.injected += static_cast<uint64_t>(drops);
  const int retried = std::min(drops, model_.max_send_retries);
  for (int k = 0; k < retried; ++k) {
    recovery.seconds += model_.RetrySeconds(k, bytes);
  }
  report_.retried_sends += static_cast<uint64_t>(retried);
  recovery.counts.retried += static_cast<uint64_t>(retried);
  report_.recovery_bytes += static_cast<uint64_t>(retried) * bytes;
  if (drops <= model_.max_send_retries) {
    report_.recovered_faults += static_cast<uint64_t>(drops);
    recovery.counts.recovered += static_cast<uint64_t>(drops);
  } else {
    RaisePendingFailure(StrFormat(
        "send #%d (%d -> %d, %llu B) of node #%d's step dropped %d time(s), "
        "exceeding max_send_retries=%d",
        ordinal, static_cast<int>(from), static_cast<int>(to),
        static_cast<unsigned long long>(bytes), scope_, drops,
        model_.max_send_retries));
  }
}

void FaultInjector::DeliverReveal(const Relation& revealed) {
  const int ordinal = reveal_ordinal_++;
  if (revealed.NumRows() == 0 || revealed.schema().NumColumns() == 0) {
    return;  // No payload cells to corrupt.
  }
  int times = 0;
  if (const FaultEvent* event =
          MatchEvent(FaultEvent::Kind::kCorruptReveal, ordinal)) {
    times = event->times;
  } else if (plan_.corrupt_rate > 0 &&
             UnitDouble(DecisionWord(FaultEvent::Kind::kCorruptReveal,
                                     static_cast<uint64_t>(ordinal))) <
                 plan_.corrupt_rate) {
    times = plan_.corrupt_times;
  }
  if (times == 0) {
    return;
  }
  Trace(FaultEvent::Kind::kCorruptReveal, ordinal, times, 0);
  NodeRecovery& recovery = Recovery();
  report_.injected_corruptions += static_cast<uint64_t>(times);
  recovery.counts.injected += static_cast<uint64_t>(times);

  // End-to-end detection through the malicious-security commitment layer: the
  // sender commits to the revealed relation; every delivery is checked against
  // the commitment, so a corrupted payload never enters the cleartext plane.
  const uint64_t nonce =
      plan_.seed ^ (static_cast<uint64_t>(scope_ + 1) * 0x100000001b3ULL +
                    static_cast<uint64_t>(ordinal));
  const malicious::Commitment commitment =
      malicious::CommitRelation(revealed, nonce);
  const uint64_t bytes = revealed.ByteSize();
  const int retried = std::min(times, model_.max_send_retries);
  for (int k = 0; k < retried; ++k) {
    // Corrupt one payload cell of a delivery copy; the opening check must fail.
    Relation corrupted = revealed;
    const uint64_t word =
        DecisionWord(FaultEvent::Kind::kCorruptReveal,
                     (static_cast<uint64_t>(ordinal) << 8) ^
                         (0x40 + static_cast<uint64_t>(k)));
    const int64_t row =
        static_cast<int64_t>(word % static_cast<uint64_t>(corrupted.NumRows()));
    const int col = static_cast<int>((word >> 32) %
                                     static_cast<uint64_t>(
                                         corrupted.schema().NumColumns()));
    corrupted.ColumnData(col)[row] ^= 1LL << (word % 63);
    CONCLAVE_CHECK(!malicious::VerifyOpening(corrupted, nonce, commitment));
    recovery.seconds += model_.RetrySeconds(k, bytes);
    ++report_.retried_sends;
    ++recovery.counts.retried;
    report_.recovery_bytes += bytes;
  }
  if (times <= model_.max_send_retries) {
    CONCLAVE_CHECK(malicious::VerifyOpening(revealed, nonce, commitment));
    report_.recovered_faults += static_cast<uint64_t>(times);
    recovery.counts.recovered += static_cast<uint64_t>(times);
  } else {
    RaisePendingFailure(StrFormat(
        "reveal #%d into node #%d corrupted %d time(s) (commitment mismatch), "
        "exceeding max_send_retries=%d",
        ordinal, scope_, times, model_.max_send_retries));
  }
}

std::vector<FaultInjector::RevealCorruption> FaultInjector::DeliverRevealStreamed(
    int64_t rows, int cols, uint64_t* nonce_out) {
  // Mirrors DeliverReveal decision for decision and charge for charge; the two
  // paths must stay bit-identical on ordinals, clocks, counters, and failure
  // provenance or the stream_reveal knob would leak into the fault contract.
  const int ordinal = reveal_ordinal_++;
  *nonce_out =
      plan_.seed ^ (static_cast<uint64_t>(scope_ + 1) * 0x100000001b3ULL +
                    static_cast<uint64_t>(ordinal));
  if (rows == 0 || cols == 0) {
    return {};  // No payload cells to corrupt.
  }
  int times = 0;
  if (const FaultEvent* event =
          MatchEvent(FaultEvent::Kind::kCorruptReveal, ordinal)) {
    times = event->times;
  } else if (plan_.corrupt_rate > 0 &&
             UnitDouble(DecisionWord(FaultEvent::Kind::kCorruptReveal,
                                     static_cast<uint64_t>(ordinal))) <
                 plan_.corrupt_rate) {
    times = plan_.corrupt_times;
  }
  if (times == 0) {
    return {};
  }
  Trace(FaultEvent::Kind::kCorruptReveal, ordinal, times, 0);
  NodeRecovery& recovery = Recovery();
  report_.injected_corruptions += static_cast<uint64_t>(times);
  recovery.counts.injected += static_cast<uint64_t>(times);

  const uint64_t bytes = static_cast<uint64_t>(rows) *
                         static_cast<uint64_t>(cols) * sizeof(int64_t);
  const int retried = std::min(times, model_.max_send_retries);
  std::vector<RevealCorruption> schedule;
  schedule.reserve(static_cast<size_t>(retried));
  for (int k = 0; k < retried; ++k) {
    const uint64_t word =
        DecisionWord(FaultEvent::Kind::kCorruptReveal,
                     (static_cast<uint64_t>(ordinal) << 8) ^
                         (0x40 + static_cast<uint64_t>(k)));
    RevealCorruption corruption;
    corruption.row = static_cast<int64_t>(word % static_cast<uint64_t>(rows));
    corruption.col = static_cast<int>((word >> 32) % static_cast<uint64_t>(cols));
    corruption.bit = 1LL << (word % 63);
    schedule.push_back(corruption);
    recovery.seconds += model_.RetrySeconds(k, bytes);
    ++report_.retried_sends;
    ++recovery.counts.retried;
    report_.recovery_bytes += bytes;
  }
  if (times <= model_.max_send_retries) {
    report_.recovered_faults += static_cast<uint64_t>(times);
    recovery.counts.recovered += static_cast<uint64_t>(times);
  } else {
    RaisePendingFailure(StrFormat(
        "reveal #%d into node #%d corrupted %d time(s) (commitment mismatch), "
        "exceeding max_send_retries=%d",
        ordinal, scope_, times, model_.max_send_retries));
  }
  return schedule;
}

int FaultInjector::JobCrashes(int node_id) {
  CONCLAVE_CHECK_EQ(node_id, scope_);
  int crashes = 0;
  if (const FaultEvent* event = MatchEvent(FaultEvent::Kind::kCrashJob, 0)) {
    crashes = event->times;
  } else if (plan_.crash_rate > 0 &&
             UnitDouble(DecisionWord(FaultEvent::Kind::kCrashJob, 0)) <
                 plan_.crash_rate) {
    crashes = plan_.crash_times;
  }
  if (crashes == 0) {
    return 0;
  }
  Trace(FaultEvent::Kind::kCrashJob, -1, crashes, 0);
  NodeRecovery& recovery = Recovery();
  report_.injected_crashes += static_cast<uint64_t>(crashes);
  recovery.counts.injected += static_cast<uint64_t>(crashes);
  if (crashes > plan_.job_retries) {
    RaisePendingFailure(
        StrFormat("job for node #%d crashed %d time(s), exhausting the "
                  "job_retries=%d recovery budget",
                  node_id, crashes, plan_.job_retries));
  }
  return crashes;
}

void FaultInjector::ChargeJobRestart(int node_id, double wasted_seconds) {
  NodeRecovery& recovery = recovery_[node_id];
  recovery.seconds += wasted_seconds + model_.crash_restart_seconds;
  ++recovery.counts.retried;
  ++recovery.counts.recovered;
  ++report_.job_restarts;
  ++report_.recovered_faults;
}

void FaultInjector::AddRecoverySeconds(int node_id, double seconds) {
  recovery_[node_id].seconds += seconds;
}

double FaultInjector::NodeRecoverySeconds(int node_id) const {
  const auto it = recovery_.find(node_id);
  return it == recovery_.end() ? 0 : it->second.seconds;
}

FaultReport FaultInjector::Report(const std::vector<int>& topo_node_ids) const {
  FaultReport report = report_;
  // Fold the recovery charges in the caller's (topo) order — never in encounter
  // order, which is scheduling-dependent across pool sizes.
  report.recovery_seconds = 0;
  for (int node_id : topo_node_ids) {
    report.recovery_seconds += NodeRecoverySeconds(node_id);
  }
  for (const auto& [node_id, recovery] : recovery_) {
    report.node_faults[node_id] = recovery.counts;
  }
  return report;
}

}  // namespace conclave
