#include "conclave/net/cost_model.h"

// CostModel is a plain aggregate; this translation unit exists so the library has a
// stable archive member for the header (and a place for future non-inline helpers).
