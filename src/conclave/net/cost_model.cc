#include "conclave/net/cost_model.h"

namespace conclave {

// The secret-sharing calibration table. Per-primitive seconds and bytes come from the
// calibrated members above; the rounds column holds the circuit/communication depth of
// one batched invocation (batching amortizes rounds over elements, so rounds are per
// call, not per element). Every runtime charge site and every planner estimate reads
// this table — changing a row here changes both sides at once, which is the point.
SsCharge CostModel::SsChargeFor(SsPrimitive primitive) const {
  switch (primitive) {
    case SsPrimitive::kMult:
      // One masked-opening exchange.
      return {ss_mult_seconds, ss_bytes_per_mult, 1};
    case SsPrimitive::kEquality:
      // Multiplicative fan-in tree depth over 64 bits.
      return {ss_equality_seconds, ss_bytes_per_equality, 4};
    case SsPrimitive::kCompare:
      // Bit-decomposition + prefix circuit depth.
      return {ss_compare_seconds, ss_bytes_per_compare, 8};
    case SsPrimitive::kDivision:
      // Goldschmidt-style iteration depth.
      return {ss_division_seconds, ss_bytes_per_compare, 10};
    case SsPrimitive::kShuffleCell:
      // One resharing pass per party's permutation share.
      return {ss_shuffle_op_seconds, ss_bytes_per_shuffle_cell, 3};
    case SsPrimitive::kSelectOp:
      // Rounds scale with log2(n + m); the caller charges them.
      return {ss_select_op_seconds, ss_bytes_per_select_op, 0};
    case SsPrimitive::kRecordIngest:
      // Seconds per record (storage layer), bytes per shared cell.
      return {ss_record_io_seconds, ss_bytes_per_shared_cell, 1};
    case SsPrimitive::kOpen:
    case SsPrimitive::kReveal:
      // Every party broadcasts its share to the two others: 6 messages of 8 B per
      // element; transfer time is covered by the consuming primitive's seconds.
      return {0.0, 8 * 6, 1};
  }
  return {};
}

}  // namespace conclave
