#include "conclave/net/network.h"

#include "conclave/net/fault.h"

namespace conclave {

// Out of line so network.h (included by every engine) stays free of fault.h.
void SimNetwork::FaultOnSend(PartyId from, PartyId to, uint64_t bytes) {
  fault_->OnSend(from, to, bytes);
}

}  // namespace conclave
