#include "conclave/net/network.h"

// SimNetwork is header-only; this translation unit anchors the library archive.
