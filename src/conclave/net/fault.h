// Deterministic fault injection for the simulated deployment (DESIGN.md §11).
//
// A FaultPlan schedules transient send drops, job crash/restarts, reveal-payload
// corruption, and added delivery latency; a FaultInjector executes the schedule
// against one run. Faults are addressed by (DAG node, per-step ordinal, attempt) —
// the dispatcher step that performs an operation and the operation's position
// within that step — never by global operation indices or virtual-clock stamps,
// which vary with pool-size interleaving. Each node's step runs sequentially on
// the coordinator thread, so its ordinals are a pure function of the plan and the
// query, and the whole schedule replays bit-identically at every
// {pool, shard, batch} configuration.
//
// Recovery is priced, not free: every retransmission, backoff wait, wasted crashed
// attempt, and restart penalty accrues in injector-owned per-node accumulators,
// charged through CostModel::RetrySeconds / crash_restart_seconds. The SimNetwork
// meter, clock attribution, and cost counters never see fault charges — the
// fault-free portion of a faulted run stays bit-identical to the fault-free run,
// and the final virtual clock is exactly (fault-free total + recovery_seconds).
// That identity is the chaos differential fuzzer's headline property.
#ifndef CONCLAVE_NET_FAULT_H_
#define CONCLAVE_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "conclave/common/party.h"
#include "conclave/common/status.h"
#include "conclave/net/cost_model.h"

namespace conclave {

class Relation;

// One scheduled (or, in a FaultReport trace, realized) fault.
struct FaultEvent {
  enum class Kind {
    kDropSend,       // The ordinal-th Send of the node's step is lost `times` times
                     // before a retransmission gets through.
    kAddLatency,     // ... is delayed by extra_seconds (recovered, priced, once).
    kCrashJob,       // The node's job crashes `times` times; each crash restarts
                     // from the last MPC-frontier checkpoint.
    kCorruptReveal,  // The ordinal-th reveal delivered by the node's step arrives
                     // corrupted `times` times; each corruption is detected by a
                     // commitment opening check and retransmitted.
  };
  Kind kind = Kind::kDropSend;
  int node_id = -1;  // -1 = matches every node.
  int ordinal = -1;  // -1 = matches every operation of the step (ignored by crash).
  int times = 1;     // Consecutive repetitions before the fault clears.
  double extra_seconds = 0;  // kAddLatency only.
};

// Renders a schedule/trace like "drop@n4#0x2, crash@n7x1, corrupt@n9#0x1,
// lat@n4#3+0.002s" — the shrinker's printable form of a failing fault schedule.
std::string FormatFaultEvents(const std::vector<FaultEvent>& events);

// A deterministic fault schedule: explicit events for targeted tests, plus seeded
// random rates for chaos sweeps. Random decisions are pure functions of
// (plan seed, node, attempt, ordinal) via CounterRng, so a plan injects the same
// faults at every pool/shard/batch configuration.
//
// A plan is *recoverable* by construction when every drop/corruption count stays
// within CostModel::max_send_retries and every crash count within job_retries;
// anything beyond escalates to a structured abort carrying a FaultReport.
struct FaultPlan {
  bool enabled = false;
  uint64_t seed = 0;

  // Random-mode rates in [0, 1], evaluated per send / reveal / job dispatch.
  double drop_rate = 0;
  double corrupt_rate = 0;
  double crash_rate = 0;
  double latency_rate = 0;
  double latency_seconds = 2e-3;  // Added per injected-latency send.

  // Repetition counts for random-mode injections.
  int max_consecutive_drops = 1;
  int crash_times = 1;
  int corrupt_times = 1;

  // Per-job recovery budget: frontier rollbacks / task restarts tolerated per job
  // before the run aborts.
  int job_retries = 2;

  std::vector<FaultEvent> events;

  // Parses the compact knob form, e.g.
  //   "seed=7,drop=0.05,corrupt=0.02,crash=0.1,latency=0.2,latency_s=0.002,
  //    drops=2,crash_times=1,corrupt_times=1,retries=3"
  // Separators are commas or spaces; "off" (or empty) parses to a disabled plan.
  // Explicit events are programmatic-only (no string form).
  static StatusOr<FaultPlan> Parse(const std::string& spec);

  // Resolves the CONCLAVE_FAULT_PLAN environment knob (disabled when unset).
  // A malformed value is an error so typos fail loud, not silently fault-free.
  static StatusOr<FaultPlan> FromEnv();

  // Compact knob-form rendering of the rates/budgets plus any explicit events;
  // "off" when disabled. What the differential shrinker prints.
  std::string ToString() const;
};

// Per-job injected/retried/recovered counts for FaultReport::node_faults.
struct FaultNodeCounts {
  uint64_t injected = 0;
  uint64_t retried = 0;
  uint64_t recovered = 0;
};

// Structured recovery outcome attached to every ExecutionResult run under fault
// injection; carried by the dispatcher's graceful abort when a budget is
// exhausted.
struct FaultReport {
  bool fault_mode = false;

  uint64_t injected_drops = 0;
  uint64_t injected_corruptions = 0;
  uint64_t injected_crashes = 0;
  uint64_t injected_latencies = 0;

  uint64_t retried_sends = 0;    // Retransmissions (dropped sends + corrupted reveals).
  uint64_t job_restarts = 0;     // Frontier rollbacks + modeled task restarts.
  uint64_t recovered_faults = 0; // Injections absorbed without escalating.

  // Priced recovery time: exactly the virtual-clock delta vs. the fault-free run.
  double recovery_seconds = 0;
  uint64_t recovery_bytes = 0;   // Retransmitted payload bytes (not in counters).

  // Provenance of the canonical first unrecoverable fault (earliest failing node
  // in topological order; empty when the run recovered).
  std::string first_failure;
  int first_failure_node = -1;

  // Per-job counts, keyed by DAG node id.
  std::map<int, FaultNodeCounts> node_faults;

  // Realized injections in coordinator encounter order — the printable fault
  // schedule the differential shrinker reports alongside the minimal plan.
  std::vector<FaultEvent> injected_events;

  std::string ToString() const;
};

// Executes one FaultPlan against one run. Owned by the dispatcher and consulted
// only from the coordinator thread (pool tasks receive plain copies of any
// decision they need): injector state is part of the single-owner simulation
// state of DESIGN.md §5.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, CostModel model);

  const FaultPlan& plan() const { return plan_; }

  // Enters the dispatcher step for `node_id` (acquisition + execution), resetting
  // the step's operation ordinals. Attempt 0 of the node's job.
  void EnterScope(int node_id);
  // Re-enters the current scope for retry attempt `attempt` (>= 1) after a
  // frontier rollback: ordinals reset so the replay addresses the same
  // operations; the attempt feeds the random-mode hash, so a retried job sees
  // fresh (usually clear) network conditions.
  void BeginAttempt(int attempt);

  // Consulted by SimNetwork::Send after the normal (fault-free) charge: injects
  // scheduled drops/latency for the current scope's next send ordinal, pricing
  // retransmissions with exponential backoff into the recovery accumulators.
  // Drops beyond CostModel::max_send_retries raise a pending failure.
  void OnSend(PartyId from, PartyId to, uint64_t bytes);

  // Delivers one revealed relation for the current scope's next reveal ordinal:
  // each injected corruption is detected end-to-end by a commitment opening check
  // (mpc/malicious) and retransmitted with backoff. Corruption beyond
  // max_send_retries raises a pending failure; the true relation always reaches
  // the caller (an aborted run discards outputs anyway).
  void DeliverReveal(const Relation& revealed);

  // One scheduled corruption of a streamed reveal: flip `bit` in cell
  // (row, col) of the k-th delivery attempt. Produced by DeliverRevealStreamed,
  // consumed by mpc::RevealSource, which performs the commitment-mismatch
  // detection per batch as the stream reaches the corrupted row.
  struct RevealCorruption {
    int64_t row = 0;
    int col = 0;
    int64_t bit = 0;
  };

  // The streaming twin of DeliverReveal: consumes the same reveal ordinal and
  // makes identical injection decisions, retry charges, counter updates, and
  // pending-failure escalations — computed from the reveal's public shape
  // (rows x cols, ByteSize = rows * cols * 8) without the relation ever
  // materializing here. Returns the corruption schedule (empty when this reveal
  // is untouched) and the commitment nonce for the batch-level opening checks;
  // the detection CHECKs that DeliverReveal runs inline move to the
  // RevealSource's batch verification. A plan is recoverable through this path
  // exactly when it is recoverable through DeliverReveal.
  std::vector<RevealCorruption> DeliverRevealStreamed(int64_t rows, int cols,
                                                      uint64_t* nonce_out);

  // Crash injections scheduled for `node_id`'s job, consulted at dispatch (counts
  // the injections; the caller executes/prices the restarts). Counts beyond
  // plan().job_retries raise a pending failure.
  int JobCrashes(int node_id);

  // Prices one job restart: the wasted attempt's work plus
  // CostModel::crash_restart_seconds, accrued to `node_id`.
  void ChargeJobRestart(int node_id, double wasted_seconds);

  // Adds priced recovery time to `node_id` without counting a new restart —
  // the interior members of a fused chain re-run inside the head's restarts.
  void AddRecoverySeconds(int node_id, double seconds);

  // Pending-failure escalation: an unrecoverable injection parks its provenance
  // here; the dispatcher polls after each coordinator step and canonicalizes to
  // the earliest failing node in topo order (mirroring RecordFailure).
  bool has_pending_failure() const { return pending_failure_; }
  std::string TakePendingFailure(int* node_id);

  // Records the canonical (earliest-topo) failure chosen by the dispatcher.
  void RecordFirstFailure(int node_id, std::string provenance);

  // Recovery seconds accrued to one node (0 when the node injected nothing).
  // The dispatcher folds these in topo order — like every other float total —
  // so recovery_seconds is bit-identical at every pool size.
  double NodeRecoverySeconds(int node_id) const;

  // The final report; `topo_node_ids` fixes the recovery_seconds fold order.
  FaultReport Report(const std::vector<int>& topo_node_ids) const;

 private:
  struct NodeRecovery {
    double seconds = 0;
    FaultNodeCounts counts;
  };

  NodeRecovery& Recovery() { return recovery_[scope_]; }
  // First explicit event matching (kind, current scope, ordinal); nullptr if none.
  const FaultEvent* MatchEvent(FaultEvent::Kind kind, int ordinal) const;
  // Random-mode decision word `index` for (kind, scope, attempt) — pure.
  uint64_t DecisionWord(FaultEvent::Kind kind, uint64_t index) const;
  void Trace(FaultEvent::Kind kind, int ordinal, int times, double extra_seconds);
  void RaisePendingFailure(std::string provenance);

  FaultPlan plan_;
  CostModel model_;

  int scope_ = -1;
  int attempt_ = 0;
  int send_ordinal_ = 0;
  int reveal_ordinal_ = 0;

  bool pending_failure_ = false;
  std::string pending_failure_text_;
  int pending_failure_node_ = -1;

  FaultReport report_;
  std::unordered_map<int, NodeRecovery> recovery_;
};

}  // namespace conclave

#endif  // CONCLAVE_NET_FAULT_H_
