// Calibrated cost model for the simulated deployment.
//
// The paper evaluates on per-party clusters (three 2-vCPU Spark VMs + one 4-vCPU
// Sharemind VM per party) connected by a LAN. This repo executes every protocol
// in-process and advances a virtual clock using the constants below. Constants are
// calibrated against the anchor points the paper reports (see DESIGN.md §6 and
// EXPERIMENTS.md):
//
//   * Sharemind oblivious sort of 16k elements ~ 200 s            [paper §2.3, ref 39]
//   * Sharemind projection of 3M records ~ 10 min (storage layer) [Fig. 1c]
//   * Sharemind Cartesian join of 10k x 10k ~ 20 min              [Fig. 5a]
//   * Obliv-C join OOM at ~30k total records, projection OOM at ~300k [Fig. 1b/1c]
//   * Spark: "tens of millions of records in seconds"             [Fig. 1]
//   * Conclave hybrid join on 200k records ~ 10 min               [Fig. 5a]
//
// Absolute seconds are not the reproduction target (our substrate is a simulator, not
// the authors' testbed); the *shape* of each curve — who wins, crossover locations,
// where OOM / timeout cliffs fall — is.
#ifndef CONCLAVE_NET_COST_MODEL_H_
#define CONCLAVE_NET_COST_MODEL_H_

#include <cstdint>

namespace conclave {

// Row keys of the secret-sharing calibration table (CostModel::SsChargeFor). One row
// per batched primitive the engine executes; the planner (compiler/plan_cost) and the
// runtime (mpc/secret_share_engine.cc, mpc/oblivious.cc, mpc/protocols.cc) read the
// same rows, so estimated and executed per-primitive costs cannot drift apart.
enum class SsPrimitive {
  kMult,          // Beaver multiplication; per element.
  kEquality,      // Private equality test; per element.
  kCompare,       // Private ordered comparison (bit decomposition); per element.
  kDivision,      // Private division; per element.
  kShuffleCell,   // Resharing-based oblivious shuffle; per cell.
  kSelectOp,      // Laud oblivious-index op; per element-step. Rounds scale with
                  // log2(n + m) and are charged by the caller, not the table.
  kRecordIngest,  // Secret-share ingest + storage layer; seconds per *record*,
                  // bytes per *cell* (the storage layer writes whole rows, the
                  // network moves cells).
  kOpen,          // Public opening; per element. Traffic only (6 x 8 B), no seconds.
  kReveal,        // Relation reveal at the frontier; per cell. Traffic only.
};

// One calibration row: amortized virtual seconds and counted bytes per unit (see the
// SsPrimitive commentary for each primitive's unit), plus synchronous communication
// rounds per batched invocation. Seconds already include the primitive's own traffic
// time; bytes are additionally *counted* so tests can assert communication volume
// without double-charging the clock.
struct SsCharge {
  double seconds = 0;
  uint64_t bytes = 0;
  uint64_t rounds = 0;
};

struct CostModel {
  // --- LAN ------------------------------------------------------------------------
  double latency_seconds = 1e-3;          // One communication round, LAN RTT-ish.
  double bandwidth_bytes_per_second = 125e6;  // 1 Gbit/s.

  // --- Cleartext backends -----------------------------------------------------------
  // Sequential Python agent: interpreter-speed row processing.
  double python_records_per_second = 3e5;
  // Spark: per-worker scan/aggregate throughput and fixed job overhead. A party runs
  // `spark_workers_per_party` workers (the paper: three Spark VMs per party).
  double spark_records_per_second_per_worker = 5e5;
  int spark_workers_per_party = 3;
  double spark_job_startup_seconds = 4.0;

  // --- Secret-sharing MPC (Sharemind-like, 3 parties) -------------------------------
  // Amortized wall-clock per batched primitive invocation, including the network
  // traffic the primitive generates (bytes are additionally *counted* for tests, but
  // not double-charged to the clock).
  double ss_mult_seconds = 2e-6;        // Beaver multiplication, batched.
  double ss_equality_seconds = 12e-6;   // Private equality test (join workhorse).
  double ss_compare_seconds = 232e-6;   // Private less-than (sorting workhorse).
  double ss_division_seconds = 300e-6;  // Private division (rare; goldschmidt-style).
  double ss_shuffle_op_seconds = 2e-6;  // Resharing-based shuffle, per cell.
  double ss_select_op_seconds = 1.5e-4; // Laud oblivious-index op, per element-step.
  double ss_record_io_seconds = 2e-4;   // Secret-share ingest + storage layer, per
                                        // record (dominates linear passes; Fig. 1c).
  // Bytes generated per primitive (counted for leakage/cost assertions).
  uint64_t ss_bytes_per_mult = 96;      // 2 openings x 8 B x 3 party pairs x 2 dirs.
  uint64_t ss_bytes_per_equality = 1536;
  uint64_t ss_bytes_per_compare = 29000;
  uint64_t ss_bytes_per_shuffle_cell = 48;
  uint64_t ss_bytes_per_select_op = 96;
  uint64_t ss_bytes_per_shared_cell = 24;  // Input sharing: 8 B to each of 3 parties.
  // Resident bytes per shared cell across shares, bookkeeping, and the storage layer.
  // 350 B/cell with an 8 GB VM reproduces Sharemind's OOM in the MPC part of the
  // hybrid join at ~2M input records (Fig. 5a).
  uint64_t ss_bytes_per_resident_cell = 350;
  uint64_t ss_memory_limit_bytes = 8ULL << 30;  // 8 GB Sharemind VM.

  // --- Garbled circuits (Obliv-C-like, 2 parties) ------------------------------------
  double gc_seconds_per_and_gate = 5e-7;    // Garble + transfer + evaluate, amortized.
  uint64_t gc_bytes_per_and_gate = 32;      // Half-gates: 2 ciphertexts x 16 B.
  // Live wire-label state per retained input bit. Obliv-C keeps the whole relation's
  // labels plus bookkeeping resident; 200 B/bit reproduces the projection OOM at 300k
  // rows x 1 column with a 4 GB VM (Fig. 1c).
  uint64_t gc_bytes_per_live_bit = 200;
  // Transient per-pair bookkeeping in the Cartesian join; 20 B/pair reproduces the
  // join OOM at 30k total records with a 4 GB VM (Fig. 1b).
  uint64_t gc_bytes_per_join_pair = 20;
  uint64_t gc_memory_limit_bytes = 4ULL << 30;  // 4 GB per-party VM.
  // ObliVM (SMCQL's backend) uses the same circuit model but far slower constants;
  // the paper: "ObliVM ... is slower than Sharemind, particularly on large data"
  // (§7.4), and SMCQL's comorbidity run exceeds an hour at 20k rows entering MPC
  // (Fig. 7b) — consistent with an interpreted, non-hardware-accelerated garbling
  // pipeline roughly two orders of magnitude behind Obliv-C.
  double oblivm_slowdown = 100.0;

  // --- Malicious security (Appendix A.5) ----------------------------------------------
  // Active-adversary protocols cost "at least 7x" their passive counterparts (§2.2,
  // ref [2]); applied to the MPC portion of the virtual time when the query runs with
  // CompilerOptions::malicious_security.
  double malicious_overhead_factor = 7.0;
  // Simulated ZK input-consistency proofs (commit + prove + verify per input row).
  double zk_prove_seconds_per_row = 1e-4;
  double zk_verify_seconds_per_row = 4e-5;
  uint64_t zk_proof_bytes_per_row = 192;

  // --- Reliable delivery under fault injection (net/fault.h, DESIGN.md §11) ----------
  // SimNetwork's reliable-delivery layer detects a lost point-to-point send after a
  // timeout and retransmits with exponential backoff, bounded by max_send_retries;
  // corrupted reveals (detected by a commitment opening check) retransmit on the
  // same schedule, and a crashed job restarts from its last MPC-frontier checkpoint
  // after crash_restart_seconds. Recovery time accrues in injector-owned
  // accumulators, separate from every fault-free charge — these constants never
  // affect a run without injected faults.
  double retry_timeout_seconds = 5e-3;  // Loss detected after this long.
  double retry_backoff_factor = 2.0;    // Timeout multiplier per retransmission.
  int max_send_retries = 4;             // Bounded retry before escalation.
  double crash_restart_seconds = 0.5;   // Checkpoint restore + job restart.

  // --- Spill I/O for beyond-RAM blocking operators (DESIGN.md §12) -------------------
  // Sequential throughput of the local spill volume. Each priced spill pass is one
  // write plus one read of the operator's run cells; planner estimate and dispatcher
  // meter share NodeSpillSeconds (compiler/plan_cost.h), built on this rate, so the
  // spill-advice estimate equals the metered charge identically.
  double spill_bytes_per_second = 500e6;

  // --- Derived helpers ---------------------------------------------------------------
  // Priced cost of retransmission `attempt` (0-based) of a `bytes`-sized payload:
  // the sender waits out the backed-off timeout, then resends.
  double RetrySeconds(int attempt, uint64_t bytes) const {
    double timeout = retry_timeout_seconds;
    for (int k = 0; k < attempt; ++k) {
      timeout *= retry_backoff_factor;
    }
    return timeout + SecondsForBytes(bytes);
  }
  double SecondsForBytes(uint64_t bytes) const {
    return static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }
  // One write + one read of `bytes` spilled cells on the local spill volume.
  double SpillPassSeconds(double bytes) const {
    return 2.0 * bytes / spill_bytes_per_second;
  }
  double SecondsForRounds(uint64_t rounds) const {
    return static_cast<double>(rounds) * latency_seconds;
  }
  double SparkSeconds(uint64_t records, int workers) const {
    return spark_job_startup_seconds +
           static_cast<double>(records) /
               (spark_records_per_second_per_worker * workers);
  }
  double PythonSeconds(uint64_t records) const {
    return static_cast<double>(records) / python_records_per_second;
  }
  // Cleartext backend scan time for one job's input records, without the per-job
  // Spark startup charge (that is charged once per job, not per node). The
  // dispatcher's cost meters and the planner's local estimates share this formula.
  double CleartextScanSeconds(uint64_t records, bool use_spark) const {
    if (use_spark) {
      return static_cast<double>(records) /
             (spark_records_per_second_per_worker * spark_workers_per_party);
    }
    return PythonSeconds(records);
  }

  // The secret-sharing calibration table (defined in cost_model.cc). All per-primitive
  // charging — runtime and planner alike — goes through this one accessor.
  SsCharge SsChargeFor(SsPrimitive primitive) const;
};

}  // namespace conclave

#endif  // CONCLAVE_NET_COST_MODEL_H_
