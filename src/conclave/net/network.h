// Simulated multi-party network.
//
// All protocol engines charge their communication and computation here. SimNetwork
// owns the virtual clock and the cost counters for one end-to-end execution; the
// per-party byte matrix supports tests that assert *who* saw how much data (e.g., the
// STP in a hybrid join receives exactly the key columns plus index relations).
#ifndef CONCLAVE_NET_NETWORK_H_
#define CONCLAVE_NET_NETWORK_H_

#include <array>
#include <cstdint>

#include "conclave/common/party.h"
#include "conclave/common/virtual_clock.h"
#include "conclave/net/cost_model.h"

namespace conclave {

class FaultInjector;  // net/fault.h: consulted per Send under fault injection.

class SimNetwork {
 public:
  explicit SimNetwork(CostModel model) : model_(model) {}
  SimNetwork() : SimNetwork(CostModel{}) {}

  const CostModel& model() const { return model_; }

  // Point-to-point transfer: counts bytes and charges bandwidth time. Under fault
  // injection the reliable-delivery layer then consults the injector: scheduled
  // drops are absorbed by timeout + backed-off retransmission (bounded by
  // CostModel::max_send_retries), priced into the injector's recovery
  // accumulators — never into this network's meter or counters, which stay
  // bit-identical to the fault-free run (DESIGN.md §11).
  void Send(PartyId from, PartyId to, uint64_t bytes) {
    CONCLAVE_CHECK_NE(from, to);
    counters_.network_bytes += bytes;
    bytes_matrix_[Index(from)][Index(to)] += bytes;
    Charge(model_.SecondsForBytes(bytes));
    if (fault_ != nullptr) {
      FaultOnSend(from, to, bytes);
    }
  }

  // Broadcast from one party to all others.
  void Broadcast(PartyId from, int num_parties, uint64_t bytes) {
    for (PartyId to = 0; to < num_parties; ++to) {
      if (to != from) {
        Send(from, to, bytes);
      }
    }
  }

  // A synchronous round barrier: charges one LAN latency per round.
  void Rounds(uint64_t count) {
    counters_.network_rounds += count;
    Charge(model_.SecondsForRounds(count));
  }

  // Computation charged directly in seconds (per-primitive amortized costs).
  void CpuSeconds(double seconds) { Charge(seconds); }

  // Zero-based charge meter for per-step cost attribution. The job-graph executor
  // reads each step's virtual cost as TakeMeterSeconds() (the sum of charges since
  // the previous take, accumulated from zero) instead of subtracting clock stamps:
  // a difference of clock readings picks up floating-point rounding that depends on
  // how much virtual time happened to precede the step, which would make per-step
  // costs — and therefore the reported totals — vary with execution interleaving.
  double TakeMeterSeconds() {
    const double taken = meter_seconds_;
    meter_seconds_ = 0;
    return taken;
  }

  // Bytes counted without advancing the clock — used by primitives whose amortized
  // per-op seconds already include their traffic (see CostModel commentary).
  void CountBytes(PartyId from, PartyId to, uint64_t bytes) {
    CONCLAVE_CHECK_NE(from, to);
    counters_.network_bytes += bytes;
    bytes_matrix_[Index(from)][Index(to)] += bytes;
  }

  // Aggregate byte count for symmetric batched primitives (e.g., Beaver openings),
  // where traffic is spread evenly across all party pairs and the per-op amortized
  // seconds already cover transfer time.
  void CountAggregateBytes(uint64_t bytes) { counters_.network_bytes += bytes; }

  double ElapsedSeconds() const { return clock_.now_seconds(); }
  const CostCounters& counters() const { return counters_; }
  CostCounters& mutable_counters() { return counters_; }

  uint64_t BytesSent(PartyId from, PartyId to) const {
    return bytes_matrix_[Index(from)][Index(to)];
  }
  uint64_t BytesReceivedBy(PartyId to) const {
    uint64_t total = 0;
    for (int from = 0; from < kMaxParties; ++from) {
      total += bytes_matrix_[static_cast<size_t>(from)][Index(to)];
    }
    return total;
  }

  // Meter hygiene: a Reset that discards an undrained meter silently loses cost
  // attribution (some step's charges would vanish from the per-node totals), so
  // callers must TakeMeterSeconds() before resetting.
  void Reset() {
    CONCLAVE_CHECK_EQ(meter_seconds_, 0);
    clock_.Reset();
    counters_.Reset();
    bytes_matrix_ = {};
  }

  // Full simulation-state snapshot for frontier-checkpoint rollback (the
  // dispatcher's crash recovery, DESIGN.md §11). The fault injector binding is
  // deliberately not part of the snapshot: the injector's accumulators record the
  // crashed attempt's recovery charges and must survive the rollback.
  struct Snapshot {
    double clock_seconds = 0;
    double meter_seconds = 0;
    CostCounters counters;
    std::array<std::array<uint64_t, kMaxParties>, kMaxParties> bytes_matrix{};
  };
  Snapshot TakeSnapshot() const {
    Snapshot snapshot;
    snapshot.clock_seconds = clock_.now_seconds();
    snapshot.meter_seconds = meter_seconds_;
    snapshot.counters = counters_;
    snapshot.bytes_matrix = bytes_matrix_;
    return snapshot;
  }
  void RestoreSnapshot(const Snapshot& snapshot) {
    clock_.Reset();
    clock_.Advance(snapshot.clock_seconds);  // 0 + x == x, bit for bit.
    meter_seconds_ = snapshot.meter_seconds;
    counters_ = snapshot.counters;
    bytes_matrix_ = snapshot.bytes_matrix;
  }

  // Binds/unbinds the run's fault injector (coordinator-owned; see net/fault.h).
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }
  FaultInjector* fault_injector() const { return fault_; }

 private:
  static size_t Index(PartyId party) {
    CONCLAVE_CHECK_GE(party, 0);
    CONCLAVE_CHECK_LT(party, kMaxParties);
    return static_cast<size_t>(party);
  }

  void Charge(double seconds) {
    clock_.Advance(seconds);
    meter_seconds_ += seconds;
  }

  // Out of line (net/network.cc) so this header needs no fault.h dependency.
  void FaultOnSend(PartyId from, PartyId to, uint64_t bytes);

  CostModel model_;
  VirtualClock clock_;
  double meter_seconds_ = 0;
  CostCounters counters_;
  std::array<std::array<uint64_t, kMaxParties>, kMaxParties> bytes_matrix_{};
  FaultInjector* fault_ = nullptr;
};

}  // namespace conclave

#endif  // CONCLAVE_NET_NETWORK_H_
