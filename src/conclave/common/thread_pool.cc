#include "conclave/common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "conclave/common/check.h"
#include "conclave/common/env.h"

namespace conclave {
namespace {

// Book-keeping for one ParallelFor call, shared between the caller and any helper
// tasks still sitting in the pool queue after the call returns.
struct ForState {
  int64_t begin = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  int64_t end = 0;
  const std::function<void(int64_t, int64_t)>* body = nullptr;

  std::atomic<int64_t> next_chunk{0};
  std::mutex mu;
  std::condition_variable done_cv;
  int64_t finished_chunks = 0;
  int64_t first_failed_chunk = -1;
  std::exception_ptr exception;

  // Claims and runs chunks until none are left. Returns once every chunk this
  // thread claimed has finished.
  void Help() {
    for (int64_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
         chunk < num_chunks;
         chunk = next_chunk.fetch_add(1, std::memory_order_relaxed)) {
      const int64_t lo = begin + chunk * grain;
      const int64_t hi = std::min(end, lo + grain);
      std::exception_ptr caught;
      try {
        (*body)(lo, hi);
      } catch (...) {
        caught = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (caught != nullptr &&
          (first_failed_chunk < 0 || chunk < first_failed_chunk)) {
        first_failed_chunk = chunk;
        exception = caught;
      }
      if (++finished_chunks == num_chunks) {
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int parallelism)
    : parallelism_(parallelism > 0 ? parallelism : DefaultParallelism()) {
  CONCLAVE_CHECK_GE(parallelism_, 1);
  workers_.reserve(static_cast<size_t>(parallelism_ - 1));
  for (int i = 0; i < parallelism_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

namespace {
thread_local ThreadPool* tls_current_pool = nullptr;
}  // namespace

ThreadPool* ThreadPool::Current() { return tls_current_pool; }

ThreadPool::Scope::Scope(ThreadPool* pool) : previous_(tls_current_pool) {
  tls_current_pool = pool;
}

ThreadPool::Scope::~Scope() { tls_current_pool = previous_; }

void ThreadPool::WorkerLoop() {
  Scope scope(this);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    CONCLAVE_CHECK(!shutting_down_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) {
    return;
  }
  CONCLAVE_CHECK_GE(grain, 1);
  const int64_t n = end - begin;
  if (n <= grain) {
    body(begin, end);
    return;
  }
  if (parallelism_ == 1) {
    // Serial pools walk the identical chunk partition inline, in order, so callers
    // that merge per-chunk partials see the same chunks at every pool size.
    for (int64_t lo = begin; lo < end; lo += grain) {
      body(lo, std::min(end, lo + grain));
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = (n + grain - 1) / grain;
  state->body = &body;

  // Helpers beyond the chunk count would only find an empty cursor.
  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(workers_.size()), state->num_chunks - 1);
  for (int64_t i = 0; i < helpers; ++i) {
    Submit([state] { state->Help(); });
  }
  state->Help();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(
      lock, [&] { return state->finished_chunks == state->num_chunks; });
  // `body` (a caller-owned reference) dies with this frame; helpers are done with it
  // here because every chunk has finished — stragglers only hold the ForState.
  state->body = nullptr;
  if (state->exception != nullptr) {
    std::rethrow_exception(state->exception);
  }
}

int ThreadPool::DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  return static_cast<int>(
      env::Int64Knob("CONCLAVE_THREADS", fallback, /*min_value=*/1,
                     /*max_value=*/1 << 20));
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body, int64_t grain) {
  ThreadPool* pool = ThreadPool::Current();
  (pool != nullptr ? *pool : ThreadPool::Shared()).ParallelFor(begin, end, grain,
                                                               body);
}

}  // namespace conclave
