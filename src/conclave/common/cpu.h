// Runtime CPU dispatch for the data plane's innermost loops (DESIGN.md §13).
//
// Every kernel here has two implementations selected at runtime: a portable
// scalar reference and an AVX2 (or AES-NI, for the counter randomness) variant
// compiled with function-level target attributes — no per-file compile flags,
// so one binary runs correctly on any x86-64 and uses the wide units when the
// host has them. The two variants are bit-identical by construction: all
// arithmetic is performed in uint64 (defined wrap, matching the engine's
// two's-complement ring semantics), division follows the engine's truncating
// rule (divisor 0 -> 0, INT64_MIN / -1 wraps to itself instead of trapping),
// and reductions use order-independent wrap addition. The differential suite
// (tests/simd_kernels_test.cc) pins scalar == SIMD on adversarial shapes.
//
// Dispatch is hardware capability AND the CONCLAVE_SIMD knob: CONCLAVE_SIMD=0
// (or "off"/"false", or SetSimdEnabled(false)) forces the scalar paths even on
// AVX2 hardware, which is how CI proves the fallback and how the differential
// fuzzer runs its simd {on,off} axis. The knob never changes results, only
// which instructions compute them.
//
// Layering: common/ must not see relational/ types, so the compare/arith kinds
// are mirrored here as cpu::Cmp / cpu::Arith; ops.cc static_asserts that the
// enumerator orders match CompareOp / ArithKind and casts.
#ifndef CONCLAVE_COMMON_CPU_H_
#define CONCLAVE_COMMON_CPU_H_

#include <cstddef>
#include <cstdint>

namespace conclave {
namespace cpu {

// --- Dispatch state ---------------------------------------------------------

// Hardware capability (cached cpuid probes; independent of the knob).
bool HardwareAvx2();
bool HardwareAes();

// The CONCLAVE_SIMD knob: unset or any value other than "0"/"off"/"false"
// means enabled. SetSimdEnabled overrides the environment for the process.
bool SimdEnabled();
void SetSimdEnabled(bool enabled);

// Effective dispatch: hardware capability AND the knob.
inline bool UsingAvx2() { return SimdEnabled() && HardwareAvx2(); }
inline bool UsingAesNi() { return SimdEnabled() && HardwareAes(); }

// "avx2" or "scalar" — for bench labels and logs.
const char* SimdLevelName();

// RAII knob override for tests and A/B benches.
class ScopedSimd {
 public:
  explicit ScopedSimd(bool enabled) : saved_(SimdEnabled()) {
    SetSimdEnabled(enabled);
  }
  ~ScopedSimd() { SetSimdEnabled(saved_); }
  ScopedSimd(const ScopedSimd&) = delete;
  ScopedSimd& operator=(const ScopedSimd&) = delete;

 private:
  bool saved_;
};

// --- Kernel enums (mirrors of CompareOp / ArithKind; see header comment) ----

enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class Arith { kAdd, kSub, kMul, kDiv };

// --- Selection / comparison kernels ----------------------------------------

// Writes `base + i` for every i in [0, n) where lhs[i] op rhs[i] (or the
// literal when rhs == nullptr) to out; returns the match count. out must have
// room for n indices. Match order is ascending i — identical to a serial scan.
size_t SelectCompare(Cmp op, const int64_t* lhs, const int64_t* rhs,
                     int64_t literal, int64_t base, size_t n, int64_t* out);

// Byte-mask comparison: evaluates lhs[i] op rhs[i]/literal into 0/1 bytes.
// kSet overwrites mask, kAnd intersects into it, kOr unions into it — the
// accumulate modes are what let the fused expression evaluator AND a chain of
// filters (and StripSentinelRows OR its per-column sentinel tests) without a
// scratch mask per predicate.
enum class MaskMode { kSet, kAnd, kOr };
void CompareMask(Cmp op, const int64_t* lhs, const int64_t* rhs,
                 int64_t literal, size_t n, MaskMode mode, uint8_t* mask);

// Number of nonzero bytes in mask[0, n).
size_t CountMask(const uint8_t* mask, size_t n);

// Writes `base + i` for every nonzero mask byte to out (ascending); returns
// the count.
size_t MaskToIndices(const uint8_t* mask, size_t n, int64_t base, int64_t* out);

// --- Arithmetic kernels -----------------------------------------------------

// out[i] = lhs[i] op rhs[i] (or the literal when rhs == nullptr), int64
// wrap semantics via uint64. kDiv applies the engine's fixed-point rule:
// divisor 0 -> 0, otherwise trunc((lhs * scale) / divisor) with the product
// wrapped and INT64_MIN / -1 defined as wrap-negation. `scale` is only read
// for kDiv. In-place (out == lhs) is allowed.
void ArithColumn(Arith op, const int64_t* lhs, const int64_t* rhs,
                 int64_t literal, int64_t scale, size_t n, int64_t* out);

// --- Reductions and scans (aggregate pre-combine fast paths) ----------------

// True if v[0..n) are all equal (vacuously true for n <= 1).
bool AllEqual(const int64_t* v, size_t n);

// Wrapping sum of v[0..n) (uint64 addition — order-independent, so the SIMD
// lane fold is bit-identical to the serial loop).
int64_t SumWrap(const int64_t* v, size_t n);

// Min / max of v[0..n); n must be > 0.
int64_t MinOf(const int64_t* v, size_t n);
int64_t MaxOf(const int64_t* v, size_t n);

// --- Gather -----------------------------------------------------------------

// out[i] = src[rows[i]] — the filter-materialization inner loop.
void GatherI64(const int64_t* src, const int64_t* rows, size_t n, int64_t* out);

// --- Ring (uint64, Z_2^64) kernels for the share data plane -----------------

// out[i] = a[i] + b[i] (mod 2^64). In-place allowed.
void AddU64(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out);
// out[i] = a[i] - b[i].
void SubU64(const uint64_t* a, const uint64_t* b, size_t n, uint64_t* out);
// out[i] = a[i] - b[i] - c[i] (share-combine: s2 = value - r0 - r1).
void SubSubU64(const uint64_t* a, const uint64_t* b, const uint64_t* c,
               size_t n, uint64_t* out);
// out[i] = a[i] + b[i] + c[i] (reconstruction; int64 out is the same bits).
void Add3U64(const uint64_t* a, const uint64_t* b, const uint64_t* c, size_t n,
             uint64_t* out);
// out[i] = a[i] + k.
void AddConstU64(const uint64_t* a, uint64_t k, size_t n, uint64_t* out);
// out[i] = a[i] * k (low 64 bits).
void MulConstU64(const uint64_t* a, uint64_t k, size_t n, uint64_t* out);
// out[i] = bits[i] - r0[i] - r1[i], bits being 0/1 bytes (the ideal-compare
// share combine).
void MaskSubSub(const uint8_t* bits, const uint64_t* r0, const uint64_t* r1,
                size_t n, uint64_t* out);
// acc[i] += a[i] - t[i] (Beaver masked-opening accumulation).
void AccumDiffU64(const uint64_t* a, const uint64_t* t, size_t n, uint64_t* acc);
// out[i] = tc[i] + d[i] * tb[i] + e[i] * ta[i] (Beaver recombination).
void BeaverCombineU64(const uint64_t* tc, const uint64_t* d, const uint64_t* tb,
                      const uint64_t* e, const uint64_t* ta, size_t n,
                      uint64_t* out);
// acc[i] += d[i] * e[i] (the d*e term folded into party 0's share).
void AccumMulU64(const uint64_t* d, const uint64_t* e, size_t n, uint64_t* acc);
// Fused gather + re-randomize combine. o0/o1 arrive pre-filled with the fresh
// mask words r0/r1; on return o0[i] = a0[rows[i]] + r0, o1[i] = a1[rows[i]] +
// r1, o2[i] = a2[rows[i]] - r0 - r1.
void GatherRerandCombine(const uint64_t* a0, const uint64_t* a1,
                         const uint64_t* a2, const int64_t* rows, size_t n,
                         uint64_t* o0, uint64_t* o1, uint64_t* o2);
// Wrapping sum of v[0..n) (RingSum's per-morsel partial).
uint64_t SumU64(const uint64_t* v, size_t n);

// --- Fixed-key AES-128 counter blocks (AesCounterRng's engine) --------------
//
// Block b of a stream is AES-128(kFixedKey, base + b) where base is the
// stream's 128-bit counter base and + is 128-bit little-endian addition; word
// w of the stream is half (w & 1) of block (w >> 1). AES-NI when available
// and enabled, bit-identical portable AES otherwise.

// Words [first_word, first_word + n) of the stream into out.
void AesFillWords(uint64_t base_lo, uint64_t base_hi, uint64_t first_word,
                  size_t n, uint64_t* out);
// Blocks [first_block, first_block + n), deinterleaved: lo halves (even words)
// to lo_out, hi halves (odd words) to hi_out — the share-generation layout
// (element i draws words 2i, 2i+1 == both halves of block i).
void AesFillBlocksSplit(uint64_t base_lo, uint64_t base_hi,
                        uint64_t first_block, size_t n, uint64_t* lo_out,
                        uint64_t* hi_out);
// Single word (one block computed, one half returned).
uint64_t AesWordAt(uint64_t base_lo, uint64_t base_hi, uint64_t word_index);

// Raw single-block AES-128 with a caller key, portable path only — lets tests
// validate the block cipher against the FIPS-197 vector.
void AesEncryptBlockPortable(const uint8_t key[16], const uint8_t in[16],
                             uint8_t out[16]);

}  // namespace cpu
}  // namespace conclave

#endif  // CONCLAVE_COMMON_CPU_H_
